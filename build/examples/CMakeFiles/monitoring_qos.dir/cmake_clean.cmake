file(REMOVE_RECURSE
  "CMakeFiles/monitoring_qos.dir/monitoring_qos.cpp.o"
  "CMakeFiles/monitoring_qos.dir/monitoring_qos.cpp.o.d"
  "monitoring_qos"
  "monitoring_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
