# Empty dependencies file for monitoring_qos.
# This may be replaced when dependencies are built.
