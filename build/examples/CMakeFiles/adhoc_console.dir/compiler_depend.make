# Empty compiler generated dependencies file for adhoc_console.
# This may be replaced when dependencies are built.
