file(REMOVE_RECURSE
  "CMakeFiles/adhoc_console.dir/adhoc_console.cpp.o"
  "CMakeFiles/adhoc_console.dir/adhoc_console.cpp.o.d"
  "adhoc_console"
  "adhoc_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
