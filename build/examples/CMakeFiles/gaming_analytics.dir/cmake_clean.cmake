file(REMOVE_RECURSE
  "CMakeFiles/gaming_analytics.dir/gaming_analytics.cpp.o"
  "CMakeFiles/gaming_analytics.dir/gaming_analytics.cpp.o.d"
  "gaming_analytics"
  "gaming_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaming_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
