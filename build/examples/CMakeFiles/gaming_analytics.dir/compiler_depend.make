# Empty compiler generated dependencies file for gaming_analytics.
# This may be replaced when dependencies are built.
