file(REMOVE_RECURSE
  "../bench/fig20_scalability"
  "../bench/fig20_scalability.pdb"
  "CMakeFiles/fig20_scalability.dir/fig20_scalability.cc.o"
  "CMakeFiles/fig20_scalability.dir/fig20_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
