
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig20_scalability.cc" "bench-build/CMakeFiles/fig20_scalability.dir/fig20_scalability.cc.o" "gcc" "bench-build/CMakeFiles/fig20_scalability.dir/fig20_scalability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/astream_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/astream_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spe/CMakeFiles/astream_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/astream_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/astream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
