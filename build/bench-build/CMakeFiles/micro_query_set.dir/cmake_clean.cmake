file(REMOVE_RECURSE
  "../bench/micro_query_set"
  "../bench/micro_query_set.pdb"
  "CMakeFiles/micro_query_set.dir/micro_query_set.cc.o"
  "CMakeFiles/micro_query_set.dir/micro_query_set.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_query_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
