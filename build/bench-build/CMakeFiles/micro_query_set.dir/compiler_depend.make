# Empty compiler generated dependencies file for micro_query_set.
# This may be replaced when dependencies are built.
