# Empty compiler generated dependencies file for fig10_deploy_timeline.
# This may be replaced when dependencies are built.
