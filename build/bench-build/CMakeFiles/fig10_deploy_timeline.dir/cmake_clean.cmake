file(REMOVE_RECURSE
  "../bench/fig10_deploy_timeline"
  "../bench/fig10_deploy_timeline.pdb"
  "CMakeFiles/fig10_deploy_timeline.dir/fig10_deploy_timeline.cc.o"
  "CMakeFiles/fig10_deploy_timeline.dir/fig10_deploy_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_deploy_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
