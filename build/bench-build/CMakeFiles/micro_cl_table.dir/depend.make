# Empty dependencies file for micro_cl_table.
# This may be replaced when dependencies are built.
