file(REMOVE_RECURSE
  "../bench/micro_cl_table"
  "../bench/micro_cl_table.pdb"
  "CMakeFiles/micro_cl_table.dir/micro_cl_table.cc.o"
  "CMakeFiles/micro_cl_table.dir/micro_cl_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cl_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
