file(REMOVE_RECURSE
  "../bench/fig17_parallelism_sweep"
  "../bench/fig17_parallelism_sweep.pdb"
  "CMakeFiles/fig17_parallelism_sweep.dir/fig17_parallelism_sweep.cc.o"
  "CMakeFiles/fig17_parallelism_sweep.dir/fig17_parallelism_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_parallelism_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
