# Empty compiler generated dependencies file for fig17_parallelism_sweep.
# This may be replaced when dependencies are built.
