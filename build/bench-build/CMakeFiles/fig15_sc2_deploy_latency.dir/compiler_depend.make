# Empty compiler generated dependencies file for fig15_sc2_deploy_latency.
# This may be replaced when dependencies are built.
