file(REMOVE_RECURSE
  "../bench/fig15_sc2_deploy_latency"
  "../bench/fig15_sc2_deploy_latency.pdb"
  "CMakeFiles/fig15_sc2_deploy_latency.dir/fig15_sc2_deploy_latency.cc.o"
  "CMakeFiles/fig15_sc2_deploy_latency.dir/fig15_sc2_deploy_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sc2_deploy_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
