# Empty dependencies file for micro_slice_store.
# This may be replaced when dependencies are built.
