file(REMOVE_RECURSE
  "../bench/micro_slice_store"
  "../bench/micro_slice_store.pdb"
  "CMakeFiles/micro_slice_store.dir/micro_slice_store.cc.o"
  "CMakeFiles/micro_slice_store.dir/micro_slice_store.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_slice_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
