# Empty compiler generated dependencies file for fig14_sc2_throughput.
# This may be replaced when dependencies are built.
