file(REMOVE_RECURSE
  "../bench/fig14_sc2_throughput"
  "../bench/fig14_sc2_throughput.pdb"
  "CMakeFiles/fig14_sc2_throughput.dir/fig14_sc2_throughput.cc.o"
  "CMakeFiles/fig14_sc2_throughput.dir/fig14_sc2_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sc2_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
