file(REMOVE_RECURSE
  "../bench/fig18_overhead_breakdown"
  "../bench/fig18_overhead_breakdown.pdb"
  "CMakeFiles/fig18_overhead_breakdown.dir/fig18_overhead_breakdown.cc.o"
  "CMakeFiles/fig18_overhead_breakdown.dir/fig18_overhead_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
