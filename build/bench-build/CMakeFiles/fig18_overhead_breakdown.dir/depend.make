# Empty dependencies file for fig18_overhead_breakdown.
# This may be replaced when dependencies are built.
