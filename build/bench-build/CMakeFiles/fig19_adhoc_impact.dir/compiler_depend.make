# Empty compiler generated dependencies file for fig19_adhoc_impact.
# This may be replaced when dependencies are built.
