file(REMOVE_RECURSE
  "../bench/fig19_adhoc_impact"
  "../bench/fig19_adhoc_impact.pdb"
  "CMakeFiles/fig19_adhoc_impact.dir/fig19_adhoc_impact.cc.o"
  "CMakeFiles/fig19_adhoc_impact.dir/fig19_adhoc_impact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_adhoc_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
