# Empty dependencies file for fig16_complex_timeline.
# This may be replaced when dependencies are built.
