file(REMOVE_RECURSE
  "../bench/fig16_complex_timeline"
  "../bench/fig16_complex_timeline.pdb"
  "CMakeFiles/fig16_complex_timeline.dir/fig16_complex_timeline.cc.o"
  "CMakeFiles/fig16_complex_timeline.dir/fig16_complex_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_complex_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
