file(REMOVE_RECURSE
  "../bench/fig11_sc1_deploy_latency"
  "../bench/fig11_sc1_deploy_latency.pdb"
  "CMakeFiles/fig11_sc1_deploy_latency.dir/fig11_sc1_deploy_latency.cc.o"
  "CMakeFiles/fig11_sc1_deploy_latency.dir/fig11_sc1_deploy_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sc1_deploy_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
