# Empty compiler generated dependencies file for fig11_sc1_deploy_latency.
# This may be replaced when dependencies are built.
