file(REMOVE_RECURSE
  "../bench/fig13_sc2_event_latency"
  "../bench/fig13_sc2_event_latency.pdb"
  "CMakeFiles/fig13_sc2_event_latency.dir/fig13_sc2_event_latency.cc.o"
  "CMakeFiles/fig13_sc2_event_latency.dir/fig13_sc2_event_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sc2_event_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
