# Empty dependencies file for fig13_sc2_event_latency.
# This may be replaced when dependencies are built.
