file(REMOVE_RECURSE
  "../bench/fig12_sc1_event_latency"
  "../bench/fig12_sc1_event_latency.pdb"
  "CMakeFiles/fig12_sc1_event_latency.dir/fig12_sc1_event_latency.cc.o"
  "CMakeFiles/fig12_sc1_event_latency.dir/fig12_sc1_event_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sc1_event_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
