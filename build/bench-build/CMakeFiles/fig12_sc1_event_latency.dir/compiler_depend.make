# Empty compiler generated dependencies file for fig12_sc1_event_latency.
# This may be replaced when dependencies are built.
