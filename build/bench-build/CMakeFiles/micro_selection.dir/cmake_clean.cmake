file(REMOVE_RECURSE
  "../bench/micro_selection"
  "../bench/micro_selection.pdb"
  "CMakeFiles/micro_selection.dir/micro_selection.cc.o"
  "CMakeFiles/micro_selection.dir/micro_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
