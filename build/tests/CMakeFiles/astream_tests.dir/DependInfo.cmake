
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bitset_test.cc" "tests/CMakeFiles/astream_tests.dir/common/bitset_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/common/bitset_test.cc.o.d"
  "/root/repo/tests/common/common_test.cc" "tests/CMakeFiles/astream_tests.dir/common/common_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/common/common_test.cc.o.d"
  "/root/repo/tests/core/astream_e2e_test.cc" "tests/CMakeFiles/astream_tests.dir/core/astream_e2e_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/astream_e2e_test.cc.o.d"
  "/root/repo/tests/core/astream_property_test.cc" "tests/CMakeFiles/astream_tests.dir/core/astream_property_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/astream_property_test.cc.o.d"
  "/root/repo/tests/core/changelog_test.cc" "tests/CMakeFiles/astream_tests.dir/core/changelog_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/changelog_test.cc.o.d"
  "/root/repo/tests/core/cl_table_test.cc" "tests/CMakeFiles/astream_tests.dir/core/cl_table_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/cl_table_test.cc.o.d"
  "/root/repo/tests/core/exactly_once_test.cc" "tests/CMakeFiles/astream_tests.dir/core/exactly_once_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/exactly_once_test.cc.o.d"
  "/root/repo/tests/core/metrics_e2e_test.cc" "tests/CMakeFiles/astream_tests.dir/core/metrics_e2e_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/metrics_e2e_test.cc.o.d"
  "/root/repo/tests/core/operators_unit_test.cc" "tests/CMakeFiles/astream_tests.dir/core/operators_unit_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/operators_unit_test.cc.o.d"
  "/root/repo/tests/core/query_builder_test.cc" "tests/CMakeFiles/astream_tests.dir/core/query_builder_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/query_builder_test.cc.o.d"
  "/root/repo/tests/core/registry_test.cc" "tests/CMakeFiles/astream_tests.dir/core/registry_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/registry_test.cc.o.d"
  "/root/repo/tests/core/session_test.cc" "tests/CMakeFiles/astream_tests.dir/core/session_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/session_test.cc.o.d"
  "/root/repo/tests/core/slice_store_test.cc" "tests/CMakeFiles/astream_tests.dir/core/slice_store_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/slice_store_test.cc.o.d"
  "/root/repo/tests/core/slicing_test.cc" "tests/CMakeFiles/astream_tests.dir/core/slicing_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/slicing_test.cc.o.d"
  "/root/repo/tests/core/threaded_equivalence_test.cc" "tests/CMakeFiles/astream_tests.dir/core/threaded_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/core/threaded_equivalence_test.cc.o.d"
  "/root/repo/tests/harness/harness_test.cc" "tests/CMakeFiles/astream_tests.dir/harness/harness_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/harness/harness_test.cc.o.d"
  "/root/repo/tests/harness/reference_test.cc" "tests/CMakeFiles/astream_tests.dir/harness/reference_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/harness/reference_test.cc.o.d"
  "/root/repo/tests/harness/source_log_test.cc" "tests/CMakeFiles/astream_tests.dir/harness/source_log_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/harness/source_log_test.cc.o.d"
  "/root/repo/tests/obs/metrics_test.cc" "tests/CMakeFiles/astream_tests.dir/obs/metrics_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/obs/metrics_test.cc.o.d"
  "/root/repo/tests/spe/channel_test.cc" "tests/CMakeFiles/astream_tests.dir/spe/channel_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/spe/channel_test.cc.o.d"
  "/root/repo/tests/spe/operators_test.cc" "tests/CMakeFiles/astream_tests.dir/spe/operators_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/spe/operators_test.cc.o.d"
  "/root/repo/tests/spe/runner_test.cc" "tests/CMakeFiles/astream_tests.dir/spe/runner_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/spe/runner_test.cc.o.d"
  "/root/repo/tests/spe/state_test.cc" "tests/CMakeFiles/astream_tests.dir/spe/state_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/spe/state_test.cc.o.d"
  "/root/repo/tests/spe/window_test.cc" "tests/CMakeFiles/astream_tests.dir/spe/window_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/spe/window_test.cc.o.d"
  "/root/repo/tests/workload/workload_test.cc" "tests/CMakeFiles/astream_tests.dir/workload/workload_test.cc.o" "gcc" "tests/CMakeFiles/astream_tests.dir/workload/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/astream_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/astream_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spe/CMakeFiles/astream_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/astream_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/astream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
