# Empty dependencies file for astream_tests.
# This may be replaced when dependencies are built.
