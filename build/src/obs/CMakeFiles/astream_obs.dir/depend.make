# Empty dependencies file for astream_obs.
# This may be replaced when dependencies are built.
