file(REMOVE_RECURSE
  "libastream_obs.a"
)
