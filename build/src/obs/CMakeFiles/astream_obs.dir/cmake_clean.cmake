file(REMOVE_RECURSE
  "CMakeFiles/astream_obs.dir/export.cc.o"
  "CMakeFiles/astream_obs.dir/export.cc.o.d"
  "CMakeFiles/astream_obs.dir/metrics.cc.o"
  "CMakeFiles/astream_obs.dir/metrics.cc.o.d"
  "CMakeFiles/astream_obs.dir/trace.cc.o"
  "CMakeFiles/astream_obs.dir/trace.cc.o.d"
  "libastream_obs.a"
  "libastream_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astream_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
