file(REMOVE_RECURSE
  "libastream_common.a"
)
