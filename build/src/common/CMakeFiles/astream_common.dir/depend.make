# Empty dependencies file for astream_common.
# This may be replaced when dependencies are built.
