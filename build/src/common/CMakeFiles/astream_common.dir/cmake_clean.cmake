file(REMOVE_RECURSE
  "CMakeFiles/astream_common.dir/clock.cc.o"
  "CMakeFiles/astream_common.dir/clock.cc.o.d"
  "CMakeFiles/astream_common.dir/logging.cc.o"
  "CMakeFiles/astream_common.dir/logging.cc.o.d"
  "CMakeFiles/astream_common.dir/rng.cc.o"
  "CMakeFiles/astream_common.dir/rng.cc.o.d"
  "CMakeFiles/astream_common.dir/status.cc.o"
  "CMakeFiles/astream_common.dir/status.cc.o.d"
  "libastream_common.a"
  "libastream_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astream_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
