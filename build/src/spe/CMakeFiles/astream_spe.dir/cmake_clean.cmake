file(REMOVE_RECURSE
  "CMakeFiles/astream_spe.dir/aggregate.cc.o"
  "CMakeFiles/astream_spe.dir/aggregate.cc.o.d"
  "CMakeFiles/astream_spe.dir/operators.cc.o"
  "CMakeFiles/astream_spe.dir/operators.cc.o.d"
  "CMakeFiles/astream_spe.dir/row.cc.o"
  "CMakeFiles/astream_spe.dir/row.cc.o.d"
  "CMakeFiles/astream_spe.dir/runner.cc.o"
  "CMakeFiles/astream_spe.dir/runner.cc.o.d"
  "CMakeFiles/astream_spe.dir/state.cc.o"
  "CMakeFiles/astream_spe.dir/state.cc.o.d"
  "CMakeFiles/astream_spe.dir/topology.cc.o"
  "CMakeFiles/astream_spe.dir/topology.cc.o.d"
  "CMakeFiles/astream_spe.dir/window.cc.o"
  "CMakeFiles/astream_spe.dir/window.cc.o.d"
  "libastream_spe.a"
  "libastream_spe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astream_spe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
