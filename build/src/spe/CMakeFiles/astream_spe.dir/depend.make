# Empty dependencies file for astream_spe.
# This may be replaced when dependencies are built.
