file(REMOVE_RECURSE
  "libastream_spe.a"
)
