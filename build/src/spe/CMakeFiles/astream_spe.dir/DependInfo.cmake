
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spe/aggregate.cc" "src/spe/CMakeFiles/astream_spe.dir/aggregate.cc.o" "gcc" "src/spe/CMakeFiles/astream_spe.dir/aggregate.cc.o.d"
  "/root/repo/src/spe/operators.cc" "src/spe/CMakeFiles/astream_spe.dir/operators.cc.o" "gcc" "src/spe/CMakeFiles/astream_spe.dir/operators.cc.o.d"
  "/root/repo/src/spe/row.cc" "src/spe/CMakeFiles/astream_spe.dir/row.cc.o" "gcc" "src/spe/CMakeFiles/astream_spe.dir/row.cc.o.d"
  "/root/repo/src/spe/runner.cc" "src/spe/CMakeFiles/astream_spe.dir/runner.cc.o" "gcc" "src/spe/CMakeFiles/astream_spe.dir/runner.cc.o.d"
  "/root/repo/src/spe/state.cc" "src/spe/CMakeFiles/astream_spe.dir/state.cc.o" "gcc" "src/spe/CMakeFiles/astream_spe.dir/state.cc.o.d"
  "/root/repo/src/spe/topology.cc" "src/spe/CMakeFiles/astream_spe.dir/topology.cc.o" "gcc" "src/spe/CMakeFiles/astream_spe.dir/topology.cc.o.d"
  "/root/repo/src/spe/window.cc" "src/spe/CMakeFiles/astream_spe.dir/window.cc.o" "gcc" "src/spe/CMakeFiles/astream_spe.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/astream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
