
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/astream.cc" "src/core/CMakeFiles/astream_core.dir/astream.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/astream.cc.o.d"
  "/root/repo/src/core/changelog.cc" "src/core/CMakeFiles/astream_core.dir/changelog.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/changelog.cc.o.d"
  "/root/repo/src/core/cl_table.cc" "src/core/CMakeFiles/astream_core.dir/cl_table.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/cl_table.cc.o.d"
  "/root/repo/src/core/qos.cc" "src/core/CMakeFiles/astream_core.dir/qos.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/qos.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/astream_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/query.cc.o.d"
  "/root/repo/src/core/query_builder.cc" "src/core/CMakeFiles/astream_core.dir/query_builder.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/query_builder.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/astream_core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/router.cc.o.d"
  "/root/repo/src/core/shared_aggregation.cc" "src/core/CMakeFiles/astream_core.dir/shared_aggregation.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/shared_aggregation.cc.o.d"
  "/root/repo/src/core/shared_join.cc" "src/core/CMakeFiles/astream_core.dir/shared_join.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/shared_join.cc.o.d"
  "/root/repo/src/core/shared_operator.cc" "src/core/CMakeFiles/astream_core.dir/shared_operator.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/shared_operator.cc.o.d"
  "/root/repo/src/core/shared_selection.cc" "src/core/CMakeFiles/astream_core.dir/shared_selection.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/shared_selection.cc.o.d"
  "/root/repo/src/core/shared_session.cc" "src/core/CMakeFiles/astream_core.dir/shared_session.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/shared_session.cc.o.d"
  "/root/repo/src/core/slice_store.cc" "src/core/CMakeFiles/astream_core.dir/slice_store.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/slice_store.cc.o.d"
  "/root/repo/src/core/slicing.cc" "src/core/CMakeFiles/astream_core.dir/slicing.cc.o" "gcc" "src/core/CMakeFiles/astream_core.dir/slicing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spe/CMakeFiles/astream_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/astream_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/astream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
