file(REMOVE_RECURSE
  "CMakeFiles/astream_core.dir/astream.cc.o"
  "CMakeFiles/astream_core.dir/astream.cc.o.d"
  "CMakeFiles/astream_core.dir/changelog.cc.o"
  "CMakeFiles/astream_core.dir/changelog.cc.o.d"
  "CMakeFiles/astream_core.dir/cl_table.cc.o"
  "CMakeFiles/astream_core.dir/cl_table.cc.o.d"
  "CMakeFiles/astream_core.dir/qos.cc.o"
  "CMakeFiles/astream_core.dir/qos.cc.o.d"
  "CMakeFiles/astream_core.dir/query.cc.o"
  "CMakeFiles/astream_core.dir/query.cc.o.d"
  "CMakeFiles/astream_core.dir/query_builder.cc.o"
  "CMakeFiles/astream_core.dir/query_builder.cc.o.d"
  "CMakeFiles/astream_core.dir/router.cc.o"
  "CMakeFiles/astream_core.dir/router.cc.o.d"
  "CMakeFiles/astream_core.dir/shared_aggregation.cc.o"
  "CMakeFiles/astream_core.dir/shared_aggregation.cc.o.d"
  "CMakeFiles/astream_core.dir/shared_join.cc.o"
  "CMakeFiles/astream_core.dir/shared_join.cc.o.d"
  "CMakeFiles/astream_core.dir/shared_operator.cc.o"
  "CMakeFiles/astream_core.dir/shared_operator.cc.o.d"
  "CMakeFiles/astream_core.dir/shared_selection.cc.o"
  "CMakeFiles/astream_core.dir/shared_selection.cc.o.d"
  "CMakeFiles/astream_core.dir/shared_session.cc.o"
  "CMakeFiles/astream_core.dir/shared_session.cc.o.d"
  "CMakeFiles/astream_core.dir/slice_store.cc.o"
  "CMakeFiles/astream_core.dir/slice_store.cc.o.d"
  "CMakeFiles/astream_core.dir/slicing.cc.o"
  "CMakeFiles/astream_core.dir/slicing.cc.o.d"
  "libastream_core.a"
  "libastream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
