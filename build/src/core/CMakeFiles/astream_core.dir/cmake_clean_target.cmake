file(REMOVE_RECURSE
  "libastream_core.a"
)
