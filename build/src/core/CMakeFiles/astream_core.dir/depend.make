# Empty dependencies file for astream_core.
# This may be replaced when dependencies are built.
