# Empty compiler generated dependencies file for astream_harness.
# This may be replaced when dependencies are built.
