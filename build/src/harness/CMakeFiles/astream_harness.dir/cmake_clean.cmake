file(REMOVE_RECURSE
  "CMakeFiles/astream_harness.dir/baseline_sut.cc.o"
  "CMakeFiles/astream_harness.dir/baseline_sut.cc.o.d"
  "CMakeFiles/astream_harness.dir/driver.cc.o"
  "CMakeFiles/astream_harness.dir/driver.cc.o.d"
  "CMakeFiles/astream_harness.dir/reference.cc.o"
  "CMakeFiles/astream_harness.dir/reference.cc.o.d"
  "CMakeFiles/astream_harness.dir/report.cc.o"
  "CMakeFiles/astream_harness.dir/report.cc.o.d"
  "libastream_harness.a"
  "libastream_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astream_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
