file(REMOVE_RECURSE
  "libastream_harness.a"
)
