file(REMOVE_RECURSE
  "CMakeFiles/astream_workload.dir/scenario.cc.o"
  "CMakeFiles/astream_workload.dir/scenario.cc.o.d"
  "libastream_workload.a"
  "libastream_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astream_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
