file(REMOVE_RECURSE
  "libastream_workload.a"
)
