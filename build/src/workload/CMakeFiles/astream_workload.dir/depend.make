# Empty dependencies file for astream_workload.
# This may be replaced when dependencies are built.
