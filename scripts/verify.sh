#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then a
# ThreadSanitizer build running the concurrency-sensitive subset (the
# threaded-equivalence suite plus the lock-free metrics/observability
# tests). Usage: scripts/verify.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== tsan: skipped (--skip-tsan) =="
  exit 0
fi

echo "== tsan: build =="
cmake -B build-tsan -S . -DASTREAM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target astream_tests

echo "== tsan: threaded equivalence + observability tests =="
# TSAN_OPTIONS makes any race a hard failure.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ./build-tsan/tests/astream_tests \
  --gtest_filter='*ThreadedEquivalence*:*Metrics*:*Histogram*:*TraceSink*:*SeriesCache*'

echo "verify: OK"
