#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, a data-plane micro
# bench smoke run, then sanitizer builds — ThreadSanitizer over the
# concurrency-sensitive subset (threaded/batched equivalence, channels,
# the lock-free metrics/observability tests) and AddressSanitizer over
# the full suite (heap safety + leaks in the batch/overflow paths).
# Usage: scripts/verify.sh [--skip-tsan] [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
done

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== micro_channel: smoke (batching + ring-vs-mutex throughput) =="
cmake --build build -j --target micro_channel >/dev/null
./build/bench/micro_channel --benchmark_min_time=0.05 \
  --benchmark_filter='BM_ChannelTransfer/(1|64)$|BM_(Channel|Ring)Pipe/64$'

echo "== micro_row: smoke (CoW fan-out scaling) =="
cmake --build build -j --target micro_row >/dev/null
./build/bench/micro_row --benchmark_min_time=0.05 \
  --benchmark_filter='BM_RowFanoutShare/(8|64)$'

echo "== chaos: recovery equivalence across injector seeds =="
# Exactly-once under induced crashes + churn: per-query outputs must be
# byte-identical to the fault-free sync reference for every seed.
./build/tests/astream_tests --gtest_filter='Seeds/ChaosEquivalenceTest.*'

echo "== shard: routing, fan-out, N-shard equivalence, client facade =="
# The sharded router must be invisible to every query: merged outputs at
# N in {1,2,4} (and across live split/move resharding) byte-identical to
# the single-job sync reference; fan-out submit/cancel all-or-nothing.
./build/tests/astream_tests \
  --gtest_filter='SpscQueueTest.*:ShardPlanTest.*:ShardRouterTest.*:JobConfigTest.*:ClientTest.*:ShardEquivalenceTest.*:Shards/ShardCountEquivalenceTest.*'

echo "== shard: kill-one-shard chaos (exactly-once across shard crashes) =="
# A supervised shard killed mid-run (including mid-resharding) must
# recover from its durable checkpoint + source-log replay and the merged
# deployment output must still match the fault-free reference.
./build/tests/astream_tests --gtest_filter='Seeds/ShardKillChaosTest.*'

echo "== micro_shard: smoke (N-shard output-hash equivalence + live split) =="
# Exits nonzero if any sharded leg's output hash diverges from the
# single-job reference.
cmake --build build -j --target micro_shard >/dev/null
./build/bench/micro_shard

echo "== arrangements: sharing on/off vs reference (+ factor rewriting) =="
# Cross-window state sharing must be invisible: heterogeneous-window
# fleets (incl. the non-divisor 7s/3s fallback) byte-identical between
# shared arrangements, the per-query reference mode, the offline
# reference evaluator, spill budgets, and checkpoint/restore.
./build/tests/astream_tests \
  --gtest_filter='WindowMathTest.*:FactorRegistryTest.*:FactorSlicingTest.*:FactorSlicingE2ETest.*:ArrangementEquivalenceTest.*'

echo "== arrangements: same legs under an 8 MiB global memory budget =="
# Memoized compositions are derived state: under the env cap the memo is
# released first, then cold slices spill — outputs must not move.
ASTREAM_MEMORY_BUDGET=8m ./build/tests/astream_tests \
  --gtest_filter='FactorSlicingE2ETest.*:ArrangementEquivalenceTest.*'

echo "== micro_arrange: smoke (N-spec sweep, shared vs per-query hashes) =="
# Exits nonzero if any sweep point's output hash diverges between modes.
cmake --build build -j --target micro_arrange >/dev/null
./build/bench/micro_arrange

echo "== multiway: n-ary join vs cascade reference (+ sub-join sharing) =="
# The n-ary shared join must be invisible: fleets over 3-4 streams (with
# churn, declared-order permutations, common {0,1,2} sub-joins)
# byte-identical between sharing on, the cascade reference mode, the
# offline evaluator, spill budgets, checkpoint/restore, and threaded.
./build/tests/astream_tests \
  --gtest_filter='JoinCostModelTest.*:SubJoinRegistryTest.*:MultiwayEquivalenceTest.*:QueryBuilder.Multiway*:*Mjoin*'

echo "== micro_mjoin: smoke (1-8 query sweep, shared vs per-query hashes) =="
# Exits nonzero if any sweep point's output hash diverges between the
# shared, no-share, and per-query-job modes (short rows for the smoke).
cmake --build build -j --target micro_mjoin >/dev/null
ASTREAM_MJOIN_ROWS=4000 ./build/bench/micro_mjoin

echo "== storage v2: loser-tree merge, compressed runs, compaction, v1 compat =="
# Format v2 (per-block LZ) must round-trip byte-exactly, read PR 5-era v1
# files, survive torn/corrupt compressed blocks, and fold runs without
# changing the merged order (ties broken by input index).
./build/tests/astream_tests \
  --gtest_filter='LzCodecTest.*:RunFileTest.*:CompactorTest.*:MergeTest.*:MemoryGovernorTest.*'

echo "== micro_spill: compressed-budgeted legs (8 MiB cap, compaction on) =="
# Exits nonzero if any leg's output hash (raw v1, compressed, compacted)
# diverges from the unbudgeted reference.
cmake --build build -j --target micro_spill >/dev/null
./build/bench/micro_spill

echo "== spill: full test suite under an 8 MiB global memory budget =="
# Every job created with the default (unset) budget inherits the env cap,
# so the whole suite re-runs with the governor spilling cold slices to
# disk. Reference/control runs pin themselves in-memory with budget -1;
# everything else must produce identical outputs out-of-core.
(cd build && ASTREAM_MEMORY_BUDGET=8m ctest --output-on-failure -j)

echo "== isolation: admission + de-sharing vs the byte-identity reference =="
# The whale must leave the shared plan without moving a single output
# byte, and the admission gate must queue/reject deterministically.
./build/tests/astream_tests \
  --gtest_filter='AdmissionTest.*:AdmissionValidationTest.*:IsolationTest.*:BackpressureRaceTest.*'

echo "== scenario_suite: adversarial tenants under an 8 MiB budget =="
# The headline robustness run (whale-amid-minnows baseline/isolated pair,
# churn storm, zipf skew, bursty/late arrivals), with spilling active:
# exits nonzero if the baseline fails to violate the minnow p99 budget,
# the isolated run fails to meet it, or any admission assertion breaks.
cmake --build build -j --target scenario_suite >/dev/null
ASTREAM_MEMORY_BUDGET=8m ./build/bench/scenario_suite

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== tsan: skipped (--skip-tsan) =="
else
  echo "== tsan: build =="
  cmake -B build-tsan -S . -DASTREAM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target astream_tests

  echo "== tsan: threaded/batched/ring equivalence + channel + observability =="
  # TSAN_OPTIONS makes any race a hard failure.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ./build-tsan/tests/astream_tests \
    --gtest_filter='*ThreadedEquivalence*:*BatchedEquivalence*:*RingEquivalence*:*Channel*:*Metrics*:*Histogram*:*TraceSink*:*SeriesCache*'

  echo "== tsan: contended channel/ring stress (closed-wins race, SPSC handoff, CoW reads) =="
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ./build-tsan/tests/astream_tests \
    --gtest_filter='*SpscRing*:*TaskInbox*:ChannelTest.TryPushNeverReportsFullAfterCloseRace:ChannelTest.Many*:RowTest.ConcurrentReads*'

  echo "== tsan: supervised crash recovery (supervisor/watchdog vs control/task threads) =="
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ./build-tsan/tests/astream_tests \
    --gtest_filter='Seeds/ChaosEquivalenceTest.ExactlyOnceUnderCrashAndChurn/0:RunnerPoisonTest.*:SupervisorTest.*'

  echo "== tsan: shard router (ingress rings, pump threads, merged callbacks) =="
  # Control thread pushes into per-shard SPSC rings while pump threads
  # drain and deliver through the merge callback; the threaded
  # equivalence + kill legs cross those with supervised recovery.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ./build-tsan/tests/astream_tests \
    --gtest_filter='SpscQueueTest.*:ShardRouterTest.*:ShardEquivalenceTest.ThreadedRouterMatchesReference:Shards/ShardCountEquivalenceTest.*:Seeds/ShardKillChaosTest.FullStackKillAndSplitExactlyOnce/0'

  echo "== tsan: compaction worker (fold thread vs owning-task adoption) =="
  # The worker folds runs off-thread and hands them over through the
  # ticket's release/acquire fences; readers adopt on the task thread.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ./build-tsan/tests/astream_tests \
    --gtest_filter='CompactorTest.*'

  echo "== tsan: arrangement multi-reader cursor path (threaded fleet) =="
  # Worker threads resolve versioned cursors against the shared
  # arrangements while the control thread cuts slices and churns queries.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ./build-tsan/tests/astream_tests \
    --gtest_filter='*ThreadedHeterogeneous*:ArrangementEquivalenceTest.JoinFleetSharingOnOffIdentical'

  echo "== tsan: n-ary multiway join (per-stream ingest vs trigger threads) =="
  # Worker threads ingest four streams into per-port arrangements while
  # trigger evaluation probes chains and the control thread churns plans.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ./build-tsan/tests/astream_tests \
    --gtest_filter='*ThreadedMultiway*:MultiwayEquivalenceTest.FleetSharingOnOffIdentical'
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "== asan: skipped (--skip-asan) =="
else
  echo "== asan: build =="
  cmake -B build-asan -S . -DASTREAM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target astream_tests

  echo "== asan: full test suite =="
  ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/astream_tests

  echo "== asan: LZ codec + compressed run format (bounds on malformed input) =="
  # The decompressor is the safety boundary for on-disk bytes (OpenReader
  # skips the CRC); fuzz-ish corrupt-block tests must stay in bounds.
  ASAN_OPTIONS="detect_leaks=1" ./build-asan/tests/astream_tests \
    --gtest_filter='LzCodecTest.*:RunFileTest.*:CompactorTest.*'

  echo "== asan: out-of-core storage under an 8 MiB budget =="
  # The spill/reload/merge and torn-file recovery paths shuffle large
  # buffers through the run-file layer; run them again with the env cap
  # active so the governor's eviction loop is exercised under ASan.
  ASTREAM_MEMORY_BUDGET=8m ASAN_OPTIONS="detect_leaks=1" \
    ./build-asan/tests/astream_tests \
    --gtest_filter='RunFileTest.*:MemoryGovernorTest.*:ParseByteSizeTest.*:ResolveMemoryBudgetTest.*:DurableCheckpointTest.*:SpillEquivalenceTest.*:DurableRecoveryTest.*:CheckpointDedupTest.*:Seeds/ChaosEquivalenceTest.ExactlyOnceUnderCrashChurnAndSpill/*'
fi

echo "verify: OK"
