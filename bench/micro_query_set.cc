// Micro benchmarks of the query-set data structure (Sec. 2.1.1): the
// bitwise operations every shared operator performs per tuple.

#include <benchmark/benchmark.h>

#include "common/bitset.h"
#include "common/rng.h"

namespace astream {
namespace {

DynamicBitset RandomSet(size_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  DynamicBitset b(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) b.Set(i);
  }
  return b;
}

void BM_QuerySetAnd(benchmark::State& state) {
  const auto bits = static_cast<size_t>(state.range(0));
  const DynamicBitset a = RandomSet(bits, 0.5, 1);
  const DynamicBitset b = RandomSet(bits, 0.5, 2);
  for (auto _ : state) {
    DynamicBitset c = a & b;
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySetAnd)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_QuerySetIntersects(benchmark::State& state) {
  const auto bits = static_cast<size_t>(state.range(0));
  const DynamicBitset a = RandomSet(bits, 0.1, 3);
  const DynamicBitset b = RandomSet(bits, 0.1, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySetIntersects)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_QuerySetSetReset(benchmark::State& state) {
  const auto bits = static_cast<size_t>(state.range(0));
  DynamicBitset b(bits);
  size_t i = 0;
  for (auto _ : state) {
    b.Set(i % bits);
    b.Reset((i + bits / 2) % bits);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySetSetReset)->Arg(64)->Arg(1024);

void BM_QuerySetCount(benchmark::State& state) {
  const auto bits = static_cast<size_t>(state.range(0));
  const DynamicBitset a = RandomSet(bits, 0.5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySetCount)->Arg(64)->Arg(1024);

void BM_QuerySetForEachSetBit(benchmark::State& state) {
  const auto bits = static_cast<size_t>(state.range(0));
  const DynamicBitset a = RandomSet(bits, 0.3, 6);
  for (auto _ : state) {
    size_t sum = 0;
    a.ForEachSetBit([&](size_t bit) { sum += bit; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySetForEachSetBit)->Arg(64)->Arg(1024);

void BM_QuerySetHash(benchmark::State& state) {
  const auto bits = static_cast<size_t>(state.range(0));
  const DynamicBitset a = RandomSet(bits, 0.5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Hash());
  }
}
BENCHMARK(BM_QuerySetHash)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace astream

BENCHMARK_MAIN();
