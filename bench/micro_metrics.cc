// Overhead of the observability layer on the selection hot path: the
// same shared-selection record loop with (a) no registry wired, (b) a
// constructed-but-disabled registry (the documented one-branch path), and
// (c) a fully enabled registry (named counters + router-side series).
// Acceptance bar: enabled vs. disabled within 5% on this loop.
//
// Raw primitive costs (Counter::Add, Histogram::Record, Gauge::Set) are
// benchmarked separately so regressions are attributable.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/shared_selection.h"
#include "obs/metrics.h"

namespace astream::core {
namespace {

using spe::Row;

class NullCollector : public spe::Collector {
 public:
  void Emit(spe::StreamElement) override {}
};

spe::ControlMarker MakeWorkload(int num_queries, uint64_t seed) {
  Rng rng(seed);
  auto log = std::make_shared<Changelog>();
  log->epoch = 1;
  log->time = 1;
  for (int q = 0; q < num_queries; ++q) {
    QueryActivation a;
    a.id = q + 1;
    a.slot = q;
    a.created_at = 1;
    a.desc.kind = QueryKind::kSelection;
    a.desc.select_a.push_back(Predicate{
        1 + static_cast<int>(rng.UniformInt(0, 4)),
        static_cast<CmpOp>(rng.UniformInt(0, 4)),
        rng.UniformInt(0, 999)});
    log->created.push_back(std::move(a));
  }
  log->num_slots = num_queries;
  log->ComputeChangelogSet();
  return Changelog::MakeMarker(std::move(log));
}

enum class Wiring { kNoRegistry, kDisabled, kEnabled };

void RunSelection(benchmark::State& state, Wiring wiring) {
  const int num_queries = static_cast<int>(state.range(0));
  obs::MetricsRegistry registry(wiring == Wiring::kEnabled);
  SharedSelection::Config cfg;
  if (wiring != Wiring::kNoRegistry) cfg.metrics = &registry;
  SharedSelection sel(cfg);
  NullCollector out;
  sel.OnMarker(MakeWorkload(num_queries, 7), &out);

  Rng rng(11);
  std::vector<Row> rows;
  for (int i = 0; i < 256; ++i) {
    rows.push_back(Row{rng.UniformInt(0, 99), rng.UniformInt(0, 999),
                       rng.UniformInt(0, 999), rng.UniformInt(0, 999),
                       rng.UniformInt(0, 999), rng.UniformInt(0, 999)});
  }
  size_t i = 0;
  for (auto _ : state) {
    spe::Record r;
    r.event_time = 10;
    r.row = rows[i++ % rows.size()];
    sel.ProcessRecord(0, std::move(r), &out);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SelectionNoRegistry(benchmark::State& state) {
  RunSelection(state, Wiring::kNoRegistry);
}
BENCHMARK(BM_SelectionNoRegistry)->Arg(8)->Arg(64)->Arg(512);

void BM_SelectionMetricsDisabled(benchmark::State& state) {
  RunSelection(state, Wiring::kDisabled);
}
BENCHMARK(BM_SelectionMetricsDisabled)->Arg(8)->Arg(64)->Arg(512);

void BM_SelectionMetricsEnabled(benchmark::State& state) {
  RunSelection(state, Wiring::kEnabled);
}
BENCHMARK(BM_SelectionMetricsEnabled)->Arg(8)->Arg(64)->Arg(512);

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry(true);
  obs::Counter* c = registry.GetCounter("bench.counter");
  for (auto _ : state) c->Add();
  benchmark::DoNotOptimize(c->Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  obs::MetricsRegistry registry(true);
  obs::Gauge* g = registry.GetGauge("bench.gauge");
  int64_t v = 0;
  for (auto _ : state) g->Set(++v);
  benchmark::DoNotOptimize(g->Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry(true);
  obs::Histogram* h = registry.GetHistogram("bench.histogram");
  int64_t v = 0;
  for (auto _ : state) h->Record(v = (v * 1103515245 + 12345) & 0xffff);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_SeriesCacheHit(benchmark::State& state) {
  obs::MetricsRegistry registry(true);
  obs::SeriesCache cache(&registry);
  cache.For(1);  // warm
  for (auto _ : state) {
    obs::QuerySeries* s = cache.For(1);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeriesCacheHit);

}  // namespace
}  // namespace astream::core

BENCHMARK_MAIN();
