// Out-of-core state: throughput and resident-memory footprint of one
// join workload whose live state (~70 MiB of wide tuples) far exceeds
// the smaller memory budgets. Three runs of the identical deterministic
// script — unlimited, 64 MiB, 8 MiB — must produce the same output
// multiset (checked by an order-insensitive hash); the budgeted runs
// trade throughput for a resident footprint pinned near the budget.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/astream.h"
#include "harness/report.h"

namespace astream::bench {
namespace {

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryKind;
using spe::Row;
using spe::Value;

constexpr int kCols = 256;          // ~2 KiB payload per tuple
constexpr int kRows = 80000;        // ~166 MiB pushed over the run
constexpr TimestampMs kWindow = 32000;  // ~70 MiB live at steady state
constexpr TimestampMs kSlide = 8000;

struct RunStats {
  double wall_s = 0;
  int64_t rows_out = 0;
  uint64_t out_hash = 0;
  int64_t max_resident = 0;
  int64_t spills = 0;
  int64_t spill_ms = 0;
  int64_t spill_mib = 0;       // cumulative on-disk spill volume
  int64_t compaction_runs = 0;
  bool ok = false;
};

uint64_t HashRecord(TimestampMs event_time, const Row& row) {
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(event_time);
  for (size_t c = 0; c < row.NumColumns(); ++c) {
    h ^= static_cast<uint64_t>(row.At(c)) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
  }
  return h;
}

RunStats RunOnce(int64_t budget_bytes, bool compress = true,
                 bool compaction = true, int min_runs = 4) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kJoin;
  options.parallelism = 1;
  options.threaded = false;  // deterministic; measures the full spill cost
  options.clock = &clock;
  options.session.batch_size = 1;
  options.storage.memory_budget_bytes = budget_bytes;
  options.storage.compress_spill = compress;
  options.storage.compaction = compaction;
  options.storage.compaction_min_runs = min_runs;
  auto job_or = AStreamJob::Create(options);
  if (!job_or.ok()) return {};
  auto job = std::move(job_or).value();
  if (!job->Start().ok()) return {};

  RunStats stats;
  job->SetResultCallback([&stats](core::QueryId, const spe::Record& r) {
    ++stats.rows_out;
    // Commutative combine: insensitive to emission order, which differs
    // between the hash-join (resident) and merge-join (spilled) paths.
    stats.out_hash += HashRecord(r.event_time, r.row);
  });

  QueryDescriptor d;
  d.kind = QueryKind::kJoin;
  d.window = spe::WindowSpec::Sliding(kWindow, kSlide);
  d.select_a = {Predicate{1, CmpOp::kLt, 1000}};
  if (!job->Submit(d).ok()) return {};
  clock.SetMs(0);
  job->Pump(true);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRows; ++i) {
    const TimestampMs t = 2 + i;
    clock.SetMs(t);
    std::vector<Value> values(kCols, i);
    values[0] = i / 2;  // rows 2k (A) and 2k+1 (B) pair up exactly once
    values[1] = i % 100;
    Row row(std::move(values));
    if (i % 2 == 0) {
      job->PushA(t, std::move(row));
    } else {
      job->PushB(t, std::move(row));
    }
    if (i % 2000 == 1999) job->PushWatermark(t - kWindow);
    if (i % 1000 == 999) {
      const auto snapshot = job->MetricsSnapshot();
      const auto it = snapshot.gauges.find("storage.resident_bytes");
      if (it != snapshot.gauges.end() && it->second > stats.max_resident) {
        stats.max_resident = it->second;
      }
    }
  }
  if (!job->FinishAndWait().ok()) return {};
  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  const auto snapshot = job->MetricsSnapshot();
  const auto it = snapshot.histograms.find("storage.spill_ms");
  if (it != snapshot.histograms.end()) {
    stats.spills = it->second.count;
    stats.spill_ms = it->second.sum;
  }
  if (job->spill_space() != nullptr) {
    stats.spill_mib = job->spill_space()->total_spill_bytes() >> 20;
  }
  if (job->compactor() != nullptr) {
    stats.compaction_runs = job->compactor()->runs_compacted();
  }
  stats.ok = true;
  return stats;
}

bool Run() {
  harness::PrintBanner(
      "micro_spill — out-of-core state vs memory budget",
      "One deterministic join workload (80k wide 256-column tuples, "
      "~70 MiB live window state) under three budgets. The governor "
      "spills coldest slices to run files; join finalize streams a "
      "k-way merge over resident + spilled runs. Outputs must be "
      "identical (order-insensitive hash) across budgets.",
      "sync join topology, parallelism 1, sliding window 32000/8000, "
      "watermark every 2000 tuples");
  struct Leg {
    const char* label;
    int64_t budget;
    bool compress;
    bool compaction;
    int min_runs;
  };
  // The "raw runs" leg is the storage engine v1 behavior (uncompressed
  // blocks, no folding) under the same budget — the perf-opt baseline.
  // "v2 full" is the default engine config (compaction armed at
  // min_runs = 4; this workload's stores close before reaching it);
  // "eager compact" drops the threshold to 2 so every fold path runs,
  // showing the fold's inline cost in a low-fan-in workload.
  const std::vector<Leg> legs = {
      {"unlimited", 1LL << 40, true, true, 4},
      {"64 MiB", 64LL << 20, true, true, 4},
      {"8 MiB raw runs", 8LL << 20, false, false, 4},
      {"8 MiB compressed", 8LL << 20, true, false, 4},
      {"8 MiB v2 full", 8LL << 20, true, true, 4},
      {"8 MiB eager compact", 8LL << 20, true, true, 2}};
  harness::Table table({"leg", "tuples/s", "max resident MiB", "spills",
                        "spill ms", "spill MiB", "compacted runs",
                        "rows out", "output hash"});
  uint64_t reference_hash = 0;
  bool hashes_match = true;
  for (const auto& leg : legs) {
    const RunStats s =
        RunOnce(leg.budget, leg.compress, leg.compaction, leg.min_runs);
    if (!s.ok) {
      std::fprintf(stderr, "run failed for budget %s\n", leg.label);
      continue;
    }
    if (reference_hash == 0) reference_hash = s.out_hash;
    if (s.out_hash != reference_hash) hashes_match = false;
    char rate[32], resident[32], hash[32];
    std::snprintf(rate, sizeof(rate), "%.0f",
                  static_cast<double>(kRows) / s.wall_s);
    std::snprintf(resident, sizeof(resident), "%.1f",
                  static_cast<double>(s.max_resident) / (1 << 20));
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(s.out_hash));
    table.AddRow({leg.label, rate, resident, std::to_string(s.spills),
                  std::to_string(s.spill_ms), std::to_string(s.spill_mib),
                  std::to_string(s.compaction_runs),
                  std::to_string(s.rows_out), hash});
  }
  table.Print();
  std::printf("outputs identical across legs: %s\n",
              hashes_match ? "yes" : "NO — MISMATCH");
  return hashes_match;
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  return astream::bench::Run() ? 0 : 1;
}
