// Micro benchmarks of the changelog-set table (Eq. 1): the memoized
// dynamic program vs. the naive AND-over-span, justifying the paper's
// "compute overlapping parts of a window via dynamic programming".

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/cl_table.h"

namespace astream::core {
namespace {

std::vector<QuerySet> MakeDeltas(int n, int slots, uint64_t seed) {
  Rng rng(seed);
  std::vector<QuerySet> deltas;
  deltas.reserve(n);
  for (int i = 0; i < n; ++i) {
    QuerySet d = QuerySet::AllSet(slots);
    for (int b = 0; b < slots; ++b) {
      if (rng.Bernoulli(0.1)) d.Reset(b);
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

/// Memoized DP (the paper's approach): querying all (i, j) spans.
void BM_ClTableMemoizedAllSpans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int slots = 64;
  const auto deltas = MakeDeltas(n, slots, 42);
  for (auto _ : state) {
    state.PauseTiming();
    ClTable table;
    for (int i = 0; i < n; ++i) table.AddSlice(i, deltas[i], slots);
    state.ResumeTiming();
    uint64_t sink = 0;
    for (int j = 0; j < n; ++j) {
      for (int i = j; i < n; ++i) {
        sink += table.Mask(i, j).Count();
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_ClTableMemoizedAllSpans)->Arg(16)->Arg(64)->Arg(128);

/// Naive recomputation for every span (what the DP avoids).
void BM_ClTableNaiveAllSpans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int slots = 64;
  const auto deltas = MakeDeltas(n, slots, 42);
  for (auto _ : state) {
    uint64_t sink = 0;
    for (int j = 0; j < n; ++j) {
      QuerySet acc = QuerySet::AllSet(slots);
      for (int i = j; i < n; ++i) {
        if (i > j) acc &= deltas[i];
        sink += acc.Count();
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_ClTableNaiveAllSpans)->Arg(16)->Arg(64)->Arg(128);

/// Random-access span queries (the join's actual access pattern): the memo
/// pays off most here.
void BM_ClTableRandomSpans(benchmark::State& state) {
  const int n = 256;
  const int slots = 64;
  const auto deltas = MakeDeltas(n, slots, 7);
  ClTable table;
  for (int i = 0; i < n; ++i) table.AddSlice(i, deltas[i], slots);
  Rng rng(99);
  for (auto _ : state) {
    const int64_t a = rng.UniformInt(0, n - 1);
    const int64_t b = rng.UniformInt(0, n - 1);
    benchmark::DoNotOptimize(table.Mask(a, b).Count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClTableRandomSpans);

}  // namespace
}  // namespace astream::core

BENCHMARK_MAIN();
