// Reproduces Figure 18: the overhead of AStream's sharing machinery.
//   18a — proportion of the three overhead components (query-set
//         generation, bitset operations, data copy in the router) as query
//         parallelism grows. Paper: roughly equal at low qp; data copy
//         dominates at high qp (results must be shipped to physically
//         different query channels).
//   18b — total sharing overhead relative to processing time. Paper: ~10%
//         worst case for a single query, below 2% with many queries.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;

/// Calibrates the cost of one masked query-set AND (used to convert the
/// shared operators' bitset-op counters into time).
double CalibrateBitsetOpNanos(size_t bits) {
  core::QuerySet a = core::QuerySet::AllSet(bits);
  core::QuerySet b;
  for (size_t i = 0; i < bits; i += 3) b.Set(i);
  const int iters = 2'000'000;
  volatile uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    core::QuerySet c = a & b;
    sink += c.Count();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  (void)sink;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
             .count() /
         static_cast<double>(iters);
}

void Run() {
  harness::PrintBanner(
      "Figure 18 — overhead of AStream's components (SC1, 4-node)",
      "18a: share of query-set generation vs. bitset ops vs. router data "
      "copy. 18b: total sharing overhead as % of processing time.",
      std::string(kClusterScaling) +
          "; qp sweep 1..128; bitset op time = counter x calibrated "
          "cost/op");

  const double ns_per_op = CalibrateBitsetOpNanos(128);
  std::printf("calibrated bitset AND: %.1f ns/op\n\n", ns_per_op);

  harness::Table table_a({"query parallelism", "query-set gen %",
                          "bitset ops %", "router copy %"});
  harness::Table table_b(
      {"query parallelism", "overhead % of one core-second/s"});

  for (size_t qp : {1u, 16u, 64u, 128u}) {
    auto sut = MakeAStream(
        core::AStreamJob::TopologyKind::kJoin, 2, /*measure_overhead=*/true);
    if (!sut->Start().ok()) continue;
    workload::Sc1Scenario scenario(/*rate_per_sec=*/400, qp);
    const TimestampMs duration = 2400;
    const auto report = RunScenario(
        sut.get(), &scenario, QueryFactory(QueryKind::kJoin, 31), duration,
        /*push_b=*/true, /*rate=*/200'000, /*sample=*/0, /*warmup=*/800,
        /*drain_at_end=*/false);
    (void)report;
    const auto stats = sut->job()->CollectStats();
    sut->Stop();

    const double queryset_ns = static_cast<double>(stats.queryset_nanos);
    const double bitset_ns =
        static_cast<double>(stats.bitset_ops) * ns_per_op;
    const double copy_ns = static_cast<double>(stats.fanout_nanos);
    const double total = queryset_ns + bitset_ns + copy_ns;
    if (total <= 0) continue;
    table_a.AddRow({std::to_string(qp),
                    harness::FormatDouble(100 * queryset_ns / total, 1),
                    harness::FormatDouble(100 * bitset_ns / total, 1),
                    harness::FormatDouble(100 * copy_ns / total, 1)});
    // 18b: pure sharing bookkeeping (bitset masks + router copies) as a
    // share of processing time. Query-set *generation* is excluded from
    // the total: it contains the predicate evaluation a query-at-a-time
    // system pays once per query anyway (see EXPERIMENTS.md).
    const double wall_ns = duration * 1e6;
    table_b.AddRow(
        {std::to_string(qp),
         harness::FormatDouble(100 * (bitset_ns + copy_ns) / wall_ns, 2)});
  }

  // 18c (repo extension): the storage engine v2 share of the overhead
  // under a memory budget — compaction time and the spill byte savings
  // (compressed ratio, hot-slice reload saves) from the obs gauges.
  harness::Table table_c({"gauge", "value"});
  {
    core::AStreamJob::Options options;
    options.topology = core::AStreamJob::TopologyKind::kJoin;
    options.parallelism = 2;
    options.threaded = true;
    options.measure_overhead = true;
    options.channel_capacity = 2048;
    options.storage.memory_budget_bytes = 8LL << 20;
    options.storage.compaction_min_runs = 2;
    auto sut = std::make_unique<harness::AStreamSut>(options);
    if (sut->Start().ok()) {
      workload::Sc1Scenario scenario(/*rate_per_sec=*/400, 16);
      RunScenario(sut.get(), &scenario, QueryFactory(QueryKind::kJoin, 31),
                  /*duration=*/2400, /*push_b=*/true, /*rate=*/200'000,
                  /*sample=*/0, /*warmup=*/800, /*drain_at_end=*/false);
      const auto snapshot = sut->job()->MetricsSnapshot();
      for (const char* g :
           {"storage.compaction_runs", "storage.compaction_ms",
            "storage.compressed_ratio_bp", "storage.reload_saves"}) {
        const auto it = snapshot.gauges.find(g);
        table_c.AddRow(
            {g, it == snapshot.gauges.end() ? "-"
                                            : std::to_string(it->second)});
      }
      sut->Stop();
    }
  }

  std::printf("Figure 18a — overhead proportion of AStream components:\n");
  table_a.Print();
  std::printf(
      "\nFigure 18b — sharing bookkeeping overhead (bitset ops + router "
      "copies, share of one core-second per wall second):\n");
  table_b.Print();
  std::printf(
      "\nFigure 18c — storage engine v2 under an 8 MiB budget (qp=16; "
      "compressed_ratio_bp = on-disk/raw in basis points, reload_saves = "
      "evictions redirected away from re-read slices):\n");
  table_c.Print();
  std::printf(
      "\nExpected shape vs. paper: components roughly comparable at low "
      "qp; the router's fan-out dominates as qp grows (every result is "
      "shipped to each subscribed query's channel — with copy-on-write "
      "rows this is a refcount bump, not a data copy). Total overhead "
      "stays a small fraction of processing time and shrinks per query as "
      "sharing amortizes (paper: <2%% at 1000 queries).\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
