#ifndef ASTREAM_BENCH_BENCH_UTIL_H_
#define ASTREAM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "common/logging.h"
#include "harness/astream_sut.h"
#include "harness/baseline_sut.h"
#include "harness/driver.h"
#include "harness/report.h"
#include "workload/query_generator.h"
#include "workload/scenario.h"

namespace astream::bench {

/// Shared scale-down notes printed by every figure bench. The paper ran on
/// a 4-/8-node cluster (16 cores each) for 1000 s; this harness runs on
/// one box for seconds. Shapes, not absolute numbers, are the target.
inline constexpr char kClusterScaling[] =
    "4-node cluster -> parallelism 2, 8-node -> parallelism 4; "
    "1000s runs -> ~2s; query rates x10 so ramps fit; "
    "1000 qp -> 200 qp; windows 400-1200ms; 1000 distinct keys";

/// Experiment seed: benches derive their generator seeds through this, so
/// `ASTREAM_SEED=<n>` re-rolls the whole suite in one move (distinct
/// per-bench streams survive — the env seed is mixed with the bench's own
/// fallback) while unset keeps the historical defaults bit-for-bit.
inline uint64_t BenchSeed(uint64_t fallback = 42) {
  const char* env = std::getenv("ASTREAM_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<uint64_t>(v) ^ (fallback * 0x9e3779b97f4a7c15ULL);
}

/// Default generator configs used across the figure benches.
inline workload::QueryGenerator::Config BenchQueryConfig(bool sessions =
                                                             false) {
  workload::QueryGenerator::Config cfg;
  cfg.num_fields = 5;
  cfg.fields_max = 1000;
  cfg.window_min = 400;
  cfg.window_max = 1200;
  cfg.predicates_per_side = 1;
  cfg.session_probability = sessions ? 0.1 : 0.0;
  cfg.slide_min_frac = 0.3;  // bounds trigger density on one core
  return cfg;
}

inline workload::DataGenerator::Config BenchDataConfig() {
  workload::DataGenerator::Config cfg;
  cfg.key_max = 1000;  // the paper's 1000 distinct keys
  cfg.fields_max = 1000;
  cfg.num_fields = 5;
  return cfg;
}

/// Query factory for one query kind with a private generator.
inline std::function<core::QueryDescriptor()> QueryFactory(
    core::QueryKind kind, uint64_t seed, bool sessions = false) {
  auto gen = std::make_shared<workload::QueryGenerator>(
      BenchQueryConfig(sessions), BenchSeed(seed));
  return [gen, kind]() {
    switch (kind) {
      case core::QueryKind::kSelection:
        return gen->Selection();
      case core::QueryKind::kAggregation:
        return gen->Aggregation();
      case core::QueryKind::kJoin:
        return gen->Join();
      case core::QueryKind::kComplex:
        return gen->Complex(3);
      case core::QueryKind::kMultiJoin:
        return gen->Multiway(3);
    }
    return gen->Selection();
  };
}

inline std::unique_ptr<harness::AStreamSut> MakeAStream(
    core::AStreamJob::TopologyKind topology, int parallelism,
    bool measure_overhead = false, size_t batch_size = 1,
    bool use_spsc_rings = true) {
  core::AStreamJob::Options options;
  options.topology = topology;
  options.parallelism = parallelism;
  options.threaded = true;
  options.measure_overhead = measure_overhead;
  options.channel_capacity = 2048;
  options.batch_size = batch_size;
  options.use_spsc_rings = use_spsc_rings;
  auto sut = std::make_unique<harness::AStreamSut>(options);
  return sut;
}

/// Parses a `--batch_size=N` argv knob (figure benches); 1 = element-at-
/// a-time.
inline size_t ParseBatchSize(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--batch_size=";
    if (arg.rfind(prefix, 0) == 0) {
      const long v = std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
      if (v > 0) return static_cast<size_t>(v);
    }
  }
  return 1;
}

/// Parses a `--rings=0|1` argv knob (figure benches); 1 (default) routes
/// internal single-producer edges through lock-free SPSC rings, 0 forces
/// the mutex MPMC channel everywhere (the pre-ring data plane).
inline bool ParseUseRings(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--rings=";
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtol(arg.c_str() + prefix.size(), nullptr, 10) != 0;
    }
  }
  return true;
}

inline std::unique_ptr<harness::BaselineSut> MakeFlink(
    int parallelism, TimestampMs deploy_cost_ms = 150) {
  harness::BaselineSut::Config cfg;
  cfg.parallelism = parallelism;
  cfg.threaded = true;
  cfg.deploy_cost_ms = deploy_cost_ms;
  auto sut = std::make_unique<harness::BaselineSut>(cfg);
  return sut;
}

/// Runs a scenario for `duration_ms` against a started SUT.
inline harness::Driver::Report RunScenario(
    harness::StreamSut* sut, workload::Scenario* scenario,
    std::function<core::QueryDescriptor()> factory, TimestampMs duration_ms,
    bool push_b, double rate = 0, TimestampMs sample_interval = 0,
    TimestampMs warmup_ms = 0, bool drain_at_end = true) {
  harness::Driver::Config cfg;
  cfg.duration_ms = duration_ms;
  cfg.data_rate_per_sec = rate;
  cfg.push_b = push_b;
  cfg.query_factory = std::move(factory);
  cfg.data = BenchDataConfig();
  cfg.seed = BenchSeed(cfg.seed);
  cfg.sample_interval_ms = sample_interval;
  cfg.warmup_ms = warmup_ms;
  cfg.drain_at_end = drain_at_end;
  harness::Driver driver(sut, scenario, cfg);
  return driver.Run();
}

/// Fixed-window single-query factory: one deterministic tumbling-window
/// query, identical for AStream and the baseline (fair overhead
/// comparison; the paper's single-query bars).
inline std::function<core::QueryDescriptor()> SingleQueryFactory(
    core::QueryKind kind) {
  return [kind]() {
    core::QueryDescriptor d;
    d.kind = kind;
    d.select_a = {core::Predicate{1, core::CmpOp::kLt, 700}};
    d.select_b = {core::Predicate{2, core::CmpOp::kGe, 300}};
    d.window = spe::WindowSpec::Tumbling(800);
    d.agg = {spe::AggKind::kSum, 1};
    d.join_depth = 1;
    return d;
  };
}

/// The paper's sustainability criterion: a system cannot sustain the
/// workload when its query deployment latency keeps growing (requests pile
/// up behind serialized job deployments) or internal queues blow up.
inline bool DeploymentLatencyGrows(const harness::Driver::Report& report) {
  const auto& ev = report.qos.deployment_events;
  if (ev.size() < 6) return false;
  const size_t third = ev.size() / 3;
  double first = 0, last = 0;
  for (size_t i = 0; i < third; ++i) {
    first += static_cast<double>(ev[i].second);
    last += static_cast<double>(ev[ev.size() - 1 - i].second);
  }
  first /= third;
  last /= third;
  return last > 1500 && last > 3 * std::max(first, 1.0);
}

inline bool LooksSustainable(const harness::Driver::Report& report) {
  return report.sustainable && !DeploymentLatencyGrows(report);
}

inline core::AStreamJob::TopologyKind TopologyFor(core::QueryKind kind) {
  switch (kind) {
    case core::QueryKind::kAggregation:
      return core::AStreamJob::TopologyKind::kAggregation;
    case core::QueryKind::kJoin:
      return core::AStreamJob::TopologyKind::kJoin;
    case core::QueryKind::kComplex:
      return core::AStreamJob::TopologyKind::kComplex;
    case core::QueryKind::kSelection:
      return core::AStreamJob::TopologyKind::kAggregation;
    case core::QueryKind::kMultiJoin:
      return core::AStreamJob::TopologyKind::kMultiway;
  }
  return core::AStreamJob::TopologyKind::kAggregation;
}

inline const char* KindLabel(core::QueryKind kind) {
  return kind == core::QueryKind::kJoin ? "Join" : "Agg.";
}

/// Quiet logs during measurement loops.
inline void BenchInit() { Logger::SetLevel(LogLevel::kWarn); }

}  // namespace astream::bench

#endif  // ASTREAM_BENCH_BENCH_UTIL_H_
