// Reproduces Figure 14: slowest (14a) and overall (14b) data throughput
// for SC2.
//
// Paper anchors: slowest throughput in SC2 (~100-350 K/s) is HIGHER than
// in SC1 because the fluctuating workload keeps fewer queries active and
// query-sets small; overall throughput reaches ~2-16 M/s. Flink is at
// least 10x slower before failing.

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;

void Run(size_t batch_size) {
  harness::PrintBanner(
      "Figure 14 — SC2 data throughput (slowest & overall)",
      "'n q/10s' = n queries created and n deleted every 10 s "
      "(scaled: every 1 s).",
      kClusterScaling);
  std::printf("data-plane batch size: %zu%s\n\n", batch_size,
              batch_size == 1 ? " (element-at-a-time)" : "");

  for (QueryKind kind : {QueryKind::kJoin, QueryKind::kAggregation}) {
    for (int par : {2, 4}) {
      harness::Table table({"config", "slowest tput/s (14a)",
                            "overall tput/s (14b)", "avg qp",
                            "sustainable"});
      for (size_t batch : {10u, 30u, 50u}) {
        auto sut = MakeAStream(TopologyFor(kind), par,
                               /*measure_overhead=*/false, batch_size);
        if (!sut->Start().ok()) continue;
        workload::Sc2Scenario scenario(batch, /*period_ms=*/1000);
        const double rate = kind == QueryKind::kJoin ? 250'000 : 0;
        const auto report = RunScenario(
            sut.get(), &scenario, QueryFactory(kind, 17),
            /*duration_ms=*/3000, kind == QueryKind::kJoin,
            rate, /*sample=*/0, /*warmup=*/1000,
            /*drain_at_end=*/false);
        table.AddRow({"AStream, " + std::to_string(batch) + "q/10s",
                      harness::FormatCount(report.input_rate_per_sec),
                      harness::FormatCount(report.overall_rate_per_sec),
                      harness::FormatDouble(report.avg_active_queries, 1),
                      LooksSustainable(report) ? "yes" : "FAIL"});
        sut->Stop();
      }
      std::printf("%s queries, %s cluster:\n", KindLabel(kind),
                  par == 2 ? "4-node" : "8-node");
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper (Fig. 14): slowest throughput above the "
      "SC1 values at comparable query counts (short-running queries keep "
      "the shared query-sets small); throughput decreases as the churn "
      "batch grows from 10 to 50.\n");
}

}  // namespace
}  // namespace astream::bench

int main(int argc, char** argv) {
  astream::bench::BenchInit();
  astream::bench::Run(astream::bench::ParseBatchSize(argc, argv));
  return 0;
}
