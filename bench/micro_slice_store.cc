// Micro benchmark / ablation of the adaptive slice data structure
// (Sec. 3.1.4 + 3.2.3): grouped-by-query-set vs. flat-list layout across
// query counts. The paper's heuristic: with more than ~10 concurrent
// queries most groups hold a single tuple and the list wins.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/slice_store.h"
#include "core/slicing.h"

namespace astream::core {
namespace {

using spe::Row;

TupleStore FillStore(StoreMode mode, int tuples, int queries, int keys,
                     uint64_t seed) {
  Rng rng(seed);
  TupleStore store(mode);
  for (int i = 0; i < tuples; ++i) {
    Row row{rng.UniformInt(0, keys - 1), rng.UniformInt(0, 999)};
    QuerySet tags;
    for (int q = 0; q < queries; ++q) {
      // Each query matches ~half the tuples (random predicates).
      if (rng.Bernoulli(0.5)) tags.Set(q);
    }
    if (tags.None()) tags.Set(static_cast<size_t>(
        rng.UniformInt(0, queries - 1)));
    store.Insert(row, tags);
  }
  return store;
}

void RunJoin(benchmark::State& state, StoreMode mode) {
  const int queries = static_cast<int>(state.range(0));
  const int tuples = 512;
  const TupleStore a = FillStore(mode, tuples, queries, 32, 1);
  const TupleStore b = FillStore(mode, tuples, queries, 32, 2);
  const QuerySet mask = QuerySet::AllSet(queries);
  for (auto _ : state) {
    int64_t results = 0;
    TupleStore::Join(a, b, mask,
                     [&](const Row&, const Row&, QuerySet) { ++results; });
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * tuples);
  state.counters["avg_group_size"] = a.AvgGroupSize();
}

void BM_SliceJoinGrouped(benchmark::State& state) {
  RunJoin(state, StoreMode::kGrouped);
}
BENCHMARK(BM_SliceJoinGrouped)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_SliceJoinList(benchmark::State& state) {
  RunJoin(state, StoreMode::kList);
}
BENCHMARK(BM_SliceJoinList)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_StoreInsertGrouped(benchmark::State& state) {
  Rng rng(3);
  const int queries = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    TupleStore store(StoreMode::kGrouped);
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      Row row{rng.UniformInt(0, 31), i};
      QuerySet tags;
      for (int q = 0; q < queries; ++q) {
        if (rng.Bernoulli(0.5)) tags.Set(q);
      }
      store.Insert(row, tags);
    }
    benchmark::DoNotOptimize(store.NumTuples());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_StoreInsertGrouped)->Arg(4)->Arg(64);

void BM_StoreConvert(benchmark::State& state) {
  const int queries = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    TupleStore store =
        FillStore(StoreMode::kGrouped, 1024, queries, 32, 11);
    state.ResumeTiming();
    store.ConvertTo(StoreMode::kList);
    benchmark::DoNotOptimize(store.NumTuples());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_StoreConvert)->Arg(8)->Arg(64);

void BM_SliceTrackerSliceFor(benchmark::State& state) {
  SliceTracker tracker;
  tracker.SetNumSlots(16);
  tracker.CutAt(0, QuerySet::AllSet(16));
  Rng rng(5);
  for (int slot = 0; slot < 16; ++slot) {
    tracker.AddQuery(slot, 0,
                     spe::WindowSpec::Sliding(
                         rng.UniformInt(400, 1200),
                         rng.UniformInt(150, 400)));
  }
  TimestampMs t = 0;
  for (auto _ : state) {
    t += 3;
    benchmark::DoNotOptimize(tracker.SliceFor(t).index);
    if (t % 10'000 == 0) tracker.EvictBefore(t - 2000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SliceTrackerSliceFor);

}  // namespace
}  // namespace astream::core

BENCHMARK_MAIN();
