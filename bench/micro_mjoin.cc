// Shared multiway join (DESIGN.md §15): cost of adding ad-hoc n-ary join
// queries over one set of streams. With sharing on, every query over the
// common {0,1,2} core rides ONE set of per-stream arrangements and ONE
// materialized [0,1,2] sub-join chain (4-way queries attach and extend
// it), so state bytes and probe CPU stay near-flat as the query count
// grows 1 → 8. The per-query legs rebuild the cost sharing removes: one
// dedicated job (own arrangements, own chains) per query. Outputs must
// be identical (order-insensitive hash) between modes at every sweep
// point — including against a no-share single-job reference leg.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/astream.h"
#include "core/query_builder.h"
#include "harness/report.h"

namespace astream::bench {
namespace {

using core::AStreamJob;
using core::QueryDescriptor;
using spe::Row;
using spe::Value;

constexpr int kStreams = 4;
constexpr int kKeys = 256;
constexpr TimestampMs kWindow = 500;  // tumbling, shared by every query

/// Tuples per stream; `ASTREAM_MJOIN_ROWS=<n>` shrinks the sweep (the
/// verify.sh smoke leg runs a short pass).
int RowsPerStream() {
  const char* env = std::getenv("ASTREAM_MJOIN_ROWS");
  if (env == nullptr || *env == '\0') return 16000;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<int>(v) : 16000;
}

/// Query j: a 3-way join over the common {0,1,2} core (even j) or a
/// 4-way join extending it with stream 3 (odd j), with a per-query
/// predicate on stream 1 so the queries stay distinct.
QueryDescriptor QueryAt(int j) {
  auto b = core::QueryBuilder::MultiwayJoin();
  b.Input(0).Input(1).Input(2);
  if (j % 2 == 1) b.Input(3);
  b.WhereStream(1, 1, core::CmpOp::kLt, 1000 - 60 * j);
  b.TumblingWindow(kWindow);
  auto q = b.Build();
  if (!q.ok()) {
    std::fprintf(stderr, "bad query %d: %s\n", j, q.status().ToString().c_str());
    std::exit(1);
  }
  return *q;
}

struct RunStats {
  double wall_s = 0;
  int64_t rows_out = 0;
  uint64_t out_hash = 0;
  int64_t max_state_bytes = 0;
  int64_t chains_reused = 0;
  int64_t subjoins_attached = 0;
  bool ok = false;
};

uint64_t HashRecord(TimestampMs event_time, const Row& row) {
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(event_time);
  for (size_t c = 0; c < row.NumColumns(); ++c) {
    h ^= static_cast<uint64_t>(row.At(c)) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
  }
  return h;
}

enum class Mode { kShared, kNoShare, kPerQuery };

/// One sweep point: `num_queries` n-ary joins over the same four
/// streams. kShared/kNoShare run them in ONE job (sharing on/off);
/// kPerQuery runs one dedicated job per query — the deploy-per-query
/// baseline the paper's SC1 measures.
RunStats RunOnce(int num_queries, Mode mode) {
  const int kRows = RowsPerStream();
  ManualClock clock;
  const int num_jobs = mode == Mode::kPerQuery ? num_queries : 1;

  RunStats stats;
  auto sink = [&stats](core::QueryId, const spe::Record& r) {
    ++stats.rows_out;
    // Commutative combine: insensitive to emission and job order.
    stats.out_hash += HashRecord(r.event_time, r.row);
  };

  std::vector<std::unique_ptr<AStreamJob>> jobs;
  for (int k = 0; k < num_jobs; ++k) {
    AStreamJob::Options options;
    options.topology = AStreamJob::TopologyKind::kMultiway;
    options.num_streams = kStreams;
    options.parallelism = 1;
    options.threaded = false;  // deterministic; measures probe CPU
    options.clock = &clock;
    // Batch all submits into ONE changelog (common origin).
    options.session.batch_size = 1000;
    options.session.max_timeout_ms = 1 << 30;
    options.share_arrangements = mode == Mode::kShared;
    auto job_or = AStreamJob::Create(options);
    if (!job_or.ok()) return {};
    jobs.push_back(std::move(job_or).value());
    if (!jobs.back()->Start().ok()) return {};
    jobs.back()->SetResultCallback(sink);
  }

  clock.SetMs(0);
  for (int j = 0; j < num_queries; ++j) {
    AStreamJob* job = jobs[mode == Mode::kPerQuery ? j : 0].get();
    if (!job->Submit(QueryAt(j)).ok()) return {};
  }
  for (auto& job : jobs) job->Pump(true);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRows; ++i) {
    for (int s = 0; s < kStreams; ++s) {
      const TimestampMs t = 2 + s + i * 4;
      clock.SetMs(t);
      const Row row{(i * 7 + s * 3) % kKeys, (i + 137 * s) % 1000};
      for (auto& job : jobs) job->Push(s, t, row);
    }
    if (i % 500 == 499) {
      const TimestampMs wm = 2 + i * 4 - 3 * kWindow;
      for (auto& job : jobs) job->PushWatermark(wm);
    }
    if (i % 1000 == 999) {
      int64_t bytes = 0;
      for (auto& job : jobs) {
        const auto snapshot = job->MetricsSnapshot();
        const auto it = snapshot.gauges.find("state.arena_bytes");
        if (it != snapshot.gauges.end()) bytes += it->second;
      }
      if (bytes > stats.max_state_bytes) stats.max_state_bytes = bytes;
    }
  }
  for (auto& job : jobs) {
    if (!job->FinishAndWait().ok()) return {};
    const AStreamJob::OperatorStats op = job->CollectStats();
    stats.chains_reused += op.mjoin_chains_reused;
    stats.subjoins_attached += op.subjoins_attached;
  }
  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  stats.ok = true;
  return stats;
}

/// Best-of-3 wall time; hashes and row counts must agree across repeats.
RunStats RunBest(int num_queries, Mode mode) {
  RunStats best;
  for (int rep = 0; rep < 3; ++rep) {
    const RunStats s = RunOnce(num_queries, mode);
    if (!s.ok) return {};
    if (rep > 0 && (s.out_hash != best.out_hash ||
                    s.rows_out != best.rows_out)) {
      return {};
    }
    if (rep == 0 || s.wall_s < best.wall_s) {
      const uint64_t hash = rep == 0 ? s.out_hash : best.out_hash;
      best = s;
      best.out_hash = hash;
    }
  }
  return best;
}

void Run() {
  harness::PrintBanner(
      "micro_mjoin — shared n-ary join vs per-query jobs",
      "Sweep over N ad-hoc multiway joins (3-way over the common {0,1,2} "
      "core; every other query extends to 4-way with stream 3). Shared: "
      "one job, one set of per-stream arrangements, one materialized "
      "[0,1,2] sub-join that later queries attach to. No-share: the same "
      "job with the registry and chain memo disabled (the cascade "
      "reference mode). Per-query: one dedicated job per query. Outputs "
      "must be hash-identical across all three modes at every N.",
      "sync multiway topology (4 streams), parallelism 1, 16k tuples per "
      "stream (ASTREAM_MJOIN_ROWS overrides), 256 keys, tumbling 500ms, "
      "watermark every 500 tuples");
  harness::Table table({"queries", "mode", "tuples/s", "state KiB",
                        "chains reused", "subjoins attached", "rows out",
                        "output hash"});
  bool hashes_match = true;
  bool all_ok = true;
  double shared8_wall = 0, perquery8_wall = 0;
  int64_t shared8_bytes = 0, perquery8_bytes = 0;
  const int kRows = RowsPerStream();
  for (int n : {1, 2, 4, 8}) {
    const RunStats shared = RunBest(n, Mode::kShared);
    const RunStats noshare = RunBest(n, Mode::kNoShare);
    const RunStats perquery = RunBest(n, Mode::kPerQuery);
    if (!shared.ok || !noshare.ok || !perquery.ok) {
      std::fprintf(stderr, "run failed for n=%d\n", n);
      all_ok = false;
      continue;
    }
    if (shared.out_hash != noshare.out_hash ||
        shared.out_hash != perquery.out_hash ||
        shared.rows_out != noshare.rows_out ||
        shared.rows_out != perquery.rows_out) {
      hashes_match = false;
    }
    if (n == 8) {
      shared8_wall = shared.wall_s;
      shared8_bytes = shared.max_state_bytes;
      perquery8_wall = perquery.wall_s;
      perquery8_bytes = perquery.max_state_bytes;
    }
    for (const auto& [label, s] :
         {std::pair<const char*, const RunStats&>{"shared", shared},
          std::pair<const char*, const RunStats&>{"no-share", noshare},
          std::pair<const char*, const RunStats&>{"per-query", perquery}}) {
      char rate[32], state[32], hash[32];
      std::snprintf(rate, sizeof(rate), "%.0f",
                    static_cast<double>(kRows) * kStreams / s.wall_s);
      std::snprintf(state, sizeof(state), "%.0f",
                    static_cast<double>(s.max_state_bytes) / 1024);
      std::snprintf(hash, sizeof(hash), "%016llx",
                    static_cast<unsigned long long>(s.out_hash));
      table.AddRow({std::to_string(n), label, rate, state,
                    std::to_string(s.chains_reused),
                    std::to_string(s.subjoins_attached),
                    std::to_string(s.rows_out), hash});
    }
  }
  table.Print();
  std::printf("outputs identical shared vs no-share vs per-query: %s\n",
              hashes_match ? "yes" : "NO — MISMATCH");
  if (perquery8_wall > 0 && perquery8_bytes > 0) {
    const double cpu_ratio = shared8_wall / perquery8_wall;
    const double state_ratio =
        static_cast<double>(shared8_bytes) / perquery8_bytes;
    std::printf(
        "shared vs per-query at 8 queries: state %.2fx, wall %.2fx "
        "(target: <= 0.5x both)\n",
        state_ratio, cpu_ratio);
  }
  if (!hashes_match || !all_ok) std::exit(1);
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
