// Reproduces Figure 13: average event-time latency for SC2 (fluctuating
// workload: n queries created AND deleted every m seconds).
//
// Paper anchors: SC2 latencies (~0.3-2.5 s) are LOWER than SC1's because
// queries are short-running, so the number of concurrently active queries
// stays small.

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;

void Run() {
  harness::PrintBanner(
      "Figure 13 — SC2 average event-time latency",
      "'n q/m s' = n queries submitted and n stopped every m seconds.",
      std::string(kClusterScaling) +
          "; n q/10s -> n q/1s (time scale /10); data rate 50K/s");

  for (QueryKind kind : {QueryKind::kJoin, QueryKind::kAggregation}) {
    for (int par : {2, 4}) {
      harness::Table table(
          {"config", "mean event-time latency", "p95", "outputs"});
      for (size_t batch : {10u, 30u, 50u}) {
        auto sut = MakeAStream(TopologyFor(kind), par);
        if (!sut->Start().ok()) continue;
        workload::Sc2Scenario scenario(batch, /*period_ms=*/1000);
        const auto report = RunScenario(
            sut.get(), &scenario, QueryFactory(kind, 13),
            /*duration_ms=*/3000, kind == QueryKind::kJoin,
            /*rate=*/50'000, /*sample=*/0, /*warmup=*/0,
            /*drain_at_end=*/false);
        const auto& lat = report.qos.event_time_latency;
        table.AddRow({"AStream, " + std::to_string(batch) + "q/10s",
                      harness::FormatMs(lat.mean()),
                      harness::FormatMs(
                          static_cast<double>(lat.Percentile(95))),
                      harness::FormatCount(
                          static_cast<double>(lat.count()))});
        sut->Stop();
      }
      std::printf("%s queries, %s cluster:\n", KindLabel(kind),
                  par == 2 ? "4-node" : "8-node");
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper (Fig. 13): latencies below the SC1 values "
      "of Fig. 12 at comparable churn, because SC2 queries are "
      "short-running and the active set stays small.\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
