// Reproduces Figure 11: ad-hoc query deployment latencies for SC1 across
// join/aggregation workloads and cluster sizes.
//
// Paper anchors: AStream single query ~5-10 s (first physical deployment),
// Flink single query similar; AStream "1 q/s 20 qp" has HIGHER latency
// than "100 q/s 1000 qp" because the former generates 20 changelogs while
// the latter batches 100 requests per changelog (10 changelogs total).

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;

struct Config {
  const char* label;
  bool astream;
  double rate_qps;
  size_t max_qp;
  TimestampMs duration_ms;
};

void Run() {
  harness::PrintBanner(
      "Figure 11 — SC1 ad-hoc query deployment latency",
      "Mean deployment latency per configuration. Note the paper's "
      "batching effect: few queries per changelog => more changelogs => "
      "higher average latency than large batched bursts.",
      std::string(kClusterScaling) + "; session batch-size 100, timeout 1s");

  const Config configs[] = {
      {"AStream, single query", true, 50, 1, 1500},
      {"Flink, single query", false, 50, 1, 1500},
      {"AStream, 1q/s 20qp", true, 10, 20, 3000},
      {"AStream, 10q/s 60qp", true, 60, 60, 2000},
      {"AStream, 100q/s 1000qp*", true, 400, 0, 2000},
  };

  for (QueryKind kind : {QueryKind::kJoin, QueryKind::kAggregation}) {
    for (int par : {2, 4}) {
      harness::Table table(
          {"config", "mean deploy latency", "p95", "max", "changelogs"});
      for (const Config& cfg : configs) {
        size_t max_qp = cfg.max_qp;
        if (max_qp == 0) max_qp = kind == QueryKind::kJoin ? 60 : 200;
        std::unique_ptr<harness::StreamSut> sut;
        if (cfg.astream) {
          sut = MakeAStream(TopologyFor(kind), par);
        } else {
          sut = MakeFlink(par);
        }
        if (!sut->Start().ok()) continue;
        workload::Sc1Scenario scenario(cfg.rate_qps, max_qp);
        auto factory = max_qp == 1 ? SingleQueryFactory(kind)
                                   : QueryFactory(kind, 11);
        // Bounded join rate + no drain: the metric here is deployment
        // latency, not output volume.
        const double rate = kind == QueryKind::kJoin ? 150'000 : 0;
        const auto report = RunScenario(
            sut.get(), &scenario, std::move(factory), cfg.duration_ms,
            kind == QueryKind::kJoin, rate, /*sample=*/0, /*warmup=*/0,
            /*drain_at_end=*/false);
        const auto& lat = report.qos.deployment_latency;
        // Changelog count approximation: one ack burst per epoch.
        std::string changelogs = "-";
        if (cfg.astream) {
          auto* as = static_cast<harness::AStreamSut*>(sut.get());
          changelogs = std::to_string(as->job()->session().last_epoch());
        }
        table.AddRow({cfg.label, harness::FormatMs(lat.mean()),
                      harness::FormatMs(
                          static_cast<double>(lat.Percentile(95))),
                      harness::FormatMs(static_cast<double>(lat.max())),
                      changelogs});
        sut->Stop();
      }
      std::printf("%s queries, %s cluster:\n", KindLabel(kind),
                  par == 2 ? "4-node" : "8-node");
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper (Fig. 11): AStream's mean latency is "
      "driven by changelog batching (batch timeout 1s); bursty submission "
      "(100q/s) amortizes to fewer changelogs and lower means than slow "
      "drips (1q/s).\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
