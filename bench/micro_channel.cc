// Micro benchmark for the tentpole of the batched data plane: how much
// channel throughput does batching buy? Envelope-at-a-time (batch size 1)
// pays one lock acquisition and one queue operation per element; a batch
// of B amortizes both over B elements. Acceptance floor: >= 3x transfer
// throughput at batch 64 vs. batch 1.

#include <benchmark/benchmark.h>

#include <thread>

#include "spe/channel.h"

namespace astream::spe {
namespace {

StreamElement MakeEl(int i) {
  return StreamElement::MakeRecord(i, Row{i, i});
}

BatchEnvelope MakeBatch(int first, size_t count) {
  BatchEnvelope b;
  for (size_t i = 0; i < count; ++i) {
    b.elements.Add(MakeEl(first + static_cast<int>(i)));
  }
  return b;
}

// Same-thread push + pop: isolates the per-element lock/queue/allocation
// cost without scheduler noise.
void BM_ChannelTransfer(benchmark::State& state) {
  const auto batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kElements = 4096;
  Channel ch(kElements + 64);
  for (auto _ : state) {
    size_t pushed = 0;
    while (pushed < kElements) {
      ch.Push(MakeBatch(static_cast<int>(pushed), batch_size));
      pushed += batch_size;
    }
    size_t popped = 0;
    while (popped < kElements) {
      auto b = ch.Pop();
      popped += b->elements.size();
      benchmark::DoNotOptimize(b);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_ChannelTransfer)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Producer thread -> consumer thread: adds condition-variable wakeups and
// real lock contention — the threaded runner's actual hot edge.
void BM_ChannelPipe(benchmark::State& state) {
  const auto batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kElements = 1 << 15;
  for (auto _ : state) {
    Channel ch(1024);
    std::thread consumer([&ch] {
      size_t n = 0;
      while (auto b = ch.Pop()) {
        n += b->elements.size();
      }
      benchmark::DoNotOptimize(n);
    });
    size_t pushed = 0;
    while (pushed < kElements) {
      ch.Push(MakeBatch(static_cast<int>(pushed), batch_size));
      pushed += batch_size;
    }
    ch.Close();
    consumer.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_ChannelPipe)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace astream::spe

BENCHMARK_MAIN();
