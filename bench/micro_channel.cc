// Micro benchmark for the data-plane channels. Two tentpoles measured:
//
//  1. Batching (PR 2): envelope-at-a-time (batch size 1) pays one lock
//     acquisition and one queue operation per element; a batch of B
//     amortizes both over B. Acceptance floor: >= 3x transfer throughput
//     at batch 64 vs. batch 1.
//  2. Lock-free SPSC rings (PR 3): on a single-producer edge the ring
//     replaces the mutex/condvar pair with two release stores per batch.
//     Acceptance floor: >= 2x contended pipe throughput at batch 64 vs.
//     the mutex channel.

#include <benchmark/benchmark.h>

#include <thread>

#include "spe/channel.h"
#include "spe/ring.h"

namespace astream::spe {
namespace {

StreamElement MakeEl(int i) {
  return StreamElement::MakeRecord(i, Row{i, i});
}

BatchEnvelope MakeBatch(int first, size_t count) {
  BatchEnvelope b;
  for (size_t i = 0; i < count; ++i) {
    b.elements.Add(MakeEl(first + static_cast<int>(i)));
  }
  return b;
}

// Payload-free batch for the pipe benchmarks: records carry an empty Row
// (null CoW rep — no allocation, no refcount traffic), so duplicating the
// template costs one batch-vector allocation plus trivial element copies
// and the timing stays on the channel handoff, not on payload churn.
BatchEnvelope MakeLightBatch(size_t count) {
  BatchEnvelope b;
  for (size_t i = 0; i < count; ++i) {
    b.elements.Add(StreamElement::MakeRecord(static_cast<int>(i), Row{}));
  }
  return b;
}

BatchEnvelope CopyBatch(const BatchEnvelope& src) {
  BatchEnvelope b;
  b.port = src.port;
  b.sender = src.sender;
  for (const auto& el : src.elements) b.elements.Add(el);
  return b;
}

// Same-thread push + pop: isolates the per-element lock/queue/allocation
// cost without scheduler noise.
void BM_ChannelTransfer(benchmark::State& state) {
  const auto batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kElements = 4096;
  Channel ch(kElements + 64);
  for (auto _ : state) {
    size_t pushed = 0;
    while (pushed < kElements) {
      ch.Push(MakeBatch(static_cast<int>(pushed), batch_size));
      pushed += batch_size;
    }
    size_t popped = 0;
    while (popped < kElements) {
      auto b = ch.Pop();
      popped += b->elements.size();
      benchmark::DoNotOptimize(b);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_ChannelTransfer)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Producer thread -> consumer thread: adds condition-variable wakeups and
// real lock contention — the threaded runner's actual hot edge. The
// batches are materialized off the clock; the timed region moves them
// through the channel as fast as the channel allows, so the measurement
// is the handoff itself (including the backpressure slow path when the
// producer outruns the consumer).
void BM_ChannelPipe(benchmark::State& state) {
  const auto batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kElements = 1 << 15;
  const BatchEnvelope tmpl = MakeLightBatch(batch_size);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<BatchEnvelope> batches;
    batches.reserve(kElements / batch_size);
    for (size_t i = 0; i < kElements / batch_size; ++i) {
      batches.push_back(CopyBatch(tmpl));
    }
    Channel ch(1024);
    std::thread consumer([&ch] {
      size_t n = 0;
      while (auto b = ch.Pop()) {
        n += b->elements.size();
      }
      benchmark::DoNotOptimize(n);
    });
    state.ResumeTiming();
    for (auto& b : batches) {
      ch.Push(std::move(b));
    }
    ch.Close();
    consumer.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_ChannelPipe)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// SPSC ring, same-thread push + pop: the uncontended slot-move cost.
void BM_RingTransfer(benchmark::State& state) {
  const auto batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kElements = 4096;
  for (auto _ : state) {
    SpscRing ring(kElements / batch_size + 64);
    size_t pushed = 0;
    while (pushed < kElements) {
      ring.Push(MakeBatch(static_cast<int>(pushed), batch_size));
      pushed += batch_size;
    }
    size_t popped = 0;
    while (popped < kElements) {
      auto b = ring.TryPop();
      popped += b->elements.size();
      benchmark::DoNotOptimize(b);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_RingTransfer)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// SPSC ring, producer thread -> consumer thread via a TaskInbox: the
// threaded runner's actual hot edge with rings on. Compare directly with
// BM_ChannelPipe at the same batch size (the >= 2x acceptance bar).
void BM_RingPipe(benchmark::State& state) {
  const auto batch_size = static_cast<size_t>(state.range(0));
  constexpr size_t kElements = 1 << 15;
  const BatchEnvelope tmpl = MakeLightBatch(batch_size);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<BatchEnvelope> batches;
    batches.reserve(kElements / batch_size);
    for (size_t i = 0; i < kElements / batch_size; ++i) {
      batches.push_back(CopyBatch(tmpl));
    }
    TaskInbox inbox(1024);
    SpscRing* ring = inbox.AddRing(256);
    std::thread consumer([&inbox] {
      size_t n = 0;
      while (auto b = inbox.Pop()) {
        n += b->elements.size();
      }
      benchmark::DoNotOptimize(n);
    });
    state.ResumeTiming();
    for (auto& b : batches) {
      ring->Push(std::move(b));
    }
    inbox.Close();
    consumer.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_RingPipe)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace astream::spe

BENCHMARK_MAIN();
