// K-way merge microbench (DESIGN.md §13): binary-heap vs loser-tree merge
// at fan-ins {4, 16, 64, 256}. The loser tree does exactly one comparison
// per level per Next (ceil(log2 k)) where the heap pays ~2 log2 k plus
// heap-item moves; both produce the identical (key, source index) order,
// which the fixture asserts once per registration.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/merge.h"

namespace astream::storage {
namespace {

struct Entry {
  int64_t key = 0;
  int64_t payload = 0;
};

constexpr int64_t kTotalEntries = 1 << 18;

/// `k` sorted runs of kTotalEntries / k entries each. Keys are drawn from
/// a small domain so ties across runs are the common case — the worst
/// case for comparator-heavy merges and the shape compaction actually
/// sees (many runs covering the same slice keys).
std::vector<std::vector<Entry>> MakeRuns(size_t k) {
  Rng rng(0x4D455247 + static_cast<uint64_t>(k));
  const int64_t per_run = kTotalEntries / static_cast<int64_t>(k);
  std::vector<std::vector<Entry>> runs(k);
  for (size_t r = 0; r < k; ++r) {
    int64_t key = 0;
    runs[r].reserve(static_cast<size_t>(per_run));
    for (int64_t i = 0; i < per_run; ++i) {
      key += rng.UniformInt(0, 2);  // ~1/3 exact ties within a run too
      runs[r].push_back(Entry{key, rng.UniformInt(0, 1 << 30)});
    }
  }
  return runs;
}

template <typename Merge>
std::vector<typename Merge::Source> MakeSources(
    const std::vector<std::vector<Entry>>& runs, std::vector<size_t>* pos) {
  pos->assign(runs.size(), 0);
  std::vector<typename Merge::Source> sources;
  sources.reserve(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    sources.push_back([&runs, pos, r](Entry* out) {
      if ((*pos)[r] >= runs[r].size()) return false;
      *out = runs[r][(*pos)[r]++];
      return true;
    });
  }
  return sources;
}

template <typename Merge>
void RunMerge(benchmark::State& state) {
  const auto runs = MakeRuns(static_cast<size_t>(state.range(0)));
  std::vector<size_t> pos;
  for (auto _ : state) {
    Merge merge(MakeSources<Merge>(runs, &pos));
    Entry e;
    int64_t checksum = 0;
    while (merge.Next(&e)) checksum += e.key;
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kTotalEntries);
}

void BM_HeapMerge(benchmark::State& state) {
  RunMerge<HeapMerge<Entry>>(state);
}

void BM_LoserTreeMerge(benchmark::State& state) {
  RunMerge<LoserTreeMerge<Entry>>(state);
}

BENCHMARK(BM_HeapMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_LoserTreeMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace astream::storage

BENCHMARK_MAIN();
