// Reproduces Figure 17: slowest data throughput vs. query parallelism
// (log-log) for SC1.
//
// Paper anchors: throughput declines with query count, but the slope
// flattens: with more queries, the probability that a tuple is shared by
// several queries grows, so each additional query costs less.

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;

void Run(size_t batch_size, bool use_rings) {
  harness::PrintBanner(
      "Figure 17 — slowest data throughput vs. query parallelism (SC1)",
      "Log-spaced sweep of concurrently active queries.",
      std::string(kClusterScaling) + "; sweep 1..128 instead of 1..1000");
  std::printf("data plane: batch_size=%zu, %s\n\n", batch_size,
              use_rings ? "SPSC rings on internal edges"
                        : "mutex MPMC channels everywhere");

  for (QueryKind kind : {QueryKind::kJoin, QueryKind::kAggregation}) {
    for (int par : {2, 4}) {
      harness::Table table({"query parallelism", "slowest tput/s",
                            "tput x qp (overall)", "decline vs prev"});
      double prev = 0;
      for (size_t qp : {1u, 4u, 16u, 64u, 128u}) {
        auto sut = MakeAStream(TopologyFor(kind), par,
                               /*measure_overhead=*/false, batch_size,
                               use_rings);
        if (!sut->Start().ok()) continue;
        workload::Sc1Scenario scenario(/*rate_per_sec=*/400, qp);
        const double rate = kind == QueryKind::kJoin ? 250'000 : 0;
        const auto report = RunScenario(
            sut.get(), &scenario, QueryFactory(kind, 29),
            /*duration_ms=*/2400, kind == QueryKind::kJoin,
            rate, /*sample=*/0, /*warmup=*/1000,
            /*drain_at_end=*/false);
        const double tput = report.input_rate_per_sec;
        std::string decline = "-";
        if (prev > 0 && tput > 0) {
          decline = harness::FormatDouble(prev / tput, 2) + "x";
        }
        table.AddRow({std::to_string(qp), harness::FormatCount(tput),
                      harness::FormatCount(tput * static_cast<double>(qp)),
                      decline});
        prev = tput;
        sut->Stop();
      }
      std::printf("%s, %s cluster:\n", KindLabel(kind),
                  par == 2 ? "4-node" : "8-node");
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper (Fig. 17): monotone decline whose "
      "per-step factor shrinks as qp grows (sharing probability rises), "
      "while overall throughput (tput x qp) keeps growing.\n");
}

}  // namespace
}  // namespace astream::bench

int main(int argc, char** argv) {
  astream::bench::BenchInit();
  astream::bench::Run(astream::bench::ParseBatchSize(argc, argv),
                      astream::bench::ParseUseRings(argc, argv));
  return 0;
}
