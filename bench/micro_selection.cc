// Ablation of the shared selection's predicate index: naive per-query
// conjunction evaluation vs. the shared index where each distinct
// predicate is evaluated once per tuple (and failing predicates subtract
// whole query-sets). The win grows with query count and with predicate
// overlap across queries (the paper's future-work "grouping similar
// queries").

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/shared_selection.h"

namespace astream::core {
namespace {

using spe::Row;

class NullCollector : public spe::Collector {
 public:
  void Emit(spe::StreamElement) override {}
};

spe::ControlMarker MakeWorkload(int num_queries, int distinct_constants,
                                uint64_t seed) {
  Rng rng(seed);
  auto log = std::make_shared<Changelog>();
  log->epoch = 1;
  log->time = 1;
  for (int q = 0; q < num_queries; ++q) {
    QueryActivation a;
    a.id = q + 1;
    a.slot = q;
    a.created_at = 1;
    a.desc.kind = QueryKind::kSelection;
    a.desc.select_a.push_back(Predicate{
        1 + static_cast<int>(rng.UniformInt(0, 4)),
        static_cast<CmpOp>(rng.UniformInt(0, 4)),
        rng.UniformInt(0, distinct_constants - 1)});
    log->created.push_back(std::move(a));
  }
  log->num_slots = num_queries;
  log->ComputeChangelogSet();
  return Changelog::MakeMarker(std::move(log));
}

void RunSelection(benchmark::State& state, bool use_index,
                  int distinct_constants) {
  const int num_queries = static_cast<int>(state.range(0));
  SharedSelection::Config cfg;
  cfg.use_predicate_index = use_index;
  SharedSelection sel(cfg);
  NullCollector out;
  sel.OnMarker(MakeWorkload(num_queries, distinct_constants, 7), &out);

  Rng rng(11);
  std::vector<Row> rows;
  for (int i = 0; i < 256; ++i) {
    rows.push_back(Row{rng.UniformInt(0, 99), rng.UniformInt(0, 999),
                       rng.UniformInt(0, 999), rng.UniformInt(0, 999),
                       rng.UniformInt(0, 999), rng.UniformInt(0, 999)});
  }
  size_t i = 0;
  for (auto _ : state) {
    spe::Record r;
    r.event_time = 10;
    r.row = rows[i++ % rows.size()];
    sel.ProcessRecord(0, std::move(r), &out);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["distinct_preds"] =
      static_cast<double>(sel.IndexSize());
}

/// Overlapping workload: constants drawn from a small domain, so many
/// queries share identical predicates.
void BM_SelectionNaiveOverlapping(benchmark::State& state) {
  RunSelection(state, /*use_index=*/false, /*distinct_constants=*/8);
}
BENCHMARK(BM_SelectionNaiveOverlapping)->Arg(8)->Arg(64)->Arg(512);

void BM_SelectionIndexedOverlapping(benchmark::State& state) {
  RunSelection(state, /*use_index=*/true, /*distinct_constants=*/8);
}
BENCHMARK(BM_SelectionIndexedOverlapping)->Arg(8)->Arg(64)->Arg(512);

/// Disjoint workload: every query has a unique predicate — the index's
/// only advantage is the early exit when the tag set empties.
void BM_SelectionNaiveDisjoint(benchmark::State& state) {
  RunSelection(state, /*use_index=*/false, /*distinct_constants=*/100'000);
}
BENCHMARK(BM_SelectionNaiveDisjoint)->Arg(8)->Arg(64)->Arg(512);

void BM_SelectionIndexedDisjoint(benchmark::State& state) {
  RunSelection(state, /*use_index=*/true, /*distinct_constants=*/100'000);
}
BENCHMARK(BM_SelectionIndexedDisjoint)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace astream::core

BENCHMARK_MAIN();
