// Reproduces Figure 16: time series of slowest data throughput (top),
// event-time latency (middle), and query count (bottom) under complex
// ad-hoc queries (selection + n-ary joins + aggregation).
//
// Paper anchors: sharp query-count jumps (t=50, 200) barely move latency
// (no plan redeployment); throughput drops as query count rises; under
// fluctuation (t>1200) both throughput and latency stay stable.

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

void Run() {
  harness::PrintBanner(
      "Figure 16 — complex ad-hoc query timeline",
      "Complex queries pipeline a selection, 1-3 windowed joins, and a "
      "windowed aggregation. The schedule reproduces the paper's phases: "
      "sharp increases, gradual drain+refill, then fluctuation.",
      std::string(kClusterScaling) +
          "; 1400s -> 12s; query counts x0.15 (peak ~70 -> ~10); 25K tuples/s");

  const TimestampMs duration = 12'000;
  auto sut = MakeAStream(core::AStreamJob::TopologyKind::kComplex, 2);
  if (!sut->Start().ok()) return;
  workload::ComplexTimelineScenario scenario(duration, /*scale=*/0.15);
  const auto report = RunScenario(
      sut.get(), &scenario, QueryFactory(core::QueryKind::kComplex, 23),
      duration, /*push_b=*/true, /*rate=*/25'000,
      /*sample_interval=*/1000, /*warmup_ms=*/0, /*drain_at_end=*/false);
  sut->Stop();

  harness::Table table({"t (s)", "input tput/s (top)",
                        "event latency ms (middle)",
                        "query count (bottom)"});
  int64_t prev_pushed = 0;
  double prev_lat_sum = 0;
  int64_t prev_lat_count = 0;
  TimestampMs prev_t = 0;
  for (const auto& s : report.samples) {
    const double dt = (s.at_ms - prev_t) / 1000.0;
    const double rate =
        dt > 0 ? static_cast<double>(s.pushed - prev_pushed) / dt : 0;
    const double lat_sum = s.event_latency_mean_ms *
                           static_cast<double>(s.event_latency_count);
    const int64_t dcount = s.event_latency_count - prev_lat_count;
    const double dlat =
        dcount > 0 ? (lat_sum - prev_lat_sum) / dcount : 0;
    table.AddRow({harness::FormatDouble(s.at_ms / 1000.0, 1),
                  harness::FormatCount(rate),
                  harness::FormatDouble(dlat, 0),
                  std::to_string(s.active_queries)});
    prev_pushed = s.pushed;
    prev_lat_sum = lat_sum;
    prev_lat_count = s.event_latency_count;
    prev_t = s.at_ms;
  }
  table.Print();
  std::printf(
      "\nExpected shape vs. paper (Fig. 16): throughput falls when the "
      "query count jumps and recovers when it drains; latency stays "
      "relatively stable across sharp query-count changes because the "
      "running topology never changes.\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
