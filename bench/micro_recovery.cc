// Crash-recovery latency vs checkpoint interval: one injected operator
// crash mid-run under a supervised job; we measure the supervisor's
// detection -> restored latency and the number of source-log rows replayed
// for each checkpoint cadence. Expectation: replay volume grows with the
// checkpoint interval (the log tail since the last complete checkpoint),
// and recovery latency follows it.

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "harness/supervised_job.h"

namespace astream::bench {
namespace {

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryKind;
using spe::Row;

struct Outcome {
  int64_t recoveries = 0;
  int64_t replayed_rows = 0;
  double latency_ms = 0;  // mean supervisor detection -> restored
  int64_t checkpoints = 0;
};

Outcome RunOnce(int checkpoint_interval, int num_records) {
  fault::FaultInjector injector(17);
  fault::FaultInjector::Rule crash;
  crash.point = fault::FaultPoint::kOperatorProcess;
  crash.action = fault::FaultAction::kThrow;
  crash.after_hits = 4000;  // one mid-run crash, same spot for every cadence
  injector.AddRule(crash);
  fault::ScopedFaultInjection scoped(&injector);

  ManualClock clock;
  harness::SupervisedJob::Options options;
  options.job.topology = AStreamJob::TopologyKind::kJoin;
  options.job.parallelism = 1;
  options.job.threaded = true;
  options.job.clock = &clock;
  options.job.session.batch_size = 1;
  options.pin_clock = [&clock](TimestampMs ms) { clock.SetMs(ms); };
  options.supervisor.backoff_initial_ms = 1;
  options.supervisor.backoff_max_ms = 8;

  harness::SupervisedJob job(options);
  if (!job.Start().ok()) return {};
  QueryDescriptor join;
  join.kind = QueryKind::kJoin;
  join.window = spe::WindowSpec::Sliding(80, 40);
  join.select_a = {Predicate{1, CmpOp::kLt, 90}};
  QueryDescriptor selection;
  selection.kind = QueryKind::kSelection;
  selection.select_a = {Predicate{1, CmpOp::kGt, 20}};
  for (int i = 0; i < 2; ++i) {
    clock.SetMs(0);
    if (!job.Submit(join).ok() || !job.Submit(selection).ok()) return {};
  }

  // Paced source: keep the pipeline roughly caught up so the replay
  // volume reflects the checkpoint cadence, not producer-side backlog
  // (an unpaced producer can be thousands of records ahead of the
  // barriers, which would swamp the interval effect we measure here).
  auto pace = [&job] {
    for (int spin = 0; spin < 2000; ++spin) {
      size_t queued = 0;
      for (const auto& s : job.job()->TaskHealth()) queued += s.queued;
      if (queued < 16) return;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  Rng rng(99);
  Outcome outcome;
  TimestampMs t = 1;
  for (int i = 0; i < num_records; ++i) {
    t += rng.UniformInt(1, 3);
    clock.SetMs(t);
    const Row row{rng.UniformInt(0, 6), rng.UniformInt(0, 99)};
    if (rng.Bernoulli(0.5)) {
      job.PushB(t, row);
    } else {
      job.PushA(t, row);
    }
    if (i % 20 == 19) {
      job.PushWatermark(t);
      pace();
    }
    if (i % checkpoint_interval == checkpoint_interval - 1) {
      pace();
      if (job.Checkpoint() > 0) ++outcome.checkpoints;
    }
  }
  if (!job.FinishAndWait().ok()) return {};

  outcome.recoveries = job.recoveries();
  outcome.replayed_rows = job.replayed_rows();
  const auto metrics = job.job()->MetricsSnapshot();
  const auto it = metrics.histograms.find("recovery.latency_ms");
  if (it != metrics.histograms.end() && it->second.count > 0) {
    outcome.latency_ms = static_cast<double>(it->second.sum) /
                         static_cast<double>(it->second.count);
  }
  return outcome;
}

void Run() {
  harness::PrintBanner(
      "micro_recovery — crash-recovery latency vs checkpoint interval",
      "One injected operator crash (seeded, hit-deterministic) per run; "
      "supervised restart restores the latest complete checkpoint and "
      "replays the source-log tail. Latency is the supervisor's "
      "detection -> restored wall time.",
      "threaded join topology, parallelism 1, 4 standing queries, "
      "2000 records");
  const int kRecords = 2000;
  harness::Table table({"checkpoint interval (records)", "checkpoints",
                        "recoveries", "replayed rows", "recovery ms"});
  for (int interval : {25, 50, 100, 200, 400}) {
    const Outcome o = RunOnce(interval, kRecords);
    char latency[32];
    std::snprintf(latency, sizeof(latency), "%.1f", o.latency_ms);
    table.AddRow({std::to_string(interval), std::to_string(o.checkpoints),
                  std::to_string(o.recoveries),
                  std::to_string(o.replayed_rows), latency});
  }
  table.Print();
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::Run();
  return 0;
}
