// Micro benchmark for copy-on-write rows: the Router's per-query fan-out
// (Sec. 3.2.2 "data copy") ships one result row to every subscribed
// query's channel. With deep-copied rows that cost scales linearly with
// the query count; with CoW rows each extra query is a refcount bump.
// Acceptance floor: fan-out cost grows <= 1.2x going 8 -> 64 queries
// (vs. ~8x for deep copies).

#include <benchmark/benchmark.h>

#include <vector>

#include "spe/row.h"

namespace astream::spe {
namespace {

Row MakeRow() { return Row{7, 42, 1001, -3, 99, 123456}; }

// Baseline: materialize an independent payload per query, what the router
// did before CoW rows (and what Mutate() pays when it must unshare).
void BM_RowFanoutDeepCopy(benchmark::State& state) {
  const auto queries = static_cast<size_t>(state.range(0));
  const Row src = MakeRow();
  std::vector<Row> out(queries);
  for (auto _ : state) {
    for (size_t q = 0; q < queries; ++q) {
      Row copy = src;
      copy.Mutate();  // force an unshared payload (deep copy)
      out[q] = std::move(copy);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries));
}
BENCHMARK(BM_RowFanoutDeepCopy)->Arg(1)->Arg(8)->Arg(64);

// CoW: the fan-out the router actually performs — every copy shares the
// source payload (SharesStorageWith() == true).
void BM_RowFanoutShare(benchmark::State& state) {
  const auto queries = static_cast<size_t>(state.range(0));
  const Row src = MakeRow();
  std::vector<Row> out(queries);
  for (auto _ : state) {
    for (size_t q = 0; q < queries; ++q) {
      out[q] = src;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries));
}
BENCHMARK(BM_RowFanoutShare)->Arg(1)->Arg(8)->Arg(64);

// Join-output composition: Concat composes by reference; flattening (the
// old eager concatenation) copies both sides.
void BM_RowConcatCompose(benchmark::State& state) {
  const Row left = MakeRow();
  const Row right = MakeRow();
  for (auto _ : state) {
    Row joined = Row::Concat(left, right);
    benchmark::DoNotOptimize(joined);
  }
}
BENCHMARK(BM_RowConcatCompose);

void BM_RowConcatFlatten(benchmark::State& state) {
  const Row left = MakeRow();
  const Row right = MakeRow();
  for (auto _ : state) {
    Row joined = Row::Concat(left, right);
    joined.Mutate();  // eager flatten: copies left ++ right
    benchmark::DoNotOptimize(joined);
  }
}
BENCHMARK(BM_RowConcatFlatten);

}  // namespace
}  // namespace astream::spe

BENCHMARK_MAIN();
