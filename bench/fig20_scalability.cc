// Reproduces Figure 20: sustainable ad-hoc queries vs. cluster size, at a
// constant data rate, for SC1 and SC2.
//
// Paper anchors: the sustainable query count grows with node count
// (SC1: ~100 -> ~300; SC2 scales better: ~150 -> ~430) because SC2's
// churn keeps the active set and the bitsets small.
//
// IMPORTANT CAVEAT (documented in EXPERIMENTS.md): this harness simulates
// "nodes" as operator parallelism inside ONE process. On a single-core
// machine additional parallelism adds no compute, so the absolute scaling
// with node count cannot reproduce; the SC2-above-SC1 ordering is the
// shape this bench demonstrates. On a multi-core box the node scaling
// re-emerges.

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

/// True if the system sustains `qp` concurrent join queries at the fixed
/// data rate: queues bounded, deployment latency not growing, and the
/// offered rate actually absorbed.
bool Sustains(int par, size_t qp, double rate, bool sc2) {
  auto sut = MakeAStream(core::AStreamJob::TopologyKind::kJoin, par);
  if (!sut->Start().ok()) return false;
  std::unique_ptr<workload::Scenario> scenario;
  if (sc2) {
    scenario = std::make_unique<workload::Sc2Scenario>(qp / 2 + 1,
                                                       /*period_ms=*/1000);
  } else {
    scenario = std::make_unique<workload::Sc1Scenario>(
        /*rate_per_sec=*/400, qp);
  }
  const auto report = RunScenario(
      sut.get(), scenario.get(), QueryFactory(core::QueryKind::kJoin, 41),
      /*duration_ms=*/1800, /*push_b=*/true, rate, /*sample=*/0,
      /*warmup=*/800, /*drain_at_end=*/false);
  sut->Stop();
  if (!LooksSustainable(report)) return false;
  // Absorbed at least 80% of the offered rate?
  return report.input_rate_per_sec >= 0.8 * rate;
}

void Run() {
  harness::PrintBanner(
      "Figure 20 — sustainable ad-hoc queries vs. node count",
      "Constant data rate (20K tuples/s); the reported number is the "
      "largest tested query parallelism the system sustains.",
      std::string(kClusterScaling) +
          "; node counts {2,4,8} -> parallelism {1,2,4}; "
          "single-core host: see caveat in the bench header");

  const double rate = 20'000;
  harness::Table table(
      {"node count (paper)", "parallelism (sim)", "SC1 sustainable qp",
       "SC2 sustainable qp"});
  for (int par : {1, 2, 4}) {
    size_t sc1_best = 0, sc2_best = 0;
    for (size_t qp : {10u, 20u, 40u}) {
      if (Sustains(par, qp, rate, /*sc2=*/false)) sc1_best = qp;
    }
    for (size_t qp : {10u, 20u, 40u}) {
      if (Sustains(par, qp, rate, /*sc2=*/true)) sc2_best = qp;
    }
    table.AddRow({std::to_string(par * 2), std::to_string(par),
                  std::to_string(sc1_best), std::to_string(sc2_best)});
  }
  table.Print();
  std::printf(
      "\nExpected shape vs. paper (Fig. 20): SC2 sustains at least as "
      "many ad-hoc queries as SC1 at every size (churn keeps bitsets "
      "small). Node-count scaling itself requires real cores; on this "
      "host the curve saturates by design.\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
