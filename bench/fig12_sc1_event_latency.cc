// Reproduces Figure 12: average event-time latency for SC1.
//
// Paper anchors: AStream single query has the lowest latency; latency
// increases with query parallelism but stays sustainable (~1.2 s average
// at 100 q/s 1000 qp); aggregation latency < join latency (joins are more
// expensive); Flink's latency under ad-hoc load exceeds 8 s and keeps
// growing (unsustainable).

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;

struct Config {
  const char* label;
  bool astream;
  double rate_qps;
  size_t max_qp;
};

void Run(size_t batch_size) {
  harness::PrintBanner(
      "Figure 12 — SC1 average event-time latency",
      "Event-time latency = result emission wall time minus tuple event "
      "time (includes queueing + window residence).",
      std::string(kClusterScaling) +
          "; data rate fixed at 50K tuples/s so latency is comparable");
  std::printf("data-plane batch size: %zu%s\n\n", batch_size,
              batch_size == 1 ? " (element-at-a-time)" : "");

  for (QueryKind kind : {QueryKind::kJoin, QueryKind::kAggregation}) {
    for (int par : {2, 4}) {
      harness::Table table(
          {"config", "mean event-time latency", "p95", "outputs"});
      const Config configs[] = {
          {"AStream, single query", true, 50, 1},
          {"Flink, single query", false, 50, 1},
          {"AStream, 1q/s 20qp", true, 10, 20},
          {"AStream, 10q/s 60qp", true, 60, 60},
          {"AStream, 100q/s 1000qp*", true, 400, 0},
      };
      obs::MetricsRegistry::Snapshot query_metrics;
      for (const Config& cfg : configs) {
        size_t max_qp = cfg.max_qp;
        if (max_qp == 0) max_qp = kind == QueryKind::kJoin ? 40 : 150;
        std::unique_ptr<harness::StreamSut> sut;
        if (cfg.astream) {
          sut = MakeAStream(TopologyFor(kind), par,
                            /*measure_overhead=*/false, batch_size);
        } else {
          sut = MakeFlink(par);
        }
        if (!sut->Start().ok()) continue;
        workload::Sc1Scenario scenario(cfg.rate_qps, max_qp);
        auto factory = max_qp == 1 ? SingleQueryFactory(kind)
                                   : QueryFactory(kind, 5);
        // No end-of-stream drain: the final flush emits windows whose
        // end lies beyond the last wall time (their latency would be
        // negative); only in-run emissions are representative.
        const auto report = RunScenario(
            sut.get(), &scenario, std::move(factory), /*duration_ms=*/2800,
            kind == QueryKind::kJoin, /*rate=*/50'000, /*sample=*/0,
            /*warmup=*/0, /*drain_at_end=*/false);
        const auto& lat = report.qos.event_time_latency;
        table.AddRow({cfg.label, harness::FormatMs(lat.mean()),
                      harness::FormatMs(
                          static_cast<double>(lat.Percentile(95))),
                      harness::FormatCount(
                          static_cast<double>(lat.count()))});
        if (auto* astream = dynamic_cast<harness::AStreamSut*>(sut.get());
            astream != nullptr && max_qp > 1) {
          // Keep the busiest multi-query run's per-query histograms for
          // the drill-down table below.
          query_metrics = astream->job()->MetricsSnapshot();
        }
        sut->Stop();
      }
      std::printf("%s queries, %s cluster:\n", KindLabel(kind),
                  par == 2 ? "4-node" : "8-node");
      table.Print();
      std::printf(
          "per-query drill-down (busiest run, event-time latency from "
          "the metrics registry):\n");
      harness::PrintQueryMetricsTable(query_metrics, /*max_rows=*/6);
      std::printf(
          "data-plane drill-down (per-edge delivered batch sizes and "
          "end-of-run queue depths):\n");
      harness::PrintDataPlaneTable(query_metrics);
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper (Fig. 12): latency grows with query "
      "parallelism; aggregation < join; all AStream configurations stay "
      "bounded (sustainable), unlike Flink under ad-hoc load.\n");
}

}  // namespace
}  // namespace astream::bench

int main(int argc, char** argv) {
  astream::bench::BenchInit();
  astream::bench::Run(astream::bench::ParseBatchSize(argc, argv));
  return 0;
}
