// Reproduces Figure 10: per-query deployment latency over time when one
// query per second is submitted, up to 20 queries, Flink vs. AStream.
//
// Paper anchors: Flink's latency grows roughly linearly (up to ~80 s; the
// sum over 20 queries is 910 s) because every deployment is a serialized
// full job submission. AStream stays low (~1-7 s — the first deployment
// pays topology deployment, later ones only batching latency).

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

void RunOne(const char* label, harness::StreamSut* sut) {
  if (!sut->Start().ok()) return;
  workload::Sc1Scenario scenario(/*rate_per_sec=*/10, /*max_parallel=*/20);
  const auto report = RunScenario(
      sut, &scenario, QueryFactory(core::QueryKind::kJoin, 7),
      /*duration_ms=*/3500, /*push_b=*/true, /*rate=*/150'000,
      /*sample=*/0, /*warmup=*/0, /*drain_at_end=*/false);
  sut->Stop();

  std::printf("%s — deployment latency per query (submission order):\n",
              label);
  harness::Table table({"query #", "deployment latency"});
  TimestampMs total = 0;
  int index = 1;
  for (const auto& [id, latency] : report.qos.deployment_events) {
    table.AddRow({std::to_string(index++), harness::FormatMs(
                                               static_cast<double>(latency))});
    total += latency;
  }
  table.Print();
  std::printf("sum of deployment latencies: %s (paper: Flink 910s)\n\n",
              harness::FormatMs(static_cast<double>(total)).c_str());
}

void Run() {
  harness::PrintBanner(
      "Figure 10 — query deployment latency timeline (1 q/s, up to 20)",
      "Per-query deployment latency in submission order; Flink latencies "
      "grow (serialized job deployments), AStream stays flat.",
      std::string(kClusterScaling) +
          "; 1 q/s -> 10 q/s over 3.5s; Flink deploy cost 150ms/job");

  auto flink = MakeFlink(2);
  RunOne("Flink (query-at-a-time)", flink.get());

  auto astream = MakeAStream(core::AStreamJob::TopologyKind::kJoin, 2);
  RunOne("AStream", astream.get());

  std::printf(
      "Expected shape vs. paper (Fig. 10): Flink per-query latency climbs "
      "steadily as requests queue behind serialized deployments; AStream "
      "latencies are dominated by changelog batching and stay bounded.\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
