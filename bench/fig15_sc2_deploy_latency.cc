// Reproduces Figure 15: ad-hoc query deployment latency for SC2.
//
// Paper anchors: SC2 deployment latency (~20-100 s over a 1000 s run) is
// significantly HIGHER than SC1's because queries are continuously created
// and deleted, so changelogs are generated continuously for the whole run.

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;

void Run() {
  harness::PrintBanner(
      "Figure 15 — SC2 ad-hoc query deployment latency",
      "Continuous create+delete churn generates changelogs for the whole "
      "run, unlike SC1 which stops at its target parallelism.",
      kClusterScaling);

  for (QueryKind kind : {QueryKind::kJoin, QueryKind::kAggregation}) {
    for (int par : {2, 4}) {
      harness::Table table(
          {"config", "mean deploy latency", "p95", "max", "acked requests"});
      for (size_t batch : {10u, 30u, 50u}) {
        auto sut = MakeAStream(TopologyFor(kind), par);
        if (!sut->Start().ok()) continue;
        workload::Sc2Scenario scenario(batch, /*period_ms=*/1000);
        const double rate = kind == QueryKind::kJoin ? 150'000 : 0;
        const auto report = RunScenario(
            sut.get(), &scenario, QueryFactory(kind, 19),
            /*duration_ms=*/3000, kind == QueryKind::kJoin, rate,
            /*sample=*/0, /*warmup=*/0, /*drain_at_end=*/false);
        const auto& lat = report.qos.deployment_latency;
        table.AddRow({"AStream, " + std::to_string(batch) + "q/10s",
                      harness::FormatMs(lat.mean()),
                      harness::FormatMs(
                          static_cast<double>(lat.Percentile(95))),
                      harness::FormatMs(static_cast<double>(lat.max())),
                      std::to_string(lat.count())});
        sut->Stop();
      }
      std::printf("%s queries, %s cluster:\n", KindLabel(kind),
                  par == 2 ? "4-node" : "8-node");
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper (Fig. 15): deployment latencies exceed the "
      "SC1 values of Fig. 11 — continuous churn means continuous "
      "changelog generation and batching delay on every request.\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
