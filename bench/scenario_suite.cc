// Adversarial-tenant scenario suite (DESIGN.md §14): four deterministic
// tenant mixes driven through the isolation machinery. The headline run
// is the whale-amid-minnows pair — the same workload with isolation off
// (baseline) and on (admission + de-sharing): the baseline must VIOLATE
// the minnow p99 work budget and the isolated run must MEET it, with the
// whale observed being ejected into a dedicated job. The churn storm
// asserts admission queueing + rejection under tight caps; the zipf and
// bursty/late mixes assert the fleet stays healthy and accounted under
// hostile data. Exits nonzero on any violated assertion, so verify.sh can
// gate on it (also honors ASTREAM_MEMORY_BUDGET / ASTREAM_SEED).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/report.h"
#include "workload/scenario_runner.h"

namespace astream::bench {
namespace {

using workload::ScenarioReport;
using workload::ScenarioRunner;
using workload::ScenarioSpec;

struct Leg {
  std::string label;
  ScenarioReport report;
  bool pass = false;
  std::string why;  // what the pass/fail verdict hinged on
};

Leg RunLeg(const std::string& label, const ScenarioSpec& spec) {
  Leg leg;
  leg.label = label;
  auto report_or = ScenarioRunner(spec).Run();
  if (!report_or.ok()) {
    leg.why = report_or.status().message();
    return leg;
  }
  leg.report = std::move(report_or).value();
  leg.pass = leg.report.ok;
  if (!leg.pass) leg.why = leg.report.error.empty() ? "job unhealthy"
                                                    : leg.report.error;
  return leg;
}

bool Run() {
  harness::PrintBanner(
      "scenario_suite — adversarial tenants vs per-query isolation",
      "Deterministic ManualClock mixes: whale-amid-minnows (paired "
      "baseline/isolated runs; the minnow p99 budget is 60% of the "
      "baseline's p99 shared-plan work per tick), churn storm against "
      "tight admission caps, zipf-skewed hot keys, and bursty/late/"
      "out-of-order arrivals. Latency proxy = deterministic shared-plan "
      "work per tick on the primary job (ejected whale excluded).",
      "sync aggregation topology, parallelism 1; memory budget from "
      "ASTREAM_MEMORY_BUDGET; seed from ASTREAM_SEED");

  const uint64_t seed = BenchSeed(7);
  std::vector<Leg> legs;
  bool all_pass = true;

  // --- Whale amid minnows: baseline (shared) vs isolated (de-shared). ---
  ScenarioSpec base =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kWhaleMinnows, seed);
  base.memory_budget_bytes = 0;  // honor ASTREAM_MEMORY_BUDGET
  Leg baseline = RunLeg("whale baseline", base);

  ScenarioSpec isolated = base;
  ScenarioRunner::EnableIsolation(&isolated);
  // The minnow SLO: 60% of the baseline's steady-state p99 work. The
  // baseline violates it by construction; the isolated run must meet it
  // by ejecting the whale out of the shared plan.
  const int64_t budget = baseline.report.p99_tick_work * 3 / 5;
  isolated.tick_work_p99_budget = budget;
  Leg iso = RunLeg("whale isolated", isolated);
  if (baseline.pass) {
    if (baseline.report.p99_tick_work <= budget) {
      baseline.pass = false;
      baseline.why = "baseline unexpectedly met the minnow budget";
    } else {
      baseline.why = "violates minnow budget (expected)";
    }
  }
  if (iso.pass) {
    if (!iso.report.whale_ejected) {
      iso.pass = false;
      iso.why = "whale was never de-shared";
    } else if (!iso.report.slo_met) {
      iso.pass = false;
      iso.why = "minnow p99 budget still violated with isolation on";
    } else {
      iso.why = "whale ejected; minnow budget met";
    }
  }
  legs.push_back(baseline);
  legs.push_back(iso);

  // --- Churn storm against tight admission caps. ---
  ScenarioSpec churn =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kChurnStorm, seed + 1);
  ScenarioRunner::EnableIsolation(&churn);
  churn.memory_budget_bytes = 0;
  Leg storm = RunLeg("churn storm", churn);
  if (storm.pass) {
    if (storm.report.admission_queued == 0) {
      storm.pass = false;
      storm.why = "storm never queued a submit";
    } else if (storm.report.admission_rejected == 0) {
      storm.pass = false;
      storm.why = "storm never overflowed the admission queue";
    } else {
      storm.why = "caps held: queued + rejected + fleet kept flowing";
    }
  }
  legs.push_back(storm);

  // --- Zipf-skewed hot keys. ---
  ScenarioSpec zipf =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kZipfSkew, seed + 2);
  zipf.memory_budget_bytes = 0;
  Leg skew = RunLeg("zipf skew", zipf);
  if (skew.pass) {
    size_t producing = 0;
    for (const auto& [id, n] : skew.report.outputs_per_query) {
      if (n > 0) ++producing;
    }
    if (producing < static_cast<size_t>(zipf.minnows)) {
      skew.pass = false;
      skew.why = "a tenant was starved under key skew";
    } else {
      skew.why = "every tenant produced output under hot keys";
    }
  }
  legs.push_back(skew);

  // --- Bursts + late + out-of-order arrivals. ---
  ScenarioSpec bursty =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kBurstyOoo, seed + 3);
  bursty.memory_budget_bytes = 0;
  Leg ooo = RunLeg("bursty ooo", bursty);
  if (ooo.pass) {
    if (ooo.report.late_drops == 0) {
      ooo.pass = false;
      ooo.why = "late rows were never generated/accounted";
    } else if (ooo.report.outputs == 0) {
      ooo.pass = false;
      ooo.why = "no outputs under bursty arrivals";
    } else {
      ooo.why = "late rows dropped + accounted; outputs kept flowing";
    }
  }
  legs.push_back(ooo);

  harness::Table table({"leg", "rows", "outputs", "p99 work", "mean work",
                        "queued", "rejected", "deshared", "eject tick",
                        "late drops", "verdict"});
  for (const Leg& leg : legs) {
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.0f", leg.report.mean_tick_work);
    table.AddRow({leg.label, std::to_string(leg.report.rows_pushed),
                  std::to_string(leg.report.outputs),
                  std::to_string(leg.report.p99_tick_work), mean,
                  std::to_string(leg.report.admission_queued),
                  std::to_string(leg.report.admission_rejected),
                  std::to_string(leg.report.desharings),
                  std::to_string(leg.report.eject_tick),
                  std::to_string(leg.report.late_drops),
                  (leg.pass ? "PASS — " : "FAIL — ") + leg.why});
    all_pass = all_pass && leg.pass;
  }
  table.Print();
  // Engine-side admission.* counters per leg (the metrics-registry truth
  // behind the queued/rejected columns above).
  for (const Leg& leg : legs) {
    if (leg.report.admission_metrics.empty()) continue;
    std::string line = "admission counters [" + leg.label + "]:";
    for (const auto& [name, value] : leg.report.admission_metrics) {
      line += " " + name + "=" + std::to_string(value);
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("minnow p99 work budget (60%% of baseline p99): %lld\n",
              static_cast<long long>(budget));
  std::printf("scenario suite: %s\n", all_pass ? "all legs pass"
                                               : "VIOLATIONS FOUND");
  return all_pass;
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  return astream::bench::Run() ? 0 : 1;
}
