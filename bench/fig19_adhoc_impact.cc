// Reproduces Figure 19: the effect of newly added ad-hoc join queries on
// the performance of existing long-running queries (4-node cluster).
//
// Paper anchors: with many running queries (100q), adding 10-50 ad-hoc
// queries barely moves throughput; with few (10q), the relative impact is
// larger; SC1 (long-running) is more susceptible than SC2 (periodic
// churn keeps query-sets small).

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

/// Scenario: `base` long-running queries from the start; `adhoc` more at
/// half time. SC2 variant recycles the ad-hoc batch every second.
class ImpactScenario : public workload::Scenario {
 public:
  ImpactScenario(size_t base, size_t adhoc, bool sc2, TimestampMs half_ms)
      : base_(base), adhoc_(adhoc), sc2_(sc2), half_ms_(half_ms) {}

  workload::ScenarioActions Tick(TimestampMs now, size_t active) override {
    workload::ScenarioActions a;
    if (!base_created_) {
      base_created_ = true;
      a.create = static_cast<int>(base_);
      return a;
    }
    if (now < half_ms_) return a;
    if (!sc2_) {
      if (!adhoc_created_) {
        adhoc_created_ = true;
        a.create = static_cast<int>(adhoc_);
      }
      return a;
    }
    // SC2 flavor: recycle the ad-hoc batch every second.
    const int64_t period = (now - half_ms_) / 1000;
    if (period >= next_period_) {
      next_period_ = period + 1;
      if (active > base_) {
        for (size_t i = base_; i < active; ++i) a.delete_ranks.push_back(i);
      }
      a.create = static_cast<int>(adhoc_);
    }
    return a;
  }

 private:
  size_t base_, adhoc_;
  bool sc2_;
  TimestampMs half_ms_;
  bool base_created_ = false;
  bool adhoc_created_ = false;
  int64_t next_period_ = 0;
};

void Run() {
  harness::PrintBanner(
      "Figure 19 — impact of ad-hoc join queries on existing queries",
      "x-axis: number of long-running queries and scenario; bars: 0/10/"
      "20/50 added ad-hoc queries. Metric: data throughput after the "
      "ad-hoc queries join (steady state).",
      std::string(kClusterScaling) +
          "; long-running 10/50/100 -> 10/30/60; 4-node only (paper)");

  for (bool sc2 : {false, true}) {
    for (size_t base : {10u, 30u, 60u}) {
      harness::Table table({"added ad-hoc", "throughput after add (K/s)",
                            "vs 0 added"});
      double baseline_tput = 0;
      for (size_t adhoc : {0u, 10u, 20u, 50u}) {
        auto sut = MakeAStream(core::AStreamJob::TopologyKind::kJoin, 2);
        if (!sut->Start().ok()) continue;
        const TimestampMs half = 1200;
        ImpactScenario scenario(base, adhoc, sc2, half);
        // Measure only after the ad-hoc queries are added.
        const auto report = RunScenario(
            sut.get(), &scenario, QueryFactory(core::QueryKind::kJoin, 37),
            /*duration_ms=*/2800, /*push_b=*/true, /*rate=*/150'000,
            /*sample=*/0, /*warmup=*/half + 600, /*drain_at_end=*/false);
        sut->Stop();
        const double tput = report.input_rate_per_sec;
        if (adhoc == 0) baseline_tput = tput;
        table.AddRow(
            {std::to_string(adhoc), harness::FormatCount(tput),
             baseline_tput > 0
                 ? harness::FormatDouble(100 * tput / baseline_tput, 0) + "%"
                 : "-"});
      }
      std::printf("%zu long-running queries, %s:\n", base,
                  sc2 ? "SC2" : "SC1");
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper (Fig. 19): the more long-running queries "
      "already exist, the smaller the relative throughput drop from "
      "adding ad-hoc queries; SC2 is less susceptible than SC1.\n");
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
