// Reproduces Figure 9: slowest (9a) and overall (9b) data throughput for
// workload scenario SC1, windowed join and windowed aggregation queries,
// AStream vs. the query-at-a-time baseline ("Flink").
//
// Paper-reported anchors (4-/8-node cluster, 1000 s runs):
//   single query:  Flink slightly ahead of AStream (sharing overhead <~10%),
//                  e.g. agg 8-node: Flink 2.15M/s vs AStream 1.95M/s.
//   multi query:   Flink FAILS (cannot sustain ad-hoc workloads);
//                  AStream's slowest throughput decreases with query count
//                  (join 4-node: 104K @20qp -> 34K @1000qp) while overall
//                  throughput grows into the millions (up to 6.1M/s).

#include <cstdio>

#include "bench/bench_util.h"

namespace astream::bench {
namespace {

using core::QueryKind;
using harness::FormatCount;

struct Config {
  const char* label;
  const char* paper_label;
  bool astream;
  double rate_qps;    // scaled query creation rate
  size_t max_qp;      // scaled query parallelism
  TimestampMs duration_ms;
};

void Run(size_t batch_size) {
  harness::PrintBanner(
      "Figure 9 — SC1 data throughput (slowest & overall)",
      "AStream vs. query-at-a-time baseline; join and aggregation "
      "queries; 'n q/s m qp' = n queries/second until m active.",
      std::string(kClusterScaling) +
          "; SC1 grid: 20qp/60qp kept, 1000qp -> join 60 / agg 200");
  std::printf("data-plane batch size: %zu%s\n\n", batch_size,
              batch_size == 1 ? " (element-at-a-time)" : "");

  const Config configs[] = {
      {"AStream single query", "single query", true, 50, 1, 2200},
      {"Flink single query", "single query", false, 50, 1, 2200},
      {"AStream 1q/s 20qp", "1 q/s, 20 qp", true, 10, 20, 3400},
      {"AStream 10q/s 60qp", "10 q/s, 60 qp", true, 60, 60, 3000},
      {"AStream 100q/s 1000qp*", "100 q/s, 1000 qp", true, 400, 0, 3000},
      {"Flink 1q/s 20qp", "1 q/s, 20 qp", false, 10, 20, 2500},
  };

  for (QueryKind kind : {QueryKind::kJoin, QueryKind::kAggregation}) {
    for (int par : {2, 4}) {
      const char* cluster = par == 2 ? "4-node" : "8-node";
      harness::Table table({"config (scaled)", "paper cfg",
                            "slowest tput/s (9a)", "overall tput/s (9b)",
                            "avg qp", "sustainable"});
      for (const Config& cfg : configs) {
        size_t max_qp = cfg.max_qp;
        if (max_qp == 0) {  // the 1000qp row, scaled by kind
          max_qp = kind == QueryKind::kJoin ? 60 : 200;
        }
        std::unique_ptr<harness::StreamSut> sut;
        if (cfg.astream) {
          sut = MakeAStream(TopologyFor(kind), par,
                            /*measure_overhead=*/false, batch_size);
        } else {
          sut = MakeFlink(par);
        }
        if (!sut->Start().ok()) continue;
        workload::Sc1Scenario scenario(cfg.rate_qps, max_qp);
        // Warmup covers deployments/ramp so rates reflect steady state.
        const TimestampMs warmup = max_qp == 1 ? 600 : 1200;
        auto factory = max_qp == 1 ? SingleQueryFactory(kind)
                                   : QueryFactory(kind, 42);
        // Joins are offered a bounded rate: their result volume is
        // quadratic per window, so an unbounded firehose just builds
        // minutes of un-triggerable slice state (the paper's sustainable
        // throughput methodology also offers fixed rates).
        const double rate = kind == QueryKind::kJoin ? 250'000 : 0;
        const auto report = RunScenario(
            sut.get(), &scenario, std::move(factory), cfg.duration_ms,
            kind == QueryKind::kJoin, rate, /*sample=*/0, warmup,
            /*drain_at_end=*/false);
        const bool sustainable = LooksSustainable(report);
        table.AddRow(
            {cfg.label, cfg.paper_label,
             FormatCount(report.input_rate_per_sec),
             FormatCount(report.overall_rate_per_sec),
             harness::FormatDouble(report.avg_active_queries, 1),
             sustainable ? "yes" : "FAIL"});
        sut->Stop();
      }
      std::printf("%s queries, %s cluster (parallelism %d):\n",
                  KindLabel(kind), cluster, par);
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape vs. paper: single-query AStream within ~10%% of "
      "Flink; Flink unsustainable beyond a handful of ad-hoc queries; "
      "AStream slowest throughput decreases (sub-linearly) with qp while "
      "overall throughput = slowest x qp grows by orders of magnitude.\n");
}

}  // namespace
}  // namespace astream::bench

int main(int argc, char** argv) {
  astream::bench::BenchInit();
  astream::bench::Run(astream::bench::ParseBatchSize(argc, argv));
  return 0;
}
