// Sharded scale-out: push-path throughput and output equivalence as the
// same deterministic keyed workload runs on 1, 2, and 4 router shards,
// plus a live-resharding leg that splits a shard mid-run and reports the
// drain-to-restore pause. Every leg must fold its outputs into the same
// order-insensitive hash as the single-job sync reference — the router
// only changes WHERE a key's state lives, never what any query emits.
//
// On a single-CPU container the pump threads and the control thread
// time-share one core, so the threaded legs measure router overhead
// (ring hops, fan-out, merge) rather than parallel speedup; the shapes
// to watch are hash equality and the resharding pause, not scaling.

#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/astream.h"
#include "harness/report.h"
#include "shard/client.h"

namespace astream::bench {
namespace {

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryKind;
using spe::Row;

constexpr int kRows = 40000;
constexpr int kKeys = 64;
constexpr TimestampMs kWindow = 2000;
constexpr TimestampMs kSlide = 500;

struct RunStats {
  double wall_s = 0;
  int64_t rows_out = 0;
  uint64_t out_hash = 0;
  int64_t pause_ms = -1;  // -1: leg did not reshard
  int final_shards = 0;
  bool ok = false;
};

uint64_t HashRecord(TimestampMs event_time, const Row& row) {
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(event_time);
  for (size_t c = 0; c < row.NumColumns(); ++c) {
    h ^= static_cast<uint64_t>(row.At(c)) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
  }
  return h;
}

std::vector<QueryDescriptor> StandingQueries() {
  QueryDescriptor join;
  join.kind = QueryKind::kJoin;
  join.window = spe::WindowSpec::Sliding(kWindow, kSlide);
  join.select_a = {Predicate{1, CmpOp::kLt, 80}};
  join.select_b = {Predicate{1, CmpOp::kGt, 10}};
  QueryDescriptor narrow = join;
  narrow.window = spe::WindowSpec::Sliding(600, 300);
  narrow.select_a = {Predicate{2, CmpOp::kGe, 50}};
  QueryDescriptor selection;
  selection.kind = QueryKind::kSelection;
  selection.select_a = {Predicate{2, CmpOp::kLt, 25}};
  return {join, narrow, selection};
}

/// One deterministic pass of the workload through any push interface.
template <typename PushFn, typename WatermarkFn>
void Stream(PushFn&& push, WatermarkFn&& watermark, ManualClock* clock,
            const std::function<void(int)>& at_step) {
  Rng rng(4242);
  TimestampMs t = 1;
  for (int i = 0; i < kRows; ++i) {
    t += rng.UniformInt(0, 2);
    clock->SetMs(t);
    const Row row{rng.UniformInt(0, kKeys - 1), rng.UniformInt(0, 99),
                  rng.UniformInt(0, 99)};
    push(rng.Bernoulli(0.5) ? StreamId::kB : StreamId::kA, t, row);
    if (i % 1000 == 999) watermark(t);
    if (at_step) at_step(i);
  }
}

/// Single plain sync job: the reference output and baseline throughput.
RunStats RunReference() {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kJoin;
  options.parallelism = 1;
  options.threaded = false;
  options.clock = &clock;
  options.session.batch_size = 1;
  auto job_or = AStreamJob::Create(options);
  if (!job_or.ok()) return {};
  auto job = std::move(job_or).value();
  if (!job->Start().ok()) return {};

  RunStats stats;
  job->SetResultCallback([&stats](core::QueryId, const spe::Record& r) {
    ++stats.rows_out;
    stats.out_hash += HashRecord(r.event_time, r.row);
  });
  clock.SetMs(0);
  for (const auto& d : StandingQueries()) {
    if (!job->Submit(d).ok()) return {};
  }
  job->Pump(true);

  const auto start = std::chrono::steady_clock::now();
  Stream(
      [&job](StreamId stream, TimestampMs t, Row row) {
        if (stream == StreamId::kA) {
          job->PushA(t, std::move(row));
        } else {
          job->PushB(t, std::move(row));
        }
      },
      [&job](TimestampMs t) { job->PushWatermark(t); }, &clock, nullptr);
  if (!job->FinishAndWait().ok()) return {};
  const auto end = std::chrono::steady_clock::now();
  stats.wall_s = std::chrono::duration<double>(end - start).count();
  stats.final_shards = 0;
  stats.ok = true;
  return stats;
}

/// Sharded client run; split_at >= 0 splits shard 0 mid-stream.
RunStats RunSharded(int shards, int split_at) {
  ManualClock clock;
  auto config = JobConfigBuilder(AStreamJob::TopologyKind::kJoin)
                    .Parallelism(1)
                    .Clock(&clock)
                    .SessionBatch(1, 0)
                    .Shards(shards)
                    .Slots(64)
                    .ShardThreads(true)
                    .IngressCapacity(1024)
                    .Build();
  if (!config.ok()) return {};
  auto client_or = Client::Create(*config);
  if (!client_or.ok()) return {};
  auto client = std::move(client_or).value();
  if (!client->Start().ok()) return {};

  RunStats stats;
  std::mutex mu;
  client->SetResultCallback(
      [&stats, &mu](core::QueryId, const spe::Record& r) {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.rows_out;
        stats.out_hash += HashRecord(r.event_time, r.row);
      });
  clock.SetMs(0);
  for (const auto& d : StandingQueries()) {
    if (!client->Submit(d).ok()) return {};
  }
  client->Pump(true);

  const auto start = std::chrono::steady_clock::now();
  Stream(
      [&client](StreamId stream, TimestampMs t, Row row) {
        client->Push(stream, t, std::move(row));
      },
      [&client](TimestampMs t) { client->PushWatermark(t); }, &clock,
      [&client, &stats, split_at](int i) {
        if (i == split_at && client->SplitShard(0).ok()) {
          stats.pause_ms = client->last_reshard_pause_ms();
        }
      });
  if (!client->FinishAndWait().ok()) return {};
  const auto end = std::chrono::steady_clock::now();
  stats.wall_s = std::chrono::duration<double>(end - start).count();
  stats.final_shards = client->num_shards();
  stats.ok = true;
  return stats;
}

bool Run() {
  harness::PrintBanner(
      "micro_shard — sharded scale-out: routing, merge, live resharding",
      "The identical keyed workload (40000 tuples, 64 keys, 3 standing "
      "queries) runs on a single sync job and then on 1/2/4 router "
      "shards with per-shard pump threads; one leg splits shard 0 "
      "mid-run. All legs must produce the same order-insensitive "
      "output hash.",
      "join topology, parallelism 1 per shard, sliding windows "
      "2000/500 + 600/300, watermark every 1000 tuples; single-CPU "
      "container — threaded legs measure router overhead, not speedup");

  struct Leg {
    std::string label;
    RunStats stats;
  };
  std::vector<Leg> legs;
  legs.push_back({"reference (1 job, sync)", RunReference()});
  for (int shards : {1, 2, 4}) {
    legs.push_back({std::to_string(shards) + " shard(s), threaded",
                    RunSharded(shards, /*split_at=*/-1)});
  }
  legs.push_back(
      {"2 shards + live split", RunSharded(2, /*split_at=*/kRows / 2)});

  harness::Table table({"leg", "tuples/s", "rows out", "output hash",
                        "split pause ms", "final shards"});
  const uint64_t want = legs.front().stats.out_hash;
  bool all_match = true;
  for (const auto& leg : legs) {
    if (!leg.stats.ok || leg.stats.out_hash != want) all_match = false;
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(leg.stats.out_hash));
    table.AddRow(
        {leg.label,
         std::to_string(static_cast<int64_t>(
             leg.stats.wall_s > 0 ? kRows / leg.stats.wall_s : 0)),
         std::to_string(leg.stats.rows_out), hash,
         leg.stats.pause_ms >= 0 ? std::to_string(leg.stats.pause_ms)
                                 : "-",
         leg.stats.final_shards > 0
             ? std::to_string(leg.stats.final_shards)
             : "-"});
  }
  table.Print();
  std::printf("\n%s\n", all_match
                            ? "all legs match the reference output hash"
                            : "HASH MISMATCH — sharding changed outputs");
  return all_match;
}

}  // namespace
}  // namespace astream::bench

int main() { return astream::bench::Run() ? 0 : 1; }
