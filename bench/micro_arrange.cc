// Cross-window state sharing (DESIGN.md §12): cost of adding ad-hoc
// queries with DISTINCT window specs over one stream. With shared
// arrangements + factor-window rewriting, composable specs ride one
// slice lattice and one multiversioned store, so state bytes and
// maintenance CPU stay near-flat as the spec count grows 1 → 8. The
// sharing-off legs rebuild the per-query cost the rewrite removes.
// Outputs must be identical (order-insensitive hash) between modes at
// every sweep point.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/astream.h"
#include "harness/report.h"

namespace astream::bench {
namespace {

using core::AStreamJob;
using core::QueryDescriptor;
using core::QueryKind;
using spe::Row;
using spe::Value;

constexpr int kRows = 60000;
constexpr int kKeys = 64;
constexpr TimestampMs kSlide = 1000;  // shared slide: one GCD lattice
// Distinct lengths, all multiples of the slide → every spec factors onto
// the same { t ≡ origin (mod 1000) } lattice.
constexpr int kLengthFactors[] = {6, 3, 4, 8, 5, 10, 12, 7};

struct RunStats {
  double wall_s = 0;
  int64_t rows_out = 0;
  uint64_t out_hash = 0;
  int64_t max_state_bytes = 0;
  int64_t memo_hits = 0;
  int64_t factor_reuses = 0;
  bool ok = false;
};

uint64_t HashRecord(TimestampMs event_time, const Row& row) {
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(event_time);
  for (size_t c = 0; c < row.NumColumns(); ++c) {
    h ^= static_cast<uint64_t>(row.At(c)) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
  }
  return h;
}

RunStats RunOnce(int num_specs, bool share) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  options.parallelism = 1;
  options.threaded = false;  // deterministic; measures maintenance CPU
  options.clock = &clock;
  // Batch all submits into ONE changelog (common origin → one lattice).
  options.session.batch_size = 1000;
  options.session.max_timeout_ms = 1 << 30;
  options.share_arrangements = share;
  auto job_or = AStreamJob::Create(options);
  if (!job_or.ok()) return {};
  auto job = std::move(job_or).value();
  if (!job->Start().ok()) return {};

  RunStats stats;
  job->SetResultCallback([&stats](core::QueryId, const spe::Record& r) {
    ++stats.rows_out;
    // Commutative combine: insensitive to emission order.
    stats.out_hash += HashRecord(r.event_time, r.row);
  });

  clock.SetMs(0);
  for (int q = 0; q < num_specs; ++q) {
    QueryDescriptor d;
    d.kind = QueryKind::kAggregation;
    d.window = spe::WindowSpec::Sliding(kLengthFactors[q] * kSlide, kSlide);
    d.agg = {spe::AggKind::kSum, 1};
    if (!job->Submit(d).ok()) return {};
  }
  job->Pump(true);  // one batch: common origin, shared lattice

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRows; ++i) {
    const TimestampMs t = 2 + i;
    clock.SetMs(t);
    job->PushA(t, Row{i % kKeys, i % 1000});
    if (i % 2000 == 1999) job->PushWatermark(t - 12 * kSlide);
    if (i % 1000 == 999) {
      const auto snapshot = job->MetricsSnapshot();
      const auto it = snapshot.gauges.find("state.arena_bytes");
      if (it != snapshot.gauges.end() && it->second > stats.max_state_bytes) {
        stats.max_state_bytes = it->second;
      }
    }
  }
  if (!job->FinishAndWait().ok()) return {};
  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  const AStreamJob::OperatorStats op = job->CollectStats();
  stats.memo_hits = op.arrange_memo_hits;
  stats.factor_reuses = op.factor_reuses;
  stats.ok = true;
  return stats;
}

/// Best-of-3 wall time (the usual noise shield on a shared box); hashes
/// and state footprints must agree across repeats.
RunStats RunBest(int num_specs, bool share) {
  RunStats best;
  for (int rep = 0; rep < 3; ++rep) {
    const RunStats s = RunOnce(num_specs, share);
    if (!s.ok) return {};
    if (rep > 0 && s.out_hash != best.out_hash) return {};
    if (rep == 0 || s.wall_s < best.wall_s) {
      const uint64_t hash = rep == 0 ? s.out_hash : best.out_hash;
      best = s;
      best.out_hash = hash;
    }
  }
  return best;
}

void Run() {
  harness::PrintBanner(
      "micro_arrange — shared arrangements vs per-query state",
      "Sweep over N distinct (length, slide) window specs on one "
      "aggregation stream, all composable onto one GCD lattice. Sharing "
      "on: one arrangement, factor-rewritten slices, memoized window "
      "composition. Sharing off: the per-query-store reference cost. "
      "Outputs must be hash-identical between modes at every N.",
      "sync aggregation topology, parallelism 1, 60k tuples, 64 keys, "
      "slide 1000ms, lengths {6,3,4,8,5,10,12,7}x slide, watermark "
      "every 2000 tuples");
  harness::Table table({"specs", "mode", "tuples/s", "state KiB",
                        "memo hits", "factor reuses", "rows out",
                        "output hash"});
  bool hashes_match = true;
  double on_base_wall = 0;
  int64_t on_base_bytes = 0;
  double on_wall_growth = 0, on_bytes_growth = 0;
  for (int n : {1, 2, 4, 8}) {
    const RunStats on = RunBest(n, true);
    const RunStats off = RunBest(n, false);
    if (!on.ok || !off.ok) {
      std::fprintf(stderr, "run failed for n=%d\n", n);
      continue;
    }
    if (on.out_hash != off.out_hash || on.rows_out != off.rows_out) {
      hashes_match = false;
    }
    if (n == 1) {
      on_base_wall = on.wall_s;
      on_base_bytes = on.max_state_bytes;
    }
    if (n == 8 && on_base_wall > 0 && on_base_bytes > 0) {
      on_wall_growth = on.wall_s / on_base_wall;
      on_bytes_growth =
          static_cast<double>(on.max_state_bytes) / on_base_bytes;
    }
    for (const auto& [label, s] :
         {std::pair<const char*, const RunStats&>{"shared", on},
          std::pair<const char*, const RunStats&>{"per-query", off}}) {
      char rate[32], state[32], hash[32];
      std::snprintf(rate, sizeof(rate), "%.0f",
                    static_cast<double>(kRows) / s.wall_s);
      std::snprintf(state, sizeof(state), "%.0f",
                    static_cast<double>(s.max_state_bytes) / 1024);
      std::snprintf(hash, sizeof(hash), "%016llx",
                    static_cast<unsigned long long>(s.out_hash));
      table.AddRow({std::to_string(n), label, rate, state,
                    std::to_string(s.memo_hits),
                    std::to_string(s.factor_reuses),
                    std::to_string(s.rows_out), hash});
    }
  }
  table.Print();
  std::printf("outputs identical shared vs per-query at every N: %s\n",
              hashes_match ? "yes" : "NO — MISMATCH");
  std::printf(
      "shared-mode growth 1→8 specs: state bytes %.2fx, wall time %.2fx "
      "(target: within ~1.5x)\n",
      on_bytes_growth, on_wall_growth);
  if (!hashes_match) std::exit(1);
}

}  // namespace
}  // namespace astream::bench

int main() {
  astream::bench::BenchInit();
  astream::bench::Run();
  return 0;
}
