#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"

namespace astream::obs {
namespace {

// --- Histogram bucket math ---------------------------------------------

TEST(HistogramBuckets, NonPositiveValuesLandInBucketZero) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1), 0);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MIN), 0);
}

TEST(HistogramBuckets, PowerOfTwoBoundaries) {
  // Bucket b covers [2^(b-1), 2^b): each power of two starts a new bucket.
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
}

TEST(HistogramBuckets, BoundsRoundTrip) {
  for (int b = 1; b < Histogram::kNumBuckets - 1; ++b) {
    const int64_t lo = Histogram::BucketLowerBound(b);
    const int64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(hi - 1), b) << "bucket " << b;
    EXPECT_EQ(hi, 2 * lo) << "bucket " << b;
  }
}

TEST(HistogramBuckets, OverflowBucketCatchesHugeValues) {
  const int last = Histogram::kNumBuckets - 1;
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), last);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(last)), last);
  EXPECT_EQ(Histogram::BucketUpperBound(last), INT64_MAX);
}

// --- Histogram recording + percentiles ---------------------------------

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  h.Record(5);
  h.Record(100);
  h.Record(1);
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.sum, 106);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 3.0);
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(Histogram, SingleValuePercentilesAreExact) {
  // min == max clamps every percentile to the one observed value even
  // though the bucket spans [64, 128).
  Histogram h;
  h.Record(77);
  const auto s = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(s.Percentile(0), 77.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 77.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 77.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 77.0);
}

TEST(Histogram, PercentilesAreMonotoneAndBucketAccurate) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const auto s = h.TakeSnapshot();
  double prev = 0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = s.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
    prev = v;
  }
  // Log-bucketed: the answer is exact only to within its power-of-two
  // bucket. p50's true value 500 lands in [256, 512).
  EXPECT_GE(s.Percentile(50), 256.0);
  EXPECT_LT(s.Percentile(50), 512.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
}

TEST(Histogram, InterpolationInsideOneBucket) {
  // 11 values spread across bucket [64, 128): ranks interpolate linearly
  // between the bucket's edges, clamped to [min, max].
  Histogram h;
  for (int i = 0; i <= 10; ++i) h.Record(64 + i);
  const auto s = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(s.Percentile(0), 64.0);
  const double p50 = s.Percentile(50);
  EXPECT_GT(p50, 64.0);
  EXPECT_LE(p50, 74.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 74.0);
}

TEST(Histogram, OverflowBucketInterpolatesTowardMax) {
  Histogram h;
  const int64_t huge = int64_t{1} << 50;  // beyond the last finite boundary
  h.Record(huge);
  h.Record(huge + 10);
  const auto s = h.TakeSnapshot();
  EXPECT_GE(s.Percentile(99), static_cast<double>(huge));
  EXPECT_LE(s.Percentile(99), static_cast<double>(huge + 10));
}

TEST(Histogram, ConcurrentRecordsAreAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) h.Record(i % 1000);
    });
  }
  for (auto& t : threads) t.join();
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

// --- Registry ----------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x");
  Counter* c2 = reg.GetCounter("x");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("y"), c1);
  c1->Add(3);
  EXPECT_EQ(reg.TakeSnapshot().counters.at("x"), 3);
}

TEST(MetricsRegistry, DisabledRegistryHandsOutNoSeries) {
  MetricsRegistry reg(/*enabled=*/false);
  EXPECT_FALSE(reg.enabled());
  EXPECT_EQ(reg.SeriesFor(1), nullptr);
  EXPECT_TRUE(reg.TakeSnapshot().queries.empty());
  // Named metrics still exist (callers guard with their own enabled bit).
  EXPECT_NE(reg.GetCounter("z"), nullptr);
}

TEST(MetricsRegistry, PerQuerySeriesSnapshot) {
  MetricsRegistry reg;
  QuerySeries* s = reg.SeriesFor(7);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(reg.SeriesFor(7), s);
  s->records_emitted.Add(5);
  s->late_drops.Add();
  s->event_latency_ms.Record(12);
  const auto snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.queries.count(7), 1u);
  EXPECT_EQ(snap.queries.at(7).records_emitted, 5);
  EXPECT_EQ(snap.queries.at(7).late_drops, 1);
  EXPECT_EQ(snap.queries.at(7).event_latency_ms.count, 1);
}

TEST(SeriesCache, CachesAndRespectsDisabled) {
  MetricsRegistry on;
  SeriesCache cache(&on);
  QuerySeries* s = cache.For(3);
  EXPECT_NE(s, nullptr);
  EXPECT_EQ(cache.For(3), s);

  MetricsRegistry off(/*enabled=*/false);
  cache.Reset(&off);
  EXPECT_EQ(cache.For(3), nullptr);

  cache.Reset(nullptr);
  EXPECT_EQ(cache.For(3), nullptr);
}

// --- TraceSink ---------------------------------------------------------

TEST(TraceSink, RecordsOrderedEventsWithMonotonicTimestamps) {
  TraceSink sink;
  sink.Record(TraceEventKind::kSubmit, 1);
  sink.Record(TraceEventKind::kDeployAck, 1, 42);
  sink.Record(TraceEventKind::kChangelogFlush, -1, 5);
  const auto events = sink.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kSubmit);
  EXPECT_EQ(events[0].query, 1);
  EXPECT_EQ(events[1].detail, 42);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us, events[2].ts_us);
}

TEST(TraceSink, JsonLinesFormat) {
  TraceSink sink;
  sink.Record(TraceEventKind::kSubmit, 9, 0);
  const std::string json = sink.ToJsonLines();
  EXPECT_NE(json.find("\"event\":\"submit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"query\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts_us\":"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '\n');
}

TEST(TraceSink, DisabledSinkDropsEverything) {
  TraceSink sink(/*enabled=*/false);
  sink.Record(TraceEventKind::kSubmit, 1);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.ToJsonLines().empty());
}

TEST(TraceSink, BoundedCapacityCountsDrops) {
  TraceSink sink(/*enabled=*/true, /*capacity=*/2);
  sink.Record(TraceEventKind::kSubmit, 1);
  sink.Record(TraceEventKind::kSubmit, 2);
  sink.Record(TraceEventKind::kSubmit, 3);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1);
}

// --- Export ------------------------------------------------------------

TEST(Export, TextAndJsonCarryAllSections) {
  MetricsRegistry reg;
  reg.GetCounter("job.push_accepted")->Add(10);
  reg.GetGauge("session.active_queries")->Set(2);
  reg.GetHistogram("job.deploy_latency_ms")->Record(8);
  reg.SeriesFor(1)->records_emitted.Add(4);
  const auto snap = reg.TakeSnapshot();

  const std::string text = ExportText(snap);
  EXPECT_NE(text.find("job.push_accepted"), std::string::npos) << text;
  EXPECT_NE(text.find("session.active_queries"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);

  const std::string json = ExportJson(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"job.push_accepted\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries\""), std::string::npos);
}

}  // namespace
}  // namespace astream::obs
