// Tests of the experiment harness itself: the query-at-a-time baseline
// SUT and the Fig. 5 driver.

#include <gtest/gtest.h>

#include "harness/astream_sut.h"
#include "harness/baseline_sut.h"
#include "harness/driver.h"

namespace astream::harness {
namespace {

using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryKind;
using spe::Row;

QueryDescriptor AggQuery() {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.window = spe::WindowSpec::Tumbling(100);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

TEST(BaselineSutTest, DeploysAndProducesResults) {
  BaselineSut::Config cfg;
  cfg.deploy_cost_ms = 0;
  cfg.threaded = false;
  BaselineSut sut(cfg);
  ASSERT_TRUE(sut.Start().ok());
  auto id = sut.Submit(AggQuery());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sut.WaitDeployed(5'000));
  EXPECT_EQ(sut.num_active_jobs(), 1u);

  const TimestampMs base = WallClock::Default()->NowMs();
  for (int i = 0; i < 50; ++i) {
    sut.PushA(base + i, Row{1, 2});
  }
  sut.PushWatermark(base + 1000);
  sut.FinishAndWait();
  EXPECT_GT(sut.qos().OutputsOf(*id), 0);
}

TEST(BaselineSutTest, DeploymentsSerializeAndCost) {
  BaselineSut::Config cfg;
  cfg.deploy_cost_ms = 30;
  cfg.threaded = false;
  BaselineSut sut(cfg);
  ASSERT_TRUE(sut.Start().ok());
  const TimestampMs start = WallClock::Default()->NowMs();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sut.Submit(AggQuery()).ok());
  }
  ASSERT_TRUE(sut.WaitDeployed(10'000));
  const TimestampMs elapsed = WallClock::Default()->NowMs() - start;
  EXPECT_GE(elapsed, 4 * 30);  // serialized: at least 4 x cost
  EXPECT_EQ(sut.num_active_jobs(), 4u);
  // Deployment latencies recorded and increasing (queueing).
  const auto snap = sut.qos().TakeSnapshot();
  ASSERT_EQ(snap.deployment_events.size(), 4u);
  EXPECT_GT(snap.deployment_events.back().second,
            snap.deployment_events.front().second);
  sut.Stop();
}

TEST(BaselineSutTest, CancelRemovesJob) {
  BaselineSut::Config cfg;
  cfg.deploy_cost_ms = 0;
  cfg.threaded = false;
  BaselineSut sut(cfg);
  ASSERT_TRUE(sut.Start().ok());
  auto id = sut.Submit(AggQuery());
  ASSERT_TRUE(sut.WaitDeployed(5'000));
  ASSERT_TRUE(sut.Cancel(*id).ok());
  ASSERT_TRUE(sut.WaitDeployed(5'000));
  EXPECT_EQ(sut.num_active_jobs(), 0u);
  sut.Stop();
}

TEST(BaselineSutTest, JoinJobGetsBothStreams) {
  BaselineSut::Config cfg;
  cfg.deploy_cost_ms = 0;
  cfg.threaded = false;
  BaselineSut sut(cfg);
  ASSERT_TRUE(sut.Start().ok());
  QueryDescriptor join;
  join.kind = QueryKind::kJoin;
  join.window = spe::WindowSpec::Tumbling(100);
  auto id = sut.Submit(join);
  ASSERT_TRUE(sut.WaitDeployed(5'000));
  const TimestampMs base = WallClock::Default()->NowMs();
  sut.PushA(base + 1, Row{7, 1});
  sut.PushB(base + 2, Row{7, 2});
  sut.FinishAndWait();
  EXPECT_EQ(sut.qos().OutputsOf(*id), 1);
}

TEST(DriverTest, RunsScenarioAndReports) {
  core::AStreamJob::Options options;
  options.topology = core::AStreamJob::TopologyKind::kAggregation;
  options.parallelism = 1;
  options.threaded = false;
  options.session.batch_size = 1;  // deploy immediately (short run)
  AStreamSut sut(options);
  ASSERT_TRUE(sut.Start().ok());

  workload::Sc1Scenario scenario(/*rate_per_sec=*/50, /*max_parallel=*/3);
  Driver::Config cfg;
  cfg.duration_ms = 600;
  cfg.data_rate_per_sec = 5'000;
  cfg.query_factory = [] {
    QueryDescriptor d;
    d.kind = QueryKind::kAggregation;
    d.window = spe::WindowSpec::Tumbling(100);
    d.agg = {spe::AggKind::kCount, 1};
    return d;
  };
  cfg.data.key_max = 10;
  Driver driver(&sut, &scenario, cfg);
  const auto report = driver.Run();

  EXPECT_GT(report.pushed_a, 0);
  EXPECT_EQ(report.pushed_b, 0);
  EXPECT_EQ(report.created, 3);
  EXPECT_NEAR(report.input_rate_per_sec, 5'000, 2'000);
  EXPECT_GT(report.total_outputs, 0);
  EXPECT_TRUE(report.sustainable);
}

TEST(DriverTest, SamplesTimeSeries) {
  core::AStreamJob::Options options;
  options.topology = core::AStreamJob::TopologyKind::kAggregation;
  options.threaded = false;
  AStreamSut sut(options);
  ASSERT_TRUE(sut.Start().ok());
  Driver::Config cfg;
  cfg.duration_ms = 500;
  cfg.data_rate_per_sec = 2'000;
  cfg.sample_interval_ms = 100;
  cfg.query_factory = [] {
    QueryDescriptor d;
    d.kind = QueryKind::kSelection;
    d.select_a = {Predicate{1, CmpOp::kGe, 0}};
    return d;
  };
  workload::Sc1Scenario scenario(100, 1);
  Driver driver(&sut, &scenario, cfg);
  const auto report = driver.Run();
  EXPECT_GE(report.samples.size(), 3u);
  for (size_t i = 1; i < report.samples.size(); ++i) {
    EXPECT_GE(report.samples[i].pushed, report.samples[i - 1].pushed);
  }
}

}  // namespace
}  // namespace astream::harness
