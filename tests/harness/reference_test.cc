#include "harness/reference.h"

#include <gtest/gtest.h>

namespace astream::harness {
namespace {

using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryKind;
using spe::AggKind;
using spe::Row;
using spe::WindowSpec;

std::vector<InputEvent> Events(
    std::initializer_list<std::tuple<int, TimestampMs, Row>> list) {
  std::vector<InputEvent> out;
  for (const auto& [stream, t, row] : list) {
    out.push_back(InputEvent{stream, t, row});
  }
  return out;
}

RowMultiset Expect(
    std::initializer_list<std::pair<std::vector<spe::Value>, int64_t>>
        rows) {
  RowMultiset m;
  for (const auto& [key, count] : rows) m[key] = count;
  return m;
}

TEST(ReferenceTest, SelectionRespectsLifetimeAndPredicate) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kSelection;
  q.desc.select_a = {Predicate{1, CmpOp::kLt, 10}};
  q.created_at = 5;
  q.deleted_at = 20;
  const auto events = Events({
      {0, 3, Row{1, 4}},    // before creation
      {0, 6, Row{1, 4}},    // in
      {0, 7, Row{1, 50}},   // predicate fails
      {1, 8, Row{1, 4}},    // wrong stream
      {0, 20, Row{1, 4}},   // at deletion (exclusive)
  });
  // Output keyed [event_time, columns...].
  EXPECT_EQ(EvaluateReference(q, events), Expect({{{6, 1, 4}, 1}}));
}

TEST(ReferenceTest, TumblingAggAnchoredAtCreation) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kAggregation;
  q.desc.window = WindowSpec::Tumbling(10);
  q.desc.agg = {AggKind::kSum, 1};
  q.created_at = 100;
  const auto events = Events({
      {0, 102, Row{1, 5}},
      {0, 109, Row{1, 7}},   // same window [100,110)
      {0, 110, Row{1, 11}},  // next window [110,120)
  });
  EXPECT_EQ(EvaluateReference(q, events),
            Expect({{{109, 1, 12}, 1}, {{119, 1, 11}, 1}}));
}

TEST(ReferenceTest, DeletedQueryEmitsOnlyCompletedWindows) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kAggregation;
  q.desc.window = WindowSpec::Tumbling(10);
  q.desc.agg = {AggKind::kCount, 1};
  q.created_at = 0;
  q.deleted_at = 15;  // window [0,10) completes, [10,20) does not
  const auto events = Events({
      {0, 2, Row{1, 0}},
      {0, 12, Row{1, 0}},
  });
  EXPECT_EQ(EvaluateReference(q, events), Expect({{{9, 1, 1}, 1}}));
}

TEST(ReferenceTest, SessionAggregation) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kAggregation;
  q.desc.window = WindowSpec::Session(5);
  q.desc.agg = {AggKind::kSum, 1};
  q.created_at = 0;
  const auto events = Events({
      {0, 10, Row{1, 1}},
      {0, 13, Row{1, 2}},  // merges (gap 3 < 5)
      {0, 30, Row{1, 4}},  // new session
  });
  // Sessions close at last+gap; event time last+gap-1.
  EXPECT_EQ(EvaluateReference(q, events),
            Expect({{{17, 1, 3}, 1}, {{34, 1, 4}, 1}}));
}

TEST(ReferenceTest, JoinCrossProductPerWindow) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kJoin;
  q.desc.window = WindowSpec::Tumbling(10);
  q.created_at = 0;
  const auto events = Events({
      {0, 1, Row{7, 1}},
      {0, 2, Row{7, 2}},
      {1, 3, Row{7, 3}},
      {1, 12, Row{7, 4}},  // next window, no A-side partner
  });
  EXPECT_EQ(EvaluateReference(q, events),
            Expect({{{9, 7, 1, 7, 3}, 1}, {{9, 7, 2, 7, 3}, 1}}));
}

TEST(ReferenceTest, SlidingJoinDuplicatesAcrossWindows) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kJoin;
  q.desc.window = WindowSpec::Sliding(10, 5);
  q.created_at = 0;
  const auto events = Events({
      {0, 7, Row{1, 1}},
      {1, 8, Row{1, 2}},
  });
  // The pair is in [0,10) and [5,15): two results at 9 and 14.
  EXPECT_EQ(EvaluateReference(q, events),
            Expect({{{9, 1, 1, 1, 2}, 1}, {{14, 1, 1, 1, 2}, 1}}));
}

TEST(ReferenceTest, ComplexCascadesJoinsThenAggregates) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kComplex;
  q.desc.window = WindowSpec::Tumbling(10);
  q.desc.join_depth = 1;
  q.desc.agg = {AggKind::kCount, 1};
  q.created_at = 0;
  const auto events = Events({
      {0, 1, Row{5, 1}},
      {1, 2, Row{5, 2}},
      {1, 3, Row{5, 3}},
  });
  // Stage 1: two joined tuples at t=9 -> agg window [0,10): count=2 at 9.
  EXPECT_EQ(EvaluateReference(q, events), Expect({{{9, 5, 2}, 1}}));
}

TEST(ReferenceTest, ComplexDepthTwoReWindowsResults) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kComplex;
  q.desc.window = WindowSpec::Tumbling(10);
  q.desc.join_depth = 2;
  q.desc.agg = {AggKind::kCount, 1};
  q.created_at = 0;
  const auto events = Events({
      {0, 1, Row{5, 1}},
      {1, 2, Row{5, 2}},
  });
  // J1 emits (5,1,5,2) at t=9 (window [0,10)). J2 joins it with B rows in
  // the window containing 9 — B row at t=2 is in [0,10): result at 9.
  // Agg counts it in window [0,10): one row at t=9.
  EXPECT_EQ(EvaluateReference(q, events),
            Expect({{{9, 5, 1}, 1}}));
}

TEST(ReferenceTest, EmptyInputsProduceNothing) {
  QueryLifecycle q;
  q.desc.kind = QueryKind::kJoin;
  q.desc.window = WindowSpec::Tumbling(10);
  q.created_at = 0;
  EXPECT_TRUE(EvaluateReference(q, {}).empty());
}

}  // namespace
}  // namespace astream::harness
