#include "harness/source_log.h"

#include <gtest/gtest.h>

#include "harness/reference.h"

namespace astream::harness {
namespace {

using core::AStreamJob;
using core::QueryDescriptor;
using core::QueryId;
using core::QueryKind;
using spe::Row;

TEST(SourceLogTest, OffsetsAndReplayBounds) {
  SourceLog log;
  EXPECT_EQ(log.EndOffset(), 0);
  log.LogA(1, Row{1, 2});
  log.LogWatermark(5);
  log.LogB(6, Row{2, 3});
  EXPECT_EQ(log.EndOffset(), 3);
  log.TruncateBelow(2);
  EXPECT_EQ(log.first_offset(), 2);
  EXPECT_EQ(log.EndOffset(), 3);
}

class RecoverableJobTest : public ::testing::Test {
 protected:
  AStreamJob::Options Options() {
    AStreamJob::Options options;
    options.topology = AStreamJob::TopologyKind::kAggregation;
    options.threaded = false;
    options.clock = &clock_;
    options.session.batch_size = 1;
    return options;
  }

  QueryDescriptor Agg(TimestampMs length) {
    QueryDescriptor d;
    d.kind = QueryKind::kAggregation;
    d.window = spe::WindowSpec::Tumbling(length);
    d.agg = {spe::AggKind::kSum, 1};
    return d;
  }

  ManualClock clock_;
};

TEST_F(RecoverableJobTest, RecoverWithoutCheckpointFails) {
  RecoverableJob job(Options());
  ASSERT_TRUE(job.Start().ok());
  EXPECT_EQ(job.Recover().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RecoverableJobTest, FullRecoveryLoopMatchesFailureFree) {
  // Failure-free run.
  RowMultiset expected;
  {
    RecoverableJob job(Options());
    ASSERT_TRUE(job.Start().ok());
    job.SetResultCallback([&](QueryId, const spe::Record& r) {
      AddToMultiset(&expected, r.event_time, r.row);
    });
    clock_.SetMs(0);
    job.job()->Submit(Agg(40)).ok();
    job.job()->Pump(true);
    for (int t = 2; t < 200; t += 3) {
      clock_.SetMs(t);
      job.PushA(t, Row{t % 2, t});
      if (t % 30 == 0) job.PushWatermark(t);
    }
    job.job()->FinishAndWait();
  }

  // Run with checkpoint at t=100, crash at t=130, recovery, completion.
  RowMultiset committed;   // outputs up to the checkpoint
  RowMultiset recovered;   // outputs after recovery
  RowMultiset* bucket = &committed;
  RowMultiset uncommitted;  // between checkpoint and crash -> discarded
  {
    RecoverableJob job(Options());
    ASSERT_TRUE(job.Start().ok());
    job.SetResultCallback([&](QueryId, const spe::Record& r) {
      AddToMultiset(bucket, r.event_time, r.row);
    });
    clock_.SetMs(0);
    job.job()->Submit(Agg(40)).ok();
    job.job()->Pump(true);
    int t = 2;
    for (; t < 100; t += 3) {
      clock_.SetMs(t);
      job.PushA(t, Row{t % 2, t});
      if (t % 30 == 0) job.PushWatermark(t);
    }
    job.Checkpoint();
    ASSERT_NE(job.job()->checkpoints().LatestComplete(), nullptr);
    bucket = &uncommitted;  // post-checkpoint output is not yet committed
    for (; t < 130; t += 3) {
      clock_.SetMs(t);
      job.PushA(t, Row{t % 2, t});
      if (t % 30 == 0) job.PushWatermark(t);
    }
    // CRASH + recover: the tail [checkpoint offset, crash) is replayed
    // from the source log; its outputs land in `recovered`.
    bucket = &recovered;
    ASSERT_TRUE(job.Recover().ok());
    for (; t < 200; t += 3) {
      clock_.SetMs(t);
      job.PushA(t, Row{t % 2, t});
      if (t % 30 == 0) job.PushWatermark(t);
    }
    job.job()->FinishAndWait();
  }

  // committed + recovered == failure-free; the uncommitted outputs are a
  // subset re-produced by the replay (exactly-once at the committed
  // output boundary).
  RowMultiset merged = committed;
  for (const auto& [row, count] : recovered) merged[row] += count;
  EXPECT_EQ(merged, expected);
  for (const auto& [row, count] : uncommitted) {
    auto it = recovered.find(row);
    ASSERT_NE(it, recovered.end());
    EXPECT_GE(it->second, count);
  }
}

TEST_F(RecoverableJobTest, LogTruncationAfterCheckpointStillRecovers) {
  RecoverableJob job(Options());
  ASSERT_TRUE(job.Start().ok());
  int64_t outputs = 0;
  job.SetResultCallback(
      [&](QueryId, const spe::Record&) { ++outputs; });
  clock_.SetMs(0);
  job.job()->Submit(Agg(20)).ok();
  job.job()->Pump(true);
  for (int t = 2; t < 80; t += 2) {
    clock_.SetMs(t);
    job.PushA(t, Row{1, 1});
    if (t % 20 == 0) job.PushWatermark(t);
  }
  const int64_t offset_at_cp = job.log().EndOffset();
  job.Checkpoint();
  job.log().TruncateBelow(offset_at_cp);  // Kafka retention kicked in
  for (int t = 80; t < 120; t += 2) {
    clock_.SetMs(t);
    job.PushA(t, Row{1, 1});
  }
  ASSERT_TRUE(job.Recover().ok());
  job.PushWatermark(200);
  job.job()->FinishAndWait();
  EXPECT_GT(outputs, 0);
}

}  // namespace
}  // namespace astream::harness
