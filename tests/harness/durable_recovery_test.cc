// Process-restart recovery: a SupervisedJob with a durable checkpoint
// directory is killed (destroyed without draining) after a checkpoint; a
// brand-new SupervisedJob over the same directory — sharing no RAM with
// the first — restores from disk alone, the driver resumes feeding from
// the checkpoint's source offsets, and the union of both incarnations'
// outputs equals a single uninterrupted run.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/astream.h"
#include "harness/reference.h"
#include "harness/supervised_job.h"
#include "storage/durable_checkpoint.h"

namespace astream::harness {
namespace {

namespace fs = std::filesystem;

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryId;
using core::QueryKind;
using spe::Row;

constexpr int kRows = 400;
constexpr int kCut = 200;  // checkpoint + "process death" after this row

Row MakeRow(Rng* rng) {
  return Row{rng->UniformInt(0, 6), rng->UniformInt(0, 99)};
}

AStreamJob::Options SyncOptions(Clock* clock) {
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kJoin;
  options.parallelism = 1;
  options.threaded = false;
  options.clock = clock;
  options.session.batch_size = 1;
  return options;
}

std::vector<QueryDescriptor> Queries() {
  QueryDescriptor join;
  join.kind = QueryKind::kJoin;
  join.window = spe::WindowSpec::Sliding(60, 20);
  join.select_a = {Predicate{1, CmpOp::kLt, 90}};
  QueryDescriptor select;
  select.kind = QueryKind::kSelection;
  select.select_a = {Predicate{1, CmpOp::kGt, 30}};
  return {join, select};
}

// Feeds rows [from, to) with a watermark every 50 rows; rows are a fixed
// deterministic sequence so both the reference and the two incarnations
// see identical data.
template <typename JobT>
void Feed(JobT* job, ManualClock* clock, int from, int to) {
  Rng rng(0xD0D0);
  TimestampMs t = 1;
  for (int i = 0; i < to; ++i) {
    t += rng.UniformInt(1, 3);
    const Row row = MakeRow(&rng);
    if (i < from) continue;  // keep rng/time sequence aligned
    clock->SetMs(t);
    if (i % 2 == 0) {
      job->PushA(t, row);
    } else {
      job->PushB(t, row);
    }
    if (i % 50 == 49) job->PushWatermark(t - 30);
  }
}

TEST(DurableRecoveryTest, SurvivesProcessRestartFromDiskOnly) {
  const fs::path dir =
      fs::temp_directory_path() / "astream_durable_recovery_test";
  fs::remove_all(dir);

  // Uninterrupted oracle.
  std::map<QueryId, RowMultiset> reference;
  {
    ManualClock clock;
    auto job = std::move(AStreamJob::Create(SyncOptions(&clock))).value();
    ASSERT_TRUE(job->Start().ok());
    job->SetResultCallback([&](QueryId id, const spe::Record& record) {
      AddToMultiset(&reference[id], record.event_time, record.row);
    });
    clock.SetMs(0);
    // One changelog per submit, mirroring SupervisedJob::Submit's forced
    // flush so query creation times line up across runs.
    for (const auto& desc : Queries()) {
      ASSERT_TRUE(job->Submit(desc).ok());
      job->Pump(true);
    }
    Feed(job.get(), &clock, 0, kRows);
    ASSERT_TRUE(job->FinishAndWait().ok());
  }
  ASSERT_FALSE(reference.empty());

  std::map<QueryId, RowMultiset> combined;
  const auto collect = [&combined](QueryId id, const spe::Record& record) {
    AddToMultiset(&combined[id], record.event_time, record.row);
  };

  // Incarnation 1: feed half, checkpoint, die without draining.
  {
    ManualClock clock;
    SupervisedJob::Options options;
    options.job = SyncOptions(&clock);
    options.durable_checkpoint_dir = dir.string();
    options.pin_clock = [&clock](TimestampMs ms) { clock.SetMs(ms); };
    SupervisedJob job(options);
    ASSERT_TRUE(job.Start().ok());
    job.SetResultCallback(collect);
    clock.SetMs(0);
    for (const auto& desc : Queries()) ASSERT_TRUE(job.Submit(desc).ok());
    Feed(&job, &clock, 0, kCut);
    ASSERT_GT(job.Checkpoint(), 0);
    // No FinishAndWait, no Stop-side flushing: the destructor models a
    // killed process. Only the run files under `dir` survive.
  }

  // Incarnation 2: a fresh supervisor over the same directory. It has no
  // log, no RAM checkpoint, no dedup state — recovery must come from the
  // durable store alone.
  {
    ManualClock clock;
    SupervisedJob::Options options;
    options.job = SyncOptions(&clock);
    options.durable_checkpoint_dir = dir.string();
    options.pin_clock = [&clock](TimestampMs ms) { clock.SetMs(ms); };
    SupervisedJob job(options);
    ASSERT_TRUE(job.Start().ok());
    job.SetResultCallback(collect);

    // The restored checkpoint tells the driver where to resume.
    auto latest = job.checkpoints().LatestComplete();
    ASSERT_NE(latest, nullptr);
    EXPECT_TRUE(latest->complete);
    int64_t resumed = 0;
    for (const auto& [port, offset] : latest->source_offsets) {
      resumed += offset;
    }
    EXPECT_GT(resumed, 0);

    // Queries came back with the session snapshot — no re-submission.
    Feed(&job, &clock, kCut, kRows);
    ASSERT_TRUE(job.FinishAndWait().ok());

    // A later checkpoint gets a fresh, monotonically larger id.
    EXPECT_EQ(job.replayed_rows(), 0);  // nothing in the new log to replay
  }

  // Exactly-once across the restart: both incarnations together produced
  // the uninterrupted run's outputs — no loss, no duplicates.
  EXPECT_EQ(reference.size(), combined.size());
  EXPECT_EQ(reference, combined);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace astream::harness
