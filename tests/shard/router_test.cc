#include "shard/router.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/astream.h"

namespace astream::shard {
namespace {

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryId;
using core::QueryKind;
using spe::Row;

JobConfig InlineConfig(ManualClock* clock, int shards, int slots = 8) {
  JobConfig config;
  config.job.topology = AStreamJob::TopologyKind::kJoin;
  config.job.parallelism = 1;
  config.job.clock = clock;
  config.job.session.batch_size = 1;
  config.shards = shards;
  config.slots = slots;
  return config;
}

QueryDescriptor PassAllSelection() {
  QueryDescriptor d;
  d.kind = QueryKind::kSelection;
  d.select_a = {Predicate{1, CmpOp::kGt, -1}};  // values are >= 0
  return d;
}

std::unique_ptr<ShardRouter> MakeStarted(JobConfig config) {
  auto router = std::move(ShardRouter::Create(std::move(config))).value();
  EXPECT_TRUE(router->Start().ok());
  return router;
}

TEST(ShardRouterTest, RoutesByKeyAndDeliversEachRowOnce) {
  ManualClock clock;
  auto router = MakeStarted(InlineConfig(&clock, 4));
  std::map<QueryId, std::multiset<std::pair<spe::Value, spe::Value>>> outputs;
  router->SetResultCallback([&](QueryId id, const spe::Record& r) {
    outputs[id].insert({r.row.At(0), r.row.At(1)});
  });
  auto id = router->Submit(PassAllSelection());
  ASSERT_TRUE(id.ok());
  router->Pump(true);

  std::multiset<std::pair<spe::Value, spe::Value>> pushed;
  for (spe::Value key = 0; key <= 20; ++key) {
    clock.SetMs(10 + key);
    ASSERT_EQ(router->Push(StreamId::kA, 10 + key, Row{key, key * 3}),
              core::PushResult::kAccepted);
    pushed.insert({key, key * 3});
  }
  EXPECT_TRUE(router->FinishAndWait().ok());
  // Every row delivered exactly once — routed to one shard, emitted by
  // its owner, never duplicated by the fan-out.
  EXPECT_EQ(outputs[*id], pushed);
}

TEST(ShardRouterTest, FanOutAssignsOneConsistentId) {
  ManualClock clock;
  auto router = MakeStarted(InlineConfig(&clock, 3));
  auto first = router->Submit(PassAllSelection());
  ASSERT_TRUE(first.ok());
  router->Pump(true);
  auto second = router->Submit(PassAllSelection());
  ASSERT_TRUE(second.ok());
  router->Pump(true);
  // Deterministic sessions: ids advance in lock-step on every shard.
  EXPECT_EQ(*second, *first + 1);
  EXPECT_TRUE(router->Stop().ok());
}

TEST(ShardRouterTest, IdDivergenceRollsBackAndReportsInternal) {
  ManualClock clock;
  auto router = MakeStarted(InlineConfig(&clock, 2));
  // Desynchronize shard 1's session behind the router's back: its next
  // query id is now ahead of shard 0's.
  auto rogue = router->shard(1)->job()->Submit(PassAllSelection());
  ASSERT_TRUE(rogue.ok());
  router->shard(1)->job()->Pump(true);

  auto id = router->Submit(PassAllSelection());
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().ToString().find("assigned"), std::string::npos)
      << id.status().ToString();
  // The rollback succeeded (the pending creations were dropped), so the
  // router is NOT poisoned — no query was left half-registered.
  EXPECT_TRUE(router->Health().ok());
  EXPECT_TRUE(router->Stop().ok());
}

TEST(ShardRouterTest, CancelOfUnknownIdRejectsCleanly) {
  ManualClock clock;
  auto router = MakeStarted(InlineConfig(&clock, 2));
  // Shard 0 rejects first; nothing was applied anywhere.
  EXPECT_FALSE(router->Cancel(999).ok());
  EXPECT_TRUE(router->Health().ok());
  EXPECT_TRUE(router->Stop().ok());
}

TEST(ShardRouterTest, CancelDivergencePoisonsTheRouter) {
  ManualClock clock;
  auto router = MakeStarted(InlineConfig(&clock, 2));
  // A query that exists only on shard 0: shard 0 accepts the cancel,
  // shard 1 rejects it — the fan-out cannot be undone.
  auto rogue = router->shard(0)->job()->Submit(PassAllSelection());
  ASSERT_TRUE(rogue.ok());
  router->shard(0)->job()->Pump(true);

  const Status s = router->Cancel(*rogue);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(router->Health().ok());
  // Every subsequent control operation reports the poisoned state.
  EXPECT_FALSE(router->Submit(PassAllSelection()).ok());
  EXPECT_TRUE(router->Stop().ok());
}

TEST(ShardRouterTest, KillRequiresThreadedEngine) {
  ManualClock clock;
  auto router = MakeStarted(InlineConfig(&clock, 2));
  const Status s = router->KillShard(1, Status::Internal("chaos"));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("threaded"), std::string::npos);
  EXPECT_TRUE(router->Stop().ok());
}

TEST(ShardRouterTest, ReshardValidation) {
  ManualClock clock;
  // 2 shards over 2 slots: each shard owns exactly one slot.
  auto router = MakeStarted(InlineConfig(&clock, 2, /*slots=*/2));
  EXPECT_FALSE(router->SplitShard(0).ok());  // nothing to split
  EXPECT_FALSE(router->MoveShard(5).ok());   // no such shard
  EXPECT_FALSE(router->SplitShard(-1).ok());
  EXPECT_TRUE(router->Stop().ok());
}

TEST(ShardRouterTest, SplitAndMoveUpdatePlanAndPause) {
  ManualClock clock;
  auto router = MakeStarted(InlineConfig(&clock, 2, /*slots=*/8));
  const auto before = router->plan();
  ASSERT_TRUE(router->SplitShard(0).ok());
  EXPECT_EQ(router->num_shards(), 3);
  EXPECT_GE(router->last_reshard_pause_ms(), 0);
  const auto after_split = router->plan();
  EXPECT_EQ(after_split->version, before->version + 1);
  EXPECT_FALSE(after_split->SlotsOwnedBy(2).empty());

  ASSERT_TRUE(router->MoveShard(1).ok());
  EXPECT_EQ(router->num_shards(), 3);
  EXPECT_EQ(router->plan()->version, after_split->version + 1);
  EXPECT_TRUE(router->Health().ok());
  EXPECT_TRUE(router->Stop().ok());
}

}  // namespace
}  // namespace astream::shard
