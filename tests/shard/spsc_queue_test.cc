#include "shard/spsc_queue.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace astream::shard {
namespace {

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_FALSE(q.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, WrapsAroundManyTimes) {
  SpscQueue<int> q(4);
  int out = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.TryPush(round * 10 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.TryPop(&out));
      EXPECT_EQ(out, round * 10 + i);
    }
  }
}

TEST(SpscQueueTest, CloseDrainsThenReportsEmpty) {
  SpscQueue<int> q(8);
  ASSERT_TRUE(q.TryPush(1));
  ASSERT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  // Items enqueued before the close still drain.
  int out = 0;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  // Closed AND drained: Pop returns false instead of blocking.
  EXPECT_FALSE(q.Pop(&out));
  // Push after close is rejected.
  EXPECT_FALSE(q.Push(3));
}

TEST(SpscQueueTest, BlockingPopWakesOnClose) {
  SpscQueue<int> q(8);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(q.Pop(&out));  // blocks until close, then false
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(SpscQueueTest, TwoThreadOrderedDelivery) {
  constexpr int kItems = 20000;
  SpscQueue<int> q(64);
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    int out = 0;
    while (q.Pop(&out)) received.push_back(out);
  });
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(int(i)));
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST(SpscQueueTest, SizeApproxTracksOccupancy) {
  SpscQueue<int> q(16);
  EXPECT_EQ(q.SizeApprox(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(int(i)));
  EXPECT_EQ(q.SizeApprox(), 5u);
  int out = 0;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(q.SizeApprox(), 4u);
}

}  // namespace
}  // namespace astream::shard
