// Sharded scale-out equivalence: for every shard count, router mode and
// resharding/chaos schedule, the merged per-query output multisets of a
// Client-driven deployment must be byte-identical to a single fault-free
// sync AStreamJob running the same script — including across a live
// split/move and a shard killed and recovered mid-run.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/astream.h"
#include "harness/reference.h"
#include "shard/client.h"

namespace astream::shard {
namespace {

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryId;
using core::QueryKind;
using harness::AddToMultiset;
using harness::RowMultiset;
using spe::Row;

struct Script {
  struct Step {
    enum What {
      kPushA,
      kPushB,
      kWatermark,
      kSubmit,
      kCancel,
      kCheckpoint,
    };
    What what = kPushA;
    TimestampMs time = 0;
    Row row;
    QueryDescriptor desc;
    int cancel_index = 0;  // index into submission order
  };
  std::vector<Step> steps;
  int num_submits = 0;
  int num_cancels = 0;
};

// ~600 tuples over keys 0..6 on two streams, with ad-hoc selection and
// join submits, cancels, periodic watermarks and checkpoints — the same
// churn shape as the core chaos suite, driven through the sharded client.
Script MakeScript() {
  Rng rng(0x5A4DE);
  Script script;
  auto submit = [&](TimestampMs t, bool selection) {
    QueryDescriptor d;
    if (selection) {
      d.kind = QueryKind::kSelection;
      d.select_a = {Predicate{1, CmpOp::kGt, rng.UniformInt(10, 60)}};
    } else {
      d.kind = QueryKind::kJoin;
      d.window = spe::WindowSpec::Sliding(rng.UniformInt(40, 120),
                                          rng.UniformInt(20, 40));
      d.select_a = {Predicate{1, CmpOp::kLt, rng.UniformInt(40, 95)}};
    }
    Script::Step s;
    s.what = Script::Step::kSubmit;
    s.time = t;
    s.desc = d;
    script.steps.push_back(std::move(s));
    ++script.num_submits;
  };
  auto cancel = [&](TimestampMs t, int index) {
    Script::Step s;
    s.what = Script::Step::kCancel;
    s.time = t;
    s.cancel_index = index;
    script.steps.push_back(std::move(s));
    ++script.num_cancels;
  };
  submit(0, false);
  submit(0, true);
  submit(0, false);
  TimestampMs t = 1;
  for (int i = 0; i < 600; ++i) {
    t += rng.UniformInt(1, 3);
    Script::Step s;
    s.time = t;
    s.row = Row{rng.UniformInt(0, 6), rng.UniformInt(0, 99)};
    s.what = rng.Bernoulli(0.5) ? Script::Step::kPushB
                                : Script::Step::kPushA;
    script.steps.push_back(std::move(s));
    if (i == 90 || i == 210 || i == 330 || i == 450 || i == 540) {
      submit(t, i % 180 == 90);
    }
    if (i == 240) cancel(t, 0);
    if (i == 480) cancel(t, 3);
    if (i % 20 == 19) {
      Script::Step wm;
      wm.what = Script::Step::kWatermark;
      wm.time = t;
      script.steps.push_back(std::move(wm));
    }
    if (i % 80 == 79) {
      Script::Step cp;
      cp.what = Script::Step::kCheckpoint;
      cp.time = t;
      script.steps.push_back(std::move(cp));
    }
  }
  return script;
}

JobConfig BaseConfig(ManualClock* clock) {
  JobConfig config;
  config.job.topology = AStreamJob::TopologyKind::kJoin;
  config.job.parallelism = 1;
  config.job.clock = clock;
  config.job.session.batch_size = 1;
  config.slots = 8;
  config.ingress_capacity = 256;
  return config;
}

// Fault-free oracle: the deterministic sync runner on one plain job.
std::map<QueryId, RowMultiset> RunReference(const Script& script) {
  ManualClock clock;
  AStreamJob::Options options = BaseConfig(&clock).job;
  auto job = std::move(AStreamJob::Create(options)).value();
  EXPECT_TRUE(job->Start().ok());
  std::map<QueryId, RowMultiset> outputs;
  job->SetResultCallback([&](QueryId id, const spe::Record& record) {
    AddToMultiset(&outputs[id], record.event_time, record.row);
  });
  std::vector<QueryId> ids;
  for (const auto& step : script.steps) {
    clock.SetMs(step.time);
    switch (step.what) {
      case Script::Step::kPushA:
        job->PushA(step.time, step.row);
        break;
      case Script::Step::kPushB:
        job->PushB(step.time, step.row);
        break;
      case Script::Step::kWatermark:
        job->PushWatermark(step.time);
        break;
      case Script::Step::kSubmit: {
        auto id = job->Submit(step.desc);
        EXPECT_TRUE(id.ok());
        ids.push_back(*id);
        job->Pump(true);
        break;
      }
      case Script::Step::kCancel:
        EXPECT_TRUE(job->Cancel(ids[step.cancel_index]).ok());
        job->Pump(true);
        break;
      case Script::Step::kCheckpoint:
        job->TriggerCheckpoint();
        break;
    }
  }
  EXPECT_TRUE(job->FinishAndWait().ok());
  return outputs;
}

// Events injected at specific script-step indices while a client run is
// in flight: live resharding and shard kills.
struct RunPlan {
  int split_shard = -1;
  int split_at = -1;
  int move_shard = -1;
  int move_at = -1;
  std::vector<int> kill_at;  // step indices; kills target kill_shard
  int kill_shard = 1;
};

struct RunOutcome {
  std::map<QueryId, RowMultiset> outputs;
  int final_shards = 0;
  int64_t reshard_pause_ms = -1;
  int64_t recoveries = 0;
  Status health = Status::OK();
};

RunOutcome RunClient(const Script& script, JobConfig config,
                     const RunPlan& plan = {}) {
  ManualClock* clock = nullptr;
  {
    // The config's clock is always a ManualClock in these tests.
    clock = static_cast<ManualClock*>(config.job.clock);
  }
  RunOutcome outcome;
  auto created = astream::Client::Create(std::move(config));
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  if (!created.ok()) return outcome;
  std::unique_ptr<astream::Client> client = std::move(created).value();
  EXPECT_TRUE(client->Start().ok());
  std::mutex mutex;
  client->SetResultCallback([&](QueryId id, const spe::Record& record) {
    std::lock_guard<std::mutex> lock(mutex);
    AddToMultiset(&outcome.outputs[id], record.event_time, record.row);
  });
  std::vector<QueryId> ids;
  for (size_t i = 0; i < script.steps.size(); ++i) {
    const Script::Step& step = script.steps[i];
    clock->SetMs(step.time);
    const int idx = static_cast<int>(i);
    for (int kill : plan.kill_at) {
      if (kill == idx) {
        EXPECT_TRUE(client->router()
                        ->KillShard(plan.kill_shard,
                                    Status::Internal("injected shard crash"))
                        .ok());
      }
    }
    if (plan.split_at == idx) {
      const Status s = client->SplitShard(plan.split_shard);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    if (plan.move_at == idx) {
      const Status s = client->MoveShard(plan.move_shard);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    switch (step.what) {
      case Script::Step::kPushA:
        client->Push(StreamId::kA, step.time, step.row);
        break;
      case Script::Step::kPushB:
        client->Push(StreamId::kB, step.time, step.row);
        break;
      case Script::Step::kWatermark:
        client->PushWatermark(step.time);
        break;
      case Script::Step::kSubmit: {
        auto id = client->Submit(step.desc);
        EXPECT_TRUE(id.ok()) << id.status().ToString();
        if (!id.ok()) return outcome;
        ids.push_back(*id);
        client->Pump(true);
        break;
      }
      case Script::Step::kCancel: {
        const Status s = client->Cancel(ids[step.cancel_index]);
        EXPECT_TRUE(s.ok()) << s.ToString();
        client->Pump(true);
        break;
      }
      case Script::Step::kCheckpoint: {
        const Status s = client->Checkpoint();
        EXPECT_TRUE(s.ok()) << s.ToString();
        break;
      }
    }
  }
  outcome.health = client->Health();
  EXPECT_TRUE(client->FinishAndWait().ok());
  outcome.final_shards = client->num_shards();
  outcome.reshard_pause_ms = client->last_reshard_pause_ms();
  for (int s = 0; s < client->router()->num_shards(); ++s) {
    auto* supervised = client->router()->shard(s)->supervised();
    if (supervised != nullptr) outcome.recoveries += supervised->recoveries();
  }
  return outcome;
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// --- Shard-count equivalence: inline (deterministic) router. -------------

class ShardCountEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardCountEquivalenceTest, MergedOutputsMatchSingleJobReference) {
  const Script script = MakeScript();
  ASSERT_GE(script.num_submits, 7);
  ASSERT_GE(script.num_cancels, 2);
  const auto reference = RunReference(script);
  ASSERT_FALSE(reference.empty());

  ManualClock clock;
  JobConfig config = BaseConfig(&clock);
  config.shards = GetParam();
  const RunOutcome run = RunClient(script, std::move(config));

  EXPECT_TRUE(run.health.ok()) << run.health.ToString();
  EXPECT_EQ(run.final_shards, GetParam());
  EXPECT_EQ(reference.size(), run.outputs.size());
  EXPECT_EQ(reference, run.outputs);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountEquivalenceTest,
                         ::testing::Values(1, 2, 4));

// --- Threaded router: per-shard SPSC ingress rings + pump threads. -------

TEST(ShardEquivalenceTest, ThreadedRouterMatchesReference) {
  const Script script = MakeScript();
  const auto reference = RunReference(script);

  ManualClock clock;
  JobConfig config = BaseConfig(&clock);
  config.shards = 4;
  config.shard_threads = true;
  const RunOutcome run = RunClient(script, std::move(config));

  EXPECT_TRUE(run.health.ok()) << run.health.ToString();
  EXPECT_EQ(reference, run.outputs);
}

// --- Live resharding. ----------------------------------------------------

// A split mid-run through the durable hand-off path: shard 0 drains to a
// run-file checkpoint, both halves restore the full state, and the
// ownership filter keeps the merged output byte-identical.
TEST(ShardEquivalenceTest, LiveSplitWithDurableHandoffMatchesReference) {
  const Script script = MakeScript();
  const auto reference = RunReference(script);

  ManualClock clock;
  JobConfig config = BaseConfig(&clock);
  config.shards = 2;
  config.supervised = true;
  config.state_dir = FreshDir("astream_shard_split_test");
  config.supervisor.backoff_initial_ms = 1;
  config.supervisor.backoff_max_ms = 8;
  config.pin_clock = [&clock](TimestampMs ms) { clock.SetMs(ms); };
  RunPlan plan;
  plan.split_shard = 0;
  plan.split_at = static_cast<int>(script.steps.size()) / 2;
  const RunOutcome run = RunClient(script, std::move(config), plan);

  EXPECT_TRUE(run.health.ok()) << run.health.ToString();
  EXPECT_EQ(run.final_shards, 3);
  EXPECT_GE(run.reshard_pause_ms, 0);
  EXPECT_EQ(reference, run.outputs);
}

// A move mid-run through the in-memory hand-off path (plain shards): the
// shard is drained, rebuilt at a new generation from its checkpoint, and
// the run continues unchanged.
TEST(ShardEquivalenceTest, LiveMoveMatchesReference) {
  const Script script = MakeScript();
  const auto reference = RunReference(script);

  ManualClock clock;
  JobConfig config = BaseConfig(&clock);
  config.shards = 2;
  RunPlan plan;
  plan.move_shard = 1;
  plan.move_at = static_cast<int>(script.steps.size()) / 3;
  const RunOutcome run = RunClient(script, std::move(config), plan);

  EXPECT_TRUE(run.health.ok()) << run.health.ToString();
  EXPECT_EQ(run.final_shards, 2);
  EXPECT_GE(run.reshard_pause_ms, 0);
  EXPECT_EQ(reference, run.outputs);
}

// --- Chaos: kill one shard mid-run, exactly-once still holds. ------------

class ShardKillChaosTest : public ::testing::TestWithParam<uint64_t> {};

// Supervised threaded-engine shards behind the inline router: shard 1 is
// killed at three seed-shifted points; each kill is recovered by replay
// from the durable checkpoint + source log, and the merged output is
// still byte-identical to the fault-free single-job sync reference.
TEST_P(ShardKillChaosTest, KilledShardRecoversExactlyOnce) {
  const uint64_t seed = GetParam();
  const Script script = MakeScript();
  const auto reference = RunReference(script);

  ManualClock clock;
  JobConfig config = BaseConfig(&clock);
  config.shards = 2;
  config.job.threaded = true;  // kills require an async engine
  config.supervised = true;
  config.state_dir =
      FreshDir("astream_shard_kill_test_" + std::to_string(seed));
  config.supervisor.backoff_initial_ms = 1;
  config.supervisor.backoff_max_ms = 8;
  config.pin_clock = [&clock](TimestampMs ms) { clock.SetMs(ms); };
  RunPlan plan;
  plan.kill_shard = 1;
  const int shift = static_cast<int>(seed) * 37;
  plan.kill_at = {120 + shift, 320 + shift, 520 + shift};
  const RunOutcome run = RunClient(script, std::move(config), plan);

  EXPECT_TRUE(run.health.ok()) << run.health.ToString();
  EXPECT_GE(run.recoveries, 3);
  EXPECT_EQ(reference.size(), run.outputs.size());
  EXPECT_EQ(reference, run.outputs);
}

// The full stack at once — threaded router (SPSC ingress + pump threads),
// threaded engines, supervised shards, durable state — with shard 1
// killed right before checkpoint barriers, and a live split later in the
// run. Output must still match the sync reference byte-for-byte.
TEST_P(ShardKillChaosTest, FullStackKillAndSplitExactlyOnce) {
  const uint64_t seed = GetParam();
  const Script script = MakeScript();
  const auto reference = RunReference(script);

  // Kill at checkpoint steps: the kill quiesces all rings first, so the
  // immediately following checkpoint fan-out performs the recovery on the
  // control thread, keeping wall stamps deterministic even with pump
  // threads running.
  std::vector<int> checkpoint_steps;
  for (size_t i = 0; i < script.steps.size(); ++i) {
    if (script.steps[i].what == Script::Step::kCheckpoint) {
      checkpoint_steps.push_back(static_cast<int>(i));
    }
  }
  ASSERT_GE(checkpoint_steps.size(), 4u);

  ManualClock clock;
  JobConfig config = BaseConfig(&clock);
  config.shards = 2;
  config.shard_threads = true;
  config.job.threaded = true;
  config.supervised = true;
  config.state_dir =
      FreshDir("astream_shard_fullstack_test_" + std::to_string(seed));
  config.supervisor.backoff_initial_ms = 1;
  config.supervisor.backoff_max_ms = 8;
  config.pin_clock = [&clock](TimestampMs ms) { clock.SetMs(ms); };
  RunPlan plan;
  plan.kill_shard = 1;
  plan.kill_at = {checkpoint_steps[seed % 2],
                  checkpoint_steps[2 + seed % 2]};
  plan.split_shard = 0;
  plan.split_at = checkpoint_steps[3] + 1;
  const RunOutcome run = RunClient(script, std::move(config), plan);

  EXPECT_TRUE(run.health.ok()) << run.health.ToString();
  EXPECT_GE(run.recoveries, 2);
  EXPECT_EQ(run.final_shards, 3);
  EXPECT_EQ(reference.size(), run.outputs.size());
  EXPECT_EQ(reference, run.outputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardKillChaosTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace astream::shard
