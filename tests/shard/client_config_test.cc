#include "shard/client.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/job_config.h"
#include "spe/state.h"

namespace astream {
namespace {

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryId;
using core::QueryKind;
using spe::Row;

JobConfig ValidBase() {
  JobConfig config;
  config.job.topology = AStreamJob::TopologyKind::kJoin;
  config.job.session.batch_size = 1;
  config.slots = 8;
  return config;
}

void ExpectRejected(JobConfig config, const std::string& needle) {
  const Result<JobConfig> validated = JobConfig::Validated(std::move(config));
  ASSERT_FALSE(validated.ok()) << "expected rejection mentioning " << needle;
  EXPECT_NE(validated.status().ToString().find(needle), std::string::npos)
      << validated.status().ToString();
}

TEST(JobConfigTest, ValidConfigPasses) {
  EXPECT_TRUE(JobConfig::Validated(ValidBase()).ok());
}

TEST(JobConfigTest, RejectsEveryInvalidKnob) {
  {
    JobConfig c = ValidBase();
    c.shards = 0;
    ExpectRejected(std::move(c), "shards");
  }
  {
    JobConfig c = ValidBase();
    c.shards = 4;
    c.slots = 3;
    ExpectRejected(std::move(c), "slots");
  }
  {
    JobConfig c = ValidBase();
    c.shard_threads = true;
    c.ingress_capacity = 100;  // not a power of two
    ExpectRejected(std::move(c), "ingress_capacity");
  }
  {
    JobConfig c = ValidBase();
    c.state_dir = "/tmp/anywhere";  // durable dir without supervision
    ExpectRejected(std::move(c), "supervised");
  }
  {
    spe::CheckpointStore store;
    JobConfig c = ValidBase();
    c.supervised = true;
    c.job.checkpoint_store = &store;
    ExpectRejected(std::move(c), "checkpoint_store");
  }
  {
    JobConfig c = ValidBase();
    c.supervisor.max_restart_attempts = 0;
    ExpectRejected(std::move(c), "max_restart_attempts");
  }
  {
    JobConfig c = ValidBase();
    c.job.parallelism = 0;
    ExpectRejected(std::move(c), "parallelism");
  }
  {
    JobConfig c = ValidBase();
    c.job.batch_size = 0;
    ExpectRejected(std::move(c), "batch_size");
  }
  {
    JobConfig c = ValidBase();
    c.job.max_join_stages = 0;
    ExpectRejected(std::move(c), "max_join_stages");
  }
  {
    JobConfig c = ValidBase();
    c.job.session.batch_size = 0;
    ExpectRejected(std::move(c), "session.batch_size");
  }
  {
    JobConfig c = ValidBase();
    c.job.checkpoint_retention = 0;
    ExpectRejected(std::move(c), "checkpoint_retention");
  }
  {
    JobConfig c = ValidBase();
    c.job.first_checkpoint_id = 0;
    ExpectRejected(std::move(c), "first_checkpoint_id");
  }
}

TEST(JobConfigTest, SharedValidatorGuardsAStreamJobCreate) {
  // AStreamJob::Create funnels through the same validator, so engine
  // knobs that used to slip through (e.g. batch_size = 0) now fail fast.
  AStreamJob::Options options;
  options.batch_size = 0;
  EXPECT_FALSE(AStreamJob::Create(options).ok());
  options.batch_size = 1;
  options.session.batch_size = 0;
  EXPECT_FALSE(AStreamJob::Create(options).ok());
}

TEST(JobConfigTest, BuilderSetsEveryKnob) {
  ManualClock clock;
  Result<JobConfig> built =
      JobConfigBuilder(AStreamJob::TopologyKind::kJoin)
          .Parallelism(2)
          .Threaded(true)
          .BatchSize(16)
          .SessionBatch(5, 250)
          .MaxJoinStages(2)
          .Clock(&clock)
          .MemoryBudget(1 << 20)
          .Shards(4)
          .Slots(16)
          .ShardThreads(true)
          .IngressCapacity(512)
          .Supervised(true)
          .StateDir("/tmp/astream_builder_test")
          .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const JobConfig& c = *built;
  EXPECT_EQ(c.job.topology, AStreamJob::TopologyKind::kJoin);
  EXPECT_EQ(c.job.parallelism, 2);
  EXPECT_TRUE(c.job.threaded);
  EXPECT_EQ(c.job.batch_size, 16u);
  EXPECT_EQ(c.job.session.batch_size, 5u);
  EXPECT_EQ(c.job.session.max_timeout_ms, 250);
  EXPECT_EQ(c.job.max_join_stages, 2);
  EXPECT_EQ(c.job.clock, &clock);
  EXPECT_EQ(c.job.storage.memory_budget_bytes, 1 << 20);
  EXPECT_EQ(c.shards, 4);
  EXPECT_EQ(c.slots, 16);
  EXPECT_TRUE(c.shard_threads);
  EXPECT_EQ(c.ingress_capacity, 512u);
  EXPECT_TRUE(c.supervised);
  EXPECT_EQ(c.state_dir, "/tmp/astream_builder_test");
}

TEST(JobConfigTest, BuilderRejectsEagerly) {
  EXPECT_FALSE(JobConfigBuilder().Shards(0).Build().ok());
  EXPECT_FALSE(JobConfigBuilder().Shards(8).Slots(4).Build().ok());
}

TEST(ClientTest, CreateRejectsInvalidConfig) {
  JobConfig config = ValidBase();
  config.shards = -1;
  EXPECT_FALSE(Client::Create(std::move(config)).ok());
}

using Outputs = std::map<QueryId, std::multiset<std::pair<spe::Value, spe::Value>>>;

// Drives a tiny selection workload through the client, using the generic
// Push surface or the deprecated PushA/PushB shims.
Outputs RunSmall(ManualClock* clock, int shards, bool use_shims) {
  JobConfig config = ValidBase();
  config.job.clock = clock;
  config.shards = shards;
  auto client = std::move(Client::Create(std::move(config))).value();
  EXPECT_TRUE(client->Start().ok());
  Outputs outputs;
  client->SetResultCallback([&](QueryId id, const spe::Record& r) {
    outputs[id].insert({r.row.At(0), r.row.At(1)});
  });
  QueryDescriptor d;
  d.kind = QueryKind::kSelection;
  d.select_a = {Predicate{1, CmpOp::kGt, 10}};
  auto id = client->Submit(d);
  EXPECT_TRUE(id.ok());
  client->Pump(true);
  for (spe::Value key = 0; key < 24; ++key) {
    clock->SetMs(5 + key);
    const spe::Value value = key * 7 % 50;
    if (use_shims) {
      client->PushA(5 + key, Row{key, value});
      client->PushB(5 + key, Row{key, value + 1});
    } else {
      client->Push(StreamId::kA, 5 + key, Row{key, value});
      client->Push(StreamId::kB, 5 + key, Row{key, value + 1});
    }
  }
  EXPECT_TRUE(client->FinishAndWait().ok());
  return outputs;
}

TEST(ClientTest, PushShimsAreEquivalentToGenericPush) {
  ManualClock clock_a;
  ManualClock clock_b;
  const Outputs generic = RunSmall(&clock_a, 2, /*use_shims=*/false);
  const Outputs shimmed = RunSmall(&clock_b, 2, /*use_shims=*/true);
  EXPECT_FALSE(generic.empty());
  EXPECT_EQ(generic, shimmed);
}

TEST(ClientTest, MergedMetricsSumAcrossShards) {
  ManualClock clock;
  JobConfig config = ValidBase();
  config.job.clock = &clock;
  config.shards = 2;
  auto client = std::move(Client::Create(std::move(config))).value();
  ASSERT_TRUE(client->Start().ok());
  int delivered = 0;
  client->SetResultCallback(
      [&](QueryId, const spe::Record&) { ++delivered; });
  QueryDescriptor d;
  d.kind = QueryKind::kSelection;
  d.select_a = {Predicate{1, CmpOp::kGt, -1}};
  ASSERT_TRUE(client->Submit(d).ok());
  client->Pump(true);
  for (spe::Value key = 0; key < 40; ++key) {
    clock.SetMs(5 + key);
    client->Push(StreamId::kA, 5 + key, Row{key, key});
  }
  ASSERT_TRUE(client->FinishAndWait().ok());
  EXPECT_EQ(delivered, 40);

  // The merged snapshot is the per-shard sum, key by key.
  const auto merged = client->MetricsSnapshot();
  const auto s0 = client->router()->shard(0)->MetricsSnapshot();
  const auto s1 = client->router()->shard(1)->MetricsSnapshot();
  ASSERT_FALSE(merged.counters.empty());
  for (const auto& [name, value] : merged.counters) {
    int64_t sum = 0;
    if (auto it = s0.counters.find(name); it != s0.counters.end()) {
      sum += it->second;
    }
    if (auto it = s1.counters.find(name); it != s1.counters.end()) {
      sum += it->second;
    }
    EXPECT_EQ(value, sum) << "counter " << name;
  }
  for (const auto& [name, value] : merged.histograms) {
    int64_t count = 0;
    if (auto it = s0.histograms.find(name); it != s0.histograms.end()) {
      count += it->second.count;
    }
    if (auto it = s1.histograms.find(name); it != s1.histograms.end()) {
      count += it->second.count;
    }
    EXPECT_EQ(value.count, count) << "histogram " << name;
  }

  // Router-level QoS saw every delivered record exactly once.
  const auto qos = client->QosSnapshot();
  EXPECT_EQ(qos.total_outputs, 40);
}

}  // namespace
}  // namespace astream
