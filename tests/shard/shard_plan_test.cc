#include "shard/shard_plan.h"

#include <set>

#include "gtest/gtest.h"

namespace astream::shard {
namespace {

TEST(ShardPlanTest, UniformCoversEveryShardAndSlot) {
  const ShardPlan plan = ShardPlan::Uniform(4, 16);
  EXPECT_EQ(plan.num_slots(), 16);
  EXPECT_EQ(plan.num_shards(), 4);
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(plan.SlotsOwnedBy(shard).size(), 4u);
  }
}

TEST(ShardPlanTest, SlotOfKeyIsDeterministicAndStable) {
  for (spe::Value key = -50; key < 50; ++key) {
    const int slot = ShardPlan::SlotOfKey(key, 64);
    EXPECT_EQ(slot, ShardPlan::SlotOfKey(key, 64));
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 64);
  }
}

TEST(ShardPlanTest, OwnerOfKeyFollowsSlotTable) {
  const ShardPlan plan = ShardPlan::Uniform(3, 9);
  for (spe::Value key = 0; key < 100; ++key) {
    const int slot = ShardPlan::SlotOfKey(key, plan.num_slots());
    EXPECT_EQ(plan.OwnerOfKey(key), plan.owner[static_cast<size_t>(slot)]);
  }
}

TEST(ShardPlanTest, MovedTransfersAllSlotsAndBumpsVersion) {
  const ShardPlan plan = ShardPlan::Uniform(2, 8);
  const ShardPlan moved = plan.Moved(1, 2);
  EXPECT_EQ(moved.version, plan.version + 1);
  EXPECT_TRUE(moved.SlotsOwnedBy(1).empty());
  EXPECT_EQ(moved.SlotsOwnedBy(2), plan.SlotsOwnedBy(1));
  EXPECT_EQ(moved.SlotsOwnedBy(0), plan.SlotsOwnedBy(0));
  EXPECT_EQ(moved.num_shards(), 3);
}

TEST(ShardPlanTest, SplitHalvesOwnershipNonEmpty) {
  const ShardPlan plan = ShardPlan::Uniform(2, 8);  // shard 0 owns 4 slots
  const ShardPlan split = plan.Split(0, 2);
  EXPECT_EQ(split.version, plan.version + 1);
  const auto left = split.SlotsOwnedBy(0);
  const auto right = split.SlotsOwnedBy(2);
  EXPECT_FALSE(left.empty());
  EXPECT_FALSE(right.empty());
  EXPECT_EQ(left.size() + right.size(), plan.SlotsOwnedBy(0).size());
  // Shard 1 is untouched.
  EXPECT_EQ(split.SlotsOwnedBy(1), plan.SlotsOwnedBy(1));
  // The two halves partition the original slots exactly.
  std::set<int> merged(left.begin(), left.end());
  merged.insert(right.begin(), right.end());
  const auto original = plan.SlotsOwnedBy(0);
  EXPECT_EQ(merged, std::set<int>(original.begin(), original.end()));
}

TEST(ShardPlanTest, SplitOfTwoSlotOwnerLeavesOneEach) {
  const ShardPlan plan = ShardPlan::Uniform(4, 8);  // 2 slots per shard
  const ShardPlan split = plan.Split(3, 4);
  EXPECT_EQ(split.SlotsOwnedBy(3).size(), 1u);
  EXPECT_EQ(split.SlotsOwnedBy(4).size(), 1u);
  EXPECT_EQ(split.num_shards(), 5);
}

}  // namespace
}  // namespace astream::shard
