#include <gtest/gtest.h>

#include <set>

#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/scenario.h"

namespace astream::workload {
namespace {

TEST(DataGeneratorTest, KeysRoundRobin) {
  DataGenerator::Config cfg;
  cfg.key_max = 5;
  DataGenerator gen(cfg, 1);
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 5; ++k) {
      EXPECT_EQ(gen.Next().key(), k);
    }
  }
}

TEST(DataGeneratorTest, RowShapeAndFieldRange) {
  DataGenerator::Config cfg;
  cfg.num_fields = 5;
  cfg.fields_max = 100;
  DataGenerator gen(cfg, 2);
  for (int i = 0; i < 200; ++i) {
    const spe::Row row = gen.Next();
    ASSERT_EQ(row.NumColumns(), 6u);  // key + 5 fields
    for (int f = 1; f <= 5; ++f) {
      EXPECT_GE(row.At(f), 0);
      EXPECT_LT(row.At(f), 100);
    }
  }
}

TEST(DataGeneratorTest, DeterministicPerSeed) {
  DataGenerator a({}, 7);
  DataGenerator b({}, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(QueryGeneratorTest, PredicateWithinConfiguredBounds) {
  QueryGenerator::Config cfg;
  cfg.num_fields = 3;
  cfg.fields_max = 50;
  QueryGenerator gen(cfg, 3);
  for (int i = 0; i < 100; ++i) {
    const core::Predicate p = gen.RandomPredicate();
    EXPECT_GE(p.column, 1);
    EXPECT_LE(p.column, 3);
    EXPECT_GE(p.constant, 0);
    EXPECT_LT(p.constant, 50);
  }
}

TEST(QueryGeneratorTest, WindowRangesRespectConfig) {
  QueryGenerator::Config cfg;
  cfg.window_min = 10;
  cfg.window_max = 40;
  QueryGenerator gen(cfg, 4);
  for (int i = 0; i < 100; ++i) {
    const spe::WindowSpec w = gen.RandomTimeWindow();
    EXPECT_GE(w.length, 10);
    EXPECT_LE(w.length, 40);
    EXPECT_GE(w.slide, 1);
    EXPECT_LE(w.slide, w.length);
  }
}

TEST(QueryGeneratorTest, SlideFloorApplies) {
  QueryGenerator::Config cfg;
  cfg.window_min = 100;
  cfg.window_max = 100;
  cfg.slide_min_frac = 0.5;
  QueryGenerator gen(cfg, 5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(gen.RandomTimeWindow().slide, 50);
  }
}

TEST(QueryGeneratorTest, KindsMatchTemplates) {
  QueryGenerator gen({}, 6);
  const auto sel = gen.Selection();
  EXPECT_EQ(sel.kind, core::QueryKind::kSelection);
  EXPECT_FALSE(sel.select_a.empty());

  const auto agg = gen.Aggregation();
  EXPECT_EQ(agg.kind, core::QueryKind::kAggregation);
  EXPECT_EQ(agg.agg.kind, spe::AggKind::kSum);  // Fig. 8: SUM(A.FIELD1)
  EXPECT_EQ(agg.agg.column, 1);

  const auto join = gen.Join();
  EXPECT_EQ(join.kind, core::QueryKind::kJoin);
  EXPECT_FALSE(join.select_b.empty());  // both sides filtered (Fig. 7)

  const auto complex = gen.Complex();
  EXPECT_EQ(complex.kind, core::QueryKind::kComplex);
  EXPECT_GE(complex.join_depth, 1);
  EXPECT_LE(complex.join_depth, core::kMaxJoinDepth);
}

TEST(QueryGeneratorTest, SessionProbability) {
  QueryGenerator::Config cfg;
  cfg.session_probability = 1.0;
  QueryGenerator gen(cfg, 8);
  const auto agg = gen.Aggregation();
  EXPECT_EQ(agg.window.type, spe::WindowType::kSession);
  EXPECT_GT(agg.window.gap, 0);
}

TEST(QueryGeneratorTest, WindowMixDrawsFactorableSpecs) {
  QueryGenerator::Config cfg;
  cfg.session_probability = 0.0;
  cfg.window_mix = 6;
  cfg.window_mix_slide = 500;
  QueryGenerator gen(cfg, 11);
  std::set<TimestampMs> lengths;
  for (int i = 0; i < 200; ++i) {
    const auto agg = gen.Aggregation();
    ASSERT_EQ(agg.window.type, spe::WindowType::kSliding);
    // Every spec rides the shared slide base: composable onto one
    // GCD-derived factor lattice (the heterogeneous-sharing workload).
    EXPECT_EQ(agg.window.slide, 500);
    EXPECT_EQ(agg.window.length % 500, 0);
    EXPECT_LE(agg.window.length, 6 * 500);
    lengths.insert(agg.window.length);
  }
  EXPECT_GT(lengths.size(), 3u);  // actually heterogeneous
}

TEST(Sc1ScenarioTest, RampsToTargetThenStops) {
  Sc1Scenario sc(/*rate_per_sec=*/10, /*max_parallel=*/5);
  size_t created = 0;
  for (TimestampMs t = 0; t <= 2000; t += 100) {
    const auto a = sc.Tick(t, created);
    EXPECT_TRUE(a.delete_ranks.empty());  // SC1 never deletes
    created += a.create;
  }
  EXPECT_EQ(created, 5u);
}

TEST(Sc2ScenarioTest, ChurnsBatchesPeriodically) {
  Sc2Scenario sc(/*batch=*/3, /*period_ms=*/100);
  size_t active = 0;
  size_t total_created = 0;
  size_t total_deleted = 0;
  for (TimestampMs t = 0; t <= 500; t += 50) {
    const auto a = sc.Tick(t, active);
    total_deleted += a.delete_ranks.size();
    active -= a.delete_ranks.size();
    active += a.create;
    total_created += a.create;
  }
  EXPECT_EQ(active, 3u);  // steady state: one batch alive
  EXPECT_GE(total_created, 15u);
  EXPECT_EQ(total_deleted, total_created - 3);
}

TEST(ComplexTimelineScenarioTest, FollowsPaperPhases) {
  ComplexTimelineScenario sc(/*duration_ms=*/10'000, /*scale=*/1.0);
  size_t active = 0;
  std::vector<size_t> trajectory;
  for (TimestampMs t = 0; t <= 10'000; t += 100) {
    const auto a = sc.Tick(t, active);
    active -= a.delete_ranks.size();
    active += a.create;
    trajectory.push_back(active);
  }
  // Starts empty, hits the 60-level plateau, drains toward 10, climbs to
  // ~70, then fluctuates.
  EXPECT_EQ(trajectory.front(), 0u);
  EXPECT_EQ(*std::max_element(trajectory.begin(), trajectory.end()), 70u);
  const size_t mid = trajectory[54];  // ~54% through: near the trough
  EXPECT_LE(mid, 20u);
}

}  // namespace
}  // namespace astream::workload
