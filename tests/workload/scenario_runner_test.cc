// Adversarial-tenant scenarios (DESIGN.md §14) as tier-1 tests: every
// preset runs healthy, the runs are deterministic, and the whale mix
// shows the isolation effect (baseline violates the minnow work budget,
// admission + de-sharing restores it) as a relative assertion.

#include <gtest/gtest.h>

#include "workload/scenario_runner.h"

namespace astream::workload {
namespace {

class ScenarioRunnerTest
    : public ::testing::TestWithParam<ScenarioSpec::Mix> {};

TEST_P(ScenarioRunnerTest, PresetRunsHealthy) {
  const ScenarioSpec spec = ScenarioRunner::Preset(GetParam(), 11);
  auto report = ScenarioRunner(spec).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->error;
  EXPECT_GT(report->rows_pushed, 0);
  EXPECT_GT(report->outputs, 0);
}

TEST_P(ScenarioRunnerTest, PresetRunsHealthyWithIsolation) {
  ScenarioSpec spec = ScenarioRunner::Preset(GetParam(), 13);
  ScenarioRunner::EnableIsolation(&spec);
  auto report = ScenarioRunner(spec).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->error;
  EXPECT_GT(report->outputs, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ScenarioRunnerTest,
    ::testing::Values(ScenarioSpec::Mix::kChurnStorm,
                      ScenarioSpec::Mix::kZipfSkew,
                      ScenarioSpec::Mix::kWhaleMinnows,
                      ScenarioSpec::Mix::kBurstyOoo),
    [](const auto& info) {
      std::string name = ScenarioRunner::MixName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScenarioSuiteTest, RunsAreDeterministic) {
  const ScenarioSpec spec =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kWhaleMinnows, 17);
  auto a = ScenarioRunner(spec).Run();
  auto b = ScenarioRunner(spec).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tick_work, b->tick_work);
  EXPECT_EQ(a->outputs, b->outputs);
  EXPECT_EQ(a->rows_pushed, b->rows_pushed);
  EXPECT_EQ(a->outputs_per_query, b->outputs_per_query);
}

TEST(ScenarioSuiteTest, IsolationMeetsMinnowBudgetTheBaselineViolates) {
  const ScenarioSpec base =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kWhaleMinnows, 19);
  auto baseline = ScenarioRunner(base).Run();
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->ok) << baseline->error;

  ScenarioSpec isolated = base;
  ScenarioRunner::EnableIsolation(&isolated);
  // The headline claim, as a relative assertion (the suite bench pins the
  // exact budget): with admission + de-sharing on, the whale leaves the
  // shared plan and the minnows' steady-state p99 work falls below the
  // budget the baseline violates.
  isolated.tick_work_p99_budget = baseline->p99_tick_work * 3 / 5;
  auto iso = ScenarioRunner(isolated).Run();
  ASSERT_TRUE(iso.ok());
  ASSERT_TRUE(iso->ok) << iso->error;

  EXPECT_GT(baseline->p99_tick_work, isolated.tick_work_p99_budget);
  EXPECT_TRUE(iso->whale_ejected);
  EXPECT_EQ(iso->desharings, 1);
  EXPECT_GE(iso->eject_tick, 0);
  EXPECT_TRUE(iso->slo_met)
      << "steady-state p99 " << iso->p99_tick_work << " vs budget "
      << isolated.tick_work_p99_budget;
  // De-sharing must not lose or duplicate output: the same windows are
  // emitted whether or not the whale migrates.
  EXPECT_EQ(iso->outputs, baseline->outputs);
  EXPECT_EQ(iso->outputs_per_query, baseline->outputs_per_query);
}

TEST(ScenarioSuiteTest, ChurnStormQueuesAndRejects) {
  ScenarioSpec spec =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kChurnStorm, 23);
  ScenarioRunner::EnableIsolation(&spec);
  auto report = ScenarioRunner(spec).Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok) << report->error;
  EXPECT_GT(report->admission_queued, 0);
  EXPECT_GT(report->admission_rejected, 0);
  EXPECT_GT(report->outputs, 0);
}

TEST(ScenarioSuiteTest, BurstyOooAccountsLateRows) {
  const ScenarioSpec spec =
      ScenarioRunner::Preset(ScenarioSpec::Mix::kBurstyOoo, 29);
  auto report = ScenarioRunner(spec).Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok) << report->error;
  EXPECT_GT(report->late_drops, 0);
  EXPECT_GT(report->outputs, 0);
}

}  // namespace
}  // namespace astream::workload
