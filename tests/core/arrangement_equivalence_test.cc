// Cross-window state sharing equivalence (DESIGN.md §12): the arrangement
// layer + factor-window rewriting must be invisible in the results. A
// heterogeneous-window fleet (many distinct specs over one stream, with
// churn) is run with sharing on, sharing off (the per-query-store
// reference mode), under a spill budget, across a checkpoint/restore
// crash, and threaded — every leg must produce per-query outputs
// byte-identical to the sync reference evaluator and to each other.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "core/astream.h"
#include "harness/reference.h"
#include "tests/core/e2e_harness.h"

namespace astream::core {
namespace {

using harness::RowMultiset;
using spe::Row;
using Kind = AStreamJob::TopologyKind;
using OptionsMutator = std::function<void(AStreamJob::Options*)>;

QueryDescriptor AggQuery(spe::WindowSpec window,
                         spe::AggKind agg = spe::AggKind::kSum) {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.window = window;
  d.agg = {agg, 1};
  return d;
}

QueryDescriptor JoinQuery(spe::WindowSpec window) {
  QueryDescriptor d;
  d.kind = QueryKind::kJoin;
  d.window = window;
  return d;
}

OptionsMutator Sharing(bool on) {
  return [on](AStreamJob::Options* o) { o->share_arrangements = on; };
}

/// The heterogeneous aggregation fleet: five distinct (length, slide)
/// specs submitted in ONE batch (same origin → composable specs share a
/// lattice), four composable from the period-10 lattice, one non-divisor
/// fallback — plus mid-stream churn. Every run verifies against the
/// offline reference; the returned outputs let callers also compare runs
/// against each other byte for byte.
std::map<QueryId, RowMultiset> RunHeterogeneousAggFleet(
    const OptionsMutator& mutate, AStreamJob::OperatorStats* stats = nullptr) {
  E2EHarness h(Kind::kAggregation, 1, StoreMode::kGrouped, true, mutate);
  h.Submit(AggQuery(spe::WindowSpec::Sliding(60, 10)), 0);
  h.Submit(AggQuery(spe::WindowSpec::Sliding(30, 10), spe::AggKind::kMax), 0);
  h.Submit(AggQuery(spe::WindowSpec::Sliding(40, 20), spe::AggKind::kAvg), 0);
  const QueryId doomed = h.Submit(AggQuery(spe::WindowSpec::Sliding(7, 3)), 0);
  h.Submit(AggQuery(spe::WindowSpec::Tumbling(20), spe::AggKind::kCount), 0);
  h.Flush(0);
  for (int i = 0; i < 100; ++i) {
    h.PushA(2 + i * 2, Row{i % 5, i});  // up to t = 200
  }
  h.Watermark(150);
  h.Delete(doomed, 210);  // churn: the fallback query drains mid-stream
  h.Create(AggQuery(spe::WindowSpec::Sliding(50, 10)), 220);  // late joiner
  for (int i = 0; i < 100; ++i) {
    h.PushA(222 + i * 2, Row{i % 5, i + 100});
  }
  h.Watermark(500);
  if (stats != nullptr) *stats = h.job()->CollectStats();
  h.FinishAndVerify();
  return h.outputs();
}

TEST(ArrangementEquivalenceTest, HeterogeneousFleetSharingOnOffIdentical) {
  AStreamJob::OperatorStats on_stats;
  const auto on = RunHeterogeneousAggFleet(Sharing(true), &on_stats);
  // The rewrite actually engaged: later specs rode the first lattice, and
  // trigger composition hit the memo.
  EXPECT_GT(on_stats.factor_rewrites, 0);
  EXPECT_GT(on_stats.factor_reuses, 0);
  EXPECT_GT(on_stats.factor_fallbacks, 0);  // the 7s/3s spec
  EXPECT_GT(on_stats.arrange_memo_hits, 0);

  AStreamJob::OperatorStats off_stats;
  const auto off = RunHeterogeneousAggFleet(Sharing(false), &off_stats);
  EXPECT_EQ(off_stats.factor_rewrites, 0);  // rewrite disabled end to end
  EXPECT_EQ(on, off);
  ASSERT_FALSE(on.empty());
}

/// Join fleet: two windows over the same pair of streams sharing one
/// lattice, plus churn. `cols` widens the tuples for the spill leg.
std::map<QueryId, RowMultiset> RunJoinFleet(const OptionsMutator& mutate,
                                            int cols = 2,
                                            int64_t* spills = nullptr) {
  E2EHarness h(Kind::kJoin, 1, StoreMode::kGrouped, true, mutate);
  h.Submit(JoinQuery(spe::WindowSpec::Sliding(60, 20)), 0);
  const QueryId doomed =
      h.Submit(JoinQuery(spe::WindowSpec::Sliding(40, 20)), 0);
  h.Flush(0);
  auto make_row = [&](int key, int val) {
    std::vector<spe::Value> values(static_cast<size_t>(cols), val);
    values[0] = key;
    return Row(std::move(values));
  };
  for (int i = 0; i < 80; ++i) {  // up to t ≈ 240
    h.PushA(2 + i * 3, make_row(i % 4, i));
    h.PushB(3 + i * 3, make_row(i % 4, i + 500));
  }
  h.Watermark(150);
  h.Delete(doomed, 250);
  for (int i = 0; i < 40; ++i) {
    h.PushA(260 + i * 3, make_row(i % 4, i));
    h.PushB(261 + i * 3, make_row(i % 4, i + 900));
  }
  h.Watermark(500);
  if (spills != nullptr) {
    const auto snapshot = h.job()->MetricsSnapshot();
    const auto it = snapshot.histograms.find("storage.spill_ms");
    *spills = it == snapshot.histograms.end() ? 0 : it->second.count;
  }
  h.FinishAndVerify();
  return h.outputs();
}

TEST(ArrangementEquivalenceTest, JoinFleetSharingOnOffIdentical) {
  const auto on = RunJoinFleet(Sharing(true));
  const auto off = RunJoinFleet(Sharing(false));
  EXPECT_EQ(on, off);
  ASSERT_FALSE(on.empty());
}

TEST(ArrangementEquivalenceTest, SpillBudgetKeepsOutputsIdentical) {
  // Wide tuples (~2 KiB each) against a small budget force the join
  // arrangement to shed slices mid-run; outputs must not move.
  const int kCols = 256;
  const auto unbudgeted = RunJoinFleet(Sharing(true), kCols);
  int64_t spills = 0;
  const auto budgeted = RunJoinFleet(
      [](AStreamJob::Options* o) {
        o->share_arrangements = true;
        o->storage.memory_budget_bytes = 256 << 10;
      },
      kCols, &spills);
  EXPECT_EQ(unbudgeted, budgeted);
  EXPECT_GT(spills, 0) << "budget never engaged — widen the rows";
}

// --- Checkpoint/restore: arrangements round-trip the run-file format ----

std::map<QueryId, RowMultiset> RunAggWithOptionalCrash(bool crash) {
  ManualClock clock;
  auto make_job = [&clock] {
    AStreamJob::Options options;
    options.topology = Kind::kAggregation;
    options.parallelism = 1;
    options.threaded = false;
    options.clock = &clock;
    options.session.batch_size = 1;
    options.share_arrangements = true;
    return std::move(AStreamJob::Create(options)).value();
  };
  std::map<QueryId, RowMultiset> outputs;
  auto sink = [&outputs](QueryId id, const spe::Record& record) {
    harness::AddToMultiset(&outputs[id], record.event_time, record.row);
  };

  auto job = make_job();
  EXPECT_TRUE(job->Start().ok());
  job->SetResultCallback(sink);
  clock.SetMs(0);
  EXPECT_TRUE(job->Submit(AggQuery(spe::WindowSpec::Sliding(60, 10))).ok());
  EXPECT_TRUE(
      job->Submit(AggQuery(spe::WindowSpec::Sliding(30, 10), spe::AggKind::kMax))
          .ok());
  EXPECT_TRUE(job->Submit(AggQuery(spe::WindowSpec::Sliding(7, 3))).ok());
  job->Pump(true);

  auto push_range = [&](AStreamJob* j, int from, int to) {
    for (int i = from; i < to; ++i) {
      const TimestampMs t = 2 + i * 2;
      clock.SetMs(t);
      j->PushA(t, Row{i % 5, i});
      if (i % 25 == 24) j->PushWatermark(t - 10);
    }
  };
  push_range(job.get(), 0, 100);

  if (crash) {
    const int64_t cp = job->TriggerCheckpoint();
    auto snap = job->checkpoints().Get(cp);
    EXPECT_NE(snap, nullptr);
    EXPECT_TRUE(snap->complete);
    const spe::CheckpointStore::Checkpoint checkpoint = *snap;
    job->Stop();  // crash: post-barrier state is lost

    job = make_job();
    EXPECT_TRUE(job->Start().ok());
    EXPECT_TRUE(job->RestoreFrom(checkpoint).ok());
    job->SetResultCallback(sink);
  }

  push_range(job.get(), 100, 200);
  clock.SetMs(500);
  job->PushWatermark(500);
  EXPECT_TRUE(job->FinishAndWait().ok());
  return outputs;
}

TEST(ArrangementEquivalenceTest, CheckpointRestoreRoundTripsArrangements) {
  const auto uninterrupted = RunAggWithOptionalCrash(false);
  const auto recovered = RunAggWithOptionalCrash(true);
  EXPECT_EQ(uninterrupted, recovered);
  ASSERT_FALSE(uninterrupted.empty());
}

// --- Threaded: the multi-reader cursor path under real concurrency ------
// (Name is the TSan filter anchor: *ThreadedHeterogeneous*.)

std::map<QueryId, RowMultiset> RunThreadedFleet(bool threaded, int par) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = Kind::kAggregation;
  options.parallelism = par;
  options.threaded = threaded;
  options.clock = &clock;
  options.session.batch_size = 1;
  options.share_arrangements = true;
  auto job = std::move(AStreamJob::Create(options)).value();
  EXPECT_TRUE(job->Start().ok());
  std::mutex mutex;
  std::map<QueryId, RowMultiset> outputs;
  job->SetResultCallback([&](QueryId id, const spe::Record& record) {
    std::lock_guard<std::mutex> lock(mutex);
    harness::AddToMultiset(&outputs[id], record.event_time, record.row);
  });
  clock.SetMs(0);
  EXPECT_TRUE(job->Submit(AggQuery(spe::WindowSpec::Sliding(60, 10))).ok());
  EXPECT_TRUE(
      job->Submit(AggQuery(spe::WindowSpec::Sliding(30, 10), spe::AggKind::kMax))
          .ok());
  EXPECT_TRUE(job->Submit(AggQuery(spe::WindowSpec::Sliding(7, 3))).ok());
  job->Pump(true);
  for (int i = 0; i < 300; ++i) {
    const TimestampMs t = 2 + i * 2;
    clock.SetMs(t);
    job->PushA(t, Row{i % 7, i});
    if (i % 40 == 39) job->PushWatermark(t - 10);
  }
  clock.SetMs(700);
  job->PushWatermark(700);
  EXPECT_TRUE(job->FinishAndWait().ok());
  std::lock_guard<std::mutex> lock(mutex);
  return outputs;
}

TEST(ArrangementEquivalenceTest, ThreadedHeterogeneousFleetMatchesSync) {
  const auto sync = RunThreadedFleet(false, 3);
  const auto threaded = RunThreadedFleet(true, 3);
  EXPECT_EQ(sync, threaded);
  ASSERT_FALSE(sync.empty());
}

}  // namespace
}  // namespace astream::core
