#include "core/slicing.h"

#include <gtest/gtest.h>

namespace astream::core {
namespace {

TEST(SliceTrackerTest, InitializesAtFirstCut) {
  SliceTracker t;
  EXPECT_FALSE(t.Initialized());
  t.SetNumSlots(1);
  t.CutAt(100, QuerySet::AllSet(1));
  EXPECT_TRUE(t.Initialized());
  t.AddQuery(0, 100, spe::WindowSpec::Tumbling(10));
  const SliceInfo s = t.SliceFor(105);
  EXPECT_EQ(s.start, 100);
  EXPECT_EQ(s.end, 110);
  EXPECT_EQ(s.index, 0);
}

TEST(SliceTrackerTest, EdgesFromMultipleQueries) {
  SliceTracker t;
  t.SetNumSlots(2);
  t.CutAt(0, QuerySet::AllSet(2));
  t.AddQuery(0, 0, spe::WindowSpec::Tumbling(10));
  t.AddQuery(1, 0, spe::WindowSpec::Tumbling(15));
  // Boundaries: 10 (q0), 15 (q1), 20 (q0), 30 (both), ...
  EXPECT_EQ(t.SliceFor(5).end, 10);
  EXPECT_EQ(t.SliceFor(12).start, 10);
  EXPECT_EQ(t.SliceFor(12).end, 15);
  EXPECT_EQ(t.SliceFor(17).start, 15);
  EXPECT_EQ(t.SliceFor(17).end, 20);
}

TEST(SliceTrackerTest, SlicesInCoverWindowExactly) {
  SliceTracker t;
  t.SetNumSlots(1);
  t.CutAt(0, QuerySet::AllSet(1));
  t.AddQuery(0, 0, spe::WindowSpec::Sliding(10, 5));
  const auto slices = t.SlicesIn(0, 10);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].start, 0);
  EXPECT_EQ(slices[0].end, 5);
  EXPECT_EQ(slices[1].start, 5);
  EXPECT_EQ(slices[1].end, 10);
}

TEST(SliceTrackerTest, ChangelogCutShrinksEmptyTail) {
  SliceTracker t;
  t.SetNumSlots(1);
  t.CutAt(0, QuerySet::AllSet(1));
  t.AddQuery(0, 0, spe::WindowSpec::Tumbling(10));
  // Tuple at 3 materializes slice [0, 10).
  EXPECT_EQ(t.SliceFor(3).end, 10);
  // A changelog at 6 cuts the open slice: [0,6) and later [6,10).
  QuerySet delta = QuerySet::AllSet(2);
  delta.Reset(1);
  t.SetNumSlots(2);
  t.CutAt(6, delta);
  EXPECT_EQ(t.SliceFor(3).end, 6);
  const SliceInfo after = t.SliceFor(7);
  EXPECT_EQ(after.start, 6);
  EXPECT_EQ(after.end, 10);
  // The new slice's left-boundary delta is the changelog-set.
  EXPECT_FALSE(t.cl_table().Mask(after.index, after.index - 1).Test(1));
  EXPECT_TRUE(t.cl_table().Mask(after.index, after.index - 1).Test(0));
}

TEST(SliceTrackerTest, CutBeyondFrontierMaterializesGapWithOldEdges) {
  SliceTracker t;
  t.SetNumSlots(1);
  t.CutAt(0, QuerySet::AllSet(1));
  t.AddQuery(0, 0, spe::WindowSpec::Tumbling(10));
  t.SliceFor(1);  // frontier -> 10
  t.CutAt(35, QuerySet::AllSet(1));
  // Gap slices [10,20), [20,30), [30,35) exist.
  EXPECT_EQ(t.SliceFor(12).end, 20);
  EXPECT_EQ(t.SliceFor(31).end, 35);
  EXPECT_EQ(t.SliceFor(36).start, 35);
}

TEST(SliceTrackerTest, SlicesPartitionTime) {
  SliceTracker t;
  t.SetNumSlots(3);
  t.CutAt(0, QuerySet::AllSet(3));
  t.AddQuery(0, 0, spe::WindowSpec::Sliding(12, 5));
  t.AddQuery(1, 0, spe::WindowSpec::Tumbling(7));
  t.AddQuery(2, 0, spe::WindowSpec::Sliding(9, 4));
  TimestampMs prev_end = 0;
  int64_t prev_index = -1;
  for (TimestampMs x = 0; x < 100; ++x) {
    const SliceInfo s = t.SliceFor(x);
    EXPECT_LE(s.start, x);
    EXPECT_GT(s.end, x);
    if (s.index != prev_index) {
      EXPECT_EQ(s.start, prev_end);
      EXPECT_EQ(s.index, prev_index + 1);
      prev_index = s.index;
      prev_end = s.end;
    }
  }
}

TEST(SliceTrackerTest, WindowIsUnionOfSlices) {
  SliceTracker t;
  t.SetNumSlots(2);
  t.CutAt(0, QuerySet::AllSet(2));
  t.AddQuery(0, 0, spe::WindowSpec::Sliding(12, 5));
  t.AddQuery(1, 0, spe::WindowSpec::Tumbling(8));
  // Query 0's window [10, 22):
  const auto slices = t.SlicesIn(10, 22);
  ASSERT_FALSE(slices.empty());
  EXPECT_EQ(slices.front().start, 10);
  EXPECT_EQ(slices.back().end, 22);
  for (size_t i = 1; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].start, slices[i - 1].end);
  }
}

TEST(SliceTrackerTest, EvictBefore) {
  SliceTracker t;
  t.SetNumSlots(1);
  t.CutAt(0, QuerySet::AllSet(1));
  t.AddQuery(0, 0, spe::WindowSpec::Tumbling(10));
  t.SliceFor(45);  // slices [0,10)..[40,50)
  const size_t before = t.NumSlices();
  EXPECT_EQ(before, 5u);
  const auto evicted = t.EvictBefore(30);
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(t.NumSlices(), 2u);
  EXPECT_EQ(t.SliceFor(32).index, evicted.back() + 1);
}

TEST(SliceTrackerTest, QueryDeletionStopsItsEdges) {
  SliceTracker t;
  t.SetNumSlots(2);
  t.CutAt(0, QuerySet::AllSet(2));
  t.AddQuery(0, 0, spe::WindowSpec::Tumbling(7));
  t.AddQuery(1, 0, spe::WindowSpec::Tumbling(10));
  t.SliceFor(5);  // frontier 7
  // Delete q0 via changelog at t=8.
  QuerySet delta = QuerySet::AllSet(2);
  delta.Reset(0);
  t.CutAt(8, delta);
  t.RemoveQuery(0);
  // After 8, only q1's edges (10, 20, ...) cut slices.
  EXPECT_EQ(t.SliceFor(9).end, 10);
  EXPECT_EQ(t.SliceFor(11).start, 10);
  EXPECT_EQ(t.SliceFor(11).end, 20);
}

TEST(SliceTrackerTest, SerializeRestoreRoundTrip) {
  SliceTracker t;
  t.SetNumSlots(2);
  t.CutAt(0, QuerySet::AllSet(2));
  t.AddQuery(0, 0, spe::WindowSpec::Sliding(10, 5));
  t.SliceFor(17);
  spe::StateWriter writer;
  t.Serialize(&writer);
  SliceTracker restored;
  spe::StateReader reader(writer.TakeBuffer());
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_EQ(restored.NumSlices(), t.NumSlices());
  EXPECT_EQ(restored.frontier(), t.frontier());
  EXPECT_EQ(restored.SliceFor(17).index, t.SliceFor(17).index);
  // Edges continue correctly after restore.
  EXPECT_EQ(restored.SliceFor(21).start, 20);
}

}  // namespace
}  // namespace astream::core
