#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/core/e2e_harness.h"
#include "workload/query_generator.h"

namespace astream::core {
namespace {

using Kind = AStreamJob::TopologyKind;

/// Randomized ad-hoc workload: queries are created and deleted at random
/// times while random data flows; every query's engine output must equal
/// the offline reference (the paper's Consistency requirement, Sec. 1.2).
struct PropertyCase {
  Kind topology;
  int parallelism;
  uint64_t seed;
};

class AdhocConsistencyProperty
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AdhocConsistencyProperty, EngineMatchesReference) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed);
  workload::QueryGenerator::Config qcfg;
  qcfg.num_fields = 2;  // rows below carry [key, c1, c2]
  qcfg.fields_max = 100;
  qcfg.window_min = 10;
  qcfg.window_max = 120;
  qcfg.predicates_per_side = 1;
  qcfg.session_probability =
      param.topology == Kind::kAggregation ? 0.25 : 0.0;
  workload::QueryGenerator qgen(qcfg, param.seed * 31 + 1);

  const int num_streams = param.topology == Kind::kMultiway ? 3 : 2;
  E2EHarness h(param.topology, param.parallelism, StoreMode::kGrouped, true,
               [num_streams](AStreamJob::Options* o) {
                 o->num_streams = num_streams;
               });

  auto make_query = [&]() -> QueryDescriptor {
    switch (param.topology) {
      case Kind::kAggregation:
        return rng.Bernoulli(0.25) ? qgen.Selection() : qgen.Aggregation();
      case Kind::kJoin:
        return rng.Bernoulli(0.2) ? qgen.Selection() : qgen.Join();
      case Kind::kComplex:
        return qgen.Complex(/*max_depth=*/3);
      case Kind::kMultiway:
        return rng.Bernoulli(0.2) ? qgen.Selection()
                                  : qgen.Multiway(num_streams);
    }
    return qgen.Selection();
  };

  std::vector<QueryId> live;
  TimestampMs t = 0;
  // Complex pipelines and n-ary joins blow up combinatorially; keep their
  // randomized runs shorter than the linear-operator ones.
  const int steps = param.topology == Kind::kComplex ||
                            param.topology == Kind::kMultiway
                        ? 120
                        : 250;
  for (int step = 0; step < steps; ++step) {
    t += rng.UniformInt(1, 6);
    const double action = rng.UniformDouble();
    if (action < 0.06 && live.size() < 12) {
      live.push_back(h.Create(make_query(), t));
    } else if (action < 0.09 && !live.empty()) {
      const size_t idx =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      h.Delete(live[idx], t);
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    } else if (action < 0.12 && live.size() >= 2) {
      // Delete + create in ONE changelog (slot reuse within a batch).
      const size_t idx =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      h.Cancel(live[idx], t);
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
      live.push_back(h.Submit(make_query(), t));
      h.Flush(t);
    } else {
      // Push 1-4 tuples.
      const int n = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < n; ++i) {
        spe::Row row{rng.UniformInt(0, 4), rng.UniformInt(0, 99),
                     rng.UniformInt(0, 99)};
        if (param.topology == Kind::kMultiway) {
          h.Push(static_cast<int>(rng.UniformInt(0, num_streams - 1)), t,
                 std::move(row));
        } else if (param.topology != Kind::kAggregation &&
                   rng.Bernoulli(0.5)) {
          h.PushB(t, std::move(row));
        } else {
          h.PushA(t, std::move(row));
        }
      }
      if (rng.Bernoulli(0.3)) h.Watermark(t);
    }
  }
  h.Watermark(t + 500);
  h.FinishAndVerify();
}

std::string CaseName(
    const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string kind;
  switch (info.param.topology) {
    case Kind::kAggregation:
      kind = "Agg";
      break;
    case Kind::kJoin:
      kind = "Join";
      break;
    case Kind::kComplex:
      kind = "Complex";
      break;
    case Kind::kMultiway:
      kind = "Mjoin";
      break;
  }
  return kind + "P" + std::to_string(info.param.parallelism) + "Seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, AdhocConsistencyProperty,
    ::testing::Values(
        PropertyCase{Kind::kAggregation, 1, 1},
        PropertyCase{Kind::kAggregation, 1, 2},
        PropertyCase{Kind::kAggregation, 1, 3},
        PropertyCase{Kind::kAggregation, 2, 4},
        PropertyCase{Kind::kAggregation, 4, 5},
        PropertyCase{Kind::kJoin, 1, 11},
        PropertyCase{Kind::kJoin, 1, 12},
        PropertyCase{Kind::kJoin, 1, 13},
        PropertyCase{Kind::kJoin, 2, 14},
        PropertyCase{Kind::kJoin, 4, 15},
        PropertyCase{Kind::kComplex, 1, 21},
        PropertyCase{Kind::kComplex, 1, 22},
        PropertyCase{Kind::kComplex, 2, 23},
        PropertyCase{Kind::kMultiway, 1, 31},
        PropertyCase{Kind::kMultiway, 1, 32},
        PropertyCase{Kind::kMultiway, 2, 33}),
    CaseName);

}  // namespace
}  // namespace astream::core
