#include "core/query_builder.h"

#include <gtest/gtest.h>

#include "core/astream.h"

namespace astream::core {
namespace {

TEST(QueryBuilder, SelectionHappyPath) {
  const auto q = QueryBuilder::Selection()
                     .WhereA(1, CmpOp::kLt, 50)
                     .WhereA(2, CmpOp::kGe, 10)
                     .Build();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, QueryKind::kSelection);
  ASSERT_EQ(q->select_a.size(), 2u);
  EXPECT_EQ(q->select_a[0].column, 1);
  EXPECT_EQ(q->select_a[0].op, CmpOp::kLt);
  EXPECT_EQ(q->select_a[0].constant, 50);
  EXPECT_TRUE(q->select_b.empty());
}

TEST(QueryBuilder, AggregationHappyPath) {
  const auto q = QueryBuilder::Aggregation()
                     .WhereA(1, CmpOp::kGt, 5)
                     .SlidingWindow(1000, 250)
                     .Agg(spe::AggKind::kSum, 2)
                     .Build();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, QueryKind::kAggregation);
  EXPECT_EQ(q->window.length, 1000);
  EXPECT_EQ(q->window.slide, 250);
  EXPECT_EQ(q->agg.kind, spe::AggKind::kSum);
  EXPECT_EQ(q->agg.column, 2);
}

TEST(QueryBuilder, JoinAndComplexHappyPath) {
  const auto j = QueryBuilder::Join()
                     .WhereA(1, CmpOp::kLt, 50)
                     .WhereB(2, CmpOp::kGt, 10)
                     .TumblingWindow(500)
                     .Build();
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ(j->kind, QueryKind::kJoin);
  ASSERT_EQ(j->select_b.size(), 1u);

  const auto c = QueryBuilder::Complex()
                     .SessionWindow(300)
                     .JoinDepth(2)
                     .Agg(spe::AggKind::kMax, 1)
                     .Build();
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->kind, QueryKind::kComplex);
  EXPECT_EQ(c->join_depth, 2);
  EXPECT_FALSE(c->window.IsTimeWindow());
  EXPECT_EQ(c->window.gap, 300);
}

TEST(QueryBuilder, MissingWindowIsReportedAtBuild) {
  const auto q = QueryBuilder::Aggregation().Agg(spe::AggKind::kSum, 1).Build();
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(q.status().ToString().find("window"), std::string::npos)
      << q.status().ToString();
}

TEST(QueryBuilder, WindowOnSelectionFails) {
  const auto q = QueryBuilder::Selection().TumblingWindow(100).Build();
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("unwindowed"), std::string::npos)
      << q.status().ToString();
}

TEST(QueryBuilder, WhereBOnNonJoinFails) {
  const auto q = QueryBuilder::Aggregation()
                     .WhereB(1, CmpOp::kLt, 5)
                     .TumblingWindow(100)
                     .Build();
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("WhereB"), std::string::npos);
}

TEST(QueryBuilder, InvalidWindowParametersFail) {
  EXPECT_FALSE(QueryBuilder::Aggregation().TumblingWindow(0).Build().ok());
  EXPECT_FALSE(
      QueryBuilder::Aggregation().SlidingWindow(100, 0).Build().ok());
  EXPECT_FALSE(
      QueryBuilder::Aggregation().SlidingWindow(100, 200).Build().ok());
  EXPECT_FALSE(QueryBuilder::Aggregation().SessionWindow(-1).Build().ok());
}

TEST(QueryBuilder, FirstErrorIsLatched) {
  // The window error comes first; later valid/invalid calls don't mask it.
  const auto q = QueryBuilder::Aggregation()
                     .TumblingWindow(-5)
                     .Agg(spe::AggKind::kSum, -3)
                     .Build();
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("Window"), std::string::npos)
      << q.status().ToString();
  EXPECT_EQ(q.status().ToString().find("Agg:"), std::string::npos)
      << q.status().ToString();
}

TEST(QueryBuilder, DoubleWindowAndDoubleAggFail) {
  EXPECT_FALSE(QueryBuilder::Aggregation()
                   .TumblingWindow(100)
                   .TumblingWindow(200)
                   .Build()
                   .ok());
  EXPECT_FALSE(QueryBuilder::Aggregation()
                   .TumblingWindow(100)
                   .Agg(spe::AggKind::kSum, 1)
                   .Agg(spe::AggKind::kCount, 1)
                   .Build()
                   .ok());
}

TEST(QueryBuilder, JoinDepthValidation) {
  EXPECT_FALSE(QueryBuilder::Join().JoinDepth(2).Build().ok());
  EXPECT_FALSE(
      QueryBuilder::Complex().TumblingWindow(100).JoinDepth(0).Build().ok());
  EXPECT_FALSE(QueryBuilder::Complex()
                   .TumblingWindow(100)
                   .JoinDepth(kMaxJoinDepth + 1)
                   .Build()
                   .ok());
  EXPECT_TRUE(QueryBuilder::Complex()
                  .TumblingWindow(100)
                  .JoinDepth(kMaxJoinDepth)
                  .Build()
                  .ok());
}

TEST(QueryBuilder, NegativeColumnsFail) {
  EXPECT_FALSE(QueryBuilder::Selection().WhereA(-1, CmpOp::kLt, 5).Build().ok());
  EXPECT_FALSE(QueryBuilder::Aggregation()
                   .TumblingWindow(10)
                   .Agg(spe::AggKind::kSum, -1)
                   .Build()
                   .ok());
}

TEST(QueryBuilder, StatusAccessorLetsCallersBailEarly) {
  auto builder = QueryBuilder::Selection();
  EXPECT_TRUE(builder.status().ok());
  builder.WhereA(-2, CmpOp::kLt, 5);
  EXPECT_FALSE(builder.status().ok());
}

TEST(QueryBuilder, MultiwayJoinHappyPath) {
  const auto q = QueryBuilder::MultiwayJoin()
                     .Input(0)
                     .Input(2)
                     .Input(1)
                     .WhereStream(2, 1, CmpOp::kLt, 50)
                     .TumblingWindow(500)
                     .Build();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind, QueryKind::kMultiJoin);
  ASSERT_EQ(q->join_inputs.size(), 3u);
  // Declared leg order is preserved (it fixes output column order).
  EXPECT_EQ(q->join_inputs[0].stream, 0);
  EXPECT_EQ(q->join_inputs[1].stream, 2);
  EXPECT_EQ(q->join_inputs[2].stream, 1);
  EXPECT_TRUE(q->join_inputs[0].select.empty());
  ASSERT_EQ(q->join_inputs[1].select.size(), 1u);
  EXPECT_EQ(q->join_inputs[1].select[0].column, 1);
  EXPECT_TRUE(q->UsesStream(2));
  EXPECT_FALSE(q->UsesStream(3));
  ASSERT_NE(q->InputFor(1), nullptr);
  EXPECT_EQ(q->InputFor(4), nullptr);
}

TEST(QueryBuilder, MultiwayDuplicateLegFails) {
  const auto q = QueryBuilder::MultiwayJoin()
                     .Input(0)
                     .Input(0)
                     .TumblingWindow(500)
                     .Build();
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("duplicate input leg"),
            std::string::npos)
      << q.status().ToString();
}

TEST(QueryBuilder, MultiwaySelfReferentialAndOutOfRangeStreamsFail) {
  EXPECT_FALSE(QueryBuilder::MultiwayJoin().Input(-1).Build().ok());
  EXPECT_FALSE(
      QueryBuilder::MultiwayJoin().Input(kMaxJoinDepth).Build().ok());
}

TEST(QueryBuilder, MultiwayMismatchedKeyArityFails) {
  const auto q = QueryBuilder::MultiwayJoin()
                     .InputKeyed(0, {0})
                     .InputKeyed(1, {0, 1})
                     .TumblingWindow(500)
                     .Build();
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("mismatched join-key arity"),
            std::string::npos)
      << q.status().ToString();
}

TEST(QueryBuilder, MultiwayNeedsTwoLegsAndTimeWindow) {
  const auto one_leg =
      QueryBuilder::MultiwayJoin().Input(0).TumblingWindow(500).Build();
  ASSERT_FALSE(one_leg.ok());
  EXPECT_NE(one_leg.status().ToString().find("at least 2 input legs"),
            std::string::npos);
  const auto session = QueryBuilder::MultiwayJoin()
                           .Input(0)
                           .Input(1)
                           .SessionWindow(300)
                           .Build();
  EXPECT_FALSE(session.ok());
}

TEST(QueryBuilder, MultiwayRejectsSideBasedPredicatesAndStrayLegs) {
  // WhereA on a multiway query points at the per-leg surface instead.
  const auto a = QueryBuilder::MultiwayJoin()
                     .Input(0)
                     .Input(1)
                     .WhereA(1, CmpOp::kLt, 5)
                     .TumblingWindow(500)
                     .Build();
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().ToString().find("WhereStream"), std::string::npos);
  // WhereStream before the leg exists, Input on a non-multiway kind.
  EXPECT_FALSE(QueryBuilder::MultiwayJoin()
                   .Input(0)
                   .WhereStream(1, 0, CmpOp::kLt, 5)
                   .Build()
                   .ok());
  EXPECT_FALSE(QueryBuilder::Join().Input(0).Build().ok());
}

TEST(QueryBuilder, MultiwayDescriptorSerializationRoundTrips) {
  const auto q = QueryBuilder::MultiwayJoin()
                     .Input(1)
                     .Input(3)
                     .Input(0)
                     .WhereStream(3, 2, CmpOp::kGe, 7)
                     .SlidingWindow(1000, 500)
                     .Build();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  spe::StateWriter writer;
  q->Serialize(&writer);
  spe::StateReader reader(writer.TakeBuffer());
  const QueryDescriptor restored = QueryDescriptor::Deserialize(&reader);
  EXPECT_EQ(restored.kind, q->kind);
  EXPECT_EQ(restored.join_inputs, q->join_inputs);
  ASSERT_EQ(restored.join_inputs.size(), 3u);
  EXPECT_EQ(restored.join_inputs[1].stream, 3);
  ASSERT_EQ(restored.join_inputs[1].select.size(), 1u);
  EXPECT_EQ(restored.join_inputs[1].select[0].constant, 7);
}

TEST(QueryBuilder, BuiltDescriptorIsSubmittable) {
  // The builder's output must satisfy the engine-side validator too.
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  auto job = std::move(AStreamJob::Create(options)).value();
  ASSERT_TRUE(job->Start().ok());
  const auto q = QueryBuilder::Aggregation()
                     .WhereA(1, CmpOp::kLt, 500)
                     .SlidingWindow(800, 400)
                     .Agg(spe::AggKind::kAvg, 1)
                     .Build();
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(job->Submit(*q).ok());
  job->Stop();
}

}  // namespace
}  // namespace astream::core
