#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/slicing.h"
#include "tests/core/e2e_harness.h"

namespace astream::core {
namespace {

using spe::Row;
using Kind = AStreamJob::TopologyKind;

QueryDescriptor AggQuery(spe::WindowSpec window,
                         spe::AggKind agg = spe::AggKind::kSum) {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.window = window;
  d.agg = {agg, 1};
  return d;
}

// --- ChooseFactor: the cost-based rewrite decision ----------------------

TEST(FactorRegistryTest, ChooseFactorAcceptsComposableSpecs) {
  // 60s/10s: g = 10 = slide, the densest acceptable case (1x density).
  auto f = FactorRegistry::ChooseFactor(0, spe::WindowSpec::Sliding(60, 10));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->period, 10);
  EXPECT_EQ(f->anchor, 0);

  // 45s/10s: g = 5 — the lattice is slide/g = 2x denser than the query's
  // own start edges, and 2*5 >= 10 passes the bound exactly.
  f = FactorRegistry::ChooseFactor(3, spe::WindowSpec::Sliding(45, 10));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->period, 5);
  EXPECT_EQ(f->anchor, 3);  // anchor = origin mod period

  // Tumbling(7): slide == length == 7, g = 7 — always composable.
  f = FactorRegistry::ChooseFactor(10, spe::WindowSpec::Tumbling(7));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->period, 7);
  EXPECT_EQ(f->anchor, 3);
}

TEST(FactorRegistryTest, ChooseFactorRejectsPathologicalSpecs) {
  // 7s/3s: g = 1, lattice 3x denser than the slide — cost bound fails.
  EXPECT_FALSE(FactorRegistry::ChooseFactor(0, spe::WindowSpec::Sliding(7, 3))
                   .has_value());
  // Sessions never factor.
  EXPECT_FALSE(FactorRegistry::ChooseFactor(0, spe::WindowSpec::Session(5))
                   .has_value());
}

// --- AcquireFor / Release: lattice sharing and refcounts ----------------

TEST(FactorRegistryTest, ReusesCoarsestCompatibleLattice) {
  FactorRegistry reg;
  // First query registers its own lattice {anchor 0, period 10}.
  auto f0 = reg.AcquireFor(0, 0, spe::WindowSpec::Sliding(60, 10));
  ASSERT_TRUE(f0.has_value());
  EXPECT_EQ(f0->period, 10);
  EXPECT_EQ(reg.NumLattices(), 1u);
  EXPECT_EQ(reg.stats().rewrites, 1);

  // 30s/10s with the same origin parity rides the same lattice.
  auto f1 = reg.AcquireFor(1, 20, spe::WindowSpec::Sliding(30, 10));
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(*f1, *f0);
  EXPECT_EQ(reg.NumLattices(), 1u);
  EXPECT_EQ(reg.stats().reuses, 1);

  // 20s/5s needs a finer lattice (period 5): new registration.
  auto f2 = reg.AcquireFor(2, 0, spe::WindowSpec::Sliding(20, 5));
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->period, 5);
  EXPECT_EQ(reg.NumLattices(), 2u);

  // 40s/10s could ride either; the COARSEST compatible one (period 10,
  // the sparsest edge source) wins.
  auto f3 = reg.AcquireFor(3, 0, spe::WindowSpec::Sliding(40, 10));
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(f3->period, 10);
  EXPECT_EQ(reg.stats().reuses, 2);

  // Incongruent anchor cannot share: origin 3 mod 10 != 0.
  auto f4 = reg.AcquireFor(4, 3, spe::WindowSpec::Sliding(60, 10));
  ASSERT_TRUE(f4.has_value());
  EXPECT_EQ(f4->anchor, 3);
  EXPECT_EQ(reg.NumLattices(), 3u);
}

TEST(FactorRegistryTest, ReleaseDropsLatticeAtZeroRefs) {
  FactorRegistry reg;
  reg.AcquireFor(0, 0, spe::WindowSpec::Sliding(60, 10));
  reg.AcquireFor(1, 0, spe::WindowSpec::Sliding(30, 10));
  EXPECT_EQ(reg.NumLattices(), 1u);
  reg.Release(0);
  EXPECT_EQ(reg.NumLattices(), 1u);  // slot 1 still rides it
  reg.Release(1);
  EXPECT_EQ(reg.NumLattices(), 0u);
  EXPECT_EQ(reg.NumRegistered(), 0u);
  // Releasing a fallback/unknown slot is a no-op.
  reg.Release(7);
}

TEST(FactorRegistryTest, SerializeRestoreRoundTrip) {
  FactorRegistry reg;
  reg.AcquireFor(0, 0, spe::WindowSpec::Sliding(60, 10));
  reg.AcquireFor(1, 3, spe::WindowSpec::Sliding(45, 10));
  reg.AcquireFor(2, 0, spe::WindowSpec::Sliding(7, 3));  // fallback
  spe::StateWriter writer;
  reg.Serialize(&writer);
  spe::StateReader reader(writer.TakeBuffer());
  FactorRegistry restored;
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_EQ(restored.NumRegistered(), 2u);
  EXPECT_EQ(restored.NumLattices(), 2u);
  ASSERT_TRUE(restored.FactorOf(0).has_value());
  EXPECT_EQ(restored.FactorOf(0)->period, 10);
  EXPECT_FALSE(restored.FactorOf(2).has_value());
  EXPECT_EQ(restored.stats().fallbacks, 1);
}

// --- SliceTracker integration: lattice edges drive slicing --------------

TEST(FactorSlicingTest, RewrittenQueriesShareLatticeEdges) {
  SliceTracker t;
  t.SetNumSlots(2);
  t.EnableFactorRewrite(true);
  t.CutAt(0, QuerySet::AllSet(2));
  // Both specs factor onto { t ≡ 0 (mod 10) }: ONE edge source, slice
  // boundaries every 10 — not the union of two per-query edge sets.
  t.AddQuery(0, 0, spe::WindowSpec::Sliding(60, 10));
  t.AddQuery(1, 0, spe::WindowSpec::Sliding(30, 10));
  EXPECT_EQ(t.factors().NumLattices(), 1u);
  EXPECT_EQ(t.SliceFor(5).end, 10);
  EXPECT_EQ(t.SliceFor(15).start, 10);
  EXPECT_EQ(t.SliceFor(15).end, 20);
}

TEST(FactorSlicingTest, NonDivisorSpecKeepsExactEdges) {
  SliceTracker t;
  t.SetNumSlots(1);
  t.EnableFactorRewrite(true);
  t.CutAt(0, QuerySet::AllSet(1));
  // 7s/3s fails the cost bound: exact edges (starts 0,3,6,..., ends
  // 7,10,13,...) must still be materialized, windows must tile exactly.
  t.AddQuery(0, 0, spe::WindowSpec::Sliding(7, 3));
  EXPECT_EQ(t.factors().NumLattices(), 0u);
  EXPECT_EQ(t.factors().stats().fallbacks, 1);
  EXPECT_EQ(t.SliceFor(1).end, 3);
  EXPECT_EQ(t.SliceFor(4).end, 6);
  EXPECT_EQ(t.SliceFor(6).end, 7);   // first window end
  EXPECT_EQ(t.SliceFor(8).end, 9);   // start edge 9
  EXPECT_EQ(t.SliceFor(9).end, 10);  // end edge 10
  const auto slices = t.SlicesIn(0, 7);
  ASSERT_EQ(slices.size(), 3u);  // [0,3) [3,6) [6,7)
  EXPECT_EQ(slices.back().end, 7);
}

// --- E2E: outputs stay pinned to the sync reference either way ----------

void RunNonDivisorFleet(bool share) {
  E2EHarness h(Kind::kAggregation, 1, StoreMode::kGrouped, true,
               [share](AStreamJob::Options* o) {
                 o->share_arrangements = share;
               });
  // Mixed fleet on one stream, submitted as ONE batch (common origin): a
  // non-divisor 7s/3s spec (factor fallback) next to composable
  // 60/10-family specs sharing one lattice.
  const QueryId q73 = h.Submit(AggQuery(spe::WindowSpec::Sliding(7, 3)), 0);
  h.Submit(AggQuery(spe::WindowSpec::Sliding(60, 10)), 0);
  h.Submit(AggQuery(spe::WindowSpec::Sliding(30, 10), spe::AggKind::kMax), 0);
  h.Flush(0);
  const TimestampMs origin = h.lifecycles()[q73].created_at;
  for (int i = 0; i < 120; ++i) {
    h.PushA(2 + i * 2, Row{i % 4, i});  // up to t = 240
  }
  h.Watermark(130);
  // Out-of-order rows landing exactly ON factor boundaries (above the
  // watermark, behind the 240 high-water mark): one on the shared period-10
  // lattice, one on a 7/3 exact window-end edge. Both modes must clamp
  // them into the same slices.
  const TimestampMs lattice_edge =
      NextLatticeEdgeAfter(FloorMod(origin, 10), 10, 135);
  const TimestampMs end_edge = origin + 7 + 3 * ((135 - origin - 7) / 3 + 1);
  h.PushA(lattice_edge, Row{1, 1000});
  h.PushA(end_edge, Row{2, 2000});
  for (int i = 0; i < 40; ++i) {
    h.PushA(242 + i * 3, Row{i % 4, i});
  }
  h.Watermark(400);
  h.FinishAndVerify();
}

TEST(FactorSlicingE2ETest, NonDivisorFleetMatchesReferenceSharingOn) {
  RunNonDivisorFleet(true);
}

TEST(FactorSlicingE2ETest, NonDivisorFleetMatchesReferenceSharingOff) {
  RunNonDivisorFleet(false);
}

}  // namespace
}  // namespace astream::core
