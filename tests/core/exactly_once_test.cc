#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/astream.h"
#include "harness/reference.h"

namespace astream::core {
namespace {

using harness::RowMultiset;
using spe::Row;
using Kind = AStreamJob::TopologyKind;

/// Exactly-once semantics (Sec. 3.3): a run that fails after a checkpoint
/// and is restored from it — with the input replayed from the logged
/// offset — must produce exactly the same per-query output multiset as a
/// failure-free run. This works because everything in AStream is
/// deterministic in event time: changelogs, slicing, window ids.
class ExactlyOnceTest : public ::testing::Test {
 protected:
  /// One scripted element of the experiment (the "source log").
  struct LogEntry {
    enum Kind { kPushA, kPushB, kWatermark, kSubmit, kCancel } kind;
    TimestampMs time = 0;
    Row row;
    QueryDescriptor desc;
    int cancel_index = -1;  // index into submitted ids
  };

  std::unique_ptr<AStreamJob> MakeJob(Kind topology, ManualClock* clock) {
    AStreamJob::Options options;
    options.topology = topology;
    options.threaded = false;
    options.clock = clock;
    options.session.batch_size = 1;  // one changelog per request
    auto job = AStreamJob::Create(options);
    EXPECT_TRUE(job.ok());
    auto ptr = std::move(job).value();
    EXPECT_TRUE(ptr->Start().ok());
    return ptr;
  }

  /// Replays log[from..to) into the job; collects outputs.
  void Replay(AStreamJob* job, ManualClock* clock,
              const std::vector<LogEntry>& log, size_t from, size_t to,
              std::vector<QueryId>* ids,
              std::map<QueryId, RowMultiset>* outputs) {
    job->SetResultCallback(
        [outputs](QueryId id, const spe::Record& record) {
          harness::AddToMultiset(&(*outputs)[id], record.event_time,
                                 record.row);
        });
    for (size_t i = from; i < to; ++i) {
      const LogEntry& e = log[i];
      clock->SetMs(e.time);
      switch (e.kind) {
        case LogEntry::kPushA:
          job->PushA(e.time, e.row);
          break;
        case LogEntry::kPushB:
          job->PushB(e.time, e.row);
          break;
        case LogEntry::kWatermark:
          job->PushWatermark(e.time);
          break;
        case LogEntry::kSubmit: {
          auto id = job->Submit(e.desc);
          ASSERT_TRUE(id.ok());
          ids->push_back(*id);
          job->Pump(true);
          break;
        }
        case LogEntry::kCancel:
          ASSERT_TRUE(job->Cancel((*ids)[e.cancel_index]).ok());
          job->Pump(true);
          break;
      }
    }
  }

  void RunScenario(Kind topology, const std::vector<LogEntry>& log,
                   size_t checkpoint_at) {
    // ---- Failure-free run ----
    std::map<QueryId, RowMultiset> expected;
    {
      ManualClock clock;
      auto job = MakeJob(topology, &clock);
      std::vector<QueryId> ids;
      Replay(job.get(), &clock, log, 0, log.size(), &ids, &expected);
      job->FinishAndWait();
    }

    // ---- Run that fails right after a checkpoint ----
    std::map<QueryId, RowMultiset> actual;
    spe::CheckpointStore::Checkpoint checkpoint;
    {
      ManualClock clock;
      auto job = MakeJob(topology, &clock);
      std::vector<QueryId> ids;
      Replay(job.get(), &clock, log, 0, checkpoint_at, &ids, &actual);
      const int64_t cp = job->TriggerCheckpoint();
      auto snap = job->checkpoints().Get(cp);
      ASSERT_NE(snap, nullptr);
      ASSERT_TRUE(snap->complete) << "checkpoint incomplete";
      checkpoint = *snap;
      job->Stop();  // crash: everything after the barrier is lost
    }
    // ---- Recovery: fresh job, restore state, replay from the offset ----
    {
      ManualClock clock;
      clock.SetMs(log[checkpoint_at == 0 ? 0 : checkpoint_at - 1].time);
      auto job = MakeJob(topology, &clock);
      ASSERT_TRUE(job->RestoreFrom(checkpoint).ok());
      std::vector<QueryId> ids;
      // The session's control-plane state (id counter, slot allocator,
      // active map) was part of the checkpoint, so queries submitted
      // after recovery get the same ids as in the failure-free run; the
      // prefix's ids are reconstructed for cancel bookkeeping.
      for (size_t i = 0; i < checkpoint_at; ++i) {
        if (log[i].kind == LogEntry::kSubmit) {
          ids.push_back(static_cast<QueryId>(ids.size() + 1));
        }
      }
      Replay(job.get(), &clock, log, checkpoint_at, log.size(), &ids,
             &actual);
      job->FinishAndWait();
    }

    EXPECT_EQ(actual.size(), expected.size());
    for (const auto& [id, rows] : expected) {
      EXPECT_EQ(actual[id], rows) << "query " << id;
    }
  }
};

TEST_F(ExactlyOnceTest, AggregationSurvivesFailure) {
  std::vector<LogEntry> log;
  QueryDescriptor agg;
  agg.kind = QueryKind::kAggregation;
  agg.window = spe::WindowSpec::Sliding(60, 30);
  agg.agg = {spe::AggKind::kSum, 1};
  log.push_back({LogEntry::kSubmit, 0, {}, agg, -1});
  QueryDescriptor agg2;
  agg2.kind = QueryKind::kAggregation;
  agg2.window = spe::WindowSpec::Tumbling(45);
  agg2.agg = {spe::AggKind::kMax, 1};
  log.push_back({LogEntry::kSubmit, 2, {}, agg2, -1});
  for (int i = 0; i < 30; ++i) {
    log.push_back(
        {LogEntry::kPushA, 5 + i * 7, Row{i % 3, i * 11 % 50}, {}, -1});
    if (i % 5 == 4) {
      log.push_back({LogEntry::kWatermark, 5 + i * 7, {}, {}, -1});
    }
  }
  log.push_back({LogEntry::kWatermark, 400, {}, {}, -1});
  // Checkpoint mid-stream (after the 14th entry).
  RunScenario(Kind::kAggregation, log, 14);
}

TEST_F(ExactlyOnceTest, JoinSurvivesFailure) {
  std::vector<LogEntry> log;
  QueryDescriptor join;
  join.kind = QueryKind::kJoin;
  join.window = spe::WindowSpec::Tumbling(50);
  log.push_back({LogEntry::kSubmit, 0, {}, join, -1});
  QueryDescriptor join2;
  join2.kind = QueryKind::kJoin;
  join2.window = spe::WindowSpec::Sliding(80, 40);
  join2.select_a = {Predicate{1, CmpOp::kLt, 40}};
  log.push_back({LogEntry::kSubmit, 1, {}, join2, -1});
  for (int i = 0; i < 24; ++i) {
    log.push_back(
        {LogEntry::kPushA, 4 + i * 6, Row{i % 2, i * 13 % 60}, {}, -1});
    log.push_back(
        {LogEntry::kPushB, 5 + i * 6, Row{i % 2, i * 17 % 60}, {}, -1});
    if (i % 4 == 3) {
      log.push_back({LogEntry::kWatermark, 5 + i * 6, {}, {}, -1});
    }
  }
  log.push_back({LogEntry::kWatermark, 300, {}, {}, -1});
  RunScenario(Kind::kJoin, log, 20);
}

TEST_F(ExactlyOnceTest, AdhocChurnAfterRecovery) {
  // Queries are created and cancelled AFTER the checkpoint: the restored
  // session must hand out the same query ids and reuse the same slots as
  // the failure-free run.
  std::vector<LogEntry> log;
  QueryDescriptor agg;
  agg.kind = QueryKind::kAggregation;
  agg.window = spe::WindowSpec::Tumbling(40);
  agg.agg = {spe::AggKind::kSum, 1};
  log.push_back({LogEntry::kSubmit, 0, {}, agg, -1});
  log.push_back({LogEntry::kSubmit, 1, {}, agg, -1});
  for (int i = 0; i < 10; ++i) {
    log.push_back({LogEntry::kPushA, 3 + i * 5, Row{i % 2, i}, {}, -1});
  }
  log.push_back({LogEntry::kWatermark, 60, {}, {}, -1});
  // --- checkpoint lands here (index 14) ---
  log.push_back({LogEntry::kCancel, 70, {}, {}, 0});  // delete query 1
  QueryDescriptor agg2 = agg;
  agg2.window = spe::WindowSpec::Tumbling(25);
  log.push_back({LogEntry::kSubmit, 75, {}, agg2, -1});  // reuses slot 0
  for (int i = 10; i < 25; ++i) {
    log.push_back({LogEntry::kPushA, 30 + i * 5, Row{i % 2, i}, {}, -1});
  }
  log.push_back({LogEntry::kWatermark, 300, {}, {}, -1});
  RunScenario(Kind::kAggregation, log, 14);
}

TEST_F(ExactlyOnceTest, CheckpointAtDifferentOffsets) {
  std::vector<LogEntry> log;
  QueryDescriptor agg;
  agg.kind = QueryKind::kAggregation;
  agg.window = spe::WindowSpec::Tumbling(30);
  agg.agg = {spe::AggKind::kCount, 1};
  log.push_back({LogEntry::kSubmit, 0, {}, agg, -1});
  for (int i = 0; i < 20; ++i) {
    log.push_back(
        {LogEntry::kPushA, 3 + i * 5, Row{i % 2, i}, {}, -1});
    if (i % 3 == 2) {
      log.push_back({LogEntry::kWatermark, 3 + i * 5, {}, {}, -1});
    }
  }
  log.push_back({LogEntry::kWatermark, 200, {}, {}, -1});
  for (size_t offset : {2u, 9u, 18u}) {
    RunScenario(Kind::kAggregation, log, offset);
  }
}

}  // namespace
}  // namespace astream::core
