#include "core/shared_session.h"

#include <gtest/gtest.h>

namespace astream::core {
namespace {

QueryDescriptor Dummy() {
  QueryDescriptor d;
  d.kind = QueryKind::kSelection;
  d.select_a = {Predicate{1, CmpOp::kLt, 500}};
  return d;
}

TEST(SharedSessionTest, BatchSizeTriggersFlush) {
  SharedSession::Config cfg;
  cfg.batch_size = 3;
  cfg.max_timeout_ms = 1'000'000;
  SharedSession session(cfg);
  session.Submit(Dummy(), 10);
  session.Submit(Dummy(), 11);
  EXPECT_EQ(session.MaybeFlush(12, false), nullptr);
  session.Submit(Dummy(), 12);
  auto log = session.MaybeFlush(13, false);
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->created.size(), 3u);
  EXPECT_EQ(log->epoch, 1);
  EXPECT_GT(log->time, 13);  // strictly after `now`
  EXPECT_EQ(session.num_active(), 3u);
}

TEST(SharedSessionTest, TimeoutTriggersFlush) {
  SharedSession::Config cfg;
  cfg.batch_size = 100;
  cfg.max_timeout_ms = 50;
  SharedSession session(cfg);
  session.Submit(Dummy(), 10);
  EXPECT_EQ(session.MaybeFlush(40, false), nullptr);
  auto log = session.MaybeFlush(60, false);
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->created.size(), 1u);
}

TEST(SharedSessionTest, NoChangelogWhenIdle) {
  SharedSession session({});
  EXPECT_EQ(session.MaybeFlush(1'000'000, true), nullptr);
}

TEST(SharedSessionTest, SlotReuseFig3c) {
  SharedSession::Config cfg;
  cfg.batch_size = 1;
  SharedSession session(cfg);
  const QueryId q1 = session.Submit(Dummy(), 1);
  auto log1 = session.MaybeFlush(1, true);
  ASSERT_NE(log1, nullptr);
  const QueryId q2 = session.Submit(Dummy(), 2);
  auto log2 = session.MaybeFlush(2, true);
  ASSERT_NE(log2, nullptr);
  EXPECT_EQ(log2->created[0].slot, 1);

  // Delete Q2, create Q3: Q3 reuses slot 1 (the paper's Fig. 3c).
  ASSERT_TRUE(session.Cancel(q2, 3).ok());
  auto log3 = session.MaybeFlush(3, true);
  ASSERT_NE(log3, nullptr);
  EXPECT_EQ(log3->deleted[0].slot, 1);
  session.Submit(Dummy(), 4);
  auto log4 = session.MaybeFlush(4, true);
  ASSERT_NE(log4, nullptr);
  EXPECT_EQ(log4->created[0].slot, 1);
  EXPECT_EQ(session.num_slots(), 2u);
  (void)q1;
}

TEST(SharedSessionTest, DeleteAndCreateInOneChangelogReusesSlot) {
  SharedSession::Config cfg;
  cfg.batch_size = 100;
  SharedSession session(cfg);
  const QueryId q1 = session.Submit(Dummy(), 1);
  session.MaybeFlush(1, true);
  ASSERT_TRUE(session.Cancel(q1, 2).ok());
  session.Submit(Dummy(), 2);
  auto log = session.MaybeFlush(2, true);
  ASSERT_NE(log, nullptr);
  ASSERT_EQ(log->deleted.size(), 1u);
  ASSERT_EQ(log->created.size(), 1u);
  // Deletion processed first, so the new query reuses slot 0.
  EXPECT_EQ(log->created[0].slot, 0);
  EXPECT_FALSE(log->changelog_set.Test(0));
}

TEST(SharedSessionTest, CancelPendingCreationDropsIt) {
  SharedSession session({});
  const QueryId id = session.Submit(Dummy(), 1);
  ASSERT_TRUE(session.Cancel(id, 2).ok());
  EXPECT_EQ(session.MaybeFlush(3, true), nullptr);
  EXPECT_EQ(session.num_active(), 0u);
}

TEST(SharedSessionTest, CancelUnknownFails) {
  SharedSession session({});
  EXPECT_FALSE(session.Cancel(77, 1).ok());
}

TEST(SharedSessionTest, MarkerTimesStrictlyIncrease) {
  SharedSession::Config cfg;
  cfg.batch_size = 1;
  SharedSession session(cfg);
  session.Submit(Dummy(), 5);
  auto log1 = session.MaybeFlush(5, true);
  session.Submit(Dummy(), 5);
  auto log2 = session.MaybeFlush(5, true);  // same wall time
  ASSERT_NE(log1, nullptr);
  ASSERT_NE(log2, nullptr);
  EXPECT_GT(log2->time, log1->time);
}

TEST(SharedSessionTest, DeploymentAckLatency) {
  SharedSession::Config cfg;
  cfg.batch_size = 2;
  SharedSession session(cfg);
  session.Submit(Dummy(), 100);
  session.Submit(Dummy(), 110);
  auto log = session.MaybeFlush(110, false);
  ASSERT_NE(log, nullptr);
  std::vector<std::pair<QueryId, TimestampMs>> latencies;
  session.OnEpochDeployed(log->epoch, 150, &latencies);
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_EQ(latencies[0].second, 50);  // 150 - 100
  EXPECT_EQ(latencies[1].second, 40);  // 150 - 110
  // Duplicate acks are ignored.
  latencies.clear();
  session.OnEpochDeployed(log->epoch, 200, &latencies);
  EXPECT_TRUE(latencies.empty());
}

TEST(SharedSessionTest, ModeSwitchAdviceCrossingThreshold) {
  SharedSession::Config cfg;
  cfg.batch_size = 1000;
  cfg.mode_switch_threshold = 2;
  SharedSession session(cfg);
  for (int i = 0; i < 3; ++i) session.Submit(Dummy(), i);
  auto log = session.MaybeFlush(10, true);
  ASSERT_NE(log, nullptr);
  auto mode = session.TakeModeSwitch();
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(*mode, StoreMode::kList);
  // No repeated advice while staying above the threshold.
  session.Submit(Dummy(), 11);
  session.MaybeFlush(11, true);
  EXPECT_FALSE(session.TakeModeSwitch().has_value());
}

TEST(SharedSessionTest, LargeBatchSplitsAcrossFlushes) {
  SharedSession::Config cfg;
  cfg.batch_size = 10;
  SharedSession session(cfg);
  for (int i = 0; i < 25; ++i) session.Submit(Dummy(), 1);
  auto log1 = session.MaybeFlush(1, true);
  ASSERT_NE(log1, nullptr);
  EXPECT_EQ(log1->created.size(), 10u);
  auto log2 = session.MaybeFlush(2, true);
  ASSERT_NE(log2, nullptr);
  EXPECT_EQ(log2->created.size(), 10u);
  auto log3 = session.MaybeFlush(3, true);
  ASSERT_NE(log3, nullptr);
  EXPECT_EQ(log3->created.size(), 5u);
}

}  // namespace
}  // namespace astream::core
