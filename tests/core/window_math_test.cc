#include "core/window_math.h"

#include <gtest/gtest.h>

#include "core/slicing.h"

namespace astream::core {
namespace {

TEST(WindowMathTest, FloorModHandlesNegatives) {
  EXPECT_EQ(FloorMod(7, 3), 1);
  EXPECT_EQ(FloorMod(6, 3), 0);
  EXPECT_EQ(FloorMod(-1, 3), 2);
  EXPECT_EQ(FloorMod(-3, 3), 0);
  EXPECT_EQ(FloorMod(-7, 5), 3);
}

TEST(WindowMathTest, WindowGcd) {
  EXPECT_EQ(WindowGcd(45, 10), 5);
  EXPECT_EQ(WindowGcd(60, 10), 10);
  EXPECT_EQ(WindowGcd(7, 3), 1);
  EXPECT_EQ(WindowGcd(10, 0), 10);
  EXPECT_EQ(WindowGcd(0, 10), 10);
  EXPECT_EQ(WindowGcd(-12, 8), 4);
}

TEST(WindowMathTest, NextStartEdgeAfter) {
  // Edges at origin + k*slide, k >= 0; result strictly after t.
  EXPECT_EQ(NextStartEdgeAfter(100, 10, 50), 100);   // before the origin
  EXPECT_EQ(NextStartEdgeAfter(100, 10, 100), 110);  // on an edge
  EXPECT_EQ(NextStartEdgeAfter(100, 10, 104), 110);
  EXPECT_EQ(NextStartEdgeAfter(100, 10, 110), 120);
  EXPECT_EQ(NextStartEdgeAfter(0, 7, 20), 21);
}

TEST(WindowMathTest, NextLatticeEdgeAfter) {
  // Lattice { t ≡ anchor (mod period) }, unbounded below.
  EXPECT_EQ(NextLatticeEdgeAfter(0, 10, 0), 10);
  EXPECT_EQ(NextLatticeEdgeAfter(0, 10, 9), 10);
  EXPECT_EQ(NextLatticeEdgeAfter(0, 10, 10), 20);
  EXPECT_EQ(NextLatticeEdgeAfter(3, 10, 10), 13);
  EXPECT_EQ(NextLatticeEdgeAfter(3, 10, 13), 23);
  // Strictly-after semantics match NextStartEdgeAfter past the origin.
  for (TimestampMs t = 100; t < 160; ++t) {
    EXPECT_EQ(NextLatticeEdgeAfter(FloorMod(100, 10), 10, t),
              NextStartEdgeAfter(100, 10, t))
        << "t=" << t;
  }
}

TEST(WindowMathTest, SliceCursorAdvancesOnlyAcrossBoundaries) {
  SliceTracker tracker;
  tracker.SetNumSlots(1);
  tracker.CutAt(0, QuerySet::AllSet(1));
  tracker.AddQuery(0, 0, spe::WindowSpec::Tumbling(10));

  SliceCursor cursor;
  EXPECT_FALSE(cursor.valid());
  // First resolution always reports a change.
  EXPECT_TRUE(cursor.Advance(tracker, 3));
  EXPECT_TRUE(cursor.valid());
  EXPECT_EQ(cursor.slice().start, 0);
  EXPECT_EQ(cursor.slice().end, 10);
  // Same slice: cached, no change reported.
  EXPECT_FALSE(cursor.Advance(tracker, 7));
  EXPECT_FALSE(cursor.Advance(tracker, 9));
  // Crossing the boundary re-resolves.
  EXPECT_TRUE(cursor.Advance(tracker, 12));
  EXPECT_EQ(cursor.slice().start, 10);
  EXPECT_EQ(cursor.slice().index, 1);
  // Invalidate forces the next Advance to re-resolve even in-slice.
  cursor.Invalidate();
  EXPECT_TRUE(cursor.Advance(tracker, 13));
}

}  // namespace
}  // namespace astream::core
