// The threaded runner must produce exactly the same per-query result
// multisets as the deterministic sync runner for the same scripted input
// — thread scheduling may reorder execution but never change results
// (everything is keyed by event time).

#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "common/rng.h"
#include "core/astream.h"
#include "harness/reference.h"

namespace astream::core {
namespace {

using harness::RowMultiset;
using spe::Row;
using Kind = AStreamJob::TopologyKind;

struct Script {
  struct Step {
    enum { kPushA, kPushB, kWatermark, kSubmit, kCancelFirst } what;
    TimestampMs time;
    Row row;
    QueryDescriptor desc;
  };
  std::vector<Step> steps;
};

Script MakeScript(Kind kind, uint64_t seed) {
  Rng rng(seed);
  Script script;
  // A couple of queries up front, one mid-stream, one deletion.
  auto make_query = [&](TimestampMs t) {
    QueryDescriptor d;
    if (kind == Kind::kAggregation) {
      d.kind = QueryKind::kAggregation;
      d.window = spe::WindowSpec::Sliding(
          rng.UniformInt(40, 120), rng.UniformInt(20, 40));
      d.agg = {spe::AggKind::kSum, 1};
    } else {
      d.kind = QueryKind::kJoin;
      d.window = spe::WindowSpec::Sliding(
          rng.UniformInt(40, 120), rng.UniformInt(20, 40));
    }
    d.select_a = {Predicate{1, CmpOp::kLt, rng.UniformInt(30, 90)}};
    return Script::Step{Script::Step::kSubmit, t, {}, d};
  };
  script.steps.push_back(make_query(0));
  script.steps.push_back(make_query(0));
  TimestampMs t = 1;
  for (int i = 0; i < 400; ++i) {
    t += rng.UniformInt(1, 4);
    Row row{rng.UniformInt(0, 6), rng.UniformInt(0, 99)};
    if (kind != Kind::kAggregation && rng.Bernoulli(0.5)) {
      script.steps.push_back({Script::Step::kPushB, t, row, {}});
    } else {
      script.steps.push_back({Script::Step::kPushA, t, row, {}});
    }
    if (i == 150) script.steps.push_back(make_query(t));
    if (i == 250) {
      script.steps.push_back({Script::Step::kCancelFirst, t, {}, {}});
    }
    if (i % 20 == 19) {
      script.steps.push_back({Script::Step::kWatermark, t, {}, {}});
    }
  }
  return script;
}

std::map<QueryId, RowMultiset> RunScript(const Script& script, Kind kind,
                                         bool threaded, int parallelism,
                                         size_t batch_size = 1,
                                         bool use_spsc_rings = true) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = kind;
  options.parallelism = parallelism;
  options.threaded = threaded;
  options.clock = &clock;
  options.session.batch_size = 1;
  options.batch_size = batch_size;
  options.use_spsc_rings = use_spsc_rings;
  auto job = std::move(AStreamJob::Create(options)).value();
  EXPECT_TRUE(job->Start().ok());

  std::mutex mutex;
  std::map<QueryId, RowMultiset> outputs;
  job->SetResultCallback([&](QueryId id, const spe::Record& record) {
    std::lock_guard<std::mutex> lock(mutex);
    harness::AddToMultiset(&outputs[id], record.event_time, record.row);
  });

  std::vector<QueryId> ids;
  for (const auto& step : script.steps) {
    clock.SetMs(step.time);
    switch (step.what) {
      case Script::Step::kPushA:
        job->PushA(step.time, step.row);
        break;
      case Script::Step::kPushB:
        job->PushB(step.time, step.row);
        break;
      case Script::Step::kWatermark:
        job->PushWatermark(step.time);
        break;
      case Script::Step::kSubmit: {
        auto id = job->Submit(step.desc);
        EXPECT_TRUE(id.ok());
        ids.push_back(*id);
        job->Pump(true);
        break;
      }
      case Script::Step::kCancelFirst:
        EXPECT_TRUE(job->Cancel(ids.front()).ok());
        job->Pump(true);
        break;
    }
  }
  job->FinishAndWait();
  std::lock_guard<std::mutex> lock(mutex);
  return outputs;
}

class ThreadedEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ThreadedEquivalence, AggregationTopology) {
  const auto [seed, par] = GetParam();
  const Script script = MakeScript(Kind::kAggregation, seed);
  const auto sync = RunScript(script, Kind::kAggregation, false, par);
  const auto threaded = RunScript(script, Kind::kAggregation, true, par);
  EXPECT_EQ(sync, threaded);
  // And it actually produced something.
  int64_t total = 0;
  for (const auto& [id, rows] : sync) {
    for (const auto& [row, n] : rows) total += n;
  }
  EXPECT_GT(total, 0);
}

TEST_P(ThreadedEquivalence, JoinTopology) {
  const auto [seed, par] = GetParam();
  const Script script = MakeScript(Kind::kJoin, seed);
  const auto sync = RunScript(script, Kind::kJoin, false, par);
  const auto threaded = RunScript(script, Kind::kJoin, true, par);
  EXPECT_EQ(sync, threaded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 3)));

// The batched data plane must be invisible in the results: for any batch
// size, sync and threaded runs produce the per-query outputs of the
// element-at-a-time sync run — including across mid-stream Submit/Cancel
// (changelog markers are batch boundaries).
class BatchedEquivalence
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(BatchedEquivalence, AggregationTopology) {
  const auto [par, batch] = GetParam();
  const Script script = MakeScript(Kind::kAggregation, /*seed=*/7);
  const auto reference =
      RunScript(script, Kind::kAggregation, /*threaded=*/false, par);
  const auto sync_batched =
      RunScript(script, Kind::kAggregation, /*threaded=*/false, par, batch);
  const auto threaded_batched =
      RunScript(script, Kind::kAggregation, /*threaded=*/true, par, batch);
  EXPECT_EQ(reference, sync_batched);
  EXPECT_EQ(reference, threaded_batched);
  int64_t total = 0;
  for (const auto& [id, rows] : reference) {
    for (const auto& [row, n] : rows) total += n;
  }
  EXPECT_GT(total, 0);
}

TEST_P(BatchedEquivalence, JoinTopology) {
  const auto [par, batch] = GetParam();
  const Script script = MakeScript(Kind::kJoin, /*seed=*/7);
  const auto reference =
      RunScript(script, Kind::kJoin, /*threaded=*/false, par);
  const auto sync_batched =
      RunScript(script, Kind::kJoin, /*threaded=*/false, par, batch);
  const auto threaded_batched =
      RunScript(script, Kind::kJoin, /*threaded=*/true, par, batch);
  EXPECT_EQ(reference, sync_batched);
  EXPECT_EQ(reference, threaded_batched);
}

INSTANTIATE_TEST_SUITE_P(
    BatchSizes, BatchedEquivalence,
    ::testing::Combine(::testing::Values(1, 3),
                       ::testing::Values(size_t{1}, size_t{7},
                                         size_t{64})));

// The channel implementation must be invisible too: SPSC rings on internal
// edges vs. the mutex MPMC channel everywhere produce identical per-query
// outputs — with batching and CoW rows active, and across the script's
// mid-stream Submit/Cancel (per-(port,sender) FIFO keeps control elements
// aligned with records on either channel kind).
class RingEquivalence
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(RingEquivalence, AggregationTopology) {
  const auto [par, batch] = GetParam();
  const Script script = MakeScript(Kind::kAggregation, /*seed=*/11);
  const auto reference =
      RunScript(script, Kind::kAggregation, /*threaded=*/false, par);
  const auto with_rings = RunScript(script, Kind::kAggregation,
                                    /*threaded=*/true, par, batch,
                                    /*use_spsc_rings=*/true);
  const auto without_rings = RunScript(script, Kind::kAggregation,
                                       /*threaded=*/true, par, batch,
                                       /*use_spsc_rings=*/false);
  EXPECT_EQ(reference, with_rings);
  EXPECT_EQ(reference, without_rings);
  int64_t total = 0;
  for (const auto& [id, rows] : reference) {
    for (const auto& [row, n] : rows) total += n;
  }
  EXPECT_GT(total, 0);
}

TEST_P(RingEquivalence, JoinTopology) {
  const auto [par, batch] = GetParam();
  const Script script = MakeScript(Kind::kJoin, /*seed=*/11);
  const auto reference =
      RunScript(script, Kind::kJoin, /*threaded=*/false, par);
  const auto with_rings =
      RunScript(script, Kind::kJoin, /*threaded=*/true, par, batch,
                /*use_spsc_rings=*/true);
  const auto without_rings =
      RunScript(script, Kind::kJoin, /*threaded=*/true, par, batch,
                /*use_spsc_rings=*/false);
  EXPECT_EQ(reference, with_rings);
  EXPECT_EQ(reference, without_rings);
}

INSTANTIATE_TEST_SUITE_P(
    Rings, RingEquivalence,
    ::testing::Combine(::testing::Values(1, 3),
                       ::testing::Values(size_t{1}, size_t{16})));

}  // namespace
}  // namespace astream::core
