// Out-of-core equivalence: a job whose live join state far exceeds an
// 8 MiB budget must spill, keep its resident footprint bounded by the
// budget (plus one slice of slack), and still produce per-query outputs
// identical to an unbudgeted run. With spilling disabled, the same
// pressure surfaces as PushResult::kBackpressure instead.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/astream.h"
#include "harness/reference.h"

namespace astream::core {
namespace {

using harness::AddToMultiset;
using harness::RowMultiset;
using spe::Row;
using spe::Value;

constexpr int kCols = 256;      // ~2 KiB of payload per tuple
constexpr int kRows = 12000;    // ~25 MiB of live state, watermarks late

Row WideRow(int i) {
  std::vector<Value> values(kCols, i);
  values[0] = i / 2;  // join key: rows 2k (A) and 2k+1 (B) pair up exactly
  values[1] = i % 100;
  return Row(std::move(values));
}

AStreamJob::Options SpillOptions(Clock* clock, int64_t budget_bytes,
                                 bool allow_spill) {
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kJoin;
  options.parallelism = 1;
  options.threaded = false;
  options.clock = clock;
  options.session.batch_size = 1;
  options.storage.memory_budget_bytes = budget_bytes;
  options.storage.allow_spill = allow_spill;
  return options;
}

struct WorkloadResult {
  std::map<QueryId, RowMultiset> outputs;
  int64_t max_resident = 0;
  obs::MetricsRegistry::Snapshot metrics;
};

// One fixed workload: two join queries over wide tuples, watermarks every
// 2000 tuples (state accumulates deep between them), deterministic sync
// runner — the only variable across runs is the memory budget.
WorkloadResult RunWorkload(int64_t budget_bytes, bool* backpressured =
                                                     nullptr) {
  ManualClock clock;
  auto job =
      std::move(AStreamJob::Create(SpillOptions(&clock, budget_bytes,
                                                backpressured == nullptr)))
          .value();
  EXPECT_TRUE(job->Start().ok());

  WorkloadResult result;
  job->SetResultCallback([&](QueryId id, const spe::Record& record) {
    AddToMultiset(&result.outputs[id], record.event_time, record.row);
  });

  QueryDescriptor d;
  d.kind = QueryKind::kJoin;
  d.window = spe::WindowSpec::Sliding(3000, 1000);
  d.select_a = {Predicate{1, CmpOp::kLt, 1000}};  // matches everything
  EXPECT_TRUE(job->Submit(d).ok());
  QueryDescriptor narrow = d;
  narrow.window = spe::WindowSpec::Sliding(200, 100);
  narrow.select_a = {Predicate{1, CmpOp::kLt, 50}};
  EXPECT_TRUE(job->Submit(narrow).ok());
  clock.SetMs(0);
  job->Pump(true);

  for (int i = 0; i < kRows; ++i) {
    const TimestampMs t = 1 + i;
    clock.SetMs(t);
    const PushResult push = (i % 2 == 0) ? job->PushA(t, WideRow(i))
                                         : job->PushB(t, WideRow(i));
    if (push == PushResult::kBackpressure && backpressured != nullptr) {
      *backpressured = true;
      break;
    }
    EXPECT_NE(push, PushResult::kBackpressure) << "tuple " << i;
    if (i % 2500 == 2499) job->PushWatermark(t - 500);
    if (i % 500 == 499) {
      const auto snapshot = job->MetricsSnapshot();
      const auto it = snapshot.gauges.find("storage.resident_bytes");
      if (it != snapshot.gauges.end() && it->second > result.max_resident) {
        result.max_resident = it->second;
      }
    }
  }
  EXPECT_TRUE(job->FinishAndWait().ok());
  result.metrics = job->MetricsSnapshot();
  return result;
}

int64_t SpillCount(const obs::MetricsRegistry::Snapshot& snapshot) {
  const auto it = snapshot.histograms.find("storage.spill_ms");
  return it == snapshot.histograms.end() ? 0 : it->second.count;
}

TEST(SpillEquivalenceTest, BudgetedRunMatchesUnbudgetedByteForByte) {
  // Control: no storage engine at all (the pre-out-of-core code path).
  const WorkloadResult unbudgeted = RunWorkload(-1);
  ASSERT_FALSE(unbudgeted.outputs.empty());

  // A budget far above the workload: the governor watches but never
  // spills; this leg measures the true live-state peak. Scoped so its
  // (large) output multiset is freed before the budgeted leg runs.
  constexpr int64_t kBudget = 8 << 20;
  {
    const WorkloadResult huge = RunWorkload(1LL << 40);
    EXPECT_EQ(SpillCount(huge.metrics), 0);
    ASSERT_GT(huge.max_resident, kBudget + (2 << 20))
        << "workload too small to exercise the budget";
    EXPECT_EQ(huge.outputs, unbudgeted.outputs);
  }

  // The 8 MiB leg must spill — and still match the control exactly.
  const WorkloadResult budgeted = RunWorkload(kBudget);
  EXPECT_GE(SpillCount(budgeted.metrics), 1);
  EXPECT_EQ(budgeted.outputs, unbudgeted.outputs);

  // Resident state stays under budget + one slice of slack at every
  // sampled point (enforcement granularity is the coldest slice).
  const int64_t slack = 4 << 20;
  EXPECT_GT(budgeted.max_resident, 0);
  EXPECT_LE(budgeted.max_resident, kBudget + slack);

  // Spill accounting reached the obs layer.
  EXPECT_GE(budgeted.metrics.gauges.at("storage.budget_bytes"), kBudget);
}

TEST(SpillEquivalenceTest, NoSpillBudgetSurfacesAsBackpressure) {
  bool backpressured = false;
  const WorkloadResult result = RunWorkload(1 << 20, &backpressured);
  EXPECT_TRUE(backpressured);
  // Nothing was ever written to disk.
  EXPECT_EQ(SpillCount(result.metrics), 0);
  EXPECT_GE(result.metrics.counters.at("job.push_backpressure"), 1);
}

}  // namespace
}  // namespace astream::core
