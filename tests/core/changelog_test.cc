#include "core/changelog.h"

#include <gtest/gtest.h>

namespace astream::core {
namespace {

QueryDescriptor Dummy() {
  QueryDescriptor d;
  d.kind = QueryKind::kSelection;
  d.select_a = {Predicate{1, CmpOp::kLt, 500}};
  return d;
}

Changelog MakeLog(int64_t epoch, TimestampMs time,
                  std::vector<std::pair<QueryId, int>> created,
                  std::vector<std::pair<QueryId, int>> deleted,
                  size_t num_slots) {
  Changelog log;
  log.epoch = epoch;
  log.time = time;
  for (auto [id, slot] : created) {
    QueryActivation a;
    a.id = id;
    a.slot = slot;
    a.created_at = time;
    a.desc = Dummy();
    log.created.push_back(a);
  }
  for (auto [id, slot] : deleted) {
    log.deleted.push_back(QueryDeactivation{id, slot});
  }
  log.num_slots = num_slots;
  log.ComputeChangelogSet();
  return log;
}

TEST(ChangelogTest, ChangelogSetPaperFig3c) {
  // Fig. 3c: Q2 deleted, Q3 placed in its slot. Changelog-set "10": slot 0
  // (Q1) unchanged, slot 1 changed.
  const Changelog log =
      MakeLog(2, 100, {{3, 1}}, {{2, 1}}, /*num_slots=*/2);
  EXPECT_TRUE(log.changelog_set.Test(0));
  EXPECT_FALSE(log.changelog_set.Test(1));
  EXPECT_EQ(log.changelog_set.ToString(2), "10");
}

TEST(ChangelogTest, ChangelogSetPaperFig4bT5) {
  // Fig. 4a at T5: Q6 and Q7 created, Q3 deleted. Q6 takes Q3's slot (2),
  // Q7 gets a new slot (4). Changelog-set 01101 over slots 0..4 — in the
  // paper's rendering "0110 1": slots 2 and 4 changed... our slot layout:
  // active before T5: Q5(slot 0 or ...). We reproduce the *structure*:
  // deleted slot and new slots are unset, others set.
  const Changelog log = MakeLog(5, 500, {{6, 2}, {7, 4}}, {{3, 2}}, 5);
  EXPECT_TRUE(log.changelog_set.Test(0));
  EXPECT_TRUE(log.changelog_set.Test(1));
  EXPECT_FALSE(log.changelog_set.Test(2));
  EXPECT_TRUE(log.changelog_set.Test(3));
  EXPECT_FALSE(log.changelog_set.Test(4));
}

TEST(ActiveQueryTableTest, ApplyCreateDelete) {
  ActiveQueryTable table;
  ASSERT_TRUE(table.Apply(MakeLog(1, 10, {{1, 0}, {2, 1}}, {}, 2)).ok());
  EXPECT_EQ(table.num_active(), 2u);
  EXPECT_EQ(table.QueryAt(0)->id, 1);
  EXPECT_EQ(table.QueryAt(1)->id, 2);
  EXPECT_EQ(table.QueryAt(0)->created_at, 10);

  // Delete Q2, reuse slot for Q3 (Fig. 3c).
  ASSERT_TRUE(table.Apply(MakeLog(2, 20, {{3, 1}}, {{2, 1}}, 2)).ok());
  EXPECT_EQ(table.num_active(), 2u);
  EXPECT_EQ(table.QueryAt(1)->id, 3);
  EXPECT_EQ(table.FindById(2), nullptr);
  EXPECT_EQ(table.FindById(3)->slot, 1);
}

TEST(ActiveQueryTableTest, RejectsBadDeletion) {
  ActiveQueryTable table;
  ASSERT_TRUE(table.Apply(MakeLog(1, 10, {{1, 0}}, {}, 1)).ok());
  // Wrong id in slot.
  EXPECT_FALSE(table.Apply(MakeLog(2, 20, {}, {{9, 0}}, 1)).ok());
  // Empty slot.
  ActiveQueryTable t2;
  EXPECT_FALSE(t2.Apply(MakeLog(1, 10, {}, {{1, 0}}, 1)).ok());
}

TEST(ActiveQueryTableTest, RejectsOccupiedSlotCreation) {
  ActiveQueryTable table;
  ASSERT_TRUE(table.Apply(MakeLog(1, 10, {{1, 0}}, {}, 1)).ok());
  EXPECT_FALSE(table.Apply(MakeLog(2, 20, {{2, 0}}, {}, 1)).ok());
}

TEST(ActiveQueryTableTest, RejectsReplayedEpoch) {
  ActiveQueryTable table;
  ASSERT_TRUE(table.Apply(MakeLog(5, 10, {{1, 0}}, {}, 1)).ok());
  EXPECT_FALSE(table.Apply(MakeLog(5, 20, {{2, 1}}, {}, 2)).ok());
  EXPECT_FALSE(table.Apply(MakeLog(4, 20, {{2, 1}}, {}, 2)).ok());
}

TEST(ActiveQueryTableTest, SlotsWhere) {
  ActiveQueryTable table;
  Changelog log = MakeLog(1, 10, {{1, 0}, {2, 1}, {3, 2}}, {}, 3);
  log.created[1].desc.kind = QueryKind::kAggregation;
  ASSERT_TRUE(table.Apply(log).ok());
  const QuerySet aggs = table.SlotsWhere([](const ActiveQuery& q) {
    return q.desc.kind == QueryKind::kAggregation;
  });
  EXPECT_FALSE(aggs.Test(0));
  EXPECT_TRUE(aggs.Test(1));
  EXPECT_FALSE(aggs.Test(2));
}

TEST(ActiveQueryTableTest, SerializeRestoreRoundTrip) {
  ActiveQueryTable table;
  ASSERT_TRUE(table.Apply(MakeLog(1, 10, {{1, 0}, {2, 2}}, {}, 3)).ok());
  spe::StateWriter writer;
  table.Serialize(&writer);
  ActiveQueryTable restored;
  spe::StateReader reader(writer.TakeBuffer());
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_EQ(restored.num_active(), 2u);
  EXPECT_EQ(restored.num_slots(), 3u);
  EXPECT_EQ(restored.QueryAt(2)->id, 2);
  EXPECT_EQ(restored.last_epoch(), 1);
  // Epoch continuity is preserved: the next changelog must be epoch >= 2.
  EXPECT_FALSE(restored.Apply(MakeLog(1, 20, {{3, 1}}, {}, 3)).ok());
  EXPECT_TRUE(restored.Apply(MakeLog(2, 20, {{3, 1}}, {}, 3)).ok());
}

TEST(ChangelogTest, SerializeRoundTrip) {
  Changelog log = MakeLog(7, 123, {{1, 0}, {2, 1}}, {}, 2);
  spe::StateWriter writer;
  log.Serialize(&writer);
  spe::StateReader reader(writer.TakeBuffer());
  const Changelog restored = Changelog::Deserialize(&reader);
  EXPECT_EQ(restored.epoch, 7);
  EXPECT_EQ(restored.time, 123);
  EXPECT_EQ(restored.created.size(), 2u);
  EXPECT_EQ(restored.created[1].slot, 1);
  EXPECT_EQ(restored.changelog_set, log.changelog_set);
}

}  // namespace
}  // namespace astream::core
