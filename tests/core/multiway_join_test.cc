// Multiway-join equivalence (DESIGN.md §15): the n-ary shared join —
// per-stream arrangements, cost-ordered probe chains, and common
// sub-join attachment — must be invisible in the results. A fleet of
// 3- and 4-way queries over one set of streams (with churn) is run with
// sharing on, sharing off (the cascade-equivalent reference mode), under
// a 256 KiB spill budget, across a checkpoint/restore crash, and
// threaded — every leg must produce per-query outputs byte-identical to
// the offline cascade-of-binary reference evaluator and to each other.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "core/astream.h"
#include "core/query_builder.h"
#include "harness/reference.h"
#include "tests/core/e2e_harness.h"

namespace astream::core {
namespace {

using harness::RowMultiset;
using spe::Row;
using Kind = AStreamJob::TopologyKind;
using OptionsMutator = std::function<void(AStreamJob::Options*)>;

QueryDescriptor MJoin(std::vector<int> legs, spe::WindowSpec window) {
  auto b = QueryBuilder::MultiwayJoin();
  for (int s : legs) b.Input(s);
  b.Window(window);
  auto q = b.Build();
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

OptionsMutator Multiway(int streams, bool share,
                        const OptionsMutator& extra = {}) {
  return [streams, share, extra](AStreamJob::Options* o) {
    o->num_streams = streams;
    o->share_arrangements = share;
    if (extra) extra(o);
  };
}

/// The multiway fleet over four streams: two 3-way queries sharing the
/// {0,1,2} core (one with a per-leg predicate), a 4-way query whose
/// declared leg order differs from its probe chain (it attaches to the
/// shared [0,1,2] sub-join and extends it), a 2-way query on a different
/// window spec that drains mid-stream, and a late joiner. Every run
/// verifies against the offline cascade reference; the returned outputs
/// let callers also compare runs against each other byte for byte.
std::map<QueryId, RowMultiset> RunMultiwayFleet(
    const OptionsMutator& mutate, int cols = 2, int64_t* spills = nullptr,
    AStreamJob::OperatorStats* stats = nullptr) {
  E2EHarness h(Kind::kMultiway, 1, StoreMode::kGrouped, true, mutate);
  h.Submit(MJoin({0, 1, 2}, spe::WindowSpec::Tumbling(60)), 0);
  {
    auto q = QueryBuilder::MultiwayJoin()
                 .Input(0)
                 .Input(1)
                 .Input(2)
                 .WhereStream(2, 1, CmpOp::kGe, 10)
                 .TumblingWindow(60)
                 .Build();
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    h.Submit(*q, 0);
  }
  // Declared order 3,0,1,2 ≠ the cold-start probe order [0,1,2,3]: the
  // output permutation path is exercised on every trigger.
  h.Submit(MJoin({3, 0, 1, 2}, spe::WindowSpec::Tumbling(60)), 0);
  const QueryId doomed =
      h.Submit(MJoin({1, 2}, spe::WindowSpec::Sliding(60, 30)), 0);
  h.Flush(0);

  auto make_row = [&](int key, int val) {
    std::vector<spe::Value> values(static_cast<size_t>(cols), val);
    values[0] = key;
    return Row(std::move(values));
  };
  for (int i = 0; i < 60; ++i) {  // up to t ≈ 240
    for (int s = 0; s < 4; ++s) {
      h.Push(s, 2 + s + i * 4, make_row(i % 3, i + 100 * s));
    }
  }
  h.Watermark(150);
  h.Delete(doomed, 250);  // churn: the 2-way query drains mid-stream
  h.Create(MJoin({2, 3}, spe::WindowSpec::Tumbling(60)), 255);
  for (int i = 0; i < 30; ++i) {
    for (int s = 0; s < 4; ++s) {
      h.Push(s, 260 + s + i * 4, make_row(i % 3, i + 100 * s + 7));
    }
  }
  h.Watermark(500);
  if (spills != nullptr) {
    const auto snapshot = h.job()->MetricsSnapshot();
    const auto it = snapshot.histograms.find("storage.spill_ms");
    *spills = it == snapshot.histograms.end() ? 0 : it->second.count;
  }
  if (stats != nullptr) *stats = h.job()->CollectStats();
  h.FinishAndVerify();
  return h.outputs();
}

TEST(MultiwayEquivalenceTest, FleetSharingOnOffIdentical) {
  AStreamJob::OperatorStats on_stats;
  const auto on =
      RunMultiwayFleet(Multiway(4, true), 2, nullptr, &on_stats);
  // The sharing machinery actually engaged: the second 3-way query and
  // the 4-way query attached to the materialized [0,1,2] sub-join, and
  // trigger evaluation reused memoized chain prefixes.
  EXPECT_GT(on_stats.subjoins_built, 0);
  EXPECT_GE(on_stats.subjoins_attached, 2);
  EXPECT_GT(on_stats.mjoin_chains_computed, 0);
  EXPECT_GT(on_stats.mjoin_chains_reused, 0);

  AStreamJob::OperatorStats off_stats;
  const auto off =
      RunMultiwayFleet(Multiway(4, false), 2, nullptr, &off_stats);
  EXPECT_EQ(off_stats.subjoins_attached, 0);  // registry disabled end to end
  EXPECT_EQ(on, off);
  ASSERT_FALSE(on.empty());
  // Every query produced rows — the fleet isn't trivially empty.
  for (const auto& [id, rows] : on) {
    EXPECT_FALSE(rows.empty()) << "query " << id;
  }
}

TEST(MultiwayEquivalenceTest, SpillBudgetKeepsOutputsIdentical) {
  // Wide tuples (~2 KiB each) against a small budget force the per-stream
  // arrangements to shed slices (and the chain memo to be released)
  // mid-run; outputs must not move.
  const int kCols = 256;
  const auto unbudgeted = RunMultiwayFleet(Multiway(4, true), kCols);
  int64_t spills = 0;
  const auto budgeted = RunMultiwayFleet(
      Multiway(4, true,
               [](AStreamJob::Options* o) {
                 o->storage.memory_budget_bytes = 256 << 10;
               }),
      kCols, &spills);
  EXPECT_EQ(unbudgeted, budgeted);
  EXPECT_GT(spills, 0) << "budget never engaged — widen the rows";
}

// --- Checkpoint/restore: n-ary state round-trips the run-file format ----

std::map<QueryId, RowMultiset> RunMultiwayWithOptionalCrash(bool crash) {
  ManualClock clock;
  auto make_job = [&clock] {
    AStreamJob::Options options;
    options.topology = Kind::kMultiway;
    options.num_streams = 3;
    options.parallelism = 1;
    options.threaded = false;
    options.clock = &clock;
    options.session.batch_size = 1;
    options.share_arrangements = true;
    return std::move(AStreamJob::Create(options)).value();
  };
  std::map<QueryId, RowMultiset> outputs;
  auto sink = [&outputs](QueryId id, const spe::Record& record) {
    harness::AddToMultiset(&outputs[id], record.event_time, record.row);
  };

  auto job = make_job();
  EXPECT_TRUE(job->Start().ok());
  job->SetResultCallback(sink);
  clock.SetMs(0);
  EXPECT_TRUE(
      job->Submit(MJoin({0, 1, 2}, spe::WindowSpec::Tumbling(60))).ok());
  EXPECT_TRUE(
      job->Submit(MJoin({1, 2}, spe::WindowSpec::Sliding(60, 30))).ok());
  job->Pump(true);

  auto push_range = [&](AStreamJob* j, int from, int to) {
    for (int i = from; i < to; ++i) {
      for (int s = 0; s < 3; ++s) {
        const TimestampMs t = 2 + s + i * 4;
        clock.SetMs(t);
        j->Push(s, t, Row{i % 4, i + 10 * s});
      }
      if (i % 20 == 19) j->PushWatermark(2 + i * 4 - 10);
    }
  };
  push_range(job.get(), 0, 50);

  if (crash) {
    const int64_t cp = job->TriggerCheckpoint();
    auto snap = job->checkpoints().Get(cp);
    EXPECT_NE(snap, nullptr);
    EXPECT_TRUE(snap->complete);
    const spe::CheckpointStore::Checkpoint checkpoint = *snap;
    job->Stop();  // crash: post-barrier state is lost

    job = make_job();
    EXPECT_TRUE(job->Start().ok());
    EXPECT_TRUE(job->RestoreFrom(checkpoint).ok());
    job->SetResultCallback(sink);
  }

  push_range(job.get(), 50, 100);
  clock.SetMs(600);
  job->PushWatermark(600);
  EXPECT_TRUE(job->FinishAndWait().ok());
  return outputs;
}

TEST(MultiwayEquivalenceTest, CheckpointRestoreRoundTripsJoinState) {
  const auto uninterrupted = RunMultiwayWithOptionalCrash(false);
  const auto recovered = RunMultiwayWithOptionalCrash(true);
  EXPECT_EQ(uninterrupted, recovered);
  ASSERT_FALSE(uninterrupted.empty());
}

// --- Threaded: the n-ary operator under real concurrency ----------------
// (Name is the TSan filter anchor: *ThreadedMultiway*.)

std::map<QueryId, RowMultiset> RunThreadedMultiway(bool threaded, int par) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = Kind::kMultiway;
  options.num_streams = 3;
  options.parallelism = par;
  options.threaded = threaded;
  options.clock = &clock;
  options.session.batch_size = 1;
  options.share_arrangements = true;
  auto job = std::move(AStreamJob::Create(options)).value();
  EXPECT_TRUE(job->Start().ok());
  std::mutex mutex;
  std::map<QueryId, RowMultiset> outputs;
  job->SetResultCallback([&](QueryId id, const spe::Record& record) {
    std::lock_guard<std::mutex> lock(mutex);
    harness::AddToMultiset(&outputs[id], record.event_time, record.row);
  });
  clock.SetMs(0);
  EXPECT_TRUE(
      job->Submit(MJoin({0, 1, 2}, spe::WindowSpec::Tumbling(60))).ok());
  EXPECT_TRUE(
      job->Submit(MJoin({0, 2}, spe::WindowSpec::Tumbling(60))).ok());
  job->Pump(true);
  for (int i = 0; i < 120; ++i) {
    for (int s = 0; s < 3; ++s) {
      const TimestampMs t = 2 + s + i * 4;
      clock.SetMs(t);
      job->Push(s, t, Row{i % 5, i + 10 * s});
    }
    if (i % 30 == 29) job->PushWatermark(2 + i * 4 - 10);
  }
  clock.SetMs(700);
  job->PushWatermark(700);
  EXPECT_TRUE(job->FinishAndWait().ok());
  std::lock_guard<std::mutex> lock(mutex);
  return outputs;
}

TEST(MultiwayEquivalenceTest, ThreadedMultiwayFleetMatchesSync) {
  const auto sync = RunThreadedMultiway(false, 2);
  const auto threaded = RunThreadedMultiway(true, 2);
  EXPECT_EQ(sync, threaded);
  ASSERT_FALSE(sync.empty());
}

}  // namespace
}  // namespace astream::core
