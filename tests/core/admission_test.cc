// Admission control (DESIGN.md §14): deterministic tests of the Submit
// gate — rejection, queueing, auto-admission on headroom, the p99 gate,
// cost metering exports, and the Create-time validation of SloOptions.

#include <gtest/gtest.h>

#include <memory>

#include "core/astream.h"

namespace astream::core {
namespace {

QueryDescriptor Minnow(int col = 1) {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.select_a = {Predicate{col, CmpOp::kLt, 500}};
  d.window = spe::WindowSpec::Tumbling(400);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

QueryDescriptor Whale() {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.select_a = {Predicate{1, CmpOp::kGe, 0}};
  d.window = spe::WindowSpec::Sliding(1600, 100);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

class AdmissionTest : public ::testing::Test {
 protected:
  void MakeJob(const SloOptions& slo) {
    AStreamJob::Options options;
    options.topology = AStreamJob::TopologyKind::kAggregation;
    options.threaded = false;
    options.clock = &clock_;
    options.session.batch_size = 1;
    options.enable_trace = false;
    options.slo = slo;
    auto job = AStreamJob::Create(options);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    job_ = std::move(job).value();
    ASSERT_TRUE(job_->Start().ok());
  }

  AStreamJob::SubmitOutcome Submit(const QueryDescriptor& desc) {
    auto outcome = job_->SubmitWithOutcome(desc);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? *outcome : AStreamJob::SubmitOutcome{};
  }

  ManualClock clock_;
  std::unique_ptr<AStreamJob> job_;
};

TEST_F(AdmissionTest, DisabledAdmitsEverything) {
  MakeJob(SloOptions{});  // enforcement off: the pre-isolation behavior
  for (int i = 0; i < 32; ++i) {
    const auto outcome = Submit(Minnow(1 + i % 5));
    EXPECT_EQ(outcome.decision, AdmissionDecision::kAdmitted);
    EXPECT_NE(outcome.id, -1);
  }
  EXPECT_EQ(job_->NumQueuedQueries(), 0u);
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST_F(AdmissionTest, MaxActiveQueuesThenAdmitsAfterCancel) {
  SloOptions slo;
  slo.enable_admission = true;
  slo.max_active_queries = 2;
  MakeJob(slo);

  const auto a = Submit(Minnow(1));
  const auto b = Submit(Minnow(2));
  EXPECT_EQ(a.decision, AdmissionDecision::kAdmitted);
  EXPECT_EQ(b.decision, AdmissionDecision::kAdmitted);

  // Third submit: queued with a real id (so the caller can Cancel it).
  const auto c = Submit(Minnow(3));
  EXPECT_EQ(c.decision, AdmissionDecision::kQueued);
  EXPECT_NE(c.id, -1);
  EXPECT_FALSE(c.reason.empty());
  EXPECT_EQ(job_->NumQueuedQueries(), 1u);
  EXPECT_EQ(job_->session().ActiveIds().size(), 2u);

  // Headroom returns -> the queued query deploys on the next Pump, under
  // the id assigned at submit time.
  ASSERT_TRUE(job_->Cancel(a.id).ok());
  job_->Pump(true);
  EXPECT_EQ(job_->NumQueuedQueries(), 0u);
  const auto active = job_->session().ActiveIds();
  EXPECT_NE(std::find(active.begin(), active.end(), c.id), active.end());
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST_F(AdmissionTest, OversizedQueryRejectedOutright) {
  SloOptions slo;
  slo.enable_admission = true;
  slo.max_predicted_cost = 0.5;  // ShapeCost is always >= 1
  MakeJob(slo);

  const auto outcome = Submit(Whale());
  EXPECT_EQ(outcome.decision, AdmissionDecision::kRejected);
  EXPECT_EQ(outcome.id, -1);
  EXPECT_FALSE(outcome.reason.empty());
  EXPECT_GE(outcome.predicted_cost, 1.0);

  // Plain Submit surfaces the same policy decision as a typed status.
  const auto id = job_->Submit(Whale());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kAdmissionRejected);
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST_F(AdmissionTest, QueueOverflowRejects) {
  SloOptions slo;
  slo.enable_admission = true;
  slo.max_active_queries = 1;
  slo.max_queued = 2;
  MakeJob(slo);

  EXPECT_EQ(Submit(Minnow(1)).decision, AdmissionDecision::kAdmitted);
  EXPECT_EQ(Submit(Minnow(2)).decision, AdmissionDecision::kQueued);
  EXPECT_EQ(Submit(Minnow(3)).decision, AdmissionDecision::kQueued);
  EXPECT_EQ(Submit(Minnow(4)).decision, AdmissionDecision::kRejected);

  const auto snap = job_->MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("admission.queued"), 2);
  EXPECT_EQ(snap.counters.at("admission.rejected"), 1);
  EXPECT_EQ(snap.counters.at("admission.desharings"), 0);
  EXPECT_EQ(snap.gauges.at("admission.queued_now"), 2);
  EXPECT_EQ(snap.gauges.at("admission.active_queries"), 1);
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST_F(AdmissionTest, CancelDrainsQueuedQuery) {
  SloOptions slo;
  slo.enable_admission = true;
  slo.max_active_queries = 1;
  MakeJob(slo);

  const auto a = Submit(Minnow(1));
  const auto q = Submit(Minnow(2));
  ASSERT_EQ(q.decision, AdmissionDecision::kQueued);
  ASSERT_TRUE(job_->Cancel(q.id).ok());
  EXPECT_EQ(job_->NumQueuedQueries(), 0u);

  // The cancelled entry must never deploy, even once headroom returns.
  ASSERT_TRUE(job_->Cancel(a.id).ok());
  job_->Pump(true);
  const auto active = job_->session().ActiveIds();
  EXPECT_EQ(std::find(active.begin(), active.end(), q.id), active.end());
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST_F(AdmissionTest, TotalCostBudgetQueues) {
  SloOptions slo;
  slo.enable_admission = true;
  // A tumbling aggregation shapes to cost 2; budget fits exactly one.
  slo.max_total_cost = 3;
  MakeJob(slo);

  EXPECT_EQ(Submit(Minnow(1)).decision, AdmissionDecision::kAdmitted);
  EXPECT_EQ(Submit(Minnow(2)).decision, AdmissionDecision::kQueued);
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST_F(AdmissionTest, P99GateQueuesWhileSloViolated) {
  SloOptions slo;
  slo.enable_admission = true;
  // Under the ManualClock every emitted window is at least watermark-lag
  // late, so the gate reads "violated" as soon as outputs flow.
  slo.p99_event_latency_ms = 1;
  MakeJob(slo);

  EXPECT_EQ(Submit(Minnow(1)).decision, AdmissionDecision::kAdmitted);
  job_->Pump(true);
  for (int t = 0; t < 20; ++t) {
    const TimestampMs now = (t + 1) * 100;
    clock_.SetMs(now);
    job_->PushA(now, spe::Row{1, 10});
    job_->PushWatermark(now - 50);
    job_->Pump(true);
  }
  const auto late = Submit(Minnow(2));
  EXPECT_EQ(late.decision, AdmissionDecision::kQueued);
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST_F(AdmissionTest, MeteredCostsExported) {
  SloOptions slo;
  slo.enable_admission = true;  // implies meter_costs
  MakeJob(slo);

  const auto a = Submit(Minnow(1));
  job_->Pump(true);
  for (int t = 0; t < 10; ++t) {
    const TimestampMs now = (t + 1) * 100;
    clock_.SetMs(now);
    job_->PushA(now, spe::Row{1, 7});
    job_->PushWatermark(now - 50);
    job_->Pump(true);
  }
  const auto costs = job_->MeteredCosts();
  ASSERT_TRUE(costs.count(a.id));
  EXPECT_GT(costs.at(a.id), 0);

  const auto snap = job_->MetricsSnapshot();
  const std::string prefix = "query." + std::to_string(a.id) + ".";
  ASSERT_TRUE(snap.gauges.count(prefix + "cost_rows"));
  EXPECT_GT(snap.gauges.at(prefix + "cost_rows"), 0);
  ASSERT_TRUE(snap.gauges.count(prefix + "cost_state_bytes"));
  EXPECT_TRUE(job_->FinishAndWait().ok());
}

TEST(AdmissionValidationTest, DesharingRequiresAdmission) {
  AStreamJob::Options options;
  options.slo.enable_desharing = true;  // without enable_admission
  const auto job = AStreamJob::Create(options);
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdmissionValidationTest, BadFractionsRejected) {
  AStreamJob::Options options;
  options.slo.enable_admission = true;
  options.slo.enable_desharing = true;
  options.slo.whale_cost_fraction = 0;
  EXPECT_FALSE(AStreamJob::Create(options).ok());
  options.slo.whale_cost_fraction = 0.5;
  options.slo.readmit_cost_fraction = 1.5;
  EXPECT_FALSE(AStreamJob::Create(options).ok());
  options.slo.readmit_cost_fraction = 0.25;
  options.slo.p99_event_latency_ms = -1;
  EXPECT_FALSE(AStreamJob::Create(options).ok());
}

}  // namespace
}  // namespace astream::core
