// End-to-end checks of the per-query observability layer: the metric
// series recorded inside the shared operators must agree with what the
// router actually shipped, in both sync and threaded modes; the
// submit/push API must report lifecycle misuse as typed results.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "core/astream.h"
#include "core/query_builder.h"
#include "obs/trace.h"

namespace astream::core {
namespace {

using spe::Row;
using Kind = AStreamJob::TopologyKind;

std::unique_ptr<AStreamJob> MakeJob(Kind kind, bool threaded,
                                    ManualClock* clock,
                                    bool enable_metrics = true) {
  AStreamJob::Options options;
  options.topology = kind;
  options.parallelism = 2;
  options.threaded = threaded;
  options.clock = clock;
  options.session.batch_size = 1000;
  options.session.max_timeout_ms = 1 << 30;
  options.enable_metrics = enable_metrics;
  auto job = AStreamJob::Create(options);
  EXPECT_TRUE(job.ok()) << job.status().ToString();
  return std::move(job).value();
}

/// Streams a deterministic aggregation workload through `job` and returns
/// the per-query output counts observed at the result callback.
std::map<QueryId, int64_t> RunAggregationWorkload(AStreamJob* job,
                                                  ManualClock* clock,
                                                  std::vector<QueryId>* ids) {
  std::mutex mu;
  std::map<QueryId, int64_t> sink_counts;
  job->SetResultCallback([&](QueryId id, const spe::Record&) {
    std::lock_guard<std::mutex> lock(mu);
    ++sink_counts[id];
  });

  ids->push_back(*job->Submit(*QueryBuilder::Aggregation()
                                   .WhereA(1, CmpOp::kLt, 80)
                                   .SlidingWindow(100, 50)
                                   .Agg(spe::AggKind::kSum, 1)
                                   .Build()));
  ids->push_back(*job->Submit(*QueryBuilder::Aggregation()
                                   .TumblingWindow(60)
                                   .Agg(spe::AggKind::kCount, 1)
                                   .Build()));
  job->Pump(true);
  EXPECT_TRUE(job->WaitForDeployment());

  Rng rng(17);
  TimestampMs t = 1;
  for (int i = 0; i < 600; ++i) {
    t += rng.UniformInt(1, 3);
    clock->SetMs(t);
    job->PushA(t, Row{rng.UniformInt(0, 5), rng.UniformInt(0, 99)});
    if (i % 25 == 24) job->PushWatermark(t);
  }
  job->FinishAndWait();
  std::lock_guard<std::mutex> lock(mu);
  return sink_counts;
}

void CheckMetricsMatchRouter(bool threaded) {
  ManualClock clock;
  auto job = MakeJob(Kind::kAggregation, threaded, &clock);
  ASSERT_TRUE(job->Start().ok());
  std::vector<QueryId> ids;
  const auto sink_counts = RunAggregationWorkload(job.get(), &clock, &ids);

  const auto snap = job->MetricsSnapshot();
  for (QueryId id : ids) {
    ASSERT_EQ(snap.queries.count(id), 1u) << "query " << id;
    const auto& series = snap.queries.at(id);
    const auto it = sink_counts.find(id);
    const int64_t at_sink = it == sink_counts.end() ? 0 : it->second;
    // Router-side counter == records the sink callback saw == qos tally.
    EXPECT_EQ(series.records_emitted, at_sink) << "query " << id;
    EXPECT_EQ(series.records_emitted, job->qos().OutputsOf(id))
        << "query " << id;
    // Every emitted record passed through the event-latency histogram.
    EXPECT_EQ(series.event_latency_ms.count, series.records_emitted);
    // Exactly one deployment (the create) was acked for each query.
    EXPECT_EQ(series.deploy_latency_ms.count, 1) << "query " << id;
    EXPECT_GT(series.records_emitted, 0) << "query " << id;
  }

  // The shared selection's named counters saw every pushed record once.
  ASSERT_EQ(snap.counters.count("selection.a.records_in"), 1u);
  EXPECT_EQ(snap.counters.at("selection.a.records_in"), 600);
  EXPECT_EQ(snap.counters.at("selection.a.records_out") +
                snap.counters.at("selection.a.records_dropped"),
            600);
}

TEST(MetricsE2E, SyncPerQueryCountsMatchRouterOutputs) {
  CheckMetricsMatchRouter(/*threaded=*/false);
}

TEST(MetricsE2E, ThreadedPerQueryCountsMatchRouterOutputs) {
  CheckMetricsMatchRouter(/*threaded=*/true);
}

TEST(MetricsE2E, JoinSliceReuseIsAttributed) {
  ManualClock clock;
  auto job = MakeJob(Kind::kJoin, /*threaded=*/false, &clock);
  ASSERT_TRUE(job->Start().ok());
  // Two identical join queries: the second one's windows trigger on the
  // same slice pairs, so its results must come from the memo (reuse).
  const auto desc = *QueryBuilder::Join().TumblingWindow(100).Build();
  const QueryId q1 = *job->Submit(desc);
  const QueryId q2 = *job->Submit(desc);
  job->Pump(true);

  Rng rng(5);
  TimestampMs t = 1;
  for (int i = 0; i < 300; ++i) {
    t += rng.UniformInt(1, 3);
    clock.SetMs(t);
    const Row row{rng.UniformInt(0, 3), rng.UniformInt(0, 99)};
    if (i % 2 == 0) {
      job->PushA(t, row);
    } else {
      job->PushB(t, row);
    }
    if (i % 25 == 24) job->PushWatermark(t);
  }
  job->FinishAndWait();

  const auto snap = job->MetricsSnapshot();
  ASSERT_EQ(snap.queries.count(q1), 1u);
  ASSERT_EQ(snap.queries.count(q2), 1u);
  const auto& s1 = snap.queries.at(q1);
  const auto& s2 = snap.queries.at(q2);
  EXPECT_GT(s1.records_emitted, 0);
  EXPECT_EQ(s1.records_emitted, s2.records_emitted);
  // One of the twins paid the slice computations; across both queries
  // every triggered pair beyond the first toucher was a reuse.
  EXPECT_GT(s1.slices_computed + s2.slices_computed, 0);
  EXPECT_GT(s1.slices_reused + s2.slices_reused, 0);
}

TEST(MetricsE2E, SubmitBeforeStartIsFailedPrecondition) {
  ManualClock clock;
  auto job = MakeJob(Kind::kAggregation, /*threaded=*/false, &clock);
  const auto result = job->Submit(
      *QueryBuilder::Aggregation().TumblingWindow(100).Build());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().ToString().find("before Start"),
            std::string::npos)
      << result.status().ToString();
}

TEST(MetricsE2E, SubmitOnFinishedJobIsFailedPrecondition) {
  ManualClock clock;
  auto job = MakeJob(Kind::kAggregation, /*threaded=*/false, &clock);
  ASSERT_TRUE(job->Start().ok());
  job->FinishAndWait();
  const auto result = job->Submit(
      *QueryBuilder::Aggregation().TumblingWindow(100).Build());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().ToString().find("finished"), std::string::npos)
      << result.status().ToString();
  // Cancel is guarded the same way.
  EXPECT_EQ(job->Cancel(1).code(), StatusCode::kFailedPrecondition);
}

TEST(MetricsE2E, SubmitOnStoppedJobIsFailedPrecondition) {
  ManualClock clock;
  auto job = MakeJob(Kind::kAggregation, /*threaded=*/false, &clock);
  ASSERT_TRUE(job->Start().ok());
  job->Stop();
  const auto result = job->Submit(
      *QueryBuilder::Aggregation().TumblingWindow(100).Build());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MetricsE2E, PushResultDistinguishesDropCauses) {
  ManualClock clock;
  auto job = MakeJob(Kind::kAggregation, /*threaded=*/false, &clock);

  // Not started yet: permanent refusal, not backpressure.
  EXPECT_EQ(job->PushA(1, Row{0, 1}), PushResult::kShutdown);

  ASSERT_TRUE(job->Start().ok());
  clock.SetMs(100);
  EXPECT_EQ(job->PushA(100, Row{0, 1}), PushResult::kAccepted);
  // Aggregation topology has no stream B.
  EXPECT_EQ(job->PushB(100, Row{0, 1}), PushResult::kShutdown);

  // Flush a changelog at t=200; a tuple behind the marker is clamped.
  ASSERT_TRUE(
      job->Submit(*QueryBuilder::Aggregation().TumblingWindow(100).Build())
          .ok());
  clock.SetMs(200);
  job->Pump(true);
  EXPECT_EQ(job->PushA(50, Row{0, 1}), PushResult::kLateClamped);
  EXPECT_EQ(job->PushA(300, Row{0, 1}), PushResult::kAccepted);

  job->FinishAndWait();
  // Finished: permanently refused again.
  EXPECT_EQ(job->PushA(400, Row{0, 1}), PushResult::kShutdown);

  const auto snap = job->MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("job.push_accepted"), 2);
  EXPECT_EQ(snap.counters.at("job.push_clamped"), 1);
  // Shutdown refusals are tallied separately — none of them count as
  // backpressure (the sync runner never exerts any here).
  EXPECT_EQ(snap.counters.at("job.push_backpressure"), 0);
  EXPECT_EQ(snap.counters.at("job.push_shutdown"), 3);
}

TEST(MetricsE2E, TraceRecordsLifecycleInOrder) {
  ManualClock clock;
  auto job = MakeJob(Kind::kAggregation, /*threaded=*/false, &clock);
  ASSERT_TRUE(job->Start().ok());

  const QueryId id = *job->Submit(
      *QueryBuilder::Aggregation().TumblingWindow(50).Build());
  job->Pump(true);
  ASSERT_TRUE(job->WaitForDeployment());

  for (TimestampMs t = 1; t <= 200; t += 5) {
    clock.SetMs(t);
    job->PushA(t, Row{0, 1});
    if (t % 50 == 1) job->PushWatermark(t);
  }
  ASSERT_TRUE(job->Cancel(id).ok());
  job->Pump(true);
  job->FinishAndWait();

  // Lifecycle events of `id` in causal order, job-level events around them.
  std::vector<obs::TraceEventKind> kinds;
  for (const auto& e : job->trace().Events()) {
    if (e.query == id || e.kind == obs::TraceEventKind::kChangelogFlush ||
        e.kind == obs::TraceEventKind::kFinish) {
      kinds.push_back(e.kind);
    }
  }
  auto index_of = [&](obs::TraceEventKind k) {
    for (size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == k) return static_cast<ptrdiff_t>(i);
    }
    return ptrdiff_t{-1};
  };
  const auto submit = index_of(obs::TraceEventKind::kSubmit);
  const auto flush = index_of(obs::TraceEventKind::kChangelogFlush);
  const auto ack = index_of(obs::TraceEventKind::kDeployAck);
  const auto first = index_of(obs::TraceEventKind::kFirstResult);
  const auto cancel = index_of(obs::TraceEventKind::kCancel);
  const auto finish = index_of(obs::TraceEventKind::kFinish);
  ASSERT_GE(submit, 0);
  ASSERT_GE(flush, 0);
  ASSERT_GE(ack, 0);
  ASSERT_GE(first, 0);
  ASSERT_GE(cancel, 0);
  ASSERT_GE(finish, 0);
  EXPECT_LT(submit, flush);
  EXPECT_LT(flush, ack);
  EXPECT_LT(ack, first);
  EXPECT_LT(first, cancel);
  EXPECT_LT(cancel, finish);
}

TEST(MetricsE2E, DisabledRegistryStillProducesResults) {
  ManualClock clock;
  auto job = MakeJob(Kind::kAggregation, /*threaded=*/false, &clock,
                     /*enable_metrics=*/false);
  ASSERT_TRUE(job->Start().ok());
  std::vector<QueryId> ids;
  const auto sink_counts = RunAggregationWorkload(job.get(), &clock, &ids);
  int64_t total = 0;
  for (const auto& [id, n] : sink_counts) total += n;
  EXPECT_GT(total, 0);
  EXPECT_TRUE(job->MetricsSnapshot().queries.empty());
}

}  // namespace
}  // namespace astream::core
