// De-sharing (DESIGN.md §14): the IsolationManager must keep every
// query's output byte-identical to the never-migrated shared plan across
// whale ejection, hand-back, and cancellation — every window emitted
// exactly once, by exactly one of the two jobs.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/astream.h"
#include "core/isolation.h"
#include "harness/reference.h"

namespace astream::core {
namespace {

QueryDescriptor Minnow(int index) {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.select_a = {Predicate{1, CmpOp::kLt, 600 + 100 * index}};
  d.window = spe::WindowSpec::Tumbling(400);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

QueryDescriptor Whale() {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.select_a = {Predicate{1, CmpOp::kGe, 0}};
  d.window = spe::WindowSpec::Sliding(800, 200);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

enum class Mode {
  kShared,        // plain job: the byte-identity reference
  kSharedCancel,  // plain job cancelling the whale: cancel reference
  kEject,         // eject mid-run, stay de-shared to the end
  kEjectReadmit,  // eject, then hand back into the shared plan
  kEjectCancel,   // eject, then cancel the whale while de-shared
};

struct RunResult {
  std::map<QueryId, harness::RowMultiset> outputs;
  QueryId whale_id = -1;
  int64_t desharings = 0;
  bool dedicated_alive_at_end = false;
};

constexpr TimestampMs kTick = 50;
constexpr int kTicks = 60;
constexpr int kEjectTick = 20;
constexpr int kActTick = 35;  // readmit / cancel

RunResult Drive(Mode mode) {
  RunResult result;
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  options.threaded = false;
  options.clock = &clock;
  options.session.batch_size = 1;
  options.enable_trace = false;
  const bool isolate =
      mode != Mode::kShared && mode != Mode::kSharedCancel;
  if (isolate) options.slo.enable_admission = true;
  auto job_or = AStreamJob::Create(options);
  EXPECT_TRUE(job_or.ok()) << job_or.status().ToString();
  std::unique_ptr<AStreamJob> job = std::move(job_or).value();
  EXPECT_TRUE(job->Start().ok());
  // Declared after `job`: the manager (whose primary callback captures
  // it) must destruct before the job.
  std::unique_ptr<IsolationManager> iso;
  if (isolate) iso = std::make_unique<IsolationManager>(job.get());

  const auto callback = [&result](QueryId id, const spe::Record& record) {
    harness::AddToMultiset(&result.outputs[id], record.event_time,
                           record.row);
  };
  if (iso != nullptr) {
    iso->SetResultCallback(callback);
  } else {
    job->SetResultCallback(callback);
  }

  const auto submit = [&](const QueryDescriptor& desc) {
    auto id = iso != nullptr ? iso->Submit(desc) : job->Submit(desc);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? *id : -1;
  };

  clock.SetMs(0);
  submit(Minnow(0));
  submit(Minnow(1));
  result.whale_id = submit(Whale());
  if (iso != nullptr) {
    iso->Pump(true);
  } else {
    job->Pump(true);
  }

  bool whale_cancelled = false;
  for (int tick = 0; tick < kTicks; ++tick) {
    const TimestampMs now = (tick + 1) * kTick;
    clock.SetMs(now);
    // Deterministic arithmetic data: both runs push byte-identical rows.
    for (int i = 0; i < 4; ++i) {
      const spe::Row row{(tick * 4 + i) % 5, 10 + tick};
      const TimestampMs t = now - kTick + 1 + i * (kTick / 4);
      if (iso != nullptr) {
        iso->PushA(t, row);
      } else {
        job->PushA(t, row);
      }
    }
    const TimestampMs wm = now - 100;
    if (wm > 0) {
      if (iso != nullptr) {
        iso->PushWatermark(wm);
      } else {
        job->PushWatermark(wm);
      }
    }
    if (iso != nullptr) {
      iso->Pump(true);
    } else {
      job->Pump(true);
    }

    if (iso != nullptr && tick == kEjectTick) {
      const Status s = iso->EjectWhale(result.whale_id);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_TRUE(iso->HasDedicated());
      EXPECT_EQ(iso->whale(), result.whale_id);
    }
    if (iso != nullptr && tick == kActTick) {
      if (mode == Mode::kEjectReadmit) {
        const Status s = iso->BeginReadmit();
        EXPECT_TRUE(s.ok()) << s.ToString();
      } else if (mode == Mode::kEjectCancel) {
        const Status s = iso->Cancel(result.whale_id);
        EXPECT_TRUE(s.ok()) << s.ToString();
        EXPECT_FALSE(iso->HasDedicated());
        whale_cancelled = true;
      }
    }
    if (mode == Mode::kSharedCancel && tick == kActTick) {
      // Reference for the cancel scenario: same deletion marker time.
      EXPECT_TRUE(job->Cancel(result.whale_id).ok());
      job->Pump(true);
    }
    if (iso != nullptr) {
      const Status s = iso->Maintain();
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    EXPECT_TRUE(job->Health().ok());
  }

  // Drain every open window wherever it lives (primary or dedicated).
  const TimestampMs final_wm = kTicks * kTick + 800 + 400 + 100 + kTick;
  clock.SetMs(final_wm);
  if (iso != nullptr) {
    iso->PushWatermark(final_wm);
    iso->Pump(true);
    EXPECT_TRUE(iso->Maintain().ok());
    result.desharings = iso->desharings();
    result.dedicated_alive_at_end = iso->HasDedicated();
  } else {
    job->PushWatermark(final_wm);
    job->Pump(true);
  }
  EXPECT_TRUE(job->FinishAndWait().ok());
  (void)whale_cancelled;
  return result;
}

TEST(IsolationTest, EjectionIsByteIdentical) {
  const RunResult ref = Drive(Mode::kShared);
  const RunResult ejected = Drive(Mode::kEject);
  EXPECT_EQ(ejected.desharings, 1);
  EXPECT_TRUE(ejected.dedicated_alive_at_end);
  ASSERT_EQ(ref.whale_id, ejected.whale_id);
  EXPECT_EQ(ref.outputs, ejected.outputs);
  // The whale kept producing from its dedicated job.
  ASSERT_TRUE(ejected.outputs.count(ejected.whale_id));
  EXPECT_FALSE(ejected.outputs.at(ejected.whale_id).empty());
}

TEST(IsolationTest, ReadmissionHandsBackByteIdentical) {
  const RunResult ref = Drive(Mode::kShared);
  const RunResult handed = Drive(Mode::kEjectReadmit);
  EXPECT_EQ(handed.desharings, 1);
  // The hand-back completed: the dedicated job drained and died.
  EXPECT_FALSE(handed.dedicated_alive_at_end);
  EXPECT_EQ(ref.outputs, handed.outputs);
}

TEST(IsolationTest, CancelWhaleWhileEjected) {
  const RunResult ref = Drive(Mode::kSharedCancel);
  const RunResult cancelled = Drive(Mode::kEjectCancel);
  EXPECT_EQ(cancelled.desharings, 1);
  EXPECT_FALSE(cancelled.dedicated_alive_at_end);
  // Minnows are untouched by the whale's ejection + cancellation.
  for (const auto& [id, rows] : ref.outputs) {
    if (id == ref.whale_id) continue;
    ASSERT_TRUE(cancelled.outputs.count(id)) << "query " << id;
    EXPECT_EQ(cancelled.outputs.at(id), rows) << "query " << id;
  }
  // The whale's windows ending at or before the deletion marker drained
  // exactly once (from the dedicated job).
  ASSERT_TRUE(ref.outputs.count(ref.whale_id));
  EXPECT_EQ(cancelled.outputs.at(cancelled.whale_id),
            ref.outputs.at(ref.whale_id));
}

TEST(IsolationTest, EjectRequiresKnownQuery) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  options.clock = &clock;
  options.session.batch_size = 1;
  options.enable_trace = false;
  options.slo.enable_admission = true;
  auto job = std::move(AStreamJob::Create(options)).value();
  ASSERT_TRUE(job->Start().ok());
  IsolationManager iso(job.get());
  EXPECT_FALSE(iso.EjectWhale(7).ok());      // never submitted
  EXPECT_FALSE(iso.BeginReadmit().ok());     // nothing de-shared
  EXPECT_TRUE(job->FinishAndWait().ok());
}

}  // namespace
}  // namespace astream::core
