// Submit/Cancel racing a backpressured or shut-down job: the control
// plane must stay functional while the data plane refuses tuples
// (kBackpressure under a no-spill memory budget, kShutdown after Stop),
// in both the deterministic sync runner and the threaded runner.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/astream.h"

namespace astream::core {
namespace {

QueryDescriptor WideAgg(int index) {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.select_a = {Predicate{1, CmpOp::kLt, 900 + index}};
  d.window = spe::WindowSpec::Sliding(2000, 500);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

spe::Row WideRow(int i) {
  // Unique key per row: every tuple opens a fresh accumulator in each
  // aggregation's slice state, so retained bytes grow with every push.
  std::vector<spe::Value> values(16, i % 500);
  values[0] = i;
  return spe::Row(std::move(values));
}

TEST(BackpressureRaceTest, SubmitCancelWhileBackpressured) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  options.threaded = false;
  options.clock = &clock;
  options.session.batch_size = 1;
  options.enable_trace = false;
  // Tiny budget, spilling forbidden: pushes hit kBackpressure once the
  // retained state overflows.
  options.storage.memory_budget_bytes = 32 * 1024;
  options.storage.allow_spill = false;
  auto job = std::move(AStreamJob::Create(options)).value();
  ASSERT_TRUE(job->Start().ok());
  ASSERT_TRUE(job->Submit(WideAgg(0)).ok());
  clock.SetMs(0);
  job->Pump(true);

  int64_t outputs = 0;
  job->SetResultCallback(
      [&outputs](QueryId, const spe::Record&) { ++outputs; });

  // Push until the budget pushes back.
  TimestampMs t = 0;
  bool backpressured = false;
  for (int i = 0; i < 20000 && !backpressured; ++i) {
    t = 1 + i;
    clock.SetMs(t);
    backpressured = job->PushA(t, WideRow(i)) == PushResult::kBackpressure;
  }
  ASSERT_TRUE(backpressured);

  // The data plane is refusing tuples; the control plane must not.
  const auto added = job->Submit(WideAgg(1));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE(job->Cancel(*added).ok());
  const auto kept = job->Submit(WideAgg(2));
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  job->Pump(true);
  ASSERT_TRUE(job->Health().ok());

  // Draining the open windows releases state; acceptance returns.
  bool accepted_again = false;
  for (int round = 0; round < 16 && !accepted_again; ++round) {
    job->PushWatermark(t);
    job->Pump(true);
    t += 500;
    clock.SetMs(t);
    accepted_again = job->PushA(t, WideRow(0)) == PushResult::kAccepted;
  }
  EXPECT_TRUE(accepted_again);
  EXPECT_GT(outputs, 0);
  EXPECT_GE(job->MetricsSnapshot().counters.at("job.push_backpressure"),
            1);
  EXPECT_TRUE(job->FinishAndWait().ok());
}

TEST(BackpressureRaceTest, ShutdownInterleavings) {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  options.threaded = false;
  options.clock = &clock;
  options.session.batch_size = 1;
  options.enable_trace = false;
  auto job = std::move(AStreamJob::Create(options)).value();

  // Before Start(): permanent refusal, not transient backpressure.
  EXPECT_EQ(job->PushA(1, spe::Row{0, 1}), PushResult::kShutdown);
  EXPECT_FALSE(job->Submit(WideAgg(0)).ok());

  ASSERT_TRUE(job->Start().ok());
  const auto id = job->Submit(WideAgg(0));
  ASSERT_TRUE(id.ok());
  clock.SetMs(1);
  job->Pump(true);
  EXPECT_EQ(job->PushA(1, spe::Row{0, 1}), PushResult::kAccepted);

  ASSERT_TRUE(job->Stop().ok());
  // After Stop(): pushes report kShutdown, control ops fail cleanly, and
  // none of it crashes or corrupts health.
  EXPECT_EQ(job->PushA(2, spe::Row{0, 1}), PushResult::kShutdown);
  EXPECT_EQ(job->PushB(2, spe::Row{0, 1}), PushResult::kShutdown);
  EXPECT_FALSE(job->Submit(WideAgg(1)).ok());
  EXPECT_FALSE(job->Cancel(*id).ok());
  EXPECT_TRUE(job->Health().ok());
}

TEST(BackpressureRaceTest, ThreadedSubmitCancelChurnUnderLoad) {
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  options.threaded = true;
  options.parallelism = 2;
  options.session.batch_size = 1;
  options.enable_trace = false;
  // Small channels: the control thread's pushes run ahead of the workers
  // and the facade absorbs the resulting backpressure.
  options.channel_capacity = 4;
  auto job = std::move(AStreamJob::Create(options)).value();
  ASSERT_TRUE(job->Start().ok());

  std::atomic<int64_t> outputs{0};
  job->SetResultCallback(
      [&outputs](QueryId, const spe::Record&) { ++outputs; });

  // One control thread (the facade contract) interleaving data with
  // submit/cancel churn; sink threads deliver results concurrently.
  QueryId live = -1;
  ASSERT_TRUE(job->Submit(WideAgg(0)).ok());
  for (int i = 0; i < 4000; ++i) {
    const TimestampMs t = 1 + i;
    const PushResult push = job->PushA(t, WideRow(i));
    EXPECT_NE(push, PushResult::kShutdown) << "tuple " << i;
    if (i % 400 == 399) {
      if (live != -1) {
        ASSERT_TRUE(job->Cancel(live).ok());
      }
      auto id = job->Submit(WideAgg(1 + i % 3));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      live = *id;
      job->Pump(true);
    }
    if (i % 250 == 249) job->PushWatermark(t - 100);
  }
  EXPECT_TRUE(job->FinishAndWait().ok());
  EXPECT_TRUE(job->Health().ok());
  EXPECT_GT(outputs.load(), 0);
}

}  // namespace
}  // namespace astream::core
