// Exactly-once under induced failures and ad-hoc query churn: a supervised
// threaded job with seeded fault injection (operator crashes, a snapshot
// failure, a drop-to-closed channel, random push delays) must produce
// per-query output multisets byte-identical to a fault-free sync reference
// run of the same script — for every injector seed.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "core/astream.h"
#include "fault/injector.h"
#include "harness/reference.h"
#include "harness/supervised_job.h"

namespace astream::harness {
namespace {

using core::AStreamJob;
using core::CmpOp;
using core::Predicate;
using core::QueryDescriptor;
using core::QueryId;
using core::QueryKind;
using spe::Row;

struct ChaosScript {
  struct Step {
    enum What {
      kPushA,
      kPushB,
      kWatermark,
      kSubmit,
      kCancel,
      kCheckpoint,
    };
    What what = kPushA;
    TimestampMs time = 0;
    Row row;
    QueryDescriptor desc;
    int cancel_index = 0;  // index into submission order
  };
  std::vector<Step> steps;
  int num_submits = 0;
  int num_cancels = 0;
};

// ~600 tuples on two streams with 10 ad-hoc submits, 3 cancels, periodic
// watermarks and checkpoints. One fixed script: the injector seed is the
// only variable across test instances. With `wide_burst`, a long-window
// join query plus ~1600 wide (256-column) tuples with non-joining keys
// ride along — several MiB of live state that forces a budgeted run to
// spill without exploding the join output.
ChaosScript MakeChaosScript(bool wide_burst = false) {
  Rng rng(0xC4A05);
  ChaosScript script;
  auto submit = [&](TimestampMs t, bool selection) {
    QueryDescriptor d;
    if (selection) {
      d.kind = QueryKind::kSelection;
      d.select_a = {Predicate{1, CmpOp::kGt, rng.UniformInt(10, 60)}};
    } else {
      d.kind = QueryKind::kJoin;
      d.window = spe::WindowSpec::Sliding(rng.UniformInt(40, 120),
                                          rng.UniformInt(20, 40));
      d.select_a = {Predicate{1, CmpOp::kLt, rng.UniformInt(40, 95)}};
    }
    ChaosScript::Step s;
    s.what = ChaosScript::Step::kSubmit;
    s.time = t;
    s.desc = d;
    script.steps.push_back(std::move(s));
    ++script.num_submits;
  };
  auto cancel = [&](TimestampMs t, int index) {
    ChaosScript::Step s;
    s.what = ChaosScript::Step::kCancel;
    s.time = t;
    s.cancel_index = index;
    script.steps.push_back(std::move(s));
    ++script.num_cancels;
  };
  submit(0, false);
  submit(0, true);
  submit(0, false);
  submit(0, true);
  if (wide_burst) {
    // One long window so wide tuples stay live (and spillable) for a
    // few hundred ms instead of a couple of watermark periods.
    QueryDescriptor d;
    d.kind = QueryKind::kJoin;
    d.window = spe::WindowSpec::Sliding(400, 100);
    d.select_a = {Predicate{1, CmpOp::kLt, 95}};
    ChaosScript::Step s;
    s.what = ChaosScript::Step::kSubmit;
    s.time = 0;
    s.desc = d;
    script.steps.push_back(std::move(s));
    ++script.num_submits;
  }
  TimestampMs t = 1;
  for (int i = 0; i < 600; ++i) {
    t += rng.UniformInt(1, 3);
    ChaosScript::Step s;
    s.time = t;
    s.row = Row{rng.UniformInt(0, 6), rng.UniformInt(0, 99)};
    s.what = rng.Bernoulli(0.5) ? ChaosScript::Step::kPushB
                                : ChaosScript::Step::kPushA;
    script.steps.push_back(std::move(s));
    if (wide_burst && i >= 40 && i < 440) {
      for (int k = 0; k < 4; ++k) {
        std::vector<spe::Value> wide(256, rng.UniformInt(0, 1'000'000));
        wide[0] = rng.UniformInt(1000, 9999);  // never joins (keys 0..6)
        wide[1] = rng.UniformInt(0, 99);
        ChaosScript::Step w;
        w.time = t;
        w.row = Row(std::move(wide));
        w.what = (k % 2 == 0) ? ChaosScript::Step::kPushA
                              : ChaosScript::Step::kPushB;
        script.steps.push_back(std::move(w));
      }
    }
    if (i == 90 || i == 180 || i == 270 || i == 360 || i == 450 ||
        i == 520) {
      submit(t, i % 180 == 0);
    }
    if (i == 200) cancel(t, 0);
    if (i == 330) cancel(t, 2);
    if (i == 470) cancel(t, 5);
    if (i % 20 == 19) {
      ChaosScript::Step wm;
      wm.what = ChaosScript::Step::kWatermark;
      wm.time = t;
      script.steps.push_back(std::move(wm));
    }
    if (i % 80 == 79) {
      ChaosScript::Step cp;
      cp.what = ChaosScript::Step::kCheckpoint;
      cp.time = t;
      script.steps.push_back(std::move(cp));
    }
  }
  return script;
}

AStreamJob::Options BaseOptions(Clock* clock, bool threaded) {
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kJoin;
  options.parallelism = 1;
  options.threaded = threaded;
  options.clock = clock;
  options.session.batch_size = 1;
  return options;
}

// Fault-free oracle: the deterministic sync runner on a plain job.
// `force_unlimited` pins the reference to the in-memory path even when
// ASTREAM_MEMORY_BUDGET is set (the spill variant compares a budgeted
// chaos run against an unbudgeted oracle).
std::map<QueryId, RowMultiset> RunReference(const ChaosScript& script,
                                            bool force_unlimited = false) {
  ManualClock clock;
  AStreamJob::Options options = BaseOptions(&clock, false);
  if (force_unlimited) options.storage.memory_budget_bytes = -1;
  auto job = std::move(AStreamJob::Create(options)).value();
  EXPECT_TRUE(job->Start().ok());
  std::map<QueryId, RowMultiset> outputs;
  job->SetResultCallback([&](QueryId id, const spe::Record& record) {
    AddToMultiset(&outputs[id], record.event_time, record.row);
  });
  std::vector<QueryId> ids;
  for (const auto& step : script.steps) {
    clock.SetMs(step.time);
    switch (step.what) {
      case ChaosScript::Step::kPushA:
        job->PushA(step.time, step.row);
        break;
      case ChaosScript::Step::kPushB:
        job->PushB(step.time, step.row);
        break;
      case ChaosScript::Step::kWatermark:
        job->PushWatermark(step.time);
        break;
      case ChaosScript::Step::kSubmit: {
        auto id = job->Submit(step.desc);
        EXPECT_TRUE(id.ok());
        ids.push_back(*id);
        job->Pump(true);
        break;
      }
      case ChaosScript::Step::kCancel:
        EXPECT_TRUE(job->Cancel(ids[step.cancel_index]).ok());
        job->Pump(true);
        break;
      case ChaosScript::Step::kCheckpoint:
        job->TriggerCheckpoint();
        break;
    }
  }
  EXPECT_TRUE(job->FinishAndWait().ok());
  return outputs;
}

struct ChaosOutcome {
  std::map<QueryId, RowMultiset> outputs;
  int64_t injected_crashes = 0;
  int64_t recoveries = 0;
  int64_t replayed_rows = 0;
  obs::MetricsRegistry::Snapshot metrics;
};

// The same script through a supervised threaded job with an active
// injector: three deterministic operator crashes (seed-shifted hit
// thresholds), one snapshot failure, one drop-to-closed channel, and
// low-probability push/consumer delays. `budget_bytes` > 0 caps state
// memory (spilling allowed) and arms storage-write faults: one crash
// mid-spill (torn run file) and two transient write failures.
ChaosOutcome RunChaos(const ChaosScript& script, uint64_t seed,
                      int64_t budget_bytes = 0) {
  fault::FaultInjector injector(seed);
  if (budget_bytes > 0) {
    fault::FaultInjector::Rule torn;
    torn.point = fault::FaultPoint::kStorageWrite;
    torn.action = fault::FaultAction::kThrow;
    torn.after_hits = 2 + static_cast<int64_t>(seed % 3);
    injector.AddRule(torn);
    fault::FaultInjector::Rule wfail;
    wfail.point = fault::FaultPoint::kStorageWrite;
    wfail.action = fault::FaultAction::kFail;
    wfail.after_hits = 40 + static_cast<int64_t>(seed) * 7;
    wfail.max_fires = 2;
    injector.AddRule(wfail);
    // Kill one background compaction mid-job (torn output discarded, the
    // store keeps serving from its input runs) and fail a later one
    // cleanly — exactly-once must hold through both.
    fault::FaultInjector::Rule ccrash;
    ccrash.point = fault::FaultPoint::kCompaction;
    ccrash.action = fault::FaultAction::kThrow;
    ccrash.after_hits = 1 + static_cast<int64_t>(seed % 2);
    injector.AddRule(ccrash);
    fault::FaultInjector::Rule cfail;
    cfail.point = fault::FaultPoint::kCompaction;
    cfail.action = fault::FaultAction::kFail;
    cfail.after_hits = 6 + static_cast<int64_t>(seed);
    injector.AddRule(cfail);
  }
  const int64_t shift = static_cast<int64_t>(seed) * 29;
  for (int64_t after : {500 + shift, 1000 + shift, 1500 + shift}) {
    fault::FaultInjector::Rule crash;
    crash.point = fault::FaultPoint::kOperatorProcess;
    crash.action = fault::FaultAction::kThrow;
    crash.after_hits = after;
    injector.AddRule(crash);
  }
  fault::FaultInjector::Rule snap;
  snap.point = fault::FaultPoint::kSnapshot;
  snap.action = fault::FaultAction::kFail;
  snap.after_hits = 9 + static_cast<int64_t>(seed % 5);
  injector.AddRule(snap);
  fault::FaultInjector::Rule drop;
  drop.point = fault::FaultPoint::kChannelPush;
  drop.action = fault::FaultAction::kClose;
  drop.after_hits = 2200 + static_cast<int64_t>(seed) * 13;
  injector.AddRule(drop);
  fault::FaultInjector::Rule delay;
  delay.point = fault::FaultPoint::kChannelPush;
  delay.action = fault::FaultAction::kDelay;
  delay.probability = 0.002;
  delay.max_fires = 0;
  delay.delay_us = 100;
  injector.AddRule(delay);
  fault::FaultInjector::Rule stall;
  stall.point = fault::FaultPoint::kConsumerStall;
  stall.action = fault::FaultAction::kDelay;
  stall.probability = 0.001;
  stall.max_fires = 0;
  stall.delay_us = 200;
  injector.AddRule(stall);

  ManualClock clock;
  SupervisedJob::Options options;
  options.job = BaseOptions(&clock, true);
  if (budget_bytes > 0) {
    options.job.storage.memory_budget_bytes = budget_bytes;
    // Aggressive folding so the kCompaction faults actually have jobs to
    // hit within this short script.
    options.job.storage.compaction_min_runs = 2;
  }
  options.pin_clock = [&clock](TimestampMs ms) { clock.SetMs(ms); };
  options.supervisor.backoff_initial_ms = 1;
  options.supervisor.backoff_max_ms = 8;

  ChaosOutcome outcome;
  {
    fault::ScopedFaultInjection scoped(&injector);
    SupervisedJob job(options);
    EXPECT_TRUE(job.Start().ok());
    std::mutex mutex;
    job.SetResultCallback([&](QueryId id, const spe::Record& record) {
      std::lock_guard<std::mutex> lock(mutex);
      AddToMultiset(&outcome.outputs[id], record.event_time, record.row);
    });
    std::vector<QueryId> ids;
    for (const auto& step : script.steps) {
      clock.SetMs(step.time);
      switch (step.what) {
        case ChaosScript::Step::kPushA:
          job.PushA(step.time, step.row);
          break;
        case ChaosScript::Step::kPushB:
          job.PushB(step.time, step.row);
          break;
        case ChaosScript::Step::kWatermark:
          job.PushWatermark(step.time);
          break;
        case ChaosScript::Step::kSubmit: {
          auto id = job.Submit(step.desc);
          EXPECT_TRUE(id.ok()) << id.status().ToString();
          if (!id.ok()) return outcome;
          ids.push_back(*id);
          break;
        }
        case ChaosScript::Step::kCancel:
          EXPECT_TRUE(job.Cancel(ids[step.cancel_index]).ok());
          break;
        case ChaosScript::Step::kCheckpoint:
          EXPECT_GT(job.Checkpoint(), 0);
          break;
      }
    }
    const Status finish = job.FinishAndWait();
    EXPECT_TRUE(finish.ok()) << finish.ToString();
    outcome.injected_crashes =
        injector.fires(fault::FaultPoint::kOperatorProcess) +
        injector.fires(fault::FaultPoint::kChannelPush);
    outcome.recoveries = job.recoveries();
    outcome.replayed_rows = job.replayed_rows();
    outcome.metrics = job.job()->MetricsSnapshot();
  }
  return outcome;
}

class ChaosEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosEquivalenceTest, ExactlyOnceUnderCrashAndChurn) {
  const ChaosScript script = MakeChaosScript();
  ASSERT_GE(script.num_submits, 8);
  ASSERT_GE(script.num_cancels, 3);
  const auto reference = RunReference(script);
  const ChaosOutcome chaos = RunChaos(script, GetParam());

  // The faults actually happened and the supervisor actually recovered.
  EXPECT_GE(chaos.injected_crashes, 3);
  EXPECT_GE(chaos.recoveries, 1);
  EXPECT_GT(chaos.replayed_rows, 0);

  // Recovery metrics are exported and nonzero.
  EXPECT_GE(chaos.metrics.gauges.at("recovery.count"), 1);
  EXPECT_GT(chaos.metrics.gauges.at("recovery.replayed_rows"), 0);
  EXPECT_GE(chaos.metrics.histograms.at("recovery.latency_ms").count, 1);

  // Exactly-once: per-query outputs byte-identical to the fault-free
  // sync reference — no loss, no duplicates, across crashes and churn.
  EXPECT_EQ(reference.size(), chaos.outputs.size());
  EXPECT_EQ(reference, chaos.outputs);
}

// The wide-burst script under a 1 MiB budget: the supervised job spills,
// reloads, crashes mid-spill (torn run file), survives transient write
// failures AND the usual operator/channel faults — and its outputs still
// match an unbudgeted fault-free sync reference exactly.
TEST_P(ChaosEquivalenceTest, ExactlyOnceUnderCrashChurnAndSpill) {
  const ChaosScript script = MakeChaosScript(/*wide_burst=*/true);
  const auto reference = RunReference(script, /*force_unlimited=*/true);
  const ChaosOutcome chaos = RunChaos(script, GetParam(), 1 << 20);

  EXPECT_GE(chaos.injected_crashes, 3);
  EXPECT_GE(chaos.recoveries, 1);
  EXPECT_GT(chaos.replayed_rows, 0);

  // The budget actually bit: the final incarnation spilled to disk (every
  // incarnation rebuilds more state than 1 MiB, so each one spills).
  EXPECT_GE(chaos.metrics.histograms.at("storage.spill_ms").count, 1);
  EXPECT_GE(chaos.metrics.gauges.at("storage.budget_bytes"), 1 << 20);
  // Storage-v2 gauges are live on a budgeted job (compaction may or may
  // not have fired under these faults, but the drill-down must exist).
  EXPECT_EQ(chaos.metrics.gauges.count("storage.compaction_runs"), 1u);
  EXPECT_EQ(chaos.metrics.gauges.count("storage.compressed_ratio_bp"), 1u);
  EXPECT_LE(chaos.metrics.gauges.at("storage.compressed_ratio_bp"), 10000);

  EXPECT_EQ(reference.size(), chaos.outputs.size());
  EXPECT_EQ(reference, chaos.outputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace astream::harness
