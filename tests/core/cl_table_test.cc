#include "core/cl_table.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace astream::core {
namespace {

QuerySet Bits(const std::string& s) {
  QuerySet b(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') b.Set(i);
  }
  return b;
}

TEST(ClTableTest, IdentityIsAllOnes) {
  ClTable t;
  t.AddSlice(0, QuerySet::AllSet(3), 3);
  const QuerySet& m = t.Mask(0, 0);
  EXPECT_TRUE(m.Test(0));
  EXPECT_TRUE(m.Test(1));
  EXPECT_TRUE(m.Test(2));
}

TEST(ClTableTest, AdjacentIsDelta) {
  ClTable t;
  t.AddSlice(0, QuerySet::AllSet(2), 2);
  t.AddSlice(1, Bits("10"), 2);  // slot 1 changed at slice 1's left boundary
  const QuerySet& m = t.Mask(1, 0);
  EXPECT_TRUE(m.Test(0));
  EXPECT_FALSE(m.Test(1));
}

TEST(ClTableTest, OrderInsensitive) {
  ClTable t;
  t.AddSlice(0, QuerySet::AllSet(2), 2);
  t.AddSlice(1, Bits("01"), 2);
  EXPECT_EQ(t.Mask(0, 1), t.Mask(1, 0));
}

TEST(ClTableTest, PaperFig4cExample) {
  // Fig. 4b: deltas per time slot: T1="100"(3 active, read as our bit
  // order slot0..2), T2, T3, T4, T5. The paper's strings are
  // left-to-right slot order; ours Test(i) matches position i.
  // Fig. 4b (in our LSB-first rendering): T1: 100 means slots 1,2 changed?
  // We simply verify Eq. 1 numerically on the T3-vs-T1 case:
  // CL[T3][T1] = delta(T2) & delta(T3).
  ClTable t;
  t.AddSlice(0, QuerySet::AllSet(3), 3);  // T1 (3 slots)
  t.AddSlice(1, Bits("101"), 3);          // T2: slot 1 changed
  t.AddSlice(2, Bits("011"), 3);          // T3: slot 0 changed
  const QuerySet expect = Bits("101") & Bits("011");  // = "001"
  EXPECT_EQ(t.Mask(2, 0), expect);
  EXPECT_FALSE(t.Mask(2, 0).Test(0));
  EXPECT_FALSE(t.Mask(2, 0).Test(1));
  EXPECT_TRUE(t.Mask(2, 0).Test(2));
}

TEST(ClTableTest, EquationOneRecurrence) {
  // CL[i][j] == CL[i-1][j] & delta[i] for all i > j (Eq. 1).
  Rng rng(77);
  ClTable t;
  std::vector<QuerySet> deltas;
  const int n = 20;
  const int slots = 12;
  for (int i = 0; i < n; ++i) {
    QuerySet d = QuerySet::AllSet(slots);
    for (int b = 0; b < slots; ++b) {
      if (rng.Bernoulli(0.2)) d.Reset(b);
    }
    if (i == 0) d = QuerySet::AllSet(slots);
    deltas.push_back(d);
    t.AddSlice(i, d, slots);
  }
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      const QuerySet expected = t.Mask(i - 1, j) & deltas[i];
      EXPECT_EQ(t.Mask(i, j), expected) << "i=" << i << " j=" << j;
    }
  }
}

TEST(ClTableTest, MatchesNaiveAndOverSpan) {
  Rng rng(1234);
  ClTable t;
  std::vector<QuerySet> deltas;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    QuerySet d = QuerySet::AllSet(8);
    for (int b = 0; b < 8; ++b) {
      if (rng.Bernoulli(0.15)) d.Reset(b);
    }
    deltas.push_back(d);
    t.AddSlice(i, d, 8);
  }
  for (int j = 0; j < n; j += 3) {
    for (int i = j; i < n; i += 2) {
      QuerySet naive = QuerySet::AllSet(8);
      for (int k = j + 1; k <= i; ++k) naive &= deltas[k];
      EXPECT_EQ(t.Mask(i, j), naive) << "i=" << i << " j=" << j;
    }
  }
}

TEST(ClTableTest, EvictionDropsOldRows) {
  ClTable t;
  for (int i = 0; i < 10; ++i) t.AddSlice(i, QuerySet::AllSet(4), 4);
  t.Mask(9, 0);  // populate memo
  EXPECT_GT(t.MemoSize(), 0u);
  t.EvictBelow(5);
  EXPECT_EQ(t.first_index(), 5);
  // Remaining spans still work.
  EXPECT_TRUE(t.Mask(9, 5).Test(0));
}

TEST(ClTableTest, SerializeRestore) {
  ClTable t;
  t.AddSlice(0, QuerySet::AllSet(3), 3);
  t.AddSlice(1, Bits("101"), 3);
  spe::StateWriter writer;
  t.Serialize(&writer);
  ClTable restored;
  spe::StateReader reader(writer.TakeBuffer());
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_EQ(restored.Mask(1, 0), t.Mask(1, 0));
  EXPECT_EQ(restored.first_index(), 0);
}

/// Slot-reuse guard: a deleted query's slot reused by a new query must be
/// masked across the change boundary — the paper's consistency core.
TEST(ClTableTest, SlotReuseMaskedAcrossBoundary) {
  ClTable t;
  t.AddSlice(0, QuerySet::AllSet(2), 2);
  t.AddSlice(1, QuerySet::AllSet(2), 2);
  // At slice 2's boundary, slot 1's query is replaced.
  t.AddSlice(2, Bits("10"), 2);
  t.AddSlice(3, QuerySet::AllSet(2), 2);
  // Combining slices 1 and 3 (span crosses the reuse) invalidates slot 1.
  EXPECT_FALSE(t.Mask(3, 1).Test(1));
  EXPECT_TRUE(t.Mask(3, 1).Test(0));
  // Combining slices 2 and 3 (both after the reuse) keeps slot 1.
  EXPECT_TRUE(t.Mask(3, 2).Test(1));
}

}  // namespace
}  // namespace astream::core
