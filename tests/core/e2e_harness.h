#ifndef ASTREAM_TESTS_CORE_E2E_HARNESS_H_
#define ASTREAM_TESTS_CORE_E2E_HARNESS_H_

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/astream.h"
#include "harness/reference.h"

namespace astream::core {

/// Deterministic end-to-end harness: drives an AStreamJob on the sync
/// runner with a manual clock, records every input event and query
/// lifecycle, and at the end compares each query's engine output against
/// the offline reference evaluator.
class E2EHarness {
 public:
  /// `mutate_options` (when set) runs on the assembled Options just before
  /// Create — the hook tests use to flip knobs the positional parameters
  /// don't cover (share_arrangements on/off, memory budgets, ...).
  explicit E2EHarness(
      AStreamJob::TopologyKind kind, int parallelism = 1,
      StoreMode initial_mode = StoreMode::kGrouped, bool adaptive = true,
      const std::function<void(AStreamJob::Options*)>& mutate_options = {}) {
    AStreamJob::Options options;
    options.topology = kind;
    options.parallelism = parallelism;
    options.threaded = false;
    options.clock = &clock_;
    options.session.batch_size = 1000;        // flush only via Pump(force)
    options.session.max_timeout_ms = 1 << 30; // never by timeout
    options.initial_mode = initial_mode;
    options.adaptive_mode = adaptive;
    if (mutate_options) mutate_options(&options);
    auto job = AStreamJob::Create(options);
    EXPECT_TRUE(job.ok()) << job.status().ToString();
    job_ = std::move(job).value();
    EXPECT_TRUE(job_->Start().ok());
    job_->SetResultCallback(
        [this](QueryId id, const spe::Record& record) {
          harness::AddToMultiset(&outputs_[id], record.event_time,
                                 record.row);
        });
  }

  /// Buffers a creation; becomes live at the next Flush.
  QueryId Submit(const QueryDescriptor& desc, TimestampMs at) {
    clock_.SetMs(at);
    auto id = job_->Submit(desc);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    pending_creates_.push_back(*id);
    pending_descs_[*id] = desc;
    return *id;
  }

  void Cancel(QueryId id, TimestampMs at) {
    clock_.SetMs(at);
    EXPECT_TRUE(job_->Cancel(id).ok());
    pending_deletes_.push_back(id);
  }

  /// Flushes the batched requests as one changelog stamped just after
  /// `at`; records lifecycles for the reference comparison.
  void Flush(TimestampMs at) {
    clock_.SetMs(at);
    if (job_->Pump(true) == 0) return;
    const TimestampMs marker_time = job_->session().last_marker_time();
    for (QueryId id : pending_creates_) {
      lifecycles_[id] = harness::QueryLifecycle{pending_descs_[id],
                                                marker_time, kMaxTimestamp};
    }
    for (QueryId id : pending_deletes_) {
      auto it = lifecycles_.find(id);
      if (it != lifecycles_.end()) it->second.deleted_at = marker_time;
    }
    pending_creates_.clear();
    pending_deletes_.clear();
    pending_descs_.clear();
  }

  /// Convenience: submit + flush in one step. Returns the id; the query's
  /// creation time is strictly after `at`.
  QueryId Create(const QueryDescriptor& desc, TimestampMs at) {
    const QueryId id = Submit(desc, at);
    Flush(at);
    return id;
  }

  void Delete(QueryId id, TimestampMs at) {
    Cancel(id, at);
    Flush(at);
  }

  void PushA(TimestampMs t, spe::Row row) { PushImpl(0, t, std::move(row)); }
  void PushB(TimestampMs t, spe::Row row) { PushImpl(1, t, std::move(row)); }
  /// Generic stream push (kMultiway topologies: streams 0..num_streams-1).
  void Push(int stream, TimestampMs t, spe::Row row) {
    PushImpl(stream, t, std::move(row));
  }

  void Watermark(TimestampMs t) {
    clock_.SetMs(t);
    job_->PushWatermark(t);
  }

  /// Ends the stream and verifies every query against the reference.
  void FinishAndVerify() {
    job_->FinishAndWait();
    for (const auto& [id, lifecycle] : lifecycles_) {
      const harness::RowMultiset expected =
          harness::EvaluateReference(lifecycle, events_);
      const harness::RowMultiset& actual = outputs_[id];
      EXPECT_EQ(actual, expected)
          << "query " << id << " (" << lifecycle.desc.ToString()
          << ", created " << lifecycle.created_at << ", deleted "
          << lifecycle.deleted_at << "): engine produced "
          << CountRows(actual) << " rows, reference "
          << CountRows(expected);
    }
  }

  AStreamJob* job() { return job_.get(); }
  const std::map<QueryId, harness::RowMultiset>& outputs() const {
    return outputs_;
  }
  const std::vector<harness::InputEvent>& events() const { return events_; }
  std::map<QueryId, harness::QueryLifecycle>& lifecycles() {
    return lifecycles_;
  }

  static int64_t CountRows(const harness::RowMultiset& m) {
    int64_t n = 0;
    for (const auto& [row, count] : m) n += count;
    return n;
  }

 private:
  void PushImpl(int stream, TimestampMs t, spe::Row row) {
    // Mirror the facade's marker clamp so the recorded event matches what
    // the engine actually processed.
    const TimestampMs effective =
        std::max(t, job_->session().last_marker_time());
    events_.push_back(harness::InputEvent{stream, effective, row});
    job_->Push(stream, t, std::move(row));
  }

  ManualClock clock_;
  std::unique_ptr<AStreamJob> job_;
  std::map<QueryId, harness::RowMultiset> outputs_;
  std::vector<harness::InputEvent> events_;
  std::map<QueryId, harness::QueryLifecycle> lifecycles_;
  std::vector<QueryId> pending_creates_;
  std::vector<QueryId> pending_deletes_;
  std::map<QueryId, QueryDescriptor> pending_descs_;
};

}  // namespace astream::core

#endif  // ASTREAM_TESTS_CORE_E2E_HARNESS_H_
