// Focused unit tests of the shared operators outside full topologies:
// SharedSelection tagging, RouterOperator fan-out, and QoS statistics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/qos.h"
#include "core/router.h"
#include "core/shared_selection.h"

namespace astream::core {
namespace {

using spe::Row;

class RecordingCollector : public spe::Collector {
 public:
  void Emit(spe::StreamElement el) override {
    records.push_back(std::move(el.record));
  }
  std::vector<spe::Record> records;
};

Changelog CreateLog(int64_t epoch, TimestampMs time,
                    std::vector<std::pair<QueryId, QueryDescriptor>> adds,
                    std::vector<std::pair<QueryId, int>> dels,
                    size_t num_slots) {
  Changelog log;
  log.epoch = epoch;
  log.time = time;
  int slot = 0;
  for (auto& [id, desc] : adds) {
    QueryActivation a;
    a.id = id;
    a.slot = slot++;
    a.created_at = time;
    a.desc = std::move(desc);
    log.created.push_back(std::move(a));
  }
  for (auto [id, s] : dels) log.deleted.push_back(QueryDeactivation{id, s});
  log.num_slots = num_slots;
  log.ComputeChangelogSet();
  return log;
}

spe::ControlMarker Marker(Changelog log) {
  return Changelog::MakeMarker(std::make_shared<Changelog>(std::move(log)));
}

QueryDescriptor Sel(Predicate a, Predicate b = {1, CmpOp::kGe, 0}) {
  QueryDescriptor d;
  d.kind = QueryKind::kJoin;  // has both sides
  d.select_a = {a};
  d.select_b = {b};
  return d;
}

TEST(SharedSelectionTest, TagsPerSidePredicates) {
  SharedSelection::Config cfg;
  cfg.side = StreamSide::kA;
  SharedSelection sel_a(cfg);
  cfg.side = StreamSide::kB;
  SharedSelection sel_b(cfg);
  RecordingCollector out_a, out_b;

  auto log = CreateLog(
      1, 10,
      {{1, Sel({1, CmpOp::kLt, 50}, {1, CmpOp::kGe, 50})},
       {2, Sel({1, CmpOp::kGe, 50}, {1, CmpOp::kLt, 50})}},
      {}, 2);
  sel_a.OnMarker(Marker(log), &out_a);
  sel_b.OnMarker(Marker(log), &out_b);

  spe::Record r;
  r.event_time = 20;
  r.row = Row{7, 30};
  sel_a.ProcessRecord(0, r, &out_a);
  sel_b.ProcessRecord(0, r, &out_b);

  ASSERT_EQ(out_a.records.size(), 1u);
  EXPECT_TRUE(out_a.records[0].tags.Test(0));   // Q1: col1 < 50 on A
  EXPECT_FALSE(out_a.records[0].tags.Test(1));  // Q2: col1 >= 50 on A
  ASSERT_EQ(out_b.records.size(), 1u);
  EXPECT_FALSE(out_b.records[0].tags.Test(0));  // Q1 B side: >= 50
  EXPECT_TRUE(out_b.records[0].tags.Test(1));   // Q2 B side: < 50
}

TEST(SharedSelectionTest, DropsUntaggedTuples) {
  SharedSelection sel({});
  RecordingCollector out;
  auto log =
      CreateLog(1, 10, {{1, Sel({1, CmpOp::kLt, 10})}}, {}, 1);
  sel.OnMarker(Marker(log), &out);
  spe::Record r;
  r.event_time = 20;
  r.row = Row{7, 99};  // fails the predicate
  sel.ProcessRecord(0, r, &out);
  EXPECT_TRUE(out.records.empty());
  EXPECT_EQ(sel.records_dropped(), 1);
}

TEST(SharedSelectionTest, NoQueriesDropsEverything) {
  SharedSelection sel({});
  RecordingCollector out;
  spe::Record r;
  r.row = Row{1, 2};
  sel.ProcessRecord(0, r, &out);
  EXPECT_TRUE(out.records.empty());
}

TEST(SharedSelectionTest, PredicateIndexDeduplicatesSharedPredicates) {
  SharedSelection::Config cfg;
  cfg.use_predicate_index = true;
  SharedSelection sel(cfg);
  RecordingCollector out;
  // Three queries, two of which share the identical predicate.
  const Predicate shared{1, CmpOp::kLt, 50};
  auto log = CreateLog(1, 10,
                       {{1, Sel(shared)},
                        {2, Sel(shared)},
                        {3, Sel({2, CmpOp::kGt, 10})}},
                       {}, 3);
  sel.OnMarker(Marker(log), &out);
  EXPECT_EQ(sel.IndexSize(), 2u);  // shared predicate stored once

  spe::Record r;
  r.event_time = 20;
  r.row = Row{7, 30, 5};
  sel.ProcessRecord(0, r, &out);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_TRUE(out.records[0].tags.Test(0));
  EXPECT_TRUE(out.records[0].tags.Test(1));
  EXPECT_FALSE(out.records[0].tags.Test(2));  // col2 > 10 fails (5)
}

/// Property: the indexed evaluation must tag identically to the naive
/// per-query conjunction evaluation for random queries and rows.
TEST(SharedSelectionTest, IndexMatchesNaiveEvaluation) {
  Rng rng(404);
  for (int round = 0; round < 20; ++round) {
    SharedSelection::Config indexed_cfg;
    indexed_cfg.use_predicate_index = true;
    SharedSelection indexed(indexed_cfg);
    SharedSelection::Config naive_cfg;
    naive_cfg.use_predicate_index = false;
    SharedSelection naive(naive_cfg);

    std::vector<std::pair<QueryId, QueryDescriptor>> adds;
    const int num_queries = 1 + static_cast<int>(rng.UniformInt(0, 9));
    for (int q = 0; q < num_queries; ++q) {
      QueryDescriptor d;
      d.kind = QueryKind::kSelection;
      const int preds = static_cast<int>(rng.UniformInt(0, 3));
      for (int p = 0; p < preds; ++p) {
        d.select_a.push_back(Predicate{
            1 + static_cast<int>(rng.UniformInt(0, 2)),
            static_cast<CmpOp>(rng.UniformInt(0, 4)),
            rng.UniformInt(0, 20)});  // small domain: duplicates likely
      }
      adds.emplace_back(q + 1, std::move(d));
    }
    auto log = CreateLog(1, 10, adds, {}, num_queries);
    RecordingCollector out_i, out_n;
    indexed.OnMarker(Marker(log), &out_i);
    naive.OnMarker(Marker(log), &out_n);

    for (int i = 0; i < 100; ++i) {
      spe::Record r;
      r.event_time = 20 + i;
      r.row = Row{rng.UniformInt(0, 5), rng.UniformInt(0, 20),
                  rng.UniformInt(0, 20), rng.UniformInt(0, 20)};
      indexed.ProcessRecord(0, r, &out_i);
      naive.ProcessRecord(0, r, &out_n);
    }
    ASSERT_EQ(out_i.records.size(), out_n.records.size());
    for (size_t i = 0; i < out_i.records.size(); ++i) {
      EXPECT_EQ(out_i.records[i].tags, out_n.records[i].tags);
      EXPECT_EQ(out_i.records[i].row, out_n.records[i].row);
    }
  }
}

TEST(RouterOperatorTest, CopiesRawTuplesPerSubscribedQuery) {
  RouterOperator::Config cfg;
  cfg.num_ports = 1;
  cfg.routes_raw = [](const ActiveQuery&, int) { return true; };
  RouterOperator router(cfg);
  RecordingCollector out;
  QueryDescriptor d;
  d.kind = QueryKind::kSelection;
  auto log = CreateLog(1, 10, {{1, d}, {2, d}, {3, d}}, {}, 3);
  router.OnMarker(Marker(log), &out);

  spe::Record r;
  r.event_time = 20;
  r.row = Row{1, 5};
  r.tags.Set(0);
  r.tags.Set(2);  // queries 1 and 3
  router.ProcessRecord(0, r, &out);

  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].channel, 1);
  EXPECT_EQ(out.records[1].channel, 3);
  EXPECT_EQ(out.records[0].row, r.row);
  EXPECT_EQ(router.records_routed(), 2);
}

TEST(RouterOperatorTest, ChannelStampedRecordsPassThrough) {
  RouterOperator router({});
  RecordingCollector out;
  spe::Record r;
  r.event_time = 20;
  r.row = Row{1, 5};
  r.channel = 42;  // pre-resolved by a shared windowed operator
  router.ProcessRecord(0, r, &out);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].channel, 42);
}

TEST(RouterOperatorTest, PortFilteredRouting) {
  RouterOperator::Config cfg;
  cfg.num_ports = 2;
  cfg.routes_raw = [](const ActiveQuery& q, int port) {
    return port == 0 && q.desc.kind == QueryKind::kSelection;
  };
  RouterOperator router(cfg);
  RecordingCollector out;
  QueryDescriptor sel;
  sel.kind = QueryKind::kSelection;
  QueryDescriptor join;
  join.kind = QueryKind::kJoin;
  auto log = CreateLog(1, 10, {{1, sel}, {2, join}}, {}, 2);
  router.OnMarker(Marker(log), &out);

  spe::Record r;
  r.row = Row{1};
  r.tags = QuerySet::AllSet(2);
  router.ProcessRecord(0, r, &out);  // only the selection receives it
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].channel, 1);
  out.records.clear();
  spe::Record r2;
  r2.row = Row{1};
  r2.tags = QuerySet::AllSet(2);
  router.ProcessRecord(1, r2, &out);  // port 1 routes nothing raw
  EXPECT_TRUE(out.records.empty());
}

TEST(LatencyStatsTest, BasicMoments) {
  LatencyStats stats;
  for (int v : {10, 20, 30, 40}) stats.Add(v);
  EXPECT_EQ(stats.count(), 4);
  EXPECT_EQ(stats.min(), 10);
  EXPECT_EQ(stats.max(), 40);
  EXPECT_DOUBLE_EQ(stats.mean(), 25.0);
  EXPECT_EQ(stats.Percentile(0), 10);
  EXPECT_EQ(stats.Percentile(100), 40);
  EXPECT_EQ(stats.Percentile(50), 20);
}

TEST(LatencyStatsTest, ThinsBeyondCap) {
  LatencyStats stats;
  for (int i = 0; i < 200'000; ++i) stats.Add(i);
  EXPECT_EQ(stats.count(), 200'000);
  EXPECT_EQ(stats.max(), 199'999);
  // Percentiles remain sane after thinning.
  EXPECT_NEAR(static_cast<double>(stats.Percentile(50)), 100'000, 5'000);
}

TEST(QosMonitorTest, PerQueryAccounting) {
  QosMonitor qos;
  qos.RecordOutput(1, 100, 150);
  qos.RecordOutput(1, 110, 150);
  qos.RecordOutput(2, 120, 150);
  qos.RecordDeployment(1, 42);
  EXPECT_EQ(qos.total_outputs(), 3);
  EXPECT_EQ(qos.OutputsOf(1), 2);
  EXPECT_EQ(qos.OutputsOf(2), 1);
  EXPECT_EQ(qos.OutputsOf(99), 0);
  const auto snap = qos.TakeSnapshot();
  EXPECT_EQ(snap.event_time_latency.count(), 3);
  EXPECT_EQ(snap.event_time_latency.max(), 50);
  ASSERT_EQ(snap.deployment_events.size(), 1u);
  EXPECT_EQ(snap.deployment_events[0].second, 42);
}

}  // namespace
}  // namespace astream::core
