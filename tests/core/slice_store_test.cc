#include "core/slice_store.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace astream::core {
namespace {

using spe::Row;
using spe::Value;

QuerySet Bits(std::initializer_list<int> bits) {
  QuerySet b;
  for (int i : bits) b.Set(i);
  return b;
}

/// Collects join outputs into a canonical multiset for comparison.
std::map<std::string, int> JoinToMultiset(const TupleStore& a,
                                          const TupleStore& b,
                                          const QuerySet& mask) {
  std::map<std::string, int> out;
  TupleStore::Join(a, b, mask,
                   [&](const Row& l, const Row& r, QuerySet tags) {
                     std::string key = l.ToString() + "|" + r.ToString() +
                                       "|" + tags.ToString(16);
                     ++out[key];
                   });
  return out;
}

TEST(TupleStoreTest, GroupedJoinBasics) {
  TupleStore a(StoreMode::kGrouped);
  TupleStore b(StoreMode::kGrouped);
  a.Insert(Row{1, 10}, Bits({0}));
  a.Insert(Row{2, 20}, Bits({1}));
  b.Insert(Row{1, 30}, Bits({0, 1}));
  b.Insert(Row{2, 40}, Bits({0}));  // shares no query with A's key-2 tuple

  int emitted = 0;
  TupleStore::Join(a, b, QuerySet::AllSet(2),
                   [&](const Row& l, const Row& r, QuerySet tags) {
                     ++emitted;
                     EXPECT_EQ(l.key(), r.key());
                     EXPECT_TRUE(tags.Any());
                   });
  // Only (1,10)x(1,30) with tags {0}; A(2,20){1} x B(2,40){0} disjoint.
  EXPECT_EQ(emitted, 1);
}

TEST(TupleStoreTest, MaskFiltersSlotAcrossChange) {
  TupleStore a(StoreMode::kGrouped);
  TupleStore b(StoreMode::kGrouped);
  a.Insert(Row{1, 1}, Bits({0, 1}));
  b.Insert(Row{1, 2}, Bits({0, 1}));
  QuerySet mask = QuerySet::AllSet(2);
  mask.Reset(1);  // slot 1 changed between the slices
  int emitted = 0;
  TupleStore::Join(a, b, mask,
                   [&](const Row&, const Row&, QuerySet tags) {
                     ++emitted;
                     EXPECT_TRUE(tags.Test(0));
                     EXPECT_FALSE(tags.Test(1));
                   });
  EXPECT_EQ(emitted, 1);
}

TEST(TupleStoreTest, ConvertPreservesTuples) {
  TupleStore s(StoreMode::kGrouped);
  s.Insert(Row{1, 1}, Bits({0}));
  s.Insert(Row{1, 2}, Bits({1}));
  s.Insert(Row{2, 3}, Bits({0, 1}));
  EXPECT_EQ(s.NumTuples(), 3u);
  EXPECT_EQ(s.NumGroups(), 3u);
  s.ConvertTo(StoreMode::kList);
  EXPECT_EQ(s.NumTuples(), 3u);
  int n = 0;
  s.ForEach([&](const Row&, const QuerySet&) { ++n; });
  EXPECT_EQ(n, 3);
  s.ConvertTo(StoreMode::kGrouped);
  EXPECT_EQ(s.NumGroups(), 3u);
}

TEST(TupleStoreTest, AvgGroupSize) {
  TupleStore s(StoreMode::kGrouped);
  s.Insert(Row{1, 1}, Bits({0}));
  s.Insert(Row{2, 2}, Bits({0}));
  s.Insert(Row{3, 3}, Bits({0}));
  s.Insert(Row{4, 4}, Bits({1}));
  EXPECT_EQ(s.NumGroups(), 2u);
  EXPECT_DOUBLE_EQ(s.AvgGroupSize(), 2.0);
}

TEST(TupleStoreTest, SerializeRoundTripBothModes) {
  for (StoreMode mode : {StoreMode::kGrouped, StoreMode::kList}) {
    TupleStore s(mode);
    s.Insert(Row{1, 5}, Bits({0, 2}));
    s.Insert(Row{2, 6}, Bits({1}));
    spe::StateWriter writer;
    s.Serialize(&writer);
    spe::StateReader reader(writer.TakeBuffer());
    TupleStore restored = TupleStore::Deserialize(&reader);
    EXPECT_EQ(restored.mode(), mode);
    EXPECT_EQ(restored.NumTuples(), 2u);
  }
}

/// Property: grouped and list layouts (and mixed pairs) produce identical
/// join results — Sec. 3.2.3's data-structure switch must be lossless.
class StoreModeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StoreModeEquivalence, JoinResultsIdenticalAcrossLayouts) {
  const auto [seed, num_queries] = GetParam();
  Rng rng(seed);
  TupleStore ag(StoreMode::kGrouped), al(StoreMode::kList);
  TupleStore bg(StoreMode::kGrouped), bl(StoreMode::kList);
  for (int i = 0; i < 60; ++i) {
    const Value key = rng.UniformInt(0, 5);
    Row row{key, rng.UniformInt(0, 100)};
    QuerySet tags;
    for (int q = 0; q < num_queries; ++q) {
      if (rng.Bernoulli(0.4)) tags.Set(q);
    }
    if (tags.None()) tags.Set(0);
    if (i % 2 == 0) {
      ag.Insert(row, tags);
      al.Insert(row, tags);
    } else {
      bg.Insert(row, tags);
      bl.Insert(row, tags);
    }
  }
  QuerySet mask = QuerySet::AllSet(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    if (rng.Bernoulli(0.2)) mask.Reset(q);
  }
  const auto gg = JoinToMultiset(ag, bg, mask);
  EXPECT_EQ(gg, JoinToMultiset(al, bl, mask));
  EXPECT_EQ(gg, JoinToMultiset(ag, bl, mask));
  EXPECT_EQ(gg, JoinToMultiset(al, bg, mask));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StoreModeEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1, 3, 8, 16)));

TEST(AggStoreTest, AddSlotAccumulatorFinalize) {
  AggStore s;
  s.Add(1, QuerySet::Single(0), 10);
  s.Add(1, QuerySet::Single(0), 5);
  s.Add(1, QuerySet::Single(2), 7);
  s.Add(2, QuerySet::Single(0), 1);
  const spe::Accumulator acc = s.SlotAccumulator(1, 0);
  EXPECT_FALSE(acc.Empty());
  EXPECT_EQ(acc.Finalize(spe::AggKind::kSum), 15);
  EXPECT_EQ(acc.Finalize(spe::AggKind::kCount), 2);
  EXPECT_EQ(acc.Finalize(spe::AggKind::kMin), 5);
  EXPECT_EQ(acc.Finalize(spe::AggKind::kMax), 10);
  EXPECT_EQ(acc.Finalize(spe::AggKind::kAvg), 7);
  EXPECT_TRUE(s.SlotAccumulator(1, 1).Empty());
  EXPECT_TRUE(s.SlotAccumulator(9, 0).Empty());
}

TEST(AggStoreTest, SharedGroupPerTagSet) {
  AggStore s;
  // Two tuples tagged with the same two-query set land in ONE group: one
  // accumulator maintained for both queries (the group-sharing invariant).
  s.Add(1, Bits({0, 1}), 10);
  s.Add(1, Bits({0, 1}), 20);
  // A different tag set over the same key is a separate group.
  s.Add(1, Bits({1}), 5);
  size_t groups_seen = 0;
  s.ForEachGroupsMerged(
      [&](Value key, const AggStore::Group* groups, size_t n) {
        EXPECT_EQ(key, 1);
        groups_seen = n;
      });
  EXPECT_EQ(groups_seen, 2u);
  EXPECT_EQ(s.SlotAccumulator(1, 0).Finalize(spe::AggKind::kSum), 30);
  EXPECT_EQ(s.SlotAccumulator(1, 1).Finalize(spe::AggKind::kSum), 35);
}

TEST(AggStoreTest, SerializeRoundTrip) {
  AggStore s;
  s.Add(1, QuerySet::Single(0), 10);
  s.Add(2, Bits({0, 3}), 20);
  spe::StateWriter writer;
  s.Serialize(&writer);
  spe::StateReader reader(writer.TakeBuffer());
  AggStore restored = AggStore::Deserialize(&reader);
  EXPECT_EQ(restored.SlotAccumulator(2, 3).sum, 20);
  EXPECT_EQ(restored.SlotAccumulator(2, 0).sum, 20);
  EXPECT_EQ(restored.SlotAccumulator(1, 0).sum, 10);
  EXPECT_TRUE(restored.SlotAccumulator(1, 3).Empty());
}

}  // namespace
}  // namespace astream::core
