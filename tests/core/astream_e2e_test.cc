#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/core/e2e_harness.h"

namespace astream::core {
namespace {

using spe::Row;
using Kind = AStreamJob::TopologyKind;

QueryDescriptor SelectionQuery(Predicate p) {
  QueryDescriptor d;
  d.kind = QueryKind::kSelection;
  d.select_a = {p};
  return d;
}

QueryDescriptor AggQuery(spe::WindowSpec window,
                         std::vector<Predicate> preds = {},
                         spe::AggKind agg = spe::AggKind::kSum) {
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.select_a = std::move(preds);
  d.window = window;
  d.agg = {agg, 1};
  return d;
}

QueryDescriptor JoinQuery(spe::WindowSpec window,
                          std::vector<Predicate> preds_a = {},
                          std::vector<Predicate> preds_b = {}) {
  QueryDescriptor d;
  d.kind = QueryKind::kJoin;
  d.select_a = std::move(preds_a);
  d.select_b = std::move(preds_b);
  d.window = window;
  return d;
}

TEST(AStreamE2ETest, SelectionFiltersAndRoutes) {
  E2EHarness h(Kind::kAggregation);
  const QueryId q = h.Create(SelectionQuery({1, CmpOp::kLt, 50}), 0);
  h.PushA(10, Row{1, 40});   // matches
  h.PushA(11, Row{2, 60});   // filtered
  h.PushA(12, Row{3, 10});   // matches
  h.Watermark(20);
  h.FinishAndVerify();
  EXPECT_EQ(E2EHarness::CountRows(h.outputs().at(q)), 2);
}

TEST(AStreamE2ETest, TuplesBeforeCreationExcluded) {
  E2EHarness h(Kind::kAggregation);
  h.PushA(5, Row{1, 1});  // no query yet — dropped
  const QueryId q = h.Create(SelectionQuery({1, CmpOp::kGe, 0}), 10);
  h.PushA(15, Row{1, 2});
  h.FinishAndVerify();
  EXPECT_EQ(E2EHarness::CountRows(h.outputs().at(q)), 1);
}

TEST(AStreamE2ETest, TuplesAfterDeletionExcluded) {
  E2EHarness h(Kind::kAggregation);
  const QueryId q = h.Create(SelectionQuery({1, CmpOp::kGe, 0}), 0);
  h.PushA(5, Row{1, 1});
  h.Delete(q, 10);
  h.PushA(15, Row{1, 2});  // after deletion
  h.FinishAndVerify();
  EXPECT_EQ(E2EHarness::CountRows(h.outputs().at(q)), 1);
}

TEST(AStreamE2ETest, TumblingAggregation) {
  E2EHarness h(Kind::kAggregation);
  h.Create(AggQuery(spe::WindowSpec::Tumbling(100)), 0);
  // Query created at t=1; windows [1,101), [101,201), ...
  h.PushA(10, Row{1, 5});
  h.PushA(20, Row{1, 7});
  h.PushA(30, Row{2, 3});
  h.Watermark(101);
  h.PushA(150, Row{1, 11});
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, SlidingAggregationOverlappingWindows) {
  E2EHarness h(Kind::kAggregation);
  h.Create(AggQuery(spe::WindowSpec::Sliding(100, 40)), 0);
  for (int i = 0; i < 30; ++i) {
    h.PushA(5 + i * 10, Row{i % 3, i});
  }
  h.Watermark(320);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, TwoAggQueriesShareSlices) {
  E2EHarness h(Kind::kAggregation);
  h.Create(AggQuery(spe::WindowSpec::Sliding(100, 50)), 0);
  h.Create(AggQuery(spe::WindowSpec::Sliding(60, 30),
                    {Predicate{1, CmpOp::kLt, 50}}),
           0);
  for (int i = 0; i < 40; ++i) {
    h.PushA(2 + i * 7, Row{i % 4, i * 3 % 100});
  }
  h.Watermark(300);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, MidStreamCreationAggregation) {
  E2EHarness h(Kind::kAggregation);
  h.Create(AggQuery(spe::WindowSpec::Tumbling(50)), 0);
  for (int i = 0; i < 10; ++i) h.PushA(5 + i * 10, Row{1, i});
  // Second query joins mid-stream at t=100: its windows start at 101.
  h.Create(AggQuery(spe::WindowSpec::Tumbling(30)), 100);
  for (int i = 0; i < 10; ++i) h.PushA(105 + i * 10, Row{1, i});
  h.Watermark(250);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, DeletionDrainsCompletedWindows) {
  E2EHarness h(Kind::kAggregation);
  const QueryId q = h.Create(AggQuery(spe::WindowSpec::Tumbling(50)), 0);
  // Windows [1,51), [51,101), ...
  h.PushA(10, Row{1, 5});
  h.PushA(60, Row{1, 7});
  // Delete at ~120: windows ending <= 121 emit ([1,51) and [51,101));
  // the in-flight window [101,151) is cancelled.
  h.PushA(110, Row{1, 100});
  h.Delete(q, 120);
  h.Watermark(200);
  h.FinishAndVerify();
  EXPECT_EQ(E2EHarness::CountRows(h.outputs().at(q)), 2);
}

TEST(AStreamE2ETest, SlotReuseKeepsQueriesSeparate) {
  // The paper's core consistency scenario (Fig. 3): Q2 deleted, Q3 created
  // into the same slot; Q3 must not see Q2's data or vice versa.
  E2EHarness h(Kind::kAggregation);
  const QueryId q1 = h.Create(AggQuery(spe::WindowSpec::Tumbling(1000)), 0);
  const QueryId q2 = h.Create(AggQuery(spe::WindowSpec::Tumbling(40)), 0);
  h.PushA(10, Row{1, 100});
  h.PushA(20, Row{1, 23});
  h.Delete(q2, 60);
  // q3 reuses q2's slot.
  const QueryId q3 = h.Create(AggQuery(spe::WindowSpec::Tumbling(40)), 70);
  h.PushA(80, Row{1, 500});
  h.PushA(90, Row{1, 1});
  h.Watermark(150);
  h.FinishAndVerify();
  // q2's only completed window [?,?+40) sums 123; q3's sums 501.
  EXPECT_EQ(E2EHarness::CountRows(h.outputs().at(q2)), 1);
  EXPECT_EQ(E2EHarness::CountRows(h.outputs().at(q3)), 1);
  (void)q1;
}

TEST(AStreamE2ETest, SessionWindowAggregation) {
  E2EHarness h(Kind::kAggregation);
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.window = spe::WindowSpec::Session(20);
  d.agg = {spe::AggKind::kSum, 1};
  h.Create(d, 0);
  h.PushA(10, Row{1, 1});
  h.PushA(25, Row{1, 2});   // same session (gap 15 < 20)
  h.PushA(60, Row{1, 4});   // new session
  h.PushA(65, Row{2, 8});   // separate key
  h.Watermark(100);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, SessionQueryDeletedPrunesOpenSessions) {
  E2EHarness h(Kind::kAggregation);
  QueryDescriptor d;
  d.kind = QueryKind::kAggregation;
  d.window = spe::WindowSpec::Session(20);
  d.agg = {spe::AggKind::kSum, 1};
  const QueryId q = h.Create(d, 0);
  h.PushA(10, Row{1, 1});   // session closes at 30 < 100 — emits
  h.PushA(90, Row{1, 2});   // session would close at 110 > 100 — cancelled
  h.Delete(q, 100);
  h.Watermark(200);
  h.FinishAndVerify();
  EXPECT_EQ(E2EHarness::CountRows(h.outputs().at(q)), 1);
}

TEST(AStreamE2ETest, JoinBasic) {
  E2EHarness h(Kind::kJoin);
  h.Create(JoinQuery(spe::WindowSpec::Tumbling(100)), 0);
  h.PushA(10, Row{1, 5});
  h.PushB(20, Row{1, 7});
  h.PushA(30, Row{2, 9});
  h.PushB(40, Row{3, 11});  // key 3 unmatched
  h.Watermark(150);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, JoinPredicatesPerSide) {
  E2EHarness h(Kind::kJoin);
  h.Create(JoinQuery(spe::WindowSpec::Tumbling(100),
                     {Predicate{1, CmpOp::kLt, 50}},
                     {Predicate{1, CmpOp::kGe, 50}}),
           0);
  h.PushA(10, Row{1, 40});  // passes A-side
  h.PushA(11, Row{1, 60});  // fails A-side
  h.PushB(20, Row{1, 70});  // passes B-side
  h.PushB(21, Row{1, 30});  // fails B-side
  h.Watermark(150);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, JoinSlidingWindowsAndSharedPairs) {
  E2EHarness h(Kind::kJoin);
  // Two queries with identical windows share every slice pair.
  h.Create(JoinQuery(spe::WindowSpec::Sliding(60, 30)), 0);
  h.Create(JoinQuery(spe::WindowSpec::Sliding(60, 30),
                     {Predicate{1, CmpOp::kLt, 500}}),
           0);
  for (int i = 0; i < 20; ++i) {
    h.PushA(3 + i * 8, Row{i % 3, i * 37 % 1000});
    h.PushB(4 + i * 8, Row{i % 3, i * 53 % 1000});
  }
  h.Watermark(250);
  h.FinishAndVerify();
  // Sharing must have happened: pairs reused across the two queries.
  const auto stats = h.job()->CollectStats();
  EXPECT_GT(stats.join_pairs_reused, 0);
}

TEST(AStreamE2ETest, JoinAdhocCreateDeleteChurn) {
  E2EHarness h(Kind::kJoin);
  const QueryId q1 = h.Create(JoinQuery(spe::WindowSpec::Tumbling(50)), 0);
  for (int i = 0; i < 8; ++i) {
    h.PushA(5 + i * 10, Row{i % 2, i});
    h.PushB(6 + i * 10, Row{i % 2, 100 + i});
  }
  const QueryId q2 =
      h.Create(JoinQuery(spe::WindowSpec::Tumbling(30)), 90);
  for (int i = 8; i < 16; ++i) {
    h.PushA(5 + i * 10, Row{i % 2, i});
    h.PushB(6 + i * 10, Row{i % 2, 100 + i});
  }
  h.Delete(q1, 170);
  for (int i = 16; i < 24; ++i) {
    h.PushA(5 + i * 10, Row{i % 2, i});
    h.PushB(6 + i * 10, Row{i % 2, 100 + i});
  }
  h.Watermark(300);
  h.FinishAndVerify();
  (void)q2;
}

TEST(AStreamE2ETest, JoinSlotReuseAcrossChangelog) {
  E2EHarness h(Kind::kJoin);
  h.Create(JoinQuery(spe::WindowSpec::Tumbling(200)), 0);  // long window
  const QueryId q2 = h.Create(JoinQuery(spe::WindowSpec::Tumbling(40)), 0);
  h.PushA(10, Row{1, 1});
  h.PushB(15, Row{1, 2});
  h.Delete(q2, 50);
  // q3 takes q2's slot; its tuples live in later slices.
  h.Create(JoinQuery(spe::WindowSpec::Tumbling(40)), 60);
  h.PushA(70, Row{1, 3});
  h.PushB(75, Row{1, 4});
  h.Watermark(300);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, ComplexQueryDepthOne) {
  E2EHarness h(Kind::kComplex);
  QueryDescriptor d;
  d.kind = QueryKind::kComplex;
  d.window = spe::WindowSpec::Tumbling(100);
  d.join_depth = 1;
  d.agg = {spe::AggKind::kSum, 1};
  h.Create(d, 0);
  h.PushA(10, Row{1, 5});
  h.PushB(20, Row{1, 7});
  h.PushA(30, Row{1, 9});
  h.Watermark(250);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, ComplexQueryDepthTwo) {
  E2EHarness h(Kind::kComplex);
  QueryDescriptor d;
  d.kind = QueryKind::kComplex;
  d.window = spe::WindowSpec::Tumbling(100);
  d.join_depth = 2;
  d.agg = {spe::AggKind::kSum, 1};
  h.Create(d, 0);
  h.PushA(10, Row{1, 5});
  h.PushB(20, Row{1, 7});
  h.PushB(25, Row{1, 11});
  h.Watermark(500);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, ComplexMixedDepths) {
  E2EHarness h(Kind::kComplex);
  for (int depth = 1; depth <= 3; ++depth) {
    QueryDescriptor d;
    d.kind = QueryKind::kComplex;
    d.window = spe::WindowSpec::Tumbling(60);
    d.join_depth = depth;
    d.agg = {spe::AggKind::kSum, 1};
    h.Create(d, 0);
  }
  for (int i = 0; i < 12; ++i) {
    h.PushA(5 + i * 9, Row{i % 2, i + 1});
    h.PushB(6 + i * 9, Row{i % 2, 2 * i + 1});
  }
  h.Watermark(600);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, ParallelismPreservesResults) {
  for (int par : {1, 2, 4}) {
    E2EHarness h(Kind::kAggregation, par);
    h.Create(AggQuery(spe::WindowSpec::Sliding(80, 40)), 0);
    h.Create(AggQuery(spe::WindowSpec::Tumbling(50),
                      {Predicate{2, CmpOp::kGt, 30}}),
             0);
    for (int i = 0; i < 50; ++i) {
      h.PushA(2 + i * 5, Row{i % 7, i * 13 % 100, i * 29 % 100});
    }
    h.Watermark(300);
    h.FinishAndVerify();
  }
}

TEST(AStreamE2ETest, ParallelJoinPreservesResults) {
  for (int par : {1, 3}) {
    E2EHarness h(Kind::kJoin, par);
    h.Create(JoinQuery(spe::WindowSpec::Sliding(60, 20)), 0);
    for (int i = 0; i < 30; ++i) {
      h.PushA(2 + i * 6, Row{i % 5, i});
      h.PushB(3 + i * 6, Row{(i + 1) % 5, i});
    }
    h.Watermark(250);
    h.FinishAndVerify();
  }
}

TEST(AStreamE2ETest, ListModeMatchesGroupedMode) {
  for (StoreMode mode : {StoreMode::kGrouped, StoreMode::kList}) {
    E2EHarness h(Kind::kJoin, 1, mode, /*adaptive=*/false);
    h.Create(JoinQuery(spe::WindowSpec::Sliding(50, 25)), 0);
    h.Create(JoinQuery(spe::WindowSpec::Tumbling(40),
                       {Predicate{1, CmpOp::kLt, 600}}),
             0);
    for (int i = 0; i < 25; ++i) {
      h.PushA(2 + i * 7, Row{i % 4, i * 41 % 1000});
      h.PushB(3 + i * 7, Row{i % 4, i * 61 % 1000});
    }
    h.Watermark(250);
    h.FinishAndVerify();
  }
}

TEST(AStreamE2ETest, ManyQueriesTriggerAdaptiveListMode) {
  // > 10 concurrent queries flips the slice stores to list mode
  // (Sec. 3.1.4); results must be unaffected.
  E2EHarness h(Kind::kJoin);
  for (int i = 0; i < 14; ++i) {
    h.Submit(JoinQuery(spe::WindowSpec::Tumbling(40 + 7 * i)), 0);
  }
  h.Flush(0);
  for (int i = 0; i < 30; ++i) {
    h.PushA(2 + i * 6, Row{i % 3, i});
    h.PushB(3 + i * 6, Row{i % 3, 100 - i});
  }
  h.Watermark(400);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, BatchedChangelogMixedCreateDelete) {
  // One changelog carrying deletions AND creations (the session batches
  // up to 100 requests): deleted slots are reused within the same batch.
  E2EHarness h(Kind::kAggregation);
  const QueryId q1 = h.Create(AggQuery(spe::WindowSpec::Tumbling(40)), 0);
  const QueryId q2 = h.Create(AggQuery(spe::WindowSpec::Tumbling(60)), 0);
  for (int i = 0; i < 10; ++i) h.PushA(3 + i * 7, Row{1, i});
  h.Watermark(80);
  // Batch: delete q1 and q2, create two new queries — all in ONE flush.
  h.Cancel(q1, 100);
  h.Cancel(q2, 100);
  h.Submit(AggQuery(spe::WindowSpec::Tumbling(30)), 100);
  h.Submit(AggQuery(spe::WindowSpec::Sliding(50, 25)), 100);
  h.Flush(100);
  for (int i = 0; i < 12; ++i) h.PushA(105 + i * 6, Row{1, 100 + i});
  h.Watermark(300);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, WatermarkJumpTriggersManyWindows) {
  // A large watermark jump must trigger every completed window exactly
  // once, in order.
  E2EHarness h(Kind::kAggregation);
  const QueryId q = h.Create(AggQuery(spe::WindowSpec::Tumbling(10)), 0);
  for (int i = 0; i < 50; ++i) h.PushA(2 + i * 4, Row{1, 1});
  h.Watermark(1000);  // jump past ~20 windows at once
  h.FinishAndVerify();
  EXPECT_GT(E2EHarness::CountRows(h.outputs().at(q)), 15);
}

TEST(AStreamE2ETest, QueryWithNoMatchingDataEmitsNothing) {
  E2EHarness h(Kind::kAggregation);
  const QueryId q = h.Create(
      AggQuery(spe::WindowSpec::Tumbling(50),
               {Predicate{1, CmpOp::kGt, 1'000'000}}),  // matches nothing
      0);
  for (int i = 0; i < 20; ++i) h.PushA(3 + i * 5, Row{1, i});
  h.Watermark(200);
  h.FinishAndVerify();
  EXPECT_EQ(h.outputs().count(q) ? E2EHarness::CountRows(h.outputs().at(q))
                                 : 0,
            0);
}

TEST(AStreamE2ETest, ImmediateDeleteBeforeAnyData) {
  E2EHarness h(Kind::kAggregation);
  const QueryId q = h.Create(AggQuery(spe::WindowSpec::Tumbling(50)), 0);
  h.Delete(q, 5);  // deleted before any window could complete
  for (int i = 0; i < 10; ++i) h.PushA(10 + i * 5, Row{1, i});
  h.Watermark(200);
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, OutOfOrderWithinWatermarkBounds) {
  // Event-time processing (Sec. 3.3): tuples may arrive out of order as
  // long as they are not late w.r.t. the watermark; results must be
  // identical to the in-order case (the reference is order-blind).
  E2EHarness h(Kind::kAggregation);
  h.Create(AggQuery(spe::WindowSpec::Sliding(60, 30)), 0);
  Rng rng(77);
  TimestampMs watermark = 0;
  for (int batch = 0; batch < 10; ++batch) {
    // A scrambled batch of tuples in (watermark, watermark + 50].
    std::vector<TimestampMs> times;
    for (int i = 0; i < 12; ++i) {
      times.push_back(watermark + 1 + rng.UniformInt(0, 49));
    }
    for (TimestampMs t : times) {
      h.PushA(t, Row{t % 3, t % 17});
    }
    watermark += 50;
    h.Watermark(watermark);
  }
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, OutOfOrderJoinAcrossStreams) {
  E2EHarness h(Kind::kJoin);
  h.Create(JoinQuery(spe::WindowSpec::Tumbling(40)), 0);
  Rng rng(88);
  TimestampMs watermark = 0;
  for (int batch = 0; batch < 8; ++batch) {
    for (int i = 0; i < 10; ++i) {
      const TimestampMs t = watermark + 1 + rng.UniformInt(0, 59);
      if (rng.Bernoulli(0.5)) {
        h.PushA(t, Row{t % 4, t});
      } else {
        h.PushB(t, Row{t % 4, 100 + t});
      }
    }
    watermark += 60;
    h.Watermark(watermark);
  }
  h.FinishAndVerify();
}

TEST(AStreamE2ETest, AggDeleteRecreateManyCycles) {
  E2EHarness h(Kind::kAggregation);
  TimestampMs t = 0;
  std::vector<QueryId> ids;
  for (int cycle = 0; cycle < 5; ++cycle) {
    const QueryId q =
        h.Create(AggQuery(spe::WindowSpec::Tumbling(20)), t);
    ids.push_back(q);
    for (int i = 0; i < 6; ++i) {
      h.PushA(t + 3 + i * 8, Row{1, cycle * 10 + i});
    }
    t += 50;
    h.Watermark(t);
    h.Delete(q, t + 1);
    t += 10;
  }
  h.Watermark(t + 100);
  h.FinishAndVerify();
}

}  // namespace
}  // namespace astream::core
