// Checkpointing CoW state (ROADMAP): snapshots dedup shared row reps —
// K stored rows fanned out from one payload cost one payload + K refs —
// and checkpoint bytes stay ~flat as query fan-out grows 1 -> 64, because
// the shared stores hold each tuple once regardless of how many queries
// its query-set fans it out to.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/astream.h"

namespace astream::core {
namespace {

using spe::Row;
using spe::Value;

constexpr int kCols = 256;

AStreamJob::Options JoinOptions(Clock* clock) {
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kJoin;
  options.parallelism = 1;
  options.threaded = false;
  options.clock = clock;
  options.session.batch_size = 1;
  return options;
}

QueryDescriptor JoinQuery() {
  QueryDescriptor d;
  d.kind = QueryKind::kJoin;
  d.window = spe::WindowSpec::Sliding(1000, 1000);
  d.select_a = {Predicate{1, CmpOp::kLt, 1000}};
  return d;
}

int64_t CheckpointBytes(AStreamJob* job) {
  const int64_t id = job->TriggerCheckpoint();
  EXPECT_GT(id, 0);
  auto checkpoint = job->checkpoints().LatestComplete();
  EXPECT_NE(checkpoint, nullptr);
  if (checkpoint == nullptr) return 0;
  EXPECT_EQ(checkpoint->id, id);
  int64_t bytes = 0;
  for (const auto& [key, state] : checkpoint->operator_state) {
    bytes += static_cast<int64_t>(state.size());
  }
  return bytes;
}

/// Stands up a join job, runs `queries` copies of the same windowed join,
/// feeds it via `push`, and returns the completed checkpoint's byte size.
int64_t RunAndMeasure(int queries,
                      const std::function<void(AStreamJob*)>& push) {
  ManualClock clock;
  auto job = std::move(AStreamJob::Create(JoinOptions(&clock))).value();
  EXPECT_TRUE(job->Start().ok());
  for (int q = 0; q < queries; ++q) {
    EXPECT_TRUE(job->Submit(JoinQuery()).ok());
  }
  clock.SetMs(0);
  job->Pump(true);
  push(job.get());
  const int64_t bytes = CheckpointBytes(job.get());
  EXPECT_TRUE(job->FinishAndWait().ok());
  return bytes;
}

TEST(CheckpointDedupTest, SharedRepSerializedOncePlusRefs) {
  // 300 copies of ONE CoW payload in the join store vs 300 distinct
  // payloads of the same width. Every copy shares one rep, so the
  // snapshot writes the 256-column payload once and 299 references.
  const int n = 300;
  const int64_t shared_bytes = RunAndMeasure(1, [&](AStreamJob* job) {
    std::vector<Value> values(kCols, 7);
    values[0] = 3;
    values[1] = 5;
    const Row row(std::move(values));
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(Accepted(job->PushA(2 + i, row)));
    }
  });
  const int64_t distinct_bytes = RunAndMeasure(1, [&](AStreamJob* job) {
    for (int i = 0; i < n; ++i) {
      std::vector<Value> values(kCols, i);
      values[0] = 3;
      values[1] = 5;
      ASSERT_TRUE(Accepted(job->PushA(2 + i, Row(std::move(values)))));
    }
  });
  // Distinct payloads: ~n * kCols * 8 bytes. Shared: one payload + refs.
  EXPECT_GT(distinct_bytes, n * kCols * 8);
  EXPECT_LT(shared_bytes, distinct_bytes / 4);
}

TEST(CheckpointDedupTest, BytesStayFlatAsFanOutGrows) {
  // The same 200 wide tuples fanned out to 1 vs 64 identical queries.
  // Shared stores keep one copy per tuple (tagged with a query-set), so
  // the checkpoint grows by bookkeeping only — per-query descriptors,
  // wider bitsets — not by 64x the payload bytes.
  const auto push = [](AStreamJob* job) {
    for (int i = 0; i < 200; ++i) {
      std::vector<Value> values(kCols, i);
      values[0] = i % 16;
      values[1] = 5;
      const Row row(std::move(values));
      if (i % 2 == 0) {
        ASSERT_TRUE(Accepted(job->PushA(2 + i, row)));
      } else {
        ASSERT_TRUE(Accepted(job->PushB(2 + i, row)));
      }
    }
  };
  const int64_t bytes_1 = RunAndMeasure(1, push);
  const int64_t bytes_64 = RunAndMeasure(64, push);
  ASSERT_GT(bytes_1, 200 * kCols * 8);  // payload dominates the baseline
  EXPECT_LT(bytes_64, 2 * bytes_1);
}

}  // namespace
}  // namespace astream::core
