#include "core/registry.h"

#include <gtest/gtest.h>

#include <vector>

#include "spe/state.h"

namespace astream::core {
namespace {

spe::WindowSpec Window(TimestampMs length, TimestampMs slide) {
  spe::WindowSpec w;
  w.length = length;
  w.slide = slide;
  return w;
}

TEST(SlotAllocatorTest, GrowsWhenNoFreeSlots) {
  SlotAllocator alloc;
  EXPECT_EQ(alloc.Acquire(), 0);
  EXPECT_EQ(alloc.Acquire(), 1);
  EXPECT_EQ(alloc.Acquire(), 2);
  EXPECT_EQ(alloc.num_slots(), 3u);
}

TEST(SlotAllocatorTest, ReusesLowestFreedSlotFirst) {
  SlotAllocator alloc;
  for (int i = 0; i < 5; ++i) alloc.Acquire();
  alloc.Release(3);
  alloc.Release(1);
  EXPECT_EQ(alloc.Acquire(), 1);  // lowest first (deterministic)
  EXPECT_EQ(alloc.Acquire(), 3);
  EXPECT_EQ(alloc.Acquire(), 5);  // then grow
  EXPECT_EQ(alloc.num_slots(), 6u);
}

TEST(SlotAllocatorTest, UniverseNeverShrinks) {
  SlotAllocator alloc;
  alloc.Acquire();
  alloc.Acquire();
  alloc.Release(0);
  alloc.Release(1);
  EXPECT_EQ(alloc.num_slots(), 2u);
  EXPECT_EQ(alloc.num_free(), 2u);
}

TEST(SlotAllocatorTest, PaperFig3cSequence) {
  // Q1+, Q2+ at T1; Q2-, Q3+ at T2: Q3 takes Q2's slot, universe stays 2.
  SlotAllocator alloc;
  const int q1 = alloc.Acquire();
  const int q2 = alloc.Acquire();
  EXPECT_EQ(q1, 0);
  EXPECT_EQ(q2, 1);
  alloc.Release(q2);
  const int q3 = alloc.Acquire();
  EXPECT_EQ(q3, q2);
  EXPECT_EQ(alloc.num_slots(), 2u);
}

TEST(FactorRegistryTest, AcquireForRegistersOwnGcdFactor) {
  FactorRegistry reg;
  // 45/10 → g = 5, bound 2*5 >= 10 holds; anchor = origin mod 5.
  const auto fw = reg.AcquireFor(0, 1002, Window(45, 10));
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(fw->period, 5);
  EXPECT_EQ(fw->anchor, 2);
  EXPECT_EQ(reg.NumLattices(), 1u);
  EXPECT_EQ(reg.stats().rewrites, 1);
  EXPECT_EQ(reg.stats().reuses, 0);
}

TEST(FactorRegistryTest, AcquireForReusesCompatibleLattice) {
  FactorRegistry reg;
  // Slot 0 registers the g=10 lattice; slot 1's own factor is g=20 (40/20),
  // which tiles onto the existing period-10 lattice (10 | 20, congruent
  // anchor, 2*10 >= 20) — one shared lattice, refcount 2.
  const auto first = reg.AcquireFor(0, 0, Window(30, 10));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->period, 10);
  const auto second = reg.AcquireFor(1, 0, Window(40, 20));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->period, 10);  // rode the coarser existing lattice
  EXPECT_EQ(reg.NumLattices(), 1u);
  EXPECT_EQ(reg.NumRegistered(), 2u);
  EXPECT_EQ(reg.stats().rewrites, 1);
  EXPECT_EQ(reg.stats().reuses, 1);
  ASSERT_TRUE(reg.FactorOf(1).has_value());
  EXPECT_EQ(*reg.FactorOf(0), *reg.FactorOf(1));
}

TEST(FactorRegistryTest, CostBoundRejectsDenseLattices) {
  FactorRegistry reg;
  // 7/3 → g = 1, 2*1 < 3: the rewrite would triple edge density.
  EXPECT_FALSE(reg.AcquireFor(0, 0, Window(7, 3)).has_value());
  EXPECT_EQ(reg.NumLattices(), 0u);
  EXPECT_EQ(reg.stats().fallbacks, 1);
  // Release of a fallback slot is a no-op.
  reg.Release(0);
  EXPECT_EQ(reg.NumRegistered(), 0u);
}

TEST(FactorRegistryTest, ReleaseOnCancelDropsLatticeAtZeroRefs) {
  FactorRegistry reg;
  ASSERT_TRUE(reg.AcquireFor(0, 0, Window(30, 10)).has_value());
  ASSERT_TRUE(reg.AcquireFor(1, 0, Window(40, 20)).has_value());
  EXPECT_EQ(reg.NumLattices(), 1u);
  reg.Release(0);  // one rider remains — lattice survives
  EXPECT_EQ(reg.NumLattices(), 1u);
  EXPECT_EQ(reg.NumRegistered(), 1u);
  reg.Release(1);  // last rider gone — lattice dropped
  EXPECT_EQ(reg.NumLattices(), 0u);
  EXPECT_EQ(reg.NumRegistered(), 0u);
}

TEST(FactorRegistryTest, DeterministicBySlotOrderSurvivesRestore) {
  // Registrations enumerate slot-ascending regardless of acquire order,
  // and a serialize → restore roundtrip rebuilds the identical lattice
  // refcounts and per-slot assignments.
  FactorRegistry reg;
  ASSERT_TRUE(reg.AcquireFor(3, 0, Window(30, 10)).has_value());
  ASSERT_TRUE(reg.AcquireFor(1, 5, Window(20, 5)).has_value());
  ASSERT_TRUE(reg.AcquireFor(2, 0, Window(40, 20)).has_value());

  spe::StateWriter writer;
  reg.Serialize(&writer);
  spe::StateReader reader(writer.TakeBuffer());
  FactorRegistry restored;
  ASSERT_TRUE(restored.Restore(&reader).ok());

  EXPECT_EQ(restored.NumLattices(), reg.NumLattices());
  EXPECT_EQ(restored.NumRegistered(), reg.NumRegistered());
  for (int slot : {1, 2, 3}) {
    ASSERT_TRUE(restored.FactorOf(slot).has_value()) << slot;
    EXPECT_EQ(*restored.FactorOf(slot), *reg.FactorOf(slot)) << slot;
  }
  EXPECT_EQ(restored.stats().rewrites, reg.stats().rewrites);
  EXPECT_EQ(restored.stats().reuses, reg.stats().reuses);
  // Lattice enumeration (the slicer's edge-source order) is identical.
  std::vector<std::pair<TimestampMs, TimestampMs>> before;
  std::vector<std::pair<TimestampMs, TimestampMs>> after;
  reg.ForEachLattice([&](TimestampMs a, TimestampMs p) {
    before.emplace_back(a, p);
  });
  restored.ForEachLattice([&](TimestampMs a, TimestampMs p) {
    after.emplace_back(a, p);
  });
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace astream::core
