#include "core/registry.h"

#include <gtest/gtest.h>

namespace astream::core {
namespace {

TEST(SlotAllocatorTest, GrowsWhenNoFreeSlots) {
  SlotAllocator alloc;
  EXPECT_EQ(alloc.Acquire(), 0);
  EXPECT_EQ(alloc.Acquire(), 1);
  EXPECT_EQ(alloc.Acquire(), 2);
  EXPECT_EQ(alloc.num_slots(), 3u);
}

TEST(SlotAllocatorTest, ReusesLowestFreedSlotFirst) {
  SlotAllocator alloc;
  for (int i = 0; i < 5; ++i) alloc.Acquire();
  alloc.Release(3);
  alloc.Release(1);
  EXPECT_EQ(alloc.Acquire(), 1);  // lowest first (deterministic)
  EXPECT_EQ(alloc.Acquire(), 3);
  EXPECT_EQ(alloc.Acquire(), 5);  // then grow
  EXPECT_EQ(alloc.num_slots(), 6u);
}

TEST(SlotAllocatorTest, UniverseNeverShrinks) {
  SlotAllocator alloc;
  alloc.Acquire();
  alloc.Acquire();
  alloc.Release(0);
  alloc.Release(1);
  EXPECT_EQ(alloc.num_slots(), 2u);
  EXPECT_EQ(alloc.num_free(), 2u);
}

TEST(SlotAllocatorTest, PaperFig3cSequence) {
  // Q1+, Q2+ at T1; Q2-, Q3+ at T2: Q3 takes Q2's slot, universe stays 2.
  SlotAllocator alloc;
  const int q1 = alloc.Acquire();
  const int q2 = alloc.Acquire();
  EXPECT_EQ(q1, 0);
  EXPECT_EQ(q2, 1);
  alloc.Release(q2);
  const int q3 = alloc.Acquire();
  EXPECT_EQ(q3, q2);
  EXPECT_EQ(alloc.num_slots(), 2u);
}

}  // namespace
}  // namespace astream::core
