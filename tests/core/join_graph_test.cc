#include "core/join_graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "spe/state.h"

namespace astream::core {
namespace {

using Chain = std::vector<int>;

TEST(JoinCostModelTest, ColdStartFallsBackToAscendingStreamIds) {
  JoinCostModel model(4);
  EXPECT_FALSE(model.WarmedUp());
  EXPECT_EQ(model.Order({3, 0, 2}), Chain({0, 2, 3}));
  // Pending-but-unfolded observations below the threshold stay static.
  model.ObserveInserts(3, 10);
  model.Tick();
  EXPECT_EQ(model.Order({3, 0, 2}), Chain({0, 2, 3}));
}

TEST(JoinCostModelTest, WarmedUpOrdersCheapestStreamFirst) {
  JoinCostModel model(3);
  // Stream 1 is the firehose, stream 2 is quiet, stream 0 in between.
  for (int epoch = 0; epoch < 4; ++epoch) {
    model.ObserveInserts(0, 100);
    model.ObserveInserts(1, 400);
    model.ObserveInserts(2, 10);
    model.Tick();
  }
  ASSERT_TRUE(model.WarmedUp());
  EXPECT_LT(model.RateEstimate(2), model.RateEstimate(0));
  EXPECT_LT(model.RateEstimate(0), model.RateEstimate(1));
  EXPECT_EQ(model.Order({0, 1, 2}), Chain({2, 0, 1}));
  EXPECT_EQ(model.Order({1, 2}), Chain({2, 1}));
}

TEST(JoinCostModelTest, TiesStayDeterministicByStreamId) {
  JoinCostModel model(3);
  for (int epoch = 0; epoch < 11; ++epoch) {
    model.ObserveInserts(0, 50);
    model.ObserveInserts(1, 50);
    model.ObserveInserts(2, 50);
    model.Tick();
  }
  ASSERT_TRUE(model.WarmedUp());
  EXPECT_EQ(model.Order({2, 1, 0}), Chain({0, 1, 2}));
}

TEST(JoinCostModelTest, SerializeRestoreKeepsOrders) {
  JoinCostModel model(3);
  for (int epoch = 0; epoch < 4; ++epoch) {
    model.ObserveInserts(0, 300);
    model.ObserveInserts(1, 20);
    model.ObserveInserts(2, 700);
    model.Tick();
  }
  spe::StateWriter writer;
  model.Serialize(&writer);
  spe::StateReader reader(writer.TakeBuffer());
  JoinCostModel restored(3);
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_TRUE(restored.WarmedUp());
  EXPECT_EQ(restored.Order({0, 1, 2}), model.Order({0, 1, 2}));
}

TEST(SubJoinRegistryTest, FirstChainBuildsEveryPrefix) {
  SubJoinRegistry reg;
  EXPECT_EQ(reg.AcquireFor(0, {2, 0, 1}), Chain({2, 0, 1}));
  EXPECT_EQ(reg.stats().built, 1);
  EXPECT_EQ(reg.stats().attached, 0);
  EXPECT_EQ(reg.NumNodes(), 2u);  // [2,0] and [2,0,1]
  EXPECT_EQ(reg.NodeRefs({2, 0}), 1);
  EXPECT_EQ(reg.NodeRefs({2, 0, 1}), 1);
}

TEST(SubJoinRegistryTest, AttachesToLongestContainedSubJoin) {
  SubJoinRegistry reg;
  reg.AcquireFor(0, {0, 1, 2});
  // Same stream set → identical chain, refcounts bump.
  EXPECT_EQ(reg.AcquireFor(1, {0, 1, 2}), Chain({0, 1, 2}));
  EXPECT_EQ(reg.stats().attached, 1);
  EXPECT_EQ(reg.NodeRefs({0, 1, 2}), 2);
  // Superset query rides the whole existing chain and extends it.
  EXPECT_EQ(reg.AcquireFor(2, {0, 1, 2, 3}), Chain({0, 1, 2, 3}));
  EXPECT_EQ(reg.stats().attached, 2);
  EXPECT_EQ(reg.NodeRefs({0, 1}), 3);
  EXPECT_EQ(reg.NodeRefs({0, 1, 2, 3}), 1);
  // Disjoint-prefix query builds its own chain.
  EXPECT_EQ(reg.AcquireFor(3, {3, 4}), Chain({3, 4}));
  EXPECT_EQ(reg.stats().built, 2);
}

TEST(SubJoinRegistryTest, AttachOverridesCostOrderPrefix) {
  SubJoinRegistry reg;
  reg.AcquireFor(0, {1, 2});
  // The new query's cost model would probe 2 first, but the materialized
  // [1,2] sub-join is reused and extended — sharing wins over the solo
  // cost estimate.
  EXPECT_EQ(reg.AcquireFor(1, {2, 1, 0}), Chain({1, 2, 0}));
  EXPECT_EQ(reg.NodeRefs({1, 2}), 2);
  EXPECT_EQ(reg.NodeRefs({1, 2, 0}), 1);
}

TEST(SubJoinRegistryTest, ReleaseOnCancelDropsNodesAtZero) {
  SubJoinRegistry reg;
  reg.AcquireFor(0, {0, 1, 2});
  reg.AcquireFor(1, {0, 1});
  reg.Release(0);
  // Slot 1 still holds [0,1]; the 3-deep extension is gone.
  EXPECT_EQ(reg.NodeRefs({0, 1}), 1);
  EXPECT_EQ(reg.NodeRefs({0, 1, 2}), 0);
  EXPECT_EQ(reg.NumSlots(), 1u);
  reg.Release(1);
  EXPECT_EQ(reg.NumNodes(), 0u);
  EXPECT_EQ(reg.NumSlots(), 0u);
  // Double release is a no-op.
  reg.Release(1);
  EXPECT_EQ(reg.NumNodes(), 0u);
}

TEST(SubJoinRegistryTest, SerializeRestoreRebuildsNodesFromSlots) {
  SubJoinRegistry reg;
  reg.AcquireFor(0, {0, 1, 2});
  reg.AcquireFor(1, {0, 1, 2, 3});
  reg.AcquireFor(2, {2, 4});
  spe::StateWriter writer;
  reg.Serialize(&writer);
  spe::StateReader reader(writer.TakeBuffer());
  SubJoinRegistry restored;
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_EQ(restored.NumSlots(), reg.NumSlots());
  EXPECT_EQ(restored.NumNodes(), reg.NumNodes());
  for (int slot : {0, 1, 2}) {
    ASSERT_NE(restored.ChainFor(slot), nullptr) << slot;
    EXPECT_EQ(*restored.ChainFor(slot), *reg.ChainFor(slot)) << slot;
  }
  EXPECT_EQ(restored.NodeRefs({0, 1}), reg.NodeRefs({0, 1}));
  EXPECT_EQ(restored.NodeRefs({0, 1, 2}), reg.NodeRefs({0, 1, 2}));
  EXPECT_EQ(restored.stats().built, reg.stats().built);
  EXPECT_EQ(restored.stats().attached, reg.stats().attached);
}

}  // namespace
}  // namespace astream::core
