#include "spe/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace astream::spe {
namespace {

Envelope Env(int value) {
  Envelope e;
  e.port = 0;
  e.sender = 0;
  e.element = StreamElement::MakeRecord(value, Row{value});
  return e;
}

TEST(ChannelTest, FifoOrder) {
  Channel ch(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ch.Push(Env(i)));
  for (int i = 0; i < 10; ++i) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->element.record.row.key(), i);
  }
}

TEST(ChannelTest, TryPushRespectsCapacity) {
  Channel ch(2);
  EXPECT_TRUE(ch.TryPush(Env(1)));
  EXPECT_TRUE(ch.TryPush(Env(2)));
  EXPECT_FALSE(ch.TryPush(Env(3)));
  EXPECT_EQ(ch.Size(), 2u);
  ch.TryPop();
  EXPECT_TRUE(ch.TryPush(Env(3)));
}

TEST(ChannelTest, CloseUnblocksConsumersAndDrains) {
  Channel ch(4);
  ch.Push(Env(1));
  ch.Close();
  EXPECT_FALSE(ch.Push(Env(2)));  // rejected after close
  auto e = ch.Pop();              // drains the remaining element
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(ch.Pop().has_value());  // then signals end
}

TEST(ChannelTest, BlockingPushUnblocksOnPop) {
  Channel ch(1);
  ASSERT_TRUE(ch.Push(Env(1)));
  std::thread producer([&] { EXPECT_TRUE(ch.Push(Env(2))); });
  // Give the producer a moment to block, then free a slot.
  while (ch.Size() < 1) {
  }
  auto e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  producer.join();
  EXPECT_EQ(ch.Size(), 1u);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel ch(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Push(Env(p * kPerProducer + i)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    const auto v = static_cast<size_t>(e->element.record.row.key());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.Size(), 0u);
}

}  // namespace
}  // namespace astream::spe
