#include "spe/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace astream::spe {
namespace {

Envelope Env(int value) {
  Envelope e;
  e.port = 0;
  e.sender = 0;
  e.element = StreamElement::MakeRecord(value, Row{value});
  return e;
}

BatchEnvelope Batch(int first, int count) {
  BatchEnvelope b;
  b.port = 0;
  b.sender = 0;
  for (int i = 0; i < count; ++i) {
    b.elements.Add(StreamElement::MakeRecord(first + i, Row{first + i}));
  }
  return b;
}

int KeyOf(const StreamElement& el) {
  return static_cast<int>(el.record.row.key());
}

TEST(ChannelTest, FifoOrder) {
  Channel ch(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ch.Push(Env(i)));
  for (int i = 0; i < 10; ++i) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->elements.size(), 1u);
    EXPECT_EQ(KeyOf(e->elements[0]), i);
  }
}

TEST(ChannelTest, BatchFifoOrderAndProvenance) {
  Channel ch(64);
  BatchEnvelope b = Batch(0, 6);
  b.port = 1;
  b.sender = 42;
  ASSERT_TRUE(ch.Push(std::move(b)));
  ASSERT_TRUE(ch.Push(Batch(6, 3)));
  EXPECT_EQ(ch.Size(), 9u);        // counted in elements
  EXPECT_EQ(ch.NumBatches(), 2u);  // ... not batches

  auto first = ch.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->port, 1);
  EXPECT_EQ(first->sender, 42);
  ASSERT_EQ(first->elements.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(KeyOf(first->elements[i]), i);

  auto second = ch.Pop();
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->elements.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(KeyOf(second->elements[i]), 6 + i);
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(ChannelTest, TryPushRespectsElementCapacity) {
  Channel ch(2);
  EXPECT_EQ(ch.TryPush(Env(1)), PushStatus::kOk);
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kOk);
  EXPECT_EQ(ch.TryPush(Env(3)), PushStatus::kFull);
  EXPECT_EQ(ch.Size(), 2u);
  ch.TryPop();
  EXPECT_EQ(ch.TryPush(Env(3)), PushStatus::kOk);
}

TEST(ChannelTest, TryPushCountsBatchElementsAgainstCapacity) {
  Channel ch(4);
  EXPECT_EQ(ch.TryPush(Batch(0, 3)), PushStatus::kOk);
  // 3 of 4 element slots used: a 2-element batch does not fit.
  EXPECT_EQ(ch.TryPush(Batch(3, 2)), PushStatus::kFull);
  EXPECT_EQ(ch.TryPush(Env(3)), PushStatus::kOk);
  EXPECT_EQ(ch.Size(), 4u);
}

TEST(ChannelTest, TryPushDistinguishesFullFromClosed) {
  Channel ch(1);
  ASSERT_EQ(ch.TryPush(Env(1)), PushStatus::kOk);
  // Transient: the consumer is merely behind.
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kFull);
  ch.Close();
  // Permanent: retrying is pointless, even though the queue is also full.
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kClosed);
  ch.TryPop();
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kClosed);
}

TEST(ChannelTest, OversizedBatchAdmittedIntoEmptyQueue) {
  Channel ch(2);
  // A batch bigger than the whole capacity must not block forever: it is
  // admitted once the queue is empty.
  ASSERT_TRUE(ch.Push(Batch(0, 5)));
  EXPECT_EQ(ch.Size(), 5u);
  // But while it occupies the queue, nothing else fits.
  EXPECT_EQ(ch.TryPush(Env(9)), PushStatus::kFull);
  auto e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->elements.size(), 5u);
  EXPECT_EQ(ch.TryPush(Env(9)), PushStatus::kOk);
}

TEST(ChannelTest, CloseUnblocksConsumersAndDrains) {
  Channel ch(4);
  ch.Push(Env(1));
  ch.Push(Batch(2, 2));
  ch.Close();
  EXPECT_FALSE(ch.Push(Env(4)));  // rejected after close
  auto e = ch.Pop();              // drains the remaining batches...
  ASSERT_TRUE(e.has_value());
  e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->elements.size(), 2u);
  EXPECT_FALSE(ch.Pop().has_value());  // ...then signals end
}

TEST(ChannelTest, BlockingPushUnblocksOnPop) {
  Channel ch(1);
  ASSERT_TRUE(ch.Push(Env(1)));
  std::thread producer([&] { EXPECT_TRUE(ch.Push(Env(2))); });
  // Give the producer a moment to block, then free a slot.
  while (ch.Size() < 1) {
  }
  auto e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  producer.join();
  EXPECT_EQ(ch.Size(), 1u);
}

TEST(ChannelTest, PopFreesRoomForMultipleBlockedProducers) {
  Channel ch(4);
  ASSERT_TRUE(ch.Push(Batch(0, 4)));  // full
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&ch, p] { ASSERT_TRUE(ch.Push(Env(10 + p))); });
  }
  // Popping the 4-element batch frees room for all three single-element
  // producers at once (notify_all on pop).
  auto e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.Size(), 3u);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel ch(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Push(Env(p * kPerProducer + i)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    const auto v = static_cast<size_t>(KeyOf(e->elements[0]));
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(ChannelTest, ManyBatchProducersOneConsumer) {
  Channel ch(32);
  constexpr int kBatches = 100;
  constexpr int kBatchSize = 7;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kBatches; ++i) {
        ASSERT_TRUE(
            ch.Push(Batch((p * kBatches + i) * kBatchSize, kBatchSize)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kBatches * kBatchSize, false);
  for (int b = 0; b < kProducers * kBatches; ++b) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->elements.size(), static_cast<size_t>(kBatchSize));
    int prev = -1;
    for (const StreamElement& el : e->elements) {
      const int v = KeyOf(el);
      if (prev >= 0) {
        EXPECT_EQ(v, prev + 1);  // batches stay contiguous
      }
      prev = v;
      EXPECT_FALSE(seen[static_cast<size_t>(v)]);
      seen[static_cast<size_t>(v)] = true;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.Size(), 0u);
}

}  // namespace
}  // namespace astream::spe
