#include "spe/channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "spe/ring.h"

namespace astream::spe {
namespace {

Envelope Env(int value) {
  Envelope e;
  e.port = 0;
  e.sender = 0;
  e.element = StreamElement::MakeRecord(value, Row{value});
  return e;
}

BatchEnvelope Batch(int first, int count) {
  BatchEnvelope b;
  b.port = 0;
  b.sender = 0;
  for (int i = 0; i < count; ++i) {
    b.elements.Add(StreamElement::MakeRecord(first + i, Row{first + i}));
  }
  return b;
}

int KeyOf(const StreamElement& el) {
  return static_cast<int>(el.record.row.key());
}

TEST(ChannelTest, FifoOrder) {
  Channel ch(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ch.Push(Env(i)));
  for (int i = 0; i < 10; ++i) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->elements.size(), 1u);
    EXPECT_EQ(KeyOf(e->elements[0]), i);
  }
}

TEST(ChannelTest, BatchFifoOrderAndProvenance) {
  Channel ch(64);
  BatchEnvelope b = Batch(0, 6);
  b.port = 1;
  b.sender = 42;
  ASSERT_TRUE(ch.Push(std::move(b)));
  ASSERT_TRUE(ch.Push(Batch(6, 3)));
  EXPECT_EQ(ch.Size(), 9u);        // counted in elements
  EXPECT_EQ(ch.NumBatches(), 2u);  // ... not batches

  auto first = ch.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->port, 1);
  EXPECT_EQ(first->sender, 42);
  ASSERT_EQ(first->elements.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(KeyOf(first->elements[i]), i);

  auto second = ch.Pop();
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->elements.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(KeyOf(second->elements[i]), 6 + i);
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(ChannelTest, TryPushRespectsElementCapacity) {
  Channel ch(2);
  EXPECT_EQ(ch.TryPush(Env(1)), PushStatus::kOk);
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kOk);
  EXPECT_EQ(ch.TryPush(Env(3)), PushStatus::kFull);
  EXPECT_EQ(ch.Size(), 2u);
  ch.TryPop();
  EXPECT_EQ(ch.TryPush(Env(3)), PushStatus::kOk);
}

TEST(ChannelTest, TryPushCountsBatchElementsAgainstCapacity) {
  Channel ch(4);
  EXPECT_EQ(ch.TryPush(Batch(0, 3)), PushStatus::kOk);
  // 3 of 4 element slots used: a 2-element batch does not fit.
  EXPECT_EQ(ch.TryPush(Batch(3, 2)), PushStatus::kFull);
  EXPECT_EQ(ch.TryPush(Env(3)), PushStatus::kOk);
  EXPECT_EQ(ch.Size(), 4u);
}

TEST(ChannelTest, TryPushDistinguishesFullFromClosed) {
  Channel ch(1);
  ASSERT_EQ(ch.TryPush(Env(1)), PushStatus::kOk);
  // Transient: the consumer is merely behind.
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kFull);
  ch.Close();
  // Permanent: retrying is pointless, even though the queue is also full.
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kClosed);
  ch.TryPop();
  EXPECT_EQ(ch.TryPush(Env(2)), PushStatus::kClosed);
}

TEST(ChannelTest, OversizedBatchAdmittedIntoEmptyQueue) {
  Channel ch(2);
  // A batch bigger than the whole capacity must not block forever: it is
  // admitted once the queue is empty.
  ASSERT_TRUE(ch.Push(Batch(0, 5)));
  EXPECT_EQ(ch.Size(), 5u);
  // But while it occupies the queue, nothing else fits.
  EXPECT_EQ(ch.TryPush(Env(9)), PushStatus::kFull);
  auto e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->elements.size(), 5u);
  EXPECT_EQ(ch.TryPush(Env(9)), PushStatus::kOk);
}

TEST(ChannelTest, CloseUnblocksConsumersAndDrains) {
  Channel ch(4);
  ch.Push(Env(1));
  ch.Push(Batch(2, 2));
  ch.Close();
  EXPECT_FALSE(ch.Push(Env(4)));  // rejected after close
  auto e = ch.Pop();              // drains the remaining batches...
  ASSERT_TRUE(e.has_value());
  e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->elements.size(), 2u);
  EXPECT_FALSE(ch.Pop().has_value());  // ...then signals end
}

TEST(ChannelTest, BlockingPushUnblocksOnPop) {
  Channel ch(1);
  ASSERT_TRUE(ch.Push(Env(1)));
  std::thread producer([&] { EXPECT_TRUE(ch.Push(Env(2))); });
  // Give the producer a moment to block, then free a slot.
  while (ch.Size() < 1) {
  }
  auto e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  producer.join();
  EXPECT_EQ(ch.Size(), 1u);
}

TEST(ChannelTest, PopFreesRoomForMultipleBlockedProducers) {
  Channel ch(4);
  ASSERT_TRUE(ch.Push(Batch(0, 4)));  // full
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&ch, p] { ASSERT_TRUE(ch.Push(Env(10 + p))); });
  }
  // Popping the 4-element batch frees room for all three single-element
  // producers at once (notify_all on pop).
  auto e = ch.Pop();
  ASSERT_TRUE(e.has_value());
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.Size(), 3u);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel ch(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Push(Env(p * kPerProducer + i)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    const auto v = static_cast<size_t>(KeyOf(e->elements[0]));
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(ChannelTest, ManyBatchProducersOneConsumer) {
  Channel ch(32);
  constexpr int kBatches = 100;
  constexpr int kBatchSize = 7;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kBatches; ++i) {
        ASSERT_TRUE(
            ch.Push(Batch((p * kBatches + i) * kBatchSize, kBatchSize)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kBatches * kBatchSize, false);
  for (int b = 0; b < kProducers * kBatches; ++b) {
    auto e = ch.Pop();
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->elements.size(), static_cast<size_t>(kBatchSize));
    int prev = -1;
    for (const StreamElement& el : e->elements) {
      const int v = KeyOf(el);
      if (prev >= 0) {
        EXPECT_EQ(v, prev + 1);  // batches stay contiguous
      }
      prev = v;
      EXPECT_FALSE(seen[static_cast<size_t>(v)]);
      seen[static_cast<size_t>(v)] = true;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.Size(), 0u);
}

// Regression: Close() must win over kFull even when the close races an
// in-flight TryPush. After Close() returns, no TryPush may ever report the
// transient kFull — callers would retry a channel that can never drain.
TEST(ChannelTest, TryPushNeverReportsFullAfterCloseRace) {
  for (int round = 0; round < 50; ++round) {
    Channel ch(1);
    ASSERT_EQ(ch.TryPush(Env(0)), PushStatus::kOk);  // full from the start
    std::atomic<bool> closed{false};
    std::thread closer([&] {
      ch.Close();
      closed.store(true, std::memory_order_release);
    });
    bool saw_closed_flag = false;
    for (int i = 0; i < 1000; ++i) {
      const bool was_closed = closed.load(std::memory_order_acquire);
      const PushStatus st = ch.TryPush(Env(i));
      if (was_closed) {
        // Close() completed before this push started: kFull is a bug.
        EXPECT_EQ(st, PushStatus::kClosed);
        saw_closed_flag = true;
        break;
      }
      EXPECT_NE(st, PushStatus::kOk);  // channel stays full throughout
    }
    closer.join();
    EXPECT_TRUE(saw_closed_flag || ch.TryPush(Env(0)) == PushStatus::kClosed);
  }
}

TEST(SpscRingTest, FifoOrder) {
  SpscRing ring(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.Push(Batch(i * 3, 3)));
  }
  EXPECT_EQ(ring.NumBatches(), 10u);
  EXPECT_EQ(ring.Size(), 30u);  // counted in elements
  for (int i = 0; i < 10; ++i) {
    auto b = ring.TryPop();
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(b->elements.size(), 3u);
    for (int k = 0; k < 3; ++k) EXPECT_EQ(KeyOf(b->elements[k]), i * 3 + k);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
  EXPECT_EQ(ring.Size(), 0u);
}

TEST(SpscRingTest, CapacityIsRoundedUpAndBounded) {
  SpscRing ring(5);  // rounds up to 8 slots
  EXPECT_EQ(ring.CapacityBatches(), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(ring.TryPush(Batch(i, 1)), PushStatus::kOk);
  }
  EXPECT_EQ(ring.TryPush(Batch(8, 1)), PushStatus::kFull);
  EXPECT_DOUBLE_EQ(ring.Occupancy(), 1.0);
  ASSERT_TRUE(ring.TryPop().has_value());
  EXPECT_EQ(ring.TryPush(Batch(8, 1)), PushStatus::kOk);
}

TEST(SpscRingTest, CloseDrainsThenSignalsEnd) {
  SpscRing ring(4);
  ASSERT_TRUE(ring.Push(Batch(0, 2)));
  ASSERT_TRUE(ring.Push(Batch(2, 1)));
  ring.Close();
  EXPECT_FALSE(ring.Push(Batch(9, 1)));  // rejected after close
  EXPECT_FALSE(ring.Drained());          // still holds two batches
  EXPECT_TRUE(ring.TryPop().has_value());
  EXPECT_TRUE(ring.TryPop().has_value());
  EXPECT_FALSE(ring.TryPop().has_value());
  EXPECT_TRUE(ring.Drained());
}

// Regression for the closed-wins-over-full race: closed_ and the ring
// indices are separate atomics, so TryPush re-checks closed after finding
// the ring full. After Close() returns, kFull must never surface.
TEST(SpscRingTest, TryPushNeverReportsFullAfterCloseRace) {
  for (int round = 0; round < 50; ++round) {
    SpscRing ring(2);
    ASSERT_EQ(ring.TryPush(Batch(0, 1)), PushStatus::kOk);
    ASSERT_EQ(ring.TryPush(Batch(1, 1)), PushStatus::kOk);  // full
    std::atomic<bool> closed{false};
    std::thread closer([&] {
      ring.Close();
      closed.store(true, std::memory_order_release);
    });
    for (int i = 0; i < 1000; ++i) {
      const bool was_closed = closed.load(std::memory_order_acquire);
      const PushStatus st = ring.TryPush(Batch(2 + i, 1));
      EXPECT_NE(st, PushStatus::kOk);
      if (was_closed) {
        EXPECT_EQ(st, PushStatus::kClosed);
        break;
      }
    }
    closer.join();
    EXPECT_EQ(ring.TryPush(Batch(0, 1)), PushStatus::kClosed);
  }
}

// Producer/consumer stress across a tiny ring: every batch arrives exactly
// once, in order, with the blocking slow paths (full ring, empty ring)
// exercised constantly. Run under TSan/ASan in verify.sh.
TEST(SpscRingTest, StressOrderedHandoffThroughTinyRing) {
  SpscRing ring(4);
  constexpr int kBatches = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) {
      ASSERT_TRUE(ring.Push(Batch(i * 2, 2)));
    }
    ring.Close();
  });
  int expected = 0;
  for (;;) {
    auto b = ring.TryPop();
    if (!b.has_value()) {
      if (ring.Drained()) break;
      continue;
    }
    ASSERT_EQ(b->elements.size(), 2u);
    EXPECT_EQ(KeyOf(b->elements[0]), expected * 2);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kBatches);
}

TEST(TaskInboxTest, MultiplexesRingsAndExternalChannel) {
  TaskInbox inbox(64);
  SpscRing* ring_a = inbox.AddRing(8);
  SpscRing* ring_b = inbox.AddRing(8);
  inbox.EnsureExternal();
  ASSERT_TRUE(ring_a->Push(Batch(0, 1)));
  ASSERT_TRUE(ring_b->Push(Batch(1, 1)));
  ASSERT_TRUE(inbox.PushExternal(Batch(2, 1)));
  EXPECT_EQ(inbox.QueuedElements(), 3u);

  std::vector<bool> seen(3, false);
  for (int i = 0; i < 3; ++i) {
    auto b = inbox.Pop();
    ASSERT_TRUE(b.has_value());
    seen[static_cast<size_t>(KeyOf(b->elements[0]))] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  EXPECT_EQ(inbox.QueuedElements(), 0u);

  inbox.Close();
  EXPECT_FALSE(inbox.Pop().has_value());  // all sources closed + drained
}

TEST(TaskInboxTest, PopDrainsRemainingAfterClose) {
  TaskInbox inbox(64);
  SpscRing* ring = inbox.AddRing(8);
  ASSERT_TRUE(ring->Push(Batch(0, 2)));
  inbox.Close();
  auto b = inbox.Pop();  // close() leaves queued batches poppable
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->elements.size(), 2u);
  EXPECT_FALSE(inbox.Pop().has_value());
}

TEST(TaskInboxTest, ParkedConsumerWakesOnRingPush) {
  TaskInbox inbox(64);
  SpscRing* ring = inbox.AddRing(8);
  std::thread producer([&] {
    // Let the consumer reach the parked state, then push.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(ring->Push(Batch(7, 1)));
    inbox.Close();
  });
  auto b = inbox.Pop();  // blocks parked until the push lands
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(KeyOf(b->elements[0]), 7);
  EXPECT_FALSE(inbox.Pop().has_value());
  producer.join();
}

TEST(TaskInboxTest, StressTwoRingProducersPlusExternal) {
  TaskInbox inbox(256);
  SpscRing* ring_a = inbox.AddRing(4);
  SpscRing* ring_b = inbox.AddRing(4);
  inbox.EnsureExternal();
  constexpr int kPerSource = 800;
  std::thread prod_a([&] {
    for (int i = 0; i < kPerSource; ++i) {
      ASSERT_TRUE(ring_a->Push(Batch(i, 1)));
    }
    ring_a->Close();
  });
  std::thread prod_b([&] {
    for (int i = 0; i < kPerSource; ++i) {
      ASSERT_TRUE(ring_b->Push(Batch(kPerSource + i, 1)));
    }
    ring_b->Close();
  });
  std::thread prod_ext([&] {
    for (int i = 0; i < kPerSource; ++i) {
      ASSERT_TRUE(inbox.PushExternal(Batch(2 * kPerSource + i, 1)));
    }
  });
  std::vector<bool> seen(3 * kPerSource, false);
  int got = 0;
  // Per-source FIFO must hold even under multiplexing.
  int next_a = 0, next_b = kPerSource, next_ext = 2 * kPerSource;
  while (got < 3 * kPerSource) {
    auto b = inbox.Pop();
    ASSERT_TRUE(b.has_value());
    const int v = KeyOf(b->elements[0]);
    ASSERT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
    if (v < kPerSource) {
      EXPECT_EQ(v, next_a++);
    } else if (v < 2 * kPerSource) {
      EXPECT_EQ(v, next_b++);
    } else {
      EXPECT_EQ(v, next_ext++);
    }
    ++got;
  }
  prod_a.join();
  prod_b.join();
  prod_ext.join();  // external channel closes via inbox.Close below
  inbox.Close();
  EXPECT_FALSE(inbox.Pop().has_value());
}

}  // namespace
}  // namespace astream::spe
