// SnapshotState -> RestoreState roundtrips for the stateful baseline
// operators and the changelog mask table: a restored instance must carry
// exactly the state of the original — its continued outputs and a second
// snapshot must match byte for byte.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cl_table.h"
#include "core/router.h"
#include "spe/operators.h"

namespace astream::spe {
namespace {

class VectorCollector : public Collector {
 public:
  void Emit(StreamElement element) override {
    if (element.kind == ElementKind::kRecord) {
      records.push_back(std::move(element.record));
    }
  }
  std::vector<Record> records;
};

OperatorContext TestContext() {
  OperatorContext ctx;
  ctx.stage_index = 0;
  ctx.instance_index = 0;
  ctx.parallelism = 1;
  ctx.stage_name = "test-op";
  return ctx;
}

std::vector<uint8_t> Snapshot(Operator* op) {
  StateWriter writer;
  EXPECT_TRUE(op->SnapshotState(&writer).ok());
  return writer.TakeBuffer();
}

void Restore(Operator* op, std::vector<uint8_t> state) {
  StateReader reader(std::move(state));
  ASSERT_TRUE(op->RestoreState(&reader).ok());
  EXPECT_TRUE(reader.Ok());
}

TEST(RestoreRoundtripTest, WindowAggregateOperator) {
  const WindowSpec window = WindowSpec::Sliding(20, 10);
  const AggSpec agg{AggKind::kSum, 1};
  WindowAggregateOperator original(window, agg, 0);
  ASSERT_TRUE(original.Open(TestContext()).ok());

  VectorCollector sink;
  original.ProcessRecord(0, Record{1, Row{1, 5}, {}}, &sink);
  original.ProcessRecord(0, Record{4, Row{2, 7}, {}}, &sink);
  original.ProcessRecord(0, Record{12, Row{1, 3}, {}}, &sink);
  original.ProcessRecord(0, Record{15, Row{2, 11}, {}}, &sink);
  ASSERT_TRUE(sink.records.empty());  // nothing fired yet

  const std::vector<uint8_t> state = Snapshot(&original);
  WindowAggregateOperator restored(window, agg, 0);
  ASSERT_TRUE(restored.Open(TestContext()).ok());
  Restore(&restored, state);

  // Both continue identically: one more tuple, then drain everything.
  VectorCollector out_a;
  VectorCollector out_b;
  original.ProcessRecord(0, Record{21, Row{1, 100}, {}}, &out_a);
  restored.ProcessRecord(0, Record{21, Row{1, 100}, {}}, &out_b);
  original.OnWatermark(100, &out_a);
  restored.OnWatermark(100, &out_b);
  ASSERT_FALSE(out_a.records.empty());
  ASSERT_EQ(out_a.records.size(), out_b.records.size());
  for (size_t i = 0; i < out_a.records.size(); ++i) {
    EXPECT_EQ(out_a.records[i].event_time, out_b.records[i].event_time);
    EXPECT_EQ(out_a.records[i].row, out_b.records[i].row);
  }
  EXPECT_EQ(Snapshot(&original), Snapshot(&restored));
}

TEST(RestoreRoundtripTest, WindowJoinOperator) {
  const WindowSpec window = WindowSpec::Sliding(20, 10);
  WindowJoinOperator original(window, 0);
  ASSERT_TRUE(original.Open(TestContext()).ok());

  VectorCollector sink;
  original.ProcessRecord(0, Record{2, Row{1, 10}, {}}, &sink);
  original.ProcessRecord(1, Record{3, Row{1, 20}, {}}, &sink);
  original.ProcessRecord(0, Record{11, Row{2, 30}, {}}, &sink);
  original.ProcessRecord(1, Record{12, Row{2, 40}, {}}, &sink);

  const std::vector<uint8_t> state = Snapshot(&original);
  WindowJoinOperator restored(window, 0);
  ASSERT_TRUE(restored.Open(TestContext()).ok());
  Restore(&restored, state);

  VectorCollector out_a;
  VectorCollector out_b;
  original.ProcessRecord(1, Record{14, Row{1, 50}, {}}, &out_a);
  restored.ProcessRecord(1, Record{14, Row{1, 50}, {}}, &out_b);
  original.OnWatermark(100, &out_a);
  restored.OnWatermark(100, &out_b);
  ASSERT_FALSE(out_a.records.empty());
  ASSERT_EQ(out_a.records.size(), out_b.records.size());
  for (size_t i = 0; i < out_a.records.size(); ++i) {
    EXPECT_EQ(out_a.records[i].event_time, out_b.records[i].event_time);
    EXPECT_EQ(out_a.records[i].row, out_b.records[i].row);
  }
  EXPECT_EQ(Snapshot(&original), Snapshot(&restored));
}

TEST(RestoreRoundtripTest, ClTable) {
  core::ClTable original;
  original.AddSlice(0, DynamicBitset::Single(0), 3);
  original.AddSlice(1, DynamicBitset::Single(1), 3);
  DynamicBitset both(3);
  both.Set(0);
  both.Set(2);
  original.AddSlice(2, both, 3);
  // Populate memoized masks before snapshotting.
  (void)original.Mask(2, 0);
  (void)original.Mask(1, 0);

  StateWriter writer;
  original.Serialize(&writer);
  core::ClTable restored;
  StateReader reader(writer.TakeBuffer());
  ASSERT_TRUE(restored.Restore(&reader).ok());
  ASSERT_TRUE(reader.Ok());

  EXPECT_EQ(restored.first_index(), original.first_index());
  EXPECT_EQ(restored.last_index(), original.last_index());
  for (int64_t j = 0; j <= 2; ++j) {
    for (int64_t i = j; i <= 2; ++i) {
      EXPECT_EQ(restored.Mask(i, j), original.Mask(i, j))
          << "mask mismatch at (" << i << ", " << j << ")";
    }
  }
}

TEST(RestoreRoundtripTest, RouterEpoch) {
  core::RouterOperator::Config config;
  config.num_ports = 1;
  core::RouterOperator original(std::move(config));
  ASSERT_TRUE(original.Open(TestContext()).ok());

  // Align a checkpoint barrier: the router's output epoch advances and
  // must survive the snapshot (recovery output-dedup depends on it).
  ControlMarker barrier;
  barrier.kind = MarkerKind::kCheckpointBarrier;
  barrier.epoch = 7;
  VectorCollector sink;
  original.OnMarker(barrier, &sink);

  const std::vector<uint8_t> state = Snapshot(&original);
  core::RouterOperator::Config config2;
  config2.num_ports = 1;
  core::RouterOperator restored(std::move(config2));
  ASSERT_TRUE(restored.Open(TestContext()).ok());
  Restore(&restored, state);
  EXPECT_EQ(Snapshot(&original), Snapshot(&restored));
}

}  // namespace
}  // namespace astream::spe
