#include "spe/state.h"

#include <gtest/gtest.h>

namespace astream::spe {
namespace {

TEST(StateWriterReaderTest, ScalarsRoundTrip) {
  StateWriter w;
  w.WriteI64(-42);
  w.WriteU64(7);
  w.WriteBool(true);
  w.WriteBool(false);
  w.WriteString("hello");
  StateReader r(w.TakeBuffer());
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadU64(), 7u);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_FALSE(r.ReadBool());
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_TRUE(r.Ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(StateWriterReaderTest, RowsAndBitsets) {
  StateWriter w;
  w.WriteRow(Row{1, 2, 3});
  w.WriteRow(Row{});
  DynamicBitset b;
  b.Set(3);
  b.Set(200);
  w.WriteBitset(b);
  StateReader r(w.TakeBuffer());
  EXPECT_EQ(r.ReadRow(), (Row{1, 2, 3}));
  EXPECT_EQ(r.ReadRow(), Row{});
  EXPECT_EQ(r.ReadBitset(), b);
  EXPECT_TRUE(r.Ok());
}

TEST(StateWriterReaderTest, ReadPastEndFailsGracefully) {
  StateWriter w;
  w.WriteI64(1);
  StateReader r(w.TakeBuffer());
  EXPECT_EQ(r.ReadI64(), 1);
  EXPECT_EQ(r.ReadI64(), 0);  // past end -> zero, flagged
  EXPECT_FALSE(r.Ok());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadRow(), Row{});
}

TEST(StateWriterReaderTest, CorruptLengthDoesNotOverread) {
  StateWriter w;
  w.WriteU64(1'000'000'000);  // bogus huge length
  StateReader r(w.TakeBuffer());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.Ok());

  StateWriter w2;
  w2.WriteU64(1'000'000'000);
  StateReader r2(w2.TakeBuffer());
  EXPECT_EQ(r2.ReadRow(), Row{});
  EXPECT_FALSE(r2.Ok());
}

TEST(CheckpointStoreTest, LifecycleAndCompletion) {
  CheckpointStore store;
  store.BeginCheckpoint(1, {{0, 10}, {1, 20}});
  EXPECT_EQ(store.LatestComplete(), nullptr);
  store.AddOperatorState(1, 0, 0, {1, 2, 3});
  store.MaybeComplete(1, 2);
  EXPECT_EQ(store.LatestComplete(), nullptr);  // still missing one
  store.AddOperatorState(1, 1, 0, {4});
  store.MaybeComplete(1, 2);
  auto cp = store.LatestComplete();
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->id, 1);
  EXPECT_EQ(cp->source_offsets.at(1), 20);
  EXPECT_EQ(cp->operator_state.at(CheckpointStore::StateKey(0, 0)).size(),
            3u);
}

TEST(CheckpointStoreTest, LatestCompletePrefersNewest) {
  CheckpointStore store;
  for (int64_t id = 1; id <= 3; ++id) {
    store.BeginCheckpoint(id, {});
    store.AddOperatorState(id, 0, 0, {});
    if (id != 3) store.MaybeComplete(id, 1);  // checkpoint 3 incomplete
  }
  auto cp = store.LatestComplete();
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->id, 2);
}

TEST(CheckpointStoreTest, AddToUnknownCheckpointIgnored) {
  CheckpointStore store;
  store.AddOperatorState(99, 0, 0, {1});
  store.MaybeComplete(99, 1);
  EXPECT_EQ(store.Get(99), nullptr);
}

}  // namespace
}  // namespace astream::spe
