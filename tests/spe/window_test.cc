#include "spe/window.h"

#include <gtest/gtest.h>

namespace astream::spe {
namespace {

TEST(WindowSpecTest, TumblingAssign) {
  const WindowSpec w = WindowSpec::Tumbling(10);
  std::vector<TimeWindow> out;
  w.AssignWindows(0, 0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (TimeWindow{0, 10}));

  out.clear();
  w.AssignWindows(0, 9, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (TimeWindow{0, 10}));

  out.clear();
  w.AssignWindows(0, 10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (TimeWindow{10, 20}));
}

TEST(WindowSpecTest, TumblingWithOrigin) {
  const WindowSpec w = WindowSpec::Tumbling(10);
  std::vector<TimeWindow> out;
  w.AssignWindows(100, 104, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (TimeWindow{100, 110}));
  // Events before the origin are not assigned.
  out.clear();
  w.AssignWindows(100, 99, &out);
  EXPECT_TRUE(out.empty());
}

TEST(WindowSpecTest, SlidingAssign) {
  const WindowSpec w = WindowSpec::Sliding(10, 5);
  std::vector<TimeWindow> out;
  w.AssignWindows(0, 12, &out);
  // Windows [5,15) and [10,20) contain t=12.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (TimeWindow{5, 15}));
  EXPECT_EQ(out[1], (TimeWindow{10, 20}));
}

TEST(WindowSpecTest, SlidingSmallSlideManyWindows) {
  const WindowSpec w = WindowSpec::Sliding(10, 1);
  std::vector<TimeWindow> out;
  w.AssignWindows(0, 50, &out);
  EXPECT_EQ(out.size(), 10u);
  for (const TimeWindow& tw : out) {
    EXPECT_TRUE(tw.Contains(50));
  }
}

TEST(WindowSpecTest, EdgesInRangeTumbling) {
  const WindowSpec w = WindowSpec::Tumbling(10);
  std::vector<TimestampMs> edges;
  w.EdgesInRange(0, 0, 30, &edges);
  // Starts 10, 20, 30; ends 10, 20, 30 (dedup).
  EXPECT_EQ(edges, (std::vector<TimestampMs>{10, 20, 30}));
}

TEST(WindowSpecTest, EdgesInRangeSliding) {
  const WindowSpec w = WindowSpec::Sliding(10, 4);
  std::vector<TimestampMs> edges;
  w.EdgesInRange(0, 0, 20, &edges);
  // Starts: 4, 8, 12, 16, 20. Ends: 10, 14, 18.
  EXPECT_EQ(edges,
            (std::vector<TimestampMs>{4, 8, 10, 12, 14, 16, 18, 20}));
}

TEST(WindowSpecTest, FirstEndAfter) {
  const WindowSpec w = WindowSpec::Sliding(10, 4);
  EXPECT_EQ(w.FirstEndAfter(0, 0), 10);
  EXPECT_EQ(w.FirstEndAfter(0, 9), 10);
  EXPECT_EQ(w.FirstEndAfter(0, 10), 14);  // strictly after
  EXPECT_EQ(w.FirstEndAfter(0, 13), 14);
  EXPECT_EQ(w.FirstEndAfter(100, 0), 110);
}

/// Property: every edge returned by EdgesInRange is the start or end of
/// some window instance, and window boundaries of assigned windows appear
/// as edges.
class WindowEdgeProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WindowEdgeProperty, EdgesMatchAssignment) {
  const auto [length, slide] = GetParam();
  const WindowSpec w = WindowSpec::Sliding(length, slide);
  const TimestampMs origin = 7;
  std::vector<TimestampMs> edges;
  w.EdgesInRange(origin, origin, origin + 200, &edges);
  for (TimestampMs e : edges) {
    const TimestampMs rel = e - origin;
    const bool is_start = rel % slide == 0;
    const bool is_end = rel >= length && (rel - length) % slide == 0;
    EXPECT_TRUE(is_start || is_end) << "edge " << e;
  }
  // Windows containing t=origin+57 have their boundaries in the edge set
  // (when within range).
  std::vector<TimeWindow> assigned;
  w.AssignWindows(origin, origin + 57, &assigned);
  for (const TimeWindow& tw : assigned) {
    if (tw.start > origin && tw.start <= origin + 200) {
      EXPECT_NE(std::find(edges.begin(), edges.end(), tw.start),
                edges.end());
    }
    if (tw.end <= origin + 200) {
      EXPECT_NE(std::find(edges.begin(), edges.end(), tw.end), edges.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, WindowEdgeProperty,
    ::testing::Values(std::make_pair(10, 10), std::make_pair(10, 3),
                      std::make_pair(25, 7), std::make_pair(13, 1),
                      std::make_pair(40, 40)));

}  // namespace
}  // namespace astream::spe
