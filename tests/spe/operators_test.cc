#include "spe/operators.h"

#include <gtest/gtest.h>

#include "spe/runner.h"

namespace astream::spe {
namespace {

/// Runs a single operator through the sync runner and collects outputs.
class SingleOpHarness {
 public:
  explicit SingleOpHarness(std::unique_ptr<Operator> op, int num_ports = 1) {
    TopologySpec spec;
    StageSpec stage;
    stage.name = "op";
    stage.num_ports = num_ports;
    stage.is_sink = true;
    Operator* raw = op.release();
    stage.factory = [raw](int) { return std::unique_ptr<Operator>(raw); };
    const int s = spec.AddStage(std::move(stage));
    spec.AddExternalInput({"a", s, 0, Partitioning::kHash});
    if (num_ports > 1) {
      spec.AddExternalInput({"b", s, 1, Partitioning::kHash});
    }
    runner_ = std::make_unique<SyncRunner>(
        std::move(spec),
        [this](int, int, const StreamElement& el) {
          if (el.kind == ElementKind::kRecord) records_.push_back(el.record);
        });
    EXPECT_TRUE(runner_->Start().ok());
  }

  void Push(int input, TimestampMs t, Row row) {
    runner_->Push(input, StreamElement::MakeRecord(t, std::move(row)));
  }
  void Watermark(TimestampMs wm) {
    runner_->Push(0, StreamElement::MakeWatermark(wm));
  }
  void WatermarkBoth(TimestampMs wm) {
    runner_->Push(0, StreamElement::MakeWatermark(wm));
    runner_->Push(1, StreamElement::MakeWatermark(wm));
  }
  void Finish() { runner_->FinishAndWait(); }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::unique_ptr<SyncRunner> runner_;
  std::vector<Record> records_;
};

TEST(WindowAggregateOperatorTest, TumblingSumPerKey) {
  SingleOpHarness h(std::make_unique<WindowAggregateOperator>(
      WindowSpec::Tumbling(10), AggSpec{AggKind::kSum, 1}, 0));
  h.Push(0, 1, Row{1, 5});
  h.Push(0, 2, Row{2, 7});
  h.Push(0, 9, Row{1, 3});
  h.Push(0, 12, Row{1, 100});  // next window
  h.Watermark(10);
  ASSERT_EQ(h.records().size(), 2u);
  // Ordered by key (std::map).
  EXPECT_EQ(h.records()[0].row, (Row{1, 8}));
  EXPECT_EQ(h.records()[0].event_time, 9);
  EXPECT_EQ(h.records()[1].row, (Row{2, 7}));
  h.Finish();
  ASSERT_EQ(h.records().size(), 3u);
  EXPECT_EQ(h.records()[2].row, (Row{1, 100}));
}

TEST(WindowAggregateOperatorTest, SlidingCountsOverlap) {
  SingleOpHarness h(std::make_unique<WindowAggregateOperator>(
      WindowSpec::Sliding(10, 5), AggSpec{AggKind::kCount, 1}, 0));
  h.Push(0, 7, Row{1, 1});
  h.Finish();
  // t=7 is in [0,10) and [5,15): two emissions of count 1.
  ASSERT_EQ(h.records().size(), 2u);
  EXPECT_EQ(h.records()[0].row, (Row{1, 1}));
  EXPECT_EQ(h.records()[1].row, (Row{1, 1}));
  EXPECT_EQ(h.records()[0].event_time, 9);
  EXPECT_EQ(h.records()[1].event_time, 14);
}

TEST(WindowAggregateOperatorTest, MinMaxAvg) {
  SingleOpHarness h(std::make_unique<WindowAggregateOperator>(
      WindowSpec::Tumbling(10), AggSpec{AggKind::kMax, 2}, 0));
  h.Push(0, 1, Row{1, 0, 5});
  h.Push(0, 2, Row{1, 0, 9});
  h.Push(0, 3, Row{1, 0, 2});
  h.Finish();
  ASSERT_EQ(h.records().size(), 1u);
  EXPECT_EQ(h.records()[0].row, (Row{1, 9}));
}

TEST(WindowAggregateOperatorTest, SessionWindowsMergeAndClose) {
  SingleOpHarness h(std::make_unique<WindowAggregateOperator>(
      WindowSpec::Session(5), AggSpec{AggKind::kSum, 1}, 0));
  h.Push(0, 1, Row{1, 10});
  h.Push(0, 4, Row{1, 20});   // merges (gap 5 > 3)
  h.Push(0, 20, Row{1, 30});  // separate session
  h.Watermark(10);            // first session closed at 4+5=9 <= 10
  ASSERT_EQ(h.records().size(), 1u);
  EXPECT_EQ(h.records()[0].row, (Row{1, 30}));
  EXPECT_EQ(h.records()[0].event_time, 8);  // last + gap - 1
  h.Finish();
  ASSERT_EQ(h.records().size(), 2u);
  EXPECT_EQ(h.records()[1].row, (Row{1, 30}));
}

TEST(WindowAggregateOperatorTest, SessionOutOfOrderMergesBackward) {
  SingleOpHarness h(std::make_unique<WindowAggregateOperator>(
      WindowSpec::Session(5), AggSpec{AggKind::kSum, 1}, 0));
  h.Push(0, 10, Row{1, 1});
  h.Push(0, 20, Row{1, 2});
  h.Push(0, 13, Row{1, 4});  // merges backward into the t=10 session
  h.Finish();
  // Sessions: {10,13} (13 -> 20 gap is 7 > 5) and {20}.
  ASSERT_EQ(h.records().size(), 2u);
  EXPECT_EQ(h.records()[0].row, (Row{1, 5}));
  EXPECT_EQ(h.records()[0].event_time, 17);
  EXPECT_EQ(h.records()[1].row, (Row{1, 2}));
}

TEST(WindowAggregateOperatorTest, IgnoresPreOriginEvents) {
  SingleOpHarness h(std::make_unique<WindowAggregateOperator>(
      WindowSpec::Tumbling(10), AggSpec{AggKind::kSum, 1}, 100));
  h.Push(0, 50, Row{1, 5});
  h.Push(0, 105, Row{1, 7});
  h.Finish();
  ASSERT_EQ(h.records().size(), 1u);
  EXPECT_EQ(h.records()[0].row, (Row{1, 7}));
}

TEST(WindowJoinOperatorTest, JoinsWithinWindowOnKey) {
  SingleOpHarness h(
      std::make_unique<WindowJoinOperator>(WindowSpec::Tumbling(10), 0), 2);
  h.Push(0, 1, Row{1, 100});
  h.Push(1, 2, Row{1, 200});
  h.Push(0, 3, Row{2, 300});
  h.Push(1, 4, Row{3, 400});  // no A-side key 3
  h.Push(0, 15, Row{1, 500});
  h.Push(1, 16, Row{1, 600});
  h.WatermarkBoth(10);
  ASSERT_EQ(h.records().size(), 1u);
  EXPECT_EQ(h.records()[0].row, (Row{1, 100, 1, 200}));
  EXPECT_EQ(h.records()[0].event_time, 9);
  h.Finish();
  ASSERT_EQ(h.records().size(), 2u);
  EXPECT_EQ(h.records()[1].row, (Row{1, 500, 1, 600}));
}

TEST(WindowJoinOperatorTest, CrossProductWithinKey) {
  SingleOpHarness h(
      std::make_unique<WindowJoinOperator>(WindowSpec::Tumbling(10), 0), 2);
  h.Push(0, 1, Row{1, 1});
  h.Push(0, 2, Row{1, 2});
  h.Push(1, 3, Row{1, 3});
  h.Push(1, 4, Row{1, 4});
  h.Finish();
  EXPECT_EQ(h.records().size(), 4u);
}

TEST(WindowJoinOperatorTest, RejectsSessionWindows) {
  TopologySpec spec;
  StageSpec stage;
  stage.name = "join";
  stage.num_ports = 2;
  stage.factory = [](int) {
    return std::make_unique<WindowJoinOperator>(WindowSpec::Session(5), 0);
  };
  const int s = spec.AddStage(std::move(stage));
  spec.AddExternalInput({"a", s, 0, Partitioning::kHash});
  spec.AddExternalInput({"b", s, 1, Partitioning::kHash});
  SyncRunner runner(std::move(spec), nullptr);
  EXPECT_FALSE(runner.Start().ok());
}

TEST(OperatorSnapshotTest, AggregateRoundTrip) {
  WindowAggregateOperator op(WindowSpec::Sliding(10, 5),
                             AggSpec{AggKind::kSum, 1}, 0);
  OperatorContext ctx;
  ASSERT_TRUE(op.Open(ctx).ok());

  class NullCollector : public Collector {
   public:
    void Emit(StreamElement) override {}
  } null_out;
  Record r;
  r.event_time = 7;
  r.row = Row{1, 42};
  op.ProcessRecord(0, r, &null_out);

  StateWriter writer;
  ASSERT_TRUE(op.SnapshotState(&writer).ok());

  WindowAggregateOperator restored(WindowSpec::Sliding(10, 5),
                                   AggSpec{AggKind::kSum, 1}, 0);
  ASSERT_TRUE(restored.Open(ctx).ok());
  StateReader reader(writer.TakeBuffer());
  ASSERT_TRUE(restored.RestoreState(&reader).ok());

  class RecordingCollector : public Collector {
   public:
    void Emit(StreamElement el) override { records.push_back(el.record); }
    std::vector<Record> records;
  } out;
  restored.OnWatermark(kMaxTimestamp, &out);
  ASSERT_EQ(out.records.size(), 2u);  // windows [0,10) and [5,15)
  EXPECT_EQ(out.records[0].row, (Row{1, 42}));
  EXPECT_EQ(out.records[1].row, (Row{1, 42}));
}

}  // namespace
}  // namespace astream::spe
