// Unit tests for the fault-injection + recovery building blocks: injector
// determinism, runner poisoning under injected crashes, supervisor backoff
// and terminal failure, stall detection, and checkpoint retention.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "spe/operators.h"
#include "spe/runner.h"
#include "spe/state.h"
#include "spe/supervisor.h"

namespace astream::spe {
namespace {

using fault::FaultAction;
using fault::FaultInjector;
using fault::FaultPoint;

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  auto configure = [](FaultInjector* injector) {
    FaultInjector::Rule coin;
    coin.point = FaultPoint::kChannelPush;
    coin.action = FaultAction::kDelay;
    coin.probability = 0.25;
    coin.max_fires = 0;
    coin.delay_us = 5;
    injector->AddRule(coin);
    FaultInjector::Rule threshold;
    threshold.point = FaultPoint::kOperatorProcess;
    threshold.action = FaultAction::kThrow;
    threshold.after_hits = 40;
    injector->AddRule(threshold);
  };
  FaultInjector a(7);
  FaultInjector b(7);
  FaultInjector c(8);
  configure(&a);
  configure(&b);
  configure(&c);
  std::vector<bool> fires_a;
  std::vector<bool> fires_b;
  std::vector<bool> fires_c;
  for (int i = 0; i < 200; ++i) {
    fires_a.push_back(static_cast<bool>(a.Decide(FaultPoint::kChannelPush)));
    fires_b.push_back(static_cast<bool>(b.Decide(FaultPoint::kChannelPush)));
    fires_c.push_back(static_cast<bool>(c.Decide(FaultPoint::kChannelPush)));
  }
  EXPECT_EQ(fires_a, fires_b);
  EXPECT_NE(fires_a, fires_c);  // a different seed reshuffles the coin
  EXPECT_GT(a.fires(FaultPoint::kChannelPush), 0);
  EXPECT_LT(a.fires(FaultPoint::kChannelPush), 200);
}

TEST(FaultInjectorTest, AfterHitsAndMaxFiresAreExact) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.point = FaultPoint::kOperatorProcess;
  rule.action = FaultAction::kThrow;
  rule.after_hits = 5;
  rule.max_fires = 2;
  injector.AddRule(rule);
  std::vector<int> fired_on;
  for (int i = 1; i <= 12; ++i) {
    if (injector.Decide(FaultPoint::kOperatorProcess)) fired_on.push_back(i);
  }
  EXPECT_EQ(fired_on, (std::vector<int>{6, 7}));
  EXPECT_EQ(injector.hits(FaultPoint::kOperatorProcess), 12);
  EXPECT_EQ(injector.fires(FaultPoint::kOperatorProcess), 2);
  EXPECT_EQ(injector.total_fires(), 2);
}

TEST(FaultInjectorTest, StageFilterRestrictsFiring) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.point = FaultPoint::kOperatorProcess;
  rule.action = FaultAction::kFail;
  rule.stage = 2;
  injector.AddRule(rule);
  EXPECT_FALSE(injector.Decide(FaultPoint::kOperatorProcess, 0));
  EXPECT_FALSE(injector.Decide(FaultPoint::kOperatorProcess, 1));
  EXPECT_TRUE(injector.Decide(FaultPoint::kOperatorProcess, 2));
  EXPECT_FALSE(injector.Decide(FaultPoint::kOperatorProcess, 2));  // max 1
}

TopologySpec PassThroughSpec() {
  TopologySpec spec;
  StageSpec stage;
  stage.name = "pass";
  stage.parallelism = 1;
  stage.is_sink = true;
  stage.factory = [](int) {
    return std::make_unique<FilterOperator>([](const Row&) { return true; });
  };
  const int s = spec.AddStage(std::move(stage));
  spec.AddExternalInput({"in", s, 0, Partitioning::kHash});
  return spec;
}

// Satellite (b): an injected operator crash poisons the runner — pushes
// return false instead of blocking, FinishAndWait/Failure surface the
// task's failure Status, and Failed() flips.
TEST(RunnerPoisonTest, InjectedThrowPoisonsInsteadOfHanging) {
  FaultInjector injector(3);
  FaultInjector::Rule crash;
  crash.point = FaultPoint::kOperatorProcess;
  crash.action = FaultAction::kThrow;
  crash.after_hits = 3;
  injector.AddRule(crash);
  fault::ScopedFaultInjection scoped(&injector);

  ThreadedRunner runner(PassThroughSpec(), [](int, int, const StreamElement&) {},
                        nullptr, 16);
  ASSERT_TRUE(runner.Start().ok());
  // Push until the poison propagates back as a refused push.
  bool refused = false;
  for (int i = 0; i < 2000 && !refused; ++i) {
    refused = !runner.Push(0, StreamElement::MakeRecord(i, Row{i, i}));
    if (!refused) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  EXPECT_TRUE(refused);
  EXPECT_TRUE(runner.Failed());
  runner.FinishAndWait();  // must not hang on a poisoned runner
  const Status failure = runner.Failure();
  EXPECT_FALSE(failure.ok());
  EXPECT_NE(failure.message().find("pass"), std::string::npos)
      << failure.ToString();
  EXPECT_EQ(injector.fires(FaultPoint::kOperatorProcess), 1);
}

TEST(RunnerPoisonTest, DeclareFailedMatchesTaskFailurePath) {
  ThreadedRunner runner(PassThroughSpec(), [](int, int, const StreamElement&) {},
                        nullptr, 16);
  ASSERT_TRUE(runner.Start().ok());
  EXPECT_FALSE(runner.Failed());
  runner.DeclareFailed(Status::Aborted("watchdog: task stalled"));
  EXPECT_TRUE(runner.Failed());
  EXPECT_FALSE(runner.Push(0, StreamElement::MakeRecord(1, Row{1, 1})));
  runner.FinishAndWait();
  EXPECT_FALSE(runner.Failure().ok());
}

TEST(SupervisorTest, RetriesWithBackoffThenRecovers) {
  Supervisor::Options options;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 4;
  options.max_restart_attempts = 8;
  int calls = 0;
  int recovered_attempts = 0;
  int64_t recovered_latency = -1;
  Supervisor::Hooks hooks;
  hooks.recover = [&](int attempt) {
    ++calls;
    EXPECT_EQ(attempt, calls - 1);  // zero-based attempt index
    return calls < 3 ? Status::Aborted("still broken") : Status::OK();
  };
  hooks.on_recovered = [&](int attempts, int64_t latency_ms) {
    recovered_attempts = attempts;
    recovered_latency = latency_ms;
  };
  Supervisor supervisor(options, hooks);
  EXPECT_TRUE(supervisor.RecoverNow(Status::Aborted("crash")).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(recovered_attempts, 3);
  EXPECT_GE(recovered_latency, 0);
  EXPECT_EQ(supervisor.recoveries(), 1);
  EXPECT_TRUE(supervisor.terminal().ok());
}

TEST(SupervisorTest, ExhaustedAttemptsAreTerminal) {
  Supervisor::Options options;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  options.max_restart_attempts = 3;
  int calls = 0;
  Status terminal_seen;
  Supervisor::Hooks hooks;
  hooks.recover = [&](int) {
    ++calls;
    return Status::Aborted("permanently broken");
  };
  hooks.on_terminal = [&](const Status& s) { terminal_seen = s; };
  Supervisor supervisor(options, hooks);
  EXPECT_FALSE(supervisor.RecoverNow(Status::Aborted("crash")).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(supervisor.terminal().ok());
  EXPECT_FALSE(terminal_seen.ok());
  // Terminal is sticky: no further recovery attempts are made.
  EXPECT_FALSE(supervisor.RecoverNow(Status::Aborted("again")).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(supervisor.recoveries(), 0);
}

TEST(SupervisorTest, WatchdogTicks) {
  Supervisor::Options options;
  options.poll_interval_ms = 1;
  std::atomic<int> ticks{0};
  Supervisor::Hooks hooks;
  hooks.tick = [&] { ticks.fetch_add(1); };
  Supervisor supervisor(options, hooks);
  supervisor.StartWatchdog();
  for (int i = 0; i < 500 && ticks.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  supervisor.StopWatchdog();
  EXPECT_GE(ticks.load(), 3);
}

TEST(StallDetectorTest, FrozenTaskWithBacklogIsStalled) {
  StallDetector detector(50);
  std::vector<ThreadedRunner::TaskHealthSample> samples(1);
  samples[0].stage = 0;
  samples[0].instance = 0;
  samples[0].iterations = 10;
  samples[0].queued = 4;
  EXPECT_TRUE(detector.Observe(samples, 1000).ok());  // first sighting
  EXPECT_TRUE(detector.Observe(samples, 1040).ok());  // within timeout
  EXPECT_FALSE(detector.Observe(samples, 1051).ok());  // frozen past timeout
}

TEST(StallDetectorTest, ProgressOrDrainedQueueResetsTheClock) {
  StallDetector detector(50);
  std::vector<ThreadedRunner::TaskHealthSample> samples(1);
  samples[0].iterations = 10;
  samples[0].queued = 4;
  EXPECT_TRUE(detector.Observe(samples, 1000).ok());
  samples[0].iterations = 11;  // progress
  EXPECT_TRUE(detector.Observe(samples, 1060).ok());
  EXPECT_TRUE(detector.Observe(samples, 1100).ok());
  samples[0].queued = 0;  // idle task, frozen counter: not a stall
  EXPECT_TRUE(detector.Observe(samples, 1300).ok());
  samples[0].queued = 4;
  EXPECT_TRUE(detector.Observe(samples, 1301).ok());
  EXPECT_FALSE(detector.Observe(samples, 1360).ok());
  detector.Reset();  // after a restart the history is gone
  EXPECT_TRUE(detector.Observe(samples, 1400).ok());
}

// Satellite (a): the store keeps only the newest K completed checkpoints
// (plus in-flight ones) and LatestComplete always points at the newest.
TEST(CheckpointRetentionTest, PrunesOldCompletedKeepsInFlight) {
  CheckpointStore store;
  store.SetRetention(2);
  auto complete = [&](int64_t id) {
    store.BeginCheckpoint(id, {{0, id * 10}});
    store.AddOperatorState(id, 0, 0, {1, 2, 3});
    store.MaybeComplete(id, 1);
  };
  complete(1);
  complete(2);
  complete(3);
  complete(4);
  store.BeginCheckpoint(5, {{0, 50}});  // in-flight, never pruned
  EXPECT_EQ(store.NumRetained(), 3u);   // {3, 4} completed + {5} in-flight
  EXPECT_EQ(store.Get(1), nullptr);
  EXPECT_EQ(store.Get(2), nullptr);
  ASSERT_NE(store.Get(3), nullptr);
  ASSERT_NE(store.LatestComplete(), nullptr);
  EXPECT_EQ(store.LatestComplete()->id, 4);
  EXPECT_EQ(store.Get(5)->complete, false);
}

TEST(CheckpointRetentionTest, OutstandingReadersKeepPrunedSnapshotsAlive) {
  CheckpointStore store;
  store.SetRetention(1);
  store.BeginCheckpoint(1, {{0, 5}});
  store.AddOperatorState(1, 0, 0, {9});
  store.MaybeComplete(1, 1);
  std::shared_ptr<const CheckpointStore::Checkpoint> held = store.Get(1);
  ASSERT_NE(held, nullptr);
  store.BeginCheckpoint(2, {{0, 9}});
  store.AddOperatorState(2, 0, 0, {8});
  store.MaybeComplete(2, 1);
  EXPECT_EQ(store.Get(1), nullptr);  // pruned from the store...
  EXPECT_EQ(held->id, 1);            // ...but still readable mid-restore
  EXPECT_EQ(held->operator_state.at(CheckpointStore::StateKey(0, 0)),
            (std::vector<uint8_t>{9}));
}

TEST(CheckpointRetentionTest, BeginOverwritesStaleInFlightEntry) {
  // Replay re-triggers a checkpoint that was in flight at crash time; the
  // fresh BeginCheckpoint must discard the stale partial states.
  CheckpointStore store;
  store.BeginCheckpoint(7, {{0, 100}});
  store.AddOperatorState(7, 0, 0, {1});
  store.BeginCheckpoint(7, {{0, 100}});
  store.AddOperatorState(7, 0, 0, {2});
  store.MaybeComplete(7, 1);
  ASSERT_NE(store.LatestComplete(), nullptr);
  EXPECT_EQ(store.LatestComplete()->operator_state.at(
                CheckpointStore::StateKey(0, 0)),
            (std::vector<uint8_t>{2}));
}

}  // namespace
}  // namespace astream::spe
