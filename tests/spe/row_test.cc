#include "spe/row.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace astream::spe {
namespace {

TEST(RowTest, CopyIsSharedUntilMutation) {
  Row a{1, 2, 3};
  Row b = a;  // refcount bump, no data copy
  EXPECT_TRUE(b.SharesStorageWith(a));
  EXPECT_EQ(b, a);

  b.Mutate()[1] = 99;  // copy-on-write: b unshares, a is untouched
  EXPECT_FALSE(b.SharesStorageWith(a));
  EXPECT_EQ(a.At(1), 2);
  EXPECT_EQ(b.At(1), 99);
}

TEST(RowTest, MutateOnUniquelyOwnedRowDoesNotCopy) {
  Row a{1, 2, 3};
  const Value* before = a.values().data();
  a.Mutate()[0] = 7;  // sole owner: handed out in place
  EXPECT_EQ(a.values().data(), before);
  EXPECT_EQ(a.key(), 7);
}

TEST(RowTest, MutateCanResize) {
  Row a{5};
  Row frozen = a;
  auto& cols = a.Mutate();
  cols.push_back(6);
  cols.push_back(7);
  EXPECT_EQ(a.NumColumns(), 3u);
  EXPECT_EQ(frozen.NumColumns(), 1u);
  EXPECT_EQ(a.At(2), 7);
}

TEST(RowTest, ConcatComposesWithoutCopying) {
  Row left{1, 2};
  Row right{3, 4, 5};
  Row joined = Row::Concat(left, right);
  EXPECT_TRUE(joined.IsComposed());
  EXPECT_EQ(joined.NumColumns(), 5u);
  EXPECT_EQ(joined.key(), 1);  // key comes from the leftmost leaf
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(joined.At(i), static_cast<Value>(i + 1));
  }
  // Parents stay live and independent.
  EXPECT_EQ(left.At(0), 1);
  EXPECT_EQ(right.At(2), 5);
}

TEST(RowTest, ConcatWithEmptySideReturnsOtherSide) {
  Row left{1, 2};
  Row empty;
  Row r1 = Row::Concat(left, empty);
  EXPECT_TRUE(r1.SharesStorageWith(left));
  Row r2 = Row::Concat(empty, left);
  EXPECT_TRUE(r2.SharesStorageWith(left));
}

TEST(RowTest, ComposedRowFlattensOnMutate) {
  Row joined = Row::Concat(Row{1, 2}, Row{3});
  ASSERT_TRUE(joined.IsComposed());
  joined.Mutate()[2] = 30;
  EXPECT_FALSE(joined.IsComposed());
  EXPECT_EQ(joined.At(0), 1);
  EXPECT_EQ(joined.At(2), 30);
}

TEST(RowTest, MutatingParentAfterConcatDoesNotAffectJoinOutput) {
  Row left{1, 2};
  Row right{3};
  Row joined = Row::Concat(left, right);
  left.Mutate()[0] = 100;  // parent payload is frozen by the composed ref
  EXPECT_EQ(joined.At(0), 1);
  EXPECT_EQ(left.At(0), 100);
}

TEST(RowTest, NestedConcatFlattensInOrder) {
  Row abc = Row::Concat(Row::Concat(Row{1}, Row{2}), Row{3});
  std::vector<Value> out;
  abc.AppendTo(&out);
  EXPECT_EQ(out, (std::vector<Value>{1, 2, 3}));
  EXPECT_EQ(abc.values(), out);  // lazy flatten cache agrees
}

TEST(RowTest, EqualityComparesContentAcrossRepresentations) {
  Row flat{1, 2, 3};
  Row composed = Row::Concat(Row{1}, Row{2, 3});
  EXPECT_EQ(flat, composed);
  Row different{1, 2, 4};
  EXPECT_NE(flat, different);
}

TEST(RowTest, FanOutSharingMirrorsRouterBehavior) {
  // The Router's per-query fan-out: N copies of one result row must all
  // share one payload (rows_shared accounting depends on this).
  Row src{42, 7};
  std::vector<Row> out(64);
  for (auto& r : out) r = src;
  for (const auto& r : out) EXPECT_TRUE(r.SharesStorageWith(src));
}

TEST(RowTest, ConcurrentReadsOfSharedPayloadAreSafe) {
  // Immutable-once-shared contract: many threads may read rows that
  // reference one payload (run under TSan in verify.sh).
  Row src = Row::Concat(Row{1, 2}, Row{3, 4});
  std::vector<Row> copies(4, src);
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&copies, t] {
      Value sum = 0;
      for (int i = 0; i < 1000; ++i) {
        for (size_t c = 0; c < copies[t].NumColumns(); ++c) {
          sum += copies[t].At(c);
        }
        sum += copies[t].values()[0];  // exercises the flatten cache race
      }
      EXPECT_GT(sum, 0);
    });
  }
  for (auto& r : readers) r.join();
}

}  // namespace
}  // namespace astream::spe
