#include "spe/runner.h"

#include <gtest/gtest.h>

#include <mutex>

#include "spe/operators.h"

namespace astream::spe {
namespace {

/// Collects everything a sink stage emits, thread-safely.
struct SinkCollector {
  std::mutex mutex;
  std::vector<Record> records;
  std::vector<TimestampMs> watermarks;
  std::vector<ControlMarker> markers;
  int done_count = 0;

  SinkFn AsFn() {
    return [this](int stage, int instance, const StreamElement& el) {
      (void)stage;
      (void)instance;
      std::lock_guard<std::mutex> lock(mutex);
      switch (el.kind) {
        case ElementKind::kRecord:
          records.push_back(el.record);
          break;
        case ElementKind::kWatermark:
          watermarks.push_back(el.watermark);
          break;
        case ElementKind::kMarker:
          markers.push_back(el.marker);
          break;
        case ElementKind::kDone:
          ++done_count;
          break;
      }
    };
  }
};

/// Records the changelog/marker + element sequence it observes (for
/// alignment tests).
class TraceOperator : public Operator {
 public:
  void ProcessRecord(int port, Record record, Collector* out) override {
    trace.push_back("r" + std::to_string(port) + ":" +
                    std::to_string(record.event_time));
    out->Emit(StreamElement::MakeRecord(record.event_time,
                                        std::move(record.row)));
  }
  void OnWatermark(TimestampMs wm, Collector* out) override {
    (void)out;
    if (wm != kMaxTimestamp) trace.push_back("w:" + std::to_string(wm));
  }
  void OnMarker(const ControlMarker& m, Collector* out) override {
    (void)out;
    trace.push_back("m:" + std::to_string(m.epoch));
  }

  std::vector<std::string> trace;
};

TopologySpec SimpleFilterSpec(int parallelism) {
  TopologySpec spec;
  StageSpec filter;
  filter.name = "filter";
  filter.parallelism = parallelism;
  filter.is_sink = true;
  filter.factory = [](int) {
    return std::make_unique<FilterOperator>(
        [](const Row& row) { return row.At(1) % 2 == 0; });
  };
  const int s = spec.AddStage(std::move(filter));
  spec.AddExternalInput({"in", s, 0, Partitioning::kHash});
  return spec;
}

TEST(SyncRunnerTest, FilterPipeline) {
  SinkCollector sink;
  SyncRunner runner(SimpleFilterSpec(1), sink.AsFn());
  ASSERT_TRUE(runner.Start().ok());
  for (int i = 0; i < 10; ++i) {
    runner.Push(0, StreamElement::MakeRecord(i, Row{i, i}));
  }
  runner.FinishAndWait();
  EXPECT_EQ(sink.records.size(), 5u);
  for (const Record& r : sink.records) {
    EXPECT_EQ(r.row.At(1) % 2, 0);
  }
  EXPECT_EQ(runner.StageRecordsIn(0), 10);
  EXPECT_EQ(runner.StageRecordsOut(0), 5);
  EXPECT_EQ(sink.done_count, 1);
}

TEST(SyncRunnerTest, HashPartitioningCoversAllInstances) {
  SinkCollector sink;
  SyncRunner runner(SimpleFilterSpec(4), sink.AsFn());
  ASSERT_TRUE(runner.Start().ok());
  for (int i = 0; i < 100; ++i) {
    runner.Push(0, StreamElement::MakeRecord(i, Row{i, 0}));
  }
  runner.FinishAndWait();
  EXPECT_EQ(sink.records.size(), 100u);
  EXPECT_EQ(sink.done_count, 4);
}

TEST(SyncRunnerTest, ValidateRejectsUnfedPort) {
  TopologySpec spec;
  StageSpec s;
  s.name = "orphan";
  s.factory = [](int) { return std::make_unique<PassThroughOperator>(); };
  spec.AddStage(std::move(s));
  SinkCollector sink;
  SyncRunner runner(std::move(spec), sink.AsFn());
  EXPECT_FALSE(runner.Start().ok());
}

/// Two-stage topology where the second stage has two input ports fed by
/// two upstream stages; checks watermark minimization and marker
/// alignment.
TEST(SyncRunnerTest, WatermarkIsMinAcrossPorts) {
  TopologySpec spec;
  StageSpec a;
  a.name = "a";
  a.factory = [](int) { return std::make_unique<PassThroughOperator>(); };
  const int sa = spec.AddStage(std::move(a));
  StageSpec b;
  b.name = "b";
  b.factory = [](int) { return std::make_unique<PassThroughOperator>(); };
  const int sb = spec.AddStage(std::move(b));

  TraceOperator* trace_op = nullptr;
  StageSpec join;
  join.name = "join";
  join.num_ports = 2;
  join.is_sink = true;
  join.factory = [&trace_op](int) {
    auto op = std::make_unique<TraceOperator>();
    trace_op = op.get();
    return op;
  };
  join.inputs = {{sa, 0, Partitioning::kHash},
                 {sb, 1, Partitioning::kHash}};
  spec.AddStage(std::move(join));
  spec.AddExternalInput({"a", sa, 0, Partitioning::kHash});
  spec.AddExternalInput({"b", sb, 0, Partitioning::kHash});

  SinkCollector sink;
  SyncRunner runner(std::move(spec), sink.AsFn());
  ASSERT_TRUE(runner.Start().ok());

  runner.Push(0, StreamElement::MakeWatermark(10));
  // Combined watermark still at min (port 1 has none) — no w in trace.
  EXPECT_TRUE(trace_op->trace.empty());
  runner.Push(1, StreamElement::MakeWatermark(5));
  ASSERT_EQ(trace_op->trace.size(), 1u);
  EXPECT_EQ(trace_op->trace[0], "w:5");
  runner.Push(1, StreamElement::MakeWatermark(20));
  EXPECT_EQ(trace_op->trace.back(), "w:10");
  runner.FinishAndWait();
}

TEST(SyncRunnerTest, MarkerAlignmentBlocksEarlySender) {
  TopologySpec spec;
  TraceOperator* trace_op = nullptr;
  StageSpec join;
  join.name = "join";
  join.num_ports = 2;
  join.is_sink = true;
  join.factory = [&trace_op](int) {
    auto op = std::make_unique<TraceOperator>();
    trace_op = op.get();
    return op;
  };
  const int sj = spec.AddStage(std::move(join));
  spec.AddExternalInput({"a", sj, 0, Partitioning::kHash});
  spec.AddExternalInput({"b", sj, 1, Partitioning::kHash});

  SinkCollector sink;
  SyncRunner runner(std::move(spec), sink.AsFn());
  ASSERT_TRUE(runner.Start().ok());

  ControlMarker marker;
  marker.kind = MarkerKind::kChangelog;
  marker.epoch = 1;
  marker.time = 100;

  runner.Push(0, StreamElement::MakeRecord(50, Row{1}));
  // Marker arrives on port 0 only; port 0's input is now blocked.
  runner.Push(0, StreamElement::MakeMarker(marker));
  // Elements from port 0 after its marker must be buffered...
  runner.Push(0, StreamElement::MakeRecord(120, Row{2}));
  // ...while port 1 keeps flowing.
  runner.Push(1, StreamElement::MakeRecord(60, Row{3}));
  ASSERT_EQ(trace_op->trace.size(), 2u);
  EXPECT_EQ(trace_op->trace[0], "r0:50");
  EXPECT_EQ(trace_op->trace[1], "r1:60");
  // Port 1 delivers the marker: alignment completes, the marker fires
  // exactly once, then the buffered record drains.
  runner.Push(1, StreamElement::MakeMarker(marker));
  ASSERT_EQ(trace_op->trace.size(), 4u);
  EXPECT_EQ(trace_op->trace[2], "m:1");
  EXPECT_EQ(trace_op->trace[3], "r0:120");
  runner.FinishAndWait();
  // The sink saw the marker exactly once (forwarded post-alignment).
  EXPECT_EQ(sink.markers.size(), 1u);
}

TEST(ThreadedRunnerTest, FilterPipelineParallel) {
  SinkCollector sink;
  ThreadedRunner runner(SimpleFilterSpec(3), sink.AsFn(), nullptr, 64);
  ASSERT_TRUE(runner.Start().ok());
  for (int i = 0; i < 1000; ++i) {
    runner.Push(0, StreamElement::MakeRecord(i, Row{i, i}));
  }
  runner.FinishAndWait();
  EXPECT_EQ(sink.records.size(), 500u);
  EXPECT_EQ(sink.done_count, 3);
}

TEST(ThreadedRunnerTest, CancelStopsQuickly) {
  SinkCollector sink;
  ThreadedRunner runner(SimpleFilterSpec(2), sink.AsFn(), nullptr, 16);
  ASSERT_TRUE(runner.Start().ok());
  for (int i = 0; i < 100; ++i) {
    runner.Push(0, StreamElement::MakeRecord(i, Row{i, i}));
  }
  runner.Cancel();
  // No crash, push after cancel is rejected.
  EXPECT_FALSE(runner.Push(0, StreamElement::MakeRecord(0, Row{0, 0})));
}

TEST(ThreadedRunnerTest, MarkerAlignedAcrossParallelInstances) {
  // filter(par 2) -> trace(par 1, 1 port): the downstream instance has two
  // senders; the marker must be delivered exactly once.
  TopologySpec spec;
  StageSpec filter;
  filter.name = "filter";
  filter.parallelism = 2;
  filter.factory = [](int) {
    return std::make_unique<FilterOperator>([](const Row&) { return true; });
  };
  const int sf = spec.AddStage(std::move(filter));
  StageSpec trace;
  trace.name = "trace";
  trace.is_sink = true;
  trace.factory = [](int) { return std::make_unique<TraceOperator>(); };
  trace.inputs = {{sf, 0, Partitioning::kHash}};
  spec.AddStage(std::move(trace));
  spec.AddExternalInput({"in", sf, 0, Partitioning::kHash});

  SinkCollector sink;
  ThreadedRunner runner(std::move(spec), sink.AsFn(), nullptr, 64);
  ASSERT_TRUE(runner.Start().ok());
  for (int i = 0; i < 50; ++i) {
    runner.Push(0, StreamElement::MakeRecord(i, Row{i}));
  }
  ControlMarker marker;
  marker.kind = MarkerKind::kChangelog;
  marker.epoch = 7;
  marker.time = 100;
  runner.InjectMarker(marker);
  for (int i = 0; i < 50; ++i) {
    runner.Push(0, StreamElement::MakeRecord(100 + i, Row{i}));
  }
  runner.FinishAndWait();
  EXPECT_EQ(sink.records.size(), 100u);
  ASSERT_EQ(sink.markers.size(), 1u);
  EXPECT_EQ(sink.markers[0].epoch, 7);
}

}  // namespace
}  // namespace astream::spe
