// Run-file format: round trips, multi-block layout, atomic temp-file
// rename, and — the property recovery depends on — wholesale rejection of
// torn or corrupted files by footer/CRC validation.

#include "storage/run_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/injector.h"

namespace astream::storage {
namespace {

namespace fs = std::filesystem;

class RunFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("astream_run_file_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<uint8_t> Payload(int i, size_t size) {
  std::vector<uint8_t> p(size);
  for (size_t j = 0; j < size; ++j) {
    p[j] = static_cast<uint8_t>((i * 131 + j) & 0xFF);
  }
  return p;
}

TEST_F(RunFileTest, RoundTripWithMeta) {
  const std::string path = Path("basic.run");
  RunWriter writer(path);
  for (int i = 0; i < 100; ++i) {
    const auto payload = Payload(i, 16 + i % 7);
    ASSERT_TRUE(writer.Append(i * 3, payload.data(), payload.size()).ok());
  }
  writer.SetMeta({0xAB, 0xCD, 0xEF});
  auto info = writer.Finish();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->num_entries, 100u);
  EXPECT_EQ(info->min_key, 0);
  EXPECT_EQ(info->max_key, 297);
  EXPECT_EQ(info->path, path);
  EXPECT_GT(info->file_bytes, 0u);

  auto reader = RunReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_entries(), 100u);
  EXPECT_EQ((*reader)->meta(), (std::vector<uint8_t>{0xAB, 0xCD, 0xEF}));
  int64_t key = 0;
  std::vector<uint8_t> payload;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*reader)->Next(&key, &payload));
    EXPECT_EQ(key, i * 3);
    EXPECT_EQ(payload, Payload(i, 16 + i % 7));
  }
  EXPECT_FALSE((*reader)->Next(&key, &payload));
  EXPECT_TRUE((*reader)->status().ok());
}

TEST_F(RunFileTest, MultiBlockKeepsOrderAcrossBlockBoundaries) {
  const std::string path = Path("blocks.run");
  RunWriter::Options options;
  options.block_bytes = 256;  // force many blocks
  RunWriter writer(path, options);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto payload = Payload(i, 40);
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = RunReader::Open(path);
  ASSERT_TRUE(reader.ok());
  int64_t key = 0;
  std::vector<uint8_t> payload;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*reader)->Next(&key, &payload)) << "entry " << i;
    EXPECT_EQ(key, i);
    EXPECT_EQ(payload, Payload(i, 40));
  }
  EXPECT_FALSE((*reader)->Next(&key, &payload));
}

TEST_F(RunFileTest, FinishRenamesAtomicallyAndAbortCleansUp) {
  const std::string path = Path("atomic.run");
  {
    RunWriter writer(path);
    const auto payload = Payload(0, 8);
    ASSERT_TRUE(writer.Append(1, payload.data(), payload.size()).ok());
    // Before Finish only the temp file exists.
    EXPECT_FALSE(fs::exists(path));
    ASSERT_TRUE(writer.Finish().ok());
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
  }
  const std::string aborted = Path("aborted.run");
  {
    RunWriter writer(aborted);
    const auto payload = Payload(0, 8);
    ASSERT_TRUE(writer.Append(1, payload.data(), payload.size()).ok());
    writer.Abort();
  }
  EXPECT_FALSE(fs::exists(aborted));
  EXPECT_FALSE(fs::exists(aborted + ".tmp"));
}

TEST_F(RunFileTest, TornTailRejected) {
  const std::string path = Path("torn.run");
  RunWriter writer(path);
  for (int i = 0; i < 50; ++i) {
    const auto payload = Payload(i, 64);
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  // Truncate mid-footer: the file a crash between write and rename would
  // leave behind. Every truncation point must be rejected at Open.
  const auto full = fs::file_size(path);
  for (const uint64_t keep : {full - 1, full - 12, full - 25, full / 2,
                              static_cast<uint64_t>(10)}) {
    fs::resize_file(path, keep);
    auto reader = RunReader::Open(path);
    EXPECT_FALSE(reader.ok()) << "truncated to " << keep << " bytes";
    // Restore for the next iteration.
    fs::remove(path);
    RunWriter rewrite(path);
    for (int i = 0; i < 50; ++i) {
      const auto payload = Payload(i, 64);
      ASSERT_TRUE(rewrite.Append(i, payload.data(), payload.size()).ok());
    }
    ASSERT_TRUE(rewrite.Finish().ok());
  }
}

TEST_F(RunFileTest, CrcCatchesBitFlips) {
  const std::string path = Path("corrupt.run");
  RunWriter writer(path);
  for (int i = 0; i < 50; ++i) {
    const auto payload = Payload(i, 64);
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  // Flip one payload byte in the middle of the file.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(fs::file_size(path) / 2),
                       SEEK_SET),
            0);
  const uint8_t flip = 0xFF;
  ASSERT_EQ(std::fwrite(&flip, 1, 1, f), 1u);
  std::fclose(f);

  auto verified = RunReader::Open(path, /*verify_crc=*/true);
  EXPECT_FALSE(verified.ok());
}

TEST_F(RunFileTest, GarbageFileRejected) {
  const std::string path = Path("garbage.run");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::string junk(4096, 'x');
  ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
  std::fclose(f);
  EXPECT_FALSE(RunReader::Open(path).ok());

  // Empty file too.
  const std::string empty = Path("empty.run");
  f = std::fopen(empty.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  EXPECT_FALSE(RunReader::Open(empty).ok());
}

TEST_F(RunFileTest, InjectedWriteFailureSurfacesAsStatus) {
  fault::FaultInjector injector(7);
  fault::FaultInjector::Rule rule;
  rule.point = fault::FaultPoint::kStorageWrite;
  rule.action = fault::FaultAction::kFail;
  rule.max_fires = 0;  // every write fails
  injector.AddRule(rule);
  fault::ScopedFaultInjection scoped(&injector);

  const std::string path = Path("faulted.run");
  RunWriter writer(path);
  const auto payload = Payload(0, 32);
  Status st = writer.Append(1, payload.data(), payload.size());
  if (st.ok()) st = writer.Finish().status();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(fs::exists(path));  // never renamed into place
  EXPECT_GE(injector.fires(fault::FaultPoint::kStorageWrite), 1);
}

TEST_F(RunFileTest, InjectedCrashLeavesTornTempThatOpenRejects) {
  const std::string path = Path("crashed.run");
  fault::FaultInjector injector(11);
  fault::FaultInjector::Rule rule;
  rule.point = fault::FaultPoint::kStorageWrite;
  rule.action = fault::FaultAction::kThrow;
  rule.after_hits = 2;
  injector.AddRule(rule);
  const std::string torn = Path("torn-copy.run");
  bool have_torn = false;
  {
    fault::ScopedFaultInjection scoped(&injector);
    RunWriter::Options options;
    options.block_bytes = 128;  // many flushes -> many fault hits
    RunWriter writer(path, options);
    bool threw = false;
    try {
      for (int i = 0; i < 200; ++i) {
        const auto payload = Payload(i, 64);
        if (!writer.Append(i, payload.data(), payload.size()).ok()) break;
      }
      (void)writer.Finish();
    } catch (const fault::InjectedFault&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // Snapshot the torn temp file as a killed process would leave it,
    // before the writer's destructor cleans it up.
    if (fs::exists(path + ".tmp")) {
      fs::copy_file(path + ".tmp", torn);
      have_torn = true;
    }
  }
  EXPECT_FALSE(fs::exists(path));
  // The partial bytes of a mid-write crash must never validate.
  if (have_torn) {
    EXPECT_FALSE(RunReader::Open(torn).ok());
  }
}

TEST_F(RunFileTest, Crc32MatchesKnownVector) {
  // "123456789" -> 0xCBF43926 (IEEE CRC-32 check value).
  const char* data = "123456789";
  EXPECT_EQ(Crc32(0, data, 9), 0xCBF43926u);
}

// ---- format v2: compression + v1 backward compatibility ------------------

std::vector<uint8_t> FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

TEST_F(RunFileTest, V1WriterReproducesPr5LayoutByteExactly) {
  // Golden test for the backward-compat contract: a file written with
  // format_version=1 must be byte-identical to what the PR 5 writer
  // produced, and the v2 reader must open it. The expected image is
  // assembled by hand from the v1 spec.
  const std::string path = Path("v1.run");
  RunWriter::Options options;
  options.format_version = kRunFormatVersionV1;
  RunWriter writer(path, options);
  std::vector<std::pair<int64_t, std::vector<uint8_t>>> entries;
  for (int i = 0; i < 20; ++i) {
    entries.emplace_back(i * 2, Payload(i, 24));
  }
  for (const auto& [key, payload] : entries) {
    ASSERT_TRUE(writer.Append(key, payload.data(), payload.size()).ok());
  }
  writer.SetMeta({0x42});
  auto info = writer.Finish();
  ASSERT_TRUE(info.ok());

  // Hand-built PR 5 image: header, one raw block, footer, tail.
  std::vector<uint8_t> expected;
  auto put = [&expected](const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    expected.insert(expected.end(), b, b + n);
  };
  const uint32_t header[2] = {0x4E525341u, 1u};
  put(header, sizeof(header));
  std::vector<uint8_t> block;
  for (const auto& [key, payload] : entries) {
    const uint32_t entry_bytes =
        static_cast<uint32_t>(payload.size() + sizeof(int64_t));
    const auto* eb = reinterpret_cast<const uint8_t*>(&entry_bytes);
    block.insert(block.end(), eb, eb + 4);
    const auto* kb = reinterpret_cast<const uint8_t*>(&key);
    block.insert(block.end(), kb, kb + 8);
    block.insert(block.end(), payload.begin(), payload.end());
  }
  const uint32_t block_bytes = static_cast<uint32_t>(block.size());
  const uint64_t block_offset = expected.size();
  put(&block_bytes, 4);
  put(block.data(), block.size());
  const uint64_t footer_offset = expected.size();
  spe::StateWriter footer;
  footer.WriteU64(entries.size());
  footer.WriteU64(1);  // one block
  footer.WriteU64(block_offset);
  footer.WriteU64(entries.size());
  footer.WriteI64(0);
  footer.WriteI64(38);
  footer.WriteU64(1);  // meta size
  const uint8_t meta = 0x42;
  footer.WriteBytes(&meta, 1);
  put(footer.buffer().data(), footer.buffer().size());
  const uint64_t footer_bytes = footer.buffer().size();
  const uint32_t crc = Crc32(0, expected.data(), expected.size());
  const uint32_t end_magic = 0x4153524Eu;
  put(&footer_offset, 8);
  put(&footer_bytes, 8);
  put(&crc, 4);
  put(&end_magic, 4);

  EXPECT_EQ(FileBytes(path), expected);

  auto reader = RunReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->format_version(), kRunFormatVersionV1);
  EXPECT_EQ((*reader)->num_entries(), entries.size());
  EXPECT_EQ((*reader)->raw_bytes(), block.size());
  int64_t key = 0;
  std::vector<uint8_t> payload;
  for (const auto& [want_key, want_payload] : entries) {
    ASSERT_TRUE((*reader)->Next(&key, &payload));
    EXPECT_EQ(key, want_key);
    EXPECT_EQ(payload, want_payload);
  }
  EXPECT_FALSE((*reader)->Next(&key, &payload));
  EXPECT_TRUE((*reader)->status().ok());
}

TEST_F(RunFileTest, CompressedRunShrinksAndRoundTrips) {
  // Wide redundant tuples (the workload shape): compression must cut the
  // file substantially while reading back identical entries, across
  // multiple blocks.
  auto write = [this](const std::string& name, bool compress) {
    RunWriter::Options options;
    options.block_bytes = 4096;
    options.compress = compress;
    RunWriter writer(Path(name), options);
    for (int i = 0; i < 2000; ++i) {
      std::vector<uint8_t> payload(120, 0);
      std::memcpy(payload.data(), &i, sizeof(i));  // rest stays zero-ish
      payload[60] = static_cast<uint8_t>(i % 5);
      EXPECT_TRUE(writer.Append(i / 4, payload.data(), payload.size()).ok());
    }
    auto info = writer.Finish();
    EXPECT_TRUE(info.ok());
    return *info;
  };
  const RunInfo packed = write("packed.run", true);
  const RunInfo raw = write("raw.run", false);
  EXPECT_EQ(packed.raw_bytes, raw.raw_bytes);
  EXPECT_LT(packed.file_bytes * 3, raw.file_bytes);

  auto reader = RunReader::Open(Path("packed.run"));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->format_version(), kRunFormatVersion);
  EXPECT_EQ((*reader)->raw_bytes(), raw.raw_bytes);
  int64_t key = 0;
  std::vector<uint8_t> payload;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*reader)->Next(&key, &payload)) << "entry " << i;
    ASSERT_EQ(key, i / 4);
    int got = -1;
    std::memcpy(&got, payload.data(), sizeof(got));
    ASSERT_EQ(got, i);
  }
  EXPECT_FALSE((*reader)->Next(&key, &payload));
  EXPECT_TRUE((*reader)->status().ok());
}

TEST_F(RunFileTest, IncompressibleBlocksStoredRawWithoutInflation) {
  const std::string path = Path("noise.run");
  RunWriter::Options options;
  options.block_bytes = 4096;
  RunWriter writer(path, options);
  uint64_t x = 0x243F6A8885A308D3ull;  // xorshift noise, incompressible
  uint64_t raw_total = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> payload(64);
    for (auto& b : payload) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<uint8_t>(x);
    }
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
    raw_total += payload.size() + 12;  // entry header + key
  }
  auto info = writer.Finish();
  ASSERT_TRUE(info.ok());
  // Raw fallback caps overhead at the 8-byte block headers + footer/tail.
  EXPECT_LT(info->file_bytes, raw_total + 1024);

  auto reader = RunReader::Open(path);
  ASSERT_TRUE(reader.ok());
  int64_t key = 0;
  std::vector<uint8_t> payload;
  size_t n = 0;
  while ((*reader)->Next(&key, &payload)) ++n;
  EXPECT_EQ(n, 500u);
  EXPECT_TRUE((*reader)->status().ok());
}

TEST_F(RunFileTest, CorruptCompressedBlockFailsScanNotCrash) {
  // SpilledRun reads skip CRC verification for speed; a corrupt
  // compressed block must then surface as a scan error, never as bad
  // bytes or an overrun.
  const std::string path = Path("corrupt-block.run");
  RunWriter::Options options;
  options.block_bytes = 2048;
  RunWriter writer(path, options);
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint8_t> payload(80, static_cast<uint8_t>(i % 3));
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  const auto pristine = FileBytes(path);

  // Corrupt every byte of the first compressed block in turn (bounded set
  // of positions keeps runtime sane) — each variant must scan cleanly or
  // fail with a Status, and CRC verification must always catch it.
  for (size_t pos = 16; pos < 256; pos += 7) {
    auto bytes = pristine;
    bytes[pos] ^= 0x5A;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);

    EXPECT_FALSE(RunReader::Open(path, /*verify_crc=*/true).ok());
    auto reader = RunReader::Open(path, /*verify_crc=*/false);
    if (!reader.ok()) continue;  // header/footer fields hit — fine
    int64_t key = 0;
    std::vector<uint8_t> payload;
    size_t n = 0;
    while ((*reader)->Next(&key, &payload) && n <= 1000) ++n;
    if (!(*reader)->status().ok()) continue;  // rejected mid-scan — fine
    // A flip the codec cannot detect must at least keep the scan bounded.
    EXPECT_LE(n, 1000u);
  }
}

}  // namespace
}  // namespace astream::storage
