// Run-file format: round trips, multi-block layout, atomic temp-file
// rename, and — the property recovery depends on — wholesale rejection of
// torn or corrupted files by footer/CRC validation.

#include "storage/run_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/injector.h"

namespace astream::storage {
namespace {

namespace fs = std::filesystem;

class RunFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("astream_run_file_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<uint8_t> Payload(int i, size_t size) {
  std::vector<uint8_t> p(size);
  for (size_t j = 0; j < size; ++j) {
    p[j] = static_cast<uint8_t>((i * 131 + j) & 0xFF);
  }
  return p;
}

TEST_F(RunFileTest, RoundTripWithMeta) {
  const std::string path = Path("basic.run");
  RunWriter writer(path);
  for (int i = 0; i < 100; ++i) {
    const auto payload = Payload(i, 16 + i % 7);
    ASSERT_TRUE(writer.Append(i * 3, payload.data(), payload.size()).ok());
  }
  writer.SetMeta({0xAB, 0xCD, 0xEF});
  auto info = writer.Finish();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->num_entries, 100u);
  EXPECT_EQ(info->min_key, 0);
  EXPECT_EQ(info->max_key, 297);
  EXPECT_EQ(info->path, path);
  EXPECT_GT(info->file_bytes, 0u);

  auto reader = RunReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_entries(), 100u);
  EXPECT_EQ((*reader)->meta(), (std::vector<uint8_t>{0xAB, 0xCD, 0xEF}));
  int64_t key = 0;
  std::vector<uint8_t> payload;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*reader)->Next(&key, &payload));
    EXPECT_EQ(key, i * 3);
    EXPECT_EQ(payload, Payload(i, 16 + i % 7));
  }
  EXPECT_FALSE((*reader)->Next(&key, &payload));
  EXPECT_TRUE((*reader)->status().ok());
}

TEST_F(RunFileTest, MultiBlockKeepsOrderAcrossBlockBoundaries) {
  const std::string path = Path("blocks.run");
  RunWriter::Options options;
  options.block_bytes = 256;  // force many blocks
  RunWriter writer(path, options);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto payload = Payload(i, 40);
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = RunReader::Open(path);
  ASSERT_TRUE(reader.ok());
  int64_t key = 0;
  std::vector<uint8_t> payload;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*reader)->Next(&key, &payload)) << "entry " << i;
    EXPECT_EQ(key, i);
    EXPECT_EQ(payload, Payload(i, 40));
  }
  EXPECT_FALSE((*reader)->Next(&key, &payload));
}

TEST_F(RunFileTest, FinishRenamesAtomicallyAndAbortCleansUp) {
  const std::string path = Path("atomic.run");
  {
    RunWriter writer(path);
    const auto payload = Payload(0, 8);
    ASSERT_TRUE(writer.Append(1, payload.data(), payload.size()).ok());
    // Before Finish only the temp file exists.
    EXPECT_FALSE(fs::exists(path));
    ASSERT_TRUE(writer.Finish().ok());
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
  }
  const std::string aborted = Path("aborted.run");
  {
    RunWriter writer(aborted);
    const auto payload = Payload(0, 8);
    ASSERT_TRUE(writer.Append(1, payload.data(), payload.size()).ok());
    writer.Abort();
  }
  EXPECT_FALSE(fs::exists(aborted));
  EXPECT_FALSE(fs::exists(aborted + ".tmp"));
}

TEST_F(RunFileTest, TornTailRejected) {
  const std::string path = Path("torn.run");
  RunWriter writer(path);
  for (int i = 0; i < 50; ++i) {
    const auto payload = Payload(i, 64);
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  // Truncate mid-footer: the file a crash between write and rename would
  // leave behind. Every truncation point must be rejected at Open.
  const auto full = fs::file_size(path);
  for (const uint64_t keep : {full - 1, full - 12, full - 25, full / 2,
                              static_cast<uint64_t>(10)}) {
    fs::resize_file(path, keep);
    auto reader = RunReader::Open(path);
    EXPECT_FALSE(reader.ok()) << "truncated to " << keep << " bytes";
    // Restore for the next iteration.
    fs::remove(path);
    RunWriter rewrite(path);
    for (int i = 0; i < 50; ++i) {
      const auto payload = Payload(i, 64);
      ASSERT_TRUE(rewrite.Append(i, payload.data(), payload.size()).ok());
    }
    ASSERT_TRUE(rewrite.Finish().ok());
  }
}

TEST_F(RunFileTest, CrcCatchesBitFlips) {
  const std::string path = Path("corrupt.run");
  RunWriter writer(path);
  for (int i = 0; i < 50; ++i) {
    const auto payload = Payload(i, 64);
    ASSERT_TRUE(writer.Append(i, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  // Flip one payload byte in the middle of the file.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(fs::file_size(path) / 2),
                       SEEK_SET),
            0);
  const uint8_t flip = 0xFF;
  ASSERT_EQ(std::fwrite(&flip, 1, 1, f), 1u);
  std::fclose(f);

  auto verified = RunReader::Open(path, /*verify_crc=*/true);
  EXPECT_FALSE(verified.ok());
}

TEST_F(RunFileTest, GarbageFileRejected) {
  const std::string path = Path("garbage.run");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::string junk(4096, 'x');
  ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
  std::fclose(f);
  EXPECT_FALSE(RunReader::Open(path).ok());

  // Empty file too.
  const std::string empty = Path("empty.run");
  f = std::fopen(empty.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  EXPECT_FALSE(RunReader::Open(empty).ok());
}

TEST_F(RunFileTest, InjectedWriteFailureSurfacesAsStatus) {
  fault::FaultInjector injector(7);
  fault::FaultInjector::Rule rule;
  rule.point = fault::FaultPoint::kStorageWrite;
  rule.action = fault::FaultAction::kFail;
  rule.max_fires = 0;  // every write fails
  injector.AddRule(rule);
  fault::ScopedFaultInjection scoped(&injector);

  const std::string path = Path("faulted.run");
  RunWriter writer(path);
  const auto payload = Payload(0, 32);
  Status st = writer.Append(1, payload.data(), payload.size());
  if (st.ok()) st = writer.Finish().status();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(fs::exists(path));  // never renamed into place
  EXPECT_GE(injector.fires(fault::FaultPoint::kStorageWrite), 1);
}

TEST_F(RunFileTest, InjectedCrashLeavesTornTempThatOpenRejects) {
  const std::string path = Path("crashed.run");
  fault::FaultInjector injector(11);
  fault::FaultInjector::Rule rule;
  rule.point = fault::FaultPoint::kStorageWrite;
  rule.action = fault::FaultAction::kThrow;
  rule.after_hits = 2;
  injector.AddRule(rule);
  const std::string torn = Path("torn-copy.run");
  bool have_torn = false;
  {
    fault::ScopedFaultInjection scoped(&injector);
    RunWriter::Options options;
    options.block_bytes = 128;  // many flushes -> many fault hits
    RunWriter writer(path, options);
    bool threw = false;
    try {
      for (int i = 0; i < 200; ++i) {
        const auto payload = Payload(i, 64);
        if (!writer.Append(i, payload.data(), payload.size()).ok()) break;
      }
      (void)writer.Finish();
    } catch (const fault::InjectedFault&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // Snapshot the torn temp file as a killed process would leave it,
    // before the writer's destructor cleans it up.
    if (fs::exists(path + ".tmp")) {
      fs::copy_file(path + ".tmp", torn);
      have_torn = true;
    }
  }
  EXPECT_FALSE(fs::exists(path));
  // The partial bytes of a mid-write crash must never validate.
  if (have_torn) {
    EXPECT_FALSE(RunReader::Open(torn).ok());
  }
}

TEST_F(RunFileTest, Crc32MatchesKnownVector) {
  // "123456789" -> 0xCBF43926 (IEEE CRC-32 check value).
  const char* data = "123456789";
  EXPECT_EQ(Crc32(0, data, 9), 0xCBF43926u);
}

}  // namespace
}  // namespace astream::storage
