#include "storage/compactor.h"

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "gtest/gtest.h"
#include "storage/run_file.h"
#include "storage/spill_space.h"

namespace astream::storage {
namespace {

struct Entry {
  int64_t key;
  std::string payload;
};

bool operator==(const Entry& a, const Entry& b) {
  return a.key == b.key && a.payload == b.payload;
}

SpilledRunPtr WriteRun(SpillSpace* space, const std::vector<Entry>& entries,
                       RunWriter::Options options = {}) {
  RunWriter writer(space->NextRunPath("slice"), options);
  for (const Entry& e : entries) {
    EXPECT_TRUE(writer
                    .Append(e.key,
                            reinterpret_cast<const uint8_t*>(e.payload.data()),
                            e.payload.size())
                    .ok());
  }
  auto info = writer.Finish();
  EXPECT_TRUE(info.ok()) << info.status().message();
  return space->Adopt(std::move(info).value(), 0);
}

std::vector<Entry> ReadAll(const SpilledRunPtr& run) {
  std::vector<Entry> out;
  auto reader = run->OpenReader();
  EXPECT_TRUE(reader.ok()) << reader.status().message();
  if (!reader.ok()) return out;
  int64_t key = 0;
  std::vector<uint8_t> payload;
  while (reader.value()->Next(&key, &payload)) {
    out.push_back(Entry{key, std::string(payload.begin(), payload.end())});
  }
  EXPECT_TRUE(reader.value()->status().ok());
  return out;
}

/// The merge order the store's own reads use: (key, input index) — so the
/// compacted run must interleave ties in input order.
std::vector<Entry> ExpectedMerge(const std::vector<std::vector<Entry>>& runs) {
  std::vector<size_t> pos(runs.size(), 0);
  std::vector<Entry> out;
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (pos[i] >= runs[i].size()) continue;
      if (best < 0 || runs[i][pos[i]].key <
                          runs[static_cast<size_t>(best)]
                              [pos[static_cast<size_t>(best)]]
                                  .key) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return out;
    out.push_back(runs[static_cast<size_t>(best)][pos[static_cast<size_t>(best)]++]);
  }
}

std::vector<std::vector<Entry>> TieHeavyInputs() {
  // Every run repeats keys {1, 2, 3, 7}; payloads encode (run, ordinal) so
  // order violations are visible.
  std::vector<std::vector<Entry>> runs;
  for (int r = 0; r < 4; ++r) {
    std::vector<Entry> run;
    int ordinal = 0;
    for (int64_t key : {1, 1, 2, 3, 7}) {
      run.push_back(Entry{key, "r" + std::to_string(r) + "." +
                                   std::to_string(ordinal++)});
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

TEST(CompactorTest, SyncFoldPreservesKeyAndTieOrder) {
  auto space = SpillSpace::Create("");
  ASSERT_TRUE(space.ok());
  const auto inputs = TieHeavyInputs();
  std::vector<SpilledRunPtr> runs;
  for (const auto& in : inputs) runs.push_back(WriteRun(space.value().get(), in));

  Compactor::Options opts;
  opts.sync = true;
  Compactor compactor(space.value().get(), opts);
  CompactionTicketPtr ticket = compactor.Submit(runs, "slice");
  ASSERT_EQ(ticket->state(), CompactionTicket::State::kDone);
  ASSERT_NE(ticket->output(), nullptr);

  const std::vector<Entry> got = ReadAll(ticket->output());
  const std::vector<Entry> want = ExpectedMerge(inputs);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << "at " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "at " << i;
  }
  EXPECT_EQ(compactor.runs_compacted(), 4);
  EXPECT_EQ(compactor.jobs_failed(), 0);
}

TEST(CompactorTest, CompressedOutputRoundTrips) {
  auto space = SpillSpace::Create("");
  ASSERT_TRUE(space.ok());
  // Redundant payloads so the v2 output actually compresses.
  std::vector<std::vector<Entry>> inputs(3);
  for (int r = 0; r < 3; ++r) {
    for (int64_t k = 0; k < 200; ++k) {
      inputs[static_cast<size_t>(r)].push_back(
          Entry{k, std::string(64, static_cast<char>('a' + r))});
    }
  }
  std::vector<SpilledRunPtr> runs;
  for (const auto& in : inputs) runs.push_back(WriteRun(space.value().get(), in));

  Compactor::Options opts;
  opts.sync = true;
  opts.writer.compress = true;
  Compactor compactor(space.value().get(), opts);
  CompactionTicketPtr ticket = compactor.Submit(runs, "slice");
  ASSERT_EQ(ticket->state(), CompactionTicket::State::kDone);
  const RunInfo& info = ticket->output()->info();
  EXPECT_LT(info.file_bytes, static_cast<int64_t>(info.raw_bytes));
  EXPECT_EQ(ReadAll(ticket->output()).size(), 600u);
}

TEST(CompactorTest, WorkerModeSettlesTicketOffThread) {
  auto space = SpillSpace::Create("");
  ASSERT_TRUE(space.ok());
  const auto inputs = TieHeavyInputs();
  std::vector<SpilledRunPtr> runs;
  for (const auto& in : inputs) runs.push_back(WriteRun(space.value().get(), in));

  Compactor compactor(space.value().get(), Compactor::Options{});
  compactor.Start();
  CompactionTicketPtr ticket = compactor.Submit(runs, "slice");
  // Stop() drains the queue before joining, so the ticket must be settled
  // afterwards — the lifecycle the job teardown relies on.
  compactor.Stop();
  ASSERT_EQ(ticket->state(), CompactionTicket::State::kDone);
  EXPECT_TRUE(ReadAll(ticket->output()) == ExpectedMerge(inputs));
}

TEST(CompactorTest, InjectedFailureKeepsInputsReadable) {
  auto space = SpillSpace::Create("");
  ASSERT_TRUE(space.ok());
  const auto inputs = TieHeavyInputs();
  std::vector<SpilledRunPtr> runs;
  for (const auto& in : inputs) runs.push_back(WriteRun(space.value().get(), in));
  const int64_t runs_before = space.value()->num_runs();

  fault::FaultInjector injector(5);
  fault::FaultInjector::Rule rule;
  rule.point = fault::FaultPoint::kCompaction;
  rule.action = fault::FaultAction::kFail;
  injector.AddRule(rule);
  fault::ScopedFaultInjection scoped(&injector);

  Compactor::Options opts;
  opts.sync = true;
  Compactor compactor(space.value().get(), opts);
  CompactionTicketPtr ticket = compactor.Submit(runs, "slice");
  EXPECT_EQ(ticket->state(), CompactionTicket::State::kFailed);
  EXPECT_EQ(compactor.jobs_failed(), 1);
  EXPECT_EQ(space.value()->num_runs(), runs_before);  // nothing adopted
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(ReadAll(runs[i]).size(), inputs[i].size());
  }
}

TEST(CompactorTest, InjectedCrashMidCompactionKeepsInputsReadable) {
  auto space = SpillSpace::Create("");
  ASSERT_TRUE(space.ok());
  const auto inputs = TieHeavyInputs();
  std::vector<SpilledRunPtr> runs;
  for (const auto& in : inputs) runs.push_back(WriteRun(space.value().get(), in));

  fault::FaultInjector injector(5);
  fault::FaultInjector::Rule rule;
  rule.point = fault::FaultPoint::kCompaction;
  rule.action = fault::FaultAction::kThrow;
  rule.after_hits = 1;  // crash at the pre-Finish check, mid-job
  injector.AddRule(rule);
  fault::ScopedFaultInjection scoped(&injector);

  Compactor::Options opts;
  opts.sync = true;
  Compactor compactor(space.value().get(), opts);
  CompactionTicketPtr ticket = compactor.Submit(runs, "slice");
  EXPECT_EQ(ticket->state(), CompactionTicket::State::kFailed);
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(ReadAll(runs[i]).size(), inputs[i].size());
  }
}

TEST(CompactorTest, FewerThanTwoInputsFailsImmediately) {
  auto space = SpillSpace::Create("");
  ASSERT_TRUE(space.ok());
  Compactor::Options opts;
  opts.sync = true;
  Compactor compactor(space.value().get(), opts);
  CompactionTicketPtr ticket = compactor.Submit({}, "slice");
  EXPECT_EQ(ticket->state(), CompactionTicket::State::kFailed);
}

}  // namespace
}  // namespace astream::storage
