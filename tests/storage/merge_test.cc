// K-way merge: the loser tree must be observably identical to the binary
// heap it replaced — same entries, same order, same source-index tie
// break — across source counts, exhaustion patterns, and tie-heavy keys.

#include "storage/merge.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace astream::storage {
namespace {

struct Entry {
  int64_t key = 0;
  int64_t source = -1;
  int64_t seq = -1;  // position within the source (stability witness)
};

using Runs = std::vector<std::vector<Entry>>;

template <typename Merge>
std::vector<Entry> Drain(const Runs& runs) {
  std::vector<size_t> pos(runs.size(), 0);
  std::vector<typename Merge::Source> sources;
  for (size_t i = 0; i < runs.size(); ++i) {
    sources.push_back([&runs, &pos, i](Entry* out) {
      if (pos[i] >= runs[i].size()) return false;
      *out = runs[i][pos[i]++];
      return true;
    });
  }
  Merge merge(std::move(sources));
  std::vector<Entry> out;
  Entry e;
  while (merge.Next(&e)) out.push_back(e);
  return out;
}

void ExpectIdentical(const Runs& runs) {
  const auto loser = Drain<LoserTreeMerge<Entry>>(runs);
  const auto heap = Drain<HeapMerge<Entry>>(runs);
  ASSERT_EQ(loser.size(), heap.size());
  for (size_t i = 0; i < loser.size(); ++i) {
    EXPECT_EQ(loser[i].key, heap[i].key) << "at " << i;
    EXPECT_EQ(loser[i].source, heap[i].source) << "at " << i;
    EXPECT_EQ(loser[i].seq, heap[i].seq) << "at " << i;
  }
  // Both must be sorted with ties in source order (the global contract).
  for (size_t i = 1; i < loser.size(); ++i) {
    ASSERT_LE(loser[i - 1].key, loser[i].key);
    if (loser[i - 1].key == loser[i].key) {
      EXPECT_LE(loser[i - 1].source, loser[i].source);
    }
  }
}

Runs MakeRuns(Rng* rng, size_t num_sources, size_t max_len,
              int64_t key_range) {
  Runs runs(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    const size_t len = rng->NextU64() % (max_len + 1);
    int64_t key = 0;
    for (size_t i = 0; i < len; ++i) {
      key += rng->NextU64() % static_cast<uint64_t>(key_range);
      runs[s].push_back(Entry{key, static_cast<int64_t>(s),
                              static_cast<int64_t>(i)});
    }
  }
  return runs;
}

TEST(MergeTest, EmptyAndSingleSource) {
  ExpectIdentical({});
  ExpectIdentical({{}});
  ExpectIdentical({{{1, 0, 0}, {2, 0, 1}, {2, 0, 2}}});
  Entry e;
  LoserTreeMerge<Entry> empty({});
  EXPECT_FALSE(empty.Next(&e));
}

TEST(MergeTest, TieBreaksBySourceIndexAtEveryArity) {
  // Every source holds the same constant key: output must be source 0's
  // entries in order, then source 1's, ... — for awkward arities too.
  for (const size_t k : {2u, 3u, 5u, 7u, 16u, 33u}) {
    Runs runs(k);
    for (size_t s = 0; s < k; ++s) {
      for (int i = 0; i < 4; ++i) {
        runs[s].push_back(
            Entry{7, static_cast<int64_t>(s), static_cast<int64_t>(i)});
      }
    }
    const auto out = Drain<LoserTreeMerge<Entry>>(runs);
    ASSERT_EQ(out.size(), k * 4);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].source, static_cast<int64_t>(i / 4));
      EXPECT_EQ(out[i].seq, static_cast<int64_t>(i % 4));
    }
    ExpectIdentical(runs);
  }
}

TEST(MergeTest, RandomTieHeavyInputsMatchHeap) {
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t k = 1 + rng.NextU64() % 40;
    // key_range 1..3 keeps runs dense with duplicates within and across
    // sources — the tie-break stress the loser tree must get right.
    const int64_t key_range = 1 + static_cast<int64_t>(rng.NextU64() % 3);
    ExpectIdentical(MakeRuns(&rng, k, 60, key_range));
  }
}

TEST(MergeTest, SkewedAndExhaustingSourcesMatchHeap) {
  Rng rng(99);
  // One long source among many short/empty ones: exhaustion replays must
  // keep the tree consistent as slots die one by one.
  for (int trial = 0; trial < 20; ++trial) {
    Runs runs = MakeRuns(&rng, 12, 4, 5);
    runs[trial % 12].clear();
    for (int i = 0; i < 500; ++i) {
      runs[trial % 12].push_back(
          Entry{i / 3, static_cast<int64_t>(trial % 12), i});
    }
    ExpectIdentical(runs);
  }
}

TEST(MergeTest, LargeArityFullyOrdered) {
  Rng rng(5);
  const auto runs = MakeRuns(&rng, 256, 30, 1000);
  size_t total = 0;
  for (const auto& r : runs) total += r.size();
  const auto out = Drain<LoserTreeMerge<Entry>>(runs);
  EXPECT_EQ(out.size(), total);
  ExpectIdentical(runs);
}

}  // namespace
}  // namespace astream::storage
