// Durable checkpoint store: completed checkpoints persist as run files and
// survive a process restart (modeled as a second store over the same
// directory, reading from disk only); torn files from a crash mid-write
// are rejected and cleaned up by the directory scan.

#include "storage/durable_checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace astream::storage {
namespace {

namespace fs = std::filesystem;

class DurableCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("astream_durable_ckpt_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<uint8_t> StateBlob(int tag, size_t size) {
    std::vector<uint8_t> b(size);
    for (size_t i = 0; i < size; ++i) {
      b[i] = static_cast<uint8_t>((tag * 17 + i) & 0xFF);
    }
    return b;
  }

  void WriteComplete(spe::CheckpointStore* store, int64_t id) {
    store->BeginCheckpoint(id, {{0, 100 * id}, {1, 50 * id}});
    store->AddOperatorState(id, -1, 0, StateBlob(static_cast<int>(id), 64));
    store->AddOperatorState(id, 0, 0,
                            StateBlob(static_cast<int>(id) + 1, 200));
    store->AddOperatorState(id, 1, 0,
                            StateBlob(static_cast<int>(id) + 2, 300));
    store->MaybeComplete(id, 3);
  }

  fs::path dir_;
};

TEST_F(DurableCheckpointTest, EmptyDirectoryHasNoCheckpoints) {
  DurableCheckpointStore store(dir_.string());
  EXPECT_EQ(store.LatestComplete(), nullptr);
  EXPECT_EQ(store.Get(1), nullptr);
  EXPECT_EQ(store.NumRetained(), 0u);
}

TEST_F(DurableCheckpointTest, CompletedCheckpointSurvivesProcessRestart) {
  {
    DurableCheckpointStore writer(dir_.string());
    WriteComplete(&writer, 1);
    WriteComplete(&writer, 2);
    ASSERT_TRUE(fs::exists(dir_ / "ckpt-1.run"));
    ASSERT_TRUE(fs::exists(dir_ / "ckpt-2.run"));
    EXPECT_EQ(writer.write_failures(), 0);
  }

  // "Restart": a brand-new store over the same directory, no shared RAM.
  DurableCheckpointStore restored(dir_.string());
  EXPECT_EQ(restored.torn_files_skipped(), 0);
  auto latest = restored.LatestComplete();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->id, 2);
  EXPECT_TRUE(latest->complete);
  EXPECT_EQ(latest->source_offsets, (std::map<int, int64_t>{{0, 200},
                                                            {1, 100}}));
  ASSERT_EQ(latest->operator_state.size(), 3u);
  EXPECT_EQ(latest->operator_state.at(spe::CheckpointStore::StateKey(-1, 0)),
            StateBlob(2, 64));
  EXPECT_EQ(latest->operator_state.at(spe::CheckpointStore::StateKey(0, 0)),
            StateBlob(3, 200));
  EXPECT_EQ(latest->operator_state.at(spe::CheckpointStore::StateKey(1, 0)),
            StateBlob(4, 300));

  auto first = restored.Get(1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, 1);
  EXPECT_EQ(first->operator_state.at(spe::CheckpointStore::StateKey(0, 0)),
            StateBlob(2, 200));
}

TEST_F(DurableCheckpointTest, IncompleteCheckpointsAreNotPersisted) {
  {
    DurableCheckpointStore writer(dir_.string());
    WriteComplete(&writer, 1);
    // Only 2 of 3 snapshots arrive: never completes, never hits disk.
    writer.BeginCheckpoint(2, {{0, 999}});
    writer.AddOperatorState(2, -1, 0, StateBlob(9, 64));
    writer.AddOperatorState(2, 0, 0, StateBlob(10, 64));
    writer.MaybeComplete(2, 3);
    EXPECT_FALSE(fs::exists(dir_ / "ckpt-2.run"));
  }
  DurableCheckpointStore restored(dir_.string());
  auto latest = restored.LatestComplete();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->id, 1);
  EXPECT_EQ(restored.Get(2), nullptr);
}

TEST_F(DurableCheckpointTest, TornAndGarbageFilesSkippedOnScan) {
  {
    DurableCheckpointStore writer(dir_.string());
    WriteComplete(&writer, 1);
    WriteComplete(&writer, 2);
  }
  // A crash mid-write leaves a temp file and/or a torn final file.
  {
    std::FILE* f = std::fopen((dir_ / "ckpt-3.run.tmp").string().c_str(),
                              "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("partial", f);
    std::fclose(f);
  }
  {
    std::FILE* f = std::fopen((dir_ / "ckpt-9.run").string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string junk(512, 'z');
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  // Truncate checkpoint 2 to simulate a torn rename-target (e.g. a torn
  // sector): it must be skipped, falling back to checkpoint 1.
  fs::resize_file(dir_ / "ckpt-2.run", fs::file_size(dir_ / "ckpt-2.run") / 2);

  DurableCheckpointStore restored(dir_.string());
  EXPECT_GE(restored.torn_files_skipped(), 2);
  auto latest = restored.LatestComplete();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->id, 1);
  EXPECT_EQ(restored.Get(9), nullptr);
  EXPECT_EQ(restored.Get(2), nullptr);
  // The invalid files were cleaned out of the directory.
  EXPECT_FALSE(fs::exists(dir_ / "ckpt-9.run"));
  EXPECT_FALSE(fs::exists(dir_ / "ckpt-2.run"));
}

TEST_F(DurableCheckpointTest, RetentionPrunesOldFiles) {
  DurableCheckpointStore store(dir_.string());
  store.SetRetention(2);
  for (int64_t id = 1; id <= 5; ++id) WriteComplete(&store, id);
  auto latest = store.LatestComplete();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->id, 5);
  // Only the newest `retention` checkpoints remain loadable.
  EXPECT_NE(store.Get(4), nullptr);
  EXPECT_EQ(store.Get(1), nullptr);
  EXPECT_LE(store.NumRetained(), 2u);
}

}  // namespace
}  // namespace astream::storage
