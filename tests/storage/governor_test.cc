// Memory governor: budget parsing/resolution, resident-byte accounting,
// the coldest-slice victim policy (including cross-client deferral), and
// the no-spill backpressure signal.

#include "storage/memory_governor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace astream::storage {
namespace {

TEST(ParseByteSizeTest, SuffixesAndGarbage) {
  EXPECT_EQ(ParseByteSize("0"), 0);
  EXPECT_EQ(ParseByteSize("1048576"), 1048576);
  EXPECT_EQ(ParseByteSize("64k"), 64 * 1024);
  EXPECT_EQ(ParseByteSize("8m"), 8 * 1024 * 1024);
  EXPECT_EQ(ParseByteSize("8M"), 8 * 1024 * 1024);
  EXPECT_EQ(ParseByteSize("1g"), 1024LL * 1024 * 1024);
  EXPECT_EQ(ParseByteSize(""), 0);
  EXPECT_EQ(ParseByteSize("abc"), 0);
  EXPECT_EQ(ParseByteSize("12x"), 0);
  EXPECT_EQ(ParseByteSize("-5m"), 0);
}

TEST(ResolveMemoryBudgetTest, ExplicitEnvAndForceUnlimited) {
  StorageOptions options;

  ::setenv("ASTREAM_MEMORY_BUDGET", "16m", 1);
  options.memory_budget_bytes = 0;
  EXPECT_EQ(ResolveMemoryBudget(options), 16 * 1024 * 1024);  // env wins
  options.memory_budget_bytes = 1234;
  EXPECT_EQ(ResolveMemoryBudget(options), 1234);  // explicit beats env
  options.memory_budget_bytes = -1;
  EXPECT_EQ(ResolveMemoryBudget(options), 0);  // force-unlimited beats env

  ::unsetenv("ASTREAM_MEMORY_BUDGET");
  options.memory_budget_bytes = 0;
  EXPECT_EQ(ResolveMemoryBudget(options), 0);  // unset env -> unlimited
}

/// Scripted client: SpillOnce sheds `shed_bytes` and re-reports, like a
/// real operator spilling its coldest slice.
class FakeClient : public SpillClient {
 public:
  FakeClient(MemoryGovernor* governor, size_t resident, int64_t coldest_end)
      : governor_(governor), resident_(resident), coldest_end_(coldest_end) {
    governor_->Register(this);
    Report();
  }
  ~FakeClient() override { governor_->Unregister(this); }

  size_t SpillOnce() override {
    ++spills_;
    const size_t shed = resident_ < shed_bytes_ ? resident_ : shed_bytes_;
    resident_ -= shed;
    if (resident_ == 0) coldest_end_ = INT64_MAX;
    Report();
    return shed;
  }

  void Report() { governor_->Update(this, resident_, coldest_end_); }
  void Set(size_t resident, int64_t coldest_end) {
    resident_ = resident;
    coldest_end_ = coldest_end;
    Report();
  }

  int spills_ = 0;
  size_t shed_bytes_ = 400;

 private:
  MemoryGovernor* governor_;
  size_t resident_;
  int64_t coldest_end_;
};

TEST(MemoryGovernorTest, AccountsResidentBytesAcrossClients) {
  MemoryGovernor governor(0, true);  // accounting only, no enforcement
  FakeClient a(&governor, 300, 10);
  EXPECT_EQ(governor.total_resident(), 300);
  {
    FakeClient b(&governor, 200, 20);
    EXPECT_EQ(governor.total_resident(), 500);
    b.Set(700, 20);
    EXPECT_EQ(governor.total_resident(), 1000);
  }
  // Unregister subtracts the client's share.
  EXPECT_EQ(governor.total_resident(), 300);
}

TEST(MemoryGovernorTest, EnforceSpillsSelfUntilUnderBudget) {
  MemoryGovernor governor(1000, true);
  FakeClient a(&governor, 2000, 10);
  governor.Enforce(&a);
  // 2000 -> 1600 -> 1200 -> 800: three spills to get under budget.
  EXPECT_EQ(a.spills_, 3);
  EXPECT_EQ(governor.total_resident(), 800);
  // Already under budget: enforcing again is a no-op.
  governor.Enforce(&a);
  EXPECT_EQ(a.spills_, 3);
}

TEST(MemoryGovernorTest, ColdestClientIsTheVictim) {
  MemoryGovernor governor(1000, true);
  FakeClient cold(&governor, 600, 10);   // earliest-ending slice
  FakeClient hot(&governor, 600, 900);
  hot.shed_bytes_ = 600;
  cold.shed_bytes_ = 600;

  // The hot client is over budget but a colder peer holds the victim:
  // Enforce flags the peer instead of spilling across threads.
  governor.Enforce(&hot);
  EXPECT_EQ(hot.spills_, 0);
  EXPECT_EQ(cold.spills_, 0);

  // The cold client's own next Enforce honors the flag and spills inline.
  governor.Enforce(&cold);
  EXPECT_EQ(cold.spills_, 1);
  EXPECT_EQ(governor.total_resident(), 600);
  EXPECT_EQ(hot.spills_, 0);
}

TEST(MemoryGovernorTest, SelfSpillsWhenItHoldsTheColdestSlice) {
  MemoryGovernor governor(1000, true);
  FakeClient cold(&governor, 900, 10);
  FakeClient hot(&governor, 300, 900);
  cold.shed_bytes_ = 500;
  governor.Enforce(&cold);
  EXPECT_EQ(cold.spills_, 1);  // 1200 -> 700: one spill suffices
  EXPECT_EQ(hot.spills_, 0);
}

TEST(MemoryGovernorTest, StopsWhenNothingSpillableRemains) {
  MemoryGovernor governor(100, true);
  FakeClient a(&governor, 500, 10);
  a.shed_bytes_ = 0;  // spill releases nothing (e.g. writes keep failing)
  governor.Enforce(&a);
  // Exactly one attempt; a zero-byte spill marks the client unspillable
  // instead of looping forever.
  EXPECT_EQ(a.spills_, 1);
  governor.Enforce(&a);
  EXPECT_EQ(a.spills_, 1);
}

TEST(MemoryGovernorTest, BackpressureOnlyWhenSpillDisabledAndOverBudget) {
  MemoryGovernor spilling(100, true);
  FakeClient a(&spilling, 500, 10);
  EXPECT_FALSE(spilling.ShouldBackpressure());  // spilling handles it

  MemoryGovernor unlimited(0, false);
  FakeClient b(&unlimited, 500, 10);
  EXPECT_FALSE(unlimited.ShouldBackpressure());  // no budget set

  MemoryGovernor capped(100, false);
  FakeClient c(&capped, 50, 10);
  EXPECT_FALSE(capped.ShouldBackpressure());  // under budget
  c.Set(500, 10);
  EXPECT_TRUE(capped.ShouldBackpressure());
  c.Set(80, 10);
  EXPECT_FALSE(capped.ShouldBackpressure());  // recovered

  // Enforce with spilling disabled never invokes SpillOnce.
  c.Set(500, 10);
  capped.Enforce(&c);
  EXPECT_EQ(c.spills_, 0);
}

}  // namespace
}  // namespace astream::storage
