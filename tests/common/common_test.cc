#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace astream {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.value_or(-1), 5);

  auto err = ParsePositive(-2);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(12);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(ManualClockTest, AdvanceAndSet) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMs(), 100);
  clock.AdvanceMs(50);
  EXPECT_EQ(clock.NowMs(), 150);
  clock.SetMs(7);
  EXPECT_EQ(clock.NowMs(), 7);
  EXPECT_EQ(clock.NowMicros(), 7000);
}

TEST(WallClockTest, Monotonic) {
  WallClock* clock = WallClock::Default();
  const int64_t a = clock->NowMicros();
  const int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace astream
