#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <scoped_allocator>
#include <thread>
#include <unordered_map>
#include <vector>

namespace astream {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(128);
  void* a = arena.Allocate(24, 8);
  void* b = arena.Allocate(16, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  // Within one chunk, the second allocation bumps past the first.
  EXPECT_GE(reinterpret_cast<uintptr_t>(b),
            reinterpret_cast<uintptr_t>(a) + 24);
  EXPECT_EQ(arena.bytes_used(), 40u);
}

TEST(ArenaTest, GrowsByAddingChunks) {
  Arena arena(64);
  EXPECT_EQ(arena.num_chunks(), 0u);
  arena.Allocate(32, 8);
  EXPECT_EQ(arena.num_chunks(), 1u);
  arena.Allocate(1024, 8);  // does not fit the first chunk
  EXPECT_EQ(arena.num_chunks(), 2u);
  EXPECT_GE(arena.bytes_reserved(), 1024u + 64u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, OldChunkAllocationsSurviveGrowth) {
  Arena arena(64);
  auto* first = static_cast<int64_t*>(arena.Allocate(sizeof(int64_t), 8));
  *first = 0x1234;
  for (int i = 0; i < 100; ++i) arena.Allocate(128, 8);
  EXPECT_EQ(*first, 0x1234);  // earlier chunks are never moved or freed
}

TEST(ArenaAllocatorTest, VectorAllocatesFromArena) {
  Arena arena(64);
  ArenaAllocator<int> alloc(&arena);
  std::vector<int, ArenaAllocator<int>> v(alloc);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_EQ(v[99], 99);
}

TEST(ArenaAllocatorTest, DefaultConstructedFallsBackToHeap) {
  // Containers are always built with an explicit arena, but the allocator
  // must be default-constructible (libstdc++ instantiates it in traits)
  // and safe if it ever is used without one.
  std::vector<int, ArenaAllocator<int>> v;
  v.push_back(7);
  EXPECT_EQ(v[0], 7);
}

TEST(ArenaAllocatorTest, ScopedAdaptorPropagatesArenaToNestedContainers) {
  using Inner = std::vector<int, ArenaAllocator<int>>;
  using Outer = std::unordered_map<
      int, Inner, std::hash<int>, std::equal_to<int>,
      std::scoped_allocator_adaptor<ArenaAllocator<std::pair<const int, Inner>>>>;
  Arena arena(64);
  Outer map(0, std::hash<int>{}, std::equal_to<int>{},
            ArenaAllocator<std::pair<const int, Inner>>(&arena));
  for (int k = 0; k < 10; ++k) {
    for (int i = 0; i < 20; ++i) map[k].push_back(i);
  }
  // The nested vectors drew from the same arena, not the heap: the arena
  // footprint covers at least their element storage.
  EXPECT_GE(arena.bytes_used(), 10u * 20u * sizeof(int));
  EXPECT_EQ(map[9][19], 19);
  // All equal-arena allocators compare equal; arena-less ones do not.
  EXPECT_TRUE(ArenaAllocator<int>(&arena) == ArenaAllocator<long>(&arena));
  EXPECT_FALSE(ArenaAllocator<int>(&arena) == ArenaAllocator<int>());
}

TEST(ArenaAllocatorTest, CountersVisibleAcrossThreadsForGauges) {
  Arena arena(64);
  arena.Allocate(500, 8);
  size_t observed = 0;
  std::thread sampler([&] { observed = arena.bytes_reserved(); });
  sampler.join();
  EXPECT_GE(observed, 500u);
}

}  // namespace
}  // namespace astream
