// The run-file block codec: round trips across input shapes, compression
// on the redundant payloads it exists for, and — what torn-file recovery
// leans on — bounds-safe rejection of malformed streams.

#include "common/lz.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace astream {
namespace {

std::vector<uint8_t> Compress(const std::vector<uint8_t>& raw) {
  std::vector<uint8_t> out(LzMaxCompressedSize(raw.size()));
  out.resize(LzCompress(raw.data(), raw.size(), out.data()));
  return out;
}

void ExpectRoundTrip(const std::vector<uint8_t>& raw) {
  const std::vector<uint8_t> packed = Compress(raw);
  std::vector<uint8_t> back(raw.size());
  ASSERT_TRUE(
      LzDecompress(packed.data(), packed.size(), back.data(), raw.size()))
      << "raw size " << raw.size();
  EXPECT_EQ(back, raw);
}

TEST(LzCodecTest, RoundTripsAcrossShapes) {
  ExpectRoundTrip({});
  ExpectRoundTrip({42});
  ExpectRoundTrip({1, 2, 3, 4, 5, 6, 7});
  // All one byte: the degenerate overlapping-match run.
  ExpectRoundTrip(std::vector<uint8_t>(10000, 0xAB));
  // Short repeating period.
  std::vector<uint8_t> period;
  for (int i = 0; i < 5000; ++i) period.push_back(static_cast<uint8_t>(i % 5));
  ExpectRoundTrip(period);
  // Text-like redundancy.
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog; ";
  }
  ExpectRoundTrip(std::vector<uint8_t>(text.begin(), text.end()));
}

TEST(LzCodecTest, RoundTripsRandomAndMixedData) {
  Rng rng(7);
  for (const size_t size : {size_t{13}, size_t{255}, size_t{4096},
                            size_t{70000}}) {
    // Incompressible: uniform random bytes.
    std::vector<uint8_t> random(size);
    for (auto& b : random) b = static_cast<uint8_t>(rng.NextU64());
    ExpectRoundTrip(random);
    // Mixed: random chunks interleaved with runs (exercises both paths).
    std::vector<uint8_t> mixed;
    while (mixed.size() < size) {
      if (rng.NextU64() % 2 == 0) {
        mixed.insert(mixed.end(), 1 + rng.NextU64() % 64,
                     static_cast<uint8_t>(rng.NextU64()));
      } else {
        for (uint64_t i = 0, n = 1 + rng.NextU64() % 32; i < n; ++i) {
          mixed.push_back(static_cast<uint8_t>(rng.NextU64()));
        }
      }
    }
    ExpectRoundTrip(mixed);
  }
}

TEST(LzCodecTest, CompressesWideRedundantTuples) {
  // The micro_spill payload shape: 256 repeated 8-byte column values.
  std::vector<uint8_t> raw;
  for (int row = 0; row < 64; ++row) {
    for (int col = 0; col < 256; ++col) {
      int64_t v = row;  // every column of a row carries the same value
      const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
      raw.insert(raw.end(), p, p + 8);
    }
  }
  const std::vector<uint8_t> packed = Compress(raw);
  // The ISSUE's >= 3x byte-volume target starts here: the codec alone
  // must take several-fold out of wide redundant tuples.
  EXPECT_LT(packed.size() * 3, raw.size());
  std::vector<uint8_t> back(raw.size());
  ASSERT_TRUE(
      LzDecompress(packed.data(), packed.size(), back.data(), raw.size()));
  EXPECT_EQ(back, raw);
}

TEST(LzCodecTest, CompressedSizeNeverExceedsBound) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t size = rng.NextU64() % 3000;
    std::vector<uint8_t> raw(size);
    for (auto& b : raw) b = static_cast<uint8_t>(rng.NextU64() % 4);
    std::vector<uint8_t> out(LzMaxCompressedSize(size));
    const size_t packed = LzCompress(raw.data(), size, out.data());
    EXPECT_LE(packed, LzMaxCompressedSize(size));
  }
}

TEST(LzCodecTest, RejectsMalformedStreamsWithoutOverrun) {
  const std::vector<uint8_t> raw(1000, 7);
  const std::vector<uint8_t> packed = Compress(raw);
  std::vector<uint8_t> sink(raw.size());

  // Truncations at every prefix length must fail cleanly (a torn block).
  for (size_t keep = 0; keep < packed.size(); ++keep) {
    EXPECT_FALSE(LzDecompress(packed.data(), keep, sink.data(), raw.size()))
        << "prefix " << keep;
  }
  // Wrong declared raw size in both directions.
  std::vector<uint8_t> small(raw.size() - 1);
  EXPECT_FALSE(
      LzDecompress(packed.data(), packed.size(), small.data(), small.size()));
  std::vector<uint8_t> big(raw.size() + 1);
  EXPECT_FALSE(
      LzDecompress(packed.data(), packed.size(), big.data(), big.size()));

  // Random garbage streams: never crash, never write past `sink`.
  Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> junk(1 + rng.NextU64() % 200);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextU64());
    (void)LzDecompress(junk.data(), junk.size(), sink.data(), sink.size());
  }

  // Every single-byte corruption either fails or round-trips to the
  // declared size — it must never read/write out of bounds (ASan leg).
  for (size_t i = 0; i < packed.size(); ++i) {
    std::vector<uint8_t> bad = packed;
    bad[i] ^= 0x5A;
    (void)LzDecompress(bad.data(), bad.size(), sink.data(), sink.size());
  }
}

}  // namespace
}  // namespace astream
