#include "common/bitset.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace astream {
namespace {

TEST(DynamicBitsetTest, EmptyByDefault) {
  DynamicBitset b;
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.HighestBit(), -1);
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(1000));
}

TEST(DynamicBitsetTest, SetTestReset) {
  DynamicBitset b;
  b.Set(3);
  EXPECT_TRUE(b.Test(3));
  EXPECT_FALSE(b.Test(2));
  EXPECT_EQ(b.Count(), 1u);
  b.Reset(3);
  EXPECT_TRUE(b.None());
  // Resetting an out-of-range bit is a no-op.
  b.Reset(10'000);
  EXPECT_TRUE(b.None());
}

TEST(DynamicBitsetTest, GrowsPastOneWord) {
  DynamicBitset b;
  b.Set(5);
  b.Set(100);
  b.Set(250);
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(100));
  EXPECT_TRUE(b.Test(250));
  EXPECT_FALSE(b.Test(99));
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_EQ(b.HighestBit(), 250);
}

TEST(DynamicBitsetTest, PaperExampleIntersection) {
  // Fig. 3a: t2 has query-set 10, t3 has 01 — they share no query.
  DynamicBitset t2 = DynamicBitset::Single(0);
  DynamicBitset t3 = DynamicBitset::Single(1);
  EXPECT_FALSE(t2.Intersects(t3));
  EXPECT_TRUE((t2 & t3).None());

  // t4 (11) shares Q1 with t2 and Q2 with t3.
  DynamicBitset t4;
  t4.Set(0);
  t4.Set(1);
  EXPECT_TRUE(t4.Intersects(t2));
  EXPECT_TRUE(t4.Intersects(t3));
}

TEST(DynamicBitsetTest, AndOrDifferentSizes) {
  DynamicBitset small = DynamicBitset::Single(1);
  DynamicBitset big;
  big.Set(1);
  big.Set(200);

  DynamicBitset conj = small & big;
  EXPECT_TRUE(conj.Test(1));
  EXPECT_FALSE(conj.Test(200));
  EXPECT_EQ(conj.Count(), 1u);

  DynamicBitset disj = small | big;
  EXPECT_TRUE(disj.Test(1));
  EXPECT_TRUE(disj.Test(200));
  EXPECT_EQ(disj.Count(), 2u);
}

TEST(DynamicBitsetTest, AndShrinksHighBits) {
  DynamicBitset a;
  a.Set(70);
  DynamicBitset b = DynamicBitset::Single(0);
  a &= b;
  EXPECT_TRUE(a.None());
}

TEST(DynamicBitsetTest, AndNot) {
  DynamicBitset a = DynamicBitset::AllSet(4);
  a.AndNot(DynamicBitset::Single(2));
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
  EXPECT_TRUE(a.Test(3));
}

TEST(DynamicBitsetTest, EqualityIgnoresCapacity) {
  DynamicBitset a = DynamicBitset::Single(3);
  DynamicBitset b(500);
  b.Set(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(499);
  EXPECT_NE(a, b);
}

TEST(DynamicBitsetTest, AllSet) {
  DynamicBitset b = DynamicBitset::AllSet(130);
  EXPECT_EQ(b.Count(), 130u);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(130));
}

TEST(DynamicBitsetTest, ForEachSetBitInOrder) {
  DynamicBitset b;
  b.Set(2);
  b.Set(64);
  b.Set(129);
  std::vector<size_t> bits;
  b.ForEachSetBit([&](size_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<size_t>{2, 64, 129}));
}

TEST(DynamicBitsetTest, ToString) {
  DynamicBitset b;
  b.Set(1);
  b.Set(3);
  EXPECT_EQ(b.ToString(4), "0101");
}

TEST(DynamicBitsetTest, SerializationRoundTrip) {
  DynamicBitset b;
  b.Set(7);
  b.Set(120);
  std::vector<uint64_t> words;
  for (size_t i = 0; i < b.NumWords(); ++i) words.push_back(b.Word(i));
  DynamicBitset restored;
  restored.FromWords(words);
  EXPECT_EQ(b, restored);
}

/// Property sweep: random operations agree with a reference std::vector<bool>
/// model across sizes that cross the inline-word boundary.
class BitsetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetPropertyTest, MatchesReferenceModel) {
  const int universe = GetParam();
  Rng rng(1234 + universe);
  DynamicBitset actual;
  std::vector<bool> model(universe, false);
  for (int step = 0; step < 2000; ++step) {
    const auto bit = static_cast<size_t>(rng.UniformInt(0, universe - 1));
    if (rng.Bernoulli(0.5)) {
      actual.Set(bit);
      model[bit] = true;
    } else {
      actual.Reset(bit);
      model[bit] = false;
    }
  }
  size_t expected_count = 0;
  int expected_high = -1;
  for (int i = 0; i < universe; ++i) {
    EXPECT_EQ(actual.Test(i), model[i]) << "bit " << i;
    if (model[i]) {
      ++expected_count;
      expected_high = i;
    }
  }
  EXPECT_EQ(actual.Count(), expected_count);
  EXPECT_EQ(actual.HighestBit(), expected_high);
}

TEST_P(BitsetPropertyTest, AndOrDeMorgan) {
  const int universe = GetParam();
  Rng rng(99 + universe);
  for (int round = 0; round < 50; ++round) {
    DynamicBitset a, b;
    for (int i = 0; i < universe; ++i) {
      if (rng.Bernoulli(0.3)) a.Set(i);
      if (rng.Bernoulli(0.3)) b.Set(i);
    }
    const DynamicBitset conj = a & b;
    const DynamicBitset disj = a | b;
    for (int i = 0; i < universe; ++i) {
      EXPECT_EQ(conj.Test(i), a.Test(i) && b.Test(i));
      EXPECT_EQ(disj.Test(i), a.Test(i) || b.Test(i));
    }
    EXPECT_EQ(conj.Any(), a.Intersects(b));
    // |A| + |B| == |A&B| + |A|B|.
    EXPECT_EQ(a.Count() + b.Count(), conj.Count() + disj.Count());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetPropertyTest,
                         ::testing::Values(8, 64, 65, 128, 1000));

}  // namespace
}  // namespace astream
