#include "spe/topology.h"

#include <set>

namespace astream::spe {

Status TopologySpec::Validate() const {
  if (stages_.empty()) {
    return Status::InvalidArgument("topology has no stages");
  }
  for (size_t s = 0; s < stages_.size(); ++s) {
    const StageSpec& stage = stages_[s];
    if (!stage.factory) {
      return Status::InvalidArgument("stage '" + stage.name +
                                     "' has no operator factory");
    }
    if (stage.parallelism < 1) {
      return Status::InvalidArgument("stage '" + stage.name +
                                     "' has parallelism < 1");
    }
    std::set<int> fed_ports;
    for (const EdgeSpec& e : stage.inputs) {
      if (e.upstream_stage < 0 ||
          e.upstream_stage >= static_cast<int>(s)) {
        return Status::InvalidArgument(
            "stage '" + stage.name +
            "' has an edge from a non-earlier stage (stages must be added "
            "in topological order)");
      }
      if (e.port < 0 || e.port >= stage.num_ports) {
        return Status::InvalidArgument("stage '" + stage.name +
                                       "' edge references bad port");
      }
      fed_ports.insert(e.port);
    }
    for (const ExternalInputSpec& in : inputs_) {
      if (in.target_stage == static_cast<int>(s)) {
        if (in.port < 0 || in.port >= stage.num_ports) {
          return Status::InvalidArgument("external input '" + in.name +
                                         "' references bad port");
        }
        fed_ports.insert(in.port);
      }
    }
    for (int p = 0; p < stage.num_ports; ++p) {
      if (!fed_ports.count(p)) {
        return Status::InvalidArgument(
            "stage '" + stage.name + "' port " + std::to_string(p) +
            " has no incoming edge or external input");
      }
    }
  }
  for (const ExternalInputSpec& in : inputs_) {
    if (in.target_stage < 0 ||
        in.target_stage >= static_cast<int>(stages_.size())) {
      return Status::InvalidArgument("external input '" + in.name +
                                     "' targets unknown stage");
    }
  }
  return Status::OK();
}

}  // namespace astream::spe
