#ifndef ASTREAM_SPE_RING_H_
#define ASTREAM_SPE_RING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "spe/channel.h"

namespace astream::spe {

/// Wakeup latch shared by every input source of one consumer task. Producers
/// Ring() after each push; the consumer Park()s only after polling every
/// source empty. The version counter closes the poll-then-sleep race: the
/// consumer samples the version before polling and refuses to sleep if any
/// Ring() happened since. All waits are additionally timed, so a (theoretical)
/// missed wakeup costs bounded latency, never liveness.
class InboxDoorbell {
 public:
  /// Producer side: wake a parked consumer. The fast path is one plain
  /// load: when the consumer is awake there is nothing to do — it will see
  /// the pushed data on its next poll. Only when the parked flag is set
  /// does the producer bump the version and notify under the mutex. A push
  /// that lands in the consumer's poll-then-park window can miss the flag;
  /// Park()'s bounded timed wait turns that race into <= 1 ms of latency,
  /// never a lost wakeup.
  void Ring() {
    if (!consumer_parked_.load(std::memory_order_seq_cst)) return;
    version_.fetch_add(1, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_one();
  }

  uint64_t Version() const {
    return version_.load(std::memory_order_seq_cst);
  }

  /// Consumer side: sleep until the version moves past `seen_version` (or a
  /// bounded timeout elapses — the caller re-polls either way).
  void Park(uint64_t seen_version) {
    std::unique_lock<std::mutex> lock(mutex_);
    consumer_parked_.store(true, std::memory_order_seq_cst);
    if (version_.load(std::memory_order_seq_cst) == seen_version) {
      cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return version_.load(std::memory_order_seq_cst) != seen_version;
      });
    }
    consumer_parked_.store(false, std::memory_order_seq_cst);
  }

 private:
  std::atomic<uint64_t> version_{0};
  std::atomic<bool> consumer_parked_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Lock-free single-producer/single-consumer ring of BatchEnvelopes — the
/// hot-path channel for (upstream-instance -> downstream-instance) edges,
/// where the threaded runner guarantees exactly one producing thread. One
/// slot per batch: a push or pop is one slot move plus one release store,
/// amortized over the whole ElementBatch.
///
/// The fast path never takes a lock. Slow paths park: a producer facing a
/// full ring waits on a private condvar (woken by the consumer's pop); a
/// consumer facing all-empty sources waits on the shared InboxDoorbell.
///
/// Close() wins over full: TryPush re-checks the closed flag after
/// detecting a full ring, so a push racing with shutdown reports kClosed,
/// never a transient kFull (see the matching regression test).
class SpscRing {
 public:
  /// `capacity_batches` is rounded up to a power of two (min 2).
  /// `doorbell` (may be null) is rung after every successful push.
  explicit SpscRing(size_t capacity_batches, InboxDoorbell* doorbell = nullptr)
      : doorbell_(doorbell) {
    size_t cap = 2;
    while (cap < capacity_batches) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Non-blocking push (producer thread only). kFull is transient; kClosed
  /// is permanent and dominates kFull. On kOk the batch was enqueued.
  PushStatus TryPush(BatchEnvelope batch) { return TryPushImpl(batch); }

  /// Blocking push (producer thread only): spins briefly, then parks until
  /// the consumer frees a slot. Returns false iff the ring was closed.
  /// The parked flag is raised only for the duration of the actual wait
  /// (retries run outside the lock), so the consumer's per-pop wake check
  /// stays a single uncontended load while the producer is making
  /// progress.
  bool Push(BatchEnvelope batch) {
    if (fault::FaultInjector* inj = fault::ActiveInjector()) {
      // kChannelPush (ring edge): kDelay stalls the producer; kClose is
      // drop-to-closed — the push below fails via the closed path and the
      // runner converts the loss into a detected failure.
      const fault::FaultDecision d =
          inj->Decide(fault::FaultPoint::kChannelPush);
      if (d.action == fault::FaultAction::kDelay) {
        std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
      } else if (d.action == fault::FaultAction::kClose) {
        Close();
      }
    }
    for (int spin = 0; spin < 64; ++spin) {
      switch (TryPushImpl(batch)) {
        case PushStatus::kOk: return true;
        case PushStatus::kClosed: return false;
        case PushStatus::kFull: break;
      }
    }
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(producer_mutex_);
        producer_parked_.store(true, std::memory_order_seq_cst);
        // Re-check under the flag: a pop that raced the flag store will
        // either see it (and notify under the mutex we hold) or have
        // already freed the slot this retry finds.
        const PushStatus st = TryPushImpl(batch);
        if (st != PushStatus::kFull) {
          producer_parked_.store(false, std::memory_order_seq_cst);
          return st == PushStatus::kOk;
        }
        producer_cv_.wait_for(lock, std::chrono::microseconds(200));
        producer_parked_.store(false, std::memory_order_seq_cst);
      }
      const PushStatus st = TryPushImpl(batch);
      if (st != PushStatus::kFull) return st == PushStatus::kOk;
    }
  }

  /// Non-blocking pop (consumer thread only).
  std::optional<BatchEnvelope> TryPop() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;
    }
    BatchEnvelope batch = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    // Single-writer counter: load+store, no locked read-modify-write.
    popped_elements_.store(
        popped_elements_.load(std::memory_order_relaxed) +
            batch.elements.size(),
        std::memory_order_relaxed);
    WakeProducerIfParked();
    return batch;
  }

  /// After Close, pushes fail (kClosed) and pops drain the remaining slots.
  void Close() {
    closed_.store(true, std::memory_order_seq_cst);
    WakeProducerIfParked();
    if (doorbell_ != nullptr) doorbell_->Ring();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Closed and fully drained (consumer side's end-of-input check).
  bool Drained() const {
    return closed() && head_.load(std::memory_order_acquire) ==
                           tail_.load(std::memory_order_acquire);
  }

  /// Queued elements (summed over batches) — the queue-depth gauge.
  /// Reading popped before pushed keeps the difference non-negative.
  size_t Size() const {
    const size_t popped = popped_elements_.load(std::memory_order_relaxed);
    const size_t pushed = pushed_elements_.load(std::memory_order_relaxed);
    return pushed - popped;
  }

  /// Queued batches.
  size_t NumBatches() const {
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  size_t CapacityBatches() const { return mask_ + 1; }

  /// Fill fraction in [0, 1] (the edge ring-occupancy gauge).
  double Occupancy() const {
    return static_cast<double>(NumBatches()) /
           static_cast<double>(CapacityBatches());
  }

 private:
  /// Moves from `batch` only on kOk, so blocking callers can retry.
  PushStatus TryPushImpl(BatchEnvelope& batch) {
    if (closed_.load(std::memory_order_seq_cst)) return PushStatus::kClosed;
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) {
        // Full. Re-check closed so a close that raced the fullness check
        // reports the permanent state, not the transient one.
        return closed_.load(std::memory_order_seq_cst) ? PushStatus::kClosed
                                                       : PushStatus::kFull;
      }
    }
    pushed_elements_.store(
        pushed_elements_.load(std::memory_order_relaxed) +
            batch.elements.size(),
        std::memory_order_relaxed);
    slots_[tail & mask_] = std::move(batch);
    tail_.store(tail + 1, std::memory_order_release);
    if (doorbell_ != nullptr) doorbell_->Ring();
    return PushStatus::kOk;
  }

  void WakeProducerIfParked() {
    if (producer_parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(producer_mutex_);
      producer_cv_.notify_one();
    }
  }

  // Hot indices on separate cache lines: producer writes tail_, consumer
  // writes head_; each side caches the other's index to avoid re-reading
  // the contended line on every operation.
  alignas(64) std::atomic<size_t> tail_{0};
  size_t cached_head_ = 0;                  // producer thread only
  std::atomic<size_t> pushed_elements_{0};  // single writer: producer
  alignas(64) std::atomic<size_t> head_{0};
  size_t cached_tail_ = 0;                  // consumer thread only
  std::atomic<size_t> popped_elements_{0};  // single writer: consumer
  alignas(64) std::vector<BatchEnvelope> slots_;
  size_t mask_ = 0;
  std::atomic<bool> closed_{false};

  InboxDoorbell* doorbell_;
  // Producer-side parking lot (backpressure slow path).
  std::atomic<bool> producer_parked_{false};
  std::mutex producer_mutex_;
  std::condition_variable producer_cv_;
};

/// One consumer task's input side: a set of SPSC rings (one per upstream
/// instance edge, each with exactly one producing thread) plus one mutex
/// MPMC Channel for external-ingress edges (driver threads, markers —
/// anything without a single-producer guarantee). Pop() multiplexes all
/// sources with a round-robin scan and parks on the shared doorbell when
/// every source is empty; it returns std::nullopt only when every source
/// is closed and drained.
///
/// Wiring (AddRing / EnsureExternal) must complete before producer or
/// consumer threads start; all other methods are then thread-safe under
/// the SPSC/MPMC contracts of the underlying sources.
class TaskInbox {
 public:
  explicit TaskInbox(size_t external_capacity_elements)
      : external_capacity_(external_capacity_elements) {}

  /// Registers one SPSC edge and returns its producer handle.
  SpscRing* AddRing(size_t capacity_batches) {
    rings_.push_back(
        std::make_unique<SpscRing>(capacity_batches, &doorbell_));
    return rings_.back().get();
  }

  /// Lazily creates the external-ingress channel (mutex MPMC fallback).
  Channel* EnsureExternal() {
    if (external_ == nullptr) {
      external_ = std::make_unique<Channel>(external_capacity_);
    }
    return external_.get();
  }

  /// Blocking push into the external channel; rings the doorbell so a
  /// parked consumer wakes without waiting out its timeout.
  bool PushExternal(BatchEnvelope batch) {
    Channel* ch = external_.get();
    if (ch == nullptr) return false;
    const bool ok = ch->Push(std::move(batch));
    if (ok) doorbell_.Ring();
    return ok;
  }

  /// Blocking pop across all sources; std::nullopt = all closed + drained.
  /// Spins through a bounded number of empty polling rounds before parking:
  /// under sustained traffic the consumer never enters the parked state, so
  /// producers never pay the futex wake path — the pipe stays lock-free
  /// end to end. Parking (and its 1 ms timed backstop) only happens on a
  /// genuinely idle input.
  std::optional<BatchEnvelope> Pop() {
    int empty_rounds = 0;
    for (;;) {
      const uint64_t version = doorbell_.Version();
      const size_t n = rings_.size();
      for (size_t k = 0; k < n; ++k) {
        const size_t idx = next_source_ + k < n ? next_source_ + k
                                                : next_source_ + k - n;
        if (auto batch = rings_[idx]->TryPop()) {
          next_source_ = idx + 1 == n ? 0 : idx + 1;
          return batch;
        }
      }
      if (external_ != nullptr) {
        if (auto batch = external_->TryPop()) return batch;
      }
      if (AllDrained()) return std::nullopt;
      if (++empty_rounds < kSpinRounds) continue;
      empty_rounds = 0;
      doorbell_.Park(version);
    }
  }

  /// Closes every source (cancel path) and wakes the consumer.
  void Close() {
    for (auto& ring : rings_) ring->Close();
    if (external_ != nullptr) external_->Close();
    doorbell_.Ring();
  }

  size_t QueuedElements() const {
    size_t total = 0;
    for (const auto& ring : rings_) total += ring->Size();
    if (external_ != nullptr) total += external_->Size();
    return total;
  }

  /// Highest fill fraction across this task's rings, in [0, 1].
  double MaxRingOccupancy() const {
    double max_occ = 0.0;
    for (const auto& ring : rings_) {
      const double occ = ring->Occupancy();
      if (occ > max_occ) max_occ = occ;
    }
    return max_occ;
  }

  size_t NumRings() const { return rings_.size(); }
  InboxDoorbell* doorbell() { return &doorbell_; }

 private:
  // Empty polling rounds before the consumer parks (a round is one scan of
  // every source). ~a microsecond of spinning; cheap against the futex
  // round trip it saves on every push while traffic flows.
  static constexpr int kSpinRounds = 256;

  bool AllDrained() const {
    for (const auto& ring : rings_) {
      if (!ring->Drained()) return false;
    }
    return external_ == nullptr || external_->Drained();
  }

  InboxDoorbell doorbell_;
  std::vector<std::unique_ptr<SpscRing>> rings_;
  std::unique_ptr<Channel> external_;
  const size_t external_capacity_;
  size_t next_source_ = 0;  // round-robin cursor (consumer thread only)
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_RING_H_
