#include "spe/runner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "fault/injector.h"

namespace astream::spe {
namespace internal {

int InstanceForKey(Value key, int parallelism) {
  uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 32;
  return static_cast<int>(h % static_cast<uint64_t>(parallelism));
}

namespace {

int64_t SenderKey(int port, int sender) {
  return (static_cast<int64_t>(port) << 32) | static_cast<uint32_t>(sender);
}

}  // namespace

/// Collector passed to the operator: counts and forwards emitted records.
class InstanceRuntime::RecordCollector : public Collector {
 public:
  explicit RecordCollector(InstanceRuntime* owner) : owner_(owner) {}
  void Emit(StreamElement element) override {
    assert(element.kind == ElementKind::kRecord &&
           "operators may only emit records; the runtime forwards control");
    owner_->records_out_.fetch_add(1, std::memory_order_relaxed);
    owner_->emit_record(std::move(element));
  }

 private:
  InstanceRuntime* owner_;
};

InstanceRuntime::InstanceRuntime(int stage, int instance,
                                 std::unique_ptr<Operator> op)
    : stage_(stage), instance_(instance), op_(std::move(op)) {
  collector_ = std::make_unique<RecordCollector>(this);
}

void InstanceRuntime::AddExpectedSender(int port, int sender_gid) {
  const auto [it, inserted] =
      senders_.try_emplace(SenderKey(port, sender_gid));
  (void)it;
  assert(inserted && "duplicate (port, sender)");
  ++total_senders_;
}

Status InstanceRuntime::Open(const OperatorContext& ctx) {
  return op_->Open(ctx);
}

InstanceRuntime::SenderState& InstanceRuntime::GetSender(int port,
                                                         int sender) {
  auto it = senders_.find(SenderKey(port, sender));
  assert(it != senders_.end() && "element from undeclared sender");
  return it->second;
}

void InstanceRuntime::Deliver(Envelope env) {
  DeliverBatch(BatchEnvelope::Single(env.port, env.sender,
                                     std::move(env.element)));
}

void InstanceRuntime::DeliverBatch(BatchEnvelope batch) {
  SenderState& st = GetSender(batch.port, batch.sender);
  if (st.blocked) {
    st.pending.push_back(std::move(batch));
    return;
  }
  HandleBatch(batch.port, batch.sender, std::move(batch.elements));
  DrainPending();
}

void InstanceRuntime::HandleBatch(int port, int sender,
                                  ElementBatch&& elements) {
  SenderState& st = GetSender(port, sender);
  StreamElement* el = elements.data();
  const size_t n = elements.size();
  size_t i = 0;
  while (i < n) {
    if (el[i].kind == ElementKind::kRecord) {
      // Hand the contiguous record run to the operator as one call.
      scratch_records_.clear();
      while (i < n && el[i].kind == ElementKind::kRecord) {
        scratch_records_.push_back(std::move(el[i].record));
        ++i;
      }
      records_in_.fetch_add(static_cast<int64_t>(scratch_records_.size()),
                            std::memory_order_relaxed);
      if (fault::FaultInjector* inj = fault::ActiveInjector()) {
        // kOperatorProcess: kThrow models an operator crash right where a
        // genuine operator bug would surface (poisons the task in threaded
        // mode; propagates to the caller in sync mode).
        const fault::FaultDecision d =
            inj->Decide(fault::FaultPoint::kOperatorProcess, stage_);
        if (d.action == fault::FaultAction::kDelay) {
          std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
        } else if (d.action != fault::FaultAction::kNone) {
          throw fault::InjectedFault(
              "injected operator crash at stage " + std::to_string(stage_) +
              "/" + std::to_string(instance_));
        }
      }
      op_->ProcessBatch(port, scratch_records_, collector_.get());
      continue;
    }
    HandleControl(st, std::move(el[i]));
    ++i;
    // A marker may have blocked this sender mid-batch. Park the unprocessed
    // tail at the FRONT of the pending queue so order is preserved when the
    // marker fires and unblocks us.
    if (st.blocked && i < n) {
      BatchEnvelope rest;
      rest.port = port;
      rest.sender = sender;
      for (; i < n; ++i) rest.elements.Add(std::move(el[i]));
      st.pending.push_front(std::move(rest));
      return;
    }
  }
}

void InstanceRuntime::HandleControl(SenderState& st, StreamElement&& el) {
  switch (el.kind) {
    case ElementKind::kRecord:
      assert(false && "records are handled by HandleBatch");
      break;
    case ElementKind::kWatermark:
      if (el.watermark > st.watermark) {
        st.watermark = el.watermark;
        RecomputeWatermark();
      }
      break;
    case ElementKind::kMarker:
      HandleMarker(st, el.marker);
      break;
    case ElementKind::kDone:
      if (!st.done) {
        st.done = true;
        ++done_senders_;
        st.watermark = kMaxTimestamp;
        RecomputeWatermark();
        if (aligning_ && aligned_count_ + done_senders_ >= total_senders_) {
          FireMarker(aligning_marker_);
        }
        CheckAllDone();
      }
      break;
  }
}

void InstanceRuntime::HandleMarker(SenderState& st,
                                   const ControlMarker& marker) {
  if (!aligning_) {
    aligning_ = true;
    aligning_marker_ = marker;
    aligned_count_ = 0;
  } else {
    assert(aligning_marker_.kind == marker.kind &&
           aligning_marker_.epoch == marker.epoch &&
           "senders must deliver markers in one global order");
  }
  st.blocked = true;
  ++aligned_count_;
  if (aligned_count_ + done_senders_ >= total_senders_) {
    FireMarker(aligning_marker_);
  }
}

void InstanceRuntime::FireMarker(const ControlMarker& marker) {
  aligning_ = false;
  for (auto& [key, st] : senders_) st.blocked = false;
  if (marker.kind == MarkerKind::kCheckpointBarrier) {
    // Deliver the barrier to the operator BEFORE snapshotting so the
    // snapshot captures post-barrier bookkeeping (e.g. the router's output
    // epoch advances to this barrier's id). No operator emits records on a
    // checkpoint barrier, so the snapshot still sees exactly the aligned
    // pre-barrier data state.
    op_->OnMarker(marker, collector_.get());
    if (snapshot) {
      Status s = Status::OK();
      if (fault::FaultInjector* inj = fault::ActiveInjector()) {
        // kSnapshot: kFail loses this instance's contribution, so the
        // checkpoint never completes and recovery falls back to the last
        // complete one; kThrow crashes the task at the barrier itself.
        const fault::FaultDecision d =
            inj->Decide(fault::FaultPoint::kSnapshot, stage_);
        if (d.action == fault::FaultAction::kFail) {
          s = Status::Internal("injected snapshot failure");
        } else if (d.action == fault::FaultAction::kThrow) {
          throw fault::InjectedFault("injected crash at checkpoint barrier " +
                                     std::to_string(marker.epoch));
        }
      }
      StateWriter writer;
      if (s.ok()) s = op_->SnapshotState(&writer);
      if (!s.ok()) {
        ASTREAM_LOG(kError, "runner")
            << "snapshot failed for stage " << stage_ << "/" << instance_
            << ": " << s.ToString();
      } else {
        snapshot(marker.epoch, stage_, instance_, writer.TakeBuffer());
      }
    }
    forward_control(StreamElement::MakeMarker(marker));
    return;
  }
  op_->OnMarker(marker, collector_.get());
  forward_control(StreamElement::MakeMarker(marker));
}

void InstanceRuntime::RecomputeWatermark() {
  TimestampMs min_wm = kMaxTimestamp;
  for (const auto& [key, st] : senders_) {
    if (st.watermark < min_wm) min_wm = st.watermark;
  }
  if (min_wm > current_watermark_) {
    current_watermark_ = min_wm;
    op_->OnWatermark(min_wm, collector_.get());
    forward_control(StreamElement::MakeWatermark(min_wm));
  }
}

void InstanceRuntime::CheckAllDone() {
  if (finished_ || done_senders_ < total_senders_) return;
  op_->Close(collector_.get());
  forward_control(StreamElement::MakeDone());
  finished_ = true;
}

void InstanceRuntime::DrainPending() {
  if (draining_) return;
  draining_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [key, st] : senders_) {
      while (!st.blocked && !st.pending.empty()) {
        BatchEnvelope batch = std::move(st.pending.front());
        st.pending.pop_front();
        // HandleBatch may re-block the sender mid-batch and park the tail
        // back at the front; the loop condition re-checks `blocked`.
        HandleBatch(batch.port, batch.sender, std::move(batch.elements));
        progress = true;
      }
    }
  }
  draining_ = false;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Shared wiring helpers
// ---------------------------------------------------------------------------

namespace {

std::vector<std::vector<internal::DownstreamEdge>> BuildDownstream(
    const TopologySpec& spec) {
  std::vector<std::vector<internal::DownstreamEdge>> down(
      spec.stages().size());
  for (size_t s = 0; s < spec.stages().size(); ++s) {
    for (const EdgeSpec& e : spec.stages()[s].inputs) {
      down[e.upstream_stage].push_back(internal::DownstreamEdge{
          static_cast<int>(s), e.port, e.partitioning});
    }
  }
  return down;
}

std::vector<int> BuildGidBases(const TopologySpec& spec) {
  std::vector<int> bases(spec.stages().size());
  int next = 0;
  for (size_t s = 0; s < spec.stages().size(); ++s) {
    bases[s] = next;
    next += spec.stages()[s].parallelism;
  }
  return bases;
}

int ExternalSenderGid(int input_index) { return -1 - input_index; }

/// Registers all expected senders of one instance.
void RegisterSenders(internal::InstanceRuntime* rt, const TopologySpec& spec,
                     const std::vector<int>& gid_base, int stage) {
  for (const EdgeSpec& e : spec.stages()[stage].inputs) {
    const StageSpec& up = spec.stages()[e.upstream_stage];
    for (int u = 0; u < up.parallelism; ++u) {
      rt->AddExpectedSender(e.port, gid_base[e.upstream_stage] + u);
    }
  }
  for (size_t in = 0; in < spec.external_inputs().size(); ++in) {
    const ExternalInputSpec& ext = spec.external_inputs()[in];
    if (ext.target_stage == stage) {
      rt->AddExpectedSender(ext.port,
                            ExternalSenderGid(static_cast<int>(in)));
    }
  }
}

OperatorContext MakeContext(const TopologySpec& spec, int stage,
                            int instance) {
  OperatorContext ctx;
  ctx.stage_index = stage;
  ctx.instance_index = instance;
  ctx.parallelism = spec.stages()[stage].parallelism;
  ctx.stage_name = spec.stages()[stage].name;
  ctx.clock = WallClock::Default();
  return ctx;
}

}  // namespace

// ---------------------------------------------------------------------------
// SyncRunner
// ---------------------------------------------------------------------------

SyncRunner::SyncRunner(TopologySpec spec, SinkFn sink, SnapshotFn snapshot)
    : spec_(std::move(spec)),
      sink_(std::move(sink)),
      snapshot_(std::move(snapshot)) {}

SyncRunner::~SyncRunner() = default;

Status SyncRunner::Start() {
  ASTREAM_RETURN_IF_ERROR(spec_.Validate());
  downstream_ = BuildDownstream(spec_);
  gid_base_ = BuildGidBases(spec_);

  const auto& stages = spec_.stages();
  instances_.resize(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    const StageSpec& stage = stages[s];
    for (int i = 0; i < stage.parallelism; ++i) {
      auto rt = std::make_unique<internal::InstanceRuntime>(
          static_cast<int>(s), i, stage.factory(i));
      RegisterSenders(rt.get(), spec_, gid_base_, static_cast<int>(s));
      const int stage_index = static_cast<int>(s);
      const int instance_index = i;
      rt->emit_record = [this, stage_index,
                         instance_index](StreamElement&& el) {
        RouteFromInstance(stage_index, instance_index, el,
                          /*control=*/false);
      };
      rt->forward_control = [this, stage_index,
                             instance_index](const StreamElement& el) {
        RouteFromInstance(stage_index, instance_index, el,
                          /*control=*/true);
      };
      if (snapshot_) rt->snapshot = snapshot_;
      ASTREAM_RETURN_IF_ERROR(
          rt->Open(MakeContext(spec_, stage_index, instance_index)));
      instances_[s].push_back(std::move(rt));
    }
  }
  started_ = true;
  return Status::OK();
}

void SyncRunner::RouteFromInstance(int stage, int instance,
                                   const StreamElement& el, bool control) {
  if (spec_.stages()[stage].is_sink && sink_) {
    sink_(stage, instance, el);
  }
  const int sender = gid_base_[stage] + instance;
  for (const internal::DownstreamEdge& edge : downstream_[stage]) {
    auto& targets = instances_[edge.target_stage];
    if (!control && el.kind == ElementKind::kRecord &&
        edge.partitioning == Partitioning::kHash) {
      const int i = internal::InstanceForKey(
          el.record.row.key(), static_cast<int>(targets.size()));
      targets[i]->Deliver(Envelope{edge.port, sender, el});
    } else {
      for (auto& target : targets) {
        target->Deliver(Envelope{edge.port, sender, el});
      }
    }
  }
}

bool SyncRunner::Push(int input_index, StreamElement element) {
  if (cancelled_) return false;
  RouteExternal(input_index, std::move(element));
  return true;
}

bool SyncRunner::PushBatch(int input_index, ElementBatch batch) {
  if (cancelled_) return false;
  const ExternalInputSpec& ext = spec_.external_inputs()[input_index];
  auto& targets = instances_[ext.target_stage];
  const int par = static_cast<int>(targets.size());
  const int sender = ExternalSenderGid(input_index);
  std::vector<ElementBatch> sub(par);
  auto flush = [&] {
    for (int i = 0; i < par; ++i) {
      if (sub[i].empty()) continue;
      BatchEnvelope be;
      be.port = ext.port;
      be.sender = sender;
      be.elements = std::move(sub[i]);
      targets[i]->DeliverBatch(std::move(be));
    }
  };
  for (StreamElement& el : batch) {
    if (el.kind == ElementKind::kRecord) {
      if (ext.partitioning == Partitioning::kHash) {
        const int i = internal::InstanceForKey(el.record.row.key(), par);
        sub[i].Add(std::move(el));
      } else {
        for (int i = 0; i < par; ++i) sub[i].Add(el);
      }
    } else {
      // Control element: batch boundary. Drain buffered records first so
      // per-edge order is preserved, then broadcast it.
      flush();
      for (auto& target : targets) {
        target->DeliverBatch(BatchEnvelope::Single(ext.port, sender, el));
      }
    }
  }
  flush();
  return true;
}

void SyncRunner::RouteExternal(int input_index, StreamElement element) {
  const ExternalInputSpec& ext = spec_.external_inputs()[input_index];
  auto& targets = instances_[ext.target_stage];
  const int sender = ExternalSenderGid(input_index);
  if (element.kind == ElementKind::kRecord &&
      ext.partitioning == Partitioning::kHash) {
    const int i = internal::InstanceForKey(
        element.record.row.key(), static_cast<int>(targets.size()));
    targets[i]->Deliver(Envelope{ext.port, sender, std::move(element)});
    return;
  }
  for (auto& target : targets) {
    target->Deliver(Envelope{ext.port, sender, element});
  }
}

void SyncRunner::InjectMarker(const ControlMarker& marker) {
  for (size_t in = 0; in < spec_.external_inputs().size(); ++in) {
    RouteExternal(static_cast<int>(in), StreamElement::MakeMarker(marker));
  }
}

void SyncRunner::FinishAndWait() {
  if (finished_ || cancelled_) return;
  for (size_t in = 0; in < spec_.external_inputs().size(); ++in) {
    RouteExternal(static_cast<int>(in),
                  StreamElement::MakeWatermark(kMaxTimestamp));
    RouteExternal(static_cast<int>(in), StreamElement::MakeDone());
  }
  finished_ = true;
}

void SyncRunner::Cancel() { cancelled_ = true; }

Status SyncRunner::Restore(const CheckpointStore::Checkpoint& checkpoint) {
  for (size_t s = 0; s < instances_.size(); ++s) {
    for (size_t i = 0; i < instances_[s].size(); ++i) {
      auto it = checkpoint.operator_state.find(CheckpointStore::StateKey(
          static_cast<int>(s), static_cast<int>(i)));
      if (it == checkpoint.operator_state.end()) {
        return Status::NotFound("missing checkpoint state for stage " +
                                std::to_string(s) + "/" + std::to_string(i));
      }
      StateReader reader(it->second);
      ASTREAM_RETURN_IF_ERROR(instances_[s][i]->op()->RestoreState(&reader));
      if (!reader.Ok()) {
        return Status::Internal("corrupt checkpoint state for stage " +
                                std::to_string(s));
      }
    }
  }
  return Status::OK();
}

int64_t SyncRunner::StageRecordsIn(int stage) const {
  int64_t n = 0;
  for (const auto& i : instances_[stage]) n += i->records_in();
  return n;
}

static int NumStagesOf(const TopologySpec& spec) {
  return static_cast<int>(spec.stages().size());
}

int SyncRunner::NumStages() const { return NumStagesOf(spec_); }

const std::string& SyncRunner::StageName(int stage) const {
  return spec_.stages()[stage].name;
}

int64_t SyncRunner::StageRecordsOut(int stage) const {
  int64_t n = 0;
  for (const auto& i : instances_[stage]) n += i->records_out();
  return n;
}

// ---------------------------------------------------------------------------
// ThreadedRunner
// ---------------------------------------------------------------------------

ThreadedRunner::ThreadedRunner(TopologySpec spec, SinkFn sink,
                               SnapshotFn snapshot, size_t channel_capacity,
                               size_t batch_size, bool use_spsc_rings)
    : spec_(std::move(spec)),
      sink_(std::move(sink)),
      snapshot_(std::move(snapshot)),
      channel_capacity_(channel_capacity),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      use_spsc_rings_(use_spsc_rings) {}

ThreadedRunner::~ThreadedRunner() { Cancel(); }

Status ThreadedRunner::Start() {
  ASTREAM_RETURN_IF_ERROR(spec_.Validate());
  downstream_ = BuildDownstream(spec_);
  gid_base_ = BuildGidBases(spec_);
  for (size_t in = 0; in < spec_.external_inputs().size(); ++in) {
    input_mutexes_.push_back(std::make_unique<std::mutex>());
  }

  const auto& stages = spec_.stages();
  tasks_.resize(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    const StageSpec& stage = stages[s];
    for (int i = 0; i < stage.parallelism; ++i) {
      auto task = std::make_unique<Task>();
      task->runtime = std::make_unique<internal::InstanceRuntime>(
          static_cast<int>(s), i, stage.factory(i));
      task->inbox = std::make_unique<TaskInbox>(channel_capacity_);
      // Every instance keeps a mutex channel for producers without a
      // single-producer guarantee (external ingress; all edges in the
      // mutex-fallback mode).
      task->inbox->EnsureExternal();
      RegisterSenders(task->runtime.get(), spec_, gid_base_,
                      static_cast<int>(s));
      task->out.resize(downstream_[s].size());
      for (size_t e = 0; e < downstream_[s].size(); ++e) {
        const int target_par =
            stages[downstream_[s][e].target_stage].parallelism;
        task->out[e].resize(target_par);
      }
      const int stage_index = static_cast<int>(s);
      const int instance_index = i;
      task->runtime->emit_record = [this, stage_index,
                                    instance_index](StreamElement&& el) {
        RouteRecord(stage_index, instance_index, std::move(el));
      };
      task->runtime->forward_control =
          [this, stage_index, instance_index](const StreamElement& el) {
            RouteControl(stage_index, instance_index, el);
          };
      if (snapshot_) task->runtime->snapshot = snapshot_;
      ASTREAM_RETURN_IF_ERROR(
          task->runtime->Open(MakeContext(spec_, stage_index,
                                          instance_index)));
      tasks_[s].push_back(std::move(task));
    }
  }
  // Wire one SPSC ring per internal (upstream-instance -> downstream-
  // instance) edge: each producing task is exactly one thread, so the
  // single-producer contract holds by construction. Must happen before
  // threads spawn — inbox wiring is not thread-safe.
  if (use_spsc_rings_) {
    size_t ring_batches =
        channel_capacity_ / std::max<size_t>(size_t{1}, batch_size_);
    if (ring_batches < 8) ring_batches = 8;
    if (ring_batches > 256) ring_batches = 256;
    for (size_t s = 0; s < stages.size(); ++s) {
      for (auto& task : tasks_[s]) {
        task->out_rings.resize(downstream_[s].size());
        for (size_t e = 0; e < downstream_[s].size(); ++e) {
          auto& targets = tasks_[downstream_[s][e].target_stage];
          task->out_rings[e].resize(targets.size());
          for (size_t i = 0; i < targets.size(); ++i) {
            task->out_rings[e][i] = targets[i]->inbox->AddRing(ring_batches);
          }
        }
      }
    }
  }
  // Spawn threads only after all routing state exists.
  for (auto& stage_tasks : tasks_) {
    for (auto& task : stage_tasks) {
      Task* t = task.get();
      t->thread = std::thread([this, t] { TaskLoop(t); });
    }
  }
  started_ = true;
  return Status::OK();
}

void ThreadedRunner::TaskLoop(Task* task) {
  const int stage = task->runtime->stage();
  try {
    while (true) {
      if (fault::FaultInjector* inj = fault::ActiveInjector()) {
        // kConsumerStall: a slow consumer. The heartbeat below still
        // advances, but backlog builds; a kDelay long enough relative to
        // the watchdog's stall timeout freezes the heartbeat mid-sleep.
        const fault::FaultDecision d =
            inj->Decide(fault::FaultPoint::kConsumerStall, stage);
        if (d.action == fault::FaultAction::kDelay) {
          std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
        }
      }
      std::optional<BatchEnvelope> batch = task->inbox->Pop();
      if (!batch.has_value()) break;  // all sources closed + drained
      task->runtime->DeliverBatch(std::move(*batch));
      // End-of-input-batch flush: a partially filled output buffer never
      // waits for more input, so added latency is bounded by one upstream
      // batch (the task-level linger policy).
      FlushTaskOutputs(task, stage);
      task->heartbeat.fetch_add(1, std::memory_order_relaxed);
      if (task->runtime->Finished()) break;
    }
  } catch (const std::exception& e) {
    // Failure capture: no silent thread death. The first failure poisons
    // the whole runner so every task quiesces and callers see the Status.
    Poison(Status::Internal("task " + StageName(stage) + "/" +
                            std::to_string(task->runtime->instance()) +
                            " failed: " + e.what()));
  }
}

void ThreadedRunner::Poison(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    if (failure_.ok()) {
      failure_ = status;
      ASTREAM_LOG(kWarn, "runner")
          << "poisoned: " << status.ToString();
    }
  }
  poisoned_.store(true, std::memory_order_release);
  // Quiesce: closing every inbox lets sibling tasks drain and exit, and
  // unblocks any producer parked on a full ring/channel (their pushes fail,
  // which PushTo surfaces as kShutdown instead of blocking forever).
  for (auto& stage_tasks : tasks_) {
    for (auto& task : stage_tasks) task->inbox->Close();
  }
}

Status ThreadedRunner::Failure() const {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  return failure_;
}

std::vector<ThreadedRunner::TaskHealthSample>
ThreadedRunner::SampleTaskHealth() const {
  std::vector<TaskHealthSample> samples;
  for (size_t s = 0; s < tasks_.size(); ++s) {
    for (size_t i = 0; i < tasks_[s].size(); ++i) {
      const Task& t = *tasks_[s][i];
      TaskHealthSample sample;
      sample.stage = static_cast<int>(s);
      sample.instance = static_cast<int>(i);
      sample.iterations = t.heartbeat.load(std::memory_order_relaxed);
      sample.queued = t.inbox->QueuedElements();
      samples.push_back(sample);
    }
  }
  return samples;
}

void ThreadedRunner::PushEdge(Task* task, int stage, size_t edge_idx,
                              int target, BatchEnvelope batch) {
  if (cancelled_.load(std::memory_order_relaxed)) return;
  const internal::DownstreamEdge& edge = downstream_[stage][edge_idx];
  const size_t n = batch.elements.size();
  bool ok;
  if (!task->out_rings.empty()) {
    // Per-edge SPSC fast path; this task's thread is the sole producer.
    ok = task->out_rings[edge_idx][target]->Push(std::move(batch));
  } else {
    ok = tasks_[edge.target_stage][target]->inbox->PushExternal(
        std::move(batch));
  }
  if (!ok && !cancelled_.load(std::memory_order_relaxed)) {
    // A closed downstream edge outside cancellation (e.g. an injected
    // drop-to-closed) would be silent data loss; convert it into a
    // detected failure so recovery replays the lost elements.
    Poison(Status::Aborted("edge to stage " + StageName(edge.target_stage) +
                           " closed mid-stream (data loss)"));
  }
  if (ok && edge_observer_) edge_observer_(edge.target_stage, n);
}

void ThreadedRunner::PushExternalTo(int stage, int instance,
                                    BatchEnvelope batch) {
  if (cancelled_.load(std::memory_order_relaxed)) return;
  const size_t n = batch.elements.size();
  const bool ok = tasks_[stage][instance]->inbox->PushExternal(
      std::move(batch));
  if (!ok && !cancelled_.load(std::memory_order_relaxed)) {
    // No-op if already poisoned (expected failure of late pushes); a fresh
    // close under a healthy runner is detected data loss.
    Poison(Status::Aborted("external edge to stage " + StageName(stage) +
                           " closed mid-stream (data loss)"));
  }
  if (ok && edge_observer_) edge_observer_(stage, n);
}

void ThreadedRunner::DeliverTo(int stage, int instance, int port, int sender,
                               StreamElement element) {
  PushExternalTo(stage, instance,
                 BatchEnvelope::Single(port, sender, std::move(element)));
}

void ThreadedRunner::FlushBuffer(Task* task, int stage, size_t edge_idx,
                                 int target) {
  ElementBatch& buf = task->out[edge_idx][target];
  if (buf.empty()) return;
  const internal::DownstreamEdge& edge = downstream_[stage][edge_idx];
  BatchEnvelope be;
  be.port = edge.port;
  be.sender = gid_base_[stage] + task->runtime->instance();
  be.elements = std::move(buf);
  PushEdge(task, stage, edge_idx, target, std::move(be));
}

void ThreadedRunner::FlushTaskOutputs(Task* task, int stage) {
  for (size_t e = 0; e < task->out.size(); ++e) {
    for (size_t i = 0; i < task->out[e].size(); ++i) {
      FlushBuffer(task, stage, e, static_cast<int>(i));
    }
  }
}

void ThreadedRunner::RouteRecord(int stage, int instance,
                                 StreamElement&& el) {
  if (spec_.stages()[stage].is_sink && sink_) {
    sink_(stage, instance, el);
  }
  Task* task = tasks_[stage][instance].get();
  const size_t num_edges = downstream_[stage].size();
  for (size_t e = 0; e < num_edges; ++e) {
    const internal::DownstreamEdge& edge = downstream_[stage][e];
    const int par = spec_.stages()[edge.target_stage].parallelism;
    if (edge.partitioning == Partitioning::kHash) {
      const int i = internal::InstanceForKey(el.record.row.key(), par);
      ElementBatch& buf = task->out[e][i];
      if (e + 1 == num_edges) {
        buf.Add(std::move(el));
      } else {
        buf.Add(el);
      }
      if (buf.size() >= batch_size_) FlushBuffer(task, stage, e, i);
    } else {
      for (int i = 0; i < par; ++i) {
        ElementBatch& buf = task->out[e][i];
        buf.Add(el);
        if (buf.size() >= batch_size_) FlushBuffer(task, stage, e, i);
      }
    }
  }
}

void ThreadedRunner::RouteControl(int stage, int instance,
                                  const StreamElement& el) {
  if (spec_.stages()[stage].is_sink && sink_) {
    sink_(stage, instance, el);
  }
  Task* task = tasks_[stage][instance].get();
  // Control elements are batch boundaries: flush buffered records first so
  // per-edge FIFO order is preserved, then broadcast as singleton batches.
  // They MUST travel the same per-edge source (ring or channel) as this
  // sender's records — marker alignment only needs per-(port, sender) FIFO,
  // and that is exactly what one source per edge provides.
  FlushTaskOutputs(task, stage);
  const int sender = gid_base_[stage] + instance;
  for (size_t e = 0; e < downstream_[stage].size(); ++e) {
    const internal::DownstreamEdge& edge = downstream_[stage][e];
    const int par = spec_.stages()[edge.target_stage].parallelism;
    for (int i = 0; i < par; ++i) {
      PushEdge(task, stage, e, i,
               BatchEnvelope::Single(edge.port, sender, el));
    }
  }
}

bool ThreadedRunner::Push(int input_index, StreamElement element) {
  if (cancelled_.load(std::memory_order_relaxed) ||
      poisoned_.load(std::memory_order_acquire)) {
    return false;
  }
  const ExternalInputSpec& ext = spec_.external_inputs()[input_index];
  const int sender = ExternalSenderGid(input_index);
  const int par = spec_.stages()[ext.target_stage].parallelism;
  std::lock_guard<std::mutex> lock(*input_mutexes_[input_index]);
  if (element.kind == ElementKind::kRecord &&
      ext.partitioning == Partitioning::kHash) {
    const int i = internal::InstanceForKey(element.record.row.key(), par);
    DeliverTo(ext.target_stage, i, ext.port, sender, std::move(element));
  } else {
    for (int i = 0; i < par; ++i) {
      DeliverTo(ext.target_stage, i, ext.port, sender, element);
    }
  }
  return true;
}

bool ThreadedRunner::PushBatch(int input_index, ElementBatch batch) {
  if (cancelled_.load(std::memory_order_relaxed) ||
      poisoned_.load(std::memory_order_acquire)) {
    return false;
  }
  const ExternalInputSpec& ext = spec_.external_inputs()[input_index];
  const int sender = ExternalSenderGid(input_index);
  const int par = spec_.stages()[ext.target_stage].parallelism;
  std::vector<ElementBatch> sub(par);
  std::lock_guard<std::mutex> lock(*input_mutexes_[input_index]);
  auto flush = [&] {
    for (int i = 0; i < par; ++i) {
      if (sub[i].empty()) continue;
      BatchEnvelope be;
      be.port = ext.port;
      be.sender = sender;
      be.elements = std::move(sub[i]);
      PushExternalTo(ext.target_stage, i, std::move(be));
    }
  };
  for (StreamElement& el : batch) {
    if (el.kind == ElementKind::kRecord) {
      if (ext.partitioning == Partitioning::kHash) {
        const int i = internal::InstanceForKey(el.record.row.key(), par);
        sub[i].Add(std::move(el));
      } else {
        for (int i = 0; i < par; ++i) sub[i].Add(el);
      }
    } else {
      // Control element: flush buffered records, then broadcast it.
      flush();
      for (int i = 0; i < par; ++i) {
        PushExternalTo(ext.target_stage, i,
                       BatchEnvelope::Single(ext.port, sender, el));
      }
    }
  }
  flush();
  return true;
}

void ThreadedRunner::InjectMarker(const ControlMarker& marker) {
  std::lock_guard<std::mutex> marker_lock(marker_mutex_);
  for (size_t in = 0; in < spec_.external_inputs().size(); ++in) {
    const ExternalInputSpec& ext = spec_.external_inputs()[in];
    const int sender = ExternalSenderGid(static_cast<int>(in));
    const int par = spec_.stages()[ext.target_stage].parallelism;
    std::lock_guard<std::mutex> lock(*input_mutexes_[in]);
    for (int i = 0; i < par; ++i) {
      DeliverTo(ext.target_stage, i, ext.port, sender,
                StreamElement::MakeMarker(marker));
    }
  }
}

void ThreadedRunner::FinishAndWait() {
  if (finished_ || !started_) return;
  if (!cancelled_.load()) {
    for (size_t in = 0; in < spec_.external_inputs().size(); ++in) {
      const ExternalInputSpec& ext = spec_.external_inputs()[in];
      const int sender = ExternalSenderGid(static_cast<int>(in));
      const int par = spec_.stages()[ext.target_stage].parallelism;
      std::lock_guard<std::mutex> lock(*input_mutexes_[in]);
      for (int i = 0; i < par; ++i) {
        DeliverTo(ext.target_stage, i, ext.port, sender,
                  StreamElement::MakeWatermark(kMaxTimestamp));
        DeliverTo(ext.target_stage, i, ext.port, sender,
                  StreamElement::MakeDone());
      }
    }
  }
  for (auto& stage_tasks : tasks_) {
    for (auto& task : stage_tasks) {
      if (task->thread.joinable()) task->thread.join();
    }
  }
  finished_ = true;
}

void ThreadedRunner::Cancel() {
  if (!started_ || finished_) return;
  cancelled_.store(true);
  for (auto& stage_tasks : tasks_) {
    for (auto& task : stage_tasks) task->inbox->Close();
  }
  for (auto& stage_tasks : tasks_) {
    for (auto& task : stage_tasks) {
      if (task->thread.joinable()) task->thread.join();
    }
  }
  finished_ = true;
}

Status ThreadedRunner::Restore(const CheckpointStore::Checkpoint& checkpoint) {
  // Restore must happen before any element flows; tasks are idle (blocked
  // on empty channels), so touching operator state here is safe.
  for (size_t s = 0; s < tasks_.size(); ++s) {
    for (size_t i = 0; i < tasks_[s].size(); ++i) {
      auto it = checkpoint.operator_state.find(CheckpointStore::StateKey(
          static_cast<int>(s), static_cast<int>(i)));
      if (it == checkpoint.operator_state.end()) {
        return Status::NotFound("missing checkpoint state for stage " +
                                std::to_string(s) + "/" + std::to_string(i));
      }
      StateReader reader(it->second);
      ASTREAM_RETURN_IF_ERROR(
          tasks_[s][i]->runtime->op()->RestoreState(&reader));
      if (!reader.Ok()) {
        return Status::Internal("corrupt checkpoint state for stage " +
                                std::to_string(s));
      }
    }
  }
  return Status::OK();
}

int64_t ThreadedRunner::StageRecordsIn(int stage) const {
  int64_t n = 0;
  for (const auto& t : tasks_[stage]) n += t->runtime->records_in();
  return n;
}

int64_t ThreadedRunner::StageRecordsOut(int stage) const {
  int64_t n = 0;
  for (const auto& t : tasks_[stage]) n += t->runtime->records_out();
  return n;
}

int ThreadedRunner::NumStages() const { return NumStagesOf(spec_); }

const std::string& ThreadedRunner::StageName(int stage) const {
  return spec_.stages()[stage].name;
}

size_t ThreadedRunner::TotalQueuedElements() const {
  size_t n = 0;
  for (const auto& stage_tasks : tasks_) {
    for (const auto& t : stage_tasks) n += t->inbox->QueuedElements();
  }
  return n;
}

size_t ThreadedRunner::StageQueuedElements(int stage) const {
  size_t n = 0;
  for (const auto& t : tasks_[stage]) n += t->inbox->QueuedElements();
  return n;
}

double ThreadedRunner::StageRingOccupancy(int stage) const {
  double max_occ = 0.0;
  for (const auto& t : tasks_[stage]) {
    const double occ = t->inbox->MaxRingOccupancy();
    if (occ > max_occ) max_occ = occ;
  }
  return max_occ;
}

}  // namespace astream::spe
