#include "spe/aggregate.h"

namespace astream::spe {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "SUM";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

}  // namespace astream::spe
