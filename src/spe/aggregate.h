#ifndef ASTREAM_SPE_AGGREGATE_H_
#define ASTREAM_SPE_AGGREGATE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "spe/row.h"

namespace astream::spe {

/// Aggregation functions. The paper's template (Fig. 8) uses SUM; the
/// library supports the usual set.
enum class AggKind : uint8_t { kSum, kCount, kMin, kMax, kAvg };

const char* AggKindName(AggKind kind);

/// A mergeable partial aggregate. One accumulator supports all AggKinds so
/// the shared aggregation can store per-query partials uniformly and
/// per-slice partials stay combinable across slices (Sec. 3.1.5).
struct Accumulator {
  int64_t sum = 0;
  int64_t count = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void Add(Value v) {
    sum += v;
    ++count;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  void Merge(const Accumulator& other) {
    sum += other.sum;
    count += other.count;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  bool Empty() const { return count == 0; }

  /// Final value under `kind`. AVG is integer division (documented; the
  /// generated workloads only use integer fields).
  Value Finalize(AggKind kind) const {
    switch (kind) {
      case AggKind::kSum:
        return sum;
      case AggKind::kCount:
        return count;
      case AggKind::kMin:
        return min;
      case AggKind::kMax:
        return max;
      case AggKind::kAvg:
        return count == 0 ? 0 : sum / count;
    }
    return 0;
  }
};

/// Which input column an aggregation reads.
struct AggSpec {
  AggKind kind = AggKind::kSum;
  /// Column index into the row (payload fields start at column 1).
  int column = 1;

  std::string ToString() const {
    return std::string(AggKindName(kind)) + "(col" + std::to_string(column) +
           ")";
  }
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_AGGREGATE_H_
