#ifndef ASTREAM_SPE_OPERATOR_H_
#define ASTREAM_SPE_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "spe/element.h"
#include "spe/state.h"

namespace astream::spe {

/// Downstream emission interface handed to operators. Implementations route
/// records by key, broadcast watermarks/markers, or collect into sinks.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void Emit(StreamElement element) = 0;

  void EmitRecord(TimestampMs event_time, Row row, DynamicBitset tags = {}) {
    Emit(StreamElement::MakeRecord(event_time, std::move(row),
                                   std::move(tags)));
  }
};

/// A contiguous run of data records that share one (port, sender)
/// provenance, handed to Operator::ProcessBatch. The runtime owns the
/// vector and reuses it across batches; operators may move individual
/// records out but must not hold on to the vector itself.
using RecordBatch = std::vector<Record>;

/// Per-instance runtime information available to an operator.
struct OperatorContext {
  int stage_index = 0;
  int instance_index = 0;
  int parallelism = 1;
  std::string stage_name;
  Clock* clock = nullptr;
};

/// Base class of all dataflow operators.
///
/// Threading contract: all methods of one instance are invoked from a
/// single thread (the instance's task). Runtime responsibilities handled
/// *outside* the operator:
///   - watermarks arrive already minimized across ports and senders and are
///     monotonically increasing;
///   - control markers arrive exactly once per epoch, aligned: every record
///     processed before marker M has event time < M.time, every record
///     after has event time >= M.time;
///   - markers and watermarks are forwarded downstream by the runtime, not
///     by the operator (the operator may emit records in response).
class Operator {
 public:
  virtual ~Operator() = default;

  /// Number of input ports (1 for unary, 2 for binary operators).
  virtual int num_ports() const { return 1; }

  /// Called once before any element is processed.
  virtual Status Open(const OperatorContext& ctx) {
    ctx_ = ctx;
    return Status::OK();
  }

  /// Processes one data record from `port`.
  virtual void ProcessRecord(int port, Record record, Collector* out) = 0;

  /// Processes a run of records from `port`, in order. The runtime calls
  /// this (not ProcessRecord) for every record run, so vectorized operators
  /// override it to amortize per-record work; the default delegates to the
  /// per-element path, so existing operators keep working unmodified.
  /// Control elements are never part of a run — watermarks and markers are
  /// batch boundaries, and every OnWatermark/OnMarker guarantee from the
  /// class comment holds across batches exactly as across single records.
  virtual void ProcessBatch(int port, RecordBatch& records, Collector* out) {
    for (Record& record : records) {
      ProcessRecord(port, std::move(record), out);
    }
  }

  /// Called when the combined watermark (min over ports and senders)
  /// advances to `watermark`.
  virtual void OnWatermark(TimestampMs watermark, Collector* out) {
    (void)watermark;
    (void)out;
  }

  /// Called exactly once per aligned control marker.
  virtual void OnMarker(const ControlMarker& marker, Collector* out) {
    (void)marker;
    (void)out;
  }

  /// Serializes the operator's full state (checkpointing). Called at an
  /// aligned checkpoint barrier.
  virtual Status SnapshotState(StateWriter* writer) {
    (void)writer;
    return Status::OK();
  }

  /// Restores state written by SnapshotState.
  virtual Status RestoreState(StateReader* reader) {
    (void)reader;
    return Status::OK();
  }

  /// Called after the final watermark; flush any remaining output.
  virtual void Close(Collector* out) { (void)out; }

  const OperatorContext& ctx() const { return ctx_; }

 private:
  OperatorContext ctx_;
};

/// Creates the operator for instance `instance` of a stage.
using OperatorFactory =
    std::function<std::unique_ptr<Operator>(int instance)>;

}  // namespace astream::spe

#endif  // ASTREAM_SPE_OPERATOR_H_
