#ifndef ASTREAM_SPE_CHANNEL_H_
#define ASTREAM_SPE_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "fault/injector.h"
#include "spe/element.h"

namespace astream::spe {

/// An envelope routed between operator instances: the element plus its
/// provenance (input port of the receiver and global id of the sending
/// instance). Sender identity is needed for per-sender watermark tracking
/// and marker alignment on fan-in edges.
struct Envelope {
  int port = 0;
  int sender = 0;
  StreamElement element;
};

/// A batched envelope: a run of elements that all share one provenance.
/// This is what channels actually carry — a single-element batch is the
/// element-at-a-time degenerate case.
struct BatchEnvelope {
  int port = 0;
  int sender = 0;
  ElementBatch elements;

  static BatchEnvelope Single(int port, int sender, StreamElement element) {
    BatchEnvelope b;
    b.port = port;
    b.sender = sender;
    b.elements.Add(std::move(element));
    return b;
  }
};

/// Outcome of a non-blocking push. Distinguishes a full queue (transient —
/// backpressure, retry later) from a closed channel (permanent — shutdown).
enum class PushStatus : uint8_t { kOk, kFull, kClosed };

inline const char* PushStatusName(PushStatus s) {
  switch (s) {
    case PushStatus::kOk: return "ok";
    case PushStatus::kFull: return "full";
    case PushStatus::kClosed: return "closed";
  }
  return "?";
}

/// Bounded blocking MPSC queue of element batches. Producers pay one lock
/// acquisition per batch; capacity is counted in *elements* (not batches),
/// so queue-depth semantics match the element-at-a-time channel. Producers
/// block when full — this is the backpressure mechanism (a slow operator
/// slows its upstreams, and ultimately the driver, exactly like Fig. 5's
/// queue-waiting latency).
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full (unless closed). Returns false if the channel was
  /// closed before the push could complete. A batch larger than the whole
  /// capacity is admitted once the queue is empty, so it can never block
  /// forever.
  bool Push(BatchEnvelope batch) {
    if (fault::FaultInjector* inj = fault::ActiveInjector()) {
      // kChannelPush: kDelay stalls this producer; kClose is
      // drop-to-closed — the push below then fails through the normal
      // closed path, which the runner detects as data loss.
      const fault::FaultDecision d =
          inj->Decide(fault::FaultPoint::kChannelPush);
      if (d.action == fault::FaultAction::kDelay) {
        std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
      } else if (d.action == fault::FaultAction::kClose) {
        Close();
      }
    }
    const size_t n = batch.elements.size();
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return elements_ + n <= capacity_ || queue_.empty() || closed_;
    });
    if (closed_) return false;
    elements_ += n;
    queue_.push_back(std::move(batch));
    not_empty_.notify_one();
    return true;
  }

  /// Single-element convenience wrapper.
  bool Push(Envelope envelope) {
    return Push(BatchEnvelope::Single(envelope.port, envelope.sender,
                                      std::move(envelope.element)));
  }

  /// Non-blocking push. kFull is transient (the consumer is behind);
  /// kClosed is permanent. On kOk the batch was enqueued.
  ///
  /// Closed wins over full: the closed check dominates the fullness check
  /// inside one critical section, so any TryPush that begins after Close()
  /// returns observes kClosed — never a transient kFull that would make a
  /// producer retry against a dead channel (regression-tested under TSan).
  PushStatus TryPush(BatchEnvelope batch) {
    const size_t n = batch.elements.size();
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return PushStatus::kClosed;
    if (elements_ + n > capacity_ && !queue_.empty()) {
      // Same critical section as the closed check above: closed_ cannot
      // have flipped in between, so kFull here is genuinely transient.
      return PushStatus::kFull;
    }
    elements_ += n;
    queue_.push_back(std::move(batch));
    not_empty_.notify_one();
    return PushStatus::kOk;
  }

  /// Single-element convenience wrapper.
  PushStatus TryPush(Envelope envelope) {
    return TryPush(BatchEnvelope::Single(envelope.port, envelope.sender,
                                         std::move(envelope.element)));
  }

  /// Blocks until a batch is available or the channel is closed and
  /// drained; std::nullopt signals end of input.
  std::optional<BatchEnvelope> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    BatchEnvelope b = std::move(queue_.front());
    queue_.pop_front();
    elements_ -= b.elements.size();
    // One popped batch can free room for several waiting producers.
    not_full_.notify_all();
    return b;
  }

  /// Non-blocking pop.
  std::optional<BatchEnvelope> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    BatchEnvelope b = std::move(queue_.front());
    queue_.pop_front();
    elements_ -= b.elements.size();
    not_full_.notify_all();
    return b;
  }

  /// After Close, pushes fail and pops drain the remaining queue.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Closed and fully drained (consumer side's end-of-input check).
  bool Drained() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && queue_.empty();
  }

  /// Queued elements (summed over batches) — the queue-depth gauge.
  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return elements_;
  }

  /// Queued batches (Size() / NumBatches() = mean in-queue batch size).
  size_t NumBatches() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<BatchEnvelope> queue_;
  size_t elements_ = 0;
  bool closed_ = false;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_CHANNEL_H_
