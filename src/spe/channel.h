#ifndef ASTREAM_SPE_CHANNEL_H_
#define ASTREAM_SPE_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "spe/element.h"

namespace astream::spe {

/// An envelope routed between operator instances: the element plus its
/// provenance (input port of the receiver and global id of the sending
/// instance). Sender identity is needed for per-sender watermark tracking
/// and marker alignment on fan-in edges.
struct Envelope {
  int port = 0;
  int sender = 0;
  StreamElement element;
};

/// Bounded blocking MPSC queue. Producers block when full — this is the
/// backpressure mechanism (a slow operator slows its upstreams, and
/// ultimately the driver, exactly like Fig. 5's queue-waiting latency).
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full (unless closed). Returns false if the channel was
  /// closed before the push could complete.
  bool Push(Envelope envelope) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return false;
    queue_.push_back(std::move(envelope));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(Envelope envelope) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(envelope));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the channel is closed and
  /// drained; std::nullopt signals end of input.
  std::optional<Envelope> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Envelope e = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return e;
  }

  /// Non-blocking pop.
  std::optional<Envelope> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    Envelope e = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return e;
  }

  /// After Close, pushes fail and pops drain the remaining queue.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_CHANNEL_H_
