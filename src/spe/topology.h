#ifndef ASTREAM_SPE_TOPOLOGY_H_
#define ASTREAM_SPE_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "spe/operator.h"

namespace astream::spe {

/// How records are routed across an edge. Watermarks, markers, and done
/// signals are always broadcast regardless of the record partitioning.
enum class Partitioning {
  /// record goes to instance hash(key) % parallelism.
  kHash,
  /// every instance receives every record.
  kBroadcast,
};

/// An edge from an upstream stage into one input port of a stage.
struct EdgeSpec {
  int upstream_stage = -1;
  int port = 0;
  Partitioning partitioning = Partitioning::kHash;
};

/// An external feed point (the driver pushes elements here).
struct ExternalInputSpec {
  std::string name;
  int target_stage = -1;
  int port = 0;
  Partitioning partitioning = Partitioning::kHash;
};

/// One logical operator with its parallelism and input edges.
struct StageSpec {
  std::string name;
  int parallelism = 1;
  int num_ports = 1;
  OperatorFactory factory;
  std::vector<EdgeSpec> inputs;
  /// If true, everything the stage emits (and its forwarded watermarks /
  /// markers / done signals) is also delivered to the runner's sink
  /// callback.
  bool is_sink = false;
};

/// A dataflow graph description. Build with AddStage/AddExternalInput,
/// validate, then hand to a runner (SyncRunner or ThreadedRunner).
class TopologySpec {
 public:
  /// Returns the new stage's index.
  int AddStage(StageSpec stage) {
    stages_.push_back(std::move(stage));
    return static_cast<int>(stages_.size()) - 1;
  }

  /// Returns the new external input's index.
  int AddExternalInput(ExternalInputSpec input) {
    inputs_.push_back(std::move(input));
    return static_cast<int>(inputs_.size()) - 1;
  }

  const std::vector<StageSpec>& stages() const { return stages_; }
  const std::vector<ExternalInputSpec>& external_inputs() const {
    return inputs_;
  }

  /// Structural sanity checks: edges reference earlier stages (the graph is
  /// a DAG in topological order), ports are in range, every stage has a
  /// factory, every input port of every stage is fed.
  Status Validate() const;

 private:
  std::vector<StageSpec> stages_;
  std::vector<ExternalInputSpec> inputs_;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_TOPOLOGY_H_
