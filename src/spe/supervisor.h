#ifndef ASTREAM_SPE_SUPERVISOR_H_
#define ASTREAM_SPE_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "spe/runner.h"

namespace astream::spe {

/// Heartbeat-based stall detection over ThreadedRunner task-health
/// samples: a task whose loop-iteration counter is frozen for
/// `stall_timeout_ms` while its input backlog is nonzero is declared dead
/// (livelocked, stuck in a syscall, or stalled by an injected slowdown).
/// Feed samples at the watchdog cadence; not thread-safe (one caller).
class StallDetector {
 public:
  explicit StallDetector(int64_t stall_timeout_ms)
      : stall_timeout_ms_(stall_timeout_ms) {}

  /// Returns non-OK when some task is stalled, given samples taken at
  /// monotonic time `now_ms`.
  Status Observe(const std::vector<ThreadedRunner::TaskHealthSample>& samples,
                 int64_t now_ms);

  /// Forget history (after a restart: fresh tasks, fresh counters).
  void Reset() { last_.clear(); }

 private:
  struct Last {
    uint64_t iterations = 0;
    int64_t since_ms = 0;
  };
  const int64_t stall_timeout_ms_;
  std::map<std::pair<int, int>, Last> last_;
};

/// Failure detection cadence + restart policy for a supervised job.
///
/// The Supervisor owns the watchdog thread (periodic `tick` hook — the
/// owner probes runner health and heartbeats there) and the retry loop
/// (`RecoverNow`: capped exponential backoff around the owner-supplied
/// `recover` hook, terminal failure after `max_restart_attempts`
/// consecutive failed attempts). The actual recovery mechanics — quiesce,
/// restore from CheckpointStore::LatestComplete(), source-log replay —
/// live in the owner (they need the checkpoint store and the log), which
/// keeps the Supervisor reusable for any runner-shaped job.
///
/// Locking contract: RecoverNow serializes recoveries on an internal
/// mutex. Both call paths — a control-thread operation observing a failed
/// push, and the watchdog tick — must already hold the owner's own lock
/// when calling RecoverNow (the tick hook should try-lock and skip when
/// the control thread is active; the control thread detects failures
/// itself because a poisoned runner fails its pushes), so the lock order
/// is always owner-lock -> supervisor-lock and recovery never races
/// control operations.
class Supervisor {
 public:
  struct Options {
    /// Consecutive failed recovery attempts before the job is declared
    /// terminally failed.
    int max_restart_attempts = 8;
    int64_t backoff_initial_ms = 2;
    int64_t backoff_max_ms = 250;
    double backoff_factor = 2.0;
    /// Watchdog probe period; 0 disables the watchdog thread.
    int64_t poll_interval_ms = 2;
    /// Heartbeat stall timeout (see StallDetector); 0 disables.
    int64_t stall_timeout_ms = 0;
  };

  struct Hooks {
    /// Periodic watchdog probe (runs on the watchdog thread).
    std::function<void()> tick;
    /// One recovery attempt: quiesce + restore + replay. Must be
    /// re-invocable — a failed attempt has to leave a recoverable state.
    std::function<Status(int attempt)> recover;
    /// Observability taps (all optional).
    std::function<void(const Status& failure)> on_failure;
    std::function<void(int attempts, int64_t latency_ms)> on_recovered;
    std::function<void(const Status& terminal)> on_terminal;
  };

  Supervisor(Options options, Hooks hooks);
  ~Supervisor();

  void StartWatchdog();
  void StopWatchdog();

  /// Runs the recovery loop: attempts `recover` under capped exponential
  /// backoff until it succeeds or attempts are exhausted (then the job is
  /// terminal and every later call returns the terminal status).
  Status RecoverNow(const Status& failure);

  /// Non-OK once restart attempts were exhausted.
  Status terminal() const;
  int64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  int64_t restart_attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  void WatchdogLoop();

  const Options options_;
  const Hooks hooks_;
  mutable std::mutex mutex_;  // serializes recoveries; guards terminal_
  Status terminal_;
  std::atomic<int64_t> recoveries_{0};
  std::atomic<int64_t> attempts_{0};
  std::atomic<bool> stop_{false};
  std::thread watchdog_;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_SUPERVISOR_H_
