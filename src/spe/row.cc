#include "spe/row.h"

#include <mutex>

namespace astream::spe {

void Row::Rep::BuildFlattenCache() const {
  std::call_once(flatten_once, [this] {
    auto flat_view = std::make_unique<std::vector<Value>>();
    flat_view->reserve(ncols);
    AppendRep(this, flat_view.get());
    flatten_cache = std::move(flat_view);
    flatten_view.store(flatten_cache.get(), std::memory_order_release);
  });
}

void Row::AppendRep(const Rep* r, std::vector<Value>* out) {
  if (r == nullptr) return;
  if (r->left == nullptr) {
    out->insert(out->end(), r->flat.begin(), r->flat.end());
    return;
  }
  AppendRep(r->left.get(), out);
  AppendRep(r->right.get(), out);
}

const std::vector<Value>& Row::EmptyColumns() {
  static const std::vector<Value> kEmpty;
  return kEmpty;
}

std::string Row::ToString() const {
  std::string s = "(";
  const size_t n = NumColumns();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(At(i));
  }
  s += ")";
  return s;
}

}  // namespace astream::spe
