#include "spe/row.h"

namespace astream::spe {

std::string Row::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(values_[i]);
  }
  s += ")";
  return s;
}

}  // namespace astream::spe
