#ifndef ASTREAM_SPE_WINDOW_H_
#define ASTREAM_SPE_WINDOW_H_

#include <string>
#include <vector>

#include "common/clock.h"

namespace astream::spe {

/// Window families supported by the substrate and by AStream's shared
/// operators (Sec. 3.1.3: "time- and session-based windows with different
/// characteristics (e.g., length, slide, gap)").
enum class WindowType { kTumbling, kSliding, kSession };

/// A half-open event-time interval [start, end).
struct TimeWindow {
  TimestampMs start = 0;
  TimestampMs end = 0;

  bool Contains(TimestampMs t) const { return t >= start && t < end; }
  bool operator==(const TimeWindow& o) const {
    return start == o.start && end == o.end;
  }
  bool operator<(const TimeWindow& o) const {
    return start != o.start ? start < o.start : end < o.end;
  }
};

/// Declarative window configuration of one query. Time windows are anchored
/// at an `origin` timestamp (an ad-hoc query's windows begin at its creation
/// time, Fig. 4d): instance k covers [origin + k*slide, origin + k*slide +
/// length).
struct WindowSpec {
  WindowType type = WindowType::kTumbling;
  TimestampMs length = 0;  // time windows
  TimestampMs slide = 0;   // sliding windows (== length for tumbling)
  TimestampMs gap = 0;     // session windows

  static WindowSpec Tumbling(TimestampMs length) {
    return {WindowType::kTumbling, length, length, 0};
  }
  static WindowSpec Sliding(TimestampMs length, TimestampMs slide) {
    return {WindowType::kSliding, length, slide, 0};
  }
  static WindowSpec Session(TimestampMs gap) {
    return {WindowType::kSession, 0, 0, gap};
  }

  bool IsTimeWindow() const { return type != WindowType::kSession; }

  /// Windows (anchored at `origin`) that contain event time `t`.
  /// Only valid for time windows; t must be >= origin.
  void AssignWindows(TimestampMs origin, TimestampMs t,
                     std::vector<TimeWindow>* out) const;

  /// All window start/end boundaries (anchored at `origin`) in the range
  /// (after, upto]. Used by AStream's runtime slicing (Fig. 4e). Only for
  /// time windows.
  void EdgesInRange(TimestampMs origin, TimestampMs after, TimestampMs upto,
                    std::vector<TimestampMs>* out) const;

  /// End of the earliest window (anchored at `origin`) ending after `t`.
  /// Only for time windows.
  TimestampMs FirstEndAfter(TimestampMs origin, TimestampMs t) const;

  std::string ToString() const;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_WINDOW_H_
