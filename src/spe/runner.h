#ifndef ASTREAM_SPE_RUNNER_H_
#define ASTREAM_SPE_RUNNER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "spe/channel.h"
#include "spe/ring.h"
#include "spe/state.h"
#include "spe/topology.h"

namespace astream::spe {

/// Receives everything emitted by sink stages: records, plus forwarded
/// watermarks / markers / done signals (so exactly-once sinks can see
/// checkpoint epochs inline with the data). Invoked from task threads in
/// threaded mode — implementations must be thread-safe.
using SinkFn =
    std::function<void(int stage, int instance, const StreamElement&)>;

/// Receives operator snapshots taken at aligned checkpoint barriers.
using SnapshotFn = std::function<void(int64_t checkpoint_id, int stage,
                                      int instance,
                                      std::vector<uint8_t> state)>;

namespace internal {

/// Per-instance execution wrapper. Owns the operator and implements the
/// runtime contract documented on Operator: per-sender watermark
/// minimization, aligned marker delivery with per-sender blocking, done
/// propagation, and checkpoint snapshots. All methods must be invoked from
/// one thread at a time.
class InstanceRuntime {
 public:
  InstanceRuntime(int stage, int instance, std::unique_ptr<Operator> op);

  /// Declares an upstream sender feeding `port`. Must be called for every
  /// (port, sender) pair before the first Deliver.
  void AddExpectedSender(int port, int sender_gid);

  /// Routing callbacks, set by the runner before the first Deliver.
  /// Sends a record produced by the operator downstream.
  std::function<void(StreamElement&&)> emit_record;
  /// Broadcasts a control element (watermark / marker / done) downstream.
  std::function<void(const StreamElement&)> forward_control;
  /// Stores a checkpoint snapshot (may be null).
  SnapshotFn snapshot;

  Status Open(const OperatorContext& ctx);

  /// Processes one envelope (bookkeeping + operator callbacks).
  void Deliver(Envelope env);

  /// Processes one batch envelope. Record runs inside the batch are handed
  /// to Operator::ProcessBatch; control elements are handled per element
  /// with the usual alignment rules. If a marker blocks the sender
  /// mid-batch, the unprocessed tail is parked (in order) until the marker
  /// fires — callers need no special casing.
  void DeliverBatch(BatchEnvelope batch);

  /// True once all senders signalled done and the operator was closed.
  bool Finished() const { return finished_; }

  Operator* op() { return op_.get(); }
  int stage() const { return stage_; }
  int instance() const { return instance_; }

  int64_t records_in() const {
    return records_in_.load(std::memory_order_relaxed);
  }
  int64_t records_out() const {
    return records_out_.load(std::memory_order_relaxed);
  }

 private:
  struct SenderState {
    TimestampMs watermark = kMinTimestamp;
    bool done = false;
    bool blocked = false;
    std::deque<BatchEnvelope> pending;
  };

  class RecordCollector;

  SenderState& GetSender(int port, int sender);
  void HandleBatch(int port, int sender, ElementBatch&& elements);
  void HandleControl(SenderState& st, StreamElement&& element);
  void HandleMarker(SenderState& st, const ControlMarker& marker);
  void FireMarker(const ControlMarker& marker);
  void RecomputeWatermark();
  void CheckAllDone();
  void DrainPending();

  const int stage_;
  const int instance_;
  std::unique_ptr<Operator> op_;

  // Key: (port << 32) | low 32 bits of sender gid.
  std::map<int64_t, SenderState> senders_;
  size_t total_senders_ = 0;
  size_t done_senders_ = 0;

  // In-flight marker alignment. Senders deliver markers in identical order,
  // so at most one marker is aligning at a time.
  bool aligning_ = false;
  ControlMarker aligning_marker_;
  size_t aligned_count_ = 0;

  TimestampMs current_watermark_ = kMinTimestamp;
  bool finished_ = false;
  bool draining_ = false;

  std::unique_ptr<Collector> collector_;
  // Scratch run of records handed to ProcessBatch; reused across batches.
  RecordBatch scratch_records_;
  std::atomic<int64_t> records_in_{0};
  std::atomic<int64_t> records_out_{0};
};

/// Routing edge from a stage to one consumer stage/port.
struct DownstreamEdge {
  int target_stage = -1;
  int port = 0;
  Partitioning partitioning = Partitioning::kHash;
};

/// Deterministic key → instance routing, identical across stages so that
/// co-partitioned operators (e.g. the two inputs of a keyed join) agree.
int InstanceForKey(Value key, int parallelism);

}  // namespace internal

/// Common interface of the two execution modes.
class Runner {
 public:
  virtual ~Runner() = default;

  /// Validates the topology, instantiates and opens all operators.
  virtual Status Start() = 0;

  /// Pushes a data element (record or watermark) into external input
  /// `input_index`. Elements per input must be pushed in event-time order.
  /// Returns false after the job was cancelled.
  virtual bool Push(int input_index, StreamElement element) = 0;

  /// Pushes a run of elements into external input `input_index` as one
  /// batch: records are demultiplexed into per-instance sub-batches (one
  /// channel push each); any control element inside the batch flushes the
  /// sub-batches first and is then broadcast, so it stays a batch boundary.
  /// Returns false after the job was cancelled.
  virtual bool PushBatch(int input_index, ElementBatch batch) = 0;

  /// Pushes a control marker into every external input. All markers must
  /// be injected in one global order (they are serialized internally).
  virtual void InjectMarker(const ControlMarker& marker) = 0;

  /// Signals end of input on all external inputs (a +inf watermark
  /// followed by done), then waits for all operators to finish.
  virtual void FinishAndWait() = 0;

  /// Hard stop: drops in-flight elements and joins all tasks.
  virtual void Cancel() = 0;

  /// Restores all operator state from a completed checkpoint. Must be
  /// called after Start() and before any Push.
  virtual Status Restore(const CheckpointStore::Checkpoint& checkpoint) = 0;

  /// First failure captured from a task (OK while healthy). A failed
  /// runner is poisoned: all inboxes are closed, pushes return false, and
  /// FinishAndWait/Cancel still join cleanly. Synchronous runners never
  /// fail this way (exceptions propagate to the caller instead).
  virtual Status Failure() const { return Status::OK(); }
  virtual bool Failed() const { return false; }

  /// Total records processed / emitted by a stage (sum over instances).
  virtual int64_t StageRecordsIn(int stage) const = 0;
  virtual int64_t StageRecordsOut(int stage) const = 0;

  /// Topology shape, for observability exporters sampling per-stage series.
  virtual int NumStages() const = 0;
  virtual const std::string& StageName(int stage) const = 0;
};

/// Single-threaded, deterministic, depth-first execution. Parallel stage
/// instances are still honored (hash routing picks an instance; all run on
/// the caller's thread). Used by tests, reference runs, and examples.
class SyncRunner : public Runner {
 public:
  SyncRunner(TopologySpec spec, SinkFn sink, SnapshotFn snapshot = nullptr);
  ~SyncRunner() override;

  Status Start() override;
  bool Push(int input_index, StreamElement element) override;
  bool PushBatch(int input_index, ElementBatch batch) override;
  void InjectMarker(const ControlMarker& marker) override;
  void FinishAndWait() override;
  void Cancel() override;
  Status Restore(const CheckpointStore::Checkpoint& checkpoint) override;
  int64_t StageRecordsIn(int stage) const override;
  int64_t StageRecordsOut(int stage) const override;
  int NumStages() const override;
  const std::string& StageName(int stage) const override;

 private:
  void RouteFromInstance(int stage, int instance, const StreamElement& el,
                         bool control);
  void RouteExternal(int input_index, StreamElement element);

  TopologySpec spec_;
  SinkFn sink_;
  SnapshotFn snapshot_;
  // instances_[stage][instance]
  std::vector<std::vector<std::unique_ptr<internal::InstanceRuntime>>>
      instances_;
  std::vector<std::vector<internal::DownstreamEdge>> downstream_;
  std::vector<int> gid_base_;
  bool started_ = false;
  bool cancelled_ = false;
  bool finished_ = false;
};

/// Observation hook invoked after every successful channel push with the
/// target stage and the number of elements in the pushed batch. Runs on
/// producer threads — implementations must be thread-safe (the obs layer
/// wires this to a per-edge batch-size histogram).
using EdgePushObserver = std::function<void(int stage, size_t batch_size)>;

/// Multi-threaded execution: one task thread and one bounded input side
/// (TaskInbox) per operator instance; blocking pushes provide backpressure
/// end to end.
///
/// Channel selection is per edge: every internal (upstream-instance ->
/// downstream-instance) edge has exactly one producing thread, so it gets
/// a lock-free SPSC ring; external-ingress edges (driver pushes, injected
/// markers) go through the instance's mutex MPMC channel. Control elements
/// travel the same per-sender source as that sender's records, so per-
/// (port, sender) FIFO — all that marker alignment needs — is preserved.
/// `use_spsc_rings = false` routes every edge through the mutex channel
/// (the pre-ring data plane, kept for comparison and as the MPMC fallback).
///
/// Emitted records are accumulated into per-(edge, target-instance) output
/// buffers and shipped as ElementBatches: a buffer is flushed when it
/// reaches `batch_size`, when the producing task finishes one input batch
/// (so added latency is bounded by one upstream batch — the task-level
/// linger), or before any control element is forwarded (markers and
/// watermarks are batch boundaries; per-edge FIFO order is preserved).
class ThreadedRunner : public Runner {
 public:
  /// `channel_capacity` bounds each instance's input queue (in elements for
  /// the mutex channel; rings hold `channel_capacity / batch_size` batches,
  /// clamped to [8, 256] slots). `batch_size = 1` reproduces
  /// element-at-a-time behavior.
  ThreadedRunner(TopologySpec spec, SinkFn sink,
                 SnapshotFn snapshot = nullptr,
                 size_t channel_capacity = 1024, size_t batch_size = 1,
                 bool use_spsc_rings = true);
  ~ThreadedRunner() override;

  /// Installs the per-edge push observer. Must be called before Start().
  void SetEdgePushObserver(EdgePushObserver observer) {
    edge_observer_ = std::move(observer);
  }

  Status Start() override;
  bool Push(int input_index, StreamElement element) override;
  bool PushBatch(int input_index, ElementBatch batch) override;
  void InjectMarker(const ControlMarker& marker) override;
  void FinishAndWait() override;
  void Cancel() override;
  Status Restore(const CheckpointStore::Checkpoint& checkpoint) override;
  int64_t StageRecordsIn(int stage) const override;
  int64_t StageRecordsOut(int stage) const override;
  int NumStages() const override;
  const std::string& StageName(int stage) const override;

  /// Sum of queued elements across all instance inboxes (backpressure /
  /// sustainability probe).
  size_t TotalQueuedElements() const;
  /// Queued elements in one stage's inboxes (queue-depth gauges).
  size_t StageQueuedElements(int stage) const;
  /// Highest SPSC-ring fill fraction across one stage's instances, in
  /// [0, 1] (the `edge.<stage>.ring_occupancy` gauge); 0 without rings.
  double StageRingOccupancy(int stage) const;
  bool use_spsc_rings() const { return use_spsc_rings_; }

  /// Failure capture: a task body that throws (or observes an unexpected
  /// closed edge) poisons the runner instead of dying silently — the first
  /// Status is kept, every inbox is closed so all tasks quiesce and all
  /// blocked producers unblock, and pushes return false from then on.
  Status Failure() const override;
  bool Failed() const override {
    return poisoned_.load(std::memory_order_acquire);
  }
  /// External failure declaration (watchdog stall detection): poisons the
  /// runner exactly as a task exception would.
  void DeclareFailed(const Status& status) { Poison(status); }

  /// Per-task liveness sample for heartbeat watchdogs: the loop-iteration
  /// counter plus the queued input backlog. A task whose counter is frozen
  /// while its backlog is nonzero is stalled.
  struct TaskHealthSample {
    int stage = 0;
    int instance = 0;
    uint64_t iterations = 0;
    size_t queued = 0;
  };
  std::vector<TaskHealthSample> SampleTaskHealth() const;

 private:
  struct Task {
    std::unique_ptr<internal::InstanceRuntime> runtime;
    std::unique_ptr<TaskInbox> inbox;
    std::thread thread;
    // Bumped once per task-loop iteration (heartbeat for the watchdog).
    std::atomic<uint64_t> heartbeat{0};
    // Output accumulators, indexed [downstream edge][target instance].
    // Touched only by this task's thread.
    std::vector<std::vector<ElementBatch>> out;
    // Producer handles into downstream inboxes, same indexing as `out`.
    // Empty (ring mode off) => push via the target's external channel.
    std::vector<std::vector<SpscRing*>> out_rings;
  };

  void TaskLoop(Task* task);
  /// Records the first failure, then closes every inbox (quiesce): tasks
  /// drain and exit, blocked producers unblock with push failures.
  void Poison(const Status& status);
  void RouteRecord(int stage, int instance, StreamElement&& el);
  void RouteControl(int stage, int instance, const StreamElement& el);
  void FlushBuffer(Task* task, int stage, size_t edge_idx, int target);
  void FlushTaskOutputs(Task* task, int stage);
  /// Push along an internal edge: the producing task's dedicated SPSC ring
  /// when rings are on, the target's mutex channel otherwise.
  void PushEdge(Task* task, int stage, size_t edge_idx, int target,
                BatchEnvelope batch);
  /// Push from an external (non-task) producer: always the mutex channel.
  void PushExternalTo(int stage, int instance, BatchEnvelope batch);
  void DeliverTo(int stage, int instance, int port, int sender,
                 StreamElement element);

  TopologySpec spec_;
  SinkFn sink_;
  SnapshotFn snapshot_;
  const size_t channel_capacity_;
  const size_t batch_size_;
  const bool use_spsc_rings_;
  EdgePushObserver edge_observer_;
  std::vector<std::vector<std::unique_ptr<Task>>> tasks_;
  std::vector<std::vector<internal::DownstreamEdge>> downstream_;
  std::vector<int> gid_base_;
  std::vector<std::unique_ptr<std::mutex>> input_mutexes_;
  std::mutex marker_mutex_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> poisoned_{false};
  mutable std::mutex failure_mutex_;
  Status failure_;  // guarded by failure_mutex_; first failure wins
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_RUNNER_H_
