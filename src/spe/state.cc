#include "spe/state.h"

#include <cstring>

namespace astream::spe {

void StateWriter::WriteI64(int64_t v) {
  WriteBytes(&v, sizeof(v));
}

void StateWriter::WriteBytes(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

void StateWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

// Row encoding, tag-prefixed (see the class comment on dedup):
//   0              empty row
//   1, id          back-reference to an already-defined rep
//   2, n, v...     leaf definition (n columns); defines the next dense id
//   3, left, right composed definition (children encoded recursively
//                  first, so their ids precede the parent's)
void StateWriter::WriteRow(const Row& row) {
  if (row.rep_ == nullptr) {
    WriteU64(0);
    return;
  }
  WriteRepNode(row.rep_.get());
}

void StateWriter::WriteRepNode(const void* rep) {
  const auto* r = static_cast<const Row::Rep*>(rep);
  auto it = row_reps_.find(r);
  if (it != row_reps_.end()) {
    WriteU64(1);
    WriteU64(it->second);
    return;
  }
  if (r->left == nullptr) {
    WriteU64(2);
    WriteU64(r->flat.size());
    // One bulk append; values are raw little-endian i64s, so this is
    // byte-identical to writing them one at a time.
    WriteBytes(r->flat.data(), r->flat.size() * sizeof(Value));
  } else {
    WriteU64(3);
    WriteRepNode(r->left.get());
    WriteRepNode(r->right.get());
  }
  // Ids are dense in definition-completion order (children before their
  // composed parent); the reader appends to its table in the same order.
  row_reps_.emplace(r, row_reps_.size());
}

void StateWriter::WriteBitset(const DynamicBitset& b) {
  WriteU64(b.NumWords());
  for (size_t i = 0; i < b.NumWords(); ++i) WriteU64(b.Word(i));
}

int64_t StateReader::ReadI64() {
  if (pos_ + sizeof(int64_t) > buffer_.size()) {
    failed_ = true;
    return 0;
  }
  int64_t v;
  std::memcpy(&v, buffer_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::string StateReader::ReadString() {
  const uint64_t size = ReadU64();
  if (failed_ || pos_ + size > buffer_.size()) {
    failed_ = true;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), size);
  pos_ += size;
  return s;
}

Row StateReader::ReadRow() { return ReadRepNode(0); }

Row StateReader::ReadRepNode(int depth) {
  // Composed reps nest one level per join stage; 64 is far beyond any
  // topology and guards against a corrupt buffer recursing unboundedly.
  if (failed_ || depth > 64) {
    failed_ = true;
    return Row();
  }
  const uint64_t tag = ReadU64();
  if (failed_) return Row();
  switch (tag) {
    case 0:
      return Row();
    case 1: {
      const uint64_t id = ReadU64();
      if (failed_ || id >= rep_table_.size()) {
        failed_ = true;
        return Row();
      }
      return rep_table_[id];
    }
    case 2: {
      const uint64_t n = ReadU64();
      if (failed_ || n > (buffer_.size() - pos_) / sizeof(int64_t)) {
        failed_ = true;
        return Row();
      }
      std::vector<Value> values(n);
      std::memcpy(values.data(), buffer_.data() + pos_,
                  n * sizeof(Value));
      pos_ += n * sizeof(Value);
      Row row(std::move(values));
      rep_table_.push_back(row);
      return row;
    }
    case 3: {
      Row left = ReadRepNode(depth + 1);
      Row right = ReadRepNode(depth + 1);
      if (failed_) return Row();
      Row row = Row::Concat(left, right);
      rep_table_.push_back(row);
      return row;
    }
    default:
      failed_ = true;
      return Row();
  }
}

DynamicBitset StateReader::ReadBitset() {
  const uint64_t n = ReadU64();
  if (failed_ || n > (buffer_.size() - pos_) / sizeof(uint64_t)) {
    failed_ = true;
    return {};
  }
  std::vector<uint64_t> words;
  words.reserve(n);
  for (uint64_t i = 0; i < n; ++i) words.push_back(ReadU64());
  DynamicBitset b;
  b.FromWords(words);
  return b;
}

void CheckpointStore::BeginCheckpoint(int64_t id,
                                      std::map<int, int64_t> source_offsets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto cp = std::make_shared<Checkpoint>();
  cp->id = id;
  cp->source_offsets = std::move(source_offsets);
  checkpoints_[id] = std::move(cp);
}

void CheckpointStore::AddOperatorState(int64_t id, int stage, int instance,
                                       std::vector<uint8_t> state) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(id);
  if (it == checkpoints_.end()) return;
  it->second->operator_state[StateKey(stage, instance)] = std::move(state);
}

void CheckpointStore::MaybeComplete(int64_t id, size_t expected_states) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(id);
  if (it == checkpoints_.end()) return;
  if (it->second->operator_state.size() < expected_states) return;
  it->second->complete = true;
  // Retention: keep the newest `retention_` completed checkpoints and all
  // in-flight ones; erase older completed entries (recovery only ever
  // reads LatestComplete or an explicitly held shared_ptr).
  size_t completed_kept = 0;
  for (auto rit = checkpoints_.rbegin(); rit != checkpoints_.rend();) {
    if (!rit->second->complete) {
      ++rit;
      continue;
    }
    if (completed_kept < retention_) {
      ++completed_kept;
      ++rit;
      continue;
    }
    rit = decltype(rit)(checkpoints_.erase(std::next(rit).base()));
  }
}

void CheckpointStore::SetRetention(size_t keep_completed) {
  std::lock_guard<std::mutex> lock(mutex_);
  retention_ = keep_completed == 0 ? 1 : keep_completed;
}

size_t CheckpointStore::NumRetained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checkpoints_.size();
}

std::shared_ptr<const CheckpointStore::Checkpoint>
CheckpointStore::LatestComplete() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->second->complete) return it->second;
  }
  return nullptr;
}

std::shared_ptr<const CheckpointStore::Checkpoint> CheckpointStore::Get(
    int64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(id);
  return it == checkpoints_.end() ? nullptr : it->second;
}

}  // namespace astream::spe
