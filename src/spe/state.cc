#include "spe/state.h"

#include <cstring>

namespace astream::spe {

void StateWriter::WriteI64(int64_t v) {
  WriteBytes(&v, sizeof(v));
}

void StateWriter::WriteBytes(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

void StateWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void StateWriter::WriteRow(const Row& row) {
  WriteU64(row.NumColumns());
  for (size_t i = 0; i < row.NumColumns(); ++i) WriteI64(row.At(i));
}

void StateWriter::WriteBitset(const DynamicBitset& b) {
  WriteU64(b.NumWords());
  for (size_t i = 0; i < b.NumWords(); ++i) WriteU64(b.Word(i));
}

int64_t StateReader::ReadI64() {
  if (pos_ + sizeof(int64_t) > buffer_.size()) {
    failed_ = true;
    return 0;
  }
  int64_t v;
  std::memcpy(&v, buffer_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::string StateReader::ReadString() {
  const uint64_t size = ReadU64();
  if (failed_ || pos_ + size > buffer_.size()) {
    failed_ = true;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), size);
  pos_ += size;
  return s;
}

Row StateReader::ReadRow() {
  const uint64_t n = ReadU64();
  if (failed_ || n > (buffer_.size() - pos_) / sizeof(int64_t)) {
    failed_ = true;
    return Row();
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) values.push_back(ReadI64());
  return Row(std::move(values));
}

DynamicBitset StateReader::ReadBitset() {
  const uint64_t n = ReadU64();
  if (failed_ || n > (buffer_.size() - pos_) / sizeof(uint64_t)) {
    failed_ = true;
    return {};
  }
  std::vector<uint64_t> words;
  words.reserve(n);
  for (uint64_t i = 0; i < n; ++i) words.push_back(ReadU64());
  DynamicBitset b;
  b.FromWords(words);
  return b;
}

void CheckpointStore::BeginCheckpoint(int64_t id,
                                      std::map<int, int64_t> source_offsets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto cp = std::make_shared<Checkpoint>();
  cp->id = id;
  cp->source_offsets = std::move(source_offsets);
  checkpoints_[id] = std::move(cp);
}

void CheckpointStore::AddOperatorState(int64_t id, int stage, int instance,
                                       std::vector<uint8_t> state) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(id);
  if (it == checkpoints_.end()) return;
  it->second->operator_state[StateKey(stage, instance)] = std::move(state);
}

void CheckpointStore::MaybeComplete(int64_t id, size_t expected_states) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(id);
  if (it == checkpoints_.end()) return;
  if (it->second->operator_state.size() < expected_states) return;
  it->second->complete = true;
  // Retention: keep the newest `retention_` completed checkpoints and all
  // in-flight ones; erase older completed entries (recovery only ever
  // reads LatestComplete or an explicitly held shared_ptr).
  size_t completed_kept = 0;
  for (auto rit = checkpoints_.rbegin(); rit != checkpoints_.rend();) {
    if (!rit->second->complete) {
      ++rit;
      continue;
    }
    if (completed_kept < retention_) {
      ++completed_kept;
      ++rit;
      continue;
    }
    rit = decltype(rit)(checkpoints_.erase(std::next(rit).base()));
  }
}

void CheckpointStore::SetRetention(size_t keep_completed) {
  std::lock_guard<std::mutex> lock(mutex_);
  retention_ = keep_completed == 0 ? 1 : keep_completed;
}

size_t CheckpointStore::NumRetained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checkpoints_.size();
}

std::shared_ptr<const CheckpointStore::Checkpoint>
CheckpointStore::LatestComplete() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->second->complete) return it->second;
  }
  return nullptr;
}

std::shared_ptr<const CheckpointStore::Checkpoint> CheckpointStore::Get(
    int64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(id);
  return it == checkpoints_.end() ? nullptr : it->second;
}

}  // namespace astream::spe
