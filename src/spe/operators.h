#ifndef ASTREAM_SPE_OPERATORS_H_
#define ASTREAM_SPE_OPERATORS_H_

#include <functional>
#include <map>
#include <vector>

#include "spe/aggregate.h"
#include "spe/operator.h"
#include "spe/window.h"

namespace astream::spe {

/// Forwards every element unchanged. Used as an explicit source stage so
/// external inputs have a stage to target.
class PassThroughOperator : public Operator {
 public:
  void ProcessRecord(int port, Record record, Collector* out) override;
};

/// Stateless selection. The baseline ("query-at-a-time Flink") runs one
/// FilterOperator per query; AStream replaces this with SharedSelection.
class FilterOperator : public Operator {
 public:
  using PredicateFn = std::function<bool(const Row&)>;
  explicit FilterOperator(PredicateFn predicate)
      : predicate_(std::move(predicate)) {}

  void ProcessRecord(int port, Record record, Collector* out) override;

 private:
  PredicateFn predicate_;
};

/// Stateless 1:1 transformation.
class MapOperator : public Operator {
 public:
  using MapFn = std::function<Row(const Row&)>;
  explicit MapOperator(MapFn fn) : fn_(std::move(fn)) {}

  void ProcessRecord(int port, Record record, Collector* out) override;

 private:
  MapFn fn_;
};

/// Keyed windowed aggregation for a single query (the baseline engine's
/// built-in operator; Flink equivalent: keyed window + incremental
/// AggregateFunction). Supports tumbling, sliding, and session windows.
/// Emits one row [key, aggregate] per key and window at event time
/// window.end - 1 when the watermark passes the window end.
class WindowAggregateOperator : public Operator {
 public:
  /// `origin` anchors time-window boundaries (a query's windows start at
  /// its creation time).
  WindowAggregateOperator(WindowSpec window, AggSpec agg,
                          TimestampMs origin);

  Status Open(const OperatorContext& ctx) override;
  void ProcessRecord(int port, Record record, Collector* out) override;
  void OnWatermark(TimestampMs watermark, Collector* out) override;
  Status SnapshotState(StateWriter* writer) override;
  Status RestoreState(StateReader* reader) override;

 private:
  struct SessionState {
    TimestampMs start = 0;
    TimestampMs last = 0;
    Accumulator acc;
  };

  void EmitWindow(const TimeWindow& w,
                  const std::map<Value, Accumulator>& keys, Collector* out);

  const WindowSpec window_;
  const AggSpec agg_;
  const TimestampMs origin_;

  // Time windows: window -> key -> accumulator.
  std::map<TimeWindow, std::map<Value, Accumulator>> windows_;
  // Session windows: key -> open sessions ordered by start.
  std::map<Value, std::vector<SessionState>> sessions_;
};

/// Keyed windowed equi-join for a single query: A.key == B.key within the
/// same window instance. Emits Row::Concat(a, b) at event time
/// window.end - 1 when the watermark passes the window end. Time windows
/// only (the paper's join template, Fig. 7, uses RANGE/SLICE windows).
class WindowJoinOperator : public Operator {
 public:
  WindowJoinOperator(WindowSpec window, TimestampMs origin);

  int num_ports() const override { return 2; }
  Status Open(const OperatorContext& ctx) override;
  void ProcessRecord(int port, Record record, Collector* out) override;
  void OnWatermark(TimestampMs watermark, Collector* out) override;
  Status SnapshotState(StateWriter* writer) override;
  Status RestoreState(StateReader* reader) override;

 private:
  using KeyedRows = std::map<Value, std::vector<Row>>;

  const WindowSpec window_;
  const TimestampMs origin_;

  // Per window instance, the buffered rows of each side.
  std::map<TimeWindow, KeyedRows> side_[2];
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_OPERATORS_H_
