#include "spe/operators.h"

#include <algorithm>

#include "fault/injector.h"

namespace astream::spe {

namespace {

/// kOperatorProcess hook for the baseline per-query operators (the shared
/// operators are covered by the generic hook in the runner's record-run
/// dispatch; these also run under SyncRunner in baseline jobs, where the
/// throw propagates to the caller).
inline void MaybeInjectOperatorFault(const OperatorContext& ctx) {
  fault::FaultInjector* inj = fault::ActiveInjector();
  if (inj == nullptr) return;
  const fault::FaultDecision d =
      inj->Decide(fault::FaultPoint::kOperatorProcess, ctx.stage_index);
  if (d.action == fault::FaultAction::kThrow ||
      d.action == fault::FaultAction::kFail) {
    throw fault::InjectedFault("injected crash in operator " +
                               ctx.stage_name);
  }
}

}  // namespace

void PassThroughOperator::ProcessRecord(int port, Record record,
                                        Collector* out) {
  (void)port;
  out->Emit(StreamElement::MakeRecord(record.event_time,
                                      std::move(record.row),
                                      std::move(record.tags)));
}

void FilterOperator::ProcessRecord(int port, Record record, Collector* out) {
  (void)port;
  if (predicate_(record.row)) {
    out->Emit(StreamElement::MakeRecord(record.event_time,
                                        std::move(record.row),
                                        std::move(record.tags)));
  }
}

void MapOperator::ProcessRecord(int port, Record record, Collector* out) {
  (void)port;
  out->EmitRecord(record.event_time, fn_(record.row),
                  std::move(record.tags));
}

// ---------------------------------------------------------------------------
// WindowAggregateOperator
// ---------------------------------------------------------------------------

WindowAggregateOperator::WindowAggregateOperator(WindowSpec window,
                                                 AggSpec agg,
                                                 TimestampMs origin)
    : window_(window), agg_(agg), origin_(origin) {}

Status WindowAggregateOperator::Open(const OperatorContext& ctx) {
  ASTREAM_RETURN_IF_ERROR(Operator::Open(ctx));
  if (window_.IsTimeWindow() && window_.length <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  if (!window_.IsTimeWindow() && window_.gap <= 0) {
    return Status::InvalidArgument("session gap must be positive");
  }
  return Status::OK();
}

void WindowAggregateOperator::ProcessRecord(int port, Record record,
                                            Collector* out) {
  (void)port;
  (void)out;
  MaybeInjectOperatorFault(ctx());
  if (record.event_time < origin_) return;  // before the query existed
  const Value v = record.row.At(agg_.column);
  if (window_.IsTimeWindow()) {
    std::vector<TimeWindow> assigned;
    window_.AssignWindows(origin_, record.event_time, &assigned);
    for (const TimeWindow& w : assigned) {
      windows_[w][record.row.key()].Add(v);
    }
    return;
  }
  // Session windows: merge into / extend an existing session per key.
  auto& sessions = sessions_[record.row.key()];
  const TimestampMs t = record.event_time;
  // Find sessions overlapping [t - gap, t + gap] and merge them.
  SessionState merged;
  merged.start = t;
  merged.last = t;
  merged.acc.Add(v);
  std::vector<SessionState> kept;
  kept.reserve(sessions.size());
  for (SessionState& s : sessions) {
    const bool overlaps =
        t + window_.gap > s.start && s.last + window_.gap > t;
    if (overlaps) {
      merged.start = std::min(merged.start, s.start);
      merged.last = std::max(merged.last, s.last);
      merged.acc.Merge(s.acc);
    } else {
      kept.push_back(std::move(s));
    }
  }
  kept.push_back(std::move(merged));
  std::sort(kept.begin(), kept.end(),
            [](const SessionState& a, const SessionState& b) {
              return a.start < b.start;
            });
  sessions = std::move(kept);
}

void WindowAggregateOperator::EmitWindow(
    const TimeWindow& w, const std::map<Value, Accumulator>& keys,
    Collector* out) {
  for (const auto& [key, acc] : keys) {
    out->EmitRecord(w.end - 1, Row{key, acc.Finalize(agg_.kind)});
  }
}

void WindowAggregateOperator::OnWatermark(TimestampMs watermark,
                                          Collector* out) {
  if (window_.IsTimeWindow()) {
    auto it = windows_.begin();
    while (it != windows_.end() && it->first.end <= watermark) {
      EmitWindow(it->first, it->second, out);
      it = windows_.erase(it);
    }
    return;
  }
  // Session windows close when the gap has provably passed.
  for (auto kit = sessions_.begin(); kit != sessions_.end();) {
    auto& sessions = kit->second;
    auto sit = sessions.begin();
    while (sit != sessions.end() &&
           sit->last + window_.gap <= watermark) {
      out->EmitRecord(sit->last + window_.gap - 1,
                      Row{kit->first, sit->acc.Finalize(agg_.kind)});
      sit = sessions.erase(sit);
    }
    kit = sessions.empty() ? sessions_.erase(kit) : std::next(kit);
  }
}

Status WindowAggregateOperator::SnapshotState(StateWriter* writer) {
  writer->WriteU64(windows_.size());
  for (const auto& [w, keys] : windows_) {
    writer->WriteI64(w.start);
    writer->WriteI64(w.end);
    writer->WriteU64(keys.size());
    for (const auto& [key, acc] : keys) {
      writer->WriteI64(key);
      writer->WriteI64(acc.sum);
      writer->WriteI64(acc.count);
      writer->WriteI64(acc.min);
      writer->WriteI64(acc.max);
    }
  }
  writer->WriteU64(sessions_.size());
  for (const auto& [key, sessions] : sessions_) {
    writer->WriteI64(key);
    writer->WriteU64(sessions.size());
    for (const SessionState& s : sessions) {
      writer->WriteI64(s.start);
      writer->WriteI64(s.last);
      writer->WriteI64(s.acc.sum);
      writer->WriteI64(s.acc.count);
      writer->WriteI64(s.acc.min);
      writer->WriteI64(s.acc.max);
    }
  }
  return Status::OK();
}

Status WindowAggregateOperator::RestoreState(StateReader* reader) {
  windows_.clear();
  sessions_.clear();
  const uint64_t num_windows = reader->ReadU64();
  for (uint64_t i = 0; i < num_windows && reader->Ok(); ++i) {
    TimeWindow w;
    w.start = reader->ReadI64();
    w.end = reader->ReadI64();
    auto& keys = windows_[w];
    const uint64_t num_keys = reader->ReadU64();
    for (uint64_t k = 0; k < num_keys && reader->Ok(); ++k) {
      const Value key = reader->ReadI64();
      Accumulator acc;
      acc.sum = reader->ReadI64();
      acc.count = reader->ReadI64();
      acc.min = reader->ReadI64();
      acc.max = reader->ReadI64();
      keys[key] = acc;
    }
  }
  const uint64_t num_session_keys = reader->ReadU64();
  for (uint64_t i = 0; i < num_session_keys && reader->Ok(); ++i) {
    const Value key = reader->ReadI64();
    auto& sessions = sessions_[key];
    const uint64_t n = reader->ReadU64();
    for (uint64_t s = 0; s < n && reader->Ok(); ++s) {
      SessionState st;
      st.start = reader->ReadI64();
      st.last = reader->ReadI64();
      st.acc.sum = reader->ReadI64();
      st.acc.count = reader->ReadI64();
      st.acc.min = reader->ReadI64();
      st.acc.max = reader->ReadI64();
      sessions.push_back(st);
    }
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad aggregate snapshot");
}

// ---------------------------------------------------------------------------
// WindowJoinOperator
// ---------------------------------------------------------------------------

WindowJoinOperator::WindowJoinOperator(WindowSpec window, TimestampMs origin)
    : window_(window), origin_(origin) {}

Status WindowJoinOperator::Open(const OperatorContext& ctx) {
  ASTREAM_RETURN_IF_ERROR(Operator::Open(ctx));
  if (!window_.IsTimeWindow()) {
    return Status::InvalidArgument(
        "windowed join supports time windows only");
  }
  if (window_.length <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  return Status::OK();
}

void WindowJoinOperator::ProcessRecord(int port, Record record,
                                       Collector* out) {
  (void)out;
  MaybeInjectOperatorFault(ctx());
  if (record.event_time < origin_) return;
  std::vector<TimeWindow> assigned;
  window_.AssignWindows(origin_, record.event_time, &assigned);
  for (const TimeWindow& w : assigned) {
    side_[port][w][record.row.key()].push_back(record.row);
  }
}

void WindowJoinOperator::OnWatermark(TimestampMs watermark, Collector* out) {
  auto ita = side_[0].begin();
  while (ita != side_[0].end() && ita->first.end <= watermark) {
    auto itb = side_[1].find(ita->first);
    if (itb != side_[1].end()) {
      // Probe the smaller side.
      const KeyedRows& a = ita->second;
      const KeyedRows& b = itb->second;
      const bool a_smaller = a.size() <= b.size();
      const KeyedRows& probe = a_smaller ? a : b;
      const KeyedRows& build = a_smaller ? b : a;
      for (const auto& [key, probe_rows] : probe) {
        auto hit = build.find(key);
        if (hit == build.end()) continue;
        for (const Row& pr : probe_rows) {
          for (const Row& br : hit->second) {
            const Row& left = a_smaller ? pr : br;
            const Row& right = a_smaller ? br : pr;
            out->EmitRecord(ita->first.end - 1, Row::Concat(left, right));
          }
        }
      }
      side_[1].erase(itb);
    }
    ita = side_[0].erase(ita);
  }
  // Drop expired B-side windows that never saw an A row.
  auto itb = side_[1].begin();
  while (itb != side_[1].end() && itb->first.end <= watermark) {
    itb = side_[1].erase(itb);
  }
}

Status WindowJoinOperator::SnapshotState(StateWriter* writer) {
  for (const auto& side : side_) {
    writer->WriteU64(side.size());
    for (const auto& [w, keys] : side) {
      writer->WriteI64(w.start);
      writer->WriteI64(w.end);
      writer->WriteU64(keys.size());
      for (const auto& [key, rows] : keys) {
        writer->WriteI64(key);
        writer->WriteU64(rows.size());
        for (const Row& r : rows) writer->WriteRow(r);
      }
    }
  }
  return Status::OK();
}

Status WindowJoinOperator::RestoreState(StateReader* reader) {
  for (auto& side : side_) {
    side.clear();
    const uint64_t num_windows = reader->ReadU64();
    for (uint64_t i = 0; i < num_windows && reader->Ok(); ++i) {
      TimeWindow w;
      w.start = reader->ReadI64();
      w.end = reader->ReadI64();
      auto& keys = side[w];
      const uint64_t num_keys = reader->ReadU64();
      for (uint64_t k = 0; k < num_keys && reader->Ok(); ++k) {
        const Value key = reader->ReadI64();
        auto& rows = keys[key];
        const uint64_t n = reader->ReadU64();
        for (uint64_t r = 0; r < n && reader->Ok(); ++r) {
          rows.push_back(reader->ReadRow());
        }
      }
    }
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad join snapshot");
}

}  // namespace astream::spe
