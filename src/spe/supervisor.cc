#include "spe/supervisor.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace astream::spe {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status StallDetector::Observe(
    const std::vector<ThreadedRunner::TaskHealthSample>& samples,
    int64_t now_ms) {
  for (const ThreadedRunner::TaskHealthSample& s : samples) {
    Last& last = last_[{s.stage, s.instance}];
    if (last.since_ms == 0 || s.iterations != last.iterations ||
        s.queued == 0) {
      // Progress (or nothing to do): restart the stall clock. An idle task
      // with an empty inbox is healthy no matter how long it sits.
      last.iterations = s.iterations;
      last.since_ms = now_ms;
      continue;
    }
    if (now_ms - last.since_ms >= stall_timeout_ms_) {
      return Status::Aborted(
          "task " + std::to_string(s.stage) + "/" +
          std::to_string(s.instance) + " stalled: no progress for " +
          std::to_string(now_ms - last.since_ms) + "ms with " +
          std::to_string(s.queued) + " queued elements");
    }
  }
  return Status::OK();
}

Supervisor::Supervisor(Options options, Hooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

Supervisor::~Supervisor() { StopWatchdog(); }

void Supervisor::StartWatchdog() {
  if (watchdog_.joinable() || options_.poll_interval_ms <= 0 ||
      !hooks_.tick) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

void Supervisor::StopWatchdog() {
  stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
}

void Supervisor::WatchdogLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    hooks_.tick();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
}

Status Supervisor::RecoverNow(const Status& failure) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!terminal_.ok()) return terminal_;
  if (hooks_.on_failure) hooks_.on_failure(failure);
  ASTREAM_LOG(kWarn, "supervisor")
      << "failure detected: " << failure.ToString() << "; recovering";
  const int64_t t0 = SteadyNowMs();
  int64_t backoff_ms = options_.backoff_initial_ms;
  Status last = failure;
  for (int attempt = 0; attempt < options_.max_restart_attempts; ++attempt) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    const Status s = hooks_.recover(attempt);
    if (s.ok()) {
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      const int64_t latency_ms = SteadyNowMs() - t0;
      ASTREAM_LOG(kInfo, "supervisor")
          << "recovered after " << (attempt + 1) << " attempt(s) in "
          << latency_ms << "ms";
      if (hooks_.on_recovered) hooks_.on_recovered(attempt + 1, latency_ms);
      return Status::OK();
    }
    last = s;
    ASTREAM_LOG(kWarn, "supervisor")
        << "recovery attempt " << (attempt + 1) << " failed: "
        << s.ToString() << "; backing off " << backoff_ms << "ms";
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min<int64_t>(
        options_.backoff_max_ms,
        static_cast<int64_t>(static_cast<double>(backoff_ms) *
                             options_.backoff_factor));
  }
  terminal_ = last;
  ASTREAM_LOG(kError, "supervisor")
      << "giving up after " << options_.max_restart_attempts
      << " attempts; terminal: " << last.ToString();
  if (hooks_.on_terminal) hooks_.on_terminal(last);
  return last;
}

Status Supervisor::terminal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return terminal_;
}

}  // namespace astream::spe
