#ifndef ASTREAM_SPE_STATE_H_
#define ASTREAM_SPE_STATE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "spe/row.h"

namespace astream::spe {

/// Append-only binary encoder for operator state snapshots (Sec. 3.3).
/// Variable-length framing is intentionally avoided: fixed 64-bit integers
/// keep the format trivial to audit in tests.
///
/// Rows are deduplicated by payload identity within one writer: the first
/// occurrence of a CoW rep emits its definition (leaf columns, or a
/// composed node's two children) and assigns it a dense id; every later
/// Row sharing that rep emits an 8-byte reference. A checkpoint of K rows
/// fanned out from one payload therefore costs one payload + K refs, and
/// the matching reader restores the *sharing* (all K rows reference one
/// rep again), not K copies.
class StateWriter {
 public:
  void WriteI64(int64_t v);
  void WriteU64(uint64_t v) { WriteI64(static_cast<int64_t>(v)); }
  void WriteBool(bool v) { WriteI64(v ? 1 : 0); }
  void WriteBytes(const void* data, size_t size);
  void WriteString(const std::string& s);
  void WriteRow(const Row& row);
  void WriteBitset(const DynamicBitset& b);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  /// Emits a rep as a back-reference or a definition (see WriteRow tags).
  void WriteRepNode(const void* rep);

  std::vector<uint8_t> buffer_;
  /// Rep pointer -> dense id, in definition order.
  std::unordered_map<const void*, uint64_t> row_reps_;
};

/// Decoder matching StateWriter. Reads past the end return an error status
/// once and zero values thereafter; callers check Ok() after a batch of
/// reads (keeps restore code linear, no per-read error plumbing).
class StateReader {
 public:
  explicit StateReader(std::vector<uint8_t> buffer)
      : buffer_(std::move(buffer)) {}

  int64_t ReadI64();
  uint64_t ReadU64() { return static_cast<uint64_t>(ReadI64()); }
  bool ReadBool() { return ReadI64() != 0; }
  std::string ReadString();
  Row ReadRow();
  DynamicBitset ReadBitset();

  bool Ok() const { return !failed_; }
  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  /// Decodes one rep node, mirroring StateWriter::WriteRepNode's id
  /// assignment order so references restore payload sharing.
  Row ReadRepNode(int depth);

  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;
  bool failed_ = false;
  /// Dense id -> restored Row, in definition order.
  std::vector<Row> rep_table_;
};

/// In-memory store of completed checkpoints: per checkpoint id, a map from
/// (stage, instance) to the operator's serialized state, plus the source
/// replay offsets recorded when the barrier was injected.
///
/// The lifecycle methods are virtual so durable implementations (e.g.
/// storage::DurableCheckpointStore, which persists each completed
/// checkpoint as a run file) can slot in wherever the facade or harness
/// takes a CheckpointStore*.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;
  struct Checkpoint {
    int64_t id = 0;
    /// Key: stage_index * 1000003 + instance_index.
    std::map<int64_t, std::vector<uint8_t>> operator_state;
    /// Number of elements each external source had pushed before the
    /// barrier (replay starts here).
    std::map<int, int64_t> source_offsets;
    bool complete = false;
  };

  static int64_t StateKey(int stage, int instance) {
    return static_cast<int64_t>(stage) * 1000003 + instance;
  }

  virtual void BeginCheckpoint(int64_t id,
                               std::map<int, int64_t> source_offsets);
  virtual void AddOperatorState(int64_t id, int stage, int instance,
                                std::vector<uint8_t> state);
  /// Marks a checkpoint complete once all `expected_states` snapshots are
  /// in, then prunes: only the newest `retention` completed checkpoints
  /// are kept (plus any in-flight incomplete ones), so the store stays
  /// bounded in long runs. Outstanding shared_ptr references keep pruned
  /// checkpoints alive for readers mid-restore.
  virtual void MaybeComplete(int64_t id, size_t expected_states);

  /// Completed checkpoints to retain (default 2; minimum 1).
  void SetRetention(size_t keep_completed);

  /// Checkpoints currently held (completed + in-flight) — exported as the
  /// `state.checkpoints_retained` gauge.
  virtual size_t NumRetained() const;

  /// Latest complete checkpoint, or nullptr.
  virtual std::shared_ptr<const Checkpoint> LatestComplete() const;
  virtual std::shared_ptr<const Checkpoint> Get(int64_t id) const;

 protected:
  mutable std::mutex mutex_;
  size_t retention_ = 2;
  std::map<int64_t, std::shared_ptr<Checkpoint>> checkpoints_;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_STATE_H_
