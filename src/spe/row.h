#ifndef ASTREAM_SPE_ROW_H_
#define ASTREAM_SPE_ROW_H_

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace astream::spe {

/// Column value. The workloads of the paper (Sec. 4.2.1) use integer keys
/// and integer payload fields, so a single integer value type suffices.
using Value = int64_t;

/// A flat tuple of values. By convention column 0 is the partitioning key.
/// Join results concatenate the two input rows (left columns first).
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}
  Row(std::initializer_list<Value> values) : values_(values) {}

  /// Partitioning key (column 0). Rows in flight always have >= 1 column.
  Value key() const { return values_.empty() ? 0 : values_[0]; }

  Value At(size_t i) const {
    assert(i < values_.size());
    return values_[i];
  }
  size_t NumColumns() const { return values_.size(); }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& mutable_values() { return values_; }

  /// Left ++ right concatenation (windowed join output, Fig. 7).
  static Row Concat(const Row& left, const Row& right) {
    std::vector<Value> v;
    v.reserve(left.values_.size() + right.values_.size());
    v.insert(v.end(), left.values_.begin(), left.values_.end());
    v.insert(v.end(), right.values_.begin(), right.values_.end());
    return Row(std::move(v));
  }

  bool operator==(const Row& other) const { return values_ == other.values_; }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_ROW_H_
