#ifndef ASTREAM_SPE_ROW_H_
#define ASTREAM_SPE_ROW_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace astream::spe {

/// Column value. The workloads of the paper (Sec. 4.2.1) use integer keys
/// and integer payload fields, so a single integer value type suffices.
using Value = int64_t;

/// A flat tuple of values. By convention column 0 is the partitioning key.
/// Join results concatenate the two input rows (left columns first).
///
/// Copy-on-write: the payload is a refcounted immutable rep, so copying a
/// Row is a pointer bump — the Router's per-query fan-out and broadcast
/// edges share one payload across all consumers (Sec. 3.2.2's "data copy"
/// becomes a reference). Mutation goes through Mutate(), which clones the
/// columns only when the payload is actually shared. Join outputs are
/// composed reps holding references to both parent rows (left ++ right)
/// without copying either side; composed rows flatten lazily on Mutate().
///
/// Thread safety: reps are immutable once shared, so concurrent reads of
/// Rows referencing one payload are safe. Mutate() requires the usual
/// exclusive access to the Row *object* (the payload refcount takes care
/// of other owners).
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values)
      : rep_(values.empty() ? nullptr
                            : std::make_shared<Rep>(std::move(values))) {}
  Row(std::initializer_list<Value> values)
      : Row(std::vector<Value>(values)) {}

  /// Partitioning key (column 0). Rows in flight always have >= 1 column.
  Value key() const {
    const Rep* r = rep_.get();
    if (r == nullptr) return 0;
    while (r->left != nullptr) r = r->left.get();
    return r->flat.empty() ? 0 : r->flat[0];
  }

  Value At(size_t i) const {
    const Rep* r = rep_.get();
    assert(r != nullptr && i < NumColumns());
    while (r->left != nullptr) {
      const size_t left_cols = ColsOf(r->left.get());
      if (i < left_cols) {
        r = r->left.get();
      } else {
        i -= left_cols;
        r = r->right.get();
      }
    }
    return r->flat[i];
  }

  size_t NumColumns() const { return ColsOf(rep_.get()); }

  /// Columns as one contiguous vector. Flat rows return the shared payload
  /// directly; composed (join-output) rows materialize into a scratch
  /// buffer owned by the caller.
  const std::vector<Value>& values() const {
    if (rep_ == nullptr) return EmptyColumns();
    if (rep_->left == nullptr) return rep_->flat;
    // Composed rep: materialize once and memoize. The cache is built from
    // immutable parents under the rep's once_flag and published with a
    // release store; concurrent readers take the acquire fast path.
    const std::vector<Value>* flat =
        rep_->flatten_view.load(std::memory_order_acquire);
    if (flat == nullptr) {
      rep_->BuildFlattenCache();
      flat = rep_->flatten_view.load(std::memory_order_acquire);
    }
    return *flat;
  }

  /// Appends all columns to `out` (flattens composed rows).
  void AppendTo(std::vector<Value>* out) const { AppendRep(rep_.get(), out); }

  /// Mutable access with copy-on-write semantics: the columns are cloned
  /// iff the payload is shared with another Row (or composed); a uniquely
  /// owned flat payload is handed out as-is. Callers may resize.
  std::vector<Value>& Mutate() {
    if (rep_ == nullptr || rep_.use_count() > 1 || rep_->left != nullptr) {
      auto fresh = std::make_shared<Rep>();
      if (rep_ != nullptr) {
        fresh->flat.reserve(NumColumns());
        AppendTo(&fresh->flat);
      }
      rep_ = std::move(fresh);
    }
    return rep_->flat;
  }

  /// Left ++ right concatenation (windowed join output, Fig. 7). Composes
  /// by reference: neither parent's columns are copied; both parents'
  /// payloads are frozen by the extra reference (their own Mutate() will
  /// copy).
  static Row Concat(const Row& left, const Row& right) {
    if (left.rep_ == nullptr) return right;
    if (right.rep_ == nullptr) return left;
    Row row;
    row.rep_ = std::make_shared<Rep>(left.rep_, right.rep_);
    return row;
  }

  /// True iff the two rows reference the same payload (zero-copy sharing —
  /// observability and tests).
  bool SharesStorageWith(const Row& other) const {
    return rep_ != nullptr && rep_ == other.rep_;
  }

  /// True for join outputs composed from two parent rows (not yet
  /// flattened).
  bool IsComposed() const { return rep_ != nullptr && rep_->left != nullptr; }

  bool operator==(const Row& other) const {
    if (rep_ == other.rep_) return true;
    const size_t n = NumColumns();
    if (n != other.NumColumns()) return false;
    for (size_t i = 0; i < n; ++i) {
      if (At(i) != other.At(i)) return false;
    }
    return true;
  }
  bool operator!=(const Row& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  // State serialization walks reps directly to deduplicate shared
  // payloads by identity (StateWriter::WriteRepNode).
  friend class StateWriter;
  friend class StateReader;

  struct Rep {
    Rep() = default;
    explicit Rep(std::vector<Value> v) : flat(std::move(v)) {}
    Rep(std::shared_ptr<const Rep> l, std::shared_ptr<const Rep> r)
        : left(std::move(l)),
          right(std::move(r)),
          ncols(static_cast<uint32_t>(ColsOf(left.get()) +
                                      ColsOf(right.get()))) {}

    void BuildFlattenCache() const;

    std::vector<Value> flat;  // leaf storage (empty for composed reps)
    // Set iff this rep is a composed (concat) node.
    std::shared_ptr<const Rep> left;
    std::shared_ptr<const Rep> right;
    uint32_t ncols = 0;  // composed nodes only; leaves use flat.size()
    // Lazily materialized flat view of a composed rep (values() support).
    // `flatten_cache` owns the vector; readers go through the atomic
    // pointer (acquire) so the fast path never races the call_once
    // publisher.
    mutable std::unique_ptr<const std::vector<Value>> flatten_cache;
    mutable std::atomic<const std::vector<Value>*> flatten_view{nullptr};
    mutable std::once_flag flatten_once;
  };

  static size_t ColsOf(const Rep* r) {
    if (r == nullptr) return 0;
    return r->left != nullptr ? r->ncols : r->flat.size();
  }

  static void AppendRep(const Rep* r, std::vector<Value>* out);
  static const std::vector<Value>& EmptyColumns();

  // Logically const once shared; Mutate() re-establishes unique ownership
  // before handing out mutable access.
  std::shared_ptr<Rep> rep_;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_ROW_H_
