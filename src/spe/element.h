#ifndef ASTREAM_SPE_ELEMENT_H_
#define ASTREAM_SPE_ELEMENT_H_

#include <cstdint>
#include <memory>

#include "common/bitset.h"
#include "common/clock.h"
#include "spe/row.h"

namespace astream::spe {

/// A data tuple in flight: event time, payload row, and an optional tag-set
/// column. The substrate treats tags opaquely; the AStream layer uses them
/// as query-sets (Sec. 2.1.1).
struct Record {
  TimestampMs event_time = 0;
  Row row;
  DynamicBitset tags;
  /// Output channel id for demultiplexing at sinks (Flink side-output
  /// equivalent). The AStream router stamps the target query id here;
  /// -1 while unrouted.
  int64_t channel = -1;
};

/// Marker payloads are defined by higher layers (e.g. the AStream changelog,
/// Sec. 2.1.2). The substrate only aligns and forwards them.
struct MarkerPayload {
  virtual ~MarkerPayload() = default;
};

/// Categories of control markers woven into the stream.
enum class MarkerKind : uint8_t {
  /// AStream query changelog (create/delete batch).
  kChangelog,
  /// Checkpoint barrier (exactly-once snapshots, Sec. 3.3).
  kCheckpointBarrier,
  /// Data-structure switch hint for slice stores (Sec. 3.2.3).
  kModeSwitch,
};

/// A control marker. Markers are broadcast to every operator instance and
/// aligned on multi-input operators (blocking, Flink style): an operator
/// processes marker epoch e only after receiving it from all upstream
/// senders, so every record processed before it has event time < `time`.
struct ControlMarker {
  MarkerKind kind = MarkerKind::kChangelog;
  /// Strictly increasing per kind; used for alignment.
  int64_t epoch = 0;
  /// Event time at which the marker takes effect.
  TimestampMs time = 0;
  std::shared_ptr<const MarkerPayload> payload;
};

/// Discriminator for StreamElement. kDone is a runtime-internal signal: a
/// sender has finished and will emit nothing further.
enum class ElementKind : uint8_t { kRecord, kWatermark, kMarker, kDone };

/// One unit flowing through a channel: a record, a watermark, or a control
/// marker. A plain struct rather than std::variant keeps the hot path
/// simple and branch-predictable.
struct StreamElement {
  ElementKind kind = ElementKind::kRecord;
  Record record;                         // kind == kRecord
  TimestampMs watermark = kMinTimestamp; // kind == kWatermark
  ControlMarker marker;                  // kind == kMarker

  static StreamElement MakeRecord(TimestampMs event_time, Row row,
                                  DynamicBitset tags = {}) {
    StreamElement e;
    e.kind = ElementKind::kRecord;
    e.record.event_time = event_time;
    e.record.row = std::move(row);
    e.record.tags = std::move(tags);
    return e;
  }

  static StreamElement MakeWatermark(TimestampMs wm) {
    StreamElement e;
    e.kind = ElementKind::kWatermark;
    e.watermark = wm;
    return e;
  }

  static StreamElement MakeMarker(ControlMarker marker) {
    StreamElement e;
    e.kind = ElementKind::kMarker;
    e.marker = std::move(marker);
    return e;
  }

  static StreamElement MakeDone() {
    StreamElement e;
    e.kind = ElementKind::kDone;
    return e;
  }
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_ELEMENT_H_
