#ifndef ASTREAM_SPE_ELEMENT_H_
#define ASTREAM_SPE_ELEMENT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/clock.h"
#include "spe/row.h"

namespace astream::spe {

/// A data tuple in flight: event time, payload row, and an optional tag-set
/// column. The substrate treats tags opaquely; the AStream layer uses them
/// as query-sets (Sec. 2.1.1).
struct Record {
  TimestampMs event_time = 0;
  Row row;
  DynamicBitset tags;
  /// Output channel id for demultiplexing at sinks (Flink side-output
  /// equivalent). The AStream router stamps the target query id here;
  /// -1 while unrouted.
  int64_t channel = -1;
  /// Checkpoint epoch of a routed output: the id of the last checkpoint
  /// barrier the router aligned before emitting this record (0 before the
  /// first barrier). Recovery uses it to prune the output-dedup store —
  /// outputs older than the restored checkpoint can never be regenerated.
  int64_t epoch = 0;
};

/// Marker payloads are defined by higher layers (e.g. the AStream changelog,
/// Sec. 2.1.2). The substrate only aligns and forwards them.
struct MarkerPayload {
  virtual ~MarkerPayload() = default;
};

/// Categories of control markers woven into the stream.
enum class MarkerKind : uint8_t {
  /// AStream query changelog (create/delete batch).
  kChangelog,
  /// Checkpoint barrier (exactly-once snapshots, Sec. 3.3).
  kCheckpointBarrier,
  /// Data-structure switch hint for slice stores (Sec. 3.2.3).
  kModeSwitch,
};

/// A control marker. Markers are broadcast to every operator instance and
/// aligned on multi-input operators (blocking, Flink style): an operator
/// processes marker epoch e only after receiving it from all upstream
/// senders, so every record processed before it has event time < `time`.
struct ControlMarker {
  MarkerKind kind = MarkerKind::kChangelog;
  /// Strictly increasing per kind; used for alignment.
  int64_t epoch = 0;
  /// Event time at which the marker takes effect.
  TimestampMs time = 0;
  std::shared_ptr<const MarkerPayload> payload;
};

/// Discriminator for StreamElement. kDone is a runtime-internal signal: a
/// sender has finished and will emit nothing further.
enum class ElementKind : uint8_t { kRecord, kWatermark, kMarker, kDone };

/// One unit flowing through a channel: a record, a watermark, or a control
/// marker. A plain struct rather than std::variant keeps the hot path
/// simple and branch-predictable.
struct StreamElement {
  ElementKind kind = ElementKind::kRecord;
  Record record;                         // kind == kRecord
  TimestampMs watermark = kMinTimestamp; // kind == kWatermark
  ControlMarker marker;                  // kind == kMarker

  static StreamElement MakeRecord(TimestampMs event_time, Row row,
                                  DynamicBitset tags = {}) {
    StreamElement e;
    e.kind = ElementKind::kRecord;
    e.record.event_time = event_time;
    e.record.row = std::move(row);
    e.record.tags = std::move(tags);
    return e;
  }

  static StreamElement MakeWatermark(TimestampMs wm) {
    StreamElement e;
    e.kind = ElementKind::kWatermark;
    e.watermark = wm;
    return e;
  }

  static StreamElement MakeMarker(ControlMarker marker) {
    StreamElement e;
    e.kind = ElementKind::kMarker;
    e.marker = std::move(marker);
    return e;
  }

  static StreamElement MakeDone() {
    StreamElement e;
    e.kind = ElementKind::kDone;
    return e;
  }
};

/// A run of stream elements that travels the data plane as one unit: one
/// channel push, one lock acquisition, and one operator dispatch per batch
/// instead of per element. Control elements (watermarks, markers, done) are
/// batch boundaries — producers flush buffered records before emitting one,
/// so marker alignment semantics are identical to element-at-a-time.
///
/// Small batches (the common case for control elements and low-rate
/// streams) live in inline storage; larger batches spill to the heap while
/// keeping the elements contiguous, so consumers can always iterate
/// `data()..data()+size()`. Records keep their own tag bitsets — the
/// inline-word fast path of DynamicBitset already makes per-record tags
/// allocation-free for up to 64 concurrent queries.
///
/// Move-only: batches are handed off, never duplicated. Broadcast edges
/// copy individual StreamElements into per-target batches instead.
class ElementBatch {
 public:
  static constexpr size_t kInlineCapacity = 4;

  ElementBatch() = default;

  ElementBatch(ElementBatch&& other) noexcept
      : inline_(std::move(other.inline_)),
        inline_size_(other.inline_size_),
        overflow_(std::move(other.overflow_)) {
    other.inline_size_ = 0;
    other.overflow_.clear();
  }

  ElementBatch& operator=(ElementBatch&& other) noexcept {
    if (this != &other) {
      inline_ = std::move(other.inline_);
      inline_size_ = other.inline_size_;
      overflow_ = std::move(other.overflow_);
      other.inline_size_ = 0;
      other.overflow_.clear();
    }
    return *this;
  }

  ElementBatch(const ElementBatch&) = delete;
  ElementBatch& operator=(const ElementBatch&) = delete;

  void Add(StreamElement element) {
    if (overflow_.empty()) {
      if (inline_size_ < kInlineCapacity) {
        inline_[inline_size_++] = std::move(element);
        return;
      }
      Spill();
    }
    overflow_.push_back(std::move(element));
  }

  size_t size() const {
    return overflow_.empty() ? inline_size_ : overflow_.size();
  }
  bool empty() const { return size() == 0; }

  StreamElement* data() {
    return overflow_.empty() ? inline_.data() : overflow_.data();
  }
  const StreamElement* data() const {
    return overflow_.empty() ? inline_.data() : overflow_.data();
  }

  StreamElement& operator[](size_t i) { return data()[i]; }
  const StreamElement& operator[](size_t i) const { return data()[i]; }

  StreamElement* begin() { return data(); }
  StreamElement* end() { return data() + size(); }
  const StreamElement* begin() const { return data(); }
  const StreamElement* end() const { return data() + size(); }

  /// Empties the batch; heap capacity is kept for reuse.
  void Clear() {
    for (size_t i = 0; i < inline_size_; ++i) inline_[i] = StreamElement{};
    inline_size_ = 0;
    overflow_.clear();
  }

 private:
  void Spill() {
    overflow_.reserve(kInlineCapacity * 4);
    for (size_t i = 0; i < inline_size_; ++i) {
      overflow_.push_back(std::move(inline_[i]));
    }
    inline_size_ = 0;
  }

  std::array<StreamElement, kInlineCapacity> inline_;
  size_t inline_size_ = 0;
  // Non-empty iff the batch spilled; then it holds ALL elements.
  std::vector<StreamElement> overflow_;
};

}  // namespace astream::spe

#endif  // ASTREAM_SPE_ELEMENT_H_
