#include "spe/window.h"

#include <algorithm>
#include <cassert>

namespace astream::spe {

void WindowSpec::AssignWindows(TimestampMs origin, TimestampMs t,
                               std::vector<TimeWindow>* out) const {
  assert(IsTimeWindow());
  if (t < origin) return;
  const TimestampMs rel = t - origin;
  // Last window starting at or before t: k = floor(rel / slide). Earlier
  // windows [k' * slide, k' * slide + length) contain t while
  // k' * slide + length > rel.
  const size_t first = out->size();
  int64_t k = rel / slide;
  while (k >= 0 && k * slide + length > rel) {
    out->push_back(TimeWindow{origin + k * slide,
                              origin + k * slide + length});
    --k;
  }
  // Emit in start-ascending order (appended entries only).
  std::reverse(out->begin() + first, out->end());
}

void WindowSpec::EdgesInRange(TimestampMs origin, TimestampMs after,
                              TimestampMs upto,
                              std::vector<TimestampMs>* out) const {
  assert(IsTimeWindow());
  if (upto <= origin) return;
  const size_t first = out->size();
  // Start edges: origin + k * slide.
  {
    int64_t k = after < origin ? 0 : (after - origin) / slide + 1;
    for (; origin + k * slide <= upto; ++k) {
      const TimestampMs e = origin + k * slide;
      if (e > after) out->push_back(e);
    }
  }
  // End edges: origin + k * slide + length.
  {
    const TimestampMs first_end = origin + length;
    int64_t k =
        after < first_end ? 0 : (after - first_end) / slide + 1;
    for (; origin + k * slide + length <= upto; ++k) {
      const TimestampMs e = origin + k * slide + length;
      if (e > after) out->push_back(e);
    }
  }
  std::sort(out->begin() + first, out->end());
  out->erase(std::unique(out->begin() + first, out->end()), out->end());
}

TimestampMs WindowSpec::FirstEndAfter(TimestampMs origin,
                                      TimestampMs t) const {
  assert(IsTimeWindow());
  const TimestampMs first_end = origin + length;
  if (t < first_end) return first_end;
  const int64_t k = (t - first_end) / slide + 1;
  return origin + k * slide + length;
}

std::string WindowSpec::ToString() const {
  switch (type) {
    case WindowType::kTumbling:
      return "tumbling(" + std::to_string(length) + "ms)";
    case WindowType::kSliding:
      return "sliding(" + std::to_string(length) + "ms," +
             std::to_string(slide) + "ms)";
    case WindowType::kSession:
      return "session(gap=" + std::to_string(gap) + "ms)";
  }
  return "?";
}

}  // namespace astream::spe
