#ifndef ASTREAM_COMMON_CLOCK_H_
#define ASTREAM_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace astream {

/// Milliseconds since an arbitrary epoch. All stream timestamps (event time,
/// watermarks, changelog times) use this unit.
using TimestampMs = int64_t;

/// Sentinel for "no timestamp yet" / minimal watermark.
inline constexpr TimestampMs kMinTimestamp = INT64_MIN;
/// Sentinel watermark signalling end-of-stream (flushes all windows).
inline constexpr TimestampMs kMaxTimestamp = INT64_MAX;

/// Time source abstraction so tests and deterministic runs can drive time
/// manually while production code uses the wall clock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in milliseconds.
  virtual TimestampMs NowMs() const = 0;
  /// Current time in microseconds (for fine-grained latency sampling).
  virtual int64_t NowMicros() const = 0;
};

/// Monotonic wall clock (steady_clock based).
class WallClock : public Clock {
 public:
  TimestampMs NowMs() const override;
  int64_t NowMicros() const override;

  /// Process-wide shared instance.
  static WallClock* Default();
};

/// Manually advanced clock for deterministic tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(TimestampMs start_ms = 0)
      : micros_(start_ms * 1000) {}

  TimestampMs NowMs() const override {
    return micros_.load(std::memory_order_relaxed) / 1000;
  }
  int64_t NowMicros() const override {
    return micros_.load(std::memory_order_relaxed);
  }

  void AdvanceMs(TimestampMs delta_ms) {
    micros_.fetch_add(delta_ms * 1000, std::memory_order_relaxed);
  }
  void SetMs(TimestampMs now_ms) {
    micros_.store(now_ms * 1000, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> micros_;
};

}  // namespace astream

#endif  // ASTREAM_COMMON_CLOCK_H_
