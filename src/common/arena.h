#ifndef ASTREAM_COMMON_ARENA_H_
#define ASTREAM_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace astream {

/// Bump-pointer arena: allocations are one pointer bump in the current
/// chunk; individual frees are no-ops and all memory is released wholesale
/// when the arena is destroyed. Built for state whose lifetime is known in
/// bulk — per-slice stores die with their slice, so their maps, buckets and
/// vectors never need piecemeal deallocation.
///
/// Chunks double up to a cap so small arenas stay small and hot arenas
/// amortize to one malloc per ~64 KiB. Alignment up to
/// alignof(std::max_align_t) is supported (operator new[] guarantees it).
///
/// Not thread-safe for allocation (one owner, matching the one-task-thread-
/// per-operator execution model); the byte counters are relaxed atomics so
/// observability gauges may sample them from other threads.
class Arena {
 public:
  explicit Arena(size_t first_chunk_bytes = 1024)
      : next_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align) {
    size_t offset = AlignUp(used_, align);
    if (chunks_.empty() || offset + bytes > chunks_.back().size) {
      AddChunk(bytes + align);
      offset = AlignUp(used_, align);
    }
    used_ = offset + bytes;
    bytes_used_.fetch_add(bytes, std::memory_order_relaxed);
    return chunks_.back().data.get() + offset;
  }

  /// Total bytes reserved from the system (the footprint gauge).
  size_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }

  /// Bytes handed out to callers (reserved - used = bump slack).
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }

  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  static size_t AlignUp(size_t n, size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void AddChunk(size_t min_bytes) {
    size_t size = next_chunk_bytes_;
    if (size < min_bytes) size = min_bytes;
    constexpr size_t kMaxChunk = 64 * 1024;
    if (next_chunk_bytes_ < kMaxChunk) next_chunk_bytes_ *= 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    used_ = 0;
    bytes_reserved_.fetch_add(size, std::memory_order_relaxed);
  }

  std::vector<Chunk> chunks_;
  size_t used_ = 0;  // bump offset into chunks_.back()
  size_t next_chunk_bytes_;
  std::atomic<size_t> bytes_reserved_{0};
  std::atomic<size_t> bytes_used_{0};
};

/// Standard-library allocator over an Arena. deallocate() is a no-op: the
/// backing memory outlives every container using the allocator and is freed
/// wholesale with the arena. Containers using this allocator must not
/// outlive the arena they were built on.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // All instances over one arena are interchangeable; moves between
  // containers of the same store are pointer swaps.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  /// Default-constructed (arena-less) allocators fall back to the global
  /// heap. Required for well-formedness: libstdc++'s hashtable instantiates
  /// the allocator's default constructor during trait evaluation even when
  /// every live container is built with an explicit arena.
  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    }
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, size_t) {
    // Arena-backed memory is freed wholesale with the arena; only the
    // heap-fallback path frees piecemeal.
    if (arena_ == nullptr) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    }
  }

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const {
    return arena_ == other.arena_;
  }
  bool operator!=(const ArenaAllocator& other) const {
    return arena_ != other.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace astream

#endif  // ASTREAM_COMMON_ARENA_H_
