#ifndef ASTREAM_COMMON_BITSET_H_
#define ASTREAM_COMMON_BITSET_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace astream {

/// Dynamically sized bitset used for query-sets and changelog-sets
/// (Sec. 2.1 of the AStream paper). Optimized for the common case of at
/// most 64 concurrent queries: a single inline word, no heap allocation.
/// Grows transparently; all binary operations accept operands of different
/// sizes (missing high bits are treated as zero).
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset with at least `num_bits` capacity, all zero.
  explicit DynamicBitset(size_t num_bits) { Reserve(num_bits); }

  /// A bitset with bits [0, num_bits) all set.
  static DynamicBitset AllSet(size_t num_bits) {
    DynamicBitset b(num_bits);
    for (size_t i = 0; i < num_bits; ++i) b.Set(i);
    return b;
  }

  /// A bitset with exactly one bit set.
  static DynamicBitset Single(size_t bit) {
    DynamicBitset b;
    b.Set(bit);
    return b;
  }

  /// Number of addressable bits (a multiple of 64).
  size_t capacity() const { return NumWords() * 64; }

  void Set(size_t bit) {
    Reserve(bit + 1);
    WordFor(bit) |= (uint64_t{1} << (bit & 63));
  }

  void Reset(size_t bit) {
    if (bit >= capacity()) return;
    WordFor(bit) &= ~(uint64_t{1} << (bit & 63));
  }

  /// Zeroes every bit but keeps allocated capacity, so hot paths can reuse
  /// one scratch set per batch instead of constructing a set per record.
  void ClearAll() {
    inline_word_ = 0;
    for (uint64_t& w : words_) w = 0;
  }

  void SetTo(size_t bit, bool value) {
    if (value) {
      Set(bit);
    } else {
      Reset(bit);
    }
  }

  bool Test(size_t bit) const {
    if (bit >= capacity()) return false;
    return (Word(bit / 64) >> (bit & 63)) & 1;
  }

  /// True if no bit is set.
  bool None() const {
    for (size_t i = 0; i < NumWords(); ++i) {
      if (Word(i) != 0) return false;
    }
    return true;
  }

  bool Any() const { return !None(); }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (size_t i = 0; i < NumWords(); ++i) n += __builtin_popcountll(Word(i));
    return n;
  }

  /// Index of the highest set bit, or -1 if none.
  int HighestBit() const {
    for (size_t i = NumWords(); i-- > 0;) {
      if (Word(i) != 0) {
        return static_cast<int>(i * 64 + 63 - __builtin_clzll(Word(i)));
      }
    }
    return -1;
  }

  /// True if (*this & other) has any set bit — the paper's sharing test:
  /// two tuples are combined iff their query-sets intersect.
  bool Intersects(const DynamicBitset& other) const {
    const size_t n = std::min(NumWords(), other.NumWords());
    for (size_t i = 0; i < n; ++i) {
      if ((Word(i) & other.Word(i)) != 0) return true;
    }
    return false;
  }

  /// In-place AND. Bits beyond `other`'s capacity become zero.
  DynamicBitset& operator&=(const DynamicBitset& other) {
    for (size_t i = 0; i < NumWords(); ++i) {
      WordRef(i) &= (i < other.NumWords()) ? other.Word(i) : 0;
    }
    return *this;
  }

  /// In-place OR. Grows to `other`'s capacity.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    Reserve(other.capacity());
    for (size_t i = 0; i < other.NumWords(); ++i) {
      WordRef(i) |= other.Word(i);
    }
    return *this;
  }

  /// In-place AND-NOT (clears bits set in `other`).
  DynamicBitset& AndNot(const DynamicBitset& other) {
    const size_t n = std::min(NumWords(), other.NumWords());
    for (size_t i = 0; i < n; ++i) WordRef(i) &= ~other.Word(i);
    return *this;
  }

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }

  /// Equality compares set bits (capacity is irrelevant).
  bool operator==(const DynamicBitset& other) const {
    const size_t n = std::max(NumWords(), other.NumWords());
    for (size_t i = 0; i < n; ++i) {
      const uint64_t a = i < NumWords() ? Word(i) : 0;
      const uint64_t b = i < other.NumWords() ? other.Word(i) : 0;
      if (a != b) return false;
    }
    return true;
  }
  bool operator!=(const DynamicBitset& other) const {
    return !(*this == other);
  }

  /// Calls `fn(bit_index)` for every set bit, in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t i = 0; i < NumWords(); ++i) {
      uint64_t w = Word(i);
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        fn(i * 64 + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Hash of the set-bit content (used by grouped slice stores keyed by
  /// query-set).
  size_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    // Skip trailing zero words so equal sets of different capacity match.
    size_t n = NumWords();
    while (n > 0 && Word(n - 1) == 0) --n;
    for (size_t i = 0; i < n; ++i) {
      h ^= Word(i);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }

  /// Bits as a string, lowest bit first, e.g. "1010".
  std::string ToString(size_t num_bits) const {
    std::string s;
    s.reserve(num_bits);
    for (size_t i = 0; i < num_bits; ++i) s.push_back(Test(i) ? '1' : '0');
    return s;
  }

  /// Serialization helpers (checkpointing).
  size_t NumWords() const { return words_.empty() ? 1 : words_.size(); }
  uint64_t Word(size_t i) const {
    return words_.empty() ? (i == 0 ? inline_word_ : 0) : words_[i];
  }
  void FromWords(const std::vector<uint64_t>& words) {
    if (words.size() <= 1) {
      words_.clear();
      inline_word_ = words.empty() ? 0 : words[0];
    } else {
      words_ = words;
      inline_word_ = 0;
    }
  }

 private:
  void Reserve(size_t num_bits) {
    const size_t need = (num_bits + 63) / 64;
    if (need <= NumWords()) return;
    if (words_.empty()) {
      words_.resize(need, 0);
      words_[0] = inline_word_;
    } else {
      words_.resize(need, 0);
    }
  }

  uint64_t& WordRef(size_t i) {
    return words_.empty() ? inline_word_ : words_[i];
  }
  uint64_t& WordFor(size_t bit) { return WordRef(bit / 64); }

  // Inline fast path: used while the set fits in 64 bits (words_ empty).
  uint64_t inline_word_ = 0;
  std::vector<uint64_t> words_;
};

struct DynamicBitsetHash {
  size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

}  // namespace astream

#endif  // ASTREAM_COMMON_BITSET_H_
