#include "common/lz.h"

#include <cstring>

namespace astream {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 65535;
constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = size_t{1} << kHashBits;

/// Fibonacci hash of the 4 bytes at p.
inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Emits a length in the 255-extension scheme (value already minus the
/// nibble's 15).
inline uint8_t* PutLength(uint8_t* dst, size_t len) {
  while (len >= 255) {
    *dst++ = 255;
    len -= 255;
  }
  *dst++ = static_cast<uint8_t>(len);
  return dst;
}

}  // namespace

size_t LzCompress(const uint8_t* src, size_t n, uint8_t* dst) {
  if (n == 0) return 0;
  uint8_t* out = dst;
  // Position of the last occurrence of each 4-byte hash. Seeded to 0; a
  // stale slot is caught by the 4-byte verify below. Positions are u32 —
  // run blocks are far below 4 GiB (the writer flushes at ~64 KiB).
  uint32_t table[kHashSize] = {};

  size_t anchor = 0;  // first unemitted literal
  size_t pos = 0;
  // Matches need 4 bytes to read and must not start in the final 4 bytes
  // (keeps the tail a plain literal run, mirroring LZ4's end rule).
  const size_t match_limit = n > kMinMatch + 8 ? n - kMinMatch - 8 : 0;
  while (pos < match_limit) {
    const uint32_t h = Hash4(src + pos);
    const size_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (candidate >= pos || pos - candidate > kMaxDistance ||
        Read32(src + candidate) != Read32(src + pos)) {
      ++pos;
      continue;
    }
    // Extend the match forward, 8 bytes per probe (stay clear of the
    // literal-only tail; the first mismatching byte comes out of the XOR).
    const size_t end_limit = n - 8;
    size_t len = kMinMatch;
    bool mismatched = false;
    while (pos + len + 8 <= end_limit) {
      const uint64_t diff =
          Read64(src + candidate + len) ^ Read64(src + pos + len);
      if (diff != 0) {
        len += static_cast<size_t>(__builtin_ctzll(diff)) >> 3;
        mismatched = true;
        break;
      }
      len += 8;
    }
    while (!mismatched && pos + len < end_limit &&
           src[candidate + len] == src[pos + len]) {
      ++len;
    }
    // Emit: token, literal run, offset, extended match length.
    const size_t lit = pos - anchor;
    const size_t match_code = len - kMinMatch;
    uint8_t* token = out++;
    *token = 0;
    if (lit >= 15) {
      *token |= 0xF0;
      out = PutLength(out, lit - 15);
    } else {
      *token |= static_cast<uint8_t>(lit << 4);
    }
    std::memcpy(out, src + anchor, lit);
    out += lit;
    const uint16_t offset = static_cast<uint16_t>(pos - candidate);
    std::memcpy(out, &offset, 2);
    out += 2;
    if (match_code >= 15) {
      *token |= 0x0F;
      out = PutLength(out, match_code - 15);
    } else {
      *token |= static_cast<uint8_t>(match_code);
    }
    pos += len;
    anchor = pos;
    // Re-seed the table inside the match so adjacent repeats chain.
    if (pos < match_limit) {
      table[Hash4(src + pos - 2)] = static_cast<uint32_t>(pos - 2);
    }
  }
  // Final literal-only sequence.
  const size_t lit = n - anchor;
  uint8_t* token = out++;
  *token = 0;
  if (lit >= 15) {
    *token = 0xF0;
    out = PutLength(out, lit - 15);
  } else {
    *token = static_cast<uint8_t>(lit << 4);
  }
  std::memcpy(out, src + anchor, lit);
  out += lit;
  return static_cast<size_t>(out - dst);
}

bool LzDecompress(const uint8_t* src, size_t n, uint8_t* dst, size_t raw) {
  if (raw == 0) return n == 0;
  if (n == 0) return false;
  const uint8_t* ip = src;
  const uint8_t* const iend = src + n;
  size_t op = 0;
  for (;;) {
    if (ip >= iend) return false;
    const uint8_t token = *ip++;
    // Literal run.
    size_t lit = token >> 4;
    if (lit == 15) {
      uint8_t b;
      do {
        if (ip >= iend) return false;
        b = *ip++;
        lit += b;
      } while (b == 255);
    }
    if (lit > static_cast<size_t>(iend - ip) || lit > raw - op) return false;
    std::memcpy(dst + op, ip, lit);
    ip += lit;
    op += lit;
    if (ip == iend) {
      // Terminal sequence: literals only; the match nibble must be clear
      // and the output must be exactly full.
      return (token & 0x0F) == 0 && op == raw;
    }
    // Match.
    if (iend - ip < 2) return false;
    uint16_t offset;
    std::memcpy(&offset, ip, 2);
    ip += 2;
    if (offset == 0 || offset > op) return false;
    size_t match = (token & 0x0F) + kMinMatch;
    if ((token & 0x0F) == 15) {
      uint8_t b;
      do {
        if (ip >= iend) return false;
        b = *ip++;
        match += b;
      } while (b == 255);
    }
    if (match > raw - op) return false;
    // Copy distance d: the smallest multiple of the period >= 8, so the
    // bulk of the copy runs in non-overlapping 8-byte chunks. The first
    // d - offset bytes (< 8) go byte-wise from the original offset until
    // enough periodic output exists behind the cursor.
    size_t d = offset;
    while (d < 8) d += offset;
    const uint8_t* from = dst + op - offset;
    size_t i = 0;
    const size_t head = d - offset < match ? d - offset : match;
    for (; i < head; ++i) dst[op + i] = from[i];
    for (; i + 8 <= match; i += 8) std::memcpy(dst + op + i, dst + op + i - d, 8);
    for (; i < match; ++i) dst[op + i] = dst[op + i - d];
    op += match;
  }
}

}  // namespace astream
