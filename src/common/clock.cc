#include "common/clock.h"

#include <chrono>

namespace astream {

TimestampMs WallClock::NowMs() const { return NowMicros() / 1000; }

int64_t WallClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WallClock* WallClock::Default() {
  static WallClock clock;
  return &clock;
}

}  // namespace astream
