#ifndef ASTREAM_COMMON_STATUS_H_
#define ASTREAM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace astream {

/// Error codes used across the library. Mirrors the RocksDB/Arrow idiom:
/// no exceptions; fallible functions return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kAborted,
  kInternal,
  kUnimplemented,
  /// Submit refused by the admission controller: the cost model predicts
  /// the query would violate the job's SLO knobs (see core::SloOptions).
  kAdmissionRejected,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status AdmissionRejected(std::string msg) {
    return Status(StatusCode::kAdmissionRejected, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::...;` both work in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define ASTREAM_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::astream::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define ASTREAM_ASSIGN_OR_RETURN(lhs, expr)    \
  auto _res_##__LINE__ = (expr);               \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).value()

}  // namespace astream

#endif  // ASTREAM_COMMON_STATUS_H_
