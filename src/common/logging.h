#ifndef ASTREAM_COMMON_LOGGING_H_
#define ASTREAM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace astream {

/// Severity levels for the process-wide logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Minimal thread-safe leveled logger writing to stderr. Benchmarks raise
/// the level to kWarn so measurement loops stay quiet.
class Logger {
 public:
  /// Sets the minimum level that is emitted (process-wide).
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Emits one line "LEVEL [tag] message" if `level` passes the filter.
  static void Log(LogLevel level, const std::string& tag,
                  const std::string& message);
};

namespace internal_logging {

/// Stream-style builder used by the ASTREAM_LOG macro; flushes on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* tag) : level_(level), tag_(tag) {}
  ~LogMessage() { Logger::Log(level_, tag_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* tag_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace astream

/// Usage: ASTREAM_LOG(kInfo, "executor") << "started " << n << " tasks";
#define ASTREAM_LOG(level, tag)                       \
  ::astream::internal_logging::LogMessage(            \
      ::astream::LogLevel::level, (tag))

#endif  // ASTREAM_COMMON_LOGGING_H_
