#ifndef ASTREAM_COMMON_LZ_H_
#define ASTREAM_COMMON_LZ_H_

#include <cstddef>
#include <cstdint>

namespace astream {

/// Minimal self-contained LZ77 byte codec (LZ4-style token stream), used
/// for per-block compression of storage run files (DESIGN.md §13). No
/// external dependencies, no allocation, deterministic output.
///
/// Stream format — a sequence of "sequences", each:
///   [token: 1 byte]   high nibble = literal length, low nibble = match
///                     length - 4; nibble value 15 means "extended":
///   [lit-len ext]*    0..n bytes of 255 plus one terminator byte < 255
///   [literals]        literal bytes
///   [offset: 2 bytes] little-endian match distance in [1, 65535]
///   [match-len ext]*  same extension scheme as the literal length
/// The final sequence carries literals only (no offset/match); its match
/// nibble must be 0. Matches copy from the already-decompressed output
/// (overlap allowed, so a distance-1 match encodes a run).

/// Worst-case compressed size for `raw` input bytes (all-literal stream).
constexpr size_t LzMaxCompressedSize(size_t raw) {
  return raw + raw / 255 + 16;
}

/// Compresses src[0..n) into dst (capacity >= LzMaxCompressedSize(n)).
/// Returns the compressed size. n == 0 yields an empty stream (size 0).
size_t LzCompress(const uint8_t* src, size_t n, uint8_t* dst);

/// Decompresses src[0..n) into exactly dst[0..raw) bytes. Returns false —
/// without reading or writing out of bounds — on any malformed input
/// (truncated stream, offset past the start, output size mismatch).
bool LzDecompress(const uint8_t* src, size_t n, uint8_t* dst, size_t raw);

}  // namespace astream

#endif  // ASTREAM_COMMON_LZ_H_
