#ifndef ASTREAM_COMMON_RNG_H_
#define ASTREAM_COMMON_RNG_H_

#include <cstdint>

namespace astream {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every experiment takes an explicit seed so runs are
/// reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

}  // namespace astream

#endif  // ASTREAM_COMMON_RNG_H_
