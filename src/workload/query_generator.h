#ifndef ASTREAM_WORKLOAD_QUERY_GENERATOR_H_
#define ASTREAM_WORKLOAD_QUERY_GENERATOR_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/job_config.h"
#include "core/query.h"
#include "core/query_builder.h"

namespace astream::workload {

/// Random query generation per Sec. 4.2.2 / 4.2.3.
///
/// Selection predicates: a random field, a random constant, and a random
/// comparison from {<, >, ==, <=, >=}. Windows: length = random(1,
/// window_max), slide = random(1, length) (Fig. 7/8's RANGE/SLICE), or a
/// session gap. Complex queries (Sec. 4.7) pipeline a selection, n-ary
/// windowed joins (1 <= n <= 5), and a windowed aggregation.
class QueryGenerator {
 public:
  struct Config {
    int num_fields = 5;
    spe::Value fields_max = 1000;
    /// Window length drawn from [window_min, window_max] (ms).
    TimestampMs window_min = 1;
    TimestampMs window_max = 10'000;
    /// Predicates per stream side (conjunction).
    int predicates_per_side = 1;
    /// Probability that an aggregation query uses a session window.
    double session_probability = 0.0;
    TimestampMs session_gap_max = 2'000;
    /// Lower bound of slide as a fraction of length. The paper draws
    /// slide = random(1, length); benches on small machines raise the
    /// floor to bound trigger density (documented scale-down).
    double slide_min_frac = 0.0;
    /// Heterogeneous-window mix: when > 0, time windows are drawn from
    /// `window_mix` distinct (length, slide) specs — length = base * pick
    /// over one shared slide base — instead of the fully random draw.
    /// This is the fleet shape the factor-window rewrite targets: many
    /// distinct specs that are all composable from one GCD lattice.
    int window_mix = 0;
    /// Slide base of the mix; 0 derives it as max(1, window_min).
    TimestampMs window_mix_slide = 0;
  };

  QueryGenerator(Config config, uint64_t seed)
      : config_(config), rng_(seed) {}

  core::Predicate RandomPredicate() {
    core::Predicate p;
    p.column = 1 + static_cast<int>(
                       rng_.UniformInt(0, config_.num_fields - 1));
    p.op = static_cast<core::CmpOp>(rng_.UniformInt(0, 4));
    p.constant = rng_.UniformInt(0, config_.fields_max - 1);
    return p;
  }

  spe::WindowSpec RandomTimeWindow() {
    if (config_.window_mix > 0) {
      // Pick one of `window_mix` distinct specs over a shared slide base:
      // length = base * (1 + pick), slide = base. gcd(length, slide) ==
      // base for every pick, so all of them factor onto one lattice.
      const TimestampMs base = config_.window_mix_slide > 0
                                   ? config_.window_mix_slide
                                   : std::max<TimestampMs>(
                                         1, config_.window_min);
      const int64_t pick = rng_.UniformInt(1, config_.window_mix);
      return spe::WindowSpec::Sliding(base * pick, base);
    }
    const TimestampMs length =
        rng_.UniformInt(config_.window_min, config_.window_max);
    const auto floor = std::max<TimestampMs>(
        1, static_cast<TimestampMs>(config_.slide_min_frac * length));
    const TimestampMs slide = rng_.UniformInt(floor, length);
    return spe::WindowSpec::Sliding(length, slide);
  }

  core::QueryDescriptor Selection() {
    auto b = core::QueryBuilder::Selection();
    WherePredicates(&b, /*side_b=*/false);
    return *b.Build();
  }

  /// Fig. 8: SELECT SUM(A.FIELD1) FROM A [RANGE][SLICE] WHERE .. GROUPBY key.
  core::QueryDescriptor Aggregation() {
    auto b = core::QueryBuilder::Aggregation();
    WherePredicates(&b, /*side_b=*/false);
    if (rng_.Bernoulli(config_.session_probability)) {
      b.SessionWindow(rng_.UniformInt(1, config_.session_gap_max));
    } else {
      b.Window(RandomTimeWindow());
    }
    b.Agg(spe::AggKind::kSum, 1);  // A.FIELD1
    return *b.Build();
  }

  /// Fig. 7: SELECT * FROM A, B [RANGE][SLICE] WHERE A.KEY = B.KEY AND ...
  core::QueryDescriptor Join() {
    auto b = core::QueryBuilder::Join();
    WherePredicates(&b, /*side_b=*/false);
    WherePredicates(&b, /*side_b=*/true);
    b.Window(RandomTimeWindow());
    return *b.Build();
  }

  /// Sec. 4.7: selection + n-ary windowed joins (1..5) + aggregation.
  core::QueryDescriptor Complex(int max_depth = core::kMaxJoinDepth) {
    auto b = core::QueryBuilder::Complex();
    WherePredicates(&b, /*side_b=*/false);
    WherePredicates(&b, /*side_b=*/true);
    b.Window(RandomTimeWindow())
        .JoinDepth(static_cast<int>(rng_.UniformInt(1, max_depth)))
        .Agg(spe::AggKind::kSum, 1);
    return *b.Build();
  }

  /// DESIGN.md §15: an n-ary windowed join over a random subset of the
  /// job's streams (2..num_streams legs, random declared order, per-leg
  /// predicates).
  core::QueryDescriptor Multiway(int num_streams) {
    std::vector<int> streams(static_cast<size_t>(num_streams));
    for (int s = 0; s < num_streams; ++s) streams[static_cast<size_t>(s)] = s;
    // Partial Fisher-Yates on the job's own RNG (std::shuffle's draw
    // sequence is unspecified across standard libraries).
    const int legs = static_cast<int>(rng_.UniformInt(2, num_streams));
    for (int i = 0; i < legs; ++i) {
      const auto j = rng_.UniformInt(i, num_streams - 1);
      std::swap(streams[static_cast<size_t>(i)],
                streams[static_cast<size_t>(j)]);
    }
    auto b = core::QueryBuilder::MultiwayJoin();
    for (int i = 0; i < legs; ++i) {
      const int s = streams[static_cast<size_t>(i)];
      b.Input(s);
      for (int k = 0; k < config_.predicates_per_side; ++k) {
        const core::Predicate p = RandomPredicate();
        b.WhereStream(s, p.column, p.op, p.constant);
      }
    }
    b.Window(RandomTimeWindow());
    return *b.Build();
  }

  /// A random query that the deployment described by `config` can host:
  /// the kind follows the configured topology (selections ride along on
  /// every topology; joins appear on kJoin, aggregations on kAggregation,
  /// the full mix on kComplex) and complex pipelines never exceed the
  /// configured max_join_stages.
  core::QueryDescriptor RandomFor(const JobConfig& config) {
    using Topology = core::AStreamJob::TopologyKind;
    switch (config.job.topology) {
      case Topology::kAggregation:
        return rng_.Bernoulli(0.25) ? Selection() : Aggregation();
      case Topology::kJoin:
        return rng_.Bernoulli(0.25) ? Selection() : Join();
      case Topology::kComplex: {
        const auto roll = rng_.UniformInt(0, 3);
        if (roll == 0) return Selection();
        if (roll == 1) return Aggregation();
        if (roll == 2) return Join();
        return Complex(config.job.max_join_stages);
      }
      case Topology::kMultiway:
        return rng_.Bernoulli(0.25) ? Selection()
                                    : Multiway(config.job.num_streams);
    }
    return Selection();
  }

  const Config& config() const { return config_; }
  Rng& rng() { return rng_; }

 private:
  void WherePredicates(core::QueryBuilder* b, bool side_b) {
    for (int i = 0; i < config_.predicates_per_side; ++i) {
      const core::Predicate p = RandomPredicate();
      if (side_b) {
        b->WhereB(p.column, p.op, p.constant);
      } else {
        b->WhereA(p.column, p.op, p.constant);
      }
    }
  }

  Config config_;
  Rng rng_;
};

}  // namespace astream::workload

#endif  // ASTREAM_WORKLOAD_QUERY_GENERATOR_H_
