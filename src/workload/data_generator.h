#ifndef ASTREAM_WORKLOAD_DATA_GENERATOR_H_
#define ASTREAM_WORKLOAD_DATA_GENERATOR_H_

#include "common/rng.h"
#include "spe/row.h"

namespace astream::workload {

/// Input tuple generation per Sec. 4.2.1: each tuple has a key column and
/// `num_fields` payload fields. Keys round-robin (`key <- key++ % key_max`,
/// balancing partitions); fields are uniform random in [0, fields_max).
class DataGenerator {
 public:
  struct Config {
    spe::Value key_max = 1000;  // paper Sec. 4.4: 1000 distinct keys
    spe::Value fields_max = 1000;
    int num_fields = 5;  // paper: an array of size 5
  };

  DataGenerator(Config config, uint64_t seed)
      : config_(config), rng_(seed) {}

  /// The next tuple: row = [key, f0, .., f{n-1}].
  spe::Row Next() {
    std::vector<spe::Value> values;
    values.reserve(1 + config_.num_fields);
    values.push_back(next_key_);
    next_key_ = (next_key_ + 1) % config_.key_max;
    for (int i = 0; i < config_.num_fields; ++i) {
      values.push_back(rng_.UniformInt(0, config_.fields_max - 1));
    }
    return spe::Row(std::move(values));
  }

  const Config& config() const { return config_; }

 private:
  Config config_;
  Rng rng_;
  spe::Value next_key_ = 0;
};

}  // namespace astream::workload

#endif  // ASTREAM_WORKLOAD_DATA_GENERATOR_H_
