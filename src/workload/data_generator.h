#ifndef ASTREAM_WORKLOAD_DATA_GENERATOR_H_
#define ASTREAM_WORKLOAD_DATA_GENERATOR_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "spe/row.h"

namespace astream::workload {

/// Input tuple generation per Sec. 4.2.1: each tuple has a key column and
/// `num_fields` payload fields. Keys round-robin (`key <- key++ % key_max`,
/// balancing partitions); fields are uniform random in [0, fields_max).
///
/// The adversarial-tenant scenario suite (DESIGN.md §14) layers a skewed
/// key mode on top: with `zipf_s > 0` keys are drawn from a Zipf
/// distribution (rank 0 hottest, p(rank) ~ 1/(rank+1)^s) instead of the
/// balanced round-robin — the hot-key tenant mixes that concentrate state
/// and trigger work on a few groups.
class DataGenerator {
 public:
  struct Config {
    spe::Value key_max = 1000;  // paper Sec. 4.4: 1000 distinct keys
    spe::Value fields_max = 1000;
    int num_fields = 5;  // paper: an array of size 5
    /// Zipf exponent for key draws; 0 keeps the paper's round-robin keys.
    double zipf_s = 0;
  };

  DataGenerator(Config config, uint64_t seed)
      : config_(config), rng_(seed) {
    if (config_.zipf_s > 0) {
      // Inverse-CDF table over the (small) key domain, built once.
      zipf_cdf_.reserve(static_cast<size_t>(config_.key_max));
      double total = 0;
      for (spe::Value k = 0; k < config_.key_max; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), config_.zipf_s);
        zipf_cdf_.push_back(total);
      }
    }
  }

  /// The next tuple: row = [key, f0, .., f{n-1}].
  spe::Row Next() {
    std::vector<spe::Value> values;
    values.reserve(1 + config_.num_fields);
    values.push_back(NextKey());
    for (int i = 0; i < config_.num_fields; ++i) {
      values.push_back(rng_.UniformInt(0, config_.fields_max - 1));
    }
    return spe::Row(std::move(values));
  }

  const Config& config() const { return config_; }

 private:
  spe::Value NextKey() {
    if (zipf_cdf_.empty()) {
      const spe::Value key = next_key_;
      next_key_ = (next_key_ + 1) % config_.key_max;
      return key;
    }
    const double u = rng_.UniformDouble() * zipf_cdf_.back();
    const auto it =
        std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return static_cast<spe::Value>(it - zipf_cdf_.begin());
  }

  Config config_;
  Rng rng_;
  spe::Value next_key_ = 0;
  std::vector<double> zipf_cdf_;
};

/// Event-time perturbation for the bursty / late / out-of-order mixes:
/// given a monotone base time and the current watermark, produces the
/// event time actually pushed. On-time rows may be shifted back by up to
/// `ooo_max_ms` but never behind the watermark (out of order yet still
/// processable); with probability `late_probability` a row is instead
/// stamped `late_lag_ms` behind the watermark — the shared operators must
/// drop and account it, never corrupt window state.
class ArrivalPerturber {
 public:
  struct Config {
    double ooo_probability = 0;
    TimestampMs ooo_max_ms = 0;
    double late_probability = 0;
    TimestampMs late_lag_ms = 0;
  };

  ArrivalPerturber(Config config, uint64_t seed)
      : config_(config), rng_(seed) {}

  TimestampMs Perturb(TimestampMs base, TimestampMs watermark) {
    if (config_.late_probability > 0 &&
        rng_.Bernoulli(config_.late_probability) && watermark > 0) {
      return std::max<TimestampMs>(0, watermark - config_.late_lag_ms);
    }
    if (config_.ooo_probability > 0 && config_.ooo_max_ms > 0 &&
        rng_.Bernoulli(config_.ooo_probability)) {
      const TimestampMs shift = rng_.UniformInt(1, config_.ooo_max_ms);
      return std::max<TimestampMs>(watermark + 1, base - shift);
    }
    return base;
  }

 private:
  Config config_;
  Rng rng_;
};

}  // namespace astream::workload

#endif  // ASTREAM_WORKLOAD_DATA_GENERATOR_H_
