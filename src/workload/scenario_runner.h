#ifndef ASTREAM_WORKLOAD_SCENARIO_RUNNER_H_
#define ASTREAM_WORKLOAD_SCENARIO_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/astream.h"
#include "core/isolation.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace astream::workload {

/// Adversarial-tenant scenarios (DESIGN.md §14): one misbehaving tenant
/// mixed into a fleet of well-behaved ones, driven deterministically on a
/// ManualClock so the isolation machinery (metering, admission, whale
/// de-sharing) can be asserted in tests and demonstrated in the scenario
/// suite bench.
///
/// Latency proxy: wall-clock p99 is meaningless under a ManualClock, so
/// the runner samples the *shared-plan work* executed per driver tick —
/// the delta of CollectStats().bitset_ops + join_pairs_computed +
/// selection_records_in on the PRIMARY job only (an ejected whale's
/// dedicated job is deliberately excluded: its work no longer delays the
/// minnows). Every count is deterministic in sync mode, so "the whale mix
/// violates the minnow p99 budget without isolation and meets it with
/// admission + de-sharing on" is an exact, replayable assertion.
struct ScenarioSpec {
  enum class Mix {
    kChurnStorm,    // batch create/delete against tight admission caps
    kZipfSkew,      // hot-key tenant concentrating state on few groups
    kWhaleMinnows,  // one huge-window tenant amid small tumbling windows
    kBurstyOoo,     // bursts + late + out-of-order arrivals
  };
  Mix mix = Mix::kWhaleMinnows;
  uint64_t seed = 1;

  /// Drive: `ticks = duration_ms / tick_ms` rounds; each pushes
  /// `rows_per_tick` stream-A tuples and advances the watermark to
  /// `now - watermark_lag_ms`.
  TimestampMs duration_ms = 4000;
  TimestampMs tick_ms = 50;
  int rows_per_tick = 40;
  TimestampMs watermark_lag_ms = 100;

  /// Data shape (zipf_s > 0 = hot keys) and arrival perturbation.
  DataGenerator::Config data;
  ArrivalPerturber::Config arrival;
  /// Every `burst_every_ticks`-th tick pushes `burst_multiplier` x rows
  /// (0 = no bursts).
  int burst_every_ticks = 0;
  int burst_multiplier = 1;

  /// Tenants: `minnows` small tumbling-window aggregations, plus one
  /// whale (long overlapping window, pass-all predicate) when `whale`.
  int minnows = 6;
  TimestampMs minnow_window_ms = 400;
  bool whale = false;
  TimestampMs whale_window_ms = 3200;
  TimestampMs whale_slide_ms = 100;
  /// Churn: every `churn_period_ms`, cancel the oldest `churn_batch`
  /// churned queries and submit `churn_batch` fresh ones (0 = no churn).
  int churn_batch = 0;
  TimestampMs churn_period_ms = 0;

  /// Policy under test. `isolation` routes the job through an
  /// IsolationManager and polls Maintain() every tick.
  core::SloOptions slo;
  bool isolation = false;
  bool meter_costs = false;
  int64_t memory_budget_bytes = -1;  // force-unlimited unless overridden

  /// Minnow SLO: p99 over ticks of the shared-plan work proxy must stay
  /// at or under this budget (0 = no assertion).
  int64_t tick_work_p99_budget = 0;
  /// Ticks excluded from the p99 (steady state only): the policy needs a
  /// few metering rounds to detect and eject a whale, and an SLO is a
  /// statement about the fleet once the policy has reacted. max/mean are
  /// still reported over the full run.
  int p99_warmup_ticks = 0;
};

struct ScenarioReport {
  bool ok = false;          // ran to completion, job stayed healthy
  bool slo_met = true;      // the tick-work p99 assertion specifically
  std::string error;        // first failure when !ok

  int64_t rows_pushed = 0;
  int64_t outputs = 0;
  int64_t late_drops = 0;

  /// Shared-plan work proxy over ticks (see ScenarioSpec).
  int64_t p99_tick_work = 0;
  int64_t max_tick_work = 0;
  double mean_tick_work = 0;
  std::vector<int64_t> tick_work;

  /// Admission / de-sharing outcomes.
  int64_t submitted = 0;
  int64_t admission_rejected = 0;
  int64_t admission_queued = 0;
  int64_t desharings = 0;
  core::QueryId whale_id = -1;
  bool whale_ejected = false;
  int eject_tick = -1;  // first tick with a de-sharing observed

  /// Engine-side `admission.*` counters and gauges from the metrics
  /// registry at end of run — the control-plane truth the per-submit
  /// tallies above must agree with.
  std::map<std::string, int64_t> admission_metrics;

  std::map<core::QueryId, int64_t> outputs_per_query;
};

/// Runs one ScenarioSpec to completion. Deterministic: same spec + seed =>
/// same report (work counts, outputs, admission decisions).
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {}

  /// The canonical specs the suite bench and the tier-1 tests share.
  /// Presets run with isolation OFF (the baseline); EnableIsolation turns
  /// on the admission + de-sharing policy tuned for that preset.
  static ScenarioSpec Preset(ScenarioSpec::Mix mix, uint64_t seed);
  static void EnableIsolation(ScenarioSpec* spec);

  Result<ScenarioReport> Run();

  static const char* MixName(ScenarioSpec::Mix mix);

 private:
  ScenarioSpec spec_;
};

}  // namespace astream::workload

#endif  // ASTREAM_WORKLOAD_SCENARIO_RUNNER_H_
