#include "workload/scenario.h"

namespace astream::workload {

size_t ComplexTimelineScenario::TargetAt(double frac) const {
  // Shape of Fig. 16's bottom panel (query count over time), normalized:
  //  - sharp jump to 20*s at ~4% and to 60*s at ~15%,
  //  - gradual decrease to 10*s until ~55%, gradual increase to 70*s
  //    until ~82%,
  //  - fluctuation between 30*s and 70*s afterwards.
  const double s = scale_;
  if (frac < 0.04) return 0;
  if (frac < 0.15) return static_cast<size_t>(20 * s);
  if (frac < 0.30) return static_cast<size_t>(60 * s);
  if (frac < 0.55) {
    const double t = (frac - 0.30) / 0.25;  // 60 -> 10
    return static_cast<size_t>((60 - 50 * t) * s);
  }
  if (frac < 0.82) {
    const double t = (frac - 0.55) / 0.27;  // 10 -> 70
    return static_cast<size_t>((10 + 60 * t) * s);
  }
  // Fluctuate: square wave with ~6 cycles over the remaining time.
  const double t = (frac - 0.82) / 0.18;
  const bool high = static_cast<int>(t * 12) % 2 == 0;
  return static_cast<size_t>((high ? 70 : 30) * s);
}

ScenarioActions ComplexTimelineScenario::Tick(TimestampMs now_ms,
                                              size_t active) {
  ScenarioActions a;
  const double frac =
      std::min(1.0, static_cast<double>(now_ms) / duration_);
  const size_t target = TargetAt(frac);
  if (target > active) {
    a.create = static_cast<int>(target - active);
  } else if (target < active) {
    const size_t excess = active - target;
    for (size_t i = 0; i < excess; ++i) a.delete_ranks.push_back(i);
  }
  return a;
}

}  // namespace astream::workload
