#ifndef ASTREAM_WORKLOAD_SCENARIO_H_
#define ASTREAM_WORKLOAD_SCENARIO_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/clock.h"

namespace astream::workload {

/// What a scenario asks the driver to do at one tick: create some queries
/// and/or delete some of the currently active ones (by age rank: 0 =
/// oldest).
struct ScenarioActions {
  int create = 0;
  std::vector<size_t> delete_ranks;
};

/// A query churn schedule (Fig. 6). The driver calls Tick with the current
/// experiment-relative time and the number of active queries.
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual ScenarioActions Tick(TimestampMs now_ms, size_t active) = 0;
};

/// SC1 (Sec. 4.4.1): many long-running queries. Creates `rate_per_sec`
/// queries per second until `max_parallel` are active, then no churn
/// ("n q/s m qp").
class Sc1Scenario : public Scenario {
 public:
  Sc1Scenario(double rate_per_sec, size_t max_parallel)
      : rate_per_sec_(rate_per_sec), max_parallel_(max_parallel) {}

  ScenarioActions Tick(TimestampMs now_ms, size_t active) override {
    ScenarioActions a;
    const auto target = static_cast<size_t>(
        std::min<double>(static_cast<double>(max_parallel_),
                         rate_per_sec_ * now_ms / 1000.0));
    if (target > created_) {
      a.create = static_cast<int>(target - created_);
      created_ = target;
    }
    (void)active;
    return a;
  }

 private:
  double rate_per_sec_;
  size_t max_parallel_;
  size_t created_ = 0;
};

/// SC2 (Sec. 4.4.1): high query churn, short-running queries. Every
/// `period_ms`, deletes the previous batch of `batch` queries and creates
/// `batch` new ones ("n q / m s").
class Sc2Scenario : public Scenario {
 public:
  Sc2Scenario(size_t batch, TimestampMs period_ms)
      : batch_(batch), period_ms_(period_ms) {}

  ScenarioActions Tick(TimestampMs now_ms, size_t active) override {
    ScenarioActions a;
    const int64_t period = now_ms / period_ms_;
    if (period >= next_period_) {
      next_period_ = period + 1;
      // Delete the oldest `batch` queries (the previous generation).
      const size_t deletable = std::min(batch_, active);
      for (size_t i = 0; i < deletable; ++i) a.delete_ranks.push_back(i);
      a.create = static_cast<int>(batch_);
    }
    return a;
  }

 private:
  size_t batch_;
  TimestampMs period_ms_;
  int64_t next_period_ = 0;
};

/// The Fig. 16 complex-query schedule: sharp increases, a gradual decrease
/// and increase, then fluctuation. Times are fractions of `duration_ms` so
/// the schedule scales with the experiment length.
class ComplexTimelineScenario : public Scenario {
 public:
  explicit ComplexTimelineScenario(TimestampMs duration_ms, double scale = 1.0)
      : duration_(duration_ms), scale_(scale) {}

  ScenarioActions Tick(TimestampMs now_ms, size_t active) override;

 private:
  size_t TargetAt(double frac) const;

  TimestampMs duration_;
  double scale_;
};

}  // namespace astream::workload

#endif  // ASTREAM_WORKLOAD_SCENARIO_H_
