#include "workload/scenario_runner.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace astream::workload {

namespace {

/// A well-behaved tenant: selective predicate, small tumbling window.
core::QueryDescriptor Minnow(int index, TimestampMs window_ms) {
  core::QueryDescriptor d;
  d.kind = core::QueryKind::kAggregation;
  d.select_a = {core::Predicate{1 + (index % 5), core::CmpOp::kLt, 500}};
  d.window = spe::WindowSpec::Tumbling(window_ms);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

/// The adversary: pass-all predicate over a long window with a short
/// slide — every slide re-triggers a window spanning many slices, so its
/// trigger work and state dwarf the minnows'.
core::QueryDescriptor Whale(TimestampMs window_ms, TimestampMs slide_ms) {
  core::QueryDescriptor d;
  d.kind = core::QueryKind::kAggregation;
  d.select_a = {core::Predicate{1, core::CmpOp::kGe, 0}};
  d.window = spe::WindowSpec::Sliding(window_ms, slide_ms);
  d.agg = {spe::AggKind::kSum, 1};
  return d;
}

QueryGenerator::Config ChurnQueryConfig(const ScenarioSpec& spec) {
  QueryGenerator::Config cfg;
  cfg.num_fields = spec.data.num_fields;
  cfg.fields_max = spec.data.fields_max;
  cfg.window_min = 200;
  cfg.window_max = 600;
  cfg.predicates_per_side = 1;
  cfg.slide_min_frac = 0.5;
  return cfg;
}

}  // namespace

const char* ScenarioRunner::MixName(ScenarioSpec::Mix mix) {
  switch (mix) {
    case ScenarioSpec::Mix::kChurnStorm:
      return "churn-storm";
    case ScenarioSpec::Mix::kZipfSkew:
      return "zipf-skew";
    case ScenarioSpec::Mix::kWhaleMinnows:
      return "whale-minnows";
    case ScenarioSpec::Mix::kBurstyOoo:
      return "bursty-ooo";
  }
  return "unknown";
}

ScenarioSpec ScenarioRunner::Preset(ScenarioSpec::Mix mix, uint64_t seed) {
  ScenarioSpec spec;
  spec.mix = mix;
  spec.seed = seed;
  switch (mix) {
    case ScenarioSpec::Mix::kChurnStorm:
      spec.duration_ms = 2000;
      spec.rows_per_tick = 20;
      spec.minnows = 4;
      spec.churn_batch = 8;
      spec.churn_period_ms = 200;
      break;
    case ScenarioSpec::Mix::kZipfSkew:
      spec.duration_ms = 3000;
      spec.minnows = 8;
      spec.data.key_max = 100;
      spec.data.zipf_s = 1.1;
      spec.meter_costs = true;
      break;
    case ScenarioSpec::Mix::kWhaleMinnows:
      spec.duration_ms = 4000;
      spec.minnows = 6;
      spec.whale = true;
      // Short enough that the whale's per-slide trigger storm is
      // sustained through the second half of the run (first window end
      // at ~1600 ms), long enough to dwarf the minnows' 400 ms windows.
      spec.whale_window_ms = 1600;
      // Slide = half a tick: two trigger storms per tick, each scanning
      // window/slide = 32 slices for every key — the whale's cost in the
      // shared plan dwarfs the minnows' instead of merely exceeding it.
      spec.whale_slide_ms = 25;
      // The whale only *becomes* a whale once its first window triggers
      // (~tick 32); the policy needs a metering round to see that cost
      // and a few ticks to drain the ejection checkpoint, so steady
      // state starts around tick 40 of 80.
      spec.p99_warmup_ticks = 44;
      break;
    case ScenarioSpec::Mix::kBurstyOoo:
      spec.duration_ms = 3000;
      spec.rows_per_tick = 30;
      spec.minnows = 5;
      spec.watermark_lag_ms = 150;
      spec.arrival.ooo_probability = 0.3;
      spec.arrival.ooo_max_ms = 80;
      spec.arrival.late_probability = 0.08;
      spec.arrival.late_lag_ms = 400;
      spec.burst_every_ticks = 7;
      spec.burst_multiplier = 5;
      break;
  }
  return spec;
}

void ScenarioRunner::EnableIsolation(ScenarioSpec* spec) {
  spec->isolation = true;
  spec->slo.enable_admission = true;
  switch (spec->mix) {
    case ScenarioSpec::Mix::kChurnStorm:
      // Tight caps so the storm exercises queueing AND rejection: each
      // 8-query churn round fills the 4 free slots, then the 2-deep
      // queue, and the last submits overflow into rejection.
      spec->slo.max_active_queries = 8;
      spec->slo.max_queued = 2;
      break;
    case ScenarioSpec::Mix::kWhaleMinnows:
      // p99 target 1 ms: under the ManualClock the event-time latency of
      // every emitted window is at least the watermark lag, so the gate
      // reads "violated" whenever outputs flow — detection then turns
      // purely on the deterministic metered cost share.
      spec->slo.enable_desharing = true;
      spec->slo.p99_event_latency_ms = 1;
      spec->slo.whale_cost_fraction = 0.35;
      spec->slo.whale_min_cost = 50;
      break;
    case ScenarioSpec::Mix::kZipfSkew:
    case ScenarioSpec::Mix::kBurstyOoo:
      spec->slo.max_active_queries = 64;
      break;
  }
}

Result<ScenarioReport> ScenarioRunner::Run() {
  ScenarioReport report;
  ManualClock clock;

  core::AStreamJob::Options options;
  options.topology = core::AStreamJob::TopologyKind::kAggregation;
  options.parallelism = 1;
  options.threaded = false;  // deterministic work counts
  options.clock = &clock;
  options.session.batch_size = 1;
  options.enable_trace = false;
  options.slo = spec_.slo;
  options.meter_costs = spec_.meter_costs;
  options.storage.memory_budget_bytes = spec_.memory_budget_bytes;
  ASTREAM_ASSIGN_OR_RETURN(std::unique_ptr<core::AStreamJob> job,
                           core::AStreamJob::Create(options));
  ASTREAM_RETURN_IF_ERROR(job->Start());

  std::unique_ptr<core::IsolationManager> iso;
  if (spec_.isolation) {
    iso = std::make_unique<core::IsolationManager>(job.get());
  }

  const auto callback = [&report](core::QueryId id, const spe::Record&) {
    ++report.outputs;
    ++report.outputs_per_query[id];
  };
  if (iso != nullptr) {
    iso->SetResultCallback(callback);
  } else {
    job->SetResultCallback(callback);
  }

  const auto submit = [&](const core::QueryDescriptor& desc)
      -> Result<core::QueryId> {
    ++report.submitted;
    auto outcome_or = iso != nullptr ? iso->SubmitWithOutcome(desc)
                                     : job->SubmitWithOutcome(desc);
    ASTREAM_RETURN_IF_ERROR(outcome_or.status());
    const core::AStreamJob::SubmitOutcome& outcome = outcome_or.value();
    if (outcome.decision == core::AdmissionDecision::kQueued) {
      ++report.admission_queued;
    } else if (outcome.decision == core::AdmissionDecision::kRejected) {
      ++report.admission_rejected;
    }
    return outcome.id;
  };
  const auto cancel = [&](core::QueryId id) {
    return iso != nullptr ? iso->Cancel(id) : job->Cancel(id);
  };
  const auto push = [&](TimestampMs t, spe::Row row) {
    return iso != nullptr ? iso->PushA(t, std::move(row))
                          : job->PushA(t, std::move(row));
  };
  const auto push_watermark = [&](TimestampMs wm) {
    if (iso != nullptr) {
      iso->PushWatermark(wm);
    } else {
      job->PushWatermark(wm);
    }
  };
  const auto pump = [&] {
    if (iso != nullptr) {
      iso->Pump(true);
    } else {
      job->Pump(true);
    }
  };

  // Tenants.
  clock.SetMs(0);
  for (int i = 0; i < spec_.minnows; ++i) {
    ASTREAM_RETURN_IF_ERROR(
        submit(Minnow(i, spec_.minnow_window_ms)).status());
  }
  if (spec_.whale) {
    ASTREAM_ASSIGN_OR_RETURN(
        report.whale_id,
        submit(Whale(spec_.whale_window_ms, spec_.whale_slide_ms)));
  }
  pump();

  DataGenerator data(spec_.data, spec_.seed);
  ArrivalPerturber arrival(spec_.arrival, spec_.seed ^ 0x9e3779b97f4a7c15ULL);
  QueryGenerator churn_gen(ChurnQueryConfig(spec_),
                           spec_.seed ^ 0xd1b54a32d192ed03ULL);
  std::vector<core::QueryId> churned;

  const auto shared_work = [&] {
    // Primary job only: an ejected whale's dedicated job no longer delays
    // the minnows, so its work is excluded from the latency proxy.
    const core::AStreamJob::OperatorStats s = job->CollectStats();
    return s.bitset_ops + s.join_pairs_computed + s.selection_records_in;
  };

  const int ticks =
      static_cast<int>(spec_.duration_ms / std::max<TimestampMs>(
                                               1, spec_.tick_ms));
  TimestampMs last_wm = 0;
  int64_t prev_work = shared_work();
  for (int tick = 0; tick < ticks; ++tick) {
    const TimestampMs now = (tick + 1) * spec_.tick_ms;
    clock.SetMs(now);

    if (spec_.churn_batch > 0 && spec_.churn_period_ms > 0 &&
        now % spec_.churn_period_ms == 0) {
      const size_t kill = std::min(churned.size(),
                                   static_cast<size_t>(spec_.churn_batch));
      for (size_t i = 0; i < kill; ++i) {
        ASTREAM_RETURN_IF_ERROR(cancel(churned[i]));
      }
      churned.erase(churned.begin(),
                    churned.begin() + static_cast<long>(kill));
      for (int i = 0; i < spec_.churn_batch; ++i) {
        ASTREAM_ASSIGN_OR_RETURN(const core::QueryId id,
                                 submit(churn_gen.Aggregation()));
        if (id != -1) churned.push_back(id);  // admitted or queued
      }
    }

    int rows = spec_.rows_per_tick;
    if (spec_.burst_every_ticks > 0 &&
        (tick + 1) % spec_.burst_every_ticks == 0) {
      rows *= spec_.burst_multiplier;
    }
    for (int i = 0; i < rows; ++i) {
      const TimestampMs base =
          now - spec_.tick_ms + 1 +
          (static_cast<TimestampMs>(i) * spec_.tick_ms) / std::max(rows, 1);
      const TimestampMs et = arrival.Perturb(base, last_wm);
      push(et, data.Next());
      ++report.rows_pushed;
    }

    const TimestampMs wm = now - spec_.watermark_lag_ms;
    if (wm > last_wm) {
      push_watermark(wm);
      last_wm = wm;
    }
    pump();
    if (iso != nullptr) {
      ASTREAM_RETURN_IF_ERROR(iso->Maintain());
      if (report.eject_tick < 0 && iso->desharings() > 0) {
        report.eject_tick = tick;
      }
    }

    const int64_t work = shared_work();
    report.tick_work.push_back(work - prev_work);
    prev_work = work;
    ASTREAM_RETURN_IF_ERROR(job->Health());
  }

  // Drain every open window (including the whale's, wherever it lives).
  const TimestampMs final_wm =
      spec_.duration_ms + spec_.whale_window_ms + spec_.minnow_window_ms +
      spec_.watermark_lag_ms + spec_.tick_ms;
  clock.SetMs(final_wm);
  push_watermark(final_wm);
  pump();
  ASTREAM_RETURN_IF_ERROR(job->FinishAndWait());

  const core::AStreamJob::OperatorStats stats = job->CollectStats();
  report.late_drops = stats.records_late;
  if (iso != nullptr) {
    report.desharings = iso->desharings();
    report.whale_ejected = report.desharings > 0;
  }
  {
    const auto snapshot = job->MetricsSnapshot();
    for (const auto& [name, value] : snapshot.counters) {
      if (name.rfind("admission.", 0) == 0) {
        report.admission_metrics[name] = value;
      }
    }
    for (const auto& [name, value] : snapshot.gauges) {
      if (name.rfind("admission.", 0) == 0) {
        report.admission_metrics[name] = value;
      }
    }
  }

  if (!report.tick_work.empty()) {
    std::vector<int64_t> sorted = report.tick_work;
    std::sort(sorted.begin(), sorted.end());
    report.max_tick_work = sorted.back();
    report.mean_tick_work =
        static_cast<double>(std::accumulate(sorted.begin(), sorted.end(),
                                            int64_t{0})) /
        static_cast<double>(sorted.size());
    // p99 over steady state only (see p99_warmup_ticks).
    const size_t skip = std::min(
        static_cast<size_t>(std::max(spec_.p99_warmup_ticks, 0)),
        report.tick_work.size() - 1);
    std::vector<int64_t> tail(report.tick_work.begin() +
                                  static_cast<long>(skip),
                              report.tick_work.end());
    std::sort(tail.begin(), tail.end());
    report.p99_tick_work = tail[(tail.size() - 1) * 99 / 100];
  }
  report.slo_met = spec_.tick_work_p99_budget == 0 ||
                   report.p99_tick_work <= spec_.tick_work_p99_budget;
  report.ok = job->Health().ok();
  return report;
}

}  // namespace astream::workload
