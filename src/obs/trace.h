#ifndef ASTREAM_OBS_TRACE_H_
#define ASTREAM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace astream::obs {

/// Structured lifecycle events of one ad-hoc query, submit to cancel.
/// `kChangelogFlush` and `kCheckpoint` are job-level (query = -1).
enum class TraceEventKind : uint8_t {
  kSubmit,          // Submit() accepted the descriptor; detail = epoch hint
  kChangelogFlush,  // a changelog batch entered the streams; detail = epoch
  kDeployAck,       // every router applied the query's changelog;
                    // detail = deploy latency (ms)
  kFirstResult,     // the first result record reached the sink;
                    // detail = event-time latency (ms)
  kCancel,           // Cancel() accepted the deletion request
  kCheckpoint,       // a checkpoint barrier was injected; detail = id
  kFinish,           // FinishAndWait() drained the job
  kFailureDetected,  // a task failure was detected; detail = attempt count
  kRecoveryStart,    // a recovery attempt began; detail = attempt index
  kRecoveryDone,     // recovery completed; detail = latency (ms)
  kSpill,            // a store spilled a run to disk; detail = run bytes
  kReload,           // a spilled run was opened for reading; detail = bytes
};

const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  /// Monotonic microseconds since the sink's construction.
  int64_t ts_us = 0;
  /// Query id, or -1 for job-level events.
  int64_t query = -1;
  TraceEventKind kind = TraceEventKind::kSubmit;
  /// Kind-specific payload (latency ms, epoch, checkpoint id).
  int64_t detail = 0;
};

/// Collects lifecycle events with monotonic timestamps and renders them as
/// JSON-lines:
///   {"ts_us":1234,"event":"submit","query":7,"detail":0}
/// Thread-safe; a disabled sink drops events at the cost of one branch.
/// Bounded: beyond `capacity` events new ones are counted but not stored.
class TraceSink {
 public:
  explicit TraceSink(bool enabled = true, size_t capacity = 1 << 20);

  bool enabled() const { return enabled_; }

  void Record(TraceEventKind kind, int64_t query = -1, int64_t detail = 0);

  std::vector<TraceEvent> Events() const;
  size_t size() const;
  /// Events dropped because the sink was at capacity.
  int64_t dropped() const;

  /// One JSON object per line, in record order.
  std::string ToJsonLines() const;

  /// Writes ToJsonLines() to a file (overwrites).
  Status DumpTo(const std::string& path) const;

 private:
  int64_t NowMicros() const;

  const bool enabled_;
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  int64_t dropped_ = 0;
};

}  // namespace astream::obs

#endif  // ASTREAM_OBS_TRACE_H_
