#include "obs/trace.h"

#include <cstdio>

namespace astream::obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmit:
      return "submit";
    case TraceEventKind::kChangelogFlush:
      return "changelog_flush";
    case TraceEventKind::kDeployAck:
      return "deploy_ack";
    case TraceEventKind::kFirstResult:
      return "first_result";
    case TraceEventKind::kCancel:
      return "cancel";
    case TraceEventKind::kCheckpoint:
      return "checkpoint";
    case TraceEventKind::kFinish:
      return "finish";
    case TraceEventKind::kFailureDetected:
      return "failure_detected";
    case TraceEventKind::kRecoveryStart:
      return "recovery_start";
    case TraceEventKind::kRecoveryDone:
      return "recovery_done";
    case TraceEventKind::kSpill:
      return "spill";
    case TraceEventKind::kReload:
      return "reload";
  }
  return "unknown";
}

TraceSink::TraceSink(bool enabled, size_t capacity)
    : enabled_(enabled),
      capacity_(capacity),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceSink::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSink::Record(TraceEventKind kind, int64_t query, int64_t detail) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.ts_us = NowMicros();
  ev.query = query;
  ev.kind = kind;
  ev.detail = detail;
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

int64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceSink::ToJsonLines() const {
  std::vector<TraceEvent> events = Events();
  std::string out;
  out.reserve(events.size() * 64);
  char line[160];
  for (const TraceEvent& ev : events) {
    std::snprintf(line, sizeof(line),
                  "{\"ts_us\":%lld,\"event\":\"%s\",\"query\":%lld,"
                  "\"detail\":%lld}\n",
                  static_cast<long long>(ev.ts_us),
                  TraceEventKindName(ev.kind),
                  static_cast<long long>(ev.query),
                  static_cast<long long>(ev.detail));
    out += line;
  }
  return out;
}

Status TraceSink::DumpTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  const std::string lines = ToJsonLines();
  const size_t written = std::fwrite(lines.data(), 1, lines.size(), f);
  std::fclose(f);
  if (written != lines.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace astream::obs
