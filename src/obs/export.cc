#include "obs/export.h"

#include <cstdarg>
#include <cstdio>

namespace astream::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

void AppendHistogramText(std::string* out, const std::string& name,
                         const Histogram::Snapshot& h) {
  AppendF(out,
          "%-40s count=%lld mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%lld\n",
          name.c_str(), static_cast<long long>(h.count), h.mean(),
          h.Percentile(50), h.Percentile(95), h.Percentile(99),
          static_cast<long long>(h.max));
}

void AppendHistogramJson(std::string* out, const Histogram::Snapshot& h) {
  AppendF(out,
          "{\"count\":%lld,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
          "\"mean\":%.2f,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
          static_cast<long long>(h.count), static_cast<long long>(h.sum),
          static_cast<long long>(h.min), static_cast<long long>(h.max),
          h.mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99));
}

}  // namespace

std::string ExportText(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    AppendF(&out, "%-40s %lld\n", name.c_str(), static_cast<long long>(v));
  }
  for (const auto& [name, v] : snapshot.gauges) {
    AppendF(&out, "%-40s %lld\n", name.c_str(), static_cast<long long>(v));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    AppendHistogramText(&out, name, h);
  }
  for (const auto& [id, q] : snapshot.queries) {
    AppendF(&out,
            "query %-5lld emitted=%lld late=%lld reused=%lld computed=%lld\n",
            static_cast<long long>(id),
            static_cast<long long>(q.records_emitted),
            static_cast<long long>(q.late_drops),
            static_cast<long long>(q.slices_reused),
            static_cast<long long>(q.slices_computed));
    AppendHistogramText(&out, "  event_latency_ms", q.event_latency_ms);
    AppendHistogramText(&out, "  deploy_latency_ms", q.deploy_latency_ms);
  }
  return out;
}

std::string ExportJson(const MetricsRegistry::Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    AppendF(&out, "%s\"%s\":%lld", first ? "" : ",", name.c_str(),
            static_cast<long long>(v));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    AppendF(&out, "%s\"%s\":%lld", first ? "" : ",", name.c_str(),
            static_cast<long long>(v));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    AppendF(&out, "%s\"%s\":", first ? "" : ",", name.c_str());
    AppendHistogramJson(&out, h);
    first = false;
  }
  out += "},\"queries\":{";
  first = true;
  for (const auto& [id, q] : snapshot.queries) {
    AppendF(&out,
            "%s\"%lld\":{\"records_emitted\":%lld,\"late_drops\":%lld,"
            "\"slices_reused\":%lld,\"slices_computed\":%lld,"
            "\"event_latency_ms\":",
            first ? "" : ",", static_cast<long long>(id),
            static_cast<long long>(q.records_emitted),
            static_cast<long long>(q.late_drops),
            static_cast<long long>(q.slices_reused),
            static_cast<long long>(q.slices_computed));
    AppendHistogramJson(&out, q.event_latency_ms);
    out += ",\"deploy_latency_ms\":";
    AppendHistogramJson(&out, q.deploy_latency_ms);
    out += "}";
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace astream::obs
