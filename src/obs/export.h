#ifndef ASTREAM_OBS_EXPORT_H_
#define ASTREAM_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace astream::obs {

/// Human-readable dump: one `name value` line per counter/gauge, one
/// `name count/mean/p50/p95/p99/max` line per histogram, then a per-query
/// block. Intended for bench output and consoles.
std::string ExportText(const MetricsRegistry::Snapshot& snapshot);

/// One JSON document with "counters", "gauges", "histograms" (count, sum,
/// min, max, p50, p95, p99) and "queries" keyed by query id. Bucket arrays
/// are omitted — percentiles are precomputed so downstream dashboards need
/// no knowledge of the bucket layout.
std::string ExportJson(const MetricsRegistry::Snapshot& snapshot);

}  // namespace astream::obs

#endif  // ASTREAM_OBS_EXPORT_H_
