#include "obs/metrics.h"

#include <algorithm>

namespace astream::obs {

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  // floor(log2(value)) + 1 clamped into the overflow bucket: value 1 ->
  // bucket 1 ([1,2)), value 2..3 -> bucket 2 ([2,4)), ...
  const int log2 = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  return std::min(log2 + 1, kNumBuckets - 1);
}

int64_t Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0;
  return int64_t{1} << (index - 1);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 1;
  if (index >= kNumBuckets - 1) return INT64_MAX;
  return int64_t{1} << index;
}

void Histogram::Record(int64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS: contended only while a new extreme is being set,
  // which stops happening once the distribution's tails are seen.
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Target rank in [0, count-1]; walk buckets to the one containing it and
  // interpolate linearly inside the bucket's value range.
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (rank < static_cast<double>(seen + buckets[b])) {
      const double frac =
          buckets[b] == 1
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(buckets[b] - 1);
      const double lo = static_cast<double>(BucketLowerBound(b));
      // The overflow bucket has no finite upper edge; interpolate toward
      // the observed max instead.
      const double hi =
          b >= kNumBuckets - 1
              ? static_cast<double>(max)
              : static_cast<double>(BucketUpperBound(b) - 1);
      const double v = lo + frac * std::max(0.0, hi - lo);
      return std::clamp(v, static_cast<double>(min),
                        static_cast<double>(max));
    }
    seen += buckets[b];
  }
  return static_cast<double>(max);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

QuerySeries* MetricsRegistry::SeriesFor(int64_t query_id) {
  if (!enabled_) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = series_[query_id];
  if (slot == nullptr) slot = std::make_unique<QuerySeries>();
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->TakeSnapshot();
  }
  for (const auto& [id, q] : series_) {
    QuerySeriesSnapshot qs;
    qs.records_emitted = q->records_emitted.Value();
    qs.late_drops = q->late_drops.Value();
    qs.slices_reused = q->slices_reused.Value();
    qs.slices_computed = q->slices_computed.Value();
    qs.cost_rows = q->cost_rows.Value();
    qs.cost_cpu_nanos = q->cost_cpu_nanos.Value();
    qs.cost_state_bytes = q->cost_state_bytes.Value();
    qs.event_latency_ms = q->event_latency_ms.TakeSnapshot();
    qs.deploy_latency_ms = q->deploy_latency_ms.TakeSnapshot();
    s.queries[id] = std::move(qs);
  }
  return s;
}

void MergeInto(Histogram::Snapshot* into, const Histogram::Snapshot& from) {
  if (from.count == 0) return;
  if (into->count == 0) {
    *into = from;
    return;
  }
  into->count += from.count;
  into->sum += from.sum;
  into->min = std::min(into->min, from.min);
  into->max = std::max(into->max, from.max);
  for (size_t i = 0; i < into->buckets.size(); ++i) {
    into->buckets[i] += from.buckets[i];
  }
}

MetricsRegistry::Snapshot MergeSnapshots(
    const std::vector<MetricsRegistry::Snapshot>& snapshots) {
  MetricsRegistry::Snapshot merged;
  for (const MetricsRegistry::Snapshot& s : snapshots) {
    for (const auto& [name, v] : s.counters) merged.counters[name] += v;
    for (const auto& [name, v] : s.gauges) merged.gauges[name] += v;
    for (const auto& [name, h] : s.histograms) {
      MergeInto(&merged.histograms[name], h);
    }
    for (const auto& [id, q] : s.queries) {
      MetricsRegistry::QuerySeriesSnapshot& into = merged.queries[id];
      into.records_emitted += q.records_emitted;
      into.late_drops += q.late_drops;
      into.slices_reused += q.slices_reused;
      into.slices_computed += q.slices_computed;
      into.cost_rows += q.cost_rows;
      into.cost_cpu_nanos += q.cost_cpu_nanos;
      into.cost_state_bytes += q.cost_state_bytes;
      MergeInto(&into.event_latency_ms, q.event_latency_ms);
      MergeInto(&into.deploy_latency_ms, q.deploy_latency_ms);
    }
  }
  return merged;
}

}  // namespace astream::obs
