#ifndef ASTREAM_OBS_METRICS_H_
#define ASTREAM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace astream::obs {

/// Monotonic event counter. Increments are relaxed atomics — safe from any
/// task thread, no lock, no fence on the hot path.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, active-query counts).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed latency histogram: fixed power-of-two buckets, atomic
/// increments on the record path, snapshot-on-read. Bucket b covers
///   b == 0:                 value <= 0  (clamped; latencies are >= 0)
///   0 < b < kNumBuckets-1:  [2^(b-1), 2^b)
///   b == kNumBuckets-1:     [2^(kNumBuckets-2), +inf)   (overflow bucket)
/// With kNumBuckets = 48 the last finite boundary is 2^46 ms (~2000 years),
/// so the overflow bucket only catches corrupted timestamps.
class Histogram {
 public:
  static constexpr int kNumBuckets = 48;

  /// The bucket a value lands in (see class comment).
  static int BucketIndex(int64_t value);
  /// Inclusive lower bound of a bucket (0 for bucket 0).
  static int64_t BucketLowerBound(int index);
  /// Exclusive upper bound of a bucket (INT64_MAX for the overflow bucket).
  static int64_t BucketUpperBound(int index);

  void Record(int64_t value);

  /// A consistent-enough copy of the histogram (buckets are read with
  /// relaxed loads; concurrent writers may be mid-update, which shifts a
  /// percentile by at most one observation).
  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    std::array<int64_t, kNumBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
    /// p in [0, 100]. Linear interpolation inside the target bucket; the
    /// result is clamped to [min, max] so small samples stay exact-ish.
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// The fixed per-query series AStream records (see DESIGN.md
/// "Observability"): all counters/histograms a shared operator touches for
/// one query live in one cache-friendly struct with a stable address.
struct QuerySeries {
  /// Records the router shipped to this query's output channel.
  Counter records_emitted;
  /// Records dropped late (behind the watermark) that carried this
  /// query's tag at a shared join/aggregation.
  Counter late_drops;
  /// Shared slice results this query consumed without recomputation
  /// (join memo hits + aggregation slice partials combined).
  Counter slices_reused;
  /// Slice results computed on this query's behalf (join memo misses).
  Counter slices_computed;
  /// Wall-minus-event-time of each emitted record, at the router (ms).
  Histogram event_latency_ms;
  /// Deploy latency of this query's create/delete requests (ms).
  Histogram deploy_latency_ms;
  /// Cost metering (DESIGN.md §14): rows a shared operator processed on
  /// this query's behalf (per set tag bit at ingest / per matched
  /// predicate at the selection). Recorded only with Options::meter_costs.
  Counter cost_rows;
  /// CPU nanoseconds of window triggers attributed to this query (a
  /// trigger shared by k queries bills each query 1/k of the wall time).
  Counter cost_cpu_nanos;
  /// Resident state bytes apportioned to this query by window-span share
  /// of its operators' arenas. Refreshed by MetricsSnapshot().
  Gauge cost_state_bytes;
  /// Set once, by whichever sink sees the query's first result.
  std::atomic<bool> first_result_seen{false};
};

/// Registry of named metrics plus per-query series. Registration and
/// snapshotting take a mutex; the returned Counter/Gauge/Histogram/
/// QuerySeries pointers are stable for the registry's lifetime, so hot
/// paths cache them and never touch the lock — recording is lock-free.
///
/// A disabled registry hands out nullptr series and instruments nothing;
/// operators guard with a single `if (ptr)` branch per record.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Find-or-create by name. Never returns nullptr (even disabled — named
  /// metrics are cheap and callers hold the pointer behind their own
  /// enabled-guard anyway).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Find-or-create the series of one query id. Returns nullptr when the
  /// registry is disabled.
  QuerySeries* SeriesFor(int64_t query_id);

  struct QuerySeriesSnapshot {
    int64_t records_emitted = 0;
    int64_t late_drops = 0;
    int64_t slices_reused = 0;
    int64_t slices_computed = 0;
    int64_t cost_rows = 0;
    int64_t cost_cpu_nanos = 0;
    int64_t cost_state_bytes = 0;
    Histogram::Snapshot event_latency_ms;
    Histogram::Snapshot deploy_latency_ms;
  };
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
    std::map<int64_t, QuerySeriesSnapshot> queries;
  };
  Snapshot TakeSnapshot() const;

 private:
  const bool enabled_;
  mutable std::mutex mutex_;
  // unique_ptr values: pointers stay valid across rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<int64_t, std::unique_ptr<QuerySeries>> series_;
};

/// Merges one histogram snapshot into another (counts, sums, and buckets
/// add; min/max widen). The sharded deployment view is built from these.
void MergeInto(Histogram::Snapshot* into, const Histogram::Snapshot& from);

/// Merges per-shard registry snapshots into one coherent view: counters,
/// gauges, and per-query series add across shards; histograms merge
/// bucket-wise. Gauges are summed because every AStream gauge is a size
/// or byte count (queue depths, arena bytes, retained checkpoints) where
/// the deployment-wide value is the total.
MetricsRegistry::Snapshot MergeSnapshots(
    const std::vector<MetricsRegistry::Snapshot>& snapshots);

/// Per-operator-instance memo of query-id -> series pointer. Instances are
/// single-threaded, so the map needs no lock; only a cache miss touches
/// the registry mutex (once per query per instance).
class SeriesCache {
 public:
  explicit SeriesCache(MetricsRegistry* registry = nullptr)
      : registry_(registry) {}

  void Reset(MetricsRegistry* registry) {
    registry_ = registry;
    cache_.clear();
  }

  /// nullptr when the registry is absent or disabled.
  QuerySeries* For(int64_t query_id) {
    if (registry_ == nullptr || !registry_->enabled()) return nullptr;
    auto it = cache_.find(query_id);
    if (it != cache_.end()) return it->second;
    QuerySeries* s = registry_->SeriesFor(query_id);
    cache_.emplace(query_id, s);
    return s;
  }

  MetricsRegistry* registry() const { return registry_; }

 private:
  MetricsRegistry* registry_;
  std::unordered_map<int64_t, QuerySeries*> cache_;
};

}  // namespace astream::obs

#endif  // ASTREAM_OBS_METRICS_H_
