#include "harness/driver.h"

#include <algorithm>

#include "common/logging.h"

namespace astream::harness {

Driver::Driver(StreamSut* sut, workload::Scenario* scenario, Config config)
    : sut_(sut),
      scenario_(scenario),
      config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : WallClock::Default()) {}

void Driver::ApplyActions(const workload::ScenarioActions& actions) {
  // Deletions first (ranks refer to the current active list, oldest = 0).
  std::vector<size_t> ranks = actions.delete_ranks;
  std::sort(ranks.rbegin(), ranks.rend());  // erase from the back first
  for (size_t rank : ranks) {
    if (rank >= active_.size()) continue;
    const core::QueryId id = active_[rank];
    if (sut_->Cancel(id).ok()) {
      active_.erase(active_.begin() + static_cast<ptrdiff_t>(rank));
      ++deleted_;
    }
  }
  for (int i = 0; i < actions.create; ++i) {
    auto id = sut_->Submit(config_.query_factory());
    if (id.ok()) {
      active_.push_back(*id);
      ++created_;
    } else {
      ASTREAM_LOG(kWarn, "driver")
          << "submit rejected: " << id.status().ToString();
    }
  }
}

Driver::Report Driver::Run() {
  Report report;
  // Independent generators per stream: both streams must cover the full
  // key space (Sec. 4.2.1's round-robin keys), otherwise an alternating
  // single generator would give stream A only even keys and B only odd
  // keys — and equi-joins would never match.
  workload::DataGenerator gen_a(config_.data, config_.seed);
  workload::DataGenerator gen_b(config_.data, config_.seed * 7919 + 1);

  const TimestampMs start = clock_->NowMs();
  TimestampMs last_watermark = start;
  TimestampMs last_tick = start - config_.scenario_tick_ms;
  workload::ScenarioActions pending;  // waiting for the previous batch ACK
  bool have_pending = false;

  double active_samples_sum = 0;
  int64_t active_samples = 0;
  bool push_to_b = false;
  TimestampMs last_sample = start;
  bool warmed = config_.warmup_ms == 0;
  int64_t pushed_at_warmup = 0;

  while (true) {
    const TimestampMs now = clock_->NowMs();
    if (now - start >= config_.duration_ms) break;
    if (!warmed && now - start >= config_.warmup_ms) {
      warmed = true;
      pushed_at_warmup = report.pushed_a + report.pushed_b;
      active_samples_sum = 0;
      active_samples = 0;
    }

    // --- user-request queue (backpressured by ACKs, Fig. 5) ---
    if (now - last_tick >= config_.scenario_tick_ms) {
      last_tick = now;
      workload::ScenarioActions actions =
          scenario_ == nullptr
              ? workload::ScenarioActions{}
              : scenario_->Tick(now - start, active_.size());
      if (actions.create > 0 || !actions.delete_ranks.empty()) {
        if (have_pending) {
          // Merge into the waiting batch; its latency keeps growing.
          pending.create += actions.create;
          pending.delete_ranks.insert(pending.delete_ranks.end(),
                                      actions.delete_ranks.begin(),
                                      actions.delete_ranks.end());
        } else {
          pending = std::move(actions);
          have_pending = true;
        }
      }
      if (have_pending && sut_->WaitDeployed(0)) {
        ApplyActions(pending);
        pending = {};
        have_pending = false;
      }
      sut_->Pump();
      active_samples_sum += static_cast<double>(active_.size());
      ++active_samples;
      report.peak_active_queries =
          std::max(report.peak_active_queries, active_.size());
      if (sut_->QueuedElements() > config_.max_queued_elements) {
        report.sustainable = false;
      }
    }

    // --- input-tuple queue ---
    int64_t to_push = config_.burst;
    if (config_.data_rate_per_sec > 0) {
      const auto target = static_cast<int64_t>(
          config_.data_rate_per_sec * (now - start) / 1000.0);
      to_push = target - (report.pushed_a + report.pushed_b);
      to_push = std::min<int64_t>(to_push, config_.burst);
    }
    for (int64_t i = 0; i < to_push; ++i) {
      core::PushResult result;
      if (config_.push_b && push_to_b) {
        result = sut_->PushB(now, gen_b.Next());
        ++report.pushed_b;
      } else {
        result = sut_->PushA(now, gen_a.Next());
        ++report.pushed_a;
      }
      if (result == core::PushResult::kLateClamped) {
        ++report.push_clamped;
      } else if (result == core::PushResult::kBackpressure) {
        ++report.push_rejected;
      } else if (result == core::PushResult::kShutdown) {
        // Permanent refusal (the SUT stopped accepting input) — kept out
        // of the backpressure tally so it cannot skew sustainability.
        ++report.push_shutdown;
      }
      if (config_.push_b) push_to_b = !push_to_b;
    }

    if (now - last_watermark >= config_.watermark_interval_ms) {
      sut_->PushWatermark(now);
      last_watermark = now;
    }

    if (config_.sample_interval_ms > 0 &&
        now - last_sample >= config_.sample_interval_ms) {
      last_sample = now;
      const auto qos = sut_->qos().TakeSnapshot();
      Sample s;
      s.at_ms = now - start;
      s.pushed = report.pushed_a + report.pushed_b;
      s.outputs = qos.total_outputs;
      s.event_latency_mean_ms = qos.event_time_latency.mean();
      s.event_latency_count = qos.event_time_latency.count();
      s.active_queries = active_.size();
      report.samples.push_back(s);
    }
  }

  const TimestampMs elapsed = clock_->NowMs() - start;
  if (config_.drain_at_end) {
    sut_->FinishAndWait();
  } else {
    sut_->Stop();
  }

  report.elapsed_ms = elapsed;
  report.created = created_;
  report.deleted = deleted_;
  const TimestampMs measured =
      std::max<TimestampMs>(elapsed - config_.warmup_ms, 1);
  report.input_rate_per_sec =
      static_cast<double>(report.pushed_a + report.pushed_b -
                          pushed_at_warmup) /
      (measured / 1000.0);
  report.avg_active_queries =
      active_samples == 0 ? 0 : active_samples_sum / active_samples;
  report.overall_rate_per_sec =
      report.input_rate_per_sec * report.avg_active_queries;
  report.qos = sut_->qos().TakeSnapshot();
  report.total_outputs = report.qos.total_outputs;
  return report;
}

}  // namespace astream::harness
