#ifndef ASTREAM_HARNESS_BASELINE_SUT_H_
#define ASTREAM_HARNESS_BASELINE_SUT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/sut.h"
#include "spe/runner.h"

namespace astream::harness {

/// The query-at-a-time baseline ("vanilla Flink", Sec. 4.1): every query
/// is an independent streaming job on the substrate — its own filter /
/// windowed-join / windowed-aggregation pipeline — fed by forking the
/// input streams to every job (the Kafka-fork best practice of Sec. 1).
///
/// Deployments are serialized on one deployment worker and each pays a
/// configurable cost that stands in for scheduler + JVM + task deployment
/// time (see DESIGN.md's substitution table). This reproduces the paper's
/// central baseline bottleneck: query deployment latency grows without
/// bound once requests arrive faster than jobs can be (un)deployed.
class BaselineSut : public StreamSut {
 public:
  struct Config {
    int parallelism = 1;
    bool threaded = false;
    /// Simulated per-job (un)deployment cost.
    TimestampMs deploy_cost_ms = 200;
    size_t channel_capacity = 1024;
    Clock* clock = nullptr;  // defaults to WallClock
  };

  explicit BaselineSut(Config config);
  ~BaselineSut() override;

  Status Start() override;
  core::PushResult PushA(TimestampMs event_time, spe::Row row) override;
  core::PushResult PushB(TimestampMs event_time, spe::Row row) override;
  void PushWatermark(TimestampMs watermark) override;
  Result<core::QueryId> Submit(const core::QueryDescriptor& desc) override;
  Status Cancel(core::QueryId id) override;
  bool WaitDeployed(TimestampMs timeout_ms) override;
  void FinishAndWait() override;
  void Stop() override;
  core::QosMonitor& qos() override { return qos_; }
  size_t QueuedElements() const override;
  const char* name() const override { return "Flink(query-at-a-time)"; }

  size_t num_active_jobs() const;
  /// Requests still waiting for the deployment worker.
  size_t deploy_queue_depth() const;

 private:
  struct QueryJob {
    core::QueryId id = -1;
    core::QueryDescriptor desc;
    std::shared_ptr<spe::Runner> runner;
    bool has_b_input = false;
  };

  struct DeployRequest {
    bool create = true;
    core::QueryId id = -1;
    core::QueryDescriptor desc;
    TimestampMs enqueued_at = 0;
  };

  void DeployWorker();
  Result<std::shared_ptr<spe::Runner>> BuildJob(core::QueryId id,
                                                const core::QueryDescriptor&
                                                    desc);
  std::vector<std::shared_ptr<QueryJob>> SnapshotJobs() const;

  Config config_;
  Clock* clock_;
  core::QosMonitor qos_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<core::QueryId, std::shared_ptr<QueryJob>> jobs_;
  std::deque<DeployRequest> deploy_queue_;
  size_t in_flight_deploys_ = 0;
  core::QueryId next_id_ = 1;
  bool stopping_ = false;
  std::thread deploy_thread_;
  TimestampMs last_watermark_ = kMinTimestamp;
  bool started_ = false;
};

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_BASELINE_SUT_H_
