#ifndef ASTREAM_HARNESS_SUT_H_
#define ASTREAM_HARNESS_SUT_H_

#include <memory>

#include "core/push_result.h"
#include "core/qos.h"
#include "core/query.h"
#include "spe/row.h"

namespace astream::harness {

/// System under test (Sec. 4.1): the driver talks to AStream and to the
/// query-at-a-time baseline through this one interface.
class StreamSut {
 public:
  virtual ~StreamSut() = default;

  virtual Status Start() = 0;

  /// Data input in event-time order per stream. The result distinguishes
  /// clean acceptance from clamped event times and refused tuples.
  virtual core::PushResult PushA(TimestampMs event_time, spe::Row row) = 0;
  virtual core::PushResult PushB(TimestampMs event_time, spe::Row row) = 0;
  virtual void PushWatermark(TimestampMs watermark) = 0;

  /// Asynchronous query creation / deletion (acknowledged later).
  virtual Result<core::QueryId> Submit(const core::QueryDescriptor& desc) = 0;
  virtual Status Cancel(core::QueryId id) = 0;

  /// Periodic housekeeping from the control thread (session flush etc.).
  virtual void Pump() {}

  /// Blocks until all outstanding create/delete requests are acknowledged
  /// (the driver's backpressure ACK, Fig. 5). False on timeout.
  virtual bool WaitDeployed(TimestampMs timeout_ms) = 0;

  virtual void FinishAndWait() = 0;
  virtual void Stop() = 0;

  virtual core::QosMonitor& qos() = 0;

  /// Backpressure probe: elements queued inside the SUT.
  virtual size_t QueuedElements() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_SUT_H_
