#include "harness/reference.h"

#include <algorithm>

#include "spe/aggregate.h"

namespace astream::harness {
namespace {

using core::EvalConjunction;
using core::QueryKind;
using spe::Row;
using spe::TimeWindow;
using spe::Value;
using spe::WindowSpec;

struct TimedRow {
  TimestampMs time = 0;
  Row row;
};

/// Tuples of `stream` alive for the query and matching its predicates.
std::vector<TimedRow> MatchingRows(const QueryLifecycle& q, int stream,
                                   const std::vector<core::Predicate>& preds,
                                   const std::vector<InputEvent>& events) {
  std::vector<TimedRow> out;
  for (const InputEvent& e : events) {
    if (e.stream != stream) continue;
    if (e.time < q.created_at || e.time >= q.deleted_at) continue;
    if (!EvalConjunction(preds, e.row)) continue;
    out.push_back(TimedRow{e.time, e.row});
  }
  return out;
}

TimestampMs MaxEventTime(const std::vector<InputEvent>& events) {
  TimestampMs m = kMinTimestamp;
  for (const InputEvent& e : events) m = std::max(m, e.time);
  return m;
}

/// All window instances of `q` whose evaluation the engine performs:
/// start <= max_data_time, and (for deleted queries) end <= deleted_at.
std::vector<TimeWindow> WindowInstances(const QueryLifecycle& q,
                                        TimestampMs max_data_time) {
  std::vector<TimeWindow> out;
  const WindowSpec& w = q.desc.window;
  for (int64_t k = 0;; ++k) {
    const TimestampMs ws = q.created_at + k * w.slide;
    const TimestampMs we = ws + w.length;
    if (ws > max_data_time) break;
    if (q.deleted_at != kMaxTimestamp && we > q.deleted_at) break;
    out.push_back(TimeWindow{ws, we});
  }
  return out;
}

/// One windowed equi-join stage: left x right within each window instance.
std::vector<TimedRow> JoinStage(const std::vector<TimeWindow>& windows,
                                const std::vector<TimedRow>& left,
                                const std::vector<TimedRow>& right) {
  std::vector<TimedRow> out;
  for (const TimeWindow& w : windows) {
    for (const TimedRow& l : left) {
      if (!w.Contains(l.time)) continue;
      for (const TimedRow& r : right) {
        if (!w.Contains(r.time)) continue;
        if (l.row.key() != r.row.key()) continue;
        out.push_back(TimedRow{w.end - 1, Row::Concat(l.row, r.row)});
      }
    }
  }
  return out;
}

/// Windowed keyed aggregation over `rows`.
void AggregateInto(const std::vector<TimeWindow>& windows,
                   const std::vector<TimedRow>& rows,
                   const spe::AggSpec& agg, RowMultiset* out) {
  for (const TimeWindow& w : windows) {
    std::map<Value, spe::Accumulator> per_key;
    for (const TimedRow& r : rows) {
      if (!w.Contains(r.time)) continue;
      per_key[r.row.key()].Add(r.row.At(agg.column));
    }
    for (const auto& [key, acc] : per_key) {
      AddToMultiset(out, w.end - 1, Row{key, acc.Finalize(agg.kind)});
    }
  }
}

/// Session-window aggregation (per key, merge with gap).
void SessionAggregateInto(const QueryLifecycle& q,
                          const std::vector<TimedRow>& rows,
                          RowMultiset* out) {
  const TimestampMs gap = q.desc.window.gap;
  std::map<Value, std::vector<TimedRow>> by_key;
  for (const TimedRow& r : rows) by_key[r.row.key()].push_back(r);
  for (auto& [key, key_rows] : by_key) {
    std::sort(key_rows.begin(), key_rows.end(),
              [](const TimedRow& a, const TimedRow& b) {
                return a.time < b.time;
              });
    size_t i = 0;
    while (i < key_rows.size()) {
      spe::Accumulator acc;
      TimestampMs last = key_rows[i].time;
      acc.Add(key_rows[i].row.At(q.desc.agg.column));
      size_t j = i + 1;
      while (j < key_rows.size() && key_rows[j].time < last + gap) {
        last = key_rows[j].time;
        acc.Add(key_rows[j].row.At(q.desc.agg.column));
        ++j;
      }
      const TimestampMs close = last + gap;
      if (q.deleted_at == kMaxTimestamp || close <= q.deleted_at) {
        AddToMultiset(out, close - 1,
                      Row{key, acc.Finalize(q.desc.agg.kind)});
      }
      i = j;
    }
  }
}

}  // namespace

void AddToMultiset(RowMultiset* set, TimestampMs event_time,
                   const spe::Row& row) {
  std::vector<Value> key;
  key.reserve(1 + row.NumColumns());
  key.push_back(event_time);
  row.AppendTo(&key);
  ++(*set)[key];
}

RowMultiset EvaluateReference(const QueryLifecycle& query,
                              const std::vector<InputEvent>& events) {
  RowMultiset out;
  const auto rows_a =
      MatchingRows(query, 0, query.desc.select_a, events);

  if (query.desc.kind == QueryKind::kSelection) {
    for (const TimedRow& r : rows_a) AddToMultiset(&out, r.time, r.row);
    return out;
  }

  const TimestampMs max_data = MaxEventTime(events);

  if (query.desc.kind == QueryKind::kAggregation) {
    if (query.desc.window.IsTimeWindow()) {
      AggregateInto(WindowInstances(query, max_data), rows_a,
                    query.desc.agg, &out);
    } else {
      SessionAggregateInto(query, rows_a, &out);
    }
    return out;
  }

  if (query.desc.kind == QueryKind::kMultiJoin) {
    // Flat n-way join (DESIGN.md §15), written literally as the cascade of
    // binary joins inside one window instance: filter each leg's stream by
    // its predicates, then fold leg after leg in *declared* order joining
    // on the row key. One output row per key-equal combination, columns in
    // declared leg order, stamped window_end - 1.
    std::vector<std::vector<TimedRow>> legs;
    for (const core::JoinInput& in : query.desc.join_inputs) {
      legs.push_back(MatchingRows(query, in.stream, in.select, events));
    }
    for (const TimeWindow& w : WindowInstances(query, max_data)) {
      std::vector<Row> combos;
      for (const TimedRow& r : legs[0]) {
        if (w.Contains(r.time)) combos.push_back(r.row);
      }
      for (size_t leg = 1; leg < legs.size() && !combos.empty(); ++leg) {
        std::vector<Row> next;
        for (const Row& c : combos) {
          for (const TimedRow& r : legs[leg]) {
            if (!w.Contains(r.time)) continue;
            if (c.key() != r.row.key()) continue;
            next.push_back(Row::Concat(c, r.row));
          }
        }
        combos = std::move(next);
      }
      for (const Row& c : combos) AddToMultiset(&out, w.end - 1, c);
    }
    return out;
  }

  const auto rows_b =
      MatchingRows(query, 1, query.desc.select_b, events);
  const std::vector<TimeWindow> windows = WindowInstances(query, max_data);

  if (query.desc.kind == QueryKind::kJoin) {
    for (const TimedRow& r : JoinStage(windows, rows_a, rows_b)) {
      AddToMultiset(&out, r.time, r.row);
    }
    return out;
  }

  // Complex: n-ary join cascade + aggregation (Sec. 4.7). Later stages see
  // result event times (window_end - 1) that can exceed the raw input's
  // maximum, so each stage re-derives its window-enumeration bound.
  std::vector<TimedRow> left = rows_a;
  TimestampMs bound = max_data;
  for (int depth = 0; depth < query.desc.join_depth; ++depth) {
    for (const TimedRow& l : left) bound = std::max(bound, l.time);
    left = JoinStage(WindowInstances(query, bound), left, rows_b);
  }
  for (const TimedRow& l : left) bound = std::max(bound, l.time);
  AggregateInto(WindowInstances(query, bound), left, query.desc.agg, &out);
  return out;
}

}  // namespace astream::harness
