#ifndef ASTREAM_HARNESS_ASTREAM_SUT_H_
#define ASTREAM_HARNESS_ASTREAM_SUT_H_

#include <memory>

#include "core/astream.h"
#include "harness/sut.h"

namespace astream::harness {

/// Thin adapter exposing an AStreamJob through the SUT interface.
class AStreamSut : public StreamSut {
 public:
  explicit AStreamSut(core::AStreamJob::Options options)
      : options_(options) {}

  Status Start() override {
    auto job = core::AStreamJob::Create(options_);
    ASTREAM_RETURN_IF_ERROR(job.status());
    job_ = std::move(job).value();
    return job_->Start();
  }

  core::PushResult PushA(TimestampMs event_time, spe::Row row) override {
    return job_->PushA(event_time, std::move(row));
  }
  core::PushResult PushB(TimestampMs event_time, spe::Row row) override {
    return job_->PushB(event_time, std::move(row));
  }
  void PushWatermark(TimestampMs watermark) override {
    job_->PushWatermark(watermark);
  }

  Result<core::QueryId> Submit(const core::QueryDescriptor& desc) override {
    return job_->Submit(desc);
  }
  Status Cancel(core::QueryId id) override { return job_->Cancel(id); }

  void Pump() override { job_->Pump(false); }

  bool WaitDeployed(TimestampMs timeout_ms) override {
    job_->Pump(true);
    return job_->WaitForDeployment(timeout_ms);
  }

  void FinishAndWait() override { job_->FinishAndWait(); }
  void Stop() override { job_->Stop(); }

  core::QosMonitor& qos() override { return job_->qos(); }
  size_t QueuedElements() const override { return job_->QueuedElements(); }
  const char* name() const override { return "AStream"; }

  core::AStreamJob* job() { return job_.get(); }

 private:
  core::AStreamJob::Options options_;
  std::unique_ptr<core::AStreamJob> job_;
};

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_ASTREAM_SUT_H_
