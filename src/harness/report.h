#ifndef ASTREAM_HARNESS_REPORT_H_
#define ASTREAM_HARNESS_REPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace astream::harness {

/// Plain-text aligned table, used by the figure benches to print the
/// paper-style result rows next to the paper's reported values.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Renders with column alignment to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// 1234567 -> "1.23M", 12345 -> "12.3K", 123 -> "123".
std::string FormatCount(double value);
/// Milliseconds with unit, e.g. "1.24s" / "87ms".
std::string FormatMs(double ms);
/// Fixed-precision double.
std::string FormatDouble(double v, int precision = 2);

/// Prints the standard bench banner: what figure is reproduced, how the
/// setup was scaled down relative to the paper.
void PrintBanner(const std::string& figure, const std::string& description,
                 const std::string& scaling);

/// Per-query observability table from the metrics registry: emitted rows,
/// late drops, slice reuse, and event-time latency p50/p95/p99 per query.
/// `max_rows` bounds the output (busiest queries first); 0 = all.
void PrintQueryMetricsTable(const obs::MetricsRegistry::Snapshot& snapshot,
                            size_t max_rows = 0);

/// Data-plane drill-down: per-edge batch-size histograms
/// (`edge.<stage>.batch_size`) and per-stage queue-depth gauges
/// (`stage.<name>.queue_depth`). Prints nothing when the snapshot carries
/// no edge histograms (e.g. sync runner or metrics disabled).
void PrintDataPlaneTable(const obs::MetricsRegistry::Snapshot& snapshot);

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_REPORT_H_
