#ifndef ASTREAM_HARNESS_SOURCE_LOG_H_
#define ASTREAM_HARNESS_SOURCE_LOG_H_

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "core/astream.h"

namespace astream::harness {

/// A durable, replayable input log — the stand-in for the paper's message
/// bus (Kafka): AStream's exactly-once story (Sec. 3.3) requires that the
/// input stream can be replayed from a logged offset after a failure.
///
/// Beyond data records the log also captures the *control-plane* timeline
/// (query submits/cancels and checkpoint triggers) so a supervised
/// recovery can replay ad-hoc query churn byte-identically: re-submitted
/// queries get the same ids (the restored session's id counter is
/// deterministic) and changelog markers reproduce their original times
/// (entries carry the wall-clock time to re-pin a ManualClock to).
class SourceLog {
 public:
  struct Entry {
    enum Kind {
      kRecordA,
      kRecordB,
      kWatermark,
      kSubmit,      // an accepted ad-hoc query submission
      kCancel,      // an accepted cancellation
      kCheckpoint,  // a triggered checkpoint barrier
    } kind = kRecordA;
    TimestampMs time = 0;
    spe::Row row;
    // Control-plane fields (kSubmit/kCancel/kCheckpoint).
    TimestampMs wall_ms = 0;      // wall clock of the original call
    core::QueryDescriptor desc;   // kSubmit
    core::QueryId query_id = -1;  // kSubmit (assigned id) / kCancel
    int64_t checkpoint_id = 0;    // kCheckpoint
    int64_t offset = 0;           // kCheckpoint: log end offset at barrier
  };

  void LogA(TimestampMs time, spe::Row row) {
    Entry e;
    e.kind = Entry::kRecordA;
    e.time = time;
    e.row = std::move(row);
    entries_.push_back(std::move(e));
  }
  void LogB(TimestampMs time, spe::Row row) {
    Entry e;
    e.kind = Entry::kRecordB;
    e.time = time;
    e.row = std::move(row);
    entries_.push_back(std::move(e));
  }
  void LogWatermark(TimestampMs watermark) {
    Entry e;
    e.kind = Entry::kWatermark;
    e.time = watermark;
    entries_.push_back(std::move(e));
  }
  void LogSubmit(TimestampMs wall_ms, const core::QueryDescriptor& desc,
                 core::QueryId id) {
    Entry e;
    e.kind = Entry::kSubmit;
    e.wall_ms = wall_ms;
    e.desc = desc;
    e.query_id = id;
    entries_.push_back(std::move(e));
  }
  void LogCancel(TimestampMs wall_ms, core::QueryId id) {
    Entry e;
    e.kind = Entry::kCancel;
    e.wall_ms = wall_ms;
    e.query_id = id;
    entries_.push_back(std::move(e));
  }
  void LogCheckpoint(TimestampMs wall_ms, int64_t checkpoint_id,
                     int64_t offset) {
    Entry e;
    e.kind = Entry::kCheckpoint;
    e.wall_ms = wall_ms;
    e.checkpoint_id = checkpoint_id;
    e.offset = offset;
    entries_.push_back(std::move(e));
  }

  /// Entry at an absolute offset in [first_offset(), EndOffset()).
  const Entry& At(int64_t offset) const {
    return entries_[static_cast<size_t>(offset - truncated_)];
  }

  /// Current end offset (total entries ever logged; absolute).
  int64_t EndOffset() const {
    return truncated_ + static_cast<int64_t>(entries_.size());
  }

  /// Re-pushes *data* entries [from, EndOffset()) into `job`. `from` is an
  /// absolute offset; it must not be below first_offset(). Control-plane
  /// entries are skipped — SupervisedJob's replay handles those (they need
  /// clock pinning and id assertions the raw log cannot do).
  void Replay(core::AStreamJob* job, int64_t from) const {
    const auto start =
        static_cast<size_t>(std::max<int64_t>(0, from - truncated_));
    for (size_t i = start; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      switch (e.kind) {
        case Entry::kRecordA:
          job->PushA(e.time, e.row);
          break;
        case Entry::kRecordB:
          job->PushB(e.time, e.row);
          break;
        case Entry::kWatermark:
          job->PushWatermark(e.time);
          break;
        case Entry::kSubmit:
        case Entry::kCancel:
        case Entry::kCheckpoint:
          break;
      }
    }
  }

  size_t SizeBytes() const {
    size_t n = 0;
    for (const Entry& e : entries_) {
      n += sizeof(Entry) + e.row.NumColumns() * sizeof(spe::Value);
    }
    return n;
  }

  /// Drops entries below the given offset (safe once a checkpoint at or
  /// beyond it completed — Kafka retention equivalent). Offsets remain
  /// absolute.
  void TruncateBelow(int64_t offset) {
    const int64_t drop = offset - truncated_;
    if (drop <= 0) return;
    entries_.erase(entries_.begin(), entries_.begin() + drop);
    truncated_ = offset;
  }

  int64_t first_offset() const { return truncated_; }

  /// Aligns an *empty* log so its next entry gets absolute offset
  /// `offset`. A job restored from a checkpoint taken by a previous
  /// process (or handed over from another shard) resumes at that
  /// checkpoint's source offset; without this, the fresh log would
  /// restart at 0 and a later recovery would replay from the old large
  /// offset — past every newly logged entry. No-op when the log already
  /// starts at or beyond `offset`.
  void StartAt(int64_t offset) {
    if (!entries_.empty() || offset <= truncated_) return;
    truncated_ = offset;
  }

 private:
  std::vector<Entry> entries_;  // index i holds offset truncated_ + i
  int64_t truncated_ = 0;
};

/// An AStreamJob wired to a SourceLog: pushes are logged, checkpoints
/// record the input offset, and Recover() stands up a fresh job from the
/// latest complete checkpoint and replays the tail — the full
/// exactly-once recovery loop of Sec. 3.3 in one object.
///
/// Single control thread, like AStreamJob itself.
class RecoverableJob {
 public:
  explicit RecoverableJob(core::AStreamJob::Options options)
      : options_(options) {}

  Status Start() {
    auto job = core::AStreamJob::Create(options_);
    ASTREAM_RETURN_IF_ERROR(job.status());
    job_ = std::move(job).value();
    return job_->Start();
  }

  core::PushResult PushA(TimestampMs t, spe::Row row) {
    log_.LogA(t, row);
    return job_->PushA(t, std::move(row));
  }
  core::PushResult PushB(TimestampMs t, spe::Row row) {
    log_.LogB(t, row);
    return job_->PushB(t, std::move(row));
  }
  void PushWatermark(TimestampMs wm) {
    log_.LogWatermark(wm);
    job_->PushWatermark(wm);
  }

  /// Takes a checkpoint and remembers the source offset it covers.
  int64_t Checkpoint() {
    const int64_t offset = log_.EndOffset();
    const int64_t id = job_->TriggerCheckpoint();
    checkpoint_offsets_[id] = offset;
    return id;
  }

  /// Simulates a crash + recovery: discards the running job, builds a
  /// fresh one, restores the latest complete checkpoint (operators AND
  /// session), and replays the input tail from the logged offset.
  Status Recover() {
    auto checkpoint = job_->checkpoints().LatestComplete();
    if (checkpoint == nullptr) {
      return Status::FailedPrecondition("no complete checkpoint");
    }
    auto offset_it = checkpoint_offsets_.find(checkpoint->id);
    if (offset_it == checkpoint_offsets_.end()) {
      return Status::Internal("checkpoint has no recorded source offset");
    }
    // Keep the old job's checkpoint store alive through recovery.
    const auto snapshot = *checkpoint;
    core::AStreamJob::ResultCallback callback = callback_;
    job_->Stop();

    auto job = core::AStreamJob::Create(options_);
    ASTREAM_RETURN_IF_ERROR(job.status());
    job_ = std::move(job).value();
    ASTREAM_RETURN_IF_ERROR(job_->Start());
    if (callback) job_->SetResultCallback(callback);
    ASTREAM_RETURN_IF_ERROR(job_->RestoreFrom(snapshot));
    log_.Replay(job_.get(), offset_it->second);
    return Status::OK();
  }

  void SetResultCallback(core::AStreamJob::ResultCallback callback) {
    callback_ = callback;
    job_->SetResultCallback(std::move(callback));
  }

  core::AStreamJob* job() { return job_.get(); }
  SourceLog& log() { return log_; }

 private:
  core::AStreamJob::Options options_;
  std::unique_ptr<core::AStreamJob> job_;
  core::AStreamJob::ResultCallback callback_;
  SourceLog log_;
  std::map<int64_t, int64_t> checkpoint_offsets_;
};

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_SOURCE_LOG_H_
