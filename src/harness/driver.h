#ifndef ASTREAM_HARNESS_DRIVER_H_
#define ASTREAM_HARNESS_DRIVER_H_

#include <deque>
#include <functional>
#include <vector>

#include "harness/sut.h"
#include "workload/data_generator.h"
#include "workload/scenario.h"

namespace astream::harness {

/// Experiment driver (Fig. 5). One control loop maintains the two logical
/// FIFO queues of the paper:
///  - user requests: scenario actions are batched and the next batch is
///    submitted only after the SUT acknowledged the previous one
///    (backpressure; time spent waiting becomes deployment latency);
///  - input tuples: pushed at a target rate (or as fast as the SUT
///    accepts, which is the sustainable-throughput probe), stamped with
///    wall-clock event times; watermarks follow periodically.
class Driver {
 public:
  struct Config {
    /// Wall-clock experiment duration.
    TimestampMs duration_ms = 5'000;
    /// Target input rate (tuples/s) across both streams; 0 = push as fast
    /// as the SUT accepts (throughput probe).
    double data_rate_per_sec = 0;
    /// Also feed stream B (join/complex workloads); tuples alternate A/B.
    bool push_b = false;
    TimestampMs watermark_interval_ms = 50;
    TimestampMs scenario_tick_ms = 100;
    /// Makes a fresh query for every scenario creation.
    std::function<core::QueryDescriptor()> query_factory;
    workload::DataGenerator::Config data;
    uint64_t seed = 42;
    /// Queue depth beyond which the run is declared unsustainable.
    size_t max_queued_elements = 200'000;
    /// Tuples pushed per loop iteration in as-fast-as-possible mode.
    int burst = 256;
    /// Record a time-series sample every interval (0 = off; Fig. 16).
    TimestampMs sample_interval_ms = 0;
    /// Rates and active-query averages are computed over the post-warmup
    /// window only (lets deployments settle before measuring).
    TimestampMs warmup_ms = 0;
    /// Drain the SUT at the end (FinishAndWait: flushes all pending
    /// windows; needed for output/latency accounting). Throughput probes
    /// set false and hard-stop instead — at full offered load the final
    /// flush can dwarf the measurement itself.
    bool drain_at_end = true;
    Clock* clock = nullptr;  // defaults to WallClock
  };

  /// One time-series sample (cumulative counters; consumers diff).
  struct Sample {
    TimestampMs at_ms = 0;
    int64_t pushed = 0;
    int64_t outputs = 0;
    double event_latency_mean_ms = 0;
    int64_t event_latency_count = 0;
    size_t active_queries = 0;
  };

  struct Report {
    int64_t pushed_a = 0;
    int64_t pushed_b = 0;
    TimestampMs elapsed_ms = 0;
    /// Input rate the SUT absorbed — the slowest-query data throughput
    /// (every active query consumes the full stream).
    double input_rate_per_sec = 0;
    /// Sum over active queries (Sec. 4.3's overall data throughput).
    double overall_rate_per_sec = 0;
    double avg_active_queries = 0;
    size_t peak_active_queries = 0;
    int64_t created = 0;
    int64_t deleted = 0;
    /// Tuples accepted but with a clamped event time (arrived behind the
    /// changelog frontier) / refused transiently (backpressure) / refused
    /// permanently (SUT shutting down — not backpressure).
    int64_t push_clamped = 0;
    int64_t push_rejected = 0;
    int64_t push_shutdown = 0;
    int64_t total_outputs = 0;
    bool sustainable = true;
    core::QosMonitor::Snapshot qos;
    std::vector<Sample> samples;
  };

  Driver(StreamSut* sut, workload::Scenario* scenario, Config config);

  /// Runs the experiment; on return the SUT is finished (drained).
  Report Run();

 private:
  void ApplyActions(const workload::ScenarioActions& actions);

  StreamSut* sut_;
  workload::Scenario* scenario_;
  Config config_;
  Clock* clock_;
  std::vector<core::QueryId> active_;  // creation order
  int64_t created_ = 0;
  int64_t deleted_ = 0;
};

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_DRIVER_H_
