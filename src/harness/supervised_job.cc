#include "harness/supervised_job.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"
#include "storage/durable_checkpoint.h"

namespace astream::harness {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SupervisedJob::SupervisedJob(Options options)
    : options_(std::move(options)),
      clock_(options_.job.clock != nullptr ? options_.job.clock
                                           : WallClock::Default()),
      stall_(options_.supervisor.stall_timeout_ms) {
  if (options_.durable_checkpoint_dir.empty()) {
    store_ = std::make_unique<spe::CheckpointStore>();
  } else {
    store_ = std::make_unique<storage::DurableCheckpointStore>(
        options_.durable_checkpoint_dir);
    // A previous process may have left durable checkpoints behind; keep
    // checkpoint ids monotonic across the restart.
    if (auto latest = store_->LatestComplete(); latest != nullptr) {
      next_checkpoint_id_ = latest->id + 1;
      last_reaped_checkpoint_ = latest->id;
    }
  }
  // Shard hand-off: seed the store with a checkpoint taken elsewhere,
  // unless it already holds something at least as new (a durable dir from
  // a previous incarnation wins — it may have progressed further).
  if (options_.restore_from != nullptr) {
    auto latest = store_->LatestComplete();
    if (latest == nullptr || latest->id < options_.restore_from->id) {
      const Status s =
          storage::ImportCheckpoint(store_.get(), *options_.restore_from);
      if (!s.ok()) {
        ASTREAM_LOG(kWarn, "supervised-job")
            << "restore_from import failed: " << s.ToString();
      }
    }
    if (auto imported = store_->LatestComplete(); imported != nullptr) {
      next_checkpoint_id_ = std::max(next_checkpoint_id_, imported->id + 1);
      last_reaped_checkpoint_ =
          std::max(last_reaped_checkpoint_, imported->id);
    }
  }
}

SupervisedJob::~SupervisedJob() {
  if (supervisor_ != nullptr) supervisor_->StopWatchdog();
}

Status SupervisedJob::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("already started");
  spe::Supervisor::Hooks hooks;
  hooks.tick = [this] { Tick(); };
  hooks.recover = [this](int attempt) { return RecoverLocked(attempt); };
  hooks.on_failure = [this](const Status& failure) {
    (void)failure;
    // Stamped into the failing incarnation's trace, where it happened.
    if (job_ != nullptr) {
      job_->trace().Record(obs::TraceEventKind::kFailureDetected, -1,
                           supervisor_->restart_attempts());
    }
  };
  hooks.on_recovered = [this](int attempts, int64_t latency_ms) {
    (void)attempts;
    job_->trace().Record(obs::TraceEventKind::kRecoveryDone, -1, latency_ms);
    ExportRecoveryMetricsLocked(latency_ms);
  };
  supervisor_ = std::make_unique<spe::Supervisor>(options_.supervisor,
                                                  std::move(hooks));
  ASTREAM_RETURN_IF_ERROR(StandUpJobLocked());
  // Process-restart recovery: a durable store may already hold completed
  // checkpoints from an earlier process over the same directory. Restore
  // the fresh job from the newest one before accepting any input.
  if (auto latest = store_->LatestComplete(); latest != nullptr) {
    ASTREAM_RETURN_IF_ERROR(job_->RestoreFrom(*latest));
    dedup_.OnRestore(latest->id);
    // The fresh (empty) source log must continue the *absolute* offset
    // space the restored checkpoint recorded, or the first recovery
    // before a new checkpoint would replay from an offset past every
    // newly logged entry.
    if (auto it = latest->source_offsets.find(0);
        it != latest->source_offsets.end()) {
      log_.StartAt(it->second);
    }
  }
  started_ = true;
  if (options_.start_watchdog) supervisor_->StartWatchdog();
  return Status::OK();
}

Status SupervisedJob::EnsureHealthyLocked() {
  if (job_ == nullptr) return Status::FailedPrecondition("not started");
  if (!job_->Failed()) return Status::OK();
  return supervisor_->RecoverNow(job_->Health());
}

core::PushResult SupervisedJob::PushA(TimestampMs t, spe::Row row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_ || !EnsureHealthyLocked().ok()) {
    return core::PushResult::kShutdown;
  }
  log_.LogA(t, row);
  core::PushResult r = job_->PushA(t, std::move(row));
  if (r == core::PushResult::kShutdown && job_->Failed()) {
    // The entry is logged: recovery replays it, so the push succeeded
    // from the caller's point of view.
    if (EnsureHealthyLocked().ok()) r = core::PushResult::kAccepted;
  }
  return r;
}

core::PushResult SupervisedJob::PushB(TimestampMs t, spe::Row row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_ || !EnsureHealthyLocked().ok()) {
    return core::PushResult::kShutdown;
  }
  log_.LogB(t, row);
  core::PushResult r = job_->PushB(t, std::move(row));
  if (r == core::PushResult::kShutdown && job_->Failed()) {
    if (EnsureHealthyLocked().ok()) r = core::PushResult::kAccepted;
  }
  return r;
}

void SupervisedJob::PushWatermark(TimestampMs wm) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_ || !EnsureHealthyLocked().ok()) return;
  log_.LogWatermark(wm);
  job_->PushWatermark(wm);
  if (job_->Failed()) (void)EnsureHealthyLocked();
}

Result<core::QueryId> SupervisedJob::Submit(
    const core::QueryDescriptor& desc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_) {
    return Status::FailedPrecondition("job not running");
  }
  // The wall stamp is captured BEFORE the health probe: a recovery there
  // replays the log and leaves the clock pinned at the last replayed
  // entry's time, so reading it afterwards would log (and flush) this
  // submission at a stale time — diverging marker times from a run that
  // never crashed. Re-pin after the probe for the same reason: the flush
  // below reads the live clock.
  const TimestampMs wall = clock_->NowMs();
  ASTREAM_RETURN_IF_ERROR(EnsureHealthyLocked());
  PinClock(wall);
  Result<core::QueryId> id = job_->Submit(desc);
  ASTREAM_RETURN_IF_ERROR(id.status());
  log_.LogSubmit(wall, desc, id.value());
  // Force the changelog out now: the deployment timeline must be a pure
  // function of the log so replay reproduces marker times exactly.
  job_->Pump(true);
  if (job_->Failed()) ASTREAM_RETURN_IF_ERROR(EnsureHealthyLocked());
  return id;
}

Status SupervisedJob::Cancel(core::QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_) {
    return Status::FailedPrecondition("job not running");
  }
  // Same wall-stamp discipline as Submit (see there).
  const TimestampMs wall = clock_->NowMs();
  ASTREAM_RETURN_IF_ERROR(EnsureHealthyLocked());
  PinClock(wall);
  ASTREAM_RETURN_IF_ERROR(job_->Cancel(id));
  log_.LogCancel(wall, id);
  job_->Pump(true);
  if (job_->Failed()) ASTREAM_RETURN_IF_ERROR(EnsureHealthyLocked());
  return Status::OK();
}

int64_t SupervisedJob::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_) return -1;
  // Same wall-stamp discipline as Submit (see there).
  const TimestampMs wall = clock_->NowMs();
  if (!EnsureHealthyLocked().ok()) return -1;
  PinClock(wall);
  // The offset is taken BEFORE the checkpoint's own log entry: restoring
  // from this checkpoint replays from the entry itself (skipped, already
  // durable) and then the tail behind it.
  const int64_t offset = log_.EndOffset();
  const int64_t id = job_->TriggerCheckpoint({{0, offset}}, 0);
  next_checkpoint_id_ = std::max(next_checkpoint_id_, id + 1);
  log_.LogCheckpoint(wall, id, offset);
  if (job_->Failed() && !EnsureHealthyLocked().ok()) return -1;
  ReapCheckpointsLocked();
  return id;
}

Status SupervisedJob::FinishAndWait() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_) return Status::OK();
  while (true) {
    ASTREAM_RETURN_IF_ERROR(EnsureHealthyLocked());
    const Status s = job_->FinishAndWait();
    if (s.ok()) break;
    // The drain itself hit a failure: recover (replay regenerates what the
    // dead job lost) and drain again.
    ASTREAM_RETURN_IF_ERROR(supervisor_->RecoverNow(s));
  }
  finished_ = true;
  ReapCheckpointsLocked();
  return Status::OK();
}

Status SupervisedJob::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || finished_) return Status::OK();
  finished_ = true;
  return job_->Stop();
}

void SupervisedJob::SetResultCallback(
    core::AStreamJob::ResultCallback callback) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  user_callback_ = std::move(callback);
}

int64_t SupervisedJob::replayed_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replayed_rows_;
}

int64_t SupervisedJob::replayed_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replayed_entries_;
}

Status SupervisedJob::StandUpJobLocked() {
  core::AStreamJob::Options opts = options_.job;
  opts.checkpoint_store = store_.get();
  opts.first_checkpoint_id = next_checkpoint_id_;
  auto job = core::AStreamJob::Create(opts);
  ASTREAM_RETURN_IF_ERROR(job.status());
  job_ = std::move(job).value();
  // Every delivery funnels through the exactly-once filter; the user
  // callback is looked up under its own lock (sink threads must never
  // contend with control ops that join them).
  job_->SetResultCallback([this](core::QueryId id, const spe::Record& r) {
    if (!dedup_.Admit(id, r)) return;
    core::AStreamJob::ResultCallback cb;
    {
      std::lock_guard<std::mutex> lock(cb_mu_);
      cb = user_callback_;
    }
    if (cb) cb(id, r);
  });
  return job_->Start();
}

Status SupervisedJob::RecoverLocked(int attempt) {
  job_->trace().Record(obs::TraceEventKind::kRecoveryStart, -1, attempt);
  job_->Stop();  // joins all task threads: no deliveries race the restore
  std::shared_ptr<const spe::CheckpointStore::Checkpoint> checkpoint =
      store_->LatestComplete();
  int64_t restored_id = 0;
  int64_t replay_from = log_.first_offset();
  if (checkpoint != nullptr) {
    restored_id = checkpoint->id;
    auto it = checkpoint->source_offsets.find(0);
    if (it == checkpoint->source_offsets.end()) {
      return Status::Internal("checkpoint " + std::to_string(restored_id) +
                              " has no source offset");
    }
    replay_from = it->second;
  }
  // Everything delivered so far becomes "pending regeneration" for the
  // replay's dedup; with no checkpoint the whole log replays from scratch
  // (restored_id 0 keeps every pending entry).
  dedup_.OnRestore(restored_id);
  stall_.Reset();
  ASTREAM_RETURN_IF_ERROR(StandUpJobLocked());
  if (checkpoint != nullptr) {
    ASTREAM_RETURN_IF_ERROR(job_->RestoreFrom(*checkpoint));
  }
  ASTREAM_RETURN_IF_ERROR(ReplayLocked(replay_from, restored_id));
  (void)attempt;
  return job_->Health();
}

Status SupervisedJob::ReplayLocked(int64_t from, int64_t restored_id) {
  for (int64_t off = std::max(from, log_.first_offset());
       off < log_.EndOffset(); ++off) {
    const SourceLog::Entry& e = log_.At(off);
    switch (e.kind) {
      case SourceLog::Entry::kRecordA:
        job_->PushA(e.time, e.row);
        ++replayed_rows_;
        break;
      case SourceLog::Entry::kRecordB:
        job_->PushB(e.time, e.row);
        ++replayed_rows_;
        break;
      case SourceLog::Entry::kWatermark:
        job_->PushWatermark(e.time);
        break;
      case SourceLog::Entry::kSubmit: {
        PinClock(e.wall_ms);
        Result<core::QueryId> id = job_->Submit(e.desc);
        ASTREAM_RETURN_IF_ERROR(id.status());
        if (id.value() != e.query_id) {
          // The restored session's id counter must reassign the original
          // ids or every downstream routing decision diverges.
          return Status::Internal(
              "replay assigned query id " + std::to_string(id.value()) +
              ", log recorded " + std::to_string(e.query_id));
        }
        job_->Pump(true);
        break;
      }
      case SourceLog::Entry::kCancel:
        PinClock(e.wall_ms);
        ASTREAM_RETURN_IF_ERROR(job_->Cancel(e.query_id));
        job_->Pump(true);
        break;
      case SourceLog::Entry::kCheckpoint:
        // Checkpoints at or below the restore point are already durable;
        // re-triggering one would overwrite the completed checkpoint we
        // just restored from — fatal if this replay crashes too.
        if (e.checkpoint_id <= restored_id) break;
        PinClock(e.wall_ms);
        job_->TriggerCheckpoint({{0, e.offset}}, e.checkpoint_id);
        next_checkpoint_id_ =
            std::max(next_checkpoint_id_, e.checkpoint_id + 1);
        break;
    }
    ++replayed_entries_;
    // A fault firing during replay poisons the fresh job too; report it so
    // the supervisor backs off and retries (the log is intact).
    if (job_->Failed()) return job_->Health();
  }
  return Status::OK();
}

void SupervisedJob::ReapCheckpointsLocked() {
  std::shared_ptr<const spe::CheckpointStore::Checkpoint> latest =
      store_->LatestComplete();
  if (latest == nullptr || latest->id <= last_reaped_checkpoint_) return;
  last_reaped_checkpoint_ = latest->id;
  // Outputs older than the completed checkpoint can never be regenerated:
  // drop them from the dedup filter and retire the covered log prefix.
  dedup_.OnCheckpointComplete(latest->id);
  auto it = latest->source_offsets.find(0);
  if (it != latest->source_offsets.end()) log_.TruncateBelow(it->second);
}

void SupervisedJob::ExportRecoveryMetricsLocked(int64_t latency_ms) {
  obs::MetricsRegistry& m = job_->metrics();
  if (!m.enabled()) return;
  m.GetGauge("recovery.count")->Set(supervisor_->recoveries());
  m.GetGauge("recovery.replayed_rows")->Set(replayed_rows_);
  m.GetGauge("recovery.replayed_entries")->Set(replayed_entries_);
  m.GetGauge("recovery.dedup_suppressed")
      ->Set(dedup_.duplicates_suppressed());
  m.GetHistogram("recovery.latency_ms")->Record(latency_ms);
}

void SupervisedJob::PinClock(TimestampMs wall_ms) {
  if (options_.pin_clock) options_.pin_clock(wall_ms);
}

void SupervisedJob::Tick() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  // The control thread holds mu_ while active and detects failures itself
  // (a poisoned runner refuses its pushes); contending here would invert
  // the owner-lock -> supervisor-lock order.
  if (!lock.owns_lock()) return;
  if (!started_ || finished_ || job_ == nullptr) return;
  if (job_->Failed()) {
    (void)supervisor_->RecoverNow(job_->Health());
    return;
  }
  if (options_.supervisor.stall_timeout_ms > 0) {
    const Status s = stall_.Observe(job_->TaskHealth(), SteadyNowMs());
    if (!s.ok()) {
      ASTREAM_LOG(kWarn, "supervised-job")
          << "watchdog declared stall: " << s.ToString();
      job_->DeclareFailed(s);
      (void)supervisor_->RecoverNow(s);
    }
  }
}

}  // namespace astream::harness
