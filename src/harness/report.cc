#include "harness/report.h"

#include <algorithm>
#include <cstdio>

namespace astream::harness {

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&] {
    std::printf("+");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(stdout);
}

std::string FormatCount(double value) {
  char buf[32];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fB", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fms", ms);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintBanner(const std::string& figure, const std::string& description,
                 const std::string& scaling) {
  std::printf("\n=== %s ===\n%s\n", figure.c_str(), description.c_str());
  if (!scaling.empty()) {
    std::printf("Scaling vs. paper: %s\n", scaling.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintQueryMetricsTable(const obs::MetricsRegistry::Snapshot& snapshot,
                            size_t max_rows) {
  if (snapshot.queries.empty()) return;
  std::vector<std::pair<int64_t, int64_t>> order;  // (emitted, id)
  order.reserve(snapshot.queries.size());
  for (const auto& [id, series] : snapshot.queries) {
    order.emplace_back(series.records_emitted, id);
  }
  std::sort(order.rbegin(), order.rend());
  if (max_rows > 0 && order.size() > max_rows) order.resize(max_rows);

  Table table({"query", "emitted", "late", "reused", "computed", "lat p50",
               "lat p95", "lat p99", "deploy"});
  for (const auto& [emitted, id] : order) {
    const auto& s = snapshot.queries.at(id);
    const auto& lat = s.event_latency_ms;
    table.AddRow({"Q" + std::to_string(id), FormatCount(double(emitted)),
                  FormatCount(double(s.late_drops)),
                  FormatCount(double(s.slices_reused)),
                  FormatCount(double(s.slices_computed)),
                  lat.count == 0 ? "-" : FormatMs(lat.Percentile(50)),
                  lat.count == 0 ? "-" : FormatMs(lat.Percentile(95)),
                  lat.count == 0 ? "-" : FormatMs(lat.Percentile(99)),
                  s.deploy_latency_ms.count == 0
                      ? "-"
                      : FormatMs(s.deploy_latency_ms.Percentile(50))});
  }
  table.Print();
}

void PrintDataPlaneTable(const obs::MetricsRegistry::Snapshot& snapshot) {
  const std::string edge_prefix = "edge.";
  const std::string edge_suffix = ".batch_size";
  const std::string stage_prefix = "stage.";
  const std::string depth_suffix = ".queue_depth";
  const std::string ring_suffix = ".ring_occupancy_bp";
  Table table({"edge into", "batches", "elements", "mean batch", "p95",
               "max", "queue depth", "ring occ"});
  size_t rows = 0;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name.rfind(edge_prefix, 0) != 0 || name.size() <= edge_suffix.size() ||
        name.compare(name.size() - edge_suffix.size(), edge_suffix.size(),
                     edge_suffix) != 0) {
      continue;
    }
    if (hist.count == 0) continue;
    const std::string stage = name.substr(
        edge_prefix.size(),
        name.size() - edge_prefix.size() - edge_suffix.size());
    const auto depth_it =
        snapshot.gauges.find(stage_prefix + stage + depth_suffix);
    const auto ring_it =
        snapshot.gauges.find(edge_prefix + stage + ring_suffix);
    table.AddRow({stage, FormatCount(static_cast<double>(hist.count)),
                  FormatCount(static_cast<double>(hist.sum)),
                  FormatDouble(hist.mean(), 1),
                  FormatDouble(hist.Percentile(95), 1),
                  std::to_string(hist.max),
                  depth_it == snapshot.gauges.end()
                      ? "-"
                      : std::to_string(depth_it->second),
                  ring_it == snapshot.gauges.end()
                      ? "-"
                      : FormatDouble(
                            static_cast<double>(ring_it->second) / 100.0,
                            1) + "%"});
    ++rows;
  }
  if (rows > 0) table.Print();
  // Zero-copy drill-down: router fan-out sharing and slice-store arenas.
  const auto shared_it = snapshot.gauges.find("router.rows_shared");
  const auto copied_it = snapshot.gauges.find("router.rows_copied");
  const auto arena_it = snapshot.gauges.find("state.arena_bytes");
  if (shared_it != snapshot.gauges.end() ||
      arena_it != snapshot.gauges.end()) {
    const double shared = shared_it == snapshot.gauges.end()
                              ? 0.0
                              : static_cast<double>(shared_it->second);
    const double copied = copied_it == snapshot.gauges.end()
                              ? 0.0
                              : static_cast<double>(copied_it->second);
    std::printf(
        "router fan-out: %s rows shared (CoW), %s materialized; "
        "slice-store arenas: %s bytes\n",
        FormatCount(shared).c_str(), FormatCount(copied).c_str(),
        arena_it == snapshot.gauges.end()
            ? "-"
            : FormatCount(static_cast<double>(arena_it->second)).c_str());
  }
}

}  // namespace astream::harness
