#include "harness/baseline_sut.h"

#include <chrono>

#include "common/logging.h"
#include "spe/operators.h"

namespace astream::harness {

using core::QueryDescriptor;
using core::QueryId;
using core::QueryKind;

BaselineSut::BaselineSut(Config config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : WallClock::Default()) {}

BaselineSut::~BaselineSut() { Stop(); }

Status BaselineSut::Start() {
  started_ = true;
  deploy_thread_ = std::thread([this] { DeployWorker(); });
  return Status::OK();
}

Result<std::shared_ptr<spe::Runner>> BaselineSut::BuildJob(
    QueryId id, const QueryDescriptor& desc) {
  spe::TopologySpec spec;
  const int par = config_.parallelism;
  const TimestampMs origin = clock_->NowMs();

  auto filter_factory = [](const std::vector<core::Predicate>& preds) {
    return [preds](int) -> std::unique_ptr<spe::Operator> {
      return std::make_unique<spe::FilterOperator>(
          [preds](const spe::Row& row) {
            return core::EvalConjunction(preds, row);
          });
    };
  };

  int last_stage = -1;
  switch (desc.kind) {
    case QueryKind::kMultiJoin:
      // The Flink-style baseline is wired for the paper's two-stream
      // workloads; micro_mjoin's per-query mode uses dedicated AStreamJobs.
      return Status::InvalidArgument(
          "baseline SUT does not build multiway-join jobs");
    case QueryKind::kSelection: {
      spe::StageSpec filter;
      filter.name = "filter";
      filter.parallelism = par;
      filter.factory = filter_factory(desc.select_a);
      filter.is_sink = true;
      last_stage = spec.AddStage(std::move(filter));
      spec.AddExternalInput({"a", last_stage, 0, spe::Partitioning::kHash});
      break;
    }
    case QueryKind::kAggregation: {
      spe::StageSpec filter;
      filter.name = "filter";
      filter.parallelism = par;
      filter.factory = filter_factory(desc.select_a);
      const int s_filter = spec.AddStage(std::move(filter));
      spec.AddExternalInput({"a", s_filter, 0, spe::Partitioning::kHash});

      spe::StageSpec agg;
      agg.name = "window-agg";
      agg.parallelism = par;
      agg.is_sink = true;
      agg.factory = [desc, origin](int) -> std::unique_ptr<spe::Operator> {
        return std::make_unique<spe::WindowAggregateOperator>(
            desc.window, desc.agg, origin);
      };
      agg.inputs = {{s_filter, 0, spe::Partitioning::kHash}};
      last_stage = spec.AddStage(std::move(agg));
      break;
    }
    case QueryKind::kJoin:
    case QueryKind::kComplex: {
      spe::StageSpec fa;
      fa.name = "filter-a";
      fa.parallelism = par;
      fa.factory = filter_factory(desc.select_a);
      const int s_fa = spec.AddStage(std::move(fa));
      spec.AddExternalInput({"a", s_fa, 0, spe::Partitioning::kHash});

      spe::StageSpec fb;
      fb.name = "filter-b";
      fb.parallelism = par;
      fb.factory = filter_factory(desc.select_b);
      const int s_fb = spec.AddStage(std::move(fb));
      spec.AddExternalInput({"b", s_fb, 0, spe::Partitioning::kHash});

      const int depth =
          desc.kind == QueryKind::kJoin ? 1 : desc.join_depth;
      int left = s_fa;
      for (int k = 0; k < depth; ++k) {
        spe::StageSpec join;
        join.name = "window-join-" + std::to_string(k + 1);
        join.parallelism = par;
        join.num_ports = 2;
        join.factory = [desc, origin](int) -> std::unique_ptr<spe::Operator> {
          return std::make_unique<spe::WindowJoinOperator>(desc.window,
                                                           origin);
        };
        join.inputs = {{left, 0, spe::Partitioning::kHash},
                       {s_fb, 1, spe::Partitioning::kHash}};
        left = spec.AddStage(std::move(join));
      }
      if (desc.kind == QueryKind::kComplex) {
        spe::StageSpec agg;
        agg.name = "window-agg";
        agg.parallelism = par;
        agg.is_sink = true;
        agg.factory = [desc, origin](int) -> std::unique_ptr<spe::Operator> {
          return std::make_unique<spe::WindowAggregateOperator>(
              desc.window, desc.agg, origin);
        };
        agg.inputs = {{left, 0, spe::Partitioning::kHash}};
        last_stage = spec.AddStage(std::move(agg));
      } else {
        // Mark the final join stage as the sink.
        last_stage = left;
      }
      break;
    }
  }
  if (desc.kind == QueryKind::kJoin) {
    // The join stage was added without is_sink; rebuild is awkward, so the
    // sink flag is set via a wrapper stage instead: a pass-through sink.
    spe::StageSpec sink;
    sink.name = "sink";
    sink.parallelism = par;
    sink.is_sink = true;
    sink.factory = [](int) -> std::unique_ptr<spe::Operator> {
      return std::make_unique<spe::PassThroughOperator>();
    };
    sink.inputs = {{last_stage, 0, spe::Partitioning::kHash}};
    spec.AddStage(std::move(sink));
  }

  auto sink_fn = [this, id](int stage, int instance,
                            const spe::StreamElement& el) {
    (void)stage;
    (void)instance;
    if (el.kind != spe::ElementKind::kRecord) return;
    qos_.RecordOutput(id, el.record.event_time, clock_->NowMs());
  };

  std::shared_ptr<spe::Runner> runner;
  if (config_.threaded) {
    runner = std::make_shared<spe::ThreadedRunner>(
        std::move(spec), sink_fn, nullptr, config_.channel_capacity);
  } else {
    runner = std::make_shared<spe::SyncRunner>(std::move(spec), sink_fn);
  }
  ASTREAM_RETURN_IF_ERROR(runner->Start());
  return runner;
}

void BaselineSut::DeployWorker() {
  while (true) {
    DeployRequest req;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !deploy_queue_.empty(); });
      if (stopping_) return;
      req = std::move(deploy_queue_.front());
      deploy_queue_.pop_front();
      ++in_flight_deploys_;
    }
    // The substituted JVM/scheduler deployment cost (serialized, like
    // Flink's job manager handling one submission at a time).
    if (config_.deploy_cost_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.deploy_cost_ms));
    }
    if (req.create) {
      auto runner = BuildJob(req.id, req.desc);
      if (runner.ok()) {
        auto job = std::make_shared<QueryJob>();
        job->id = req.id;
        job->desc = req.desc;
        job->runner = std::move(runner).value();
        job->has_b_input = req.desc.HasJoin();
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_[req.id] = std::move(job);
      } else {
        ASTREAM_LOG(kError, "baseline")
            << "deploy failed: " << runner.status().ToString();
      }
    } else {
      std::shared_ptr<QueryJob> job;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(req.id);
        if (it != jobs_.end()) {
          job = it->second;
          jobs_.erase(it);
        }
      }
      if (job != nullptr) job->runner->Cancel();
    }
    qos_.RecordDeployment(req.id, clock_->NowMs() - req.enqueued_at);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_deploys_;
    }
    cv_.notify_all();
  }
}

std::vector<std::shared_ptr<BaselineSut::QueryJob>>
BaselineSut::SnapshotJobs() const {
  std::vector<std::shared_ptr<QueryJob>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

core::PushResult BaselineSut::PushA(TimestampMs event_time, spe::Row row) {
  for (const auto& job : SnapshotJobs()) {
    job->runner->Push(0, spe::StreamElement::MakeRecord(event_time, row));
  }
  return core::PushResult::kAccepted;
}

core::PushResult BaselineSut::PushB(TimestampMs event_time, spe::Row row) {
  for (const auto& job : SnapshotJobs()) {
    if (!job->has_b_input) continue;
    job->runner->Push(1, spe::StreamElement::MakeRecord(event_time, row));
  }
  return core::PushResult::kAccepted;
}

void BaselineSut::PushWatermark(TimestampMs watermark) {
  last_watermark_ = watermark;
  for (const auto& job : SnapshotJobs()) {
    job->runner->Push(0, spe::StreamElement::MakeWatermark(watermark));
    if (job->has_b_input) {
      job->runner->Push(1, spe::StreamElement::MakeWatermark(watermark));
    }
  }
}

Result<QueryId> BaselineSut::Submit(const QueryDescriptor& desc) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeployRequest req;
  req.create = true;
  req.id = next_id_++;
  req.desc = desc;
  req.enqueued_at = clock_->NowMs();
  const QueryId id = req.id;
  deploy_queue_.push_back(std::move(req));
  cv_.notify_all();
  return id;
}

Status BaselineSut::Cancel(QueryId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  DeployRequest req;
  req.create = false;
  req.id = id;
  req.enqueued_at = clock_->NowMs();
  deploy_queue_.push_back(std::move(req));
  cv_.notify_all();
  return Status::OK();
}

bool BaselineSut::WaitDeployed(TimestampMs timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return deploy_queue_.empty() && in_flight_deploys_ == 0;
  });
}

void BaselineSut::FinishAndWait() {
  WaitDeployed(60'000);
  for (const auto& job : SnapshotJobs()) job->runner->FinishAndWait();
  Stop();
}

void BaselineSut::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (deploy_thread_.joinable()) deploy_thread_.join();
  for (const auto& job : SnapshotJobs()) job->runner->Cancel();
}

size_t BaselineSut::QueuedElements() const {
  size_t n = 0;
  for (const auto& job : SnapshotJobs()) {
    auto* threaded = dynamic_cast<spe::ThreadedRunner*>(job->runner.get());
    if (threaded != nullptr) n += threaded->TotalQueuedElements();
  }
  return n;
}

size_t BaselineSut::num_active_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

size_t BaselineSut::deploy_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deploy_queue_.size() + in_flight_deploys_;
}

}  // namespace astream::harness
