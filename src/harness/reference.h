#ifndef ASTREAM_HARNESS_REFERENCE_H_
#define ASTREAM_HARNESS_REFERENCE_H_

#include <map>
#include <vector>

#include "core/query.h"

namespace astream::harness {

/// One input tuple of the experiment, as fed to the engine.
struct InputEvent {
  int stream = 0;  // 0 = A, 1 = B; 2.. = extra multiway streams
  TimestampMs time = 0;
  spe::Row row;
};

/// A query's ad-hoc lifetime: created at `created_at`, deleted at
/// `deleted_at` (kMaxTimestamp = never deleted).
struct QueryLifecycle {
  core::QueryDescriptor desc;
  TimestampMs created_at = 0;
  TimestampMs deleted_at = kMaxTimestamp;
};

/// Multiset of output records keyed by [event_time, column values...].
/// Order-insensitive comparison between engine output and the reference.
using RowMultiset = std::map<std::vector<spe::Value>, int64_t>;

/// Inserts one record into a multiset.
void AddToMultiset(RowMultiset* set, TimestampMs event_time,
                   const spe::Row& row);

/// Offline reference evaluator: computes, from first principles, exactly
/// what one ad-hoc query must output given the full input — independent of
/// slicing, sharing, changelogs, or the engine. This is the oracle for
/// the paper's Consistency requirement (Sec. 1.2): the shared pipeline
/// must produce per-query results identical to each query run alone.
///
/// Semantics mirrored from the engine (documented in DESIGN.md):
///  - a tuple belongs to a query iff its event time is in
///    [created_at, deleted_at) and the stream-side predicates match;
///  - time windows are anchored at created_at: [created_at + k*slide,
///    created_at + k*slide + length);
///  - a window of a deleted query emits iff window_end <= deleted_at;
///  - session windows merge per key with the gap; a deleted query's
///    session emits iff (last + gap) <= deleted_at;
///  - aggregation / join results carry event time window_end - 1 (session:
///    last + gap - 1); selection results keep the tuple's event time;
///  - complex queries cascade: n windowed self-keyed joins of (left, B),
///    then a windowed aggregation, every stage re-windowing by result
///    event times;
///  - multiway joins are flat: within each window instance, one result row
///    per key-equal combination of tuples (one per declared leg, leg
///    predicates applied), columns in declared leg order, stamped
///    window_end - 1 — a cascade of binary joins inside one window.
RowMultiset EvaluateReference(const QueryLifecycle& query,
                              const std::vector<InputEvent>& events);

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_REFERENCE_H_
