#ifndef ASTREAM_HARNESS_SUPERVISED_JOB_H_
#define ASTREAM_HARNESS_SUPERVISED_JOB_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "core/astream.h"
#include "core/recovery.h"
#include "harness/source_log.h"
#include "spe/supervisor.h"

namespace astream::harness {

/// A crash-supervised AStreamJob with the full exactly-once recovery loop
/// of Sec. 3.3, hardened for ad-hoc query churn and repeated failures:
///
///   - Durable pieces that outlive any one job incarnation: the SourceLog
///     (data AND control-plane timeline), the CheckpointStore, and the
///     EpochOutputDedup output filter.
///   - Failure detection: synchronously on the control thread (a poisoned
///     runner refuses pushes), or via the Supervisor's watchdog thread
///     (poison probe + heartbeat stall detection).
///   - Recovery: stop the dead job, restore a *fresh* job from
///     CheckpointStore::LatestComplete(), replay the log tail — including
///     re-submitting/cancelling queries (same ids: the restored session's
///     id counter is deterministic) and re-triggering logged checkpoints
///     with their original ids — while the dedup filter suppresses outputs
///     the pre-crash run already delivered. Capped exponential backoff,
///     then terminal.
///
/// Single control thread (like AStreamJob); result callbacks arrive on
/// sink threads in threaded mode. Submit/Cancel force an immediate
/// changelog flush (Pump(true)) so the deployment timeline is fully
/// captured by the log and reproduces under replay.
class SupervisedJob {
 public:
  struct Options {
    core::AStreamJob::Options job;
    spe::Supervisor::Options supervisor;
    /// Run the watchdog thread. Off by default: the control thread
    /// detects failures synchronously via refused pushes, which keeps
    /// tests deterministic; the watchdog adds detection when the control
    /// thread is idle plus heartbeat stall detection.
    bool start_watchdog = false;
    /// Re-pins the job's clock during replay (wire to ManualClock::SetMs
    /// in tests so replayed changelog/barrier marker times reproduce
    /// exactly). Null with a wall clock: replay runs at wall time.
    std::function<void(TimestampMs)> pin_clock;
    /// Non-empty: checkpoints are persisted to this directory as run
    /// files (storage::DurableCheckpointStore) instead of staying in RAM,
    /// so a SupervisedJob constructed over the same directory after a
    /// *process* restart recovers from the last durably completed
    /// checkpoint. Empty: RAM store (crash-in-process recovery only).
    std::string durable_checkpoint_dir;
    /// Non-null: a completed checkpoint taken by *another* SupervisedJob
    /// (shard hand-off during live resharding, or a previous process) to
    /// restore from at Start. It is imported into this job's checkpoint
    /// store first — durable stores persist it immediately — so in-process
    /// recoveries and process restarts both find it; ignored when the
    /// store already holds a newer completed checkpoint. The source log
    /// starts at the checkpoint's source offset, keeping replay offsets
    /// absolute across the hand-off.
    std::shared_ptr<const spe::CheckpointStore::Checkpoint> restore_from;
  };

  explicit SupervisedJob(Options options);
  ~SupervisedJob();

  SupervisedJob(const SupervisedJob&) = delete;
  SupervisedJob& operator=(const SupervisedJob&) = delete;

  Status Start();

  /// Data input; logged, then pushed. A push refused because the job just
  /// failed triggers recovery inline — the entry is already in the log, so
  /// the replay delivers it and the push reports accepted.
  core::PushResult PushA(TimestampMs t, spe::Row row);
  core::PushResult PushB(TimestampMs t, spe::Row row);
  void PushWatermark(TimestampMs wm);

  /// Ad-hoc churn; logged with the assigned id + wall time for replay.
  Result<core::QueryId> Submit(const core::QueryDescriptor& desc);
  Status Cancel(core::QueryId id);

  /// Takes a checkpoint covering the current log offset; returns its id,
  /// or -1 if the job is terminally failed.
  int64_t Checkpoint();

  /// Drains the job; recovers and retries if a failure interrupts the
  /// drain. Returns the terminal status if recovery is exhausted.
  Status FinishAndWait();
  Status Stop();

  /// Deliveries are filtered through the exactly-once dedup before
  /// reaching this callback (sink threads in threaded mode).
  void SetResultCallback(core::AStreamJob::ResultCallback callback);

  /// The current job incarnation (replaced by every recovery).
  core::AStreamJob* job() { return job_.get(); }
  SourceLog& log() { return log_; }
  spe::CheckpointStore& checkpoints() { return *store_; }
  const spe::Supervisor* supervisor() const { return supervisor_.get(); }
  const core::EpochOutputDedup& dedup() const { return dedup_; }

  int64_t recoveries() const {
    return supervisor_ == nullptr ? 0 : supervisor_->recoveries();
  }
  int64_t replayed_rows() const;
  int64_t replayed_entries() const;

 private:
  /// Recovers if the current job is poisoned. mu_ must be held.
  Status EnsureHealthyLocked();
  /// One recovery attempt (Supervisor::Hooks::recover). mu_ must be held.
  Status RecoverLocked(int attempt);
  /// Replays log entries [from, end); skips checkpoints <= restored_id
  /// (they are already durable — re-snapshotting would overwrite the very
  /// checkpoint being restored from, fatal on a second crash mid-replay).
  Status ReplayLocked(int64_t from, int64_t restored_id);
  /// Creates + starts a fresh job sharing the durable checkpoint store.
  Status StandUpJobLocked();
  /// Checkpoint-complete housekeeping: prune the dedup filter and truncate
  /// the log below the latest complete checkpoint's offset.
  void ReapCheckpointsLocked();
  void ExportRecoveryMetricsLocked(int64_t latency_ms);
  void PinClock(TimestampMs wall_ms);
  /// Watchdog probe (watchdog thread; try-locks mu_ and skips when the
  /// control thread is active — it detects failures itself).
  void Tick();

  Options options_;
  Clock* clock_;

  mutable std::mutex mu_;
  SourceLog log_;
  // RAM store by default; DurableCheckpointStore when
  // options_.durable_checkpoint_dir is set.
  std::unique_ptr<spe::CheckpointStore> store_;
  core::EpochOutputDedup dedup_;
  spe::StallDetector stall_;
  std::unique_ptr<spe::Supervisor> supervisor_;
  std::unique_ptr<core::AStreamJob> job_;
  int64_t next_checkpoint_id_ = 1;
  int64_t last_reaped_checkpoint_ = 0;
  int64_t replayed_rows_ = 0;
  int64_t replayed_entries_ = 0;
  bool started_ = false;
  bool finished_ = false;

  // Separate from mu_: the dedup wrapper runs on sink threads and must
  // never contend with a control-thread op that joins those threads.
  std::mutex cb_mu_;
  core::AStreamJob::ResultCallback user_callback_;
};

}  // namespace astream::harness

#endif  // ASTREAM_HARNESS_SUPERVISED_JOB_H_
