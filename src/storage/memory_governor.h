#ifndef ASTREAM_STORAGE_MEMORY_GOVERNOR_H_
#define ASTREAM_STORAGE_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>

namespace astream::storage {

/// Job-level out-of-core configuration (facade Options.storage).
struct StorageOptions {
  /// State-memory budget in bytes. 0 = use ASTREAM_MEMORY_BUDGET from the
  /// environment (unlimited when unset); < 0 = force-unlimited regardless
  /// of the environment (reference runs in A/B tests); > 0 = explicit cap.
  int64_t memory_budget_bytes = 0;
  /// When false and a budget is set, stores never spill; the facade
  /// reports backpressure (PushResult::kBackpressure) once over budget.
  bool allow_spill = true;
  /// Spill directory. Empty = a per-job temp dir, removed on shutdown.
  std::string spill_dir;
  /// LZ-compress spilled run blocks (format v2, DESIGN.md §13). Off
  /// writes v2 files with raw blocks.
  bool compress_spill = true;
  /// Fold small spilled runs into larger sorted ones in the background
  /// (inline when the job is single-threaded, so outputs stay
  /// deterministic).
  bool compaction = true;
  /// A store schedules a compaction once it holds this many runs.
  size_t compaction_min_runs = 4;
  /// Victim selection counts per-slice reads: a slice a standing query
  /// re-reads every slide stops being evicted even when it is the
  /// coldest by window end. Off = plain coldest-first (PR 5 behavior).
  bool access_aware_eviction = true;
};

/// "8m", "64k", "1g", "1048576" -> bytes; 0 on empty/unparseable input.
int64_t ParseByteSize(const std::string& text);

/// ASTREAM_MEMORY_BUDGET from the environment, 0 when unset/invalid.
int64_t BudgetFromEnv();

/// The effective cap: > 0 budget in bytes, or 0 for unlimited.
int64_t ResolveMemoryBudget(const StorageOptions& options);

/// A store-owning operator that can shed memory by spilling its coldest
/// slice to disk. SpillOnce is only ever invoked on the client's own task
/// thread (from its Enforce call), so implementations need no locking
/// against concurrent store access.
class SpillClient {
 public:
  virtual ~SpillClient() = default;
  /// Spills one victim (coldest slice) and returns resident bytes
  /// released; 0 when nothing spillable remains (or the write failed).
  virtual size_t SpillOnce() = 0;
};

/// Global byte-budget arbiter. Each spillable operator registers, reports
/// its resident bytes + the end time of its coldest slice after every
/// mutation, then calls Enforce. While the job is over budget, Enforce
/// picks the globally coldest client: the caller spills itself inline;
/// a colder peer is flagged and spills on its own next Enforce (SpillOnce
/// always runs on the owning task thread, never under the governor lock).
///
/// With access-aware eviction the report also carries the trigger-read
/// count of the client's would-be spill victim, and victim ordering
/// becomes (victim_reads, coldest_end, client): an operator whose coldest
/// slice a standing query re-reads every slide is spared while any peer
/// holds a genuinely cold slice — the same read signal that feeds the
/// per-operator `storage.reload_saves` gauge, applied across operators.
/// With access-awareness off every report carries 0 reads and the order
/// degenerates to the original coldest-end-first.
class MemoryGovernor {
 public:
  /// budget_bytes <= 0 disables enforcement (accounting still runs).
  MemoryGovernor(int64_t budget_bytes, bool allow_spill);

  void Register(SpillClient* client);
  void Unregister(SpillClient* client);

  /// Reports a client's current resident bytes, the window end time of
  /// its coldest (earliest-ending) slice — INT64_MAX when it has nothing
  /// spillable — and the recent trigger-read count of the slice its
  /// SpillOnce would pick (0 when access-awareness is off).
  void Update(SpillClient* client, size_t resident_bytes,
              int64_t coldest_end, int64_t victim_reads = 0);

  /// Spills (via `self`) until the job is back under budget or `self` has
  /// nothing colder than its peers; flags a colder peer instead of
  /// spilling across threads.
  void Enforce(SpillClient* self);

  /// True when spilling is disabled, a budget is set, and resident state
  /// exceeds it — the facade's PushTo turns this into kBackpressure.
  /// Lock-free (one relaxed load on the ingest path).
  bool ShouldBackpressure() const {
    return !allow_spill_ && budget_ > 0 &&
           total_.load(std::memory_order_relaxed) > budget_;
  }

  int64_t budget() const { return budget_; }
  int64_t total_resident() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    size_t resident = 0;
    int64_t coldest_end = INT64_MAX;
    int64_t victim_reads = 0;
    bool spill_requested = false;
  };

  /// Moves `it`'s position in the victim index to (victim_reads,
  /// coldest_end). Caller holds mutex_.
  void Reindex(std::map<SpillClient*, Entry>::iterator it,
               int64_t coldest_end, int64_t victim_reads);

  const int64_t budget_;
  const bool allow_spill_;
  std::atomic<int64_t> total_{0};
  mutable std::mutex mutex_;
  std::map<SpillClient*, Entry> clients_;
  /// Victim index: (victim_reads, coldest_end, client) for every client
  /// with something spillable, ordered — Enforce picks *victims_.begin()
  /// in O(log n) instead of scanning all clients (the PR 5 linear scan
  /// ran once per Enforce pass on the ingest path). Least-read first, so
  /// cross-operator choice spares slices standing queries keep re-reading.
  std::set<std::tuple<int64_t, int64_t, SpillClient*>> victims_;
};

}  // namespace astream::storage

#endif  // ASTREAM_STORAGE_MEMORY_GOVERNOR_H_
