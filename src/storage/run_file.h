#ifndef ASTREAM_STORAGE_RUN_FILE_H_
#define ASTREAM_STORAGE_RUN_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "spe/state.h"

namespace astream::storage {

/// Run-file format version (DESIGN.md §13). Version 2 adds per-block LZ
/// compression; the reader accepts both 1 and 2 (PR 5-era checkpoint and
/// shard-drain files must keep loading) and refuses anything else.
inline constexpr uint32_t kRunFormatVersion = 2;
inline constexpr uint32_t kRunFormatVersionV1 = 1;

/// Incremental CRC32 (IEEE 802.3 polynomial, table-driven). `crc` is the
/// running value (start from 0); feed chunks in file order.
uint32_t Crc32(uint32_t crc, const void* data, size_t size);

/// Immutable run file: the one on-disk format shared by slice-store
/// spills, changelog-table spills, durable checkpoints, and compacted
/// runs.
///
///   [u32 magic "ASRN"][u32 version]
///   v1 block*: [u32 block_bytes][entries...]
///   v2 block*: [u32 stored_bytes][u32 raw_bytes][payload stored_bytes]
///     stored == raw: payload is the raw entry stream; stored < raw: the
///     entry stream LZ-compressed (common/lz.h). Incompressible blocks
///     are stored raw, so stored_bytes never exceeds raw_bytes.
///     entry stream: [u32 entry_bytes][i64 key][payload (entry_bytes-8)]*
///   footer (StateWriter-encoded): num_entries, num_blocks,
///     per block {file_offset, num_entries, min_key, max_key},
///     raw_payload_bytes (v2 only), meta blob
///   tail (fixed 24 bytes):
///     [u64 footer_offset][u64 footer_bytes][u32 crc][u32 end magic "NRSA"]
///
/// The CRC covers every byte before the tail; a torn write (crash mid-file)
/// fails either the end-magic, the footer bounds, or the CRC, and the file
/// is rejected wholesale — runs are atomic: written to `<path>.tmp` and
/// renamed into place only after a clean Finish().
struct RunInfo {
  std::string path;
  uint64_t file_bytes = 0;
  /// Uncompressed entry-stream bytes — the logical volume the file holds.
  /// file_bytes / raw_bytes is the on-disk compression ratio (~1 for v1).
  uint64_t raw_bytes = 0;
  uint64_t num_entries = 0;
  int64_t min_key = 0;
  int64_t max_key = 0;
};

class RunWriter {
 public:
  struct Options {
    size_t block_bytes = 64 * 1024;
    /// fsync before the atomic rename (durable checkpoints). Spill runs
    /// skip it: they never outlive the process that wrote them.
    bool sync = false;
    /// LZ-compress blocks (v2 only). Off = v2 layout with raw blocks —
    /// the format-sweep baseline leg of bench/micro_spill.
    bool compress = true;
    /// Written format. kRunFormatVersionV1 reproduces PR 5 files byte for
    /// byte (backward-compat tests and mixed-version drains).
    uint32_t format_version = kRunFormatVersion;
  };

  /// Writes to `<final_path>.tmp`; Finish() renames to `final_path`.
  explicit RunWriter(std::string final_path)
      : RunWriter(std::move(final_path), Options()) {}
  RunWriter(std::string final_path, Options options);
  ~RunWriter();

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  /// Appends one entry. Keys must be non-decreasing (merge iterators and
  /// the per-block index rely on it).
  Status Append(int64_t key, const void* payload, size_t size);

  /// Opaque user metadata stored in the footer (e.g. checkpoint id and
  /// source offsets). Call any time before Finish().
  void SetMeta(std::vector<uint8_t> meta) { meta_ = std::move(meta); }

  /// Flushes, writes footer + CRC + tail, optionally fsyncs, and renames
  /// the temp file into place. The writer is dead afterwards.
  Result<RunInfo> Finish();

  /// Deletes the temp file (automatic on destruction if never finished).
  void Abort();

  uint64_t num_entries() const { return num_entries_; }

 private:
  Status FlushBlock();
  Status WriteRaw(const void* data, size_t size);

  std::string final_path_;
  std::string tmp_path_;
  Options options_;
  std::FILE* file_ = nullptr;
  bool finished_ = false;
  Status status_;

  std::vector<uint8_t> block_;
  std::vector<uint8_t> scratch_;  // compression output, reused per block
  uint64_t block_entries_ = 0;
  int64_t block_min_key_ = 0;
  int64_t block_max_key_ = 0;

  struct BlockIndex {
    uint64_t offset = 0;
    uint64_t entries = 0;
    int64_t min_key = 0;
    int64_t max_key = 0;
  };
  std::vector<BlockIndex> index_;
  std::vector<uint8_t> meta_;
  uint64_t file_offset_ = 0;
  uint32_t crc_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t raw_bytes_ = 0;
  int64_t min_key_ = 0;
  int64_t max_key_ = 0;
  bool have_key_ = false;
};

/// Sequential, block-buffered reader over one run (format v1 or v2).
/// Open() validates the tail, footer, version and (optionally) the
/// full-file CRC; a torn or corrupt file fails Open and is never
/// half-read. A v2 block that fails to decompress (possible only when CRC
/// verification was skipped) surfaces as an error Status mid-scan instead
/// of bad bytes. Memory: one (decompressed) block.
class RunReader {
 public:
  static Result<std::unique_ptr<RunReader>> Open(const std::string& path,
                                                 bool verify_crc = true);
  ~RunReader();

  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  /// Next entry in file (== key) order; false at the end or on error
  /// (check status()).
  bool Next(int64_t* key, std::vector<uint8_t>* payload);

  Status status() const { return status_; }
  uint64_t num_entries() const { return num_entries_; }
  const std::vector<uint8_t>& meta() const { return meta_; }
  uint64_t file_bytes() const { return file_bytes_; }
  /// Uncompressed entry-stream bytes (== payload volume for v1 files).
  uint64_t raw_bytes() const { return raw_bytes_; }
  uint32_t format_version() const { return format_version_; }

 private:
  RunReader() = default;
  bool LoadNextBlock();

  std::FILE* file_ = nullptr;
  uint64_t file_bytes_ = 0;
  uint64_t raw_bytes_ = 0;
  uint32_t format_version_ = 0;
  uint64_t footer_offset_ = 0;
  uint64_t num_entries_ = 0;
  std::vector<uint8_t> meta_;
  Status status_;

  struct BlockIndex {
    uint64_t offset = 0;
    uint64_t entries = 0;
  };
  std::vector<BlockIndex> blocks_;
  size_t next_block_ = 0;
  std::vector<uint8_t> block_;
  std::vector<uint8_t> scratch_;  // compressed bytes before decompression
  size_t block_pos_ = 0;
};

}  // namespace astream::storage

#endif  // ASTREAM_STORAGE_RUN_FILE_H_
