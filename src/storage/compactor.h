#ifndef ASTREAM_STORAGE_COMPACTOR_H_
#define ASTREAM_STORAGE_COMPACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/run_file.h"
#include "storage/spill_space.h"

namespace astream::storage {

/// One scheduled fold of a store's oldest spilled runs into a single
/// larger sorted run (DESIGN.md §13).
///
/// Handoff protocol: the owning store snapshots a contiguous *prefix* of
/// its run list (oldest first) into the ticket and keeps appending new
/// spills behind it. The compactor merges the inputs in (key, input
/// index) order — exactly the tie order KWayMerge gives those sources in
/// any read — so swapping the prefix for the output run preserves the
/// store's global merge order bit for bit, no matter when the swap
/// happens. The store adopts the result on its own task thread
/// (AdoptCompaction) the next time it touches its runs; `state` is the
/// release/acquire fence that makes `output` safe to read.
class CompactionTicket {
 public:
  enum class State : uint8_t { kPending, kDone, kFailed };

  State state() const { return state_.load(std::memory_order_acquire); }
  const std::vector<SpilledRunPtr>& inputs() const { return inputs_; }
  /// Valid only after state() returned kDone.
  const SpilledRunPtr& output() const { return output_; }

 private:
  friend class Compactor;
  std::vector<SpilledRunPtr> inputs_;
  std::string kind_;
  SpilledRunPtr output_;
  std::atomic<State> state_{State::kPending};
};

using CompactionTicketPtr = std::shared_ptr<CompactionTicket>;

/// Folds small spilled runs into larger ones off the hot path, so a
/// standing query that spills every slide does not degrade into an
/// ever-wider merge fan-in on every read.
///
/// Two modes:
///  - sync: Submit() compacts inline on the caller's (task) thread and
///    returns a settled ticket. Deterministic — the mode every
///    equivalence and chaos suite runs, and the default when the job
///    itself is single-threaded.
///  - worker: Start() spawns one background thread that drains the queue;
///    Submit() returns a pending ticket. Input runs are immutable files
///    and the output is tmp+rename-atomic, so the worker never touches
///    store state — the only shared point is the ticket.
///
/// Failure (injected via FaultPoint::kCompaction / kStorageWrite, or a
/// real write error) settles the ticket kFailed with the inputs
/// untouched; the store just keeps its existing runs. A crash that kills
/// the worker mid-write leaves a torn `.tmp` the reader would reject —
/// never a half-adopted run.
class Compactor {
 public:
  struct Options {
    /// Compact inline in Submit() instead of on the worker thread.
    bool sync = false;
    /// Stores schedule a compaction once they hold at least this many
    /// runs (MinRunsToCompact guards the call sites).
    size_t min_runs = 4;
    /// Output-run format (compression etc.).
    RunWriter::Options writer;
  };

  Compactor(SpillSpace* space, Options options);
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Spawns the worker (no-op in sync mode). Safe to call once.
  void Start();
  /// Drains the queue and joins the worker. Idempotent; the destructor
  /// calls it too.
  void Stop();

  /// Schedules `inputs` (>= 2 runs, a store's oldest-first prefix) to be
  /// folded into one run tagged `kind`. Sync mode settles the ticket
  /// before returning.
  CompactionTicketPtr Submit(std::vector<SpilledRunPtr> inputs,
                             const std::string& kind);

  size_t min_runs() const { return options_.min_runs; }
  bool sync() const { return options_.sync; }

  /// Cumulative input runs folded away (gauge storage.compaction_runs).
  int64_t runs_compacted() const {
    return runs_compacted_.load(std::memory_order_relaxed);
  }
  /// Cumulative time spent compacting (gauge storage.compaction_ms).
  int64_t total_ms() const {
    return total_ms_.load(std::memory_order_relaxed);
  }
  int64_t jobs_failed() const {
    return jobs_failed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  void Process(CompactionTicket* ticket);

  SpillSpace* const space_;
  const Options options_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<CompactionTicketPtr> queue_;
  bool stopping_ = false;
  std::thread worker_;
  bool started_ = false;

  std::atomic<int64_t> runs_compacted_{0};
  std::atomic<int64_t> total_ms_{0};
  std::atomic<int64_t> jobs_failed_{0};
};

}  // namespace astream::storage

#endif  // ASTREAM_STORAGE_COMPACTOR_H_
