#include "storage/compactor.h"

#include <chrono>
#include <utility>

#include "fault/injector.h"
#include "storage/merge.h"

namespace astream::storage {

namespace {

/// Raw (key, payload) entry of the opaque merge: compaction re-sequences
/// bytes, it never decodes store payloads — which is what makes one
/// compactor correct for slice, agg and cl runs alike.
struct RawEntry {
  int64_t key = 0;
  std::vector<uint8_t> payload;
};

Status CheckCompactionFault() {
  if (fault::FaultInjector* inj = fault::ActiveInjector()) {
    const fault::FaultDecision d =
        inj->Decide(fault::FaultPoint::kCompaction);
    if (d.action == fault::FaultAction::kThrow) {
      throw fault::InjectedFault("injected compaction crash");
    }
    if (d.action == fault::FaultAction::kFail) {
      return Status::Internal("injected compaction failure");
    }
  }
  return Status::OK();
}

}  // namespace

Compactor::Compactor(SpillSpace* space, Options options)
    : space_(space), options_(options) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Start() {
  if (options_.sync || started_) return;
  started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  started_ = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    // Anything still queued settles kFailed so owners drop their tickets.
    for (const CompactionTicketPtr& t : queue_) {
      t->state_.store(CompactionTicket::State::kFailed,
                      std::memory_order_release);
    }
    queue_.clear();
  }
}

CompactionTicketPtr Compactor::Submit(std::vector<SpilledRunPtr> inputs,
                                      const std::string& kind) {
  auto ticket = std::make_shared<CompactionTicket>();
  ticket->inputs_ = std::move(inputs);
  ticket->kind_ = kind;
  if (ticket->inputs_.size() < 2) {
    ticket->state_.store(CompactionTicket::State::kFailed,
                         std::memory_order_release);
    return ticket;
  }
  if (options_.sync) {
    Process(ticket.get());
    return ticket;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || !started_) {
      ticket->state_.store(CompactionTicket::State::kFailed,
                           std::memory_order_release);
      return ticket;
    }
    queue_.push_back(ticket);
  }
  cv_.notify_one();
  return ticket;
}

void Compactor::WorkerLoop() {
  for (;;) {
    CompactionTicketPtr ticket;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      ticket = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(ticket.get());
  }
}

void Compactor::Process(CompactionTicket* ticket) {
  const auto t0 = std::chrono::steady_clock::now();
  bool ok = false;
  try {
    std::vector<std::unique_ptr<RunReader>> readers;
    std::vector<KWayMerge<RawEntry>::Source> sources;
    readers.reserve(ticket->inputs_.size());
    for (const SpilledRunPtr& run : ticket->inputs_) {
      auto reader = run->OpenReader();
      if (!reader.ok()) {
        readers.clear();
        break;
      }
      RunReader* r = readers.emplace_back(std::move(reader).value()).get();
      sources.push_back([r](RawEntry* out) {
        return r->Next(&out->key, &out->payload);
      });
    }
    if (readers.size() == ticket->inputs_.size()) {
      RunWriter writer(space_->NextRunPath(ticket->kind_ + "-compact"),
                       options_.writer);
      KWayMerge<RawEntry> merge(std::move(sources));
      RawEntry e;
      Status status = CheckCompactionFault();
      while (status.ok() && merge.Next(&e)) {
        status = writer.Append(e.key, e.payload.data(), e.payload.size());
      }
      for (const auto& r : readers) {
        if (!r->status().ok()) status = r->status();
      }
      if (status.ok()) status = CheckCompactionFault();
      if (status.ok()) {
        auto info = writer.Finish();
        if (info.ok()) {
          ticket->output_ = space_->AdoptCompacted(std::move(info).value());
          ok = true;
        }
      } else {
        writer.Abort();
      }
    }
  } catch (const fault::InjectedFault&) {
    // Worker "crash": the output temp file dies with the writer; inputs
    // were never touched. The owner simply keeps its existing runs.
  }
  const int64_t ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  total_ms_.fetch_add(ms, std::memory_order_relaxed);
  if (ok) {
    runs_compacted_.fetch_add(
        static_cast<int64_t>(ticket->inputs_.size()),
        std::memory_order_relaxed);
    ticket->state_.store(CompactionTicket::State::kDone,
                         std::memory_order_release);
  } else {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    ticket->state_.store(CompactionTicket::State::kFailed,
                         std::memory_order_release);
  }
}

}  // namespace astream::storage
