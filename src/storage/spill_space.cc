#include "storage/spill_space.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

namespace astream::storage {

namespace fs = std::filesystem;

SpilledRun::SpilledRun(SpillSpace* space, RunInfo info)
    : space_(space), info_(std::move(info)) {}

SpilledRun::~SpilledRun() {
  std::remove(info_.path.c_str());
  if (space_ != nullptr) space_->OnRunDeleted(info_);
}

Result<std::unique_ptr<RunReader>> SpilledRun::OpenReader() const {
  const auto t0 = std::chrono::steady_clock::now();
  auto reader = RunReader::Open(info_.path, /*verify_crc=*/false);
  if (reader.ok() && space_ != nullptr) {
    const int64_t ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    space_->OnReload(static_cast<int64_t>(info_.file_bytes), ms);
  }
  return reader;
}

SpillSpace::SpillSpace(std::string dir, bool owns_dir)
    : dir_(std::move(dir)), owns_dir_(owns_dir) {}

Result<std::unique_ptr<SpillSpace>> SpillSpace::Create(
    const std::string& dir) {
  std::error_code ec;
  if (!dir.empty()) {
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("cannot create spill dir: " + dir + ": " +
                              ec.message());
    }
    return std::unique_ptr<SpillSpace>(new SpillSpace(dir, false));
  }
  std::string tmpl =
      (fs::temp_directory_path(ec) / "astream-spill-XXXXXX").string();
  if (ec) tmpl = "/tmp/astream-spill-XXXXXX";
  if (mkdtemp(tmpl.data()) == nullptr) {
    return Status::Internal("cannot create spill temp dir: " + tmpl);
  }
  return std::unique_ptr<SpillSpace>(new SpillSpace(tmpl, true));
}

SpillSpace::~SpillSpace() {
  if (owns_dir_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
}

void SpillSpace::BindObs(obs::MetricsRegistry* metrics,
                         obs::TraceSink* trace) {
  trace_ = trace;
  if (metrics != nullptr) {
    g_spill_bytes_ = metrics->GetGauge("storage.spill_bytes");
    g_runs_ = metrics->GetGauge("storage.runs");
    h_spill_ms_ = metrics->GetHistogram("storage.spill_ms");
    h_reload_ms_ = metrics->GetHistogram("storage.reload_ms");
  }
}

std::string SpillSpace::NextRunPath(const std::string& kind) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return dir_ + "/" + kind + "-" + std::to_string(id) + ".run";
}

SpilledRunPtr SpillSpace::Adopt(RunInfo info, int64_t elapsed_ms) {
  spill_bytes_.fetch_add(static_cast<int64_t>(info.file_bytes),
                         std::memory_order_relaxed);
  num_runs_.fetch_add(1, std::memory_order_relaxed);
  total_spill_bytes_.fetch_add(static_cast<int64_t>(info.file_bytes),
                               std::memory_order_relaxed);
  total_spill_raw_bytes_.fetch_add(static_cast<int64_t>(info.raw_bytes),
                                   std::memory_order_relaxed);
  PublishGauges();
  if (h_spill_ms_ != nullptr) h_spill_ms_->Record(elapsed_ms);
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSpill, -1,
                   static_cast<int64_t>(info.file_bytes));
  }
  return std::make_shared<const SpilledRun>(this, std::move(info));
}

SpilledRunPtr SpillSpace::AdoptCompacted(RunInfo info) {
  spill_bytes_.fetch_add(static_cast<int64_t>(info.file_bytes),
                         std::memory_order_relaxed);
  num_runs_.fetch_add(1, std::memory_order_relaxed);
  PublishGauges();
  return std::make_shared<const SpilledRun>(this, std::move(info));
}

void SpillSpace::OnRunDeleted(const RunInfo& info) {
  spill_bytes_.fetch_sub(static_cast<int64_t>(info.file_bytes),
                         std::memory_order_relaxed);
  num_runs_.fetch_sub(1, std::memory_order_relaxed);
  PublishGauges();
}

void SpillSpace::OnReload(int64_t bytes, int64_t elapsed_ms) {
  total_reload_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (h_reload_ms_ != nullptr) h_reload_ms_->Record(elapsed_ms);
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kReload, -1, bytes);
  }
}

void SpillSpace::PublishGauges() const {
  if (g_spill_bytes_ != nullptr) {
    g_spill_bytes_->Set(spill_bytes_.load(std::memory_order_relaxed));
  }
  if (g_runs_ != nullptr) {
    g_runs_->Set(num_runs_.load(std::memory_order_relaxed));
  }
}

}  // namespace astream::storage
