#include "storage/memory_governor.h"

#include <cctype>
#include <cstdlib>

namespace astream::storage {

int64_t ParseByteSize(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || value < 0) return 0;
  int64_t mult = 1;
  switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k':
      mult = 1024;
      break;
    case 'm':
      mult = 1024 * 1024;
      break;
    case 'g':
      mult = 1024 * 1024 * 1024;
      break;
    case '\0':
      break;
    default:
      return 0;
  }
  return static_cast<int64_t>(value) * mult;
}

int64_t BudgetFromEnv() {
  const char* env = std::getenv("ASTREAM_MEMORY_BUDGET");
  return env == nullptr ? 0 : ParseByteSize(env);
}

int64_t ResolveMemoryBudget(const StorageOptions& options) {
  if (options.memory_budget_bytes > 0) return options.memory_budget_bytes;
  if (options.memory_budget_bytes < 0) return 0;
  return BudgetFromEnv();
}

MemoryGovernor::MemoryGovernor(int64_t budget_bytes, bool allow_spill)
    : budget_(budget_bytes), allow_spill_(allow_spill) {}

void MemoryGovernor::Register(SpillClient* client) {
  std::lock_guard<std::mutex> lock(mutex_);
  clients_.emplace(client, Entry{});
}

void MemoryGovernor::Unregister(SpillClient* client) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  total_.fetch_sub(static_cast<int64_t>(it->second.resident),
                   std::memory_order_relaxed);
  Reindex(it, INT64_MAX, 0);
  clients_.erase(it);
}

void MemoryGovernor::Reindex(std::map<SpillClient*, Entry>::iterator it,
                             int64_t coldest_end, int64_t victim_reads) {
  if (it->second.coldest_end != INT64_MAX) {
    victims_.erase({it->second.victim_reads, it->second.coldest_end,
                    it->first});
  }
  it->second.coldest_end = coldest_end;
  it->second.victim_reads = victim_reads;
  if (coldest_end != INT64_MAX) {
    victims_.insert({victim_reads, coldest_end, it->first});
  }
}

void MemoryGovernor::Update(SpillClient* client, size_t resident_bytes,
                            int64_t coldest_end, int64_t victim_reads) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  total_.fetch_add(static_cast<int64_t>(resident_bytes) -
                       static_cast<int64_t>(it->second.resident),
                   std::memory_order_relaxed);
  it->second.resident = resident_bytes;
  if (coldest_end != it->second.coldest_end ||
      victim_reads != it->second.victim_reads) {
    Reindex(it, coldest_end, victim_reads);
  }
}

void MemoryGovernor::Enforce(SpillClient* self) {
  if (budget_ <= 0 || !allow_spill_) return;
  // Bounded: each pass either releases bytes, exhausts self, or defers to
  // a colder peer and stops.
  for (int pass = 0; pass < 1024; ++pass) {
    bool spill_self = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = clients_.find(self);
      if (it == clients_.end()) return;
      if (it->second.spill_requested) {
        it->second.spill_requested = false;
        spill_self = true;
      } else if (total_.load(std::memory_order_relaxed) > budget_) {
        if (victims_.empty()) return;  // nothing spillable anywhere
        SpillClient* coldest = std::get<2>(*victims_.begin());
        if (coldest == self) {
          spill_self = true;
        } else {
          // A colder peer holds the victim slice; it spills on its own
          // task thread at its next Enforce.
          clients_[coldest].spill_requested = true;
          return;
        }
      } else {
        return;  // under budget
      }
    }
    // SpillOnce runs without the governor lock; it re-reports resident
    // bytes (and the new coldest slice) via Update before returning.
    if (spill_self && self->SpillOnce() == 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = clients_.find(self);
      if (it != clients_.end()) Reindex(it, INT64_MAX, 0);
      return;
    }
  }
}

}  // namespace astream::storage
