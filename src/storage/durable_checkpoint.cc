#include "storage/durable_checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

namespace astream::storage {

namespace fs = std::filesystem;

DurableCheckpointStore::DurableCheckpointStore(std::string dir,
                                               Options options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string path = entry.path().string();
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::remove(path.c_str());  // leftover from a crash mid-write
      continue;
    }
    if (name.rfind("ckpt-", 0) != 0) continue;
    const int64_t id = std::atoll(name.c_str() + 5);
    // Full validation (CRC included): a file that survives this scan is a
    // checkpoint recovery may rely on.
    auto reader = RunReader::Open(path, /*verify_crc=*/true);
    if (!reader.ok()) {
      ++torn_files_skipped_;
      std::remove(path.c_str());
      continue;
    }
    files_[id] = path;
  }
}

std::string DurableCheckpointStore::PathFor(int64_t id) const {
  return dir_ + "/ckpt-" + std::to_string(id) + ".run";
}

bool DurableCheckpointStore::Persist(const Checkpoint& cp) {
  RunWriter::Options wopts;
  wopts.sync = options_.sync;
  RunWriter writer(PathFor(cp.id), wopts);
  // std::map iteration is key-sorted, satisfying the writer's
  // non-decreasing-key contract (session stage -1 first).
  for (const auto& [state_key, state] : cp.operator_state) {
    if (!writer.Append(state_key, state.data(), state.size()).ok()) {
      return false;
    }
  }
  spe::StateWriter meta;
  meta.WriteI64(cp.id);
  meta.WriteU64(cp.source_offsets.size());
  for (const auto& [port, offset] : cp.source_offsets) {
    meta.WriteI64(port);
    meta.WriteI64(offset);
  }
  writer.SetMeta(meta.TakeBuffer());
  return writer.Finish().ok();
}

void DurableCheckpointStore::MaybeComplete(int64_t id,
                                           size_t expected_states) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checkpoints_.find(id);
  if (it == checkpoints_.end()) return;
  if (it->second->operator_state.size() < expected_states) return;
  if (!Persist(*it->second)) {
    // Left incomplete and staged; the facade calls MaybeComplete after
    // every snapshot arrival, so a transient write failure retries.
    ++write_failures_;
    return;
  }
  // Durable: the RAM staging copy is no longer needed.
  checkpoints_.erase(it);
  files_[id] = PathFor(id);
  while (files_.size() > retention_) {
    std::remove(files_.begin()->second.c_str());
    files_.erase(files_.begin());
  }
}

size_t DurableCheckpointStore::NumRetained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size() + checkpoints_.size();
}

std::shared_ptr<const spe::CheckpointStore::Checkpoint>
DurableCheckpointStore::Load(int64_t id) const {
  auto reader = RunReader::Open(PathFor(id), /*verify_crc=*/true);
  if (!reader.ok()) return nullptr;
  auto cp = std::make_shared<Checkpoint>();
  int64_t key = 0;
  std::vector<uint8_t> payload;
  while ((*reader)->Next(&key, &payload)) {
    cp->operator_state[key] = payload;
  }
  if (!(*reader)->status().ok()) return nullptr;
  spe::StateReader meta((*reader)->meta());
  cp->id = meta.ReadI64();
  const uint64_t num_sources = meta.ReadU64();
  for (uint64_t i = 0; i < num_sources && meta.Ok(); ++i) {
    const int port = static_cast<int>(meta.ReadI64());
    cp->source_offsets[port] = meta.ReadI64();
  }
  if (!meta.Ok() || cp->id != id) return nullptr;
  cp->complete = true;
  return cp;
}

std::shared_ptr<const spe::CheckpointStore::Checkpoint>
DurableCheckpointStore::LatestComplete() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Disk is the single source of truth — recovery after a restart reads
  // the same bytes a warm process does.
  for (auto it = files_.rbegin(); it != files_.rend(); ++it) {
    auto cp = Load(it->first);
    if (cp != nullptr) return cp;
  }
  return nullptr;
}

std::shared_ptr<const spe::CheckpointStore::Checkpoint>
DurableCheckpointStore::Get(int64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.find(id) == files_.end()) return nullptr;
  return Load(id);
}

Status ImportCheckpoint(spe::CheckpointStore* store,
                        const spe::CheckpointStore::Checkpoint& checkpoint) {
  if (!checkpoint.complete) {
    return Status::InvalidArgument("cannot import incomplete checkpoint");
  }
  store->BeginCheckpoint(checkpoint.id, checkpoint.source_offsets);
  for (const auto& [state_key, state] : checkpoint.operator_state) {
    // Invert StateKey(stage, instance) = stage * 1000003 + instance with
    // floor semantics: the session pseudo-stage is -1, whose keys are
    // negative, and C++ integer division truncates toward zero.
    const int64_t stage64 =
        state_key >= 0 ? state_key / 1000003
                       : -((-state_key + 1000002) / 1000003);
    const int instance =
        static_cast<int>(state_key - stage64 * 1000003);
    store->AddOperatorState(checkpoint.id, static_cast<int>(stage64),
                            instance, state);
  }
  store->MaybeComplete(checkpoint.id, checkpoint.operator_state.size());
  auto imported = store->Get(checkpoint.id);
  if (imported == nullptr || !imported->complete) {
    return Status::Internal("checkpoint import failed to complete");
  }
  return Status::OK();
}

}  // namespace astream::storage
