#include "storage/run_file.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>

#include "common/lz.h"
#include "fault/injector.h"

namespace astream::storage {

namespace {

constexpr uint32_t kMagic = 0x4E525341;     // "ASRN"
constexpr uint32_t kEndMagic = 0x4153524E;  // "NRSA"
constexpr size_t kTailBytes = 24;           // offset + len + crc + magic
/// Decompressed-block sanity cap: blocks are block_bytes-ish (64 KiB
/// default) plus one entry; a claimed raw size past this is corruption,
/// not data — refuse before allocating.
constexpr uint32_t kMaxRawBlockBytes = 1u << 30;

/// kStorageWrite hook shared by block flush and finish. kFail surfaces as
/// an error Status (caller keeps its resident state); kThrow crashes the
/// writing task mid-file, leaving a torn temp file for recovery to reject.
Status CheckStorageFault() {
  if (fault::FaultInjector* inj = fault::ActiveInjector()) {
    const fault::FaultDecision d =
        inj->Decide(fault::FaultPoint::kStorageWrite);
    if (d.action == fault::FaultAction::kThrow) {
      throw fault::InjectedFault("injected storage-write crash");
    }
    if (d.action == fault::FaultAction::kFail) {
      return Status::Internal("injected storage-write failure");
    }
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

RunWriter::RunWriter(std::string final_path, Options options)
    : final_path_(std::move(final_path)),
      tmp_path_(final_path_ + ".tmp"),
      options_(options) {
  if (options_.format_version != kRunFormatVersion &&
      options_.format_version != kRunFormatVersionV1) {
    status_ = Status::InvalidArgument("unknown run format version");
    return;
  }
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::Internal("cannot create run temp file: " + tmp_path_);
    return;
  }
  uint32_t header[2] = {kMagic, options_.format_version};
  status_ = WriteRaw(header, sizeof(header));
}

RunWriter::~RunWriter() {
  if (!finished_) Abort();
}

void RunWriter::Abort() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!finished_) std::remove(tmp_path_.c_str());
  finished_ = true;
}

Status RunWriter::WriteRaw(const void* data, size_t size) {
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::Internal("short write to " + tmp_path_);
  }
  crc_ = Crc32(crc_, data, size);
  file_offset_ += size;
  return Status::OK();
}

Status RunWriter::Append(int64_t key, const void* payload, size_t size) {
  if (!status_.ok()) return status_;
  if (finished_) return Status::FailedPrecondition("writer finished");
  if (have_key_ && key < max_key_) {
    return status_ = Status::InvalidArgument(
               "run entries must be appended in key order");
  }
  if (!have_key_) {
    min_key_ = key;
    have_key_ = true;
  }
  max_key_ = key;
  if (block_entries_ == 0) block_min_key_ = key;
  block_max_key_ = key;

  const uint32_t entry_bytes = static_cast<uint32_t>(size + sizeof(int64_t));
  const size_t old = block_.size();
  block_.resize(old + sizeof(uint32_t) + entry_bytes);
  std::memcpy(block_.data() + old, &entry_bytes, sizeof(entry_bytes));
  std::memcpy(block_.data() + old + sizeof(uint32_t), &key, sizeof(key));
  std::memcpy(block_.data() + old + sizeof(uint32_t) + sizeof(key), payload,
              size);
  ++block_entries_;
  ++num_entries_;
  if (block_.size() >= options_.block_bytes) {
    return status_ = FlushBlock();
  }
  return Status::OK();
}

Status RunWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  ASTREAM_RETURN_IF_ERROR(CheckStorageFault());
  BlockIndex bi;
  bi.offset = file_offset_;
  bi.entries = block_entries_;
  bi.min_key = block_min_key_;
  bi.max_key = block_max_key_;
  const uint32_t raw_bytes = static_cast<uint32_t>(block_.size());
  raw_bytes_ += raw_bytes;
  if (options_.format_version == kRunFormatVersionV1) {
    ASTREAM_RETURN_IF_ERROR(WriteRaw(&raw_bytes, sizeof(raw_bytes)));
    ASTREAM_RETURN_IF_ERROR(WriteRaw(block_.data(), block_.size()));
  } else {
    const uint8_t* payload = block_.data();
    uint32_t stored_bytes = raw_bytes;
    if (options_.compress) {
      scratch_.resize(LzMaxCompressedSize(block_.size()));
      const size_t packed =
          LzCompress(block_.data(), block_.size(), scratch_.data());
      // Keep the compressed form only when it actually shrinks; an
      // incompressible block is stored raw (stored == raw flags it).
      if (packed < block_.size()) {
        payload = scratch_.data();
        stored_bytes = static_cast<uint32_t>(packed);
      }
    }
    ASTREAM_RETURN_IF_ERROR(WriteRaw(&stored_bytes, sizeof(stored_bytes)));
    ASTREAM_RETURN_IF_ERROR(WriteRaw(&raw_bytes, sizeof(raw_bytes)));
    ASTREAM_RETURN_IF_ERROR(WriteRaw(payload, stored_bytes));
  }
  index_.push_back(bi);
  block_.clear();
  block_entries_ = 0;
  return Status::OK();
}

Result<RunInfo> RunWriter::Finish() {
  if (!status_.ok()) return status_;
  if (finished_) return Status::FailedPrecondition("writer finished");
  ASTREAM_RETURN_IF_ERROR(status_ = FlushBlock());
  ASTREAM_RETURN_IF_ERROR(status_ = CheckStorageFault());

  const uint64_t footer_offset = file_offset_;
  spe::StateWriter footer;
  footer.WriteU64(num_entries_);
  footer.WriteU64(index_.size());
  for (const BlockIndex& bi : index_) {
    footer.WriteU64(bi.offset);
    footer.WriteU64(bi.entries);
    footer.WriteI64(bi.min_key);
    footer.WriteI64(bi.max_key);
  }
  if (options_.format_version >= kRunFormatVersion) {
    footer.WriteU64(raw_bytes_);
  }
  footer.WriteU64(meta_.size());
  footer.WriteBytes(meta_.data(), meta_.size());
  ASTREAM_RETURN_IF_ERROR(
      status_ = WriteRaw(footer.buffer().data(), footer.buffer().size()));

  const uint64_t footer_bytes = footer.buffer().size();
  const uint32_t crc = crc_;  // covers [0, footer end)
  uint8_t tail[kTailBytes];
  std::memcpy(tail, &footer_offset, 8);
  std::memcpy(tail + 8, &footer_bytes, 8);
  std::memcpy(tail + 16, &crc, 4);
  std::memcpy(tail + 20, &kEndMagic, 4);
  ASTREAM_RETURN_IF_ERROR(status_ = WriteRaw(tail, sizeof(tail)));

  if (std::fflush(file_) != 0) {
    return status_ = Status::Internal("fflush failed: " + tmp_path_);
  }
  if (options_.sync) fsync(fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    finished_ = true;
    return status_ = Status::Internal("rename failed: " + final_path_);
  }
  finished_ = true;

  RunInfo info;
  info.path = final_path_;
  info.file_bytes = file_offset_;
  info.raw_bytes = raw_bytes_;
  info.num_entries = num_entries_;
  info.min_key = min_key_;
  info.max_key = max_key_;
  return info;
}

RunReader::~RunReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<RunReader>> RunReader::Open(const std::string& path,
                                                   bool verify_crc) {
  auto reader = std::unique_ptr<RunReader>(new RunReader());
  reader->file_ = std::fopen(path.c_str(), "rb");
  if (reader->file_ == nullptr) {
    return Status::NotFound("cannot open run file: " + path);
  }
  std::FILE* f = reader->file_;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::Internal("seek failed: " + path);
  }
  const long end = std::ftell(f);
  if (end < 0 ||
      static_cast<size_t>(end) < 2 * sizeof(uint32_t) + kTailBytes) {
    return Status::Internal("run file truncated: " + path);
  }
  reader->file_bytes_ = static_cast<uint64_t>(end);

  uint8_t tail[kTailBytes];
  std::fseek(f, end - static_cast<long>(kTailBytes), SEEK_SET);
  if (std::fread(tail, 1, kTailBytes, f) != kTailBytes) {
    return Status::Internal("cannot read run tail: " + path);
  }
  uint64_t footer_offset = 0;
  uint64_t footer_bytes = 0;
  uint32_t crc = 0;
  uint32_t end_magic = 0;
  std::memcpy(&footer_offset, tail, 8);
  std::memcpy(&footer_bytes, tail + 8, 8);
  std::memcpy(&crc, tail + 16, 4);
  std::memcpy(&end_magic, tail + 20, 4);
  if (end_magic != kEndMagic ||
      footer_offset + footer_bytes + kTailBytes != reader->file_bytes_) {
    return Status::Internal("run file torn or corrupt (bad tail): " + path);
  }
  reader->footer_offset_ = footer_offset;

  std::fseek(f, 0, SEEK_SET);
  uint32_t header[2];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header) ||
      header[0] != kMagic) {
    return Status::Internal("run file has a bad header: " + path);
  }
  if (header[1] != kRunFormatVersion &&
      header[1] != kRunFormatVersionV1) {
    return Status::Internal("unsupported run format version: " + path);
  }
  reader->format_version_ = header[1];

  if (verify_crc) {
    std::fseek(f, 0, SEEK_SET);
    uint32_t actual = 0;
    std::vector<uint8_t> buf(64 * 1024);
    uint64_t left = footer_offset + footer_bytes;
    while (left > 0) {
      const size_t want =
          static_cast<size_t>(std::min<uint64_t>(left, buf.size()));
      if (std::fread(buf.data(), 1, want, f) != want) {
        return Status::Internal("short read verifying run: " + path);
      }
      actual = Crc32(actual, buf.data(), want);
      left -= want;
    }
    if (actual != crc) {
      return Status::Internal("run file CRC mismatch: " + path);
    }
  }

  std::fseek(f, static_cast<long>(footer_offset), SEEK_SET);
  std::vector<uint8_t> footer_buf(footer_bytes);
  if (std::fread(footer_buf.data(), 1, footer_bytes, f) != footer_bytes) {
    return Status::Internal("cannot read run footer: " + path);
  }
  spe::StateReader footer(footer_buf);
  reader->num_entries_ = footer.ReadU64();
  const uint64_t num_blocks = footer.ReadU64();
  for (uint64_t i = 0; i < num_blocks && footer.Ok(); ++i) {
    BlockIndex bi;
    bi.offset = footer.ReadU64();
    bi.entries = footer.ReadU64();
    footer.ReadI64();  // min_key (merge hints; unused by the scan)
    footer.ReadI64();  // max_key
    reader->blocks_.push_back(bi);
  }
  if (reader->format_version_ >= kRunFormatVersion) {
    reader->raw_bytes_ = footer.ReadU64();
  } else {
    // v1 stores blocks raw: consecutive index offsets recover each
    // block's exact stored (== raw) size without a scan.
    for (size_t i = 0; i < reader->blocks_.size(); ++i) {
      const uint64_t next = i + 1 < reader->blocks_.size()
                                ? reader->blocks_[i + 1].offset
                                : footer_offset;
      if (next >= reader->blocks_[i].offset + sizeof(uint32_t)) {
        reader->raw_bytes_ +=
            next - reader->blocks_[i].offset - sizeof(uint32_t);
      }
    }
  }
  const uint64_t meta_bytes = footer.ReadU64();
  if (!footer.Ok() || meta_bytes > footer_bytes) {
    return Status::Internal("run footer corrupt: " + path);
  }
  // The meta blob is the footer's raw-byte tail (WriteBytes is unframed).
  reader->meta_.assign(footer_buf.end() - static_cast<size_t>(meta_bytes),
                       footer_buf.end());
  // Position for the sequential scan.
  std::fseek(f, static_cast<long>(2 * sizeof(uint32_t)), SEEK_SET);
  return reader;
}

bool RunReader::LoadNextBlock() {
  if (next_block_ >= blocks_.size()) return false;
  const BlockIndex& bi = blocks_[next_block_++];
  std::fseek(file_, static_cast<long>(bi.offset), SEEK_SET);

  if (format_version_ == kRunFormatVersionV1) {
    uint32_t block_bytes = 0;
    if (std::fread(&block_bytes, 1, sizeof(block_bytes), file_) !=
        sizeof(block_bytes)) {
      status_ = Status::Internal("cannot read block header");
      return false;
    }
    if (bi.offset + sizeof(uint32_t) + block_bytes > footer_offset_) {
      status_ = Status::Internal("block overruns footer");
      return false;
    }
    block_.resize(block_bytes);
    if (std::fread(block_.data(), 1, block_bytes, file_) != block_bytes) {
      status_ = Status::Internal("short block read");
      return false;
    }
    block_pos_ = 0;
    return true;
  }

  uint32_t hdr[2];  // [stored_bytes][raw_bytes]
  if (std::fread(hdr, 1, sizeof(hdr), file_) != sizeof(hdr)) {
    status_ = Status::Internal("cannot read block header");
    return false;
  }
  const uint32_t stored_bytes = hdr[0];
  const uint32_t raw_bytes = hdr[1];
  if (bi.offset + sizeof(hdr) + stored_bytes > footer_offset_ ||
      stored_bytes > raw_bytes || raw_bytes > kMaxRawBlockBytes) {
    status_ = Status::Internal("block overruns footer");
    return false;
  }
  if (stored_bytes == raw_bytes) {
    block_.resize(raw_bytes);
    if (std::fread(block_.data(), 1, raw_bytes, file_) != raw_bytes) {
      status_ = Status::Internal("short block read");
      return false;
    }
  } else {
    scratch_.resize(stored_bytes);
    if (std::fread(scratch_.data(), 1, stored_bytes, file_) != stored_bytes) {
      status_ = Status::Internal("short block read");
      return false;
    }
    block_.resize(raw_bytes);
    if (!LzDecompress(scratch_.data(), stored_bytes, block_.data(),
                      raw_bytes)) {
      status_ = Status::Internal("compressed block corrupt");
      return false;
    }
  }
  block_pos_ = 0;
  return true;
}

bool RunReader::Next(int64_t* key, std::vector<uint8_t>* payload) {
  if (!status_.ok()) return false;
  while (block_pos_ >= block_.size()) {
    if (!LoadNextBlock()) return false;
  }
  if (block_pos_ + sizeof(uint32_t) > block_.size()) {
    status_ = Status::Internal("entry header overruns block");
    return false;
  }
  uint32_t entry_bytes = 0;
  std::memcpy(&entry_bytes, block_.data() + block_pos_, sizeof(entry_bytes));
  block_pos_ += sizeof(uint32_t);
  if (entry_bytes < sizeof(int64_t) ||
      block_pos_ + entry_bytes > block_.size()) {
    status_ = Status::Internal("entry overruns block");
    return false;
  }
  std::memcpy(key, block_.data() + block_pos_, sizeof(int64_t));
  payload->assign(block_.begin() + block_pos_ + sizeof(int64_t),
                  block_.begin() + block_pos_ + entry_bytes);
  block_pos_ += entry_bytes;
  return true;
}

}  // namespace astream::storage
