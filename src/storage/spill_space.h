#ifndef ASTREAM_STORAGE_SPILL_SPACE_H_
#define ASTREAM_STORAGE_SPILL_SPACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/run_file.h"

namespace astream::storage {

class SpillSpace;

/// Shared handle to one spilled run. Stores hold these by shared_ptr (a
/// merge iterator keeps its runs alive mid-scan even if the store evicts
/// the slice); the last release unlinks the file and retires the space's
/// accounting. Runs are immutable once created.
class SpilledRun {
 public:
  SpilledRun(SpillSpace* space, RunInfo info);
  ~SpilledRun();

  SpilledRun(const SpilledRun&) = delete;
  SpilledRun& operator=(const SpilledRun&) = delete;

  const RunInfo& info() const { return info_; }

  /// Opens a sequential reader. Skips CRC verification: the write path
  /// validated the bytes and the file never crossed a crash boundary
  /// (torn runs are rejected at creation, not at read).
  Result<std::unique_ptr<RunReader>> OpenReader() const;

 private:
  SpillSpace* space_;
  RunInfo info_;
};

using SpilledRunPtr = std::shared_ptr<const SpilledRun>;

/// One job's spill directory: hands out run paths, owns the directory's
/// lifetime (a generated temp dir is removed recursively on destruction),
/// and funnels spill/reload accounting into the obs layer. Thread-safe —
/// operator task threads spill concurrently.
class SpillSpace {
 public:
  /// `dir` empty: a fresh temp directory is created (and owned). Non-empty:
  /// the directory is created if missing and left behind on destruction.
  static Result<std::unique_ptr<SpillSpace>> Create(const std::string& dir);
  ~SpillSpace();

  SpillSpace(const SpillSpace&) = delete;
  SpillSpace& operator=(const SpillSpace&) = delete;

  /// Wires gauges (`storage.spill_bytes`, `storage.runs`), latency
  /// histograms (`storage.spill_ms`, `storage.reload_ms`) and kSpill /
  /// kReload trace events. Either pointer may be null.
  void BindObs(obs::MetricsRegistry* metrics, obs::TraceSink* trace);

  /// Unique path for a new run; `kind` tags the filename for debugging
  /// ("slice", "cl", "ckpt").
  std::string NextRunPath(const std::string& kind);

  /// Run-file options every store in this space writes with — the job's
  /// single switch for format version and compression (bench legs and the
  /// v1-compat path flip it here, not per store).
  void SetWriterOptions(RunWriter::Options options) {
    writer_options_ = options;
  }
  const RunWriter::Options& writer_options() const { return writer_options_; }

  /// Wraps a freshly finished run in a shared handle and records the spill
  /// (bytes, latency, trace). `elapsed_ms` is the write duration.
  SpilledRunPtr Adopt(RunInfo info, int64_t elapsed_ms);

  /// Adopt for compaction outputs: live accounting only — no spill trace,
  /// latency sample, or cumulative spill volume (the data was already
  /// spilled once; compaction rewrites it).
  SpilledRunPtr AdoptCompacted(RunInfo info);

  const std::string& dir() const { return dir_; }
  int64_t spill_bytes() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }
  int64_t num_runs() const {
    return num_runs_.load(std::memory_order_relaxed);
  }
  /// Cumulative on-disk bytes ever spilled (monotone; unlike spill_bytes
  /// this never shrinks when runs retire) and their uncompressed size —
  /// the pair behind storage.compressed_ratio_bp and the bench's
  /// spill-volume comparison.
  int64_t total_spill_bytes() const {
    return total_spill_bytes_.load(std::memory_order_relaxed);
  }
  int64_t total_spill_raw_bytes() const {
    return total_spill_raw_bytes_.load(std::memory_order_relaxed);
  }
  /// Cumulative on-disk bytes re-read by reloads.
  int64_t total_reload_bytes() const {
    return total_reload_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class SpilledRun;

  SpillSpace(std::string dir, bool owns_dir);
  void OnRunDeleted(const RunInfo& info);
  void OnReload(int64_t bytes, int64_t elapsed_ms);
  void PublishGauges() const;

  const std::string dir_;
  const bool owns_dir_;
  RunWriter::Options writer_options_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<int64_t> spill_bytes_{0};
  std::atomic<int64_t> num_runs_{0};
  std::atomic<int64_t> total_spill_bytes_{0};
  std::atomic<int64_t> total_spill_raw_bytes_{0};
  std::atomic<int64_t> total_reload_bytes_{0};

  obs::TraceSink* trace_ = nullptr;
  obs::Gauge* g_spill_bytes_ = nullptr;
  obs::Gauge* g_runs_ = nullptr;
  obs::Histogram* h_spill_ms_ = nullptr;
  obs::Histogram* h_reload_ms_ = nullptr;
};

}  // namespace astream::storage

#endif  // ASTREAM_STORAGE_SPILL_SPACE_H_
