#ifndef ASTREAM_STORAGE_DURABLE_CHECKPOINT_H_
#define ASTREAM_STORAGE_DURABLE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spe/state.h"
#include "storage/run_file.h"

namespace astream::storage {

/// CheckpointStore persisted on the run-file format: in-flight checkpoints
/// stage in RAM (the base store), and the moment one completes it is
/// written — fsync'd, then atomically renamed — to `<dir>/ckpt-<id>.run`
/// and dropped from RAM. Reads (LatestComplete/Get) always load from disk,
/// so a store constructed over an existing directory after a process
/// restart recovers exactly what the previous process durably finished;
/// torn files from a crash mid-write fail CRC/footer validation and are
/// skipped (and deleted) during the constructor's directory scan.
///
/// Run layout: entry key = operator state key (stage * 1000003 + instance;
/// the session stage -1 sorts first), payload = the operator's serialized
/// state; footer meta = checkpoint id + source replay offsets.
class DurableCheckpointStore : public spe::CheckpointStore {
 public:
  struct Options {
    /// fsync before rename. On by default: these files must survive the
    /// writing process.
    bool sync = true;
  };

  explicit DurableCheckpointStore(std::string dir)
      : DurableCheckpointStore(std::move(dir), Options()) {}
  DurableCheckpointStore(std::string dir, Options options);

  void MaybeComplete(int64_t id, size_t expected_states) override;
  size_t NumRetained() const override;
  std::shared_ptr<const Checkpoint> LatestComplete() const override;
  std::shared_ptr<const Checkpoint> Get(int64_t id) const override;

  const std::string& dir() const { return dir_; }
  /// Torn / unreadable checkpoint files discarded by the directory scan.
  int64_t torn_files_skipped() const { return torn_files_skipped_; }
  /// Completed-checkpoint writes that failed (checkpoint left incomplete;
  /// a later snapshot arrival retries).
  int64_t write_failures() const { return write_failures_; }

 private:
  std::string PathFor(int64_t id) const;
  /// Persists a staged checkpoint as a run file. Caller holds mutex_.
  bool Persist(const Checkpoint& cp);
  std::shared_ptr<const Checkpoint> Load(int64_t id) const;

  const std::string dir_;
  const Options options_;
  /// Ids with a durable, validated file on disk (newest = rbegin).
  std::map<int64_t, std::string> files_;
  int64_t torn_files_skipped_ = 0;
  int64_t write_failures_ = 0;
};

/// Checkpoint hand-off: replays a completed checkpoint taken elsewhere
/// (another shard, a previous process) into `store` through the standard
/// Begin/Add/MaybeComplete lifecycle, so it lands exactly as if `store`
/// had taken it — a DurableCheckpointStore persists it as a run file
/// immediately. Fails if the import did not become complete in `store`
/// (e.g. a durable write failure).
Status ImportCheckpoint(spe::CheckpointStore* store,
                        const spe::CheckpointStore::Checkpoint& checkpoint);

}  // namespace astream::storage

#endif  // ASTREAM_STORAGE_DURABLE_CHECKPOINT_H_
