#ifndef ASTREAM_STORAGE_MERGE_H_
#define ASTREAM_STORAGE_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace astream::storage {

/// Streaming k-way merge over sources that each yield entries in
/// non-decreasing key order. `Entry` must expose an `int64_t key` member;
/// a source is a pull function that fills the next entry and returns false
/// when exhausted. Ties break by source index, so a store that lists its
/// resident snapshot before its runs (oldest first) gets a stable,
/// deterministic global order. Memory: one buffered entry per source.
///
/// Two implementations share that contract:
///  - LoserTreeMerge: a tournament loser tree (DESIGN.md §13). Each Next
///    replays one leaf-to-root path — exactly one comparison per level,
///    ceil(log2 k) total — and moves entries only between the slot and the
///    output. This is the default (`KWayMerge`), used by window-finalize
///    streaming merges and background compaction.
///  - HeapMerge: the PR 5 binary heap (~2 log2 k comparisons per Next via
///    pop_heap/push_heap, plus heap-item moves). Kept as the equivalence
///    reference and the micro_merge baseline.
template <typename Entry>
class LoserTreeMerge {
 public:
  using Source = std::function<bool(Entry*)>;

  explicit LoserTreeMerge(std::vector<Source> sources)
      : sources_(std::move(sources)), k_(sources_.size()) {
    if (k_ == 0) return;
    slots_.resize(k_);
    for (size_t i = 0; i < k_; ++i) {
      slots_[i].alive = sources_[i](&slots_[i].entry);
    }
    // Bottom-up build over the complete tree with leaves at [k, 2k):
    // winners bubble up, each internal node keeps the loser of its match.
    std::vector<size_t> winner(2 * k_);
    for (size_t n = k_; n < 2 * k_; ++n) winner[n] = n - k_;
    tree_.resize(std::max<size_t>(k_, 1));
    for (size_t n = k_ - 1; n >= 1; --n) {
      const size_t a = winner[2 * n];
      const size_t b = winner[2 * n + 1];
      const bool a_wins = Beats(a, b);
      winner[n] = a_wins ? a : b;
      tree_[n] = a_wins ? b : a;
    }
    tree_[0] = winner[1];
  }

  /// Next entry in global (key, source index) order; false when all
  /// sources are exhausted.
  bool Next(Entry* out) {
    if (k_ == 0) return false;
    const size_t w = tree_[0];
    Slot& slot = slots_[w];
    if (!slot.alive) return false;
    *out = std::move(slot.entry);
    slot.alive = sources_[w](&slot.entry);
    // Replay the winner's path: at each node the incumbent loser and the
    // refilled candidate play; the loser stays, the winner moves up.
    size_t cur = w;
    for (size_t n = (k_ + w) / 2; n >= 1; n /= 2) {
      if (Beats(tree_[n], cur)) std::swap(cur, tree_[n]);
    }
    tree_[0] = cur;
    return true;
  }

 private:
  struct Slot {
    Entry entry;
    bool alive = false;
  };

  /// Slot a wins the match against slot b: exhausted slots always lose,
  /// then (key, source index) ascending.
  bool Beats(size_t a, size_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (!sa.alive || !sb.alive) return sa.alive || (!sb.alive && a < b);
    if (sa.entry.key != sb.entry.key) return sa.entry.key < sb.entry.key;
    return a < b;
  }

  std::vector<Source> sources_;
  size_t k_ = 0;
  std::vector<Slot> slots_;
  /// tree_[0] = overall winner; tree_[1..k) = loser at each internal node
  /// of the complete binary tree whose leaves are k..2k-1.
  std::vector<size_t> tree_;
};

/// Binary-heap k-way merge (the PR 5 implementation): equivalence
/// reference for LoserTreeMerge and the heap leg of bench/micro_merge.
template <typename Entry>
class HeapMerge {
 public:
  using Source = std::function<bool(Entry*)>;

  explicit HeapMerge(std::vector<Source> sources)
      : sources_(std::move(sources)) {
    heap_.reserve(sources_.size());
    for (size_t i = 0; i < sources_.size(); ++i) Refill(i);
    std::make_heap(heap_.begin(), heap_.end(), Later);
  }

  bool Next(Entry* out) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Item item = std::move(heap_.back());
    heap_.pop_back();
    *out = std::move(item.entry);
    if (Refill(item.source)) {
      std::push_heap(heap_.begin(), heap_.end(), Later);
    }
    return true;
  }

 private:
  struct Item {
    Entry entry;
    size_t source = 0;
  };

  /// Max-heap comparator inverted into a min-heap on (key, source).
  static bool Later(const Item& a, const Item& b) {
    if (a.entry.key != b.entry.key) return a.entry.key > b.entry.key;
    return a.source > b.source;
  }

  bool Refill(size_t source) {
    Item item;
    item.source = source;
    if (!sources_[source](&item.entry)) return false;
    heap_.push_back(std::move(item));
    return true;
  }

  std::vector<Source> sources_;
  std::vector<Item> heap_;
};

/// The merge the engine uses everywhere.
template <typename Entry>
using KWayMerge = LoserTreeMerge<Entry>;

}  // namespace astream::storage

#endif  // ASTREAM_STORAGE_MERGE_H_
