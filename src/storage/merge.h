#ifndef ASTREAM_STORAGE_MERGE_H_
#define ASTREAM_STORAGE_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace astream::storage {

/// Streaming k-way merge over sources that each yield entries in
/// non-decreasing key order. `Entry` must expose an `int64_t key` member;
/// a source is a pull function that fills the next entry and returns false
/// when exhausted. Ties break by source index, so a store that lists its
/// resident snapshot before its runs (oldest first) gets a stable,
/// deterministic global order. Memory: one buffered entry per source.
template <typename Entry>
class KWayMerge {
 public:
  using Source = std::function<bool(Entry*)>;

  explicit KWayMerge(std::vector<Source> sources)
      : sources_(std::move(sources)) {
    heap_.reserve(sources_.size());
    for (size_t i = 0; i < sources_.size(); ++i) Refill(i);
    std::make_heap(heap_.begin(), heap_.end(), Later);
  }

  /// Next entry in global (key, source index) order; false when all
  /// sources are exhausted.
  bool Next(Entry* out) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Item item = std::move(heap_.back());
    heap_.pop_back();
    *out = std::move(item.entry);
    if (Refill(item.source)) {
      std::push_heap(heap_.begin(), heap_.end(), Later);
    }
    return true;
  }

 private:
  struct Item {
    Entry entry;
    size_t source = 0;
  };

  /// Max-heap comparator inverted into a min-heap on (key, source).
  static bool Later(const Item& a, const Item& b) {
    if (a.entry.key != b.entry.key) return a.entry.key > b.entry.key;
    return a.source > b.source;
  }

  bool Refill(size_t source) {
    Item item;
    item.source = source;
    if (!sources_[source](&item.entry)) return false;
    heap_.push_back(std::move(item));
    return true;
  }

  std::vector<Source> sources_;
  std::vector<Item> heap_;
};

}  // namespace astream::storage

#endif  // ASTREAM_STORAGE_MERGE_H_
