#include "core/slice_store.h"

namespace astream::core {

TupleStore::TupleStore(StoreMode mode)
    : mode_(mode),
      arena_(std::make_unique<Arena>()),
      groups_(0, DynamicBitsetHash{}, std::equal_to<QuerySet>{},
              AA<std::pair<const QuerySet, KeyedRows>>(arena_.get())),
      list_(0, std::hash<spe::Value>{}, std::equal_to<spe::Value>{},
            AA<std::pair<const spe::Value, TaggedVec>>(arena_.get())) {}

void TupleStore::Insert(const spe::Row& row, const QuerySet& tags) {
  ++num_tuples_;
  if (mode_ == StoreMode::kGrouped) {
    groups_[tags][row.key()].push_back(row);
  } else {
    list_[row.key()].emplace_back(row, tags);
  }
}

void TupleStore::ConvertTo(StoreMode mode) {
  if (mode == mode_) return;
  if (mode == StoreMode::kList) {
    for (auto& [tags, keyed] : groups_) {
      for (auto& [key, rows] : keyed) {
        auto& bucket = list_[key];
        for (auto& row : rows) bucket.emplace_back(std::move(row), tags);
      }
    }
    groups_.clear();
  } else {
    for (auto& [key, tagged] : list_) {
      for (auto& [row, tags] : tagged) {
        groups_[tags][key].push_back(std::move(row));
      }
    }
    list_.clear();
  }
  mode_ = mode;
}

size_t TupleStore::NumGroups() const {
  return mode_ == StoreMode::kGrouped ? groups_.size() : num_tuples_;
}

double TupleStore::AvgGroupSize() const {
  const size_t g = NumGroups();
  return g == 0 ? 0.0 : static_cast<double>(num_tuples_) / g;
}

namespace {

/// Key-level hash join between two keyed-row maps belonging to groups
/// whose combined tag set `tags` is already known to be non-empty.
template <typename KeyedRowsMap>
void JoinKeyed(const TupleStore::JoinEmit& emit, const QuerySet& tags,
               const KeyedRowsMap& a, const KeyedRowsMap& b) {
  const bool a_smaller = a.size() <= b.size();
  const auto& probe = a_smaller ? a : b;
  const auto& build = a_smaller ? b : a;
  for (const auto& [key, probe_rows] : probe) {
    auto hit = build.find(key);
    if (hit == build.end()) continue;
    for (const auto& pr : probe_rows) {
      for (const auto& br : hit->second) {
        const spe::Row& left = a_smaller ? pr : br;
        const spe::Row& right = a_smaller ? br : pr;
        emit(left, right, tags);
      }
    }
  }
}

}  // namespace

int64_t TupleStore::Join(const TupleStore& a, const TupleStore& b,
                         const QuerySet& mask, const JoinEmit& emit) {
  int64_t ops = 0;
  if (a.num_tuples_ == 0 || b.num_tuples_ == 0 || mask.None()) return ops;

  if (a.mode_ == StoreMode::kGrouped && b.mode_ == StoreMode::kGrouped) {
    // The paper's group pruning: skip group pairs that share no query.
    for (const auto& [ga, keyed_a] : a.groups_) {
      QuerySet ga_masked = ga & mask;
      ++ops;
      if (ga_masked.None()) continue;
      for (const auto& [gb, keyed_b] : b.groups_) {
        QuerySet combined = ga_masked & gb;
        ++ops;
        if (combined.None()) continue;
        JoinKeyed(emit, combined, keyed_a, keyed_b);
      }
    }
    return ops;
  }

  // At least one side is a flat list: join per key with per-tuple tag ANDs.
  // Normalize access through lambdas over both layouts.
  auto for_each_key_a = [&](auto&& fn) {
    if (a.mode_ == StoreMode::kList) {
      for (const auto& [key, tagged] : a.list_) fn(key);
    } else {
      // Collect distinct keys across groups.
      std::unordered_map<spe::Value, bool> seen;
      for (const auto& [ga, keyed] : a.groups_) {
        for (const auto& [key, rows] : keyed) {
          if (!seen.emplace(key, true).second) continue;
          fn(key);
        }
      }
    }
  };
  auto collect = [](const TupleStore& s, spe::Value key,
                    std::vector<std::pair<const spe::Row*, const QuerySet*>>*
                        out) {
    if (s.mode_ == StoreMode::kList) {
      auto it = s.list_.find(key);
      if (it == s.list_.end()) return;
      for (const auto& [row, tags] : it->second) {
        out->emplace_back(&row, &tags);
      }
    } else {
      for (const auto& [tags, keyed] : s.groups_) {
        auto it = keyed.find(key);
        if (it == keyed.end()) continue;
        for (const auto& row : it->second) out->emplace_back(&row, &tags);
      }
    }
  };

  // Scratch rows reused across keys and Join calls (per task thread): the
  // probe loop runs once per distinct key, so per-call vectors would churn
  // an allocation pair per key.
  static thread_local std::vector<
      std::pair<const spe::Row*, const QuerySet*>>
      rows_a;
  static thread_local std::vector<
      std::pair<const spe::Row*, const QuerySet*>>
      rows_b;
  for_each_key_a([&](spe::Value key) {
    rows_a.clear();
    rows_b.clear();
    collect(a, key, &rows_a);
    if (rows_a.empty()) return;
    collect(b, key, &rows_b);
    if (rows_b.empty()) return;
    for (const auto& [row_a, tags_a] : rows_a) {
      QuerySet ta = *tags_a & mask;
      ++ops;
      if (ta.None()) continue;
      for (const auto& [row_b, tags_b] : rows_b) {
        QuerySet combined = ta & *tags_b;
        ++ops;
        if (combined.None()) continue;
        emit(*row_a, *row_b, std::move(combined));
      }
    }
  });
  return ops;
}

void TupleStore::ForEach(
    const std::function<void(const spe::Row&, const QuerySet&)>& fn) const {
  if (mode_ == StoreMode::kGrouped) {
    for (const auto& [tags, keyed] : groups_) {
      for (const auto& [key, rows] : keyed) {
        for (const auto& row : rows) fn(row, tags);
      }
    }
  } else {
    for (const auto& [key, tagged] : list_) {
      for (const auto& [row, tags] : tagged) fn(row, tags);
    }
  }
}

void TupleStore::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(static_cast<int64_t>(mode_));
  writer->WriteU64(num_tuples_);
  ForEach([&](const spe::Row& row, const QuerySet& tags) {
    writer->WriteRow(row);
    writer->WriteBitset(tags);
  });
}

TupleStore TupleStore::Deserialize(spe::StateReader* reader) {
  const StoreMode mode = static_cast<StoreMode>(reader->ReadI64());
  TupleStore store(mode);
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    spe::Row row = reader->ReadRow();
    QuerySet tags = reader->ReadBitset();
    store.Insert(row, tags);
  }
  return store;
}

AggStore::AggStore()
    : arena_(std::make_unique<Arena>()),
      keys_(0, std::hash<spe::Value>{}, std::equal_to<spe::Value>{},
            AA<std::pair<const spe::Value, AccVec>>(arena_.get())) {}

void AggStore::Add(spe::Value key, int slot, spe::Value value) {
  auto& accs = keys_[key];
  if (accs.size() <= static_cast<size_t>(slot)) accs.resize(slot + 1);
  accs[slot].Add(value);
}

const spe::Accumulator* AggStore::Find(spe::Value key, int slot) const {
  auto it = keys_.find(key);
  if (it == keys_.end()) return nullptr;
  if (static_cast<size_t>(slot) >= it->second.size()) return nullptr;
  const spe::Accumulator& acc = it->second[slot];
  return acc.Empty() ? nullptr : &acc;
}

void AggStore::ForEachKey(
    int slot,
    const std::function<void(spe::Value, const spe::Accumulator&)>& fn)
    const {
  for (const auto& [key, accs] : keys_) {
    if (static_cast<size_t>(slot) < accs.size() && !accs[slot].Empty()) {
      fn(key, accs[slot]);
    }
  }
}

void AggStore::Serialize(spe::StateWriter* writer) const {
  writer->WriteU64(keys_.size());
  for (const auto& [key, accs] : keys_) {
    writer->WriteI64(key);
    writer->WriteU64(accs.size());
    for (const spe::Accumulator& acc : accs) {
      writer->WriteI64(acc.sum);
      writer->WriteI64(acc.count);
      writer->WriteI64(acc.min);
      writer->WriteI64(acc.max);
    }
  }
}

AggStore AggStore::Deserialize(spe::StateReader* reader) {
  AggStore store;
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    const spe::Value key = reader->ReadI64();
    const uint64_t num_slots = reader->ReadU64();
    auto& accs = store.keys_[key];
    accs.resize(num_slots);
    for (uint64_t s = 0; s < num_slots && reader->Ok(); ++s) {
      accs[s].sum = reader->ReadI64();
      accs[s].count = reader->ReadI64();
      accs[s].min = reader->ReadI64();
      accs[s].max = reader->ReadI64();
    }
  }
  return store;
}

}  // namespace astream::core
