#include "core/slice_store.h"

#include <algorithm>
#include <chrono>

namespace astream::core {

namespace {

int64_t ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

TupleStore::Resident::Resident()
    : arena(std::make_unique<Arena>()),
      groups(0, DynamicBitsetHash{}, std::equal_to<QuerySet>{},
             AA<std::pair<const QuerySet, KeyedRows>>(arena.get())),
      list(0, std::hash<spe::Value>{}, std::equal_to<spe::Value>{},
           AA<std::pair<const spe::Value, TaggedVec>>(arena.get())) {}

TupleStore::TupleStore(StoreMode mode)
    : mode_(mode), res_(std::make_unique<Resident>()) {}

void TupleStore::Insert(const spe::Row& row, const QuerySet& tags) {
  ++num_tuples_;
  ++resident_tuples_;
  // Row payloads live outside the arena; estimate them (columns + rep
  // header) so the governor sees tuple data, not just bookkeeping.
  payload_bytes_ += row.NumColumns() * sizeof(spe::Value) + 32;
  if (mode_ == StoreMode::kGrouped) {
    res_->groups[tags][row.key()].push_back(row);
  } else {
    res_->list[row.key()].emplace_back(row, tags);
  }
}

void TupleStore::ConvertTo(StoreMode mode) {
  if (mode == mode_) return;
  if (mode == StoreMode::kList) {
    for (auto& [tags, keyed] : res_->groups) {
      for (auto& [key, rows] : keyed) {
        auto& bucket = res_->list[key];
        for (auto& row : rows) bucket.emplace_back(std::move(row), tags);
      }
    }
    res_->groups.clear();
  } else {
    for (auto& [key, tagged] : res_->list) {
      for (auto& [row, tags] : tagged) {
        res_->groups[tags][key].push_back(std::move(row));
      }
    }
    res_->list.clear();
  }
  mode_ = mode;
}

size_t TupleStore::NumGroups() const {
  return mode_ == StoreMode::kGrouped ? res_->groups.size()
                                      : resident_tuples_;
}

double TupleStore::AvgGroupSize() const {
  const size_t g = NumGroups();
  return g == 0 ? 0.0 : static_cast<double>(resident_tuples_) / g;
}

size_t TupleStore::SpillToDisk() {
  if (spill_ == nullptr || resident_tuples_ == 0) return 0;
  AdoptCompaction();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ScanEntry> entries;
  entries.reserve(resident_tuples_);
  ForEachResident([&](const spe::Row& row, const QuerySet& tags) {
    entries.push_back(ScanEntry{row.key(), row, tags});
  });
  std::stable_sort(entries.begin(), entries.end(),
                   [](const ScanEntry& a, const ScanEntry& b) {
                     return a.key < b.key;
                   });
  storage::RunWriter writer(spill_->NextRunPath("slice"),
                            spill_->writer_options());
  for (const ScanEntry& e : entries) {
    spe::StateWriter enc;
    enc.WriteRow(e.row);
    enc.WriteBitset(e.tags);
    if (!writer.Append(e.key, enc.buffer().data(), enc.buffer().size())
             .ok()) {
      writer.Abort();
      return 0;  // resident state untouched; the caller stays over budget
    }
  }
  auto info = writer.Finish();
  if (!info.ok()) return 0;
  runs_.push_back(spill_->Adopt(std::move(info).value(), ElapsedMs(t0)));
  MaybeScheduleCompaction();
  const size_t released = ResidentBytes();
  res_ = std::make_unique<Resident>();
  resident_tuples_ = 0;
  payload_bytes_ = 0;
  return released;
}

void TupleStore::AdoptCompaction() const {
  if (compaction_ == nullptr) return;
  const auto state = compaction_->state();
  if (state == storage::CompactionTicket::State::kPending) return;
  if (state == storage::CompactionTicket::State::kDone) {
    // The inputs are exactly runs_[0..n) (spills only ever append), and
    // the output preserves their (key, run index) merge order, so the
    // swap is invisible to every reader.
    const size_t n = compaction_->inputs().size();
    std::vector<storage::SpilledRunPtr> next;
    next.reserve(runs_.size() - n + 1);
    next.push_back(compaction_->output());
    next.insert(next.end(), runs_.begin() + static_cast<ptrdiff_t>(n),
                runs_.end());
    runs_ = std::move(next);
  }
  compaction_.reset();  // failed jobs just leave the inputs in place
}

void TupleStore::MaybeScheduleCompaction() const {
  if (compactor_ == nullptr || compaction_ != nullptr) return;
  if (runs_.size() < compactor_->min_runs()) return;
  compaction_ = compactor_->Submit(runs_, "slice");
  if (compactor_->sync()) AdoptCompaction();
}

namespace {

/// Key-level hash join between two keyed-row maps belonging to groups
/// whose combined tag set `tags` is already known to be non-empty.
template <typename KeyedRowsMap>
void JoinKeyed(const TupleStore::JoinEmit& emit, const QuerySet& tags,
               const KeyedRowsMap& a, const KeyedRowsMap& b) {
  const bool a_smaller = a.size() <= b.size();
  const auto& probe = a_smaller ? a : b;
  const auto& build = a_smaller ? b : a;
  for (const auto& [key, probe_rows] : probe) {
    auto hit = build.find(key);
    if (hit == build.end()) continue;
    for (const auto& pr : probe_rows) {
      for (const auto& br : hit->second) {
        const spe::Row& left = a_smaller ? pr : br;
        const spe::Row& right = a_smaller ? br : pr;
        emit(left, right, tags);
      }
    }
  }
}

/// Collects the next run of equal-key entries from a sorted stream.
/// `pending`/`has_pending` carry the one-entry lookahead between calls.
bool NextGroup(TupleStore::SortedStream* s, TupleStore::ScanEntry* pending,
               bool* has_pending,
               std::vector<TupleStore::ScanEntry>* group) {
  if (!*has_pending && !s->Next(pending)) return false;
  *has_pending = false;
  group->clear();
  group->push_back(std::move(*pending));
  while (s->Next(pending)) {
    if (pending->key != group->front().key) {
      *has_pending = true;
      return true;
    }
    group->push_back(std::move(*pending));
  }
  return true;
}

}  // namespace

int64_t TupleStore::MergeJoin(const TupleStore& a, const TupleStore& b,
                              const QuerySet& mask, const JoinEmit& emit) {
  // Group-wise sorted merge: both sides stream in key order (resident
  // snapshot + runs); only the current key group of each side is in
  // memory. Tag accounting matches the resident list path.
  int64_t ops = 0;
  auto sa = a.SortedScan();
  auto sb = b.SortedScan();
  ScanEntry pa, pb;
  bool ha = false, hb = false;
  std::vector<ScanEntry> ga, gb;
  bool va = NextGroup(sa.get(), &pa, &ha, &ga);
  bool vb = NextGroup(sb.get(), &pb, &hb, &gb);
  while (va && vb) {
    const int64_t ka = ga.front().key;
    const int64_t kb = gb.front().key;
    if (ka < kb) {
      va = NextGroup(sa.get(), &pa, &ha, &ga);
    } else if (kb < ka) {
      vb = NextGroup(sb.get(), &pb, &hb, &gb);
    } else {
      for (const ScanEntry& ea : ga) {
        QuerySet ta = ea.tags & mask;
        ++ops;
        if (ta.None()) continue;
        for (const ScanEntry& eb : gb) {
          QuerySet combined = ta & eb.tags;
          ++ops;
          if (combined.None()) continue;
          emit(ea.row, eb.row, std::move(combined));
        }
      }
      va = NextGroup(sa.get(), &pa, &ha, &ga);
      vb = NextGroup(sb.get(), &pb, &hb, &gb);
    }
  }
  return ops;
}

int64_t TupleStore::Join(const TupleStore& a, const TupleStore& b,
                         const QuerySet& mask, const JoinEmit& emit) {
  int64_t ops = 0;
  if (a.num_tuples_ == 0 || b.num_tuples_ == 0 || mask.None()) return ops;

  if (a.HasSpill() || b.HasSpill()) return MergeJoin(a, b, mask, emit);

  if (a.mode_ == StoreMode::kGrouped && b.mode_ == StoreMode::kGrouped) {
    // The paper's group pruning: skip group pairs that share no query.
    for (const auto& [ga, keyed_a] : a.res_->groups) {
      QuerySet ga_masked = ga & mask;
      ++ops;
      if (ga_masked.None()) continue;
      for (const auto& [gb, keyed_b] : b.res_->groups) {
        QuerySet combined = ga_masked & gb;
        ++ops;
        if (combined.None()) continue;
        JoinKeyed(emit, combined, keyed_a, keyed_b);
      }
    }
    return ops;
  }

  // At least one side is a flat list: join per key with per-tuple tag ANDs.
  // Normalize access through lambdas over both layouts.
  auto for_each_key_a = [&](auto&& fn) {
    if (a.mode_ == StoreMode::kList) {
      for (const auto& [key, tagged] : a.res_->list) fn(key);
    } else {
      // Collect distinct keys across groups.
      std::unordered_map<spe::Value, bool> seen;
      for (const auto& [ga, keyed] : a.res_->groups) {
        for (const auto& [key, rows] : keyed) {
          if (!seen.emplace(key, true).second) continue;
          fn(key);
        }
      }
    }
  };
  auto collect = [](const TupleStore& s, spe::Value key,
                    std::vector<std::pair<const spe::Row*, const QuerySet*>>*
                        out) {
    if (s.mode_ == StoreMode::kList) {
      auto it = s.res_->list.find(key);
      if (it == s.res_->list.end()) return;
      for (const auto& [row, tags] : it->second) {
        out->emplace_back(&row, &tags);
      }
    } else {
      for (const auto& [tags, keyed] : s.res_->groups) {
        auto it = keyed.find(key);
        if (it == keyed.end()) continue;
        for (const auto& row : it->second) out->emplace_back(&row, &tags);
      }
    }
  };

  // Scratch rows reused across keys and Join calls (per task thread): the
  // probe loop runs once per distinct key, so per-call vectors would churn
  // an allocation pair per key.
  static thread_local std::vector<
      std::pair<const spe::Row*, const QuerySet*>>
      rows_a;
  static thread_local std::vector<
      std::pair<const spe::Row*, const QuerySet*>>
      rows_b;
  for_each_key_a([&](spe::Value key) {
    rows_a.clear();
    rows_b.clear();
    collect(a, key, &rows_a);
    if (rows_a.empty()) return;
    collect(b, key, &rows_b);
    if (rows_b.empty()) return;
    for (const auto& [row_a, tags_a] : rows_a) {
      QuerySet ta = *tags_a & mask;
      ++ops;
      if (ta.None()) continue;
      for (const auto& [row_b, tags_b] : rows_b) {
        QuerySet combined = ta & *tags_b;
        ++ops;
        if (combined.None()) continue;
        emit(*row_a, *row_b, std::move(combined));
      }
    }
  });
  return ops;
}

std::unique_ptr<TupleStore::SortedStream> TupleStore::SortedScan() const {
  AdoptCompaction();
  auto stream = std::unique_ptr<SortedStream>(new SortedStream());
  stream->resident_.reserve(resident_tuples_);
  ForEachResident([&](const spe::Row& row, const QuerySet& tags) {
    stream->resident_.push_back(ScanEntry{row.key(), row, tags});
  });
  std::stable_sort(stream->resident_.begin(), stream->resident_.end(),
                   [](const ScanEntry& a, const ScanEntry& b) {
                     return a.key < b.key;
                   });
  stream->runs_ = runs_;

  std::vector<storage::KWayMerge<ScanEntry>::Source> sources;
  SortedStream* s = stream.get();
  sources.push_back([s](ScanEntry* out) {
    if (s->resident_pos_ >= s->resident_.size()) return false;
    *out = s->resident_[s->resident_pos_++];
    return true;
  });
  for (const storage::SpilledRunPtr& run : stream->runs_) {
    auto reader = run->OpenReader();
    if (!reader.ok()) continue;  // validated at write time; never expected
    storage::RunReader* r =
        stream->readers_.emplace_back(std::move(reader).value()).get();
    sources.push_back([r](ScanEntry* out) {
      int64_t key = 0;
      std::vector<uint8_t> payload;
      if (!r->Next(&key, &payload)) return false;
      spe::StateReader dec(std::move(payload));
      out->key = key;
      out->row = dec.ReadRow();
      out->tags = dec.ReadBitset();
      return dec.Ok();
    });
  }
  stream->merge_ =
      std::make_unique<storage::KWayMerge<ScanEntry>>(std::move(sources));
  return stream;
}

void TupleStore::ForEachResident(
    const std::function<void(const spe::Row&, const QuerySet&)>& fn) const {
  if (mode_ == StoreMode::kGrouped) {
    for (const auto& [tags, keyed] : res_->groups) {
      for (const auto& [key, rows] : keyed) {
        for (const auto& row : rows) fn(row, tags);
      }
    }
  } else {
    for (const auto& [key, tagged] : res_->list) {
      for (const auto& [row, tags] : tagged) fn(row, tags);
    }
  }
}

void TupleStore::ForEach(
    const std::function<void(const spe::Row&, const QuerySet&)>& fn) const {
  AdoptCompaction();
  for (const storage::SpilledRunPtr& run : runs_) {
    auto reader = run->OpenReader();
    if (!reader.ok()) continue;
    int64_t key = 0;
    std::vector<uint8_t> payload;
    while ((*reader)->Next(&key, &payload)) {
      spe::StateReader dec(std::move(payload));
      spe::Row row = dec.ReadRow();
      QuerySet tags = dec.ReadBitset();
      if (!dec.Ok()) break;
      fn(row, tags);
    }
  }
  ForEachResident(fn);
}

void TupleStore::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(static_cast<int64_t>(mode_));
  writer->WriteU64(num_tuples_);
  ForEach([&](const spe::Row& row, const QuerySet& tags) {
    writer->WriteRow(row);
    writer->WriteBitset(tags);
  });
}

TupleStore TupleStore::Deserialize(spe::StateReader* reader) {
  const StoreMode mode = static_cast<StoreMode>(reader->ReadI64());
  TupleStore store(mode);
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    spe::Row row = reader->ReadRow();
    QuerySet tags = reader->ReadBitset();
    store.Insert(row, tags);
  }
  return store;
}

AggStore::Resident::Resident()
    : arena(std::make_unique<Arena>()),
      keys(0, std::hash<spe::Value>{}, std::equal_to<spe::Value>{},
           AA<std::pair<const spe::Value, GroupVec>>(arena.get())) {}

AggStore::AggStore() : res_(std::make_unique<Resident>()) {}

namespace {

void EncodeAcc(spe::StateWriter* w, const spe::Accumulator& acc) {
  w->WriteI64(acc.sum);
  w->WriteI64(acc.count);
  w->WriteI64(acc.min);
  w->WriteI64(acc.max);
}

void DecodeAcc(spe::StateReader* r, spe::Accumulator* acc) {
  acc->sum = r->ReadI64();
  acc->count = r->ReadI64();
  acc->min = r->ReadI64();
  acc->max = r->ReadI64();
}

/// Folds `acc` into the group of `tags` in `groups` (same dedup rule as
/// the resident insert path: one group per distinct tag set).
void FoldGroup(std::vector<AggStore::Group>* groups, const QuerySet& tags,
               const spe::Accumulator& acc) {
  for (AggStore::Group& g : *groups) {
    if (g.tags == tags) {
      g.acc.Merge(acc);
      return;
    }
  }
  groups->push_back(AggStore::Group{tags, acc});
}

}  // namespace

void AggStore::Add(spe::Value key, const QuerySet& tags, spe::Value value) {
  auto& groups = res_->keys[key];
  for (Group& g : groups) {
    if (g.tags == tags) {
      g.acc.Add(value);
      return;
    }
  }
  Group g;
  g.tags = tags;
  g.acc.Add(value);
  groups.push_back(std::move(g));
}

spe::Accumulator AggStore::SlotAccumulator(spe::Value key, int slot) const {
  spe::Accumulator acc;
  auto it = res_->keys.find(key);
  if (it == res_->keys.end()) return acc;
  for (const Group& g : it->second) {
    if (g.tags.Test(slot)) acc.Merge(g.acc);
  }
  return acc;
}

void AggStore::ForEachGroupsMerged(const GroupsFn& fn) const {
  if (runs_.empty()) {
    for (const auto& [key, groups] : res_->keys) {
      if (!groups.empty()) fn(key, groups.data(), groups.size());
    }
    return;
  }
  ForEachMergedEntry([&](spe::Value key, const std::vector<Group>& groups) {
    if (!groups.empty()) fn(key, groups.data(), groups.size());
  });
}

size_t AggStore::SpillToDisk() {
  if (spill_ == nullptr || res_->keys.empty()) return 0;
  AdoptCompaction();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ScanEntry> entries;
  entries.reserve(res_->keys.size());
  for (const auto& [key, groups] : res_->keys) {
    ScanEntry e;
    e.key = key;
    e.groups.assign(groups.begin(), groups.end());
    entries.push_back(std::move(e));
  }
  std::sort(entries.begin(), entries.end(),
            [](const ScanEntry& a, const ScanEntry& b) {
              return a.key < b.key;
            });
  storage::RunWriter writer(spill_->NextRunPath("agg"),
                            spill_->writer_options());
  for (const ScanEntry& e : entries) {
    spe::StateWriter enc;
    enc.WriteU64(e.groups.size());
    for (const Group& g : e.groups) {
      enc.WriteBitset(g.tags);
      EncodeAcc(&enc, g.acc);
    }
    if (!writer.Append(e.key, enc.buffer().data(), enc.buffer().size())
             .ok()) {
      writer.Abort();
      return 0;
    }
  }
  auto info = writer.Finish();
  if (!info.ok()) return 0;
  runs_.push_back(spill_->Adopt(std::move(info).value(), ElapsedMs(t0)));
  MaybeScheduleCompaction();
  const size_t released = ResidentBytes();
  res_ = std::make_unique<Resident>();
  return released;
}

void AggStore::AdoptCompaction() const {
  if (compaction_ == nullptr) return;
  const auto state = compaction_->state();
  if (state == storage::CompactionTicket::State::kPending) return;
  if (state == storage::CompactionTicket::State::kDone) {
    const size_t n = compaction_->inputs().size();
    std::vector<storage::SpilledRunPtr> next;
    next.reserve(runs_.size() - n + 1);
    next.push_back(compaction_->output());
    next.insert(next.end(), runs_.begin() + static_cast<ptrdiff_t>(n),
                runs_.end());
    runs_ = std::move(next);
  }
  compaction_.reset();
}

void AggStore::MaybeScheduleCompaction() const {
  if (compactor_ == nullptr || compaction_ != nullptr) return;
  if (runs_.size() < compactor_->min_runs()) return;
  compaction_ = compactor_->Submit(runs_, "agg");
  if (compactor_->sync()) AdoptCompaction();
}

void AggStore::ForEachMergedEntry(
    const std::function<void(spe::Value, const std::vector<Group>&)>& fn)
    const {
  // Sorted resident snapshot + one source per run, k-way merged; equal
  // keys are folded group-wise (same-tag groups merge) before fn sees
  // them.
  AdoptCompaction();
  std::vector<ScanEntry> resident;
  resident.reserve(res_->keys.size());
  for (const auto& [key, groups] : res_->keys) {
    ScanEntry e;
    e.key = key;
    e.groups.assign(groups.begin(), groups.end());
    resident.push_back(std::move(e));
  }
  std::sort(resident.begin(), resident.end(),
            [](const ScanEntry& a, const ScanEntry& b) {
              return a.key < b.key;
            });
  size_t resident_pos = 0;
  std::vector<std::unique_ptr<storage::RunReader>> readers;
  std::vector<storage::KWayMerge<ScanEntry>::Source> sources;
  sources.push_back([&resident, &resident_pos](ScanEntry* out) {
    if (resident_pos >= resident.size()) return false;
    *out = resident[resident_pos++];
    return true;
  });
  for (const storage::SpilledRunPtr& run : runs_) {
    auto reader = run->OpenReader();
    if (!reader.ok()) continue;
    storage::RunReader* r =
        readers.emplace_back(std::move(reader).value()).get();
    sources.push_back([r](ScanEntry* out) {
      int64_t key = 0;
      std::vector<uint8_t> payload;
      if (!r->Next(&key, &payload)) return false;
      spe::StateReader dec(std::move(payload));
      out->key = key;
      const uint64_t n = dec.ReadU64();
      out->groups.clear();
      out->groups.reserve(n);
      for (uint64_t i = 0; i < n && dec.Ok(); ++i) {
        Group g;
        g.tags = dec.ReadBitset();
        DecodeAcc(&dec, &g.acc);
        out->groups.push_back(std::move(g));
      }
      return dec.Ok();
    });
  }
  storage::KWayMerge<ScanEntry> merge(std::move(sources));
  ScanEntry cur;
  bool have = false;
  ScanEntry e;
  while (merge.Next(&e)) {
    if (have && e.key == cur.key) {
      for (const Group& g : e.groups) FoldGroup(&cur.groups, g.tags, g.acc);
    } else {
      if (have) fn(cur.key, cur.groups);
      cur = std::move(e);
      have = true;
    }
  }
  if (have) fn(cur.key, cur.groups);
}

void AggStore::Serialize(spe::StateWriter* writer) const {
  if (runs_.empty()) {
    writer->WriteU64(res_->keys.size());
    for (const auto& [key, groups] : res_->keys) {
      writer->WriteI64(key);
      writer->WriteU64(groups.size());
      for (const Group& g : groups) {
        writer->WriteBitset(g.tags);
        EncodeAcc(writer, g.acc);
      }
    }
    return;
  }
  // Spilled: the snapshot is the merged logical state. The count-prefixed
  // format needs the number of distinct keys up front, so pass one counts
  // and pass two writes — both streaming.
  uint64_t num_keys = 0;
  ForEachMergedEntry(
      [&](spe::Value, const std::vector<Group>&) { ++num_keys; });
  writer->WriteU64(num_keys);
  ForEachMergedEntry([&](spe::Value key, const std::vector<Group>& groups) {
    writer->WriteI64(key);
    writer->WriteU64(groups.size());
    for (const Group& g : groups) {
      writer->WriteBitset(g.tags);
      EncodeAcc(writer, g.acc);
    }
  });
}

AggStore AggStore::Deserialize(spe::StateReader* reader) {
  AggStore store;
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    const spe::Value key = reader->ReadI64();
    const uint64_t num_groups = reader->ReadU64();
    auto& groups = store.res_->keys[key];
    groups.reserve(num_groups);
    for (uint64_t g = 0; g < num_groups && reader->Ok(); ++g) {
      Group grp;
      grp.tags = reader->ReadBitset();
      DecodeAcc(reader, &grp.acc);
      groups.push_back(std::move(grp));
    }
  }
  return store;
}

}  // namespace astream::core
