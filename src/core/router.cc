#include "core/router.h"

#include <chrono>

#include "common/logging.h"

namespace astream::core {

RouterOperator::RouterOperator(Config config)
    : config_(std::move(config)),
      metrics_on_(config_.metrics != nullptr && config_.metrics->enabled()),
      series_cache_(config_.metrics) {
  if (!config_.routes_raw) {
    config_.routes_raw = [](const ActiveQuery& q, int port) {
      (void)port;
      return q.desc.kind == QueryKind::kSelection;
    };
  }
  if (config_.clock == nullptr) config_.clock = WallClock::Default();
}

void RouterOperator::NoteEmit(QueryId id, obs::QuerySeries* series,
                              TimestampMs event_time) {
  obs::QuerySeries* s = series != nullptr ? series : series_cache_.For(id);
  if (s == nullptr) return;
  s->records_emitted.Add();
  s->event_latency_ms.Record(config_.clock->NowMs() - event_time);
  if (!s->first_result_seen.load(std::memory_order_relaxed) &&
      !s->first_result_seen.exchange(true, std::memory_order_relaxed) &&
      config_.trace != nullptr) {
    config_.trace->Record(obs::TraceEventKind::kFirstResult, id,
                          config_.clock->NowMs() - event_time);
  }
}

void RouterOperator::RebuildSlotSeries() {
  if (!metrics_on_) return;
  slot_series_.assign(table_.num_slots(), nullptr);
  table_.ForEach([&](const ActiveQuery& q) {
    slot_series_[q.slot] = series_cache_.For(q.id);
  });
}

void RouterOperator::ProcessRecord(int port, spe::Record record,
                                   spe::Collector* out) {
  std::chrono::steady_clock::time_point start;
  if (config_.measure_overhead) start = std::chrono::steady_clock::now();

  RouteOne(port, std::move(record), out);

  if (config_.measure_overhead) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    fanout_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count(),
        std::memory_order_relaxed);
  }
}

void RouterOperator::ProcessBatch(int port, spe::RecordBatch& records,
                                  spe::Collector* out) {
  // One timing sample covers the whole fan-out: the per-tuple
  // steady_clock reads are themselves part of the overhead Fig. 18
  // wants amortized away.
  std::chrono::steady_clock::time_point start;
  if (config_.measure_overhead) start = std::chrono::steady_clock::now();

  for (spe::Record& record : records) {
    RouteOne(port, std::move(record), out);
  }

  if (config_.measure_overhead) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    fanout_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count(),
        std::memory_order_relaxed);
  }
}

void RouterOperator::RouteOne(int port, spe::Record record,
                              spe::Collector* out) {
  if (record.channel >= 0) {
    // Pre-resolved windowed result: ship as-is, keeping the channel stamp.
    ++records_routed_;
    if (metrics_on_) NoteEmit(record.channel, nullptr, record.event_time);
    spe::StreamElement el;
    el.kind = spe::ElementKind::kRecord;
    el.record = std::move(record);
    el.record.epoch = epoch_;
    out->Emit(std::move(el));
  } else {
    // Raw tuple: ship to every subscribed query's channel. This is the one
    // place AStream "copies" data (Sec. 3.2.2) — with copy-on-write rows
    // the per-query fan-out shares the payload (a refcount bump); a real
    // materialization happens only for degenerate empty rows.
    record.tags.ForEachSetBit([&](size_t slot) {
      const ActiveQuery* q = table_.QueryAt(static_cast<int>(slot));
      if (q == nullptr || !config_.routes_raw(*q, port)) return;
      spe::Record copy;
      copy.event_time = record.event_time;
      copy.row = record.row;
      copy.tags = QuerySet::Single(slot);
      copy.channel = q->id;
      copy.epoch = epoch_;
      ++records_routed_;
      if (copy.row.SharesStorageWith(record.row)) {
        ++rows_shared_;
      } else {
        ++rows_copied_;
      }
      if (metrics_on_) {
        NoteEmit(q->id, slot < slot_series_.size() ? slot_series_[slot]
                                                   : nullptr,
                 record.event_time);
      }
      spe::StreamElement el;
      el.kind = spe::ElementKind::kRecord;
      el.record = std::move(copy);
      out->Emit(std::move(el));
    });
  }
}

void RouterOperator::OnMarker(const spe::ControlMarker& marker,
                              spe::Collector* out) {
  (void)out;
  if (marker.kind == spe::MarkerKind::kCheckpointBarrier) {
    // Outputs emitted from here on belong to this checkpoint's epoch. The
    // runtime delivers checkpoint barriers to the operator *before*
    // snapshotting, so the snapshot carries the advanced epoch and a
    // restored router resumes stamping exactly where the original did.
    epoch_ = marker.epoch;
    return;
  }
  const Changelog* log = Changelog::FromMarker(marker);
  if (log == nullptr) return;
  const Status s = table_.Apply(*log);
  if (!s.ok()) {
    ASTREAM_LOG(kError, "router")
        << "changelog apply failed: " << s.ToString();
    return;
  }
  RebuildSlotSeries();
}

Status RouterOperator::SnapshotState(spe::StateWriter* writer) {
  table_.Serialize(writer);
  writer->WriteI64(records_routed_);
  writer->WriteI64(epoch_);
  return Status::OK();
}

Status RouterOperator::RestoreState(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(table_.Restore(reader));
  RebuildSlotSeries();
  records_routed_ = reader->ReadI64();
  epoch_ = reader->ReadI64();
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad router snapshot");
}

}  // namespace astream::core
