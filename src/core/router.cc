#include "core/router.h"

#include <chrono>

#include "common/logging.h"

namespace astream::core {

RouterOperator::RouterOperator(Config config) : config_(std::move(config)) {
  if (!config_.routes_raw) {
    config_.routes_raw = [](const ActiveQuery& q, int port) {
      (void)port;
      return q.desc.kind == QueryKind::kSelection;
    };
  }
}

void RouterOperator::ProcessRecord(int port, spe::Record record,
                                   spe::Collector* out) {
  std::chrono::steady_clock::time_point start;
  if (config_.measure_overhead) start = std::chrono::steady_clock::now();

  if (record.channel >= 0) {
    // Pre-resolved windowed result: ship as-is, keeping the channel stamp.
    ++records_routed_;
    spe::StreamElement el;
    el.kind = spe::ElementKind::kRecord;
    el.record = std::move(record);
    out->Emit(std::move(el));
  } else {
    // Raw tuple: copy to every subscribed query's channel.
    record.tags.ForEachSetBit([&](size_t slot) {
      const ActiveQuery* q = table_.QueryAt(static_cast<int>(slot));
      if (q == nullptr || !config_.routes_raw(*q, port)) return;
      spe::Record copy;
      copy.event_time = record.event_time;
      copy.row = record.row;  // the data copy (Sec. 3.2.2)
      copy.tags = QuerySet::Single(slot);
      copy.channel = q->id;
      ++records_routed_;
      spe::StreamElement el;
      el.kind = spe::ElementKind::kRecord;
      el.record = std::move(copy);
      out->Emit(std::move(el));
    });
  }

  if (config_.measure_overhead) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    copy_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count(),
        std::memory_order_relaxed);
  }
}

void RouterOperator::OnMarker(const spe::ControlMarker& marker,
                              spe::Collector* out) {
  (void)out;
  const Changelog* log = Changelog::FromMarker(marker);
  if (log == nullptr) return;
  const Status s = table_.Apply(*log);
  if (!s.ok()) {
    ASTREAM_LOG(kError, "router")
        << "changelog apply failed: " << s.ToString();
  }
}

Status RouterOperator::SnapshotState(spe::StateWriter* writer) {
  table_.Serialize(writer);
  writer->WriteI64(records_routed_);
  return Status::OK();
}

Status RouterOperator::RestoreState(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(table_.Restore(reader));
  records_routed_ = reader->ReadI64();
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad router snapshot");
}

}  // namespace astream::core
